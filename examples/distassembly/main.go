// Distributed-assembly example: the paper's §1.1 points out that "there
// is no need to first build up the global linear system … a better
// approach is to decompose Ω first and [let] each processor carry out
// discretization on its own subdomain". This example runs that workflow:
// each rank assembles only its own matrix rows (visiting only the
// elements that touch its nodes), the global matrix never exists, and the
// resulting distributed system solves to the same answer as the
// conventional global-assembly path.
package main

import (
	"fmt"
	"log"
	"math"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/krylov"
	"parapre/internal/partition"
	"parapre/internal/precond"
	"parapre/internal/sparse"
)

func main() {
	const m, p = 49, 8
	g := grid.UnitSquareTri(m)
	pde := fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return -x[0] * math.Exp(x[1]) },
	}
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			c := g.Coord(n)
			bc[n] = c[0] * math.Exp(c[1])
		}
	}

	// 1. Decompose Ω first.
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Each processor discretizes its own subdomain: only its rows.
	slabs := make([]*sparse.CSR, p)
	rhs := make([][]float64, p)
	totalRowNNZ := 0
	for r := 0; r < p; r++ {
		owned := func(node int) bool { return part[node] == r }
		slabs[r], rhs[r] = fem.AssembleScalarRows(g, pde, owned)
		fem.ApplyDirichletRows(slabs[r], rhs[r], bc, owned)
		totalRowNNZ += slabs[r].NNZ()
	}
	fmt.Printf("distributed discretization: %d ranks assembled %d nonzeros total; no global matrix was formed\n",
		p, totalRowNNZ)

	// 3. Wire the distributed system from the row slabs.
	systems, err := dsys.DistributeRows(slabs, rhs, part)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Solve with Schur 1 as usual.
	xl := make([][]float64, p)
	var iters int
	stats := dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		pc, err := precond.NewSchur1(s, precond.DefaultSchur1())
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, s.NLoc())
		res := krylov.Distributed(c, s,
			func(z, r []float64) { pc.Apply(c, z, r) },
			s.B, x, krylov.Options{Restart: 20, MaxIters: 500, Tol: 1e-6, Flexible: true})
		if c.Rank() == 0 {
			iters = res.Iterations
		}
		xl[c.Rank()] = x
	})

	// 5. Check against the manufactured solution u = x·e^y.
	x := dsys.Gather(systems, xl)
	var maxErr float64
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		if e := math.Abs(x[n] - c[0]*math.Exp(c[1])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("FGMRES(20)+Schur 1: %d iterations, modeled time %.4fs\n", iters, dist.MaxClock(stats))
	fmt.Printf("max error vs exact solution: %.3e\n", maxErr)
}
