// Command parapre-lint runs the project's static-analysis suite over Go
// packages in this module. It is stdlib-only (go/parser + go/types with
// a source importer) so it needs no tool dependencies beyond the Go
// toolchain itself.
//
// Usage:
//
//	go run ./cmd/parapre-lint ./...
//	go run ./cmd/parapre-lint -tags paranoid ./internal/sparse ./internal/krylov
//	go run ./cmd/parapre-lint -list
//
// Exit status is 0 when no diagnostics are reported, 1 when at least one
// is, and 2 on usage or load errors. Findings that are intentional are
// suppressed in source with a documented directive:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the flagged line or on its own line directly above.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parapre/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("parapre-lint", flag.ContinueOnError)
	var (
		tags    = fs.String("tags", "", "comma-separated build tags to enable (e.g. paranoid)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		only    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		verbose = fs.Bool("v", false, "print each package as it is checked")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: parapre-lint [flags] <packages>\n\n")
		fmt.Fprintf(fs.Output(), "Packages are directory paths relative to the module root; a\n")
		fmt.Fprintf(fs.Output(), "trailing /... recurses (testdata, vendor and hidden dirs are skipped).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: unknown analyzer in -only=%s\n", *only)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
		return 2
	}
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			loader.Tags[t] = true
		}
	}

	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(os.Stderr, "parapre-lint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	failed := false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s\n", pkg.Path)
		}
		for _, d := range lint.RunPackage(pkg, analyzers) {
			failed = true
			fmt.Println(d)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, names string) []*lint.Analyzer {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil
		}
		out = append(out, a)
	}
	return out
}
