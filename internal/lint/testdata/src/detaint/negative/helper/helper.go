// The negative twin of the detaint helper: deterministic float helpers,
// a nondeterministic helper with no float result, and a tainted helper
// whose kernel call discards the result. None of them may produce a
// finding.
package helper

import "time"

// Sum is a deterministic left-to-right reduction.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Stamp is nondeterministic but carries no float data: out of scope.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Bench IS tainted — the kernel fixture calls it as a bare statement,
// which must not be reported (no float state enters the kernel).
func Bench() float64 {
	return float64(time.Now().UnixNano())
}
