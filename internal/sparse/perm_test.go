package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPerm(rng *rand.Rand, n int) Perm {
	return Perm(rng.Perm(n))
}

func TestPermInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := randPerm(rng, n)
		q := p.Inverse()
		if !q.IsValid() {
			return false
		}
		for i := range p {
			if q[p[i]] != i || p[q[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsValidRejectsBadPerms(t *testing.T) {
	if (Perm{0, 0, 1}).IsValid() {
		t.Error("duplicate accepted")
	}
	if (Perm{0, 3, 1}).IsValid() {
		t.Error("out-of-range accepted")
	}
	if (Perm{-1, 0}).IsValid() {
		t.Error("negative accepted")
	}
	if !(Perm{2, 0, 1}).IsValid() {
		t.Error("valid perm rejected")
	}
}

func TestApplyScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		p := randPerm(rng, n)
		x := randVec(rng, n)
		y := p.ApplyVec(x)
		z := make([]float64, n)
		p.ScatterVecTo(z, y)
		for i := range x {
			if z[i] != x[i] {
				t.Fatalf("trial %d: scatter(apply(x)) != x at %d", trial, i)
			}
		}
	}
}

func TestPermuteSymConsistency(t *testing.T) {
	// (P A Pᵀ)(i, j) must equal A(p[i], p[j]), and permuted matvec must
	// commute: (PAPᵀ)(Px) = P(Ax).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(25)
		a := randCSR(rng, n, n, 0.3)
		p := randPerm(rng, n)
		b := PermuteSym(a, p)
		if err := b.CheckValid(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got, want := b.At(i, j), a.At(p[i], p[j]); got != want {
					t.Fatalf("trial %d: B(%d,%d)=%v, want A(p_i,p_j)=%v", trial, i, j, got, want)
				}
			}
		}
		x := randVec(rng, n)
		px := p.ApplyVec(x)
		lhs := b.MulVec(px)
		rhs := p.ApplyVec(a.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
				t.Fatalf("trial %d: permuted matvec mismatch at %d", trial, i)
			}
		}
	}
}

func TestExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randCSR(rng, 12, 12, 0.4)
	rows := []int{3, 7, 1}
	cols := []int{0, 11, 5, 2}
	b := Extract(a, rows, cols)
	if err := b.CheckValid(); err != nil {
		t.Fatal(err)
	}
	for i, oi := range rows {
		for j, oj := range cols {
			if got, want := b.At(i, j), a.At(oi, oj); got != want {
				t.Fatalf("Extract(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestExtractEmpty(t *testing.T) {
	a := Identity(5)
	b := Extract(a, nil, nil)
	if b.Rows != 0 || b.Cols != 0 || b.NNZ() != 0 {
		t.Fatalf("Extract(nil,nil) = %v", b)
	}
}

func TestIdentityPerm(t *testing.T) {
	p := IdentityPerm(5)
	x := []float64{1, 2, 3, 4, 5}
	y := p.ApplyVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatal("identity perm moved entries")
		}
	}
}

func TestApplyVecTo(t *testing.T) {
	p := Perm{2, 0, 1}
	x := []float64{10, 20, 30}
	y := make([]float64, 3)
	p.ApplyVecTo(y, x)
	if y[0] != 30 || y[1] != 10 || y[2] != 20 {
		t.Fatalf("ApplyVecTo = %v", y)
	}
}
