package lint

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAllocFreeAnnotationParity asserts that the static and dynamic
// zero-allocation proofs cover exactly the same functions: every
// //lint:allocfree annotation in the module has a testing.AllocsPerRun
// test claiming it via an
//
//	// alloctest: <pkg>.<Func> | (*<pkg>.<Recv>).<Method>
//
// marker in its doc comment, and every marker names an annotated
// function. An annotation without a test is an unverified claim; a
// marker without an annotation is a test whose static twin was deleted.
func TestAllocFreeAnnotationParity(t *testing.T) {
	l := newTestLoader(t)

	annotated := map[string]string{} // display name → file:line
	tested := map[string]string{}

	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(d.Name(), "_test.go"):
			return scanAllocTestMarkers(path, tested)
		case strings.HasSuffix(d.Name(), ".go"):
			return scanAllocFreeAnnotations(path, annotated)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) == 0 {
		t.Fatalf("no //lint:allocfree annotations found in the module")
	}

	for _, name := range sortedKeys(annotated) {
		if _, ok := tested[name]; !ok {
			t.Errorf("%s: //lint:allocfree %s has no AllocsPerRun test (add an `// alloctest: %s` marker to one)",
				annotated[name], name, name)
		}
	}
	for _, name := range sortedKeys(tested) {
		if _, ok := annotated[name]; !ok {
			t.Errorf("%s: alloctest marker %s names no //lint:allocfree function (annotate it or drop the marker)",
				tested[name], name)
		}
	}
}

// scanAllocFreeAnnotations parses one source file (syntax only) and
// records the display names of //lint:allocfree-annotated declarations.
func scanAllocFreeAnnotations(path string, out map[string]string) error {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return err
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || !directiveOnDecl(fd, "allocfree") {
			continue
		}
		pos := fset.Position(fd.Pos())
		out[declDisplayName(f.Name.Name, fd)] = pos.Filename + ":" + itoa(pos.Line)
	}
	return nil
}

// declDisplayName renders a declaration as pkg.Func or
// (*pkg.Recv).Method — the marker syntax, with the package LEAF name
// (not the import path) for readability.
func declDisplayName(pkgName string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgName + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	star := ""
	if se, ok := recv.(*ast.StarExpr); ok {
		star = "*"
		recv = se.X
	}
	base := "?"
	if id, ok := recv.(*ast.Ident); ok {
		base = id.Name
	}
	return "(" + star + pkgName + "." + base + ")." + fd.Name.Name
}

// scanAllocTestMarkers records `// alloctest: <name>` lines of one test
// file.
func scanAllocTestMarkers(path string, out map[string]string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	sc := bufio.NewScanner(fh)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if name, ok := strings.CutPrefix(text, "// alloctest: "); ok {
			out[strings.TrimSpace(name)] = path + ":" + itoa(line)
		}
	}
	return sc.Err()
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
