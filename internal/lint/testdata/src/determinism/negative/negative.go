// Package negative holds code determinism must stay silent on.
package negative

import "sort"

// GatherSorted drains a map through a sorted key slice: deterministic.
func GatherSorted(m map[int]float64, out []float64) {
	keys := make([]int, 0, len(m))
	for k := range m { // collecting int keys only — no float flow
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for i, k := range keys {
		out[i] = m[k]
	}
}

// CountMembers uses a map for membership only.
func CountMembers(set map[int]bool, is []int) int {
	n := 0
	for _, i := range is {
		if set[i] {
			n++
		}
	}
	return n
}

// MaxDegree ranges a map into an int accumulator: order-independent and
// not floating-point.
func MaxDegree(deg map[int]int) int {
	m := 0
	for _, d := range deg {
		if d > m {
			m = d
		}
	}
	return m
}
