package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parapre/internal/cases"
	"parapre/internal/ckpt"
	"parapre/internal/core"
)

func postJob(t *testing.T, ts *httptest.Server, tenant string, spec *Spec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitOK(t *testing.T, ts *httptest.Server, tenant string, spec *Spec) string {
	t.Helper()
	resp := postJob(t, ts, tenant, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := readAll(resp)
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func readAll(resp *http.Response) (string, error) {
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
	}
	return sb.String(), sc.Err()
}

// streamEvents consumes the job's SSE stream to completion and returns
// every decoded event.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var e Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, e)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
	return srv, ts
}

// slowSpec is a solve that runs for many seconds if left alone (plain
// GMRES(20), no preconditioner, stagnating on a size-129 Poisson) but is
// bounded by MaxIters — cancel/backpressure tests race nothing. Size 65
// is not enough: that system converges in well under a second of wall
// time, so a poll for StateRunning could miss the whole solve.
func slowSpec() *Spec {
	return &Spec{Case: "tc1-poisson2d", Size: 129, Procs: 4,
		Precond: "None", Tol: 1e-13, MaxIters: 50000}
}

// The service answer must be the library answer: same iterations, same
// converged flag, and a streamed residual sequence bit-identical to the
// History of a direct core.Solve.
func TestE2EResultMatchesDirectSolve(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 4})
	spec := &Spec{Case: "tc1-poisson2d", Size: 33, Procs: 4, Precond: "Block 2"}
	id := submitOK(t, ts, "alice", spec)
	events := streamEvents(t, ts, id)

	var result *ResultSummary
	var streamed []float64
	for _, e := range events {
		switch e.Type {
		case "residual":
			if e.Iter != len(streamed) {
				t.Fatalf("residual iter %d out of order (have %d)", e.Iter, len(streamed))
			}
			streamed = append(streamed, e.Residual)
		case "result":
			result = e.Result
		}
	}
	if result == nil {
		t.Fatal("no result event")
	}
	if !result.Converged {
		t.Fatalf("gateway solve did not converge: %+v", result)
	}
	if len(result.Phases) == 0 {
		t.Error("result carries no phase breakdown")
	}

	// Direct library solves with the identical configuration: the gateway
	// wraps a core.Session, so a direct session solve must match
	// bit-for-bit; the one-shot core.Solve shares the identical residual
	// recurrence (its modeled clock differs in the last bits only because
	// it charges preconditioner setup inside the world).
	c, err := cases.ByName(spec.Case)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Solve(c.Build(spec.Size), spec.BuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(c.Build(spec.Size), spec.BuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	dsess, err := sess.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Iterations != direct.Iterations || result.Converged != direct.Converged {
		t.Fatalf("gateway %d iters, direct %d", result.Iterations, direct.Iterations)
	}
	if result.SolveTime != dsess.SolveTime {
		t.Errorf("modeled SolveTime %v vs session %v", result.SolveTime, dsess.SolveTime)
	}
	if len(streamed) != len(direct.History) {
		t.Fatalf("streamed %d residuals, direct history %d", len(streamed), len(direct.History))
	}
	for i := range streamed {
		if streamed[i] != direct.History[i] {
			t.Fatalf("residual[%d]: streamed %v, direct %v", i, streamed[i], direct.History[i])
		}
	}
}

// DELETE on a running job lands as a collective stop vote: the solve
// ends promptly with the cancellation sentinel, not at MaxIters.
func TestE2ECancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	id := submitOK(t, ts, "alice", slowSpec())

	// Wait until the job is demonstrably iterating.
	waitFor(t, func() bool {
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var st struct {
			State State `json:"state"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return st.State == StateRunning
	})

	canceledAt := time.Now()
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}

	events := streamEvents(t, ts, id)
	var result *ResultSummary
	for _, e := range events {
		if e.Type == "result" {
			result = e.Result
		}
	}
	if result == nil {
		t.Fatal("no result after cancel")
	}
	if !result.Canceled {
		t.Fatalf("result not canceled: %+v", result)
	}
	if result.Iterations >= 50000 {
		t.Fatal("job ran to MaxIters despite cancel")
	}
	if el := time.Since(canceledAt); el > 15*time.Second {
		t.Fatalf("cancel took %v", el)
	}
}

// A full tenant queue answers 429 with Retry-After while other tenants
// keep their own admission budget.
func TestE2EQueueFull429(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	running := submitOK(t, ts, "alice", slowSpec()) // occupies the worker
	queued := submitOK(t, ts, "alice", slowSpec())  // fills alice's queue

	resp := postJob(t, ts, "alice", slowSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	resp.Body.Close()

	// Bob's queue is independent.
	bob := submitOK(t, ts, "bob", slowSpec())

	// Unwind: cancel everything so the drain in cleanup is quick.
	for _, id := range []string{queued, bob, running} {
		req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := ts.Client().Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// Drain finishes accepted jobs and refuses new ones — the SIGTERM path
// of cmd/parapred.
func TestE2EDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 4})
	spec := &Spec{Case: "tc1-poisson2d", Size: 33, Procs: 4, Precond: "Block 1"}
	id := submitOK(t, ts, "alice", spec)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	j, ok := srv.Job(id)
	if !ok || j.State() != StateDone {
		t.Fatalf("accepted job not finished by drain: %v", j.State())
	}
	resp := postJob(t, ts, "alice", spec)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// Bad specs are rejected up front with 400.
func TestE2EBadSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	for _, spec := range []*Spec{
		{},                              // neither case nor matrix
		{Case: "no-such-case"},          // unknown case
		{Case: "tc1-poisson2d", Procs: -1},
		{Case: "tc1-poisson2d", Precond: "Block 9"},
		{Case: "tc1-poisson2d", Machine: "Cray"},
	} {
		resp := postJob(t, ts, "alice", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: %d, want 400", spec, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// An inline MatrixMarket upload solves like a named case.
func TestE2EMatrixUpload(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2})
	// A small SPD tridiagonal system in MatrixMarket coordinate form.
	n := 50
	var mm strings.Builder
	mm.WriteString("%%MatrixMarket matrix coordinate real general\n")
	fmt.Fprintf(&mm, "%d %d %d\n", n, n, 3*n-2)
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&mm, "%d %d 2.0\n", i, i)
		if i < n {
			fmt.Fprintf(&mm, "%d %d -1.0\n", i, i+1)
			fmt.Fprintf(&mm, "%d %d -1.0\n", i+1, i)
		}
	}
	spec := &Spec{Matrix: mm.String(), Procs: 2, Precond: "Block 1", ReturnX: true}
	id := submitOK(t, ts, "alice", spec)
	events := streamEvents(t, ts, id)
	var result *ResultSummary
	for _, e := range events {
		if e.Type == "result" {
			result = e.Result
		}
	}
	if result == nil || !result.Converged {
		t.Fatalf("upload solve: %+v", result)
	}
	// Default RHS is A·1, so the solution is 1.
	if len(result.X) != n {
		t.Fatalf("len(X) = %d", len(result.X))
	}
	for i, x := range result.X {
		if x < 0.99 || x > 1.01 {
			t.Fatalf("x[%d] = %v, want ~1", i, x)
		}
	}
}

// A checkpointed job killed mid-solve resumes on the next server start
// under the same job ID and finishes from the persisted recurrence.
func TestE2EKillAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := &Spec{Case: "tc1-poisson2d", Size: 33, Procs: 4, Precond: "Block 1",
		CheckpointEvery: 5}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	// Fake the killed predecessor: run the solve directly with the same
	// session configuration, canceling after the first checkpoint lands,
	// and leave checkpoint + sidecar in the directory.
	const id = "deadbeef00000000"
	ckFile := filepath.Join(dir, id+".ckpt")
	scFile := filepath.Join(dir, id+".json")
	c, err := cases.ByName(spec.Case)
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(spec.Size)
	cfg := spec.BuildConfig()
	cfg.CheckpointEvery = spec.CheckpointEvery
	cfg.CheckpointPath = ckFile
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Ctx = ctx
	cfg.Solver.Progress = func(iter int, _ float64) {
		if iter >= 7 { // past the iteration-5 checkpoint
			cancel()
		}
	}
	partial, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Converged {
		t.Skip("solve converged before the first checkpoint; nothing to resume")
	}
	if _, err := os.Stat(ckFile); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	side, _ := json.Marshal(&persistedSpec{Tenant: "alice", Spec: spec})
	if err := os.WriteFile(scFile, side, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := ckpt.Load(ckFile)
	if err != nil {
		t.Fatal(err)
	}
	resumeIter := ck.Iter

	// "Restart" the server over the same directory: the scan re-enqueues
	// the job with the checkpoint.
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, CkptDir: dir})
	j, ok := srv.Job(id)
	if !ok {
		t.Fatal("resumed job not registered under its old ID")
	}
	events := streamEvents(t, ts, id)
	var result *ResultSummary
	sawResume := false
	for _, e := range events {
		if e.Type == "recovery" && e.Stage == "resume" {
			sawResume = e.Recovered
		}
		if e.Type == "result" {
			result = e.Result
		}
	}
	if !sawResume {
		t.Error("no resume recovery event")
	}
	if result == nil || !result.Converged {
		t.Fatalf("resumed solve: %+v", result)
	}
	// The resumed solve continued from the checkpoint, not from zero: the
	// direct full solve takes more iterations than the resumed leg ran.
	full, err := core.Solve(c.Build(spec.Size), spec.BuildConfig())
	if err != nil {
		t.Fatal(err)
	}
	if result.Iterations >= full.Iterations+int(resumeIter) {
		t.Errorf("resumed job iterated %d (full solve %d, checkpoint at %d): no progress reuse",
			result.Iterations, full.Iterations, resumeIter)
	}
	if j.State() != StateDone {
		t.Fatalf("state = %s", j.State())
	}
	// Terminal jobs clean their durable state.
	if _, err := os.Stat(ckFile); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after completion")
	}
	if _, err := os.Stat(scFile); !os.IsNotExist(err) {
		t.Error("sidecar not removed after completion")
	}
}
