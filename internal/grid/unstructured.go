package grid

import (
	"fmt"
	"math"
)

// PlateWithHole builds the synthetic unstructured triangulation standing in
// for Test Case 3's "special domain" (Fig. 3 of the paper, a 2D domain
// meshed with 521,185 points and 1,040,256 triangles — the authors'
// original mesh is not available).
//
// The substitution: start from an m×m structured triangulation of the unit
// square, carve out every element touching a disc of radius 0.22 centered
// at (0.5, 0.5) — leaving a polygonal hole whose boundary follows the
// lattice — and jitter the remaining interior nodes with a deterministic
// hash-based perturbation. The result is multiply connected with irregular
// element geometry and variable vertex degree — the properties that make
// Test Case 3 behave differently from the uniform-grid cases under a
// general graph partitioner. At m = 723 the node count (~510k) matches the
// paper's order of magnitude.
func PlateWithHole(m int) *Mesh {
	if m < 8 {
		panic(fmt.Sprintf("grid: PlateWithHole needs m >= 8, got %d", m))
	}
	const (
		cx, cy = 0.5, 0.5
		radius = 0.22
	)
	h := 1 / float64(m-1)
	sq := UnitSquareTri(m)

	inside := func(n int) bool {
		c := sq.Coord(n)
		return math.Hypot(c[0]-cx, c[1]-cy) < radius-1e-12
	}

	// Keep elements with no node strictly inside the hole.
	keepElems := make([]int, 0, len(sq.Elems))
	used := make([]bool, sq.NumNodes())
	for e := 0; e < sq.NumElems(); e++ {
		el := sq.Elem(e)
		if inside(el[0]) || inside(el[1]) || inside(el[2]) {
			continue
		}
		keepElems = append(keepElems, el[0], el[1], el[2])
		used[el[0]] = true
		used[el[1]] = true
		used[el[2]] = true
	}

	// Compact node numbering.
	newID := make([]int, sq.NumNodes())
	for i := range newID {
		newID[i] = -1
	}
	mesh := &Mesh{Dim: 2, NPE: 3}
	for n := 0; n < sq.NumNodes(); n++ {
		if used[n] {
			newID[n] = len(mesh.X) / 2
			c := sq.Coord(n)
			mesh.X = append(mesh.X, c[0], c[1])
		}
	}
	mesh.Elems = make([]int, len(keepElems))
	for k, old := range keepElems {
		mesh.Elems[k] = newID[old]
	}

	// Deterministic jitter of interior nodes, leaving boundary nodes and a
	// two-cell buffer around the rim fixed so the geometry is preserved.
	// The 0.15h amplitude provably cannot collapse a lattice triangle
	// (legs ≥ 0.7h remain non-parallel), so every element keeps positive
	// area. The jitter breaks the tensor-product structure and produces
	// genuinely unstructured element shapes.
	onB := mesh.BoundaryNodes()
	for n := 0; n < mesh.NumNodes(); n++ {
		if onB[n] {
			continue
		}
		c := mesh.Coord(n)
		if math.Abs(math.Hypot(c[0]-cx, c[1]-cy)-radius) < 2*h {
			continue
		}
		jx, jy := hashJitter(n)
		c[0] += 0.15 * h * jx
		c[1] += 0.15 * h * jy
	}
	return mesh
}

// hashJitter returns two deterministic pseudo-random values in [−1, 1)
// derived from the node id with a splitmix64 step, so the mesh is
// reproducible across runs and platforms.
func hashJitter(n int) (x, y float64) {
	z := uint64(n)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	lo := z & 0xffffffff
	hi := z >> 32
	return float64(lo)/float64(1<<31) - 1, float64(hi)/float64(1<<31) - 1
}

func triArea(m *Mesh, el []int) float64 {
	a, b, c := m.Coord(el[0]), m.Coord(el[1]), m.Coord(el[2])
	return math.Abs((b[0]-a[0])*(c[1]-a[1])-(c[0]-a[0])*(b[1]-a[1])) / 2
}
