package dist

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"parapre/internal/obs"
)

// Injected delay jitter must land in the FaultDelay bucket, not CommTime:
// CommTime models the machine's α + β·bytes plus genuine protocol waits,
// and the partition Clock = Compute + Comm + FaultDelay must hold exactly.
func TestDelayFaultBookedAsFaultDelay(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 7, DelayProb: 1, DelayMax: 1e-2}
	stats, err := RunOpts(4, m, WorldOptions{Faults: plan, Watchdog: 10 * time.Second}, ringProtocol(20))
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	var anyDelay bool
	for _, s := range stats {
		if s.FaultDelay > 0 {
			anyDelay = true
		}
		sum := s.ComputeTime + s.CommTime + s.FaultDelay
		if diff := s.Clock - sum; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("rank %d: Clock %g != Compute+Comm+FaultDelay %g", s.Rank, s.Clock, sum)
		}
		if s.CommTime < 0 {
			t.Errorf("rank %d: negative CommTime %g", s.Rank, s.CommTime)
		}
	}
	if !anyDelay {
		t.Error("certain delay plan produced no FaultDelay anywhere")
	}

	// The booked delay is bounded by the injected amounts: the fault-free
	// CommTime of the same protocol must not shrink under injection (the
	// delay must not be double-counted out of the comm bucket).
	base := Run(4, m, ringProtocol(20))
	for r := range stats {
		if stats[r].ComputeTime != base[r].ComputeTime {
			t.Errorf("rank %d: delay plan changed ComputeTime %g -> %g", r, base[r].ComputeTime, stats[r].ComputeTime)
		}
	}
}

func TestMaxClockErr(t *testing.T) {
	if _, err := MaxClockErr(nil); err == nil {
		t.Error("empty slice accepted")
	}
	bad := []Stats{{Rank: 0}, {Rank: 2}}
	if _, err := MaxClockErr(bad); err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("rank mismatch not reported: %v", err)
	}
	good := []Stats{{Rank: 0, Clock: 1.5}, {Rank: 1, Clock: 2.5}}
	got, err := MaxClockErr(good)
	if err != nil || got != 2.5 {
		t.Errorf("MaxClockErr = %g, %v; want 2.5, nil", got, err)
	}
	// Legacy MaxClock keeps its documented degenerate behavior.
	if MaxClock(nil) != 0 {
		t.Error("MaxClock(nil) != 0")
	}
}

// An attached collector must observe the world without perturbing it:
// stats are bit-identical with and without the observer, and the recorded
// spans carry virtual-clock intervals consistent with the final clocks.
func TestCollectorObservesWithoutPerturbing(t *testing.T) {
	m := testMachine()
	base := Run(4, m, ringProtocol(10))

	col := obs.NewCollector()
	observed, err := RunOpts(4, m, WorldOptions{Collector: col}, ringProtocol(10))
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	if !statsEqual(base, observed) {
		t.Errorf("collector perturbed the modeled times:\n%v\nvs\n%v", base, observed)
	}

	ev := col.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[string]int{}
	for _, e := range ev {
		kinds[e.Kind]++
		if e.VEnd < e.VStart {
			t.Errorf("span ends before it starts: %+v", e)
		}
		if e.VEnd > MaxClock(observed) {
			t.Errorf("span past the final clock: %+v", e)
		}
	}
	// 4 ranks × 10 rounds of send + recv + allreduce.
	for _, k := range []string{obs.KindSend, obs.KindRecv, obs.KindAllReduce} {
		if kinds[k] != 40 {
			t.Errorf("kind %q: %d events, want 40 (have %v)", k, kinds[k], kinds)
		}
	}

	// Send spans carry peer/tag/bytes; flops were attributed to a phase.
	var sawSendMeta bool
	for _, e := range ev {
		if e.Kind == obs.KindSend && e.Peer >= 0 && e.Tag == 5 && e.Bytes == 16 {
			sawSendMeta = true
		}
	}
	if !sawSendMeta {
		t.Error("send spans missing peer/tag/bytes metadata")
	}
	var flops float64
	for _, ps := range col.PhaseBreakdown() {
		flops += ps.Flops
	}
	if want := 4.0 * 10 * 1000; flops != want {
		t.Errorf("attributed flops %g, want %g", flops, want)
	}
}

// Fault events must be counted when a collector is attached: drops,
// delays, corruptions, straggler stall seconds, and crashes.
func TestCollectorCountsFaultEvents(t *testing.T) {
	m := testMachine()
	col := obs.NewCollector()
	plan := &FaultPlan{Seed: 3, DelayProb: 1, DelayMax: 1e-3, CorruptProb: 1, StragglerEvery: 2, StragglerFactor: 4}
	_, err := RunOpts(4, m, WorldOptions{Faults: plan, Watchdog: 10 * time.Second, Collector: col}, func(c *Comm) {
		p := c.Size()
		c.Compute(1e4)
		c.Send((c.Rank()+1)%p, 5, []float64{1, 2})
		if _, err := c.RecvErr((c.Rank()+p-1)%p, 5); err != nil {
			t.Errorf("rank %d recv: %v", c.Rank(), err)
		}
	})
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	sum := func(name string) float64 {
		var v float64
		names, vals := obsCounterDump(t, col)
		for i, k := range names {
			if k == name {
				v += vals[i]
			}
		}
		return v
	}
	if got := sum("fault_delays"); got != 4 {
		t.Errorf("fault_delays = %g, want 4", got)
	}
	if got := sum("fault_corruptions"); got != 4 {
		t.Errorf("fault_corruptions = %g, want 4", got)
	}
	if got := sum("fault_straggle_seconds"); got <= 0 {
		t.Errorf("fault_straggle_seconds = %g, want > 0", got)
	}
}

// obsCounterDump flattens the collector's metrics text into (name, value)
// pairs so tests can sum a counter across ranks without reaching into
// unexported state.
func obsCounterDump(t *testing.T, c *obs.Collector) ([]string, []float64) {
	t.Helper()
	var sb strings.Builder
	if err := c.WriteMetrics(&sb, nil); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	var names []string
	var vals []float64
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" {
			continue
		}
		name := strings.TrimPrefix(line, "parapre_")
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		j := strings.LastIndexByte(line, ' ')
		if j < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[j+1:], 64)
		if err != nil {
			t.Fatalf("bad metrics line %q: %v", line, err)
		}
		names = append(names, name)
		vals = append(vals, v)
	}
	return names, vals
}
