package dist

import (
	"math"
	"testing"
)

func testMachine() *Machine {
	return &Machine{Name: "test", FlopRate: 1e6, Latency: 1e-3, ByteTime: 1e-6, Load: 1, Seed: 0}
}

func TestPingPong(t *testing.T) {
	stats := Run(2, testMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			got := c.Recv(1, 8)
			if len(got) != 1 || got[0] != 6 {
				t.Errorf("rank 0 got %v, want [6]", got)
			}
		} else {
			m := c.Recv(0, 7)
			c.Send(0, 8, []float64{m[0] + m[1] + m[2]})
		}
	})
	if len(stats) != 2 {
		t.Fatalf("stats length %d", len(stats))
	}
	if stats[0].MsgsSent != 1 || stats[0].BytesSent != 24 {
		t.Errorf("rank 0 stats %+v", stats[0])
	}
}

func TestSendCopiesData(t *testing.T) {
	Run(2, testMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // must not affect the in-flight message
			c.Barrier()
		} else {
			c.Barrier()
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("message mutated after send: %v", got)
			}
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	done := make(chan bool, 1)
	Run(2, testMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{0})
		} else {
			defer func() { done <- recover() != nil }()
			c.Recv(0, 2)
		}
	})
	if !<-done {
		t.Fatal("tag mismatch did not panic")
	}
}

func TestNeighborExchangeAllPairs(t *testing.T) {
	// Every rank sends its rank id to every other rank; a full exchange
	// must not deadlock and must deliver correct values.
	const p = 8
	Run(p, testMachine(), func(c *Comm) {
		for to := 0; to < p; to++ {
			if to != c.Rank() {
				c.Send(to, 3, []float64{float64(c.Rank())})
			}
		}
		for from := 0; from < p; from++ {
			if from != c.Rank() {
				got := c.Recv(from, 3)
				if got[0] != float64(from) {
					t.Errorf("rank %d: from %d got %v", c.Rank(), from, got)
				}
			}
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	const p = 7
	Run(p, testMachine(), func(c *Comm) {
		got := c.AllReduceSum(float64(c.Rank() + 1))
		if got != p*(p+1)/2 {
			t.Errorf("rank %d: sum %v, want %v", c.Rank(), got, p*(p+1)/2)
		}
	})
}

func TestAllReduceRepeatedWaves(t *testing.T) {
	// Many back-to-back collectives stress the generation/parity logic.
	const p, waves = 5, 200
	Run(p, testMachine(), func(c *Comm) {
		for w := 0; w < waves; w++ {
			got := c.AllReduceSum(float64(w))
			if got != float64(w*p) {
				t.Errorf("rank %d wave %d: %v, want %v", c.Rank(), w, got, w*p)
				return
			}
		}
	})
}

func TestAllReduceMaxMin(t *testing.T) {
	const p = 6
	Run(p, testMachine(), func(c *Comm) {
		if got := c.AllReduceMax(float64(c.Rank())); got != p-1 {
			t.Errorf("max = %v", got)
		}
		if got := c.AllReduceMin(float64(c.Rank())); got != 0 {
			t.Errorf("min = %v", got)
		}
	})
}

func TestAllReduceSumVec(t *testing.T) {
	const p = 4
	Run(p, testMachine(), func(c *Comm) {
		v := []float64{float64(c.Rank()), 1}
		got := c.AllReduceSumVec(v)
		if got[0] != 6 || got[1] != p {
			t.Errorf("rank %d: %v", c.Rank(), got)
		}
	})
}

func TestAllGather(t *testing.T) {
	const p = 4
	counts := []int{1, 2, 3, 4}
	Run(p, testMachine(), func(c *Comm) {
		r := c.Rank()
		mine := make([]float64, counts[r])
		for i := range mine {
			mine[i] = float64(10*r + i)
		}
		got := c.AllGather(mine, counts)
		want := []float64{0, 10, 11, 20, 21, 22, 30, 31, 32, 33}
		if len(got) != len(want) {
			t.Fatalf("rank %d: len %d", r, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rank %d: got %v", r, got)
			}
		}
	})
}

func TestVirtualClockDeterministic(t *testing.T) {
	run := func() float64 {
		stats := Run(4, LinuxCluster(), func(c *Comm) {
			c.Compute(1e6)
			c.AllReduceSum(1)
			if c.Rank() > 0 {
				c.Send(c.Rank()-1, 0, make([]float64, 100))
			}
			if c.Rank() < c.Size()-1 {
				c.Recv(c.Rank()+1, 0)
			}
			c.Barrier()
		})
		return MaxClock(stats)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("virtual time not deterministic: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatal("virtual time not positive")
	}
}

func TestVirtualClockComputeAccounting(t *testing.T) {
	m := testMachine()
	stats := Run(1, m, func(c *Comm) {
		c.Compute(5e6)
	})
	if want := 5.0; math.Abs(stats[0].ComputeTime-want) > 1e-12 {
		t.Fatalf("compute time %v, want %v", stats[0].ComputeTime, want)
	}
	if stats[0].CommTime != 0 {
		t.Fatalf("comm time %v, want 0", stats[0].CommTime)
	}
	if stats[0].Flops != 5e6 {
		t.Fatalf("flops %v", stats[0].Flops)
	}
}

func TestLoadFactorSlowsCompute(t *testing.T) {
	fast := Origin3800Unloaded()
	slow := Origin3800()
	tf := Run(1, fast, func(c *Comm) { c.Compute(1e8) })[0].Clock
	ts := Run(1, slow, func(c *Comm) { c.Compute(1e8) })[0].Clock
	if math.Abs(ts/tf-slow.Load) > 1e-9 {
		t.Fatalf("load factor: %v/%v, want ratio %v", ts, tf, slow.Load)
	}
}

func TestMessageTimeDominatedByLatencyOnCluster(t *testing.T) {
	// A small message on the cluster costs ≈α; on the Origin it is 20×
	// cheaper. This is the contrast driving the paper's scalability gap.
	cl, or := LinuxCluster(), Origin3800()
	small := 8
	if cl.messageTime(small) < 10*or.messageTime(small) {
		t.Fatalf("cluster msg %v vs origin %v: expected ≥10× gap",
			cl.messageTime(small), or.messageTime(small))
	}
}

func TestCollectiveTimeGrowsLogarithmically(t *testing.T) {
	m := LinuxCluster()
	t4 := m.collectiveTime(4, 8)
	t16 := m.collectiveTime(16, 8)
	t17 := m.collectiveTime(17, 8)
	if math.Abs(t16/t4-2) > 1e-9 {
		t.Fatalf("collective scaling: t16/t4 = %v, want 2", t16/t4)
	}
	if t17 <= t16 {
		t.Fatalf("ceil(log2) not applied: %v <= %v", t17, t16)
	}
	if m.collectiveTime(1, 8) != 0 {
		t.Fatal("P=1 collective should be free")
	}
}

func TestClockSynchronizesAtBarrier(t *testing.T) {
	stats := Run(3, testMachine(), func(c *Comm) {
		c.Compute(float64(c.Rank()) * 1e6) // ranks do 0s, 1s, 2s of work
		c.Barrier()
	})
	// After the barrier every clock is ≥ the slowest rank's compute time.
	for _, s := range stats {
		if s.Clock < 2 {
			t.Fatalf("rank %d clock %v < 2 after barrier", s.Rank, s.Clock)
		}
	}
}

func TestWorldSingleRank(t *testing.T) {
	stats := Run(1, testMachine(), func(c *Comm) {
		if c.Size() != 1 {
			t.Errorf("size %d", c.Size())
		}
		if got := c.AllReduceSum(3); got != 3 {
			t.Errorf("self allreduce %v", got)
		}
		c.Barrier()
	})
	if len(stats) != 1 {
		t.Fatal("stats")
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0, testMachine())
}

func TestMaxClock(t *testing.T) {
	s := []Stats{{Clock: 1}, {Clock: 5}, {Clock: 3}}
	if got := MaxClock(s); got != 5 {
		t.Fatalf("MaxClock = %v", got)
	}
	if MaxClock(nil) != 0 {
		t.Fatal("MaxClock(nil)")
	}
}

func TestMachineNameExposed(t *testing.T) {
	Run(1, LinuxCluster(), func(c *Comm) {
		if c.MachineName() != "LinuxCluster" {
			t.Errorf("MachineName = %q", c.MachineName())
		}
	})
}

func TestCommAccessorPanicsOutOfRange(t *testing.T) {
	w := NewWorld(2, testMachine())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Comm(2)
}
