// Positive allocfree fixture: every allocation construct the analyzer
// claims to see, spread across direct sites, a transitive cone, and a
// par fan-out body. Lines without a WANT marker exercise the deliberate
// exemptions (pruned constant branches, panic arguments, fan-out closure
// creation).
package krylov

import (
	"fmt"

	par "parapre/internal/lint/testdata/src/allocfree/positive/internal/par"
)

const debug = false

type big struct{ a [64]float64 }

type box struct{ v any }

// scratch sits in Hot's cone: its allocation is charged to the root.
func scratch(n int) []float64 {
	return make([]float64, n) // WANT allocfree
}

// sink has an interface parameter: concrete float arguments box.
func sink(v any) {}

//lint:allocfree fixture claim: the transitive cone must be proven clean
func Hot(x []float64) float64 {
	s := scratch(len(x))
	copy(s, x)
	return s[0]
}

//lint:allocfree fixture claim: every direct construct below must be flagged
func Direct(x []float64) {
	y := make([]float64, len(x)) // WANT allocfree
	y = append(y, 1)             // WANT allocfree
	p := new(big)                // WANT allocfree
	q := &big{}                  // WANT allocfree
	m := map[int]int{}           // WANT allocfree
	lits := []float64{1, 2}      // WANT allocfree
	f := func() {}               // WANT allocfree
	go f()                       // WANT allocfree
	fmt.Println()                // WANT allocfree
	var bx box
	bx.v = x[0] // WANT allocfree
	sink(x[0])  // WANT allocfree
	p.a[0] = 1
	q.a[0] = 2
	m[0] = len(lits)
	x[0] = y[0]
	if debug {
		waste := make([]float64, 9) // pruned on the default build: silent
		_ = waste
	}
	if len(x) == 0 {
		panic(fmt.Sprintf("empty input %d", len(x))) // panic args exempt
	}
}

//lint:allocfree fixture claim: fan-out closure exempt, body still scanned
func Fan(x []float64) {
	par.For(len(x), func(i int) {
		x[i] = float64(i) // clean body: no finding
	})
	par.For(len(x), func(i int) {
		buf := make([]float64, 1) // WANT allocfree
		x[i] = buf[0]
	})
}
