package partition

import (
	"fmt"
	"sort"
)

// Simple partitions nodes by coordinate boxes — the "simple grid
// partitioning scheme" of the paper's §5.1, which produces subdomains
// shaped as rectangles (2D) or boxes (3D) when the global grid is one.
// coords holds dim interleaved coordinates per node. p is factored into
// near-equal counts per axis; within each axis nodes are split into
// equal-population slabs, so the scheme also tolerates mildly non-uniform
// grids.
func Simple(coords []float64, dim, p int) []int {
	n := len(coords) / dim
	if p < 1 || p > n {
		panic(fmt.Sprintf("partition: Simple p=%d for %d nodes", p, n))
	}
	factors := factorAxes(p, dim)
	// Slab boundaries per axis via quantiles of the coordinates.
	type axisCuts []float64
	cuts := make([]axisCuts, dim)
	for d := 0; d < dim; d++ {
		k := factors[d]
		if k == 1 {
			cuts[d] = nil
			continue
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = coords[i*dim+d]
		}
		sort.Float64s(vals)
		c := make(axisCuts, k-1)
		for q := 1; q < k; q++ {
			c[q-1] = vals[q*n/k]
		}
		cuts[d] = c
	}
	bin := func(v float64, c axisCuts) int {
		// First cut strictly greater than v.
		lo := 0
		for lo < len(c) && v >= c[lo] {
			lo++
		}
		return lo
	}
	part := make([]int, n)
	for i := 0; i < n; i++ {
		id := 0
		for d := 0; d < dim; d++ {
			id = id*factors[d] + bin(coords[i*dim+d], cuts[d])
		}
		part[i] = id
	}
	return part
}

// factorAxes factors p into dim near-equal factors (descending), e.g.
// 16 → [4 4] in 2D, 16 → [4 2 2] in 3D.
func factorAxes(p, dim int) []int {
	out := make([]int, dim)
	for i := range out {
		out[i] = 1
	}
	// Repeatedly peel the largest prime factor onto the currently
	// smallest axis product.
	for rem := p; rem > 1; {
		f := smallestPrimeFactor(rem)
		rem /= f
		// Assign to the axis with the smallest current factor.
		best := 0
		for d := 1; d < dim; d++ {
			if out[d] < out[best] {
				best = d
			}
		}
		out[best] *= f
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func smallestPrimeFactor(n int) int {
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return f
		}
	}
	return n
}
