// Fixture for the call-graph builder unit test: the three call kinds,
// recursion, a resolved method call, a method value (address-taken), and
// an indirect call through a parameter.
package callgraph

func Leaf() {}

// Rec recurses: a self edge.
func Rec(n int) {
	if n > 0 {
		Rec(n - 1)
	}
}

// Caller exercises the three call kinds against the same callee.
func Caller() {
	Leaf()
	defer Leaf()
	go Leaf()
}

type T struct{}

func (T) M() {}

// MethodCalls: a resolved method call, a method value, an indirect call.
func MethodCalls(t T, f func()) {
	t.M()
	g := t.M
	_ = g
	f()
}
