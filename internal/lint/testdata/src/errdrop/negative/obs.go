package negative

import "io"

// Handled uses of the observability exporter API shapes: errdrop must
// stay silent on all of these.

type collector struct{}

func (*collector) WriteMetrics(w io.Writer, labels map[string]string) error { return nil }
func (*collector) WriteMetricsFile(path string, labels map[string]string) error {
	return nil
}

type traceEntry struct{}
type traceOptions struct{}

func writeChromeTrace(w io.Writer, entries []traceEntry, opts traceOptions) error { return nil }
func validateChromeTrace(data []byte) error                                       { return nil }

// Export propagates the first exporter failure.
func Export(col *collector, w io.Writer, entries []traceEntry) error {
	if err := writeChromeTrace(w, entries, traceOptions{}); err != nil {
		return err
	}
	return col.WriteMetrics(w, nil)
}

// BestEffort explicitly discards a metrics snapshot written purely for
// humans — the deliberate-discard idiom the analyzer accepts.
func BestEffort(col *collector) {
	_ = col.WriteMetricsFile("metrics.prom", nil)
}

// Check returns the validation verdict to the caller.
func Check(data []byte) error {
	return validateChromeTrace(data)
}
