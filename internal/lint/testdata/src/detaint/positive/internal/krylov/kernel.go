// A simulated kernel package (the trailing internal/krylov path element
// puts it in detaint's kernel set). Every call site below looks clean to
// the syntactic determinism analyzer — the sources are in package helper.
package krylov

import helper "parapre/internal/lint/testdata/src/detaint/positive/helper"

// Scale feeds a clock-derived factor into kernel float state.
func Scale(x []float64) {
	f := helper.Jitter() // WANT detaint
	for i := range x {
		x[i] *= f
	}
}

// Weight returns a map-order-dependent sum as kernel output.
func Weight(m map[int]float64) float64 {
	return helper.MapSum(m) // WANT detaint
}
