package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the unit the interprocedural analyzers operate on: every
// module-internal package a run has loaded (lint targets and their
// module-internal dependencies), plus the lazily built call graph and
// per-function CFG cache over them. Dependencies matter: an annotated
// kernel's call cone crosses package boundaries, and the analyzer must
// see the callee bodies to say anything.
type Program struct {
	Pkgs []*Package // sorted by import path

	cg   *CallGraph
	cfgs map[*ast.FuncDecl]*CFG
}

// NewProgram builds a program over the given packages (duplicates are
// dropped, order normalized).
func NewProgram(pkgs []*Package) *Program {
	seen := map[string]bool{}
	var uniq []*Package
	for _, p := range pkgs {
		if !seen[p.Path] {
			seen[p.Path] = true
			uniq = append(uniq, p)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Path < uniq[j].Path })
	return &Program{Pkgs: uniq, cfgs: map[*ast.FuncDecl]*CFG{}}
}

// CallGraph returns the program's call graph, building it on first use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog.Pkgs)
	}
	return prog.cg
}

// CFGOf returns the (cached) control-flow graph of a declared function.
func (prog *Program) CFGOf(node *CGNode) *CFG {
	if c, ok := prog.cfgs[node.Decl]; ok {
		return c
	}
	c := NewCFG(node.Pkg, node.Decl.Body)
	prog.cfgs[node.Decl] = c
	return c
}

// ProgramAnalyzer is one interprocedural check over a whole program.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// AllProgram returns the interprocedural analyzer suite in reporting
// order. It runs on the default (untagged) build only: the paranoid
// debugging build deliberately trades allocations for invariant checks
// and is outside the steady-state contracts these analyzers prove.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{DeTaint, AllocFree, ErrType, WaitLeak}
}

// RunProgram runs the given interprocedural analyzers and filters their
// findings through the shared suppression index.
func RunProgram(prog *Program, analyzers []*ProgramAnalyzer, ig *Ignores) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		out = append(out, ig.Filter(a.Run(prog))...)
	}
	return out
}

// lastInternalPkg extracts the final "internal/<name>" component of an
// import path: "parapre/internal/krylov" → "krylov". Fixture packages
// nest under internal/lint/testdata and embed their simulated kernel
// path ("…/testdata/src/detaint/positive/internal/krylov"), which the
// last-component rule resolves the same way.
func lastInternalPkg(pkgPath string) string {
	i := strings.LastIndex(pkgPath, "/internal/")
	if i < 0 {
		return ""
	}
	rest := pkgPath[i+len("/internal/"):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		return "" // internal/<name>/<sub>: not a leaf kernel package
	}
	return rest
}

// directiveOnDecl reports whether fd's doc comment carries the given
// //lint:<directive> line (trailing text after the directive is allowed
// and ignored).
func directiveOnDecl(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	want := "//lint:" + directive
	for _, c := range fd.Doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

// FuncDisplayName renders fn the way the diagnostics and the annotation
// parity test name functions: pkgpath.Func or (pkgpath.Recv).Method,
// with pointer receivers spelled *Recv.
func FuncDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + "." + fn.Name()
		}
		return fn.Name()
	}
	recv := sig.Recv().Type()
	star := ""
	if p, ok := recv.(*types.Pointer); ok {
		star = "*"
		recv = p.Elem()
	}
	name := recv.String()
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			name = obj.Pkg().Path() + "." + obj.Name()
		} else {
			name = obj.Name()
		}
	}
	return "(" + star + name + ")." + fn.Name()
}
