package verify

import (
	"math/rand"

	"parapre/internal/sparse"
)

// randomDiagDominant builds a seeded random n×n matrix with ~density
// off-diagonal fill and a diagonal large enough to keep every
// factorization well defined. Deterministic in (n, density, seed).
func randomDiagDominant(n int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, n*4)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				if v < 0 {
					off -= v
				} else {
					off += v
				}
			}
		}
		coo.Add(i, i, off+1+rng.Float64())
	}
	return coo.ToCSR()
}

// randomSPD builds a seeded random sparse SPD matrix: symmetric pattern,
// symmetric values, strictly diagonally dominant (hence SPD).
func randomSPD(n int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, n*4)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				coo.Add(j, i, v)
				a := v
				if a < 0 {
					a = -a
				}
				diag[i] += a
				diag[j] += a
			}
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, diag[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

// randomNonsymPattern builds a matrix whose sparsity pattern is
// structurally unsymmetric: one-way couplings appear with the given
// density. Diagonally dominant so factorizations stay well defined.
func randomNonsymPattern(n int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, n*4)
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			// Independent draw per directed edge — about half the cross
			// couplings end up one-way.
			if rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				if v < 0 {
					off -= v
				} else {
					off += v
				}
			}
		}
		coo.Add(i, i, off+1+rng.Float64())
	}
	return coo.ToCSR()
}

// randomRHS builds a seeded right-hand side with entries in [-1, 1).
func randomRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	return b
}

// randomPartition assigns each of n nodes to one of p parts, guaranteeing
// every part is non-empty when p ≤ n (the first p nodes seed the parts).
func randomPartition(n, p int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed ^ 0x9a47))
	part := make([]int, n)
	for i := 0; i < n; i++ {
		if i < p {
			part[i] = i
		} else {
			part[i] = rng.Intn(p)
		}
	}
	return part
}
