package sparse

import (
	"math/rand"
	"testing"

	"parapre/internal/par"
)

// blockCSR builds an nb×nb block-sparse matrix with dense r×r blocks — the
// vector-FEM pattern (kron(G, ones(r,r)) with a full block diagonal) whose
// in-block fill is exactly 1, so the auto-router accepts it.
func blockCSR(rng *rand.Rand, nb, r int, density float64) *CSR {
	n := nb * r
	coo := NewCOO(n, n, nb*r*r*4)
	addBlock := func(bi, bj int) {
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				coo.Add(bi*r+a, bj*r+b, rng.NormFloat64())
			}
		}
	}
	for bi := 0; bi < nb; bi++ {
		addBlock(bi, bi)
		for bj := 0; bj < nb; bj++ {
			if bj != bi && rng.Float64() < density {
				addBlock(bi, bj)
			}
		}
	}
	return coo.ToCSR()
}

func csrEqual(t *testing.T, tag string, a, b *CSR) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: shape/nnz mismatch: %v vs %v", tag, a, b)
	}
	for i := 0; i < a.Rows; i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		if len(ca) != len(cb) {
			t.Fatalf("%s: row %d nnz %d vs %d", tag, i, len(ca), len(cb))
		}
		for k := range ca {
			if ca[k] != cb[k] || va[k] != vb[k] {
				t.Fatalf("%s: row %d entry %d: (%d,%v) vs (%d,%v)",
					tag, i, k, ca[k], va[k], cb[k], vb[k])
			}
		}
	}
}

func TestBSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range []int{2, 3, 4, 5} {
		a := blockCSR(rng, 17, r, 0.2)
		b, err := ToBSR(a, r, r)
		if err != nil {
			t.Fatal(err)
		}
		if b.NNZ() != a.NNZ() {
			t.Fatalf("r=%d: fill-free matrix gained padding: %d vs %d", r, b.NNZ(), a.NNZ())
		}
		csrEqual(t, "round-trip", a, b.ToCSR())
	}
}

// TestBSRMatVecBitIdentical checks the tentpole contract: the blocked
// kernels reproduce the CSR kernels bit for bit, for every variant, block
// size and worker count — including blocks padded with explicit zeros.
func TestBSRMatVecBitIdentical(t *testing.T) {
	defer SetAutoBlock(SetAutoBlock(false)) // compare raw kernels, not the router
	rng := rand.New(rand.NewSource(2))
	for _, r := range []int{2, 3, 4} {
		// Dense-block matrix (fill-free) and a ragged one (padded blocks).
		for _, density := range []float64{0.15, 0.0} {
			var a *CSR
			if density > 0 {
				a = blockCSR(rng, 33, r, density)
			} else {
				a = randCSR(rng, 33*r, 33*r, 0.05) // scalar pattern → padded blocks
			}
			b, err := ToBSR(a, r, r)
			if err != nil {
				t.Fatal(err)
			}
			n := a.Rows
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			yRef := make([]float64, n)
			prev := par.SetWorkers(1)
			a.MulVecTo(yRef, x)
			par.SetWorkers(prev)

			for _, w := range []int{1, 2, 4, 8} {
				pw := par.SetWorkers(w)
				y := make([]float64, n)
				b.MulVecTo(y, x)
				par.SetWorkers(pw)
				for i := range y {
					if y[i] != yRef[i] {
						t.Fatalf("r=%d w=%d: MulVecTo[%d] = %x, want %x", r, w, i, y[i], yRef[i])
					}
				}
			}
		}
	}
}

// TestBSRMatVecAddSub checks MulVecAdd/MulVecSub against the CSR kernels
// bit for bit across worker counts.
func TestBSRMatVecAddSub(t *testing.T) {
	defer SetAutoBlock(SetAutoBlock(false))
	rng := rand.New(rand.NewSource(3))
	a := blockCSR(rng, 41, 3, 0.1)
	b, err := ToBSR(a, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	x := make([]float64, n)
	y0 := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y0[i] = rng.NormFloat64()
	}
	prev := par.SetWorkers(1)
	addRef := append([]float64(nil), y0...)
	a.MulVecAdd(addRef, -1.3, x)
	subRef := append([]float64(nil), y0...)
	a.MulVecSub(subRef, x)
	par.SetWorkers(prev)

	for _, w := range []int{1, 2, 4, 8} {
		pw := par.SetWorkers(w)
		add := append([]float64(nil), y0...)
		b.MulVecAdd(add, -1.3, x)
		sub := append([]float64(nil), y0...)
		b.MulVecSub(sub, x)
		par.SetWorkers(pw)
		for i := range add {
			if add[i] != addRef[i] {
				t.Fatalf("w=%d: MulVecAdd[%d] = %x, want %x", w, i, add[i], addRef[i])
			}
			if sub[i] != subRef[i] {
				t.Fatalf("w=%d: MulVecSub[%d] = %x, want %x", w, i, sub[i], subRef[i])
			}
		}
	}
}

func TestDetectBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, r := range []int{2, 3, 4} {
		a := blockCSR(rng, 40, r, 0.1)
		if got := DetectBlockSize(a, 1.0); got != r {
			t.Fatalf("dense %d×%d blocks: detected %d", r, r, got)
		}
	}
	// A scalar 5-point-style random pattern has no natural blocks.
	s := randCSR(rng, 120, 120, 0.03)
	if got := DetectBlockSize(s, 1.0); got != 1 {
		t.Fatalf("scalar pattern: detected %d, want 1", got)
	}
	// Dimensions that do not tile decline.
	odd := randCSR(rng, 121, 121, 0.03)
	if got := DetectBlockSize(odd, 1.0); got != 1 {
		t.Fatalf("121×121: detected %d, want 1", got)
	}
}

// TestAutoBlockRouting checks the adaptive path: a large vector-FEM-style
// matrix converts and routes through BSR, a scalar matrix stays CSR, and
// mutation invalidates the cached conversion.
func TestAutoBlockRouting(t *testing.T) {
	defer SetAutoBlock(SetAutoBlock(true))
	rng := rand.New(rand.NewSource(5))
	a := blockCSR(rng, 200, 3, 0.02) // ≫ autoBlockMinNNZ
	if a.NNZ() < autoBlockMinNNZ {
		t.Fatalf("test matrix too small: %d", a.NNZ())
	}
	b := a.AutoBlocked()
	if b == nil {
		t.Fatal("block matrix not auto-converted")
	}
	if b.BR != 3 || b.BC != 3 {
		t.Fatalf("auto-converted to %d×%d blocks, want 3×3", b.BR, b.BC)
	}
	// Routed product equals the direct CSR kernel bit for bit.
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.Rows)
	a.MulVecTo(y, x) // routes through b
	yRef := make([]float64, a.Rows)
	b2, _ := ToBSR(a, 3, 3)
	b2.MulVecTo(yRef, x)
	for i := range y {
		if y[i] != yRef[i] {
			t.Fatalf("routed MulVecTo[%d] = %x, want %x", i, y[i], yRef[i])
		}
	}

	// Scalar matrices do not convert.
	s := randCSRLarge(rand.New(rand.NewSource(6)), 2000, 7)
	if s.AutoBlocked() != nil {
		t.Fatal("scalar matrix auto-converted")
	}

	// Mutation invalidates: after Scale the routed product reflects the
	// new values.
	a.Scale(2)
	y2 := make([]float64, a.Rows)
	a.MulVecTo(y2, x)
	for i := range y2 {
		if y2[i] != 2*y[i] {
			t.Fatalf("post-Scale routed product stale at %d: %v vs %v", i, y2[i], 2*y[i])
		}
	}

	// Disabled: no conversion.
	SetAutoBlock(false)
	a.InvalidateBlocked()
	if a.AutoBlocked() != nil {
		t.Fatal("AutoBlocked returned a conversion while disabled")
	}
	SetAutoBlock(true)
}

func TestToBSRRejectsBadTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 10, 10, 0.3)
	if _, err := ToBSR(a, 3, 3); err == nil {
		t.Fatal("10×10 tiled by 3×3 did not error")
	}
	if _, err := ToBSR(a, 0, 2); err == nil {
		t.Fatal("zero block size did not error")
	}
}

// FuzzBSRRoundTrip drives random CSR matrices through ToBSR/ToCSR and
// checks the round trip preserves every stored entry (ToCSR drops the
// padding zeros ToBSR introduced, so the fill-free comparison is against
// the original with its own explicit zeros intact).
func FuzzBSRRoundTrip(f *testing.F) {
	f.Add([]byte{3, 2, 0, 0, 1, 0, 0, 2, 2, 2, 255}, uint8(2))
	f.Add([]byte{1, 16, 0, 15, 7, 0, 0, 7, 0, 15}, uint8(3))
	f.Add([]byte{}, uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, rSeed uint8) {
		defer SetAutoBlock(SetAutoBlock(false))
		r := 2 + int(rSeed)%3 // block size 2..4
		nb := 3 + len(data)%5
		n := nb * r
		coo := NewCOO(n, n, len(data)+n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1+float64(i)) // nonzero diagonal anchors every row
		}
		for k := 0; k+1 < len(data); k += 2 {
			i := int(data[k]) % n
			j := int(data[k+1]) % n
			coo.Add(i, j, float64(int8(data[k]))-0.5)
		}
		a := coo.ToCSR()
		b, err := ToBSR(a, r, r)
		if err != nil {
			t.Fatal(err)
		}
		back := b.ToCSR()
		// Every original entry must survive with its exact value (COO
		// duplicate summing happened before the conversion).
		for i := 0; i < n; i++ {
			ca, va := a.Row(i)
			for k, j := range ca {
				if va[k] == 0 {
					continue // legitimately dropped with the padding
				}
				cb, vb := back.Row(i)
				found := false
				for kk, jj := range cb {
					if jj == j {
						if vb[kk] != va[k] {
							t.Fatalf("(%d,%d): %x vs %x", i, j, va[k], vb[kk])
						}
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("entry (%d,%d)=%v lost in round trip", i, j, va[k])
				}
			}
		}
		// And the matvecs agree bit for bit.
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		ya := make([]float64, n)
		yb := make([]float64, n)
		prev := par.SetWorkers(1)
		a.MulVecTo(ya, x)
		par.SetWorkers(prev)
		b.MulVecTo(yb, x)
		for i := range ya {
			if ya[i] != yb[i] {
				t.Fatalf("matvec[%d]: %x vs %x", i, ya[i], yb[i])
			}
		}
	})
}

// BenchmarkSpMVCSR / BenchmarkSpMVBSR pair the scalar and blocked kernels
// on the same 3×3-block matrix (run with -benchmem).
func benchSpMV(b *testing.B, blocked bool) {
	rng := rand.New(rand.NewSource(8))
	a := blockCSR(rng, 1500, 3, 0.003)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	var bm *BSR
	if blocked {
		var err error
		bm, err = ToBSR(a, 3, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	prev := SetAutoBlock(false) // bench the raw kernels, not the router
	b.SetBytes(int64(8 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			bm.MulVecTo(y, x)
		} else {
			a.MulVecTo(y, x)
		}
	}
	b.StopTimer()
	SetAutoBlock(prev)
}

func BenchmarkSpMVCSR(b *testing.B) { benchSpMV(b, false) }
func BenchmarkSpMVBSR(b *testing.B) { benchSpMV(b, true) }
