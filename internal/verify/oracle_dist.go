package verify

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/sparse"
)

// ilu0Solve, ic0Solve and iluT build the communication-free per-rank
// solves the dist-vs-seq cases share between both runs.
func ilu0Solve(s *dsys.System) (func(z, r []float64), error) {
	f, err := ilu.ILU0(s.OwnedBlock())
	if err != nil {
		return nil, err
	}
	return f.Solve, nil
}

func ic0Solve(s *dsys.System) (func(z, r []float64), error) {
	c, err := ilu.IC0(s.OwnedBlock())
	if err != nil {
		return nil, err
	}
	return c.Solve, nil
}

func iluT(a *sparse.CSR) (*ilu.LU, error) {
	return ilu.ILUT(a, ilu.ILUTOptions{Tau: 1e-3, LFil: 5})
}

// seqMirror replays the distributed solver arithmetic sequentially: the
// global vector is the rank-major concatenation of the owned local
// vectors, the matvec runs each rank's local product with external values
// gathered from their owners' slots, and the inner product folds the
// per-rank partials in rank order — exactly the association
// dist.AllReduceSum uses. Because every norm in the Krylov recurrences
// goes through the injected dot, the mirror reproduces the distributed
// run bit for bit (for communication-free preconditioners).
type seqMirror struct {
	systems []*dsys.System
	offs    []int   // offs[r] = concat offset of rank r's owned block
	n       int     // total owned unknowns
	extSrc  [][]int // per rank: concat index feeding each external slot
	ext     [][]float64
}

func newSeqMirror(systems []*dsys.System) *seqMirror {
	m := &seqMirror{systems: systems, offs: make([]int, len(systems)+1)}
	idx := make(map[int]int) // global id → concat index
	for r, s := range systems {
		m.offs[r+1] = m.offs[r] + s.NLoc()
		for l, g := range s.GlobalIDs {
			idx[g] = m.offs[r] + l
		}
	}
	m.n = m.offs[len(systems)]
	m.extSrc = make([][]int, len(systems))
	m.ext = make([][]float64, len(systems))
	for r, s := range systems {
		m.extSrc[r] = make([]int, s.NExt())
		for k, g := range s.ExtGlobal {
			m.extSrc[r][k] = idx[g]
		}
		m.ext[r] = make([]float64, s.NLoc()+s.NExt())
	}
	return m
}

// matvec is the sequential replay of the distributed A·x.
func (m *seqMirror) matvec(y, x []float64) {
	for r, s := range m.systems {
		ext := m.ext[r]
		copy(ext[:s.NLoc()], x[m.offs[r]:m.offs[r+1]])
		for k, src := range m.extSrc[r] {
			ext[s.NLoc()+k] = x[src]
		}
		s.A.MulVecTo(y[m.offs[r]:m.offs[r+1]], ext)
	}
}

// dot folds the per-rank partial inner products in rank order, matching
// the deterministic reduction of dist.AllReduceSum.
func (m *seqMirror) dot(u, v []float64) float64 {
	var acc float64
	for r := range m.systems {
		p := sparse.Dot(u[m.offs[r]:m.offs[r+1]], v[m.offs[r]:m.offs[r+1]])
		if r == 0 {
			acc = p
		} else {
			acc += p
		}
	}
	return acc
}

// prec assembles the sequential block-Jacobi preconditioner from per-rank
// local solves (nil solves mean identity → nil Prec overall).
func (m *seqMirror) prec(solves []func(z, r []float64)) krylov.Prec {
	if solves == nil {
		return nil
	}
	return func(z, r []float64) {
		for q := range m.systems {
			solves[q](z[m.offs[q]:m.offs[q+1]], r[m.offs[q]:m.offs[q+1]])
		}
	}
}

// distSolveCase is one dist-vs-seq comparison: a solver variant, a
// preconditioner built per rank from the local system, and a world size.
type distSolveCase struct {
	label string
	cg    bool
	flex  bool
	spd   bool
	// build returns the local solve for one rank (nil → unpreconditioned).
	build func(s *dsys.System) (func(z, r []float64), error)
}

func distSolveCases() []distSolveCase {
	ilut := func(s *dsys.System) (func(z, r []float64), error) {
		f, err := iluT(s.OwnedBlock())
		if err != nil {
			return nil, err
		}
		return f.Solve, nil
	}
	return []distSolveCase{
		{label: "gmres/none", build: nil},
		{label: "gmres/block1", build: ilu0Solve},
		{label: "fgmres/block2", flex: true, build: ilut},
		{label: "cg/none", cg: true, spd: true, build: nil},
		{label: "cg/blockIC", cg: true, spd: true, build: ic0Solve},
	}
}

// checkDistVsSeq pins the distributed GMRES/FGMRES/CG solvers to the
// sequential replay at P ∈ {2, 4, 8}: identical iteration counts, and
// residual histories that agree within 1e-12 of the initial norm. Any
// divergence means the parallel arithmetic is not the algorithm it claims
// to be.
func checkDistVsSeq(cfg Config) []Violation {
	var out []Violation
	ps := []int{2, 4}
	if !cfg.Quick {
		ps = append(ps, 8)
	}
	n := 24
	for _, p := range ps {
		for _, sc := range distSolveCases() {
			seed := cfg.Seed + 1600*int64(p) + int64(len(sc.label))
			var a *sparse.CSR
			if sc.spd {
				a = randomSPD(n, 0.3, seed)
			} else {
				a = randomDiagDominant(n, 0.3, seed)
			}
			part := randomPartition(n, p, seed)
			out = append(out, distVsSeqOne(sc, a, part, n, p, seed, "")...)
		}
		if !cfg.Quick && p > 2 {
			// Degenerate coverage: the last rank owns nothing.
			seed := cfg.Seed + 1700*int64(p)
			a := randomDiagDominant(n, 0.3, seed)
			part := randomPartition(n, p-1, seed)
			out = append(out, distVsSeqOne(distSolveCases()[0], a, part, n, p, seed, "empty-rank")...)
		}
	}
	return out
}

func distVsSeqOne(sc distSolveCase, a *sparse.CSR, part []int, n, p int, seed int64, note string) []Violation {
	var out []Violation
	label := sc.label
	if note != "" {
		label += "/" + note
	}
	tag := func(extra string) string { return repro(n, seed, fmt.Sprintf("P=%d case=%s %s", p, label, extra)) }

	bg := randomRHS(n, seed)
	systems := dsys.Distribute(a, bg, part, p)

	// Per-rank local solves, shared verbatim by both runs.
	var solves []func(z, r []float64)
	if sc.build != nil {
		solves = make([]func(z, r []float64), p)
		for r, s := range systems {
			sv, err := sc.build(s)
			if err != nil {
				return []Violation{{"dist-vs-seq", fmt.Sprintf("rank %d preconditioner: %v", r, err), tag("")}}
			}
			solves[r] = sv
		}
	}

	opt := krylov.Options{Restart: 8, MaxIters: 40, Tol: 1e-8, Flexible: sc.flex, RecordHistory: true}

	// Distributed run.
	results := make([]krylov.Result, p)
	xl := make([][]float64, p)
	locals := dsys.Scatter(systems, bg)
	dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
		r := c.Rank()
		s := systems[r]
		xl[r] = make([]float64, s.NLoc())
		var prec krylov.Prec
		if solves != nil {
			prec = func(z, rr []float64) { solves[r](z, rr) }
		}
		o := opt
		if sc.cg {
			results[r] = krylov.DistributedCG(c, s, prec, locals[r], xl[r], o)
		} else {
			results[r] = krylov.Distributed(c, s, prec, locals[r], xl[r], o)
		}
	})

	// The recurrence is replicated: every rank must report the same run.
	for r := 1; r < p; r++ {
		if results[r].Iterations != results[0].Iterations || len(results[r].History) != len(results[0].History) {
			out = append(out, Violation{"dist-vs-seq",
				fmt.Sprintf("rank %d reports %d iterations (%d history entries), rank 0 %d (%d) — the replicated recurrence diverged across ranks",
					r, results[r].Iterations, len(results[r].History), results[0].Iterations, len(results[0].History)),
				tag("")})
			return out
		}
	}

	// Sequential mirror.
	m := newSeqMirror(systems)
	bm := make([]float64, m.n)
	for r, lb := range locals {
		copy(bm[m.offs[r]:m.offs[r+1]], lb)
	}
	xm := make([]float64, m.n)
	var res krylov.Result
	if sc.cg {
		res = krylov.CG(m.n, m.matvec, m.prec(solves), m.dot, bm, xm, opt)
	} else {
		res = krylov.GMRES(m.n, m.matvec, m.prec(solves), m.dot, bm, xm, opt)
	}

	d0 := results[0]
	if res.Iterations != d0.Iterations || res.Converged != d0.Converged {
		out = append(out, Violation{"dist-vs-seq",
			fmt.Sprintf("sequential replay: %d iterations (converged=%v), distributed: %d (converged=%v)",
				res.Iterations, res.Converged, d0.Iterations, d0.Converged), tag("")})
		return out
	}
	if len(res.History) != len(d0.History) {
		out = append(out, Violation{"dist-vs-seq",
			fmt.Sprintf("history lengths differ: sequential %d, distributed %d", len(res.History), len(d0.History)), tag("")})
		return out
	}
	if len(d0.History) > 0 {
		ref := d0.History[0]
		if ref == 0 {
			ref = 1
		}
		for i := range d0.History {
			if d := absf(res.History[i] - d0.History[i]); d > 1e-12*ref {
				out = append(out, Violation{"dist-vs-seq",
					fmt.Sprintf("history[%d]: sequential %.17g, distributed %.17g (Δ/h0 = %g)",
						i, res.History[i], d0.History[i], d/ref), tag("")})
				return out
			}
		}
	}
	// The iterates must agree too (same arithmetic ⇒ same solution).
	xd := make([]float64, m.n)
	for r := range systems {
		copy(xd[m.offs[r]:m.offs[r+1]], xl[r])
	}
	if d := maxAbsDiff(xd, xm); d > 1e-10*(1+maxAbs(xm)) {
		out = append(out, Violation{"dist-vs-seq",
			fmt.Sprintf("solutions differ by %g between distributed and sequential replay", d), tag("")})
	}
	return out
}
