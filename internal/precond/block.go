package precond

import (
	"fmt"
	"sync"

	"parapre/internal/arms"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/order"
	"parapre/internal/sparse"
)

// Block is the simple parallel block (block-Jacobi) preconditioner: each
// subdomain independently solves A_i·z_i = r_i approximately with the
// backward/forward procedure of an incomplete factorization. No
// communication is involved, which gives these preconditioners their
// excellent per-iteration scalability — and, for Block 1, the often slow
// convergence the paper reports.
type Block struct {
	name string
	f    *ilu.LU
	// Optional fill-reducing pre-ordering (RCM): the factorization is of
	// P·A_i·Pᵀ and Apply permutes in and out. The permutation scratch is
	// shared mutable state, so the RCM path serializes concurrent Applies
	// (core.Session runs simultaneous solves over one preconditioner set);
	// the plain path reads only the immutable factor and needs no lock.
	perm       sparse.Perm
	mu         sync.Mutex
	rBuf, zBuf []float64
}

// NewBlock1 builds the Block 1 preconditioner (ILU(0) subdomain solver)
// for this rank's subdomain.
func NewBlock1(s *dsys.System) (*Block, error) {
	f, err := ilu.ILU0(s.OwnedBlock())
	if err != nil {
		return nil, fmt.Errorf("precond: Block 1 rank %d: %w", s.Rank, err)
	}
	return &Block{name: string(KindBlock1), f: f}, nil
}

// NewBlock2 builds the Block 2 preconditioner (ILUT subdomain solver) for
// this rank's subdomain.
func NewBlock2(s *dsys.System, opt ilu.ILUTOptions) (*Block, error) {
	f, err := ilu.ILUT(s.OwnedBlock(), opt)
	if err != nil {
		return nil, fmt.Errorf("precond: Block 2 rank %d: %w", s.Rank, err)
	}
	return &Block{name: string(KindBlock2), f: f}, nil
}

// Apply performs the subdomain backward/forward solve.
func (b *Block) Apply(c *dist.Comm, z, r []float64) {
	if b.perm == nil {
		b.f.Solve(z, r)
		c.Compute(b.f.SolveFlops())
		return
	}
	b.mu.Lock()
	b.perm.ApplyVecTo(b.rBuf, r)
	b.f.Solve(b.zBuf, b.rBuf)
	b.perm.ScatterVecTo(z, b.zBuf)
	b.mu.Unlock()
	c.Compute(b.f.SolveFlops() + 2*float64(len(r)))
}

// Name returns the paper's notation for this preconditioner.
func (b *Block) Name() string { return b.name }

// FactorNNZ reports the stored factor size (diagnostics/benchmarks).
func (b *Block) FactorNNZ() int { return b.f.NNZ() }

// NewBlockOrdered builds a block preconditioner whose subdomain block is
// RCM-reordered before factoring — a fill-quality upgrade especially for
// ILUT with small LFil on irregularly numbered subdomains (general graph
// partitions produce exactly those).
func NewBlockOrdered(s *dsys.System, useILU0 bool, opt ilu.ILUTOptions) (*Block, error) {
	blk := s.OwnedBlock()
	perm := order.RCM(blk)
	pblk := sparse.PermuteSym(blk, perm)
	var f *ilu.LU
	var err error
	name := string(KindBlock2) + " (RCM)"
	if useILU0 {
		f, err = ilu.ILU0(pblk)
		name = string(KindBlock1) + " (RCM)"
	} else {
		f, err = ilu.ILUT(pblk, opt)
	}
	if err != nil {
		return nil, fmt.Errorf("precond: ordered block rank %d: %w", s.Rank, err)
	}
	return &Block{
		name: name,
		f:    f,
		perm: perm,
		rBuf: make([]float64, blk.Rows),
		zBuf: make([]float64, blk.Rows),
	}, nil
}

// BlockARMS is block Jacobi with a multilevel ARMS subdomain solver — the
// remaining pARMS combination the paper's setup offers (its Schur 2 uses
// ARMS inside a Schur framework; this variant uses it directly, like
// Block 2 uses ILUT).
type BlockARMS struct {
	// The multilevel sweep works through per-level scratch owned by the
	// solver, so concurrent Applies (simultaneous Session solves) are
	// serialized. Purely local — no communication happens under the lock.
	mu     sync.Mutex
	solver *arms.Solver
}

// NewBlockARMS builds the ARMS block preconditioner for this rank's
// subdomain.
func NewBlockARMS(s *dsys.System, opt arms.Options) (*BlockARMS, error) {
	sv, err := arms.New(s.OwnedBlock(), opt)
	if err != nil {
		return nil, fmt.Errorf("precond: Block ARMS rank %d: %w", s.Rank, err)
	}
	return &BlockARMS{solver: sv}, nil
}

// Apply performs the multilevel forward/backward sweep.
func (b *BlockARMS) Apply(c *dist.Comm, z, r []float64) {
	b.mu.Lock()
	b.solver.Apply(z, r)
	b.mu.Unlock()
	c.Compute(b.solver.SolveFlops())
}

// Name returns the preconditioner's notation.
func (b *BlockARMS) Name() string { return string(KindBlockARMS) }

// SetupFlops estimates the construction cost.
func (b *BlockARMS) SetupFlops() float64 { return 2 * b.solver.SolveFlops() }

// BlockPivot is block Jacobi with a column-pivoting ILUTP subdomain
// factorization — the pARMS robustness option for subdomain blocks with
// weak diagonals (strong convection, saddle-like couplings).
type BlockPivot struct {
	// PivLU.Solve permutes through internal scratch; serialize concurrent
	// Applies (simultaneous Session solves). Purely local.
	mu sync.Mutex
	p  *ilu.PivLU
}

// NewBlock2Pivot builds the pivoting block preconditioner for this rank's
// subdomain.
func NewBlock2Pivot(s *dsys.System, opt ilu.ILUTPOptions) (*BlockPivot, error) {
	p, err := ilu.ILUTP(s.OwnedBlock(), opt)
	if err != nil {
		return nil, fmt.Errorf("precond: Block 2P rank %d: %w", s.Rank, err)
	}
	return &BlockPivot{p: p}, nil
}

// Apply performs the pivoted backward/forward solve.
func (b *BlockPivot) Apply(c *dist.Comm, z, r []float64) {
	b.mu.Lock()
	b.p.Solve(z, r)
	b.mu.Unlock()
	c.Compute(b.p.SolveFlops())
}

// Name returns the preconditioner's notation.
func (b *BlockPivot) Name() string { return string(KindBlock2P) }

// SetupFlops estimates the construction cost.
func (b *BlockPivot) SetupFlops() float64 { return 2 * float64(b.p.LU.NNZ()) }

// Swaps reports how many pivoting swaps the factorization performed.
func (b *BlockPivot) Swaps() int { return b.p.Swaps }

// BlockIC is block Jacobi with an incomplete Cholesky subdomain solver —
// a symmetric positive definite preconditioner, the correct companion for
// the distributed CG baseline on the paper's SPD test cases (1–4, 6).
type BlockIC struct {
	c *ilu.Chol
}

// NewBlockIC builds the IC(0) block preconditioner for this rank's
// subdomain.
func NewBlockIC(s *dsys.System) (*BlockIC, error) {
	c, err := ilu.IC0(s.OwnedBlock())
	if err != nil {
		return nil, fmt.Errorf("precond: Block IC rank %d: %w", s.Rank, err)
	}
	return &BlockIC{c: c}, nil
}

// Apply performs the L·Lᵀ backward/forward solve.
func (b *BlockIC) Apply(c *dist.Comm, z, r []float64) {
	b.c.Solve(z, r)
	c.Compute(b.c.SolveFlops())
}

// Name returns the preconditioner's notation.
func (b *BlockIC) Name() string { return string(KindBlockIC) }

// SetupFlops estimates the construction cost.
func (b *BlockIC) SetupFlops() float64 { return 2 * float64(b.c.L.NNZ()) }
