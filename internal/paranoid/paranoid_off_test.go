//go:build !paranoid

package paranoid

import (
	"math"
	"testing"
)

// Without the build tag every check must be an inert no-op: the helpers
// are called from kernel hot paths and rely on dead-code elimination of
// the `if !Enabled` branch for zero overhead.
func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the paranoid build tag")
	}
	// None of these may panic, however violated the invariant is.
	CheckFinite("nan", math.NaN())
	CheckFiniteVec("inf", []float64{math.Inf(1)})
	CheckLen("mismatch", 1, 2)
	CheckMinLen("short", 0, 10)
	Check(false, "always false")
}
