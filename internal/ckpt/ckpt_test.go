package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"path/filepath"
	"reflect"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/krylov"
)

// testCheckpoint builds a checkpoint exercising the full wire surface:
// a GMRES-shaped rank (ragged V/Z, counters), a CG-shaped rank (R/P/RZ,
// no basis), and a rank with nil optional fields.
func testCheckpoint() *Checkpoint {
	return &Checkpoint{
		Seq:  7,
		Iter: 35,
		Ranks: []RankState{
			{
				Rank: 0,
				Solver: &krylov.State{
					Method: "FGMRES", N: 5, M: 4, Iter: 35, Restarts: 8, J: 3,
					Ref: 1.5e-3, Initial: 2.25, PrecondID: "Schur 1",
					X:  []float64{1, 2, 3, 4, 5},
					V:  [][]float64{{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 0, 0}, {0, 0, 0, 1, 0}},
					Z:  [][]float64{{0.5, 0.5, 0, 0, 0}, {0, 0.5, 0.5, 0, 0}, {0, 0, 0.5, 0.5, 0}},
					H:  []float64{2, 1, 0, 1, 2, 1, 0, 1, 2, 0, 0, 1},
					Cs: []float64{0.8, 0.6, 0.9}, Sn: []float64{0.6, 0.8, 0.1},
					G:       []float64{1e-2, -3e-3, 4e-4, 5e-5},
					History: []float64{2.25, 1.1, 0.3, 0.05},
				},
				Stats: dist.Stats{
					Rank: 0, Clock: 1.25, ComputeTime: 1.0, CommTime: 0.2,
					FaultDelay: 0.05, Flops: 1e8, MsgsSent: 120, BytesSent: 88000,
				},
				FaultDraws: 17, FaultOps: 5,
				Counters: map[string]float64{"spmv": 35, "dot": 70, "axpy": 105},
			},
			{
				Rank: 1,
				Solver: &krylov.State{
					Method: "CG", N: 4, Iter: 35, Initial: 3.5, PrecondID: "Block 1",
					X: []float64{-1, -2, -3, -4}, R: []float64{1e-3, 2e-3, -1e-3, 0},
					P: []float64{0.1, 0.2, 0.3, 0.4}, RZ: 6.5e-6,
				},
				Stats: dist.Stats{Rank: 1, Clock: 1.25, ComputeTime: 1.1, CommTime: 0.15},
			},
			{
				Rank:  2,
				Stats: dist.Stats{Rank: 2, Clock: 1.25},
			},
		},
	}
}

func TestEncodeDecodeEncodeByteStable(t *testing.T) {
	ck := testCheckpoint()
	enc1 := Encode(ck)
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(ck, dec) {
		t.Fatalf("decoded checkpoint differs from original:\n got %+v\nwant %+v", dec, ck)
	}
	enc2 := Encode(dec)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("encode→decode→encode not byte-stable: %d vs %d bytes", len(enc1), len(enc2))
	}
}

func TestDecodeEveryTruncationFails(t *testing.T) {
	enc := Encode(testCheckpoint())
	for n := 0; n < len(enc); n++ {
		_, err := Decode(enc[:n])
		if err == nil {
			t.Fatalf("Decode of %d-byte prefix (of %d) succeeded", n, len(enc))
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("prefix %d: error %T, want *CorruptError", n, err)
		}
	}
}

func TestDecodeBitFlipsFail(t *testing.T) {
	enc := Encode(testCheckpoint())
	for off := 0; off < len(enc); off += 7 { // sample every 7th byte
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x40
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("flip at byte %d decoded cleanly", off)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flip at byte %d: error %T (%v), want *CorruptError", off, err, err)
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	enc := Encode(testCheckpoint())
	// Bump the version field and re-seal the checksum so the skew — not
	// the corruption — is what Decode reports.
	mut := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(mut[4:], Version+1)
	body := mut[:len(mut)-8]
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], crc64.Checksum(body, crcTable))
	_, err := Decode(mut)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("error %T (%v), want *VersionError", err, err)
	}
	if ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("VersionError %+v, want got=%d want=%d", ve, Version+1, Version)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	enc := Encode(testCheckpoint())
	// Splice garbage between payload and trailer, resealing the checksum:
	// structurally valid framing, but bytes the payload does not account for.
	mut := append([]byte(nil), enc[:len(enc)-8]...)
	mut = append(mut, 0xde, 0xad)
	sum := crc64.Checksum(mut, crcTable)
	mut = binary.LittleEndian.AppendUint64(mut, sum)
	_, err := Decode(mut)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v), want *CorruptError", err, err)
	}
}

func TestFileWriterAssemblesAndLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	ck := testCheckpoint()
	w := NewFileWriter(path, ck.P())

	// Deliver the shards out of rank order; nothing must hit disk until
	// the sequence is complete.
	order := []int{2, 0, 1}
	for i, r := range order {
		if err := w.PutShard(ck.Seq, ck.Iter, ck.P(), &ck.Ranks[r]); err != nil {
			t.Fatalf("PutShard rank %d: %v", r, err)
		}
		if i < len(order)-1 {
			if _, err := Load(path); err == nil {
				t.Fatalf("checkpoint file exists after %d of %d shards", i+1, len(order))
			}
		}
	}
	if w.Wrote() != 1 {
		t.Fatalf("Wrote() = %d, want 1", w.Wrote())
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("loaded checkpoint differs from written one")
	}

	// A later sequence atomically replaces the file.
	ck2 := testCheckpoint()
	ck2.Seq, ck2.Iter = 8, 40
	for r := range ck2.Ranks {
		if err := w.PutShard(ck2.Seq, ck2.Iter, ck2.P(), &ck2.Ranks[r]); err != nil {
			t.Fatalf("PutShard seq 8 rank %d: %v", r, err)
		}
	}
	got2, err := Load(path)
	if err != nil {
		t.Fatalf("Load after overwrite: %v", err)
	}
	if got2.Seq != 8 || got2.Iter != 40 {
		t.Fatalf("file holds seq=%d iter=%d, want 8/40", got2.Seq, got2.Iter)
	}
}

func TestFileWriterRejectsBadShards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	w := NewFileWriter(path, 2)
	rs := &RankState{Rank: 0}
	if err := w.PutShard(1, 1, 3, rs); err == nil {
		t.Fatal("shard with wrong world size accepted")
	}
	// The writer latches its first error.
	if err := w.PutShard(1, 1, 2, rs); err == nil {
		t.Fatal("writer did not latch the earlier failure")
	}

	w2 := NewFileWriter(path, 2)
	if err := w2.PutShard(1, 1, 2, &RankState{Rank: 5}); err == nil {
		t.Fatal("shard with out-of-range rank accepted")
	}
}

func TestLoadMissingFileIsPathError(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil {
		t.Fatal("Load of missing file succeeded")
	}
	var ce *CorruptError
	var ve *VersionError
	if errors.As(err, &ce) || errors.As(err, &ve) {
		t.Fatalf("missing file reported as codec error %v; want plain *os.PathError", err)
	}
}
