package precond

import (
	"fmt"
	"sort"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/fft"
	"parapre/internal/grid"
	"parapre/internal/krylov"
	"parapre/internal/sparse"
)

// SchwarzOptions configures the additive Schwarz preconditioner of the
// paper's §5.2, defined for the structured unit-square grid of Test
// Case 1.
type SchwarzOptions struct {
	M       int     // global grid has M×M nodes
	Px, Py  int     // processor/subdomain box layout (Px·Py = P)
	Overlap float64 // overlap per side as a fraction of subdomain width (paper: ≈5%)
	CoarseM int     // coarse grid nodes per side (0 disables CGC)
}

// DefaultSchwarz mirrors the paper's setup: ~5% overlap and a small
// coarse grid solved by Gaussian elimination (17×17 at paper scale,
// capped to stay much coarser than the fine grid on scaled-down runs —
// an additive coarse space that nearly duplicates the fine space
// over-corrects instead of helping).
func DefaultSchwarz(m, px, py int, cgc bool) SchwarzOptions {
	o := SchwarzOptions{M: m, Px: px, Py: py, Overlap: 0.05}
	if cgc {
		o.CoarseM = minInt(17, maxInt(3, m/6))
	}
	return o
}

// BoxPartition assigns the nodes of an m×m structured grid to px·py
// rectangular subdomains — the "simple partitioning scheme" the Schwarz
// experiments use. Node (i, j) has global id j·m+i.
func BoxPartition(m, px, py int) []int {
	part := make([]int, m*m)
	for j := 0; j < m; j++ {
		bj := j * py / m
		for i := 0; i < m; i++ {
			bi := i * px / m
			part[j*m+i] = bj*px + bi
		}
	}
	return part
}

// Schwarz is one rank's additive Schwarz preconditioner with overlap:
// z = Σ_i R_iᵀ·Ã_i⁻¹·R_i·r (+ coarse-grid correction), where the
// subdomain solve is one CG iteration accelerated by a DST-based fast
// Poisson solver, as in the paper. Halo values of r are gathered from
// neighboring owners before the solve and overlap corrections are
// scattered back (with accumulation) after it.
type Schwarz struct {
	s   *dsys.System
	opt SchwarzOptions

	// Extended (overlapping) box in grid-index space.
	ei0, ei1, ej0, ej1 int
	boxNodes           []int       // global ids, row-major within the box
	localOf            map[int]int // global id → index in boxNodes
	ownedPos           []int       // boxNodes index of each owned unknown (aligned with GlobalIDs)

	aBox   *sparse.CSR // global matrix restricted to the box (zero-Dirichlet exterior)
	pois   *fft.PoissonSolver
	haloIn []haloPeer // peers that own parts of our box
	// haloOut is the mirror: peers whose boxes contain nodes we own.
	haloOut []haloPeer

	coarse *coarseGrid

	// scratch
	rBox, wBox, zOwn []float64
	ws               *krylov.Workspace // pooled subdomain-CG workspace
}

type haloPeer struct {
	rank int
	// For haloIn: our box-local indices to fill, and the peer sends those
	// values (peer-side owned indices in sendIdx).
	// For haloOut: our owned-local indices to send / to accumulate into.
	sendIdx []int // indices into the peer-facing payload source
	recvIdx []int // indices into the local destination
	// buf is the pooled send payload, sized at wiring time. dist.Comm.Send
	// copies the data, so reusing one buffer per peer across applies is
	// safe.
	buf []float64
}

type coarseGrid struct {
	m      int
	lu     *sparse.LU
	isBdry []bool
	// interp rows for this rank's owned fine nodes: up to 4 coarse nodes
	// with bilinear weights.
	idx [][4]int
	wgt [][4]float64
	// pooled restriction / coarse-solution scratch.
	rc, zc []float64
}

const (
	tagHaloR = 300
	tagHaloZ = 301
)

// NewSchwarz builds the Schwarz preconditioner for rank s.Rank. The
// distributed system must have been built with BoxPartition(M, Px, Py)
// and the global matrix a must be the Test-Case-1-style assembly on
// grid.UnitSquareTri(M). Setup happens before dist.Run (different ranks'
// setups are independent and may run concurrently) but Apply is
// collective.
func NewSchwarz(s *dsys.System, a *sparse.CSR, opt SchwarzOptions) (*Schwarz, error) {
	m := opt.M
	if m*m != a.Rows {
		return nil, fmt.Errorf("precond: Schwarz grid %d² != matrix dim %d", m, a.Rows)
	}
	if opt.Px*opt.Py != s.P {
		return nil, fmt.Errorf("precond: Schwarz box layout %d×%d != world size %d", opt.Px, opt.Py, s.P)
	}
	p := &Schwarz{s: s, opt: opt}

	// Owned box of this rank in index space (from BoxPartition geometry).
	r := s.Rank
	bi, bj := r%opt.Px, r/opt.Px
	i0 := ceilDiv(bi*m, opt.Px)
	i1 := ceilDiv((bi+1)*m, opt.Px)
	j0 := ceilDiv(bj*m, opt.Py)
	j1 := ceilDiv((bj+1)*m, opt.Py)
	ovx := int(opt.Overlap*float64(i1-i0)) + 1
	ovy := int(opt.Overlap*float64(j1-j0)) + 1
	p.ei0, p.ei1 = maxInt(0, i0-ovx), minInt(m, i1+ovx)
	p.ej0, p.ej1 = maxInt(0, j0-ovy), minInt(m, j1+ovy)

	// Box node list, row-major.
	for j := p.ej0; j < p.ej1; j++ {
		for i := p.ei0; i < p.ei1; i++ {
			p.boxNodes = append(p.boxNodes, j*m+i)
		}
	}
	p.localOf = make(map[int]int, len(p.boxNodes))
	for k, g := range p.boxNodes {
		p.localOf[g] = k
	}
	p.ownedPos = make([]int, s.NLoc())
	for l, g := range s.GlobalIDs {
		k, ok := p.localOf[g]
		if !ok {
			return nil, fmt.Errorf("precond: Schwarz rank %d: owned node %d outside its own box (partition mismatch)", r, g)
		}
		p.ownedPos[l] = k
	}

	// Restricted matrix with homogeneous Dirichlet exterior.
	p.aBox = sparse.Extract(a, p.boxNodes, p.boxNodes)

	// Fast Poisson solver on the box interior (all box nodes treated as
	// interior with unit spacing: the P1 stiffness on this mesh is the
	// unscaled 5-point stencil).
	nx, ny := p.ei1-p.ei0, p.ej1-p.ej0
	p.pois = fft.NewPoissonSolver(nx, ny, 1, 1)

	p.rBox = make([]float64, len(p.boxNodes))
	p.wBox = make([]float64, len(p.boxNodes))
	p.zOwn = make([]float64, s.NLoc())
	p.ws = krylov.NewWorkspace()

	if opt.CoarseM >= 3 {
		cg, err := buildCoarse(s, m, opt.CoarseM)
		if err != nil {
			return nil, err
		}
		p.coarse = cg
	}
	return p, nil
}

// WireHalo builds the pairwise exchange lists between all ranks'
// Schwarz preconditioners. Call once, sequentially, with every rank's
// instance.
func WireHalo(all []*Schwarz) error {
	p := len(all)
	// owner[g] = rank owning global node g.
	n := all[0].opt.M * all[0].opt.M
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	for r, sw := range all {
		for _, g := range sw.s.GlobalIDs {
			owner[g] = r
		}
	}
	for r, sw := range all {
		needs := map[int][]int{} // peer rank → box-local indices
		for k, g := range sw.boxNodes {
			if o := owner[g]; o != r {
				if o < 0 {
					return fmt.Errorf("precond: node %d unowned", g)
				}
				needs[o] = append(needs[o], k)
			}
		}
		peers := make([]int, 0, len(needs))
		for q := range needs {
			peers = append(peers, q)
		}
		sort.Ints(peers)
		for _, q := range peers {
			boxIdx := needs[q]
			// Peer-side owned-local indices for these globals.
			peer := all[q]
			ownLocal := make(map[int]int, peer.s.NLoc())
			for l, g := range peer.s.GlobalIDs {
				ownLocal[g] = l
			}
			send := make([]int, len(boxIdx))
			for t, k := range boxIdx {
				l, ok := ownLocal[sw.boxNodes[k]]
				if !ok {
					return fmt.Errorf("precond: halo wiring: rank %d does not own node %d", q, sw.boxNodes[k])
				}
				send[t] = l
			}
			// r receives from q (haloIn on r), and q must send to r and
			// later accumulate corrections (haloOut on q).
			sw.haloIn = append(sw.haloIn, haloPeer{rank: q, recvIdx: boxIdx,
				buf: make([]float64, len(boxIdx))})
			peer.haloOut = append(peer.haloOut, haloPeer{rank: r, sendIdx: send, recvIdx: send,
				buf: make([]float64, len(send))})
		}
	}
	_ = p
	return nil
}

func buildCoarse(s *dsys.System, m, cm int) (*coarseGrid, error) {
	g := grid.UnitSquareTri(cm)
	ac, _ := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	rhs := make([]float64, g.NumNodes())
	fem.ApplyDirichlet(ac, rhs, bc)
	lu, err := ac.Dense().Factor()
	if err != nil {
		return nil, fmt.Errorf("precond: coarse factor: %w", err)
	}
	cg := &coarseGrid{m: cm, lu: lu, isBdry: onB,
		rc: make([]float64, cm*cm), zc: make([]float64, cm*cm)}
	// Bilinear interpolation weights for each owned fine node.
	h := 1 / float64(m-1)
	hc := 1 / float64(cm-1)
	cg.idx = make([][4]int, s.NLoc())
	cg.wgt = make([][4]float64, s.NLoc())
	for l, gid := range s.GlobalIDs {
		fi, fj := gid%m, gid/m
		x, y := float64(fi)*h, float64(fj)*h
		ci := minInt(int(x/hc), cm-2)
		cj := minInt(int(y/hc), cm-2)
		tx := x/hc - float64(ci)
		ty := y/hc - float64(cj)
		cg.idx[l] = [4]int{cj*cm + ci, cj*cm + ci + 1, (cj+1)*cm + ci, (cj+1)*cm + ci + 1}
		cg.wgt[l] = [4]float64{(1 - tx) * (1 - ty), tx * (1 - ty), (1 - tx) * ty, tx * ty}
	}
	return cg, nil
}

// Apply computes the additive Schwarz correction. Must be called
// collectively by all ranks (after WireHalo).
func (p *Schwarz) Apply(c *dist.Comm, z, r []float64) {
	s := p.s

	// 1. Gather r over the extended box: own values plus halo.
	for i := range p.rBox {
		p.rBox[i] = 0
	}
	for l, k := range p.ownedPos {
		p.rBox[k] = r[l]
	}
	for _, hp := range p.haloOut {
		for t, l := range hp.sendIdx {
			hp.buf[t] = r[l]
		}
		c.Send(hp.rank, tagHaloR, hp.buf)
	}
	for _, hp := range p.haloIn {
		got := c.Recv(hp.rank, tagHaloR)
		for t, k := range hp.recvIdx {
			p.rBox[k] = got[t]
		}
	}

	// 2. One CG iteration on Ã_i·w = r_box, preconditioned by the DST
	// fast Poisson solver (the paper's "special FFT-based
	// preconditioner").
	for i := range p.wBox {
		p.wBox[i] = 0
	}
	krylov.CG(len(p.wBox),
		func(y, x []float64) {
			p.aBox.MulVecTo(y, x)
			c.Compute(2 * float64(p.aBox.NNZ()))
		},
		func(zz, rr []float64) {
			p.pois.SolveTo(zz, rr)
			nf := float64(len(zz))
			c.Compute(20 * nf) // ≈ 2·N·log N for the DST pair at these sizes
		},
		sparse.Dot, p.rBox, p.wBox,
		krylov.Options{MaxIters: 1, Tol: 0, Compute: c.Compute, Work: p.ws})

	// 3. Scatter-add corrections: own part directly, overlap parts back
	// to their owners.
	for l, k := range p.ownedPos {
		p.zOwn[l] = p.wBox[k]
	}
	for _, hp := range p.haloIn {
		for t, k := range hp.recvIdx {
			hp.buf[t] = p.wBox[k]
		}
		c.Send(hp.rank, tagHaloZ, hp.buf)
	}
	for _, hp := range p.haloOut {
		got := c.Recv(hp.rank, tagHaloZ)
		for t, l := range hp.recvIdx {
			p.zOwn[l] += got[t]
		}
	}

	// 4. Coarse-grid correction (additive).
	if p.coarse != nil {
		cg := p.coarse
		nC := cg.m * cg.m
		rc := cg.rc
		for i := range rc {
			rc[i] = 0
		}
		for l := range p.ownedPos {
			for t := 0; t < 4; t++ {
				rc[cg.idx[l][t]] += cg.wgt[l][t] * r[l]
			}
		}
		c.Compute(8 * float64(s.NLoc()))
		rc = c.AllReduceSumVec(rc)
		for i, b := range cg.isBdry {
			if b {
				rc[i] = 0
			}
		}
		zc := cg.zc
		cg.lu.SolveTo(zc, rc)
		c.Compute(2 * float64(nC) * float64(nC))
		for l := range p.ownedPos {
			var v float64
			for t := 0; t < 4; t++ {
				v += cg.wgt[l][t] * zc[cg.idx[l][t]]
			}
			p.zOwn[l] += v
		}
		c.Compute(8 * float64(s.NLoc()))
	}

	copy(z, p.zOwn)
}

// Name identifies the preconditioner variant.
func (p *Schwarz) Name() string {
	if p.coarse != nil {
		return "AddSchwarz+CGC"
	}
	return "AddSchwarz"
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SetupFlops estimates the construction cost: box extraction plus (when
// enabled) the replicated dense coarse-grid factorization.
func (p *Schwarz) SetupFlops() float64 {
	f := 2 * float64(p.aBox.NNZ())
	if p.coarse != nil {
		n := float64(p.coarse.m * p.coarse.m)
		f += n * n * n / 3
	}
	return f
}
