package core_test

import (
	"errors"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"parapre/internal/cases"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/krylov"
	"parapre/internal/precond"
)

// memSink collects per-rank shards and assembles every complete
// checkpoint sequence in memory, so tests can restore from any
// intermediate iteration — the in-process stand-in for killing a run at
// iteration k.
type memSink struct {
	mu       sync.Mutex
	pending  map[uint64][]*ckpt.RankState
	complete map[uint64]*ckpt.Checkpoint
}

func newMemSink() *memSink {
	return &memSink{
		pending:  make(map[uint64][]*ckpt.RankState),
		complete: make(map[uint64]*ckpt.Checkpoint),
	}
}

func (m *memSink) PutShard(seq, iter uint64, p int, rs *ckpt.RankState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh := m.pending[seq]
	if sh == nil {
		sh = make([]*ckpt.RankState, p)
		m.pending[seq] = sh
	}
	sh[rs.Rank] = rs
	for _, s := range sh {
		if s == nil {
			return nil
		}
	}
	delete(m.pending, seq)
	ck := &ckpt.Checkpoint{Seq: seq, Iter: iter, Ranks: make([]ckpt.RankState, p)}
	for i, s := range sh {
		ck.Ranks[i] = *s
	}
	m.complete[seq] = ck
	return nil
}

// at returns the complete checkpoint captured at solver iteration k.
func (m *memSink) at(t *testing.T, k uint64) *ckpt.Checkpoint {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	ck, ok := m.complete[k]
	if !ok {
		keys := make([]uint64, 0, len(m.complete))
		for s := range m.complete {
			keys = append(keys, s)
		}
		t.Fatalf("no complete checkpoint at iteration %d (have %v)", k, keys)
	}
	return ck
}

// bitEqual compares float slices bit-for-bit (0.0 vs -0.0 and NaN
// patterns included): the restore contract is replayed arithmetic, not
// approximate agreement.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func checkpointedSolve(t *testing.T, name string, size, p int, kind precond.Kind, every int, restore *ckpt.Checkpoint, mutate func(*core.Config)) (*core.Result, *memSink) {
	t.Helper()
	c, err := cases.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(size)
	cfg := core.DefaultConfig(p, kind)
	cfg.KeepX = true
	cfg.Solver.RecordHistory = true
	sink := newMemSink()
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = sink
	cfg.Restore = restore
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatalf("%s/%s P=%d: %v", name, kind, p, err)
	}
	return res, sink
}

// assertSameSolve demands the resumed run be indistinguishable from the
// uninterrupted one: iteration count, convergence, full residual history,
// solution vector and modeled clocks, all bit-identical.
func assertSameSolve(t *testing.T, label string, base, got *core.Result) {
	t.Helper()
	if got.Iterations != base.Iterations || got.Converged != base.Converged || got.Restarts != base.Restarts {
		t.Fatalf("%s: resumed solve took %d itr (conv=%v, restarts=%d), uninterrupted %d (conv=%v, restarts=%d)",
			label, got.Iterations, got.Converged, got.Restarts, base.Iterations, base.Converged, base.Restarts)
	}
	if math.Float64bits(got.Residual) != math.Float64bits(base.Residual) {
		t.Fatalf("%s: resumed residual %x differs from %x", label, math.Float64bits(got.Residual), math.Float64bits(base.Residual))
	}
	if !bitEqual(got.History, base.History) {
		t.Fatalf("%s: resumed residual history (%d entries) not bit-identical to uninterrupted (%d entries)",
			label, len(got.History), len(base.History))
	}
	if !bitEqual(got.X, base.X) {
		t.Fatalf("%s: resumed solution vector not bit-identical", label)
	}
	if math.Float64bits(got.SolveTime) != math.Float64bits(base.SolveTime) {
		t.Fatalf("%s: resumed modeled solve time %v differs from %v (clock restore broken)",
			label, got.SolveTime, base.SolveTime)
	}
}

func TestRestoreResumesBitIdenticalGMRES(t *testing.T) {
	const k = 10
	for _, p := range []int{2, 4, 8} {
		base, sink := checkpointedSolve(t, "tc7-jump", 17, p, precond.KindSchur1, k, nil, nil)
		if base.Iterations <= k {
			t.Fatalf("P=%d: solve finished in %d iterations, before the checkpoint at %d", p, base.Iterations, k)
		}

		// The hook itself must not perturb the solve.
		plain, _ := checkpointedSolve(t, "tc7-jump", 17, p, precond.KindSchur1, 0, nil, nil)
		assertSameSolve(t, "P="+itoa(p)+" checkpoint-hook", plain, base)

		// "Kill" at iteration k: throw the live run away and resume a fresh
		// one from the k-th checkpoint.
		ck := sink.at(t, k)
		resumed, _ := checkpointedSolve(t, "tc7-jump", 17, p, precond.KindSchur1, k, ck, nil)
		assertSameSolve(t, "P="+itoa(p)+" resume", base, resumed)
	}
}

func TestRestoreResumesBitIdenticalCG(t *testing.T) {
	const k = 6
	mutate := func(cfg *core.Config) {
		cfg.UseCG = true
		cfg.Solver.Flexible = false
	}
	for _, p := range []int{2, 4} {
		base, sink := checkpointedSolve(t, "tc1-poisson2d", 17, p, precond.KindBlockIC, k, nil, mutate)
		if base.Iterations <= k {
			t.Fatalf("P=%d: CG finished in %d iterations, before the checkpoint at %d", p, base.Iterations, k)
		}
		ck := sink.at(t, k)
		resumed, _ := checkpointedSolve(t, "tc1-poisson2d", 17, p, precond.KindBlockIC, k, ck, mutate)
		assertSameSolve(t, "CG P="+itoa(p)+" resume", base, resumed)
	}
}

func TestRestoreSurvivesFileRoundTrip(t *testing.T) {
	// The same resume, but through the durable path: FileWriter → disk →
	// Load, exactly what a respawned process does.
	const k, p = 10, 4
	path := filepath.Join(t.TempDir(), "solve.ckpt")
	c, err := cases.ByName("tc7-jump")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(17)
	cfg := core.DefaultConfig(p, precond.KindSchur1)
	cfg.KeepX = true
	cfg.Solver.RecordHistory = true
	cfg.CheckpointEvery = k
	cfg.CheckpointPath = path
	base, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ck, err := ckpt.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// The file holds the LAST checkpoint of the run; resuming from it must
	// still land on the identical final state.
	cfg2 := cfg
	cfg2.Restore = ck
	resumed, err := core.Solve(prob, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolve(t, "file round-trip resume", base, resumed)
}

func TestRestoreRejectsMismatches(t *testing.T) {
	const k, p = 10, 4
	_, sink := checkpointedSolve(t, "tc7-jump", 17, p, precond.KindSchur1, k, nil, nil)
	ck := sink.at(t, k)

	c, _ := cases.ByName("tc7-jump")
	prob := c.Build(17)

	// Wrong world size.
	cfg := core.DefaultConfig(p+1, precond.KindSchur1)
	cfg.Restore = ck
	if _, err := core.Solve(prob, cfg); err == nil {
		t.Fatal("restore with wrong P accepted")
	}

	// Wrong preconditioner identity: the typed mismatch, not a crash.
	cfg = core.DefaultConfig(p, precond.KindBlock1)
	cfg.Restore = ck
	_, err := core.Solve(prob, cfg)
	var sm *krylov.StateMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("restore under different preconditioner: error %T (%v), want *krylov.StateMismatchError", err, err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
