package mslr

import (
	"math"
	"math/rand"

	"parapre/internal/ilu"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

var nan = math.NaN()

// newRNG returns the deterministic generator used for bisection restarts
// and Arnoldi probe vectors.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// dot is the sequential inner product (bit-reproducible at any worker
// count; the vectors involved are short separator blocks).
func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// tnode is one node of the separator hierarchy over a contiguous index
// range of the reordered interior block. A leaf holds a direct ILUT
// factor; an internal node holds two recursing interiors, the separator
// coupling blocks E, F, C, the separator factor C̃ and its low-rank Schur
// correction.
type tnode struct {
	n int

	// leaf
	fact *ilu.LU

	// internal: rows ordered [child0 | child1 | separator]
	child0, child1 *tnode
	n0, n1, nS     int
	e, f, c        *sparse.CSR // E: sep×int, F: int×sep, C: sep×sep
	cFact          *ilu.LU
	lr             *lowRank

	// scratch for solve (per-rank sequential, never shared)
	gHat, y, corr, fTmp []float64

	solveFlops float64
}

// solve computes out = M⁻¹·in over the node's index range: a direct
// factor sweep at a leaf, the [B F; E C] block solve with the low-rank
// corrected Schur inverse at an internal node.
func (t *tnode) solve(out, in []float64) {
	if t.fact != nil {
		t.fact.Solve(out, in)
		return
	}
	nI := t.n0 + t.n1
	t.solveInteriors(out[:nI], in[:nI])
	if t.nS == 0 {
		return
	}
	// ĝ = g − E·u′ with u′ the interior solves already in out.
	copy(t.gHat, in[nI:])
	t.e.MulVecSub(t.gHat, out[:nI])
	// y = S⁻¹ĝ ≈ C̃⁻¹·(ĝ + V((I−H)⁻¹−I)Vᵀĝ).
	t.lr.correct(t.corr, t.gHat)
	t.cFact.Solve(t.y, t.corr)
	// Interior back-substitution: z = B⁻¹(f − F·y).
	copy(t.fTmp, in[:nI])
	t.f.MulVecSub(t.fTmp, t.y)
	t.solveInteriors(out[:nI], t.fTmp)
	copy(out[nI:], t.y)
}

// solveInteriors applies both children over their halves of the interior
// range (the halves are decoupled by the separator).
func (t *tnode) solveInteriors(out, in []float64) {
	if t.child0 != nil {
		t.child0.solve(out[:t.n0], in[:t.n0])
	}
	if t.child1 != nil {
		t.child1.solve(out[t.n0:], in[t.n0:])
	}
}

// split is the first-pass skeleton of the hierarchy: vertex lists in the
// original interior-block numbering, before any matrix is extracted.
type split struct {
	verts      []int // leaf only
	int0, int1 *split
	sep        []int
	seed       int64
}

func (sp *split) size() int {
	if sp == nil {
		return 0
	}
	if sp.int0 == nil && sp.int1 == nil {
		return len(sp.verts)
	}
	return sp.int0.size() + sp.int1.size() + len(sp.sep)
}

func (sp *split) flatten(order *[]int) {
	if sp == nil {
		return
	}
	if sp.int0 == nil && sp.int1 == nil {
		*order = append(*order, sp.verts...)
		return
	}
	sp.int0.flatten(order)
	sp.int1.flatten(order)
	*order = append(*order, sp.sep...)
}

// symPattern builds the symmetrized adjacency graph of the square matrix
// b (self-loops dropped), the structure the nested bisection cuts.
func symPattern(b *sparse.CSR) *partition.Graph {
	n := b.Rows
	adj := make([]map[int]struct{}, n)
	for i := 0; i < n; i++ {
		adj[i] = map[int]struct{}{}
	}
	for i := 0; i < n; i++ {
		cols, _ := b.Row(i)
		for _, j := range cols {
			if j == i || j >= n {
				continue
			}
			adj[i][j] = struct{}{}
			adj[j][i] = struct{}{}
		}
	}
	g := &partition.Graph{Ptr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		g.Ptr[i] = len(g.Adj)
		nb := make([]int, 0, len(adj[i]))
		for j := range adj[i] {
			nb = append(nb, j)
		}
		sortInts(nb)
		g.Adj = append(g.Adj, nb...)
	}
	g.Ptr[n] = len(g.Adj)
	return g
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// splitVerts recursively bisects the vertex subset. The separator is
// one-sided: the part-1 vertices adjacent to part 0. Removing them
// decouples part 0 from the rest of part 1 in both directions, because
// any part-1 vertex with a part-0 neighbor is in the separator by
// construction.
func splitVerts(g *partition.Graph, verts []int, level int, opts Options, seed int64) (*split, error) {
	if level >= opts.Levels || len(verts) <= opts.MinBlock {
		return &split{verts: verts, seed: seed}, nil
	}
	// Induced subgraph with local numbering.
	g2l := make(map[int]int, len(verts))
	for li, v := range verts {
		g2l[v] = li
	}
	sub := &partition.Graph{Ptr: make([]int, len(verts)+1)}
	for li, v := range verts {
		sub.Ptr[li] = len(sub.Adj)
		for _, w := range g.Neighbors(v) {
			if lw, ok := g2l[w]; ok {
				sub.Adj = append(sub.Adj, lw)
			}
		}
	}
	sub.Ptr[len(verts)] = len(sub.Adj)

	part, err := partition.General(sub, 2, seed)
	if err != nil {
		return nil, err
	}
	inSep := make([]bool, len(verts))
	n0 := 0
	for li := range verts {
		if part[li] == 0 {
			n0++
			continue
		}
		for _, lw := range sub.Adj[sub.Ptr[li]:sub.Ptr[li+1]] {
			if part[lw] == 0 {
				inSep[li] = true
				break
			}
		}
	}
	if n0 == 0 || n0 == len(verts) {
		// Degenerate cut: stop recursing here.
		return &split{verts: verts, seed: seed}, nil
	}
	var v0, v1, sep []int
	for li, v := range verts {
		switch {
		case part[li] == 0:
			v0 = append(v0, v)
		case inSep[li]:
			sep = append(sep, v)
		default:
			v1 = append(v1, v)
		}
	}
	sp := &split{sep: sep, seed: seed}
	if sp.int0, err = splitVerts(g, v0, level+1, opts, 2*seed+1); err != nil {
		return nil, err
	}
	if len(v1) > 0 {
		if sp.int1, err = splitVerts(g, v1, level+1, opts, 2*seed+2); err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// span lists the indices [lo, lo+n).
func span(lo, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = lo + i
	}
	return s
}

// buildNode materializes the hierarchy over the reordered matrix bp:
// factor leaves, extract and factor separator blocks, and probe each
// separator's Schur residual for its low-rank correction.
func buildNode(bp *sparse.CSR, sp *split, lo int, opts Options, setup *float64) (*tnode, error) {
	n := sp.size()
	if sp.int0 == nil && sp.int1 == nil {
		idx := span(lo, n)
		fact, err := ilu.ILUT(sparse.Extract(bp, idx, idx), opts.ILUT)
		if err != nil {
			return nil, err
		}
		*setup += 2 * float64(fact.NNZ())
		return &tnode{n: n, fact: fact, solveFlops: fact.SolveFlops()}, nil
	}
	t := &tnode{n: n, n0: sp.int0.size(), n1: sp.int1.size(), nS: len(sp.sep)}
	var err error
	if t.child0, err = buildNode(bp, sp.int0, lo, opts, setup); err != nil {
		return nil, err
	}
	if t.n1 > 0 {
		if t.child1, err = buildNode(bp, sp.int1, lo+t.n0, opts, setup); err != nil {
			return nil, err
		}
	}
	nI := t.n0 + t.n1
	t.solveFlops = 2 * (childFlops(t.child0) + childFlops(t.child1))
	if t.nS == 0 {
		return t, nil
	}
	intR := span(lo, nI)
	sepR := span(lo+nI, t.nS)
	t.e = sparse.Extract(bp, sepR, intR)
	t.f = sparse.Extract(bp, intR, sepR)
	t.c = sparse.Extract(bp, sepR, sepR)
	if t.cFact, err = ilu.ILUT(t.c, opts.ILUT); err != nil {
		return nil, err
	}
	*setup += 2 * float64(t.cFact.NNZ())

	// Probe G = I − S·C̃⁻¹ matrix-free through the freshly built interior
	// solves: S·w = C·w − E·(B⁻¹(F·w)).
	tBuf := make([]float64, t.nS)
	sBuf := make([]float64, t.nS)
	fBuf := make([]float64, nI)
	uBuf := make([]float64, nI)
	gApply := func(dst, x []float64) {
		t.cFact.Solve(tBuf, x)
		t.f.MulVecTo(fBuf, tBuf)
		t.solveInteriors(uBuf, fBuf)
		t.c.MulVecTo(sBuf, tBuf)
		t.e.MulVecAdd(sBuf, -1, uBuf)
		for i := range dst {
			dst[i] = x[i] - sBuf[i]
		}
	}
	if t.lr, err = buildLowRank(t.nS, opts.Rank, gApply, newRNG(sp.seed*31+7)); err != nil {
		return nil, err
	}
	*setup += t.lr.buildFlops(t.nS)

	t.gHat = make([]float64, t.nS)
	t.y = make([]float64, t.nS)
	t.corr = make([]float64, t.nS)
	t.fTmp = make([]float64, nI)
	t.solveFlops += 2*float64(t.e.NNZ()+t.f.NNZ()) +
		t.cFact.SolveFlops() + t.lr.applyFlops(t.nS)
	return t, nil
}

func childFlops(t *tnode) float64 {
	if t == nil {
		return 0
	}
	return t.solveFlops
}

// buildTree builds the hierarchy over the square interior block b. It
// returns the root, the ordering (perm[i] is the b-row stored at
// reordered position i) and the modeled setup flops.
func buildTree(b *sparse.CSR, opts Options, seed int64) (*tnode, []int, float64, error) {
	n := b.Rows
	sp, err := splitVerts(symPattern(b), span(0, n), 0, opts, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	order := make([]int, 0, n)
	sp.flatten(&order)
	bp := sparse.Extract(b, order, order)
	var setup float64
	root, err := buildNode(bp, sp, 0, opts, &setup)
	if err != nil {
		return nil, nil, 0, err
	}
	return root, order, setup, nil
}
