//go:build !paranoid

// The chaos-path bench tests drive fault plans that inject NaN, which the
// paranoid build's finite-value assertions turn into panics before the
// typed-error classification under test can run.
package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"parapre/internal/dist"
)

// A benchmark run under a fault plan must finish: every cell either
// converged, carries a breakdown/recovery note, or carries a typed fault
// note — an untyped failure aborts Run with an error.
func TestExperimentChaosCellsConvergeOrNoted(t *testing.T) {
	for _, plan := range []string{"corrupt", "crash", "drop"} {
		t.Run(plan, func(t *testing.T) {
			e, err := ByID("tc1-cluster")
			if err != nil {
				t.Fatal(err)
			}
			e.Ps = []int{2}
			fp, err := dist.NamedFaultPlan(plan, 1)
			if err != nil {
				t.Fatal(err)
			}
			e.Faults = fp
			e.Watchdog = 2 * time.Second
			e.Resilient = true
			tables, err := e.Run(17)
			if err != nil {
				t.Fatalf("chaos run must classify faults, not fail: %v", err)
			}
			for _, tb := range tables {
				for _, row := range tb.Rows {
					for ci, cell := range row.Cells {
						if !cell.Converged && cell.Note == "" {
							t.Errorf("p=%d cell %d: neither converged nor noted: %+v", row.P, ci, cell)
						}
					}
				}
			}
		})
	}
}

// Fault notes must survive into both renderers so a chaos table is
// readable, not silently truncated.
func TestChaosNotesRendered(t *testing.T) {
	e, err := ByID("tc1-cluster")
	if err != nil {
		t.Fatal(err)
	}
	e.Ps = []int{2}
	fp, err := dist.NamedFaultPlan("drop", 1)
	if err != nil {
		t.Fatal(err)
	}
	e.Faults = fp
	e.Watchdog = 500 * time.Millisecond
	tables, err := e.Run(17)
	if err != nil {
		t.Fatal(err)
	}
	var noted bool
	for _, tb := range tables {
		for _, row := range tb.Rows {
			for _, cell := range row.Cells {
				if cell.Note != "" {
					noted = true
				}
			}
		}
	}
	if !noted {
		t.Skip("drop plan converged on this tiny case; nothing to render")
	}
	var plain, md bytes.Buffer
	tables[0].Write(&plain)
	tables[0].WriteMarkdown(&md)
	if !strings.Contains(plain.String(), "deadlock") && !strings.Contains(plain.String(), "crash") {
		t.Errorf("plain renderer dropped the fault note:\n%s", plain.String())
	}
	if !strings.Contains(md.String(), "deadlock") && !strings.Contains(md.String(), "crash") {
		t.Errorf("markdown renderer dropped the fault note:\n%s", md.String())
	}
}
