package dsys

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

func testMachine() *dist.Machine {
	return &dist.Machine{Name: "test", FlopRate: 1e9, Latency: 1e-6, ByteTime: 1e-9, Load: 1}
}

// poissonSystem assembles a small 2D Poisson problem with Dirichlet BC and
// partitions it into p parts.
func poissonSystem(t testing.TB, m, p int, seed int64) (*sparse.CSR, []float64, []int) {
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return x[0] * math.Exp(x[1]) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = x0ey(g.Coord(n))
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, seed)
	if err != nil {
		panic(err)
	}
	return a, b, part
}

func x0ey(x []float64) float64 { return x[0] * math.Exp(x[1]) }

func TestDistributePartitionsAllRows(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 4, 1)
	systems := Distribute(a, b, part, 4)
	total := 0
	seen := make([]bool, a.Rows)
	for _, s := range systems {
		if err := s.CheckStructure(); err != nil {
			t.Fatal(err)
		}
		total += s.NLoc()
		for _, g := range s.GlobalIDs {
			if seen[g] {
				t.Fatalf("global %d owned twice", g)
			}
			seen[g] = true
		}
	}
	if total != a.Rows {
		t.Fatalf("owned %d rows of %d", total, a.Rows)
	}
}

func TestInternalInterfaceClassification(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 4, 2)
	systems := Distribute(a, b, part, 4)
	for _, s := range systems {
		// Interface rows must reference at least one external column
		// (otherwise they would be internal)… unless the row's external
		// couplings were eliminated by Dirichlet BC. Check the defining
		// property on the global matrix instead: a local unknown is
		// interface iff its global row couples to another part.
		for l, g := range s.GlobalIDs {
			cols, _ := a.Row(g)
			cross := false
			for _, j := range cols {
				if part[j] != part[g] {
					cross = true
					break
				}
			}
			if cross != (l >= s.NInt) {
				t.Fatalf("rank %d: local %d (global %d): cross=%v but class=%v", s.Rank, l, g, cross, l >= s.NInt)
			}
		}
	}
}

func TestBlocksTileLocalMatrix(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 3, 3)
	systems := Distribute(a, b, part, 3)
	for _, s := range systems {
		bb, ff, ee, cc, ex := s.BlockB(), s.BlockF(), s.BlockE(), s.BlockC(), s.BlockEExt()
		if bb.NNZ()+ff.NNZ()+ee.NNZ()+cc.NNZ()+ex.NNZ() != s.A.NNZ() {
			t.Fatalf("rank %d: blocks do not tile A (%d+%d+%d+%d+%d != %d)",
				s.Rank, bb.NNZ(), ff.NNZ(), ee.NNZ(), cc.NNZ(), ex.NNZ(), s.A.NNZ())
		}
		// Spot-check a few entries.
		for i := 0; i < s.NInt; i++ {
			cols, vals := s.A.Row(i)
			for k, j := range cols {
				if j < s.NInt {
					if bb.At(i, j) != vals[k] {
						t.Fatalf("rank %d: B(%d,%d) mismatch", s.Rank, i, j)
					}
				} else if ff.At(i, j-s.NInt) != vals[k] {
					t.Fatalf("rank %d: F(%d,%d) mismatch", s.Rank, i, j-s.NInt)
				}
			}
		}
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	a, b, part := poissonSystem(t, 8, 4, 4)
	systems := Distribute(a, b, part, 4)
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	back := Gather(systems, Scatter(systems, x))
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
}

func TestDistributedMatVecMatchesGlobal(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		a, b, part := poissonSystem(t, 11, p, 5)
		systems := Distribute(a, b, part, p)
		rng := rand.New(rand.NewSource(10))
		x := make([]float64, a.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := a.MulVec(x)
		xl := Scatter(systems, x)
		yl := make([][]float64, p)
		dist.Run(p, testMachine(), func(c *dist.Comm) {
			s := systems[c.Rank()]
			y := make([]float64, s.NLoc())
			ext := make([]float64, s.NLoc()+s.NExt())
			s.MatVec(c, y, xl[c.Rank()], ext)
			yl[c.Rank()] = y
		})
		got := Gather(systems, yl)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("p=%d: matvec differs at %d: %v vs %v", p, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedDotAndNorm(t *testing.T) {
	const p = 4
	a, b, part := poissonSystem(t, 9, p, 6)
	systems := Distribute(a, b, part, p)
	rng := rand.New(rand.NewSource(11))
	x := make([]float64, a.Rows)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	wantDot := sparse.Dot(x, y)
	wantNorm := sparse.Norm2(x)
	xl, yl := Scatter(systems, x), Scatter(systems, y)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		if got := s.Dot(c, xl[c.Rank()], yl[c.Rank()]); math.Abs(got-wantDot) > 1e-10 {
			t.Errorf("rank %d: dot %v, want %v", c.Rank(), got, wantDot)
		}
		if got := s.Norm2(c, xl[c.Rank()]); math.Abs(got-wantNorm) > 1e-10 {
			t.Errorf("rank %d: norm %v, want %v", c.Rank(), got, wantNorm)
		}
	})
}

func TestDistributeUnsymmetricPattern(t *testing.T) {
	// Convection-diffusion (SUPG) has an unsymmetric pattern-value mix;
	// the exchange wiring must handle one-way coupling gracefully.
	g := grid.UnitSquareTri(9)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Velocity: []float64{900, 300}, SUPG: true})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	ptr, adj := g.NodeGraph()
	const p = 3
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, 7)
	if err != nil {
		panic(err)
	}
	systems := Distribute(a, b, part, p)
	for _, s := range systems {
		if err := s.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(12))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := a.MulVec(x)
	xl := Scatter(systems, x)
	yl := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		y := make([]float64, s.NLoc())
		ext := make([]float64, s.NLoc()+s.NExt())
		s.MatVec(c, y, xl[c.Rank()], ext)
		yl[c.Rank()] = y
	})
	got := Gather(systems, yl)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("unsym matvec differs at %d", i)
		}
	}
}

func TestRHSDistribution(t *testing.T) {
	a, b, part := poissonSystem(t, 8, 3, 8)
	systems := Distribute(a, b, part, 3)
	bl := make([][]float64, 3)
	for r, s := range systems {
		bl[r] = s.B
	}
	back := Gather(systems, bl)
	for i := range b {
		if back[i] != b[i] {
			t.Fatalf("rhs differs at %d", i)
		}
	}
}

func TestSystemString(t *testing.T) {
	a, b, part := poissonSystem(t, 8, 2, 9)
	systems := Distribute(a, b, part, 2)
	if s := systems[0].String(); len(s) == 0 {
		t.Fatal("empty String()")
	}
}

func TestDistributeP1(t *testing.T) {
	a, b, _ := poissonSystem(t, 8, 2, 9)
	part := make([]int, a.Rows)
	systems := Distribute(a, b, part, 1)
	s := systems[0]
	if s.NLoc() != a.Rows || s.NExt() != 0 || s.NInt != a.Rows {
		t.Fatalf("single-rank system wrong: %v", s)
	}
	// MatVec without neighbors must equal the global product.
	rng := rand.New(rand.NewSource(13))
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := a.MulVec(x)
	dist.Run(1, testMachine(), func(c *dist.Comm) {
		y := make([]float64, s.NLoc())
		ext := make([]float64, s.NLoc())
		s.MatVec(c, y, x, ext)
		for i := range want {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				t.Errorf("p=1 matvec differs at %d", i)
				return
			}
		}
	})
}
