package main

import "testing"

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2, 4,8")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Fatalf("parseProcs: %v %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-3", "2,,4"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
