// Package schur implements the distributed Schur-complement machinery of
// the paper's §2: the global interface system (eq. 8)
//
//	S·y = g′,  S = blockdiag(S_i) + offdiag(E_ij),
//
// applied matrix-free across ranks. Each rank contributes its local rows:
// S_i acting on its own interface unknowns (either implicitly through
// C_i − E_i·B_i⁻¹·F_i with an approximate B-solve, or through an
// explicitly assembled local Schur matrix), plus the E_ij couplings to
// neighbors' interface unknowns, refreshed by an interface-level exchange.
package schur

import (
	"fmt"
	"math"
	"sync/atomic"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// Iface is one rank's view of the global interface (Schur) system. The
// interface vector has length N (this rank's share); external values from
// neighbors extend it by the system's NExt slots.
type Iface struct {
	sys *dsys.System
	n   int

	// applyLocal computes y = S_i·x for this rank's diagonal block.
	applyLocal func(y, x []float64)
	localFlops float64

	// eExt couples this rank's interface rows to external interface
	// unknowns, in external-buffer order.
	eExt *sparse.CSR

	// sendIdx holds, per neighbor (parallel to sys.Neigh), the
	// interface-vector indices to pack in send order — the dsys send
	// indices (local subdomain numbering) pre-translated at construction.
	sendIdx [][]int

	// sendBufs pools one staging buffer per neighbor, leased atomically
	// per exchange: distinct in-flight sends never share a slice, and the
	// single-solve steady state allocates nothing beyond the transport's
	// own payload copies. A concurrent solve that finds the slot empty
	// allocates its own lease (the loser of the final Store is collected).
	sendBufs atomic.Pointer[[][]float64]

	ext []float64 // scratch, length NExt
	tag int
}

const tagSchur = 200

// NewImplicit builds the Schur 1 style operator: S_i is applied as
// C_i·x − E_i·(B̃_i⁻¹·(F_i·x)), where B̃_i⁻¹ is the supplied approximate
// solve with the internal block (one ILUT backward/forward per
// application).
func NewImplicit(s *dsys.System, bSolve *ilu.LU) (*Iface, error) {
	return NewImplicitOp(s, bSolve.Solve, 2*float64(bSolve.NNZ()))
}

// NewImplicitOp is the general form of NewImplicit: the interior solve
// bSolve (y ← B̃_i⁻¹·x over the NInt internal unknowns) is an arbitrary
// callback charged bFlops per application — a recursive multilevel
// hierarchy, an exact factorization, anything that solves with the B
// block. NewImplicit is the special case of a single ILUT factor.
func NewImplicitOp(s *dsys.System, bSolve func(y, x []float64), bFlops float64) (*Iface, error) {
	c := s.BlockC()
	e := s.BlockE()
	f := s.BlockF()
	nI := s.NIface()
	tmpF := make([]float64, s.NInt)
	tmpB := make([]float64, s.NInt)
	op := &Iface{
		sys:  s,
		n:    nI,
		eExt: s.BlockEExt(),
		applyLocal: func(y, x []float64) {
			c.MulVecTo(y, x)
			if s.NInt > 0 {
				f.MulVecTo(tmpF, x)
				bSolve(tmpB, tmpF)
				e.MulVecSub(y, tmpB)
			}
		},
		localFlops: 2*float64(c.NNZ()+e.NNZ()+f.NNZ()) + bFlops,
		tag:        tagSchur,
	}
	if err := op.buildSendMap(func(l int) (int, bool) {
		if l < s.NInt {
			return 0, false
		}
		return l - s.NInt, true
	}); err != nil {
		return nil, err
	}
	return op, nil
}

// NewExplicit builds the operator from an explicitly assembled local
// Schur matrix sLoc (n×n over this rank's interface unknowns) together
// with the external coupling block eExt (n×NExt). toIface maps a dsys
// local index (≥ NInt) to its interface-vector index; it defines how the
// neighbors' requests are served. This is the form used by the Schur 2
// (expanded Schur) preconditioner.
func NewExplicit(s *dsys.System, sLoc, eExt *sparse.CSR, toIface func(local int) (int, bool)) (*Iface, error) {
	if sLoc.Rows != sLoc.Cols {
		return nil, fmt.Errorf("schur: explicit local Schur must be square, got %d×%d", sLoc.Rows, sLoc.Cols)
	}
	if eExt.Rows != sLoc.Rows || eExt.Cols != s.NExt() {
		return nil, fmt.Errorf("schur: eExt is %d×%d, want %d×%d", eExt.Rows, eExt.Cols, sLoc.Rows, s.NExt())
	}
	op := &Iface{
		sys:        s,
		n:          sLoc.Rows,
		eExt:       eExt,
		applyLocal: func(y, x []float64) { sLoc.MulVecTo(y, x) },
		localFlops: 2 * float64(sLoc.NNZ()),
		tag:        tagSchur + 1,
	}
	if err := op.buildSendMap(toIface); err != nil {
		return nil, err
	}
	return op, nil
}

func (o *Iface) buildSendMap(toIface func(int) (int, bool)) error {
	o.sendIdx = make([][]int, len(o.sys.Neigh))
	for ni, nb := range o.sys.Neigh {
		idx := make([]int, 0, len(nb.SendIdx))
		for _, l := range nb.SendIdx {
			ii, ok := toIface(l)
			if !ok {
				return fmt.Errorf("schur: rank %d: neighbor %d requests local %d, which is not an interface unknown (structurally unsymmetric partition?)",
					o.sys.Rank, nb.Rank, l)
			}
			idx = append(idx, ii)
		}
		o.sendIdx[ni] = idx
	}
	o.ext = make([]float64, o.sys.NExt())
	return nil
}

// N returns the length of this rank's interface vector.
func (o *Iface) N() int { return o.n }

// leaseSendBufs takes the pooled per-neighbor staging buffers, allocating
// a fresh set (exact per-neighbor capacity) when the pool slot is empty.
func (o *Iface) leaseSendBufs() *[][]float64 {
	lease := o.sendBufs.Swap(nil)
	if lease == nil {
		bufs := make([][]float64, len(o.sys.Neigh))
		for ni := range bufs {
			bufs[ni] = make([]float64, 0, len(o.sendIdx[ni]))
		}
		lease = &bufs
	}
	return lease
}

// Exchange refreshes the external interface values for the interface
// vector x. All sends are posted before the first receive, each packed
// into its own pooled per-neighbor buffer so no slice is shared between
// in-flight sends, and every neighbor receive is drained and validated
// (typed receive errors, block length, payload finiteness) even after a
// failure — returning early would strand the remaining in-flight blocks
// and the next exchange would mispair against the stale messages. The
// first failure wins and surfaces as a typed *ExchangeError; a peer crash
// no longer panics the rank.
//
// Steady-state allocation is bounded by the transport's own payload
// copies (dist.Comm.Send copies every message); the packing itself is
// allocation-free, verified by TestExchangeSteadyStateAllocs.
func (o *Iface) Exchange(c *dist.Comm, x []float64) error {
	s := o.sys
	lease := o.leaseSendBufs()
	bufs := *lease
	defer o.sendBufs.Store(lease)
	for ni, nb := range s.Neigh {
		if len(nb.SendIdx) == 0 {
			continue
		}
		buf := bufs[ni][:0]
		for _, ii := range o.sendIdx[ni] {
			buf = append(buf, x[ii])
		}
		bufs[ni] = buf
		c.Send(nb.Rank, o.tag, buf)
	}
	var first *ExchangeError
	fail := func(e *ExchangeError) {
		if first == nil {
			first = e
		}
	}
	for _, nb := range s.Neigh {
		if nb.RecvLen == 0 {
			continue
		}
		got, err := c.RecvErr(nb.Rank, o.tag)
		if err != nil {
			fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank, Reason: "receive failed", Err: err})
			continue
		}
		if len(got) != nb.RecvLen {
			fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank,
				Reason: fmt.Sprintf("neighbor block length %d, want %d", len(got), nb.RecvLen)})
			continue
		}
		ok := true
		for _, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank, Reason: "non-finite payload"})
				ok = false
				break
			}
		}
		if ok {
			copy(o.ext[nb.RecvOff:nb.RecvOff+nb.RecvLen], got)
		}
	}
	if first != nil {
		return first
	}
	return nil
}

// MatVec computes y = S·x (this rank's rows of the global interface
// product), including the neighbor couplings. On an exchange failure y is
// left untouched and the typed error is returned.
func (o *Iface) MatVec(c *dist.Comm, y, x []float64) error {
	if err := o.Exchange(c, x); err != nil {
		return err
	}
	o.applyLocal(y, x)
	o.eExt.MulVecAdd(y, 1, o.ext)
	c.Compute(o.localFlops + 2*float64(o.eExt.NNZ()))
	return nil
}

// Dot is the global inner product over the distributed interface vectors.
func (o *Iface) Dot(c *dist.Comm, x, y []float64) float64 {
	local := sparse.Dot(x, y)
	c.Compute(2 * float64(o.n))
	return c.AllReduceSum(local)
}
