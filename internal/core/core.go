// Package core is the public façade of the library: it takes an assembled
// linear system (a Problem, typically produced by package cases), splits
// it across P simulated processors, runs the distributed FGMRES(20)
// solver with one of the paper's parallel algebraic preconditioners, and
// reports the two quantities the paper tabulates for every experiment:
// the iteration count and the (modeled) wall-clock time.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"parapre/internal/arms"
	"parapre/internal/ckpt"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/mslr"
	"parapre/internal/obs"
	"parapre/internal/par"
	"parapre/internal/partition"
	"parapre/internal/precond"
	"parapre/internal/sparse"
)

// Problem is an assembled distributed-ready linear system together with
// the grid metadata the partitioners need. Mesh may be nil for purely
// algebraic problems (e.g. matrices read from Matrix Market files); the
// general partitioner then works on the symmetrized sparsity graph of A,
// exactly as Metis does when fed a matrix instead of a mesh.
type Problem struct {
	Name string
	A    *sparse.CSR
	B    []float64
	Mesh *grid.Mesh // node graph source for the general partitioner (optional)
	// DofsPerNode maps matrix rows to mesh nodes (2 for elasticity, else
	// 1): row r belongs to node r/DofsPerNode.
	DofsPerNode int
}

// PatternGraph builds the symmetrized adjacency graph of the matrix
// sparsity pattern (self-loops removed) — the partitioning graph for
// mesh-less problems.
func PatternGraph(a *sparse.CSR) *partition.Graph {
	n := a.Rows
	adjSet := make([]map[int]bool, n)
	for i := 0; i < n; i++ {
		adjSet[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j != i && j < n {
				adjSet[i][j] = true
				adjSet[j][i] = true
			}
		}
	}
	ptr := make([]int, n+1)
	var adj []int
	for i := 0; i < n; i++ {
		keys := make([]int, 0, len(adjSet[i]))
		for j := range adjSet[i] {
			keys = append(keys, j)
		}
		sort.Ints(keys)
		adj = append(adj, keys...)
		ptr[i+1] = len(adj)
	}
	return &partition.Graph{Ptr: ptr, Adj: adj}
}

// PartitionScheme selects how the unknowns are divided among processors.
type PartitionScheme int

// Available partitioning schemes (§4.3 and §5.1 of the paper).
const (
	// PartitionGeneral is the Metis-style graph partitioner; the machine
	// seed makes it machine-dependent exactly as in the paper.
	PartitionGeneral PartitionScheme = iota
	// PartitionSimple cuts structured grids into rectangles/boxes.
	PartitionSimple
)

// Config selects the parallel setup for one solve.
type Config struct {
	P       int
	Machine *dist.Machine
	Scheme  PartitionScheme
	Precond precond.Kind
	ILUT    ilu.ILUTOptions       // Block 2 subdomain factorization
	Schur1  precond.Schur1Options // used when Precond == KindSchur1
	Schur2  precond.Schur2Options // used when Precond == KindSchur2
	MSLR    mslr.Options          // used when Precond == KindMSLR
	ARMS    arms.Options          // Block ARMS subdomain solver
	// PermTol is the ILUTP pivoting tolerance for Block 2P (default 1).
	PermTol float64
	// UseCG replaces the outer FGMRES with distributed preconditioned CG.
	// Only valid for SPD systems with an SPD preconditioner (Block IC or
	// None).
	UseCG   bool
	Schwarz *precond.SchwarzOptions // non-nil: additive Schwarz instead of Precond
	// OverlapLevels > 0 upgrades the Block preconditioners to their
	// overlapping (restricted additive Schwarz) variants with this many
	// extra graph layers per subdomain — the §1.1 "increased overlap"
	// extension.
	OverlapLevels int
	// RCM reorders each subdomain block with reverse Cuthill–McKee before
	// factoring (Block 1/2 only).
	RCM      bool
	Solver   krylov.Options
	KeepX    bool  // gather and return the global solution
	PartSeed int64 // overrides the machine partition seed when nonzero

	// Faults injects a deterministic chaos plan into the communicator
	// (see dist.FaultPlan); the solve then runs under the supervised
	// runtime and every injected failure comes back as a typed error —
	// dist.DeadlockError, dist.CrashError, krylov.BreakdownError — never
	// a hang or an escaped panic. Nil (the default) leaves the runtime
	// and all modeled times bit-identical to a fault-free build.
	Faults *dist.FaultPlan
	// Watchdog bounds the real time the world may go without any rank
	// completing an operation before the solve is declared deadlocked.
	// 0 disables it unless Faults is set (then dist.DefaultWatchdogBudget
	// applies).
	Watchdog time.Duration
	// Resilient enables the krylov.ResilientSolve escalation ladder on
	// the FGMRES path: a breakdown triggers a fresh zero restart, then a
	// fallback to an alternative preconditioner; Result.Recovery reports
	// what happened. Ignored with UseCG.
	Resilient bool

	// Ctx, when non-nil, makes the solve cancelable: once the context is
	// done, every rank leaves its Krylov loop at the next iteration
	// boundary and Result.Err wraps krylov.ErrCanceled. The signal is
	// propagated through an uncharged collective vote (dist.Comm.VoteStop),
	// so all ranks stop at the same iteration and the modeled times, fault
	// streams and traces of a run that is never canceled stay bit-identical
	// to one with Ctx nil. In-process worlds only: SolveRank workers cannot
	// share a context across processes (kill the process instead — that is
	// what checkpoints are for).
	Ctx context.Context

	// Collector, when non-nil, records structured observability data for
	// the solve: per-rank spans (communication, SpMV, preconditioner
	// setup/apply, orthogonalization), phase-attributed flop/byte
	// counters, fault events, and solve-level counters (iterations,
	// restarts, breakdowns, recovery steps). The solve then runs under
	// the supervised runtime; modeled times stay bit-identical to a run
	// without a collector. Nil (the default) is a no-op costing one
	// pointer check per instrumented operation.
	Collector *obs.Collector

	// CheckpointEvery > 0 makes every rank snapshot its solver recurrence
	// each CheckpointEvery iterations. The iteration count is replicated
	// across ranks, so the per-rank shards of one iteration form a
	// globally consistent checkpoint; they are assembled and persisted
	// atomically by the sink. Requires CheckpointPath or CheckpointSink.
	CheckpointEvery int
	// CheckpointPath is the durable checkpoint file, rewritten atomically
	// at each complete checkpoint (ckpt.FileWriter).
	CheckpointPath string
	// CheckpointSink overrides the path-based writer — the multi-process
	// worker passes its socket client here, which forwards shards to the
	// hub that owns the file.
	CheckpointSink ckpt.Sink
	// Restore resumes the solve mid-recurrence from a loaded checkpoint
	// (ckpt.Load) instead of starting fresh: per-rank solver state,
	// virtual clocks, fault-plan RNG cursors and observability counters
	// are all restored, so the resumed solve replays the uninterrupted
	// run's arithmetic bit for bit. The checkpoint must match the config
	// (world size, preconditioner identity).
	Restore *ckpt.Checkpoint
}

// DefaultConfig mirrors the paper's measurement setup (§4.3): FGMRES(20),
// residual reduction 1e−6, general partitioning, Linux-cluster machine
// model.
func DefaultConfig(p int, kind precond.Kind) Config {
	return Config{
		P:       p,
		Machine: dist.LinuxCluster(),
		Scheme:  PartitionGeneral,
		Precond: kind,
		ILUT:    ilu.DefaultILUT(),
		Schur1:  precond.DefaultSchur1(),
		Schur2:  precond.DefaultSchur2(),
		MSLR:    mslr.DefaultOptions(),
		ARMS:    arms.DefaultOptions(),
		Solver:  krylov.Options{Restart: 20, MaxIters: 1000, Tol: 1e-6, Flexible: true},
	}
}

// Result reports one solve.
type Result struct {
	Iterations int
	Restarts   int // outer-solver restart cycles after the first
	Converged  bool
	Residual   float64 // final relative residual (estimated)
	SetupTime  float64 // modeled seconds for preconditioner construction
	SolveTime  float64 // modeled seconds for the preconditioned FGMRES solve
	// Wall is the measured wall-clock seconds of the distributed solve
	// itself (partitioning through the last rank finishing). It stops
	// before any post-processing — the KeepX gather and the true-residual
	// recomputation — so walls are comparable across configurations that
	// differ only in post-processing.
	Wall       float64
	PerRank    []dist.Stats // always sorted by rank
	X          []float64    // gathered solution (only when Config.KeepX)
	TrueRelRes float64      // ‖b−Ax‖/‖b‖ recomputed globally (only when KeepX)
	History    []float64    // residual curve (when Config.Solver.RecordHistory)

	// PhaseBreakdown aggregates the recorded spans by phase — virtual
	// seconds (total and slowest-rank), span counts, attributed flops and
	// bytes. Only populated when Config.Collector is set.
	PhaseBreakdown []obs.PhaseStat

	// Err is the solver-level typed error of a failed solve — a
	// krylov.BreakdownError (possibly joined with a dsys.ExchangeError
	// when a communication fault poisoned the recurrence), or a
	// krylov.CanceledError when Config.Ctx was canceled. When the error
	// was observed on a rank other than 0 it is wrapped in a
	// RankSolveError naming the rank. Runtime-level failures (deadlock,
	// crash) are returned as Solve's error instead.
	Err error
	// ErrRank is the rank whose error Err surfaces (the lowest rank with
	// a non-nil solver error), or -1 when Err is nil.
	ErrRank int
	// Recovery is the escalation-ladder log (only with Config.Resilient).
	Recovery *krylov.RecoveryLog
}

// Partition computes the row partition for the problem under cfg. For
// mesh-less problems only the general (graph) scheme is available. An
// invalid request (e.g. P < 1) surfaces the partitioner's typed
// *partition.PartitionError.
func Partition(p *Problem, cfg Config) ([]int, error) {
	seed := cfg.Machine.Seed
	if cfg.PartSeed != 0 {
		seed = cfg.PartSeed
	}
	if p.Mesh == nil {
		return partition.General(PatternGraph(p.A), cfg.P, seed)
	}
	nodes := p.Mesh.NumNodes()
	dpn := p.DofsPerNode
	if dpn <= 0 {
		dpn = 1
	}
	var nodePart []int
	switch cfg.Scheme {
	case PartitionSimple:
		nodePart = partition.Simple(p.Mesh.X, p.Mesh.Dim, cfg.P)
	default:
		ptr, adj := p.Mesh.NodeGraph()
		var err error
		nodePart, err = partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, cfg.P, seed)
		if err != nil {
			return nil, err
		}
	}
	if dpn == 1 {
		return nodePart, nil
	}
	part := make([]int, nodes*dpn)
	for n := 0; n < nodes; n++ {
		for d := 0; d < dpn; d++ {
			part[n*dpn+d] = nodePart[n]
		}
	}
	return part, nil
}

// setupFlopFactor is the heuristic cost of constructing an incomplete
// factorization, in units of its solve cost: roughly three sweeps over
// the factor per row elimination. The paper's wall-clock times include
// preconditioner setup, so ours charge this to the virtual clock.
const setupFlopFactor = 3

// Solve partitions, distributes and solves the problem, returning the
// paper's measurements.
func Solve(p *Problem, cfg Config) (*Result, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("core: P = %d", cfg.P)
	}
	wallStart := time.Now()
	if cfg.Solver.Restart == 0 {
		cfg.Solver = DefaultConfig(cfg.P, cfg.Precond).Solver
	}
	var part []int
	if cfg.Schwarz != nil {
		// Additive Schwarz requires the rectangular ownership its halo
		// wiring is built around.
		part = precond.BoxPartition(cfg.Schwarz.M, cfg.Schwarz.Px, cfg.Schwarz.Py)
	} else {
		var err error
		part, err = Partition(p, cfg)
		if err != nil {
			return nil, err
		}
	}
	systems := dsys.Distribute(p.A, p.B, part, cfg.P)

	// Additive Schwarz: per-rank setup is independent and runs on the
	// worker pool; only the cross-rank halo wiring is sequential.
	var schwarz []*precond.Schwarz
	if cfg.Schwarz != nil {
		var err error
		schwarz, err = buildSchwarz(systems, p.A, *cfg.Schwarz)
		if err != nil {
			return nil, err
		}
	}

	// Overlapping block preconditioners are likewise pre-wired.
	var overlap []*precond.OverlapBlock
	if cfg.OverlapLevels > 0 && (cfg.Precond == precond.KindBlock1 || cfg.Precond == precond.KindBlock2) {
		opt := precond.OverlapOptions{
			Levels:  cfg.OverlapLevels,
			UseILU0: cfg.Precond == precond.KindBlock1,
			ILUT:    cfg.ILUT,
		}
		var err error
		overlap, err = precond.BuildOverlapBlocks(p.A, part, systems, opt)
		if err != nil {
			return nil, err
		}
	}

	if err := validateRestore(cfg); err != nil {
		return nil, err
	}
	res := &Result{PerRank: make([]dist.Stats, cfg.P)}
	wr := &worldRun{
		cfg:     cfg,
		systems: systems,
		schwarz: schwarz,
		overlap: overlap,
		sink:    checkpointSink(cfg),
	}
	wr.alloc()
	results := wr.results
	logs := wr.logs
	setupClock := wr.setup
	xl := wr.xl

	stats, runErr := runWorld(cfg, wr.rank)

	for r, err := range wr.errs {
		if err != nil {
			return nil, fmt.Errorf("core: rank %d setup: %w", r, err)
		}
	}
	if runErr != nil {
		// Deadlock, crash or rank panic: the typed runtime error is the
		// result (per-rank stats up to the failure are in it already).
		return nil, runErr
	}
	copy(res.PerRank, stats)
	sortPerRank(res.PerRank)
	breakdown := aggregateResult(res, results, logs)
	var maxSetup, maxClock float64
	for r := 0; r < cfg.P; r++ {
		if setupClock[r] > maxSetup {
			maxSetup = setupClock[r]
		}
		if stats[r].Clock > maxClock {
			maxClock = stats[r].Clock
		}
	}
	res.SetupTime = maxSetup
	res.SolveTime = maxClock - maxSetup
	res.Wall = time.Since(wallStart).Seconds()
	recordSolveCounters(cfg, res, breakdown)
	if cfg.KeepX {
		res.X = dsys.Gather(systems, xl)
		r := append([]float64(nil), p.B...)
		p.A.MulVecSub(r, res.X)
		nb := sparse.Norm2(p.B)
		if nb > 0 {
			res.TrueRelRes = sparse.Norm2(r) / nb
		} else {
			res.TrueRelRes = sparse.Norm2(r)
		}
	}
	return res, nil
}

// runWorld launches the rank goroutines under the runtime the config asks
// for: the legacy unsupervised dist.Run (bit-identical to every earlier
// release) unless fault injection or a watchdog budget is requested, in
// which case the supervised dist.RunOpts converts deadlocks, crashes and
// rank panics into typed errors.
func runWorld(cfg Config, fn func(*dist.Comm)) ([]dist.Stats, error) {
	if cfg.Faults == nil && cfg.Watchdog == 0 && cfg.Collector == nil {
		return dist.Run(cfg.P, cfg.Machine, fn), nil
	}
	opts := dist.WorldOptions{Faults: cfg.Faults, Watchdog: cfg.Watchdog, Collector: cfg.Collector}
	return dist.RunOpts(cfg.P, cfg.Machine, opts, fn)
}

// precondLabel names the configured preconditioner for span labels.
func precondLabel(cfg Config) string {
	if cfg.Schwarz != nil {
		return "schwarz"
	}
	return string(cfg.Precond)
}

// wrapApply builds the solver-facing preconditioner application, wrapped
// in an observability span when the rank records one.
func wrapApply(c *dist.Comm, name string, pc precond.Preconditioner) krylov.Prec {
	if !c.ObsEnabled() {
		return func(z, r []float64) { pc.Apply(c, z, r) }
	}
	return func(z, r []float64) {
		h := c.BeginSpan(obs.KindPrecondApply, name)
		pc.Apply(c, z, r)
		c.EndSpan(h)
	}
}

// sortPerRank pins Result.PerRank to ascending rank order. Run/RunOpts
// already emit rank-indexed slices, but the result's contract should not
// depend on how the stats were assembled.
func sortPerRank(stats []dist.Stats) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Rank < stats[j].Rank })
}

// recordSolveCounters publishes the solve-level counters and the phase
// breakdown to the configured collector; no-op without one.
func recordSolveCounters(cfg Config, res *Result, breakdown bool) {
	col := cfg.Collector
	if col == nil {
		return
	}
	col.Add("iterations", float64(res.Iterations))
	col.Add("restarts", float64(res.Restarts))
	if breakdown {
		col.Add("breakdowns", 1)
	}
	if res.Converged {
		col.Add("converged", 1)
	} else {
		col.Add("converged", 0)
	}
	if res.Recovery != nil {
		col.Add("recovery_steps", float64(len(res.Recovery.Steps)))
		if res.Recovery.Recovered {
			col.Add("recoveries", 1)
		}
	}
	res.PhaseBreakdown = col.PhaseBreakdown()
}

// buildRankPrecond constructs one rank's preconditioner of the given kind
// under cfg's options. It is shared by the main solve path, the resilient
// escalation ladder (which may ask for a kind different from cfg.Precond)
// and Session.Solve.
func buildRankPrecond(cfg Config, s *dsys.System, kind precond.Kind) (precond.Preconditioner, error) {
	switch {
	case kind == precond.KindBlock1 && cfg.RCM:
		return precond.NewBlockOrdered(s, true, cfg.ILUT)
	case kind == precond.KindBlock2 && cfg.RCM:
		return precond.NewBlockOrdered(s, false, cfg.ILUT)
	case kind == precond.KindBlock1:
		return precond.NewBlock1(s)
	case kind == precond.KindBlock2:
		return precond.NewBlock2(s, cfg.ILUT)
	case kind == precond.KindBlockARMS:
		return precond.NewBlockARMS(s, cfg.ARMS)
	case kind == precond.KindBlock2P:
		pt := cfg.PermTol
		if pt == 0 {
			pt = 1
		}
		return precond.NewBlock2Pivot(s, ilu.ILUTPOptions{ILUTOptions: cfg.ILUT, PermTol: pt})
	case kind == precond.KindBlockIC:
		return precond.NewBlockIC(s)
	case kind == precond.KindSchur1:
		return precond.NewSchur1(s, cfg.Schur1)
	case kind == precond.KindSchur2:
		return precond.NewSchur2(s, cfg.Schur2)
	case kind == precond.KindMSLR:
		return precond.NewMSLR(s, cfg.MSLR)
	default:
		return precond.NewIdentity(), nil
	}
}

// fallbackKind maps the configured preconditioner to the escalation
// ladder's alternative: the Schur variants fall back to the cheap,
// structurally different Block 2, everything else escalates to the
// paper's most robust method, Schur 1.
func fallbackKind(k precond.Kind) precond.Kind {
	switch k {
	case precond.KindSchur1, precond.KindSchur2, precond.KindMSLR:
		return precond.KindBlock2
	default:
		return precond.KindSchur1
	}
}

// resilientLadder assembles the two-stage escalation ladder for one rank:
// stage 0 is the already-built configured preconditioner, stage 1 lazily
// constructs the fallback kind. Because Schur preconditioners communicate
// inside Apply, a per-rank build failure must be decided collectively —
// mixed identity/Schur applications would deadlock — so the lazy
// constructor reduces a success flag across ranks and every rank falls
// back to no preconditioning if any build failed. The fallback's setup
// cost is charged to the virtual clock only when the ladder reaches it.
func resilientLadder(cfg Config, c *dist.Comm, s *dsys.System, prec krylov.Prec) []krylov.Stage {
	fk := fallbackKind(cfg.Precond)
	return []krylov.Stage{
		{Name: string(cfg.Precond), Prec: func() krylov.Prec { return prec }},
		{Name: string(fk), Prec: func() krylov.Prec {
			fpc, err := buildRankPrecond(cfg, s, fk)
			ok := 1.0
			if err != nil {
				ok = 0
			}
			if c.AllReduceMin(ok) == 0 {
				return nil
			}
			c.Compute(setupFlopFactor * setupCost(fpc))
			return func(z, r []float64) { fpc.Apply(c, z, r) }
		}},
	}
}

// buildSchwarz constructs every rank's additive Schwarz preconditioner
// concurrently (each build reads only the shared matrix and its own
// subdomain) and then wires the halo exchanges serially.
func buildSchwarz(systems []*dsys.System, a *sparse.CSR, opt precond.SchwarzOptions) ([]*precond.Schwarz, error) {
	p := len(systems)
	schwarz := make([]*precond.Schwarz, p)
	errs := make([]error, p)
	par.Run(p, func(r int) {
		schwarz[r], errs[r] = precond.NewSchwarz(systems[r], a, opt)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := precond.WireHalo(schwarz); err != nil {
		return nil, err
	}
	return schwarz, nil
}

// setupCost estimates the flop count of building pc (heuristic, in solve
// units): every preconditioner reports its factorization footprint via
// SetupFlops or FactorNNZ.
func setupCost(pc precond.Preconditioner) float64 {
	if v, ok := pc.(interface{ SetupFlops() float64 }); ok {
		return v.SetupFlops()
	}
	if b, ok := pc.(interface{ FactorNNZ() int }); ok {
		return 2 * float64(b.FactorNNZ())
	}
	return 0
}

// Verify solves the problem sequentially with plain GMRES to tight
// tolerance and returns the max-norm difference against x — a correctness
// oracle used by tests and examples.
func Verify(p *Problem, x []float64) (float64, error) {
	ref := make([]float64, p.A.Rows)
	res := krylov.SolveCSR(p.A, nil, p.B, ref, krylov.Options{Restart: 50, MaxIters: 20000, Tol: 1e-12})
	if !res.Converged {
		return math.NaN(), fmt.Errorf("core: reference solve did not converge (res %g)", res.Final)
	}
	var d float64
	for i := range ref {
		if e := math.Abs(ref[i] - x[i]); e > d {
			d = e
		}
	}
	return d, nil
}
