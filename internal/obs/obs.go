// Package obs is the observability layer of the repository: structured
// tracing and metrics riding on the virtual-time runtime of package dist.
//
// The paper's whole argument is a timing breakdown — setup vs. iteration
// cost, communication vs. computation per preconditioner (Tables 2–5) —
// so every instrumented operation records a span carrying both clocks:
// the virtual-clock interval the machine model charges (the quantity the
// paper tabulates) and the wall-clock interval the operation actually
// took on this host. Spans are grouped per simulated rank, counters
// accumulate per rank and globally, and two exporters serialize the
// collected state: a Chrome trace-event JSON file (chrome://tracing,
// Perfetto) and a Prometheus-style text snapshot.
//
// The layer is nil-safe end to end: a nil *Collector and a nil
// *RankRecorder accept every call as a no-op, so instrumented code runs
// with a single pointer check per operation when tracing is disabled and
// the virtual clocks are bit-identical with and without a collector
// attached. Rank recorders are single-writer by construction (each is
// owned by one rank goroutine, like a dist.Comm), so recording takes no
// locks; exports must happen after the world has finished (the usual
// WaitGroup happens-before edge).
package obs

import (
	"sort"
	"sync"
	"time"
)

// Span kinds used by the instrumented layers. Kinds double as the phase
// label for flop/byte attribution: while a span of kind K is open on a
// rank, that rank's Compute flops and Send bytes are charged to phase K.
const (
	KindSend         = "send"
	KindRecv         = "recv"
	KindAllReduce    = "allreduce"
	KindBarrier      = "barrier"
	KindAllGather    = "allgather"
	KindExchange     = "exchange"
	KindSpMV         = "spmv"
	KindPrecondSetup = "precond_setup"
	KindPrecondApply = "precond_apply"
	KindOrth         = "orth"
	KindAttempt      = "resilient_attempt"
	// KindMSLRSchur is the MSLR preconditioner's inner distributed
	// interface solve (the level-0 Schur GMRES), opened inside the
	// enclosing precond_apply span.
	KindMSLRSchur = "mslr_schur"
)

// PhaseOther is the phase charged while no span is open.
const PhaseOther = "other"

// Event is one recorded span: a named interval on one rank carrying the
// virtual-clock boundaries (seconds on the modeled machine) and the
// wall-clock boundaries (nanoseconds since the collector's epoch). Peer
// and Tag are -1 for non-point-to-point events; Bytes is the payload
// size of communication events.
type Event struct {
	Rank   int
	Seq    int // per-rank sequence number (deterministic)
	Kind   string
	Name   string // optional label ("Schur 1", …); empty for most spans
	VStart float64
	VEnd   float64
	WStart int64 // wall nanoseconds since the collector epoch
	WEnd   int64
	Peer   int
	Tag    int
	Bytes  int
}

// Dur returns the span's virtual duration in seconds.
func (e Event) Dur() float64 { return e.VEnd - e.VStart }

// Collector gathers spans and counters for one traced run. The zero
// value is not usable; create collectors with NewCollector. A nil
// *Collector is a valid "tracing disabled" collector: every method is a
// no-op and Rank returns a nil recorder.
type Collector struct {
	epoch time.Time

	mu       sync.Mutex
	ranks    map[int]*RankRecorder
	counters map[string]float64
	live     func(Event)
}

// SetLiveSink registers a callback invoked with every completed span as
// its Span.End runs — the hook a streaming service uses to push phase
// events to subscribers while the solve is still in flight. The sink is
// copied into each rank recorder when the recorder is created, so it
// must be set before the world starts; it runs on rank goroutines
// (possibly several at once) and must be cheap and thread-safe. A nil
// sink (the default) changes nothing: recording stays lock-free and
// allocation-free. No-op on a nil collector.
func (c *Collector) SetLiveSink(fn func(Event)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.live = fn
	c.mu.Unlock()
}

// NewCollector creates an empty collector whose wall-clock epoch is now.
func NewCollector() *Collector {
	return &Collector{
		epoch:    time.Now(),
		ranks:    make(map[int]*RankRecorder),
		counters: make(map[string]float64),
	}
}

// Enabled reports whether the collector actually records (false for the
// nil collector).
func (c *Collector) Enabled() bool { return c != nil }

// Rank returns the recorder of rank r, creating it on first use. Safe
// for concurrent use; returns nil on a nil collector. Reusing a
// collector across several worlds appends to the same per-rank streams.
func (c *Collector) Rank(r int) *RankRecorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.ranks[r]
	if !ok {
		rec = &RankRecorder{rank: r, epoch: c.epoch, counters: make(map[string]float64), live: c.live}
		c.ranks[r] = rec
	}
	return rec
}

// Add increments the named collector-level counter (driver-side totals:
// iterations, restarts, fault crashes, …). Safe for concurrent use;
// no-op on a nil collector.
func (c *Collector) Add(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += v
	c.mu.Unlock()
}

// Set overwrites the named collector-level gauge.
func (c *Collector) Set(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] = v
	c.mu.Unlock()
}

// rankList returns the recorders sorted by rank.
func (c *Collector) rankList() []*RankRecorder {
	out := make([]*RankRecorder, 0, len(c.ranks))
	for _, rec := range c.ranks {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}

// Events returns every recorded span sorted by (rank, sequence) — a
// deterministic order for a deterministic run. Must be called after the
// recording world has finished.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, rec := range c.rankList() {
		out = append(out, rec.events...)
	}
	return out
}

// counterKey is one exported counter sample: a name, an optional rank
// label (-1 = global), and a value.
type counterKey struct {
	name string
	rank int
}

// snapshotCounters merges the collector-level counters with every
// rank's, in deterministic order: global counters first (sorted by
// name), then per-rank counters sorted by (name, rank).
func (c *Collector) snapshotCounters() ([]counterKey, map[counterKey]float64) {
	vals := make(map[counterKey]float64)
	var keys []counterKey
	for name, v := range c.counters {
		k := counterKey{name: name, rank: -1}
		vals[k] = v
		keys = append(keys, k)
	}
	for _, rec := range c.rankList() {
		for name, v := range rec.counters {
			k := counterKey{name: name, rank: rec.rank}
			vals[k] = v
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].rank < keys[j].rank
	})
	return keys, vals
}

// PhaseStat aggregates every span of one kind across the collector.
type PhaseStat struct {
	Phase        string  // span kind
	Count        int     // number of spans
	MaxSeconds   float64 // slowest rank's summed virtual seconds in this phase
	TotalSeconds float64 // virtual seconds summed across all ranks
	Flops        float64 // flops charged while this phase was innermost
	Bytes        int     // bytes sent while this phase was innermost
}

// PhaseBreakdown aggregates the recorded spans into per-phase totals,
// sorted by phase name. Virtual time is attributed to a span's own kind
// even when spans nest (an exchange inside an spmv counts toward both);
// flops and bytes are attributed to the innermost open phase only.
func (c *Collector) PhaseBreakdown() []PhaseStat {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := make(map[string]*PhaseStat)
	get := func(phase string) *PhaseStat {
		st, ok := agg[phase]
		if !ok {
			st = &PhaseStat{Phase: phase}
			agg[phase] = st
		}
		return st
	}
	for _, rec := range c.rankList() {
		perRank := make(map[string]float64)
		for _, e := range rec.events {
			st := get(e.Kind)
			st.Count++
			st.TotalSeconds += e.Dur()
			perRank[e.Kind] += e.Dur()
		}
		for phase, sec := range perRank {
			if st := get(phase); sec > st.MaxSeconds {
				st.MaxSeconds = sec
			}
		}
		for name, v := range rec.counters {
			if phase, ok := cutPrefix(name, "flops/"); ok {
				get(phase).Flops += v
			}
			if phase, ok := cutPrefix(name, "bytes/"); ok {
				get(phase).Bytes += int(v)
			}
		}
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// cutPrefix is strings.CutPrefix without pulling the dependency into the
// hot-path file set.
func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return s, false
}

// RankRecorder records the spans and counters of one rank. It is owned
// by exactly one goroutine (the rank), so recording is lock-free; a nil
// *RankRecorder ignores every call.
type RankRecorder struct {
	rank     int
	epoch    time.Time
	events   []Event
	counters map[string]float64
	live     func(Event) // copied from the collector at creation; may be nil
}

// Span is a handle to an open event. The zero Span (from a nil
// recorder) is inert: End and the setters do nothing.
type Span struct {
	rec *RankRecorder
	idx int
}

// Begin opens a span of the given kind at virtual time vclock. On a nil
// recorder it returns the inert zero Span.
func (r *RankRecorder) Begin(kind, name string, vclock float64) Span {
	if r == nil {
		return Span{}
	}
	r.events = append(r.events, Event{
		Rank:   r.rank,
		Seq:    len(r.events),
		Kind:   kind,
		Name:   name,
		VStart: vclock,
		VEnd:   vclock,
		WStart: time.Since(r.epoch).Nanoseconds(),
		Peer:   -1,
		Tag:    -1,
	})
	return Span{rec: r, idx: len(r.events) - 1}
}

// BeginComm opens a point-to-point span with peer/tag/payload metadata.
func (r *RankRecorder) BeginComm(kind string, peer, tag, bytes int, vclock float64) Span {
	s := r.Begin(kind, "", vclock)
	if s.rec != nil {
		e := &s.rec.events[s.idx]
		e.Peer, e.Tag, e.Bytes = peer, tag, bytes
	}
	return s
}

// End closes the span at virtual time vclock and, when the collector has
// a live sink, publishes the completed event to it.
func (s Span) End(vclock float64) {
	if s.rec == nil {
		return
	}
	e := &s.rec.events[s.idx]
	e.VEnd = vclock
	e.WEnd = time.Since(s.rec.epoch).Nanoseconds()
	if s.rec.live != nil {
		s.rec.live(*e)
	}
}

// Count increments the named per-rank counter. No-op on nil.
func (r *RankRecorder) Count(name string, v float64) {
	if r == nil {
		return
	}
	r.counters[name] += v
}

// CountPhase increments the phase-labeled counter name/phase ("flops/"
// and "bytes/" families feed PhaseBreakdown). An empty phase is charged
// to PhaseOther.
func (r *RankRecorder) CountPhase(name, phase string, v float64) {
	if r == nil {
		return
	}
	if phase == "" {
		phase = PhaseOther
	}
	r.counters[name+"/"+phase] += v
}

// CounterSnapshot returns a copy of the per-rank counters — the piece of
// the observability state a solver checkpoint carries, so counts survive
// process death. Nil on a nil recorder.
func (r *RankRecorder) CounterSnapshot() map[string]float64 {
	if r == nil || len(r.counters) == 0 {
		return nil
	}
	out := make(map[string]float64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// MergeCounters adds previously snapshotted counter values back into the
// recorder — the checkpoint-restore path. No-op on a nil recorder.
func (r *RankRecorder) MergeCounters(m map[string]float64) {
	if r == nil {
		return
	}
	for k, v := range m {
		r.counters[k] += v
	}
}
