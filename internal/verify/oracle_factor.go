package verify

import (
	"errors"
	"fmt"
	"math"

	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// completeOpts removes all dropping: ILUT(0, unlimited) is a complete LU
// without pivoting, which turns the incomplete machinery into an exact
// oracle.
var completeOpts = ilu.ILUTOptions{Tau: 0, LFil: 0}

// checkFactorComplete verifies the factorization identities that hold
// exactly (up to rounding) when no dropping occurs: L·U reproduces A, and
// factor solves agree with the dense LU reference.
func checkFactorComplete(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 2, 6, 14}
	if !cfg.Quick {
		sizes = append(sizes, 31, 52)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 700*int64(n) + trial
			a := randomDiagDominant(n, 0.35, seed)
			ad := a.Dense()
			scale := denseScale(ad)

			f, err := ilu.ILUT(a, completeOpts)
			if err != nil {
				out = append(out, Violation{"factor-complete", fmt.Sprintf("ILUT: %v", err), repro(n, seed, "")})
				continue
			}
			// Identity 1: the product of complete factors is A.
			prod := f.Product()
			if d := denseMaxDiff(prod, ad); d > 1e-10*scale {
				v := Violation{"factor-complete",
					fmt.Sprintf("complete ILUT product differs from A by %g", d), ""}
				mn, ms := minimize(func(n int, s int64) bool {
					aa := randomDiagDominant(n, 0.35, s)
					ff, err := ilu.ILUT(aa, completeOpts)
					if err != nil {
						return false
					}
					return denseMaxDiff(ff.Product(), aa.Dense()) > 1e-10*denseScale(aa.Dense())
				}, n, seed, 1)
				v.Repro = repro(mn, ms, "")
				out = append(out, v)
			}
			// Identity 2: the factor solve equals the dense LU solve.
			lu, err := ad.Factor()
			if err != nil {
				out = append(out, Violation{"factor-complete", fmt.Sprintf("dense factor: %v", err), repro(n, seed, "")})
				continue
			}
			b := randomRHS(n, seed)
			x := make([]float64, n)
			f.Solve(x, b)
			xd := lu.Solve(b)
			if d := maxAbsDiff(x, xd); d > 1e-8*(1+maxAbs(xd)) {
				out = append(out, Violation{"factor-complete",
					fmt.Sprintf("complete ILUT solve differs from dense LU solve by %g", d), repro(n, seed, "")})
			}

			// Identity 3: complete ILUTP solves A·x = b in the original
			// ordering, pivoting notwithstanding.
			pf, err := ilu.ILUTP(a, ilu.ILUTPOptions{ILUTOptions: completeOpts, PermTol: 1})
			if err != nil {
				out = append(out, Violation{"factor-complete", fmt.Sprintf("ILUTP: %v", err), repro(n, seed, "")})
				continue
			}
			xp := make([]float64, n)
			pf.Solve(xp, b)
			if d := maxAbsDiff(xp, xd); d > 1e-8*(1+maxAbs(xd)) {
				out = append(out, Violation{"factor-complete",
					fmt.Sprintf("complete ILUTP solve differs from dense LU solve by %g (swaps=%d)", d, pf.Swaps),
					repro(n, seed, "")})
			}
			if !pf.Perm.IsValid() {
				out = append(out, Violation{"factor-complete", "ILUTP permutation invalid", repro(n, seed, "")})
			}
		}
	}
	return out
}

// checkFactorIncomplete verifies the triangular-solve wiring of truly
// incomplete factors: whatever pattern survived dropping, Solve must
// invert the stored factors exactly — (L·U)·Solve(r) = r up to rounding —
// and the factored pattern must never lose the diagonal.
func checkFactorIncomplete(cfg Config) []Violation {
	var out []Violation
	sizes := []int{2, 8, 18}
	if !cfg.Quick {
		sizes = append(sizes, 41)
	}
	opts := []ilu.ILUTOptions{
		{Tau: 1e-2, LFil: 3},
		{Tau: 1e-4, LFil: 8},
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 800*int64(n) + trial
			a := randomDiagDominant(n, 0.35, seed)
			factors := map[string]*ilu.LU{}
			if f, err := ilu.ILU0(a); err == nil {
				factors["ILU0"] = f
			} else {
				out = append(out, Violation{"factor-incomplete", fmt.Sprintf("ILU0: %v", err), repro(n, seed, "")})
			}
			for oi, opt := range opts {
				if f, err := ilu.ILUT(a, opt); err == nil {
					factors[fmt.Sprintf("ILUT#%d", oi)] = f
				} else {
					out = append(out, Violation{"factor-incomplete", fmt.Sprintf("ILUT: %v", err), repro(n, seed, "")})
				}
			}
			b := randomRHS(n, seed)
			for name, f := range factors {
				out = append(out, checkSolveInvertsFactor(name, f, b, n, seed)...)
			}
		}
	}
	return out
}

func checkSolveInvertsFactor(name string, f *ilu.LU, b []float64, n int, seed int64) []Violation {
	var out []Violation
	for i := 0; i < f.N(); i++ {
		if f.M.ColIdx[f.Diag[i]] != i {
			return []Violation{{"factor-incomplete",
				fmt.Sprintf("%s: Diag[%d] does not point at the diagonal", name, i), repro(n, seed, "")}}
		}
		if f.M.Val[f.Diag[i]] == 0 || !isFinite(f.M.Val[f.Diag[i]]) {
			return []Violation{{"factor-incomplete",
				fmt.Sprintf("%s: pivot %d is %g", name, i, f.M.Val[f.Diag[i]]), repro(n, seed, "")}}
		}
	}
	x := make([]float64, f.N())
	f.Solve(x, b)
	// (L·U)·x must reproduce b: the solves are exact inverses of the
	// stored factors regardless of how much was dropped.
	prod := f.Product()
	r := prod.MulVec(x)
	if d := maxAbsDiff(r, b); d > 1e-9*(1+maxAbs(b))*(1+maxAbs(x)) {
		out = append(out, Violation{"factor-incomplete",
			fmt.Sprintf("%s: (L·U)·Solve(b) differs from b by %g", name, d), repro(n, seed, "")})
	}
	return out
}

// checkFactorIC verifies the incomplete Cholesky factors: Lt is exactly
// Lᵀ, the product L·Lᵀ is symmetric, a complete-pattern IC0 reproduces
// the SPD matrix, and its solve agrees with the dense reference.
func checkFactorIC(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 2, 7, 15}
	if !cfg.Quick {
		sizes = append(sizes, 33)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 900*int64(n) + trial
			// Dense-pattern SPD matrix: IC0 keeps the full lower triangle,
			// so the factorization is a complete Cholesky.
			a := randomSPD(n, 1.0, seed)
			ch, err := ilu.IC0(a)
			if err != nil {
				out = append(out, Violation{"factor-ic", fmt.Sprintf("IC0: %v", err), repro(n, seed, "")})
				continue
			}
			if ch.Fixes != 0 {
				out = append(out, Violation{"factor-ic",
					fmt.Sprintf("IC0 of an SPD matrix needed %d diagonal fixes", ch.Fixes), repro(n, seed, "")})
			}
			// Lt = Lᵀ exactly.
			if !ch.Lt.Equal(ch.L.Transpose()) {
				out = append(out, Violation{"factor-ic", "Lt is not the transpose of L", repro(n, seed, "")})
			}
			// L·Lᵀ = A (complete pattern) and symmetric by construction.
			ld := ch.L.Dense()
			prod := sparse.NewDense(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var s float64
					for k := 0; k <= minInt2(i, j); k++ {
						s += ld.At(i, k) * ld.At(j, k)
					}
					prod.Set(i, j, s)
				}
			}
			ad := a.Dense()
			if d := denseMaxDiff(prod, ad); d > 1e-9*denseScale(ad) {
				out = append(out, Violation{"factor-ic",
					fmt.Sprintf("complete-pattern L·Lᵀ differs from A by %g", d), repro(n, seed, "")})
			}
			// Solve vs dense LU solve.
			lu, err := ad.Factor()
			if err != nil {
				out = append(out, Violation{"factor-ic", fmt.Sprintf("dense factor: %v", err), repro(n, seed, "")})
				continue
			}
			b := randomRHS(n, seed)
			z := make([]float64, n)
			ch.Solve(z, b)
			zd := lu.Solve(b)
			if d := maxAbsDiff(z, zd); d > 1e-8*(1+maxAbs(zd)) {
				out = append(out, Violation{"factor-ic",
					fmt.Sprintf("IC solve differs from dense solve by %g", d), repro(n, seed, "")})
			}
		}
	}
	return out
}

// checkFactorZeroPivot pins the zero-pivot contract: structurally zero
// rows are refused with a typed error wrapping ilu.ErrZeroPivot, and
// small-but-nonzero pivots are repaired and counted, never silently
// amplified beyond the documented 1/pivotRel bound.
func checkFactorZeroPivot(cfg Config) []Violation {
	var out []Violation
	for _, n := range []int{2, 5, 9} {
		for trial := int64(0); trial < 2; trial++ {
			seed := cfg.Seed + 1000*int64(n) + trial
			a := withZeroRow(randomDiagDominant(n, 0.4, seed), n/2)
			runs := map[string]func() error{
				"ILU0": func() error { _, err := ilu.ILU0(a); return err },
				"ILUT": func() error { _, err := ilu.ILUT(a, completeOpts); return err },
				"ILUTP": func() error {
					_, err := ilu.ILUTP(a, ilu.ILUTPOptions{ILUTOptions: completeOpts, PermTol: 1})
					return err
				},
				"IC0": func() error { _, err := ilu.IC0(a); return err },
			}
			for name, run := range runs {
				err := run()
				if err == nil {
					out = append(out, Violation{"factor-zero-pivot",
						fmt.Sprintf("%s accepted a structurally zero row", name),
						repro(n, seed, fmt.Sprintf("row=%d", n/2))})
					continue
				}
				if !errors.Is(err, ilu.ErrZeroPivot) {
					out = append(out, Violation{"factor-zero-pivot",
						fmt.Sprintf("%s error %v does not wrap ilu.ErrZeroPivot", name, err),
						repro(n, seed, "")})
				}
			}
		}
	}
	return out
}

// withZeroRow clears row r (and keeps the matrix otherwise intact).
func withZeroRow(a *sparse.CSR, r int) *sparse.CSR {
	coo := sparse.NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		if i == r {
			continue
		}
		cols, vals := a.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
	}
	return coo.ToCSR()
}

func denseMaxDiff(a, b *sparse.Dense) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

func maxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
