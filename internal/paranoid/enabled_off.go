//go:build !paranoid

package paranoid

// Enabled reports whether the paranoid runtime invariant checks are
// compiled in. In the default build it is a false constant, so every
// helper in this package compiles to an empty, inlinable function and
// the checks cost exactly nothing.
const Enabled = false
