package ilu

import (
	"errors"
	"testing"

	"parapre/internal/sparse"
)

// zeroRowMatrix builds a 4×4 matrix whose row 2 is structurally empty.
func zeroRowMatrix() *sparse.CSR {
	coo := sparse.NewCOO(4, 4, 8)
	coo.Add(0, 0, 2)
	coo.Add(0, 1, -1)
	coo.Add(1, 1, 3)
	coo.Add(3, 3, 1)
	return coo.ToCSR()
}

// Regression: a structurally zero row used to be silently floored to the
// absolute pivotRel (1e-8), so the backward solve multiplied the
// right-hand side by 1e8 — a garbage answer with PivotFixes as the only
// hint. Every factorization must now refuse with a typed error.
func TestZeroRowReturnsTypedError(t *testing.T) {
	a := zeroRowMatrix()
	cases := []struct {
		name string
		run  func() error
	}{
		{"ILU0", func() error { _, err := ILU0(a); return err }},
		{"ILUT", func() error { _, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0}); return err }},
		{"ILUTP", func() error {
			_, err := ILUTP(a, ILUTPOptions{ILUTOptions: ILUTOptions{Tau: 0}, PermTol: 1})
			return err
		}},
		{"IC0", func() error { _, err := IC0(a); return err }},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s: zero row accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrZeroPivot) {
			t.Errorf("%s: error %v does not wrap ErrZeroPivot", tc.name, err)
		}
		var zp *ZeroPivotError
		if !errors.As(err, &zp) {
			t.Errorf("%s: error %v is not a *ZeroPivotError", tc.name, err)
			continue
		}
		if zp.Row != 2 {
			t.Errorf("%s: reported row %d, want 2", tc.name, zp.Row)
		}
		if zp.Method != tc.name {
			t.Errorf("%s: reported method %q", tc.name, zp.Method)
		}
	}
}

// An explicit all-zero row (stored entries, all exactly zero) is just as
// information-free as a structurally empty one.
func TestExplicitZeroRowReturnsTypedError(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 5)
	coo.Add(0, 0, 2)
	coo.Add(1, 0, 0)
	coo.Add(1, 1, 0)
	coo.Add(2, 2, 1)
	a := coo.ToCSR()
	for _, run := range []func() error{
		func() error { _, err := ILU0(a); return err },
		func() error { _, err := ILUT(a, ILUTOptions{Tau: 0}); return err },
	} {
		if err := run(); !errors.Is(err, ErrZeroPivot) {
			t.Errorf("explicit zero row: got %v, want ErrZeroPivot", err)
		}
	}
}
