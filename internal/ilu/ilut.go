package ilu

import (
	"math"
	"sort"

	"parapre/internal/sparse"
)

// ILUTOptions controls the dual-threshold factorization. The paper's ILUT
// subdomain solvers correspond to moderate fill (LFil ≈ 10–30) and a drop
// tolerance around 1e-2…1e-4.
type ILUTOptions struct {
	Tau  float64 // relative drop tolerance; entries < Tau·‖row‖ are dropped
	LFil int     // max kept entries per row in each of the L and U parts (excl. diagonal); <=0 means unlimited
}

// DefaultILUT returns the setting used by the paper-style Block 2 / Schur 1
// subdomain solvers.
func DefaultILUT() ILUTOptions { return ILUTOptions{Tau: 1e-3, LFil: 20} }

// intHeap is a hand-rolled min-heap of column indices, used to process
// L-part entries in ascending column order as fill is created. Every
// stored column is unique (membership is guarded by the inRow mask), so
// the pop sequence is the ascending order of the contents regardless of
// heap internals — replacing container/heap is bit-neutral while removing
// the interface boxing from the factorization's hottest loop.
type intHeap []int

func (h *intHeap) init() {
	a := *h
	for i := len(a)/2 - 1; i >= 0; i-- {
		siftDownInt(a, i)
	}
}

func (h *intHeap) push(x int) {
	a := append(*h, x)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p] <= a[i] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	*h = a
}

func (h *intHeap) pop() int {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a = a[:n]
	siftDownInt(a, 0)
	*h = a
	return top
}

func siftDownInt(a []int, i int) {
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && a[r] < a[l] {
			m = r
		}
		if a[i] <= a[m] {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}

// ILUT computes the dual-threshold incomplete factorization of Saad
// (ILUT(τ, lfil)): during the elimination of each row, entries smaller
// than τ·‖row‖ (mean-magnitude row norm) are dropped, and only the LFil
// largest entries are kept in each of the row's L and U parts (the
// diagonal is always kept). With Tau = 0 and LFil ≤ 0 the factorization is
// a complete LU without pivoting.
func ILUT(a *sparse.CSR, opt ILUTOptions) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, badInputErr("ILUT", "non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lfil := opt.LFil
	if lfil <= 0 {
		lfil = n
	}

	m := sparse.NewCSR(n, n, a.NNZ()*2)
	diag := make([]int, n)
	f := &LU{M: m, Diag: diag}

	w := make([]float64, n)  // scatter workspace
	inRow := make([]bool, n) // membership of w
	var lCols intHeap        // active columns < i, heap-ordered
	uCols := make([]int, 0, n)
	procL := make([]int, 0, n) // kept L columns in elimination order
	var selL, selU []int       // selectLargest scratch, reused across rows

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		var rowNorm float64
		lCols = lCols[:0]
		uCols = uCols[:0]
		procL = procL[:0]
		diagSeen := false
		for k, j := range cols {
			w[j] = vals[k]
			inRow[j] = true
			rowNorm += math.Abs(vals[k])
			if j < i {
				lCols = append(lCols, j)
			} else {
				uCols = append(uCols, j)
				if j == i {
					diagSeen = true
				}
			}
		}
		if !diagSeen {
			w[i] = 0
			inRow[i] = true
			uCols = append(uCols, i)
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("ILUT", i)
		}
		rowNorm /= float64(len(cols))
		drop := opt.Tau * rowNorm
		lCols.init()

		// Eliminate in ascending column order; L fill-in re-enters the
		// heap, U fill-in joins uCols.
		for len(lCols) > 0 {
			k := lCols.pop()
			lik := w[k] / m.Val[diag[k]]
			inRow[k] = false
			if math.Abs(lik) <= drop {
				continue
			}
			w[k] = lik
			procL = append(procL, k)
			// Fill lands only at columns > k; since the heap pops in
			// ascending order, it can never hit an already-eliminated
			// column.
			for kj := diag[k] + 1; kj < m.RowPtr[k+1]; kj++ {
				j := m.ColIdx[kj]
				delta := lik * m.Val[kj]
				if inRow[j] {
					w[j] -= delta
					continue
				}
				w[j] = -delta
				inRow[j] = true
				if j < i {
					lCols.push(j)
				} else {
					uCols = append(uCols, j)
				}
			}
		}

		// Select survivors: largest |·| up to lfil in each part, dropping
		// small entries; diagonal always kept.
		selL = selectLargest(selL, procL, w, drop, lfil, -1)
		selU = selectLargest(selU, uCols, w, drop, lfil, i)
		lSel, uSel := selL, selU

		sort.Ints(lSel)
		sort.Ints(uSel)
		for _, j := range lSel {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		for _, j := range uSel {
			if j == i {
				diag[i] = len(m.ColIdx)
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, fixPivot(w[j], rowNorm, &f.PivotFixes))
				continue
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		m.RowPtr[i+1] = len(m.ColIdx)

		// Reset workspace.
		for _, j := range procL {
			inRow[j] = false
			w[j] = 0
		}
		for _, j := range uCols {
			inRow[j] = false
			w[j] = 0
		}
		// Dropped L columns already cleared inRow; their w entries are
		// stale but only reachable via inRow, which is false.
	}
	f.prepLevels()
	return f, nil
}

// selectLargest returns up to limit columns with the largest |w| values,
// excluding entries ≤ drop; the column `always` (the diagonal) is kept
// unconditionally and does not count against the limit. The result is
// built in dst's storage (dst[:0] semantics), so callers can reuse one
// scratch buffer per part across all rows of a factorization.
func selectLargest(dst, cand []int, w []float64, drop float64, limit, always int) []int {
	kept := dst[:0]
	for _, j := range cand {
		if j == always || math.Abs(w[j]) > drop {
			kept = append(kept, j)
		}
	}
	// Fast path: everything fits.
	count := len(kept)
	if always >= 0 {
		count--
	}
	if count <= limit {
		return kept
	}
	sort.Slice(kept, func(a, b int) bool {
		ja, jb := kept[a], kept[b]
		if ja == always {
			return true
		}
		if jb == always {
			return false
		}
		return math.Abs(w[ja]) > math.Abs(w[jb])
	})
	if always >= 0 {
		return kept[:limit+1]
	}
	return kept[:limit]
}
