package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// DimGuard checks that exported kernel entry points in internal/sparse
// that index into caller-provided slices carry a length/dimension check
// near the top of the function. The hot kernels deliberately index with
// computed positions (column indices, permutations, partitions); an
// early, explicit guard turns a silent out-of-bounds read on a
// mis-dimensioned call into a descriptive panic at the entry point.
//
// An index is considered safe without a guard when it provably stays in
// range: p[i] where i ranges over p itself, or a `for i := 0; i < len(p)`
// loop index. A guard is any of the first few statements that calls a
// check helper ((?i)check|valid|guard|dims|assert) or tests len() of a
// slice parameter.
var DimGuard = &Analyzer{
	Name:    "dimguard",
	Doc:     "exported sparse kernels indexing caller slices without a dimension check near the top",
	Applies: func(pkgPath string) bool { return strings.HasSuffix(pkgPath, "internal/sparse") },
	Run:     runDimGuard,
}

// dimGuardWindow is how many leading top-level statements may hold the
// guard: "near the top", not buried after the work started.
const dimGuardWindow = 8

var guardNameRE = regexp.MustCompile(`(?i)check|valid|guard|dims|assert`)

func runDimGuard(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			params := sliceParams(p, fd)
			if len(params) == 0 {
				continue
			}
			unsafe := unsafeParamIndexes(p, fd, params)
			if len(unsafe) == 0 || hasDimGuard(p, fd, params) {
				continue
			}
			out = append(out, diag(p, fd.Name.Pos(), "dimguard",
				"exported kernel %s indexes caller slice(s) %s without a dimension check near the top",
				fd.Name.Name, strings.Join(unsafe, ", ")))
		}
	}
	return out
}

// sliceParams returns the function's slice-typed parameter objects.
func sliceParams(p *Package, fd *ast.FuncDecl) map[types.Object]bool {
	params := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				params[obj] = true
			}
		}
	}
	return params
}

// unsafeParamIndexes returns the names of slice parameters indexed with a
// subscript that is not provably in range.
func unsafeParamIndexes(p *Package, fd *ast.FuncDecl, params map[types.Object]bool) []string {
	type pair struct{ base, idx types.Object }
	safe := map[pair]bool{}

	// First pass: collect provably-in-range (slice, index) pairs.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// for i := range p  /  for i, v := range p
			x, okX := s.X.(*ast.Ident)
			k, okK := s.Key.(*ast.Ident)
			if okX && okK && k.Name != "_" {
				if bo, ko := p.Info.ObjectOf(x), p.Info.ObjectOf(k); bo != nil && ko != nil {
					safe[pair{bo, ko}] = true
				}
			}
		case *ast.ForStmt:
			// for i := 0; i < len(p); i++  (also <=, which a guard must
			// still justify — only < is accepted as provably in range)
			if be, ok := s.Cond.(*ast.BinaryExpr); ok && be.Op.String() == "<" {
				i, okI := be.X.(*ast.Ident)
				call, okC := be.Y.(*ast.CallExpr)
				if okI && okC && len(call.Args) == 1 {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "len" {
						if base, ok := call.Args[0].(*ast.Ident); ok {
							if bo, io := p.Info.ObjectOf(base), p.Info.ObjectOf(i); bo != nil && io != nil {
								safe[pair{bo, io}] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	// Second pass: find indexes of slice params not covered by a safe pair.
	seen := map[string]bool{}
	var names []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ie, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(ie.X).(*ast.Ident)
		if !ok {
			return true
		}
		bo := p.Info.ObjectOf(base)
		if bo == nil || !params[bo] {
			return true
		}
		if idx, ok := ast.Unparen(ie.Index).(*ast.Ident); ok {
			if io := p.Info.ObjectOf(idx); io != nil && safe[pair{bo, io}] {
				return true
			}
		}
		if !seen[base.Name] {
			seen[base.Name] = true
			names = append(names, base.Name)
		}
		return true
	})
	return names
}

// hasDimGuard reports whether one of the first dimGuardWindow top-level
// statements checks dimensions: a call to a (?i)check/valid/guard helper,
// or an if-condition testing len() of a slice parameter. len() used for
// allocation (make([]T, len(p))) is not a check and does not count.
func hasDimGuard(p *Package, fd *ast.FuncDecl, params map[types.Object]bool) bool {
	lenOfParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fn.Name == "len" && len(call.Args) == 1 {
				if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := p.Info.ObjectOf(arg); obj != nil && params[obj] {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}

	stmts := fd.Body.List
	if len(stmts) > dimGuardWindow {
		stmts = stmts[:dimGuardWindow]
	}
	for _, stmt := range stmts {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.IfStmt:
				if lenOfParam(node.Cond) {
					found = true
				}
			case *ast.CallExpr:
				switch fn := ast.Unparen(node.Fun).(type) {
				case *ast.Ident:
					if guardNameRE.MatchString(fn.Name) {
						found = true
					}
				case *ast.SelectorExpr:
					if guardNameRE.MatchString(fn.Sel.Name) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
