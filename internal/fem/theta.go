package fem

import (
	"fmt"

	"parapre/internal/grid"
	"parapre/internal/sparse"
)

// HeatThetaMatrices builds the operators of the one-step θ-method for the
// heat equation u_t = ∇²u:
//
//	(M + θ·Δt·K)·uˡ = (M − (1−θ)·Δt·K)·uˡ⁻¹
//
// θ = 1 is the implicit Euler step of the paper's Test Case 4 (eq. 12);
// θ = ½ is Crank–Nicolson (second order in Δt); θ = 0 would be explicit
// Euler, which is rejected because the library's solvers are pointless
// for it. Boundary conditions are applied afterwards by the caller
// (ApplyDirichlet on lhs; the rhs matrix is only ever multiplied by
// vectors that already satisfy them).
func HeatThetaMatrices(m *grid.Mesh, dt, theta float64) (lhs, rhs *sparse.CSR, err error) {
	if dt <= 0 {
		return nil, nil, fmt.Errorf("fem: time step %g must be positive", dt)
	}
	if theta <= 0 || theta > 1 {
		return nil, nil, fmt.Errorf("fem: theta %g must lie in (0, 1]", theta)
	}
	k, _ := AssembleScalar(m, ScalarPDE{Diffusion: 1})
	mass := AssembleMass(m)
	lhs = addScaled(mass, k, theta*dt)
	rhs = addScaled(mass, k, -(1-theta)*dt)
	return lhs, rhs, nil
}

// addScaled returns a + s·b for matrices with arbitrary (FEM-compatible)
// patterns.
func addScaled(a, b *sparse.CSR, s float64) *sparse.CSR {
	n := a.Rows
	coo := sparse.NewCOO(n, n, a.NNZ()+b.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
		cols, vals = b.Row(i)
		for k, j := range cols {
			coo.Add(i, j, s*vals[k])
		}
	}
	return coo.ToCSR()
}
