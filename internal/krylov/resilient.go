package krylov

import (
	"errors"
	"fmt"
	"strings"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/obs"
)

// Stage is one rung of the ResilientSolve escalation ladder: a named
// preconditioner supplied as a lazy constructor, so the setup cost of a
// fallback is only paid if the ladder actually reaches it. Prec may
// return nil for an unpreconditioned stage.
type Stage struct {
	Name string
	Prec func() Prec
}

// RecoveryStep records one solve attempt of the escalation ladder.
type RecoveryStep struct {
	Stage      string
	Attempt    int // 0 = resume-from-checkpoint, 1 = first try on this stage, 2 = fresh-restart retry
	Iterations int
	Converged  bool
	Err        error // the attempt's typed solver/communication error, if any
}

// RecoveryLog is the structured account of what ResilientSolve did: every
// attempt in order, and whether the solve ultimately succeeded only
// thanks to the ladder (a retry or a fallback stage).
type RecoveryLog struct {
	Steps     []RecoveryStep
	Recovered bool // converged, but not on the first attempt of stage 0
}

// ResilientSolve runs the distributed solve with graceful degradation:
//
//  1. with opt.Resume set, continue the checkpointed recurrence mid-solve
//     under the stage whose name matches the snapshot's PrecondID — the
//     cheapest recovery: no iterations are repeated. A snapshot whose
//     preconditioner is not on the ladder is refused (the basis is only
//     meaningful under the M that built it) and recorded as a failed
//     attempt 0;
//  2. otherwise (or if the resume attempt fails) solve with the first
//     stage's preconditioner from scratch;
//  3. on a breakdown (NaN poisoning, annihilated rotation, communication
//     fault) discard the contaminated iterate and retry the same stage
//     once from a fresh zero restart;
//  4. if the stage still fails, escalate to the next stage (a stronger or
//     alternative preconditioner) and repeat;
//  5. when the ladder is exhausted, return the last result with its typed
//     error intact.
//
// Plain non-convergence (MaxIters reached without a breakdown) skips the
// fresh-restart retry — rerunning the identical iteration cannot help —
// and escalates directly. Every decision is derived from quantities
// replicated across ranks (convergence flags and breakdown detection flow
// through global reductions), so all ranks walk the ladder in lockstep;
// ResilientSolve must be called collectively, like Distributed. The
// returned RecoveryLog lists every attempt.
func ResilientSolve(c *dist.Comm, s *dsys.System, stages []Stage, b, x []float64, opt Options) (Result, *RecoveryLog) {
	log := &RecoveryLog{}
	var res Result
	first := true
	if ck := opt.Resume; ck != nil {
		opt.Resume = nil
		if si := stageFor(stages, ck.PrecondID); si < 0 {
			// No stage on the ladder matches the checkpointed
			// preconditioner: refuse the basis and fall through to a fresh
			// solve, recording the typed refusal.
			log.Steps = append(log.Steps, RecoveryStep{
				Stage:   ck.PrecondID,
				Attempt: 0,
				Err:     &StateMismatchError{Field: "precond", Want: stageNames(stages), Got: ck.PrecondID},
			})
		} else {
			st := stages[si]
			var prec Prec
			if st.Prec != nil {
				prec = st.Prec()
			}
			ropt := opt
			ropt.Resume = ck
			var sp dist.SpanHandle
			if c.ObsEnabled() {
				sp = c.BeginSpan(obs.KindAttempt, st.Name+"#resume")
			}
			res = Distributed(c, s, prec, b, x, ropt)
			if c.ObsEnabled() {
				c.EndSpan(sp)
				c.ObsCount("recovery_attempts", 1)
				if res.Err != nil {
					c.ObsCount("recovery_attempt_failures", 1)
				}
			}
			log.Steps = append(log.Steps, RecoveryStep{
				Stage:      st.Name,
				Attempt:    0,
				Iterations: res.Iterations,
				Converged:  res.Converged,
				Err:        res.Err,
			})
			if res.Converged {
				log.Recovered = true
				return res, log
			}
			if errors.Is(res.Err, ErrCanceled) {
				// Cancellation is a caller decision, not a fault: the ladder
				// must not retry or escalate past it. The vote is replicated,
				// so every rank returns here together.
				return res, log
			}
			// A failed resume may have contaminated the iterate; the ladder
			// below starts from a zero restart.
			first = false
		}
	}
	for si, st := range stages {
		var prec Prec
		if st.Prec != nil {
			prec = st.Prec()
		}
		for attempt := 1; attempt <= 2; attempt++ {
			if !first {
				// A failed attempt may have left NaNs in the iterate;
				// restart from zero.
				for i := range x {
					x[i] = 0
				}
			}
			first = false
			var sp dist.SpanHandle
			if c.ObsEnabled() {
				sp = c.BeginSpan(obs.KindAttempt, fmt.Sprintf("%s#%d", st.Name, attempt))
			}
			res = Distributed(c, s, prec, b, x, opt)
			if c.ObsEnabled() {
				c.EndSpan(sp)
				c.ObsCount("recovery_attempts", 1)
				if res.Err != nil {
					c.ObsCount("recovery_attempt_failures", 1)
				}
			}
			log.Steps = append(log.Steps, RecoveryStep{
				Stage:      st.Name,
				Attempt:    attempt,
				Iterations: res.Iterations,
				Converged:  res.Converged,
				Err:        res.Err,
			})
			if res.Converged {
				log.Recovered = si > 0 || attempt > 1
				return res, log
			}
			if errors.Is(res.Err, ErrCanceled) {
				// See the resume path: cancellation ends the ladder, on
				// every rank, at the same attempt.
				return res, log
			}
			if res.Err == nil {
				break // ran out of iterations cleanly: escalate, don't retry
			}
		}
	}
	return res, log
}

// stageFor returns the index of the stage whose name matches the
// checkpoint's preconditioner identity, or -1.
func stageFor(stages []Stage, id string) int {
	for i, st := range stages {
		if st.Name == id {
			return i
		}
	}
	return -1
}

// stageNames renders the ladder's stage names for mismatch diagnostics.
func stageNames(stages []Stage) string {
	names := make([]string, len(stages))
	for i, st := range stages {
		names[i] = st.Name
	}
	return strings.Join(names, "|")
}
