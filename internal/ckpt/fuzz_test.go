package ckpt

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointDecode pins the codec's hostile-input contract: Decode
// never panics, every failure is a typed *CorruptError or *VersionError,
// and any input that does decode re-encodes canonically (a second
// round-trip is byte-stable).
func FuzzCheckpointDecode(f *testing.F) {
	full := Encode(testCheckpoint())
	empty := Encode(&Checkpoint{})
	f.Add(full)
	f.Add(empty)
	f.Add(full[:len(full)/2])          // truncated mid-payload
	f.Add(full[:3])                    // shorter than the magic
	f.Add([]byte("PCKPgarbage_bytes")) // right magic, wrong everything
	f.Add([]byte{})
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := Decode(data)
		if err != nil {
			var ce *CorruptError
			var ve *VersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		// A successful decode must re-encode to a canonical form: encoding
		// it again decodes cleanly and is a byte-stable fixed point.
		enc := Encode(ck)
		ck2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if !bytes.Equal(enc, Encode(ck2)) {
			t.Fatal("re-encoding is not a fixed point")
		}
	})
}
