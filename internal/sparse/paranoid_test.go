package sparse

import (
	"strings"
	"testing"

	"parapre/internal/paranoid"
)

// newTestCSR builds a small valid matrix to corrupt.
func newTestCSR(t *testing.T) *CSR {
	t.Helper()
	coo := NewCOO(3, 3, 5)
	coo.Add(0, 0, 2)
	coo.Add(0, 2, -1)
	coo.Add(1, 1, 3)
	coo.Add(2, 0, -1)
	coo.Add(2, 2, 2)
	return coo.ToCSR()
}

// TestValidateCatchesCorruption is the paranoid acceptance criterion: a
// corrupted CSR is caught at the next Validate under `-tags paranoid`,
// and Validate stays a silent no-op without the tag. The same test body
// runs in both modes and asserts the mode-appropriate behavior.
func TestValidateCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(a *CSR)
	}{
		{"column index out of range", func(a *CSR) { a.ColIdx[0] = 99 }},
		{"row pointer not monotone", func(a *CSR) { a.RowPtr[1] = a.RowPtr[2] + 1 }},
		{"value/index length mismatch", func(a *CSR) { a.Val = a.Val[:len(a.Val)-1] }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			a := newTestCSR(t)
			tc.corrupt(a)
			if !paranoid.Enabled {
				a.Validate() // no tag: must stay silent even on garbage
				return
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("paranoid Validate let corruption %q through", tc.name)
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "paranoid: ") {
					t.Fatalf("unexpected panic payload: %v", r)
				}
			}()
			a.Validate()
		})
	}
}

// TestValidateAcceptsHealthyMatrix guards against over-tight invariants:
// a freshly assembled matrix must pass in both modes.
func TestValidateAcceptsHealthyMatrix(t *testing.T) {
	a := newTestCSR(t)
	a.Validate()
	if err := a.CheckValid(); err != nil {
		t.Fatalf("healthy matrix rejected: %v", err)
	}
}

// TestMulVecValidatesUnderParanoid checks the kernels actually call
// Validate: a corrupted matrix must be caught on entry to MulVecTo when
// the tag is on, and must at worst compute garbage (not panic via the
// paranoid path) when off.
func TestMulVecValidatesUnderParanoid(t *testing.T) {
	if !paranoid.Enabled {
		t.Skip("needs -tags paranoid")
	}
	a := newTestCSR(t)
	a.ColIdx[0] = 99
	defer func() {
		if recover() == nil {
			t.Fatal("MulVecTo on corrupted CSR did not trip the paranoid check")
		}
	}()
	y := make([]float64, 3)
	a.MulVecTo(y, []float64{1, 2, 3})
}
