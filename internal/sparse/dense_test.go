package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d.Set(i, j, rng.NormFloat64())
			}
			d.Add(i, i, float64(n)) // diagonally dominant => well conditioned
		}
		xTrue := randVec(rng, n)
		b := d.MulVec(xTrue)
		f, err := d.Factor()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := f.Solve(b)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	d := NewDense(3, 3)
	d.Set(0, 0, 1)
	d.Set(1, 0, 2) // rows 1,2 are multiples of row 0's column pattern => column 1,2 all zero
	if _, err := d.Factor(); err == nil {
		t.Fatal("Factor accepted a singular matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := NewDense(2, 3).Factor(); err == nil {
		t.Fatal("Factor accepted a non-square matrix")
	}
}

func TestLUPivotingNeeded(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	d := NewDense(2, 2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	f, err := d.Factor()
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{3, 5})
	if math.Abs(x[0]-5) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("Solve = %v, want [5 3]", x)
	}
	if got := f.Det(); math.Abs(got+1) > 1e-14 {
		t.Fatalf("Det = %v, want -1", got)
	}
}

func TestLUDeterminantProperty(t *testing.T) {
	// det(cI) = c^n.
	f := func(c float64, nRaw uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) < 1e-3 || math.Abs(c) > 1e3 {
			return true
		}
		n := 1 + int(nRaw%5)
		d := NewDense(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, c)
		}
		lu, err := d.Factor()
		if err != nil {
			return false
		}
		want := math.Pow(c, float64(n))
		return math.Abs(lu.Det()-want) <= 1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseCloneIndependent(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	e := d.Clone()
	e.Set(0, 0, 9)
	if d.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSolveToMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 7
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
		d.Add(i, i, 10)
	}
	f, err := d.Factor()
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(rng, n)
	x1 := f.Solve(b)
	x2 := make([]float64, n)
	f.SolveTo(x2, b)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("SolveTo differs from Solve")
		}
	}
}
