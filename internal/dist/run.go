package dist

import (
	"errors"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// DefaultWatchdogBudget is the progress budget RunOpts applies when a
// fault plan is set but no explicit watchdog budget is given: fault plans
// can stall the world (dropped messages, crashed ranks inside
// collectives), and a chaos run must end in a typed error, never a hang.
const DefaultWatchdogBudget = 30 * time.Second

// Run spawns fn on p rank goroutines over machine m, waits for all to
// finish, and returns the per-rank stats. It is the moral equivalent of
// mpirun. Panics in fn propagate (crashing the test/process) and protocol
// deadlocks hang, exactly like a default MPI runtime; use RunOpts for the
// supervised variant.
func Run(p int, m *Machine, fn func(c *Comm)) []Stats {
	w := NewWorld(p, m)
	stats := make([]Stats, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		c := w.Comm(r)
		go func() {
			defer wg.Done()
			fn(c)
			stats[c.rank] = c.Stats()
		}()
	}
	wg.Wait()
	return stats
}

// RunOpts is the supervised mpirun: it spawns fn on p rank goroutines
// with the given options and converts every failure mode into a typed
// error instead of a hang or an escaped panic:
//
//   - a stalled world (no rank completes an operation within the watchdog
//     budget) is unwound and reported as a *DeadlockError carrying every
//     rank's last-op diagnostics;
//   - a planned hard crash (FaultPlan.CrashRank) removes that rank; if
//     the survivors still finish, RunOpts returns a *CrashError (joined
//     with the abort reason when the crash also stalled the world);
//   - a legacy panicking API call (Recv, Exchange) that hits a typed
//     communication failure aborts the world with that typed error;
//   - any other panic escaping fn aborts the world and is returned as a
//     *RankPanicError.
//
// The per-rank stats are returned even on error (failed or unwound ranks
// report their accounting up to the failure point). When opts.Faults is
// set and opts.Watchdog is zero, DefaultWatchdogBudget is applied.
func RunOpts(p int, m *Machine, opts WorldOptions, fn func(c *Comm)) ([]Stats, error) {
	if opts.Faults != nil && opts.Watchdog == 0 {
		opts.Watchdog = DefaultWatchdogBudget
	}
	w := NewWorldOpts(p, m, opts)
	stats := make([]Stats, p)

	var mu sync.Mutex
	var crashed []int
	var panicErr *RankPanicError

	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		c := w.Comm(r)
		go func() {
			defer wg.Done()
			defer func() {
				switch v := recover().(type) {
				case nil:
				case crashPanic:
					mu.Lock()
					crashed = append(crashed, v.rank)
					mu.Unlock()
					w.markCrashed(v.rank)
					w.opts.Collector.Add("fault_crashes", 1) // nil-safe
				case abortPanic:
					// World aborted elsewhere; unwind quietly.
				case *PeerCrashedError, *TagMismatchError:
					// The legacy panicking API (Recv, Exchange) hit a typed
					// communication failure under the supervised runtime:
					// keep the error typed instead of wrapping it as a rank
					// panic, and unwind the world.
					w.abort(v.(error))
				default:
					pe := &RankPanicError{Rank: c.rank, Value: v, Stack: string(debug.Stack())}
					mu.Lock()
					if panicErr == nil {
						panicErr = pe
					}
					mu.Unlock()
					w.abort(pe)
				}
				stats[c.rank] = c.Stats()
				w.markDone(c.rank)
			}()
			fn(c)
		}()
	}

	var watchStop chan struct{}
	if opts.Watchdog > 0 {
		watchStop = make(chan struct{})
		go w.watchdog(opts.Watchdog, watchStop)
	}
	wg.Wait()
	if watchStop != nil {
		close(watchStop)
	}

	mu.Lock()
	pe := panicErr
	cr := append([]int(nil), crashed...)
	mu.Unlock()
	if pe != nil {
		return stats, pe
	}
	aerr := w.abortReason()
	if len(cr) > 0 {
		sort.Ints(cr)
		cerr := &CrashError{Ranks: cr}
		if aerr != nil {
			// A crash that stalled or unwound the world yields both typed
			// views: errors.As finds either through the join.
			return stats, errors.Join(aerr, cerr)
		}
		return stats, cerr
	}
	return stats, aerr
}

// RunRank drives one rank of a multi-process world (RemoteWorld over a
// socket transport), converting the legacy panicking API's failure modes
// into typed errors — the single-rank mirror of what RunOpts does for a
// whole in-process world. The rank's stats up to the failure point are
// returned either way.
func RunRank(c *Comm, fn func(*Comm)) (st Stats, err error) {
	defer func() {
		switch v := recover().(type) {
		case nil:
		case abortPanic:
			err = ErrWorldAborted
		case error:
			err = v
		default:
			err = &RankPanicError{Rank: c.rank, Value: v, Stack: string(debug.Stack())}
		}
		st = c.Stats()
	}()
	fn(c)
	return c.Stats(), nil
}

// watchdog polls the world's progress counter; if it stops moving for the
// budget while some rank is still running, the world is aborted with a
// DeadlockError holding every rank's diagnostics. The transport's Grace
// extends the budget: a transport that adds real wall latency per
// operation (a socket hop, a delayed test wrapper) legitimately spaces
// out op completions by up to that much, and must not be misread as a
// stalled world.
func (w *World) watchdog(budget time.Duration, stop chan struct{}) {
	budget += w.tr.Grace()
	poll := budget / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	last := w.progress.Load()
	lastChange := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		cur := w.progress.Load()
		if cur != last {
			last = cur
			lastChange = time.Now()
			continue
		}
		if w.allDone() {
			return
		}
		if time.Since(lastChange) >= budget {
			w.opts.Collector.Add("deadlocks", 1) // nil-safe
			w.abort(&DeadlockError{Budget: budget, Ranks: w.snapshot()})
			return
		}
	}
}
