// Benchmarks: one per table of the paper's evaluation (§5), plus the
// ablations called out in DESIGN.md §6. Each table benchmark regenerates
// its experiment at a reduced size and reports the aggregate iteration
// count and the modeled parallel wall-clock time as custom metrics, so
// `go test -bench=.` doubles as a quick reproduction of every table's
// shape. Full-size tables come from cmd/ippsbench.
package parapre_test

import (
	"runtime"
	"strconv"
	"testing"

	"parapre"
	"parapre/internal/bench"
	"parapre/internal/ilu"
	"parapre/internal/par"
	"parapre/internal/precond"
)

// benchTable regenerates one paper table per benchmark iteration.
func benchTable(b *testing.B, id string, size int, ps []int) {
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	if ps != nil {
		e.Ps = ps
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(size)
		if err != nil {
			b.Fatal(err)
		}
		var iters int
		var modelTime, wallTime float64
		for _, t := range tables {
			for _, r := range t.Rows {
				for _, c := range r.Cells {
					iters += c.Iters
					modelTime += c.Time
					wallTime += c.Wall
				}
			}
		}
		b.ReportMetric(float64(iters), "iters")
		b.ReportMetric(modelTime, "model-s")
		b.ReportMetric(wallTime, "wall-s")
	}
}

func BenchmarkTableTC1Cluster(b *testing.B) { benchTable(b, "tc1-cluster", 33, []int{2, 4, 8}) }
func BenchmarkTableTC1Origin(b *testing.B)  { benchTable(b, "tc1-origin", 33, []int{4, 8, 16}) }
func BenchmarkTableTC2Cluster(b *testing.B) { benchTable(b, "tc2-cluster", 11, []int{2, 4, 8}) }
func BenchmarkTableTC2Origin(b *testing.B)  { benchTable(b, "tc2-origin", 11, []int{4, 8, 16}) }
func BenchmarkTableTC3Cluster(b *testing.B) { benchTable(b, "tc3-cluster", 33, []int{2, 4, 8}) }
func BenchmarkTableTC4Cluster(b *testing.B) { benchTable(b, "tc4-cluster", 11, []int{2, 4, 8}) }
func BenchmarkTableTC5Cluster(b *testing.B) { benchTable(b, "tc5-cluster", 33, []int{2, 4, 8}) }
func BenchmarkTableTC5Origin(b *testing.B)  { benchTable(b, "tc5-origin", 33, []int{4, 8, 16}) }
func BenchmarkTableTC6Cluster(b *testing.B) { benchTable(b, "tc6-cluster", 17, []int{2, 4, 8}) }
func BenchmarkTableShape(b *testing.B)      { benchTable(b, "shape", 11, []int{8}) }
func BenchmarkTableSchwarz(b *testing.B)    { benchTable(b, "schwarz", 33, []int{4, 16}) }

// --- ablations (DESIGN.md §6) ---

// BenchmarkAblationSchurInner sweeps the number of inner global-Schur
// GMRES iterations inside the Schur 1 preconditioner: the
// robustness-vs-cost dial the paper attributes the Schur methods'
// efficiency to.
func BenchmarkAblationSchurInner(b *testing.B) {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	for _, inner := range []int{1, 3, 5, 10} {
		b.Run(benchName("schurIters", inner), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Schur1)
				cfg.Schur1.SchurIters = inner
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

// BenchmarkAblationILUT sweeps the ILUT fill/threshold of Block 2.
func BenchmarkAblationILUT(b *testing.B) {
	prob := parapre.BuildCase("tc5-convdiff", 33)
	for _, opt := range []ilu.ILUTOptions{
		{Tau: 1e-1, LFil: 5},
		{Tau: 1e-2, LFil: 10},
		{Tau: 1e-3, LFil: 20},
		{Tau: 1e-4, LFil: 40},
	} {
		opt := opt
		b.Run(benchName("lfil", opt.LFil), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Block2)
				cfg.ILUT = opt
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

// BenchmarkAblationOverlap sweeps the additive Schwarz overlap width.
func BenchmarkAblationOverlap(b *testing.B) {
	const size = 33
	prob := parapre.BuildCase("tc1-poisson2d", size)
	for _, ov := range []int{2, 5, 10} { // percent
		ov := ov
		b.Run(benchName("overlapPct", ov), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(4, parapre.None)
				sw := precond.DefaultSchwarz(size, 2, 2, true)
				sw.Overlap = float64(ov) / 100
				cfg.Schwarz = &sw
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// BenchmarkAblationPartition contrasts the general and simple schemes on
// the structured 3D grid — the paper's §5.1 study.
func BenchmarkAblationPartition(b *testing.B) {
	prob := parapre.BuildCase("tc2-poisson3d", 11)
	for _, simple := range []bool{false, true} {
		simple := simple
		name := "general"
		if simple {
			name = "simple"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Block2)
				if simple {
					cfg.Scheme = parapre.PartitionSimple
				}
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}

// BenchmarkAblationBlockOverlap sweeps the algebraic overlap depth of the
// overlapping block preconditioner (the paper's §1.1 remark that "an
// increased overlap may help to produce a better parallel
// preconditioner").
func BenchmarkAblationBlockOverlap(b *testing.B) {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	for _, levels := range []int{0, 1, 2, 4} {
		levels := levels
		b.Run(benchName("levels", levels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Block2)
				cfg.OverlapLevels = levels
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

// BenchmarkAblationARMSLevels sweeps the multilevel depth of the
// Block ARMS preconditioner.
func BenchmarkAblationARMSLevels(b *testing.B) {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	for _, levels := range []int{1, 2, 3} {
		levels := levels
		b.Run(benchName("levels", levels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.BlockARMS)
				cfg.ARMS.Levels = levels
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

// BenchmarkAblationRestart sweeps the FGMRES restart length around the
// paper's m = 20.
func BenchmarkAblationRestart(b *testing.B) {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	for _, m := range []int{5, 10, 20, 40} {
		m := m
		b.Run(benchName("restart", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Block2)
				cfg.Solver.Restart = m
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// BenchmarkAblationRCM contrasts subdomain factorization with and without
// RCM reordering at small fill on the unstructured case.
func BenchmarkAblationRCM(b *testing.B) {
	prob := parapre.BuildCase("tc3-unstructured", 33)
	for _, rcm := range []bool{false, true} {
		rcm := rcm
		name := "natural"
		if rcm {
			name = "rcm"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.Block2)
				cfg.ILUT.LFil = 4
				cfg.RCM = rcm
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// BenchmarkBaselineCG contrasts the paper's FGMRES(20) accelerator with
// distributed preconditioned CG on the SPD Test Case 1 (both with the SPD
// Block IC subdomain solver).
func BenchmarkBaselineCG(b *testing.B) {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	for _, cg := range []bool{false, true} {
		cg := cg
		name := "fgmres"
		if cg {
			name = "cg"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(8, parapre.BlockIC)
				cfg.UseCG = cg
				if cg {
					cfg.Solver.Flexible = false
				}
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

func BenchmarkTableJump(b *testing.B) { benchTable(b, "jump", 21, []int{2, 4, 8}) }

// BenchmarkAblationWeakScaling holds N/P roughly constant (≈1 000
// unknowns per processor) — the complement of the paper's fixed-size
// sweeps: stable iteration counts under weak scaling are the signature of
// a scalable preconditioner.
func BenchmarkAblationWeakScaling(b *testing.B) {
	// m chosen so m² ≈ 1000·P.
	cfgs := []struct{ p, m int }{{1, 33}, {4, 65}, {16, 129}}
	for _, c := range cfgs {
		c := c
		b.Run(benchName("P", c.p), func(b *testing.B) {
			prob := parapre.BuildCase("tc1-poisson2d", c.m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := parapre.DefaultConfig(c.p, parapre.Schur1)
				res, err := parapre.Solve(prob, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iters")
				b.ReportMetric(res.SetupTime+res.SolveTime, "model-s")
			}
		})
	}
}

// BenchmarkEndToEndWorkers regenerates one paper table with the
// shared-memory worker pool pinned to 1 and to GOMAXPROCS: the modeled
// times and iteration counts are identical by construction (the kernels
// are bit-deterministic), so the only thing that moves is the measured
// wall-clock per op.
func BenchmarkEndToEndWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			e, err := bench.ByID("tc1-cluster")
			if err != nil {
				b.Fatal(err)
			}
			e.Ps = []int{4}
			b.ResetTimer()
			var iters int
			for i := 0; i < b.N; i++ {
				tables, err := e.Run(65)
				if err != nil {
					b.Fatal(err)
				}
				for _, t := range tables {
					for _, r := range t.Rows {
						for _, c := range r.Cells {
							iters += c.Iters
						}
					}
				}
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters")
		})
	}
}
