// Positive errtype fixture for the socket transport package: fresh
// untyped errors escaping the exported Dial/Client API instead of the
// documented ConnectError/OpError types.
package socket

import (
	"errors"
	"fmt"
)

// Client simulates the transport client whose methods are package API.
type Client struct{ rank int }

// Dial is exported API: a raw errors.New crossing the boundary is the
// exact failure the typed-error audit exists to catch.
func Dial(addr string, rank int) (*Client, error) {
	if addr == "" {
		return nil, errors.New("empty hub address") // WANT errtype
	}
	if rank < 0 {
		return nil, fmt.Errorf("bad rank %d", rank) // WANT errtype
	}
	return &Client{rank: rank}, nil
}

// Send is an exported method on an exported type: audited too.
func (c *Client) Send(to int) error {
	if to == c.rank {
		return errors.New("self-send") // WANT errtype
	}
	return nil
}
