package precond

import (
	"parapre/internal/dsys"
	"parapre/internal/mslr"
)

// NewMSLR builds the multilevel low-rank Schur preconditioner (the
// GeMSLR-style recursive extension of Schur 1) for this rank's
// subdomain. The returned preconditioner is collective and implements
// CommErrRecorder; see package mslr for the construction.
func NewMSLR(s *dsys.System, opts mslr.Options) (Preconditioner, error) {
	return mslr.New(s, opts)
}
