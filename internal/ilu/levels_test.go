package ilu

import (
	"math/rand"
	"testing"

	"parapre/internal/par"
	"parapre/internal/sparse"
)

// lap2D builds the 5-point Laplacian on an nx×nx grid. Its ILU(0)
// dependency DAG has the classic wavefront level structure (level of row
// (i,j) is i+j), so it exercises genuinely multi-row levels.
func lap2D(nx int) *sparse.CSR {
	n := nx * nx
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*nx + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			r := id(i, j)
			coo.Add(r, r, 4)
			if i > 0 {
				coo.Add(r, id(i-1, j), -1)
			}
			if i < nx-1 {
				coo.Add(r, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(r, id(i, j-1), -1)
			}
			if j < nx-1 {
				coo.Add(r, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// withLevelMode runs fn with the level-scheduling mode pinned, restoring
// the previous mode afterwards.
func withLevelMode(m LevelMode, fn func()) {
	prev := SetLevelMode(m)
	defer SetLevelMode(prev)
	fn()
}

// bitIdentical asserts exact (bit-for-bit) equality of two solve outputs.
func bitIdentical(t *testing.T, tag string, want, got []float64) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: x[%d] differs: serial %x, scheduled %x", tag, i, want[i], got[i])
		}
	}
}

// TestLevelScheduledBitIdentity checks the tentpole determinism contract:
// the level-scheduled sweeps of every factor kind reproduce the serial
// sweeps bit for bit at every worker count.
func TestLevelScheduledBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := lap2D(24)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	type solver interface{ Solve(x, r []float64) }
	factors := map[string]solver{}
	if f, err := ILU0(a); err == nil {
		factors["ILU0"] = f
	} else {
		t.Fatal(err)
	}
	if f, err := ILUT(a, DefaultILUT()); err == nil {
		factors["ILUT"] = f
	} else {
		t.Fatal(err)
	}
	if f, err := ILUTP(a, ILUTPOptions{ILUTOptions: DefaultILUT(), PermTol: 0.5}); err == nil {
		factors["ILUTP"] = f
	} else {
		t.Fatal(err)
	}
	if c, err := IC0(a); err == nil {
		factors["IC0"] = c
	} else {
		t.Fatal(err)
	}

	for name, f := range factors {
		ref := make([]float64, n)
		withLevelMode(LevelOff, func() { f.Solve(ref, b) })

		for _, w := range []int{1, 2, 4, 8} {
			prev := par.SetWorkers(w)
			got := make([]float64, n)
			withLevelMode(LevelForce, func() { f.Solve(got, b) })
			par.SetWorkers(prev)
			bitIdentical(t, name, ref, got)
		}
	}
}

// TestLevelScheduledAlias checks that the in-place form (x ≡ b) stays
// bit-identical under the schedule: a level-l row reads only its own b
// entry and x entries finalized by strictly earlier levels.
func TestLevelScheduledAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := lap2D(16)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := make([]float64, a.Rows)
	withLevelMode(LevelOff, func() { f.Solve(ref, b) })

	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	x := append([]float64(nil), b...)
	withLevelMode(LevelForce, func() { f.Solve(x, x) })
	bitIdentical(t, "ILU0 aliased", ref, x)
}

// TestLevelSetsAreValidSchedules checks the structural invariants of the
// computed level sets: every row appears exactly once, and every
// dependency sits in a strictly earlier level of its sweep.
func TestLevelSetsAreValidSchedules(t *testing.T) {
	a := lap2D(12)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	s := f.levels()
	n := f.N()

	check := func(tag string, ls levelSet, deps func(i int) []int) {
		lvlOf := make([]int, n)
		seen := make([]bool, n)
		if got := len(ls.rows); got != n {
			t.Fatalf("%s: schedule covers %d rows, want %d", tag, got, n)
		}
		for l := 0; l+1 < len(ls.ptr); l++ {
			for _, i := range ls.rows[ls.ptr[l]:ls.ptr[l+1]] {
				if seen[i] {
					t.Fatalf("%s: row %d scheduled twice", tag, i)
				}
				seen[i] = true
				lvlOf[i] = l
			}
		}
		for i := 0; i < n; i++ {
			for _, j := range deps(i) {
				if lvlOf[j] >= lvlOf[i] {
					t.Fatalf("%s: row %d (level %d) depends on row %d (level %d)",
						tag, i, lvlOf[i], j, lvlOf[j])
				}
			}
		}
	}
	check("forward", s.fwd, func(i int) []int {
		return f.M.ColIdx[f.M.RowPtr[i]:f.Diag[i]]
	})
	check("backward", s.bwd, func(i int) []int {
		return f.M.ColIdx[f.Diag[i]+1 : f.M.RowPtr[i+1]]
	})

	// On the 5-point Laplacian the forward wavefront level of row (i,j)
	// is exactly i+j, giving 2·nx−1 levels.
	if got, want := len(s.fwd.ptr)-1, 2*12-1; got != want {
		t.Fatalf("forward levels = %d, want %d", got, want)
	}
}

// TestLevelProfitabilityGate checks that LevelAuto declines narrow/deep
// structures (tridiagonal: one row per level) regardless of workers, so
// the serial kernel keeps running strongly sequential factors.
func TestLevelProfitabilityGate(t *testing.T) {
	f, err := ILU0(tridiag(4096))
	if err != nil {
		t.Fatal(err)
	}
	s := f.levels()
	for _, w := range []int{2, 4, 8} {
		if s.fwd.profitable(w) || s.bwd.profitable(w) {
			t.Fatalf("tridiagonal schedule claimed profitable at %d workers", w)
		}
	}
	// A wide-level structure above the row floor must pass.
	wide := levelSet{ptr: []int{0, 4096, 8192}, rows: make([]int, 8192)}
	if !wide.profitable(8) {
		t.Fatal("two 4096-row levels not profitable at 8 workers")
	}
}

// TestLUSolveFlopsModel pins the LU solve cost model: 2 flops per stored
// entry of the combined factor (2·NNZ). The exact kernel count is
// 2·NNZ − n — each off-diagonal is one multiply plus one subtract, each
// diagonal one divide — so the model overcounts by exactly n. Goldens
// depend on the model; changing it invalidates every virtual-time
// baseline, which is why this test pins the round form rather than the
// exact count.
func TestLUSolveFlopsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPDish(rng, 120, 0.05)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	nnz := f.M.NNZ()
	n := f.N()
	if got, want := f.SolveFlops(), 2*float64(nnz); got != want {
		t.Fatalf("SolveFlops = %v, want 2·NNZ = %v", got, want)
	}
	// Exact count, walked off the factor structure.
	exact := 0
	for i := 0; i < n; i++ {
		exact += 2 * (f.Diag[i] - f.M.RowPtr[i])     // L: mul+sub per entry
		exact += 2*(f.M.RowPtr[i+1]-f.Diag[i]-1) + 1 // U: mul+sub per entry + 1 div
	}
	if exact != 2*nnz-n {
		t.Fatalf("exact LU solve flops = %d, want 2·NNZ−n = %d", exact, 2*nnz-n)
	}
}

// TestCholSolveFlopsModel pins the incomplete-Cholesky solve cost model:
// the factor is applied twice (L then Lᵀ), 2 flops per applied entry,
// giving 4·NNZ(L). The exact count is 4·NNZ(L) − 2n (one divide, not a
// multiply-subtract pair, per diagonal per sweep).
func TestCholSolveFlopsModel(t *testing.T) {
	c, err := IC0(lap2D(12))
	if err != nil {
		t.Fatal(err)
	}
	nnzL := c.L.NNZ()
	n := c.N()
	if got, want := c.SolveFlops(), 4*float64(nnzL); got != want {
		t.Fatalf("SolveFlops = %v, want 4·NNZ(L) = %v", got, want)
	}
	exact := 0
	for i := 0; i < n; i++ {
		exact += 2*(c.L.RowPtr[i+1]-c.L.RowPtr[i]-1) + 1   // L sweep
		exact += 2*(c.Lt.RowPtr[i+1]-c.Lt.RowPtr[i]-1) + 1 // Lᵀ sweep
	}
	if exact != 4*nnzL-2*n {
		t.Fatalf("exact Chol solve flops = %d, want 4·NNZ(L)−2n = %d", exact, 4*nnzL-2*n)
	}
}

// BenchmarkTriSolveSerial / BenchmarkTriSolveLevelScheduled pair the
// plain sweep against the level-scheduled one on the same ILU(0) factor
// (run with -benchmem; the scheduled path must not allocate per solve
// after the first).
func benchTriSolve(b *testing.B, mode LevelMode, workers int) {
	a := lap2D(96)
	f, err := ILU0(a)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, a.Rows)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	prevW := par.SetWorkers(workers)
	prevM := SetLevelMode(mode)
	f.levels() // analysis outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, rhs)
	}
	b.StopTimer()
	SetLevelMode(prevM)
	par.SetWorkers(prevW)
}

func BenchmarkTriSolveSerial(b *testing.B)         { benchTriSolve(b, LevelOff, 1) }
func BenchmarkTriSolveLevelScheduled(b *testing.B) { benchTriSolve(b, LevelForce, 8) }
