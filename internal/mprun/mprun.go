// Package mprun supervises a multi-process solver world: it hosts the
// socket hub and the durable checkpoint writer in the parent process,
// spawns one worker process per rank, and — the whole point — survives
// real process death: when a rank dies (SIGKILL, OOM, crash), the
// supervisor tears the world down and respawns every rank with a
// -restore pointing at the last complete checkpoint, replaying the solve
// from that iteration instead of from zero.
//
// Both CLIs (solvepde, ippsbench) drive their `-transport socket` modes
// through this package; the worker side is plain socket.Dial +
// core.SolveRank.
package mprun

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"parapre/internal/ckpt"
	"parapre/internal/dist/socket"
)

// Options configures one supervised world.
type Options struct {
	// P is the number of rank processes.
	P int

	// Binary is the worker executable; empty means os.Executable() (the
	// re-exec pattern: the CLI is its own worker).
	Binary string

	// Args builds the worker argv (excluding the binary) for one rank.
	// restore reports whether this spawn resumes from CheckpointPath —
	// workers should add their -restore flag exactly then.
	Args func(rank int, network, addr string, restore bool) []string

	// CheckpointPath, when set, attaches a ckpt.FileWriter to the hub (so
	// worker shards become durable atomic checkpoints) and enables
	// respawn-with-restore once the file exists.
	CheckpointPath string

	// MaxRespawns bounds how many times the world is respawned after a
	// rank death; 0 means DefaultMaxRespawns.
	MaxRespawns int

	// AcceptTimeout bounds the rendezvous of each spawn; 0 means
	// DefaultAcceptTimeout.
	AcceptTimeout time.Duration

	// Log, when non-nil, receives supervisor progress notes (spawns,
	// deaths, respawns).
	Log io.Writer
}

// DefaultMaxRespawns is the world-respawn budget after rank deaths.
const DefaultMaxRespawns = 3

// DefaultAcceptTimeout bounds the hub rendezvous of one spawn.
const DefaultAcceptTimeout = 30 * time.Second

// RespawnError reports a world that kept dying: the respawn budget is
// exhausted and the last attempt's failure is attached.
type RespawnError struct {
	Attempts int
	Err      error
}

func (e *RespawnError) Error() string {
	return fmt.Sprintf("mprun: world died %d times, respawn budget exhausted: %v", e.Attempts, e.Err)
}

func (e *RespawnError) Unwrap() error { return e.Err }

// event is one world-ending (or world-completing) observation.
type event struct {
	rank int
	err  error // nil: clean worker exit
}

// Supervise runs the world to completion, respawning from the last
// checkpoint on rank death. It returns nil once every rank has exited
// cleanly.
func Supervise(opt Options) error {
	if opt.P < 1 {
		return fmt.Errorf("mprun: P = %d", opt.P)
	}
	if opt.Binary == "" {
		bin, err := os.Executable()
		if err != nil {
			return fmt.Errorf("mprun: resolve worker binary: %w", err)
		}
		opt.Binary = bin
	}
	if opt.MaxRespawns == 0 {
		opt.MaxRespawns = DefaultMaxRespawns
	}
	if opt.AcceptTimeout == 0 {
		opt.AcceptTimeout = DefaultAcceptTimeout
	}
	sockDir, err := os.MkdirTemp("", "parapre-hub-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(sockDir)

	var lastErr error
	for attempt := 0; attempt <= opt.MaxRespawns; attempt++ {
		restore := opt.CheckpointPath != "" && fileExists(opt.CheckpointPath)
		if attempt > 0 {
			if restore {
				opt.logf("respawning world from checkpoint %s (attempt %d/%d)",
					opt.CheckpointPath, attempt, opt.MaxRespawns)
			} else {
				opt.logf("respawning world from scratch — no checkpoint yet (attempt %d/%d)",
					attempt, opt.MaxRespawns)
			}
		}
		done, err := runWorld(opt, sockDir, attempt, restore)
		if done {
			return err
		}
		lastErr = err
	}
	return &RespawnError{Attempts: opt.MaxRespawns + 1, Err: lastErr}
}

// runWorld runs one spawn of the world. done reports whether the result
// is final (clean completion or an unrecoverable setup failure); a false
// return asks the caller to respawn.
func runWorld(opt Options, sockDir string, attempt int, restore bool) (done bool, err error) {
	network := "unix"
	addr := filepath.Join(sockDir, fmt.Sprintf("hub-%d.sock", attempt))

	var sink ckpt.Sink
	if opt.CheckpointPath != "" {
		sink = ckpt.NewFileWriter(opt.CheckpointPath, opt.P)
	}
	events := make(chan event, 2*opt.P)
	hub, err := socket.NewHub(network, addr, opt.P, socket.HubOptions{
		Sink: sink,
		OnDeath: func(rank int, err error) {
			events <- event{rank: rank, err: fmt.Errorf("rank %d connection lost: %w", rank, err)}
		},
	})
	if err != nil {
		return true, fmt.Errorf("mprun: hub listen: %w", err)
	}
	defer hub.Shutdown()

	cmds := make([]*exec.Cmd, opt.P)
	kill := func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				_ = cmd.Process.Kill() // already-dead processes are fine
			}
		}
	}
	for r := 0; r < opt.P; r++ {
		cmd := exec.Command(opt.Binary, opt.Args(r, network, addr, restore)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			kill()
			return true, fmt.Errorf("mprun: spawn rank %d: %w", r, err)
		}
		cmds[r] = cmd
		go func(rank int, cmd *exec.Cmd) {
			werr := cmd.Wait()
			if werr != nil {
				werr = fmt.Errorf("rank %d exited: %w", rank, werr)
			}
			events <- event{rank: rank, err: werr}
		}(r, cmd)
	}
	if err := hub.Accept(opt.AcceptTimeout); err != nil {
		kill()
		return true, fmt.Errorf("mprun: world rendezvous: %w", err)
	}

	alive := opt.P
	for alive > 0 {
		ev := <-events
		if ev.err != nil {
			opt.logf("world failure: %v", ev.err)
			kill()
			// Drain the remaining exits so no Wait goroutine leaks a send.
			for alive > 1 {
				<-events
				alive--
			}
			return false, ev.err
		}
		alive--
	}
	return true, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, "supervisor: "+format+"\n", args...)
	}
}

// DieAtSink wraps a worker's checkpoint sink with a deterministic
// self-destruct: right after forwarding the shard of the first iteration
// ≥ Iter, the process SIGKILLs itself — a real, uncatchable process
// death at a known solver iteration. Tests and the CI chaos smoke use it
// to exercise the supervisor's kill-and-resume path without racy
// external kill timing.
type DieAtSink struct {
	Sink ckpt.Sink
	Iter uint64
}

// PutShard forwards the shard, then dies if the trigger iteration is
// reached. The shard is flushed first so the respawned world has the
// checkpoint that includes the trigger iteration.
func (d DieAtSink) PutShard(seq, iter uint64, p int, rs *ckpt.RankState) error {
	err := d.Sink.PutShard(seq, iter, p, rs)
	if iter >= d.Iter {
		proc, _ := os.FindProcess(os.Getpid())
		_ = proc.Kill() // SIGKILL to self cannot meaningfully fail
		select {}       // unreachable: the kill is not catchable
	}
	return err
}
