package core

import (
	"errors"
	"fmt"

	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/precond"
	"parapre/internal/schur"
)

// joinPrecondCommErr folds a communication failure the preconditioner
// recorded during its inner Schur solves into the rank's result: the
// poisoned inner solve broke the outer recurrence down, and the typed
// exchange error is the root cause the breakdown diagnostics must carry.
func joinPrecondCommErr(pc precond.Preconditioner, res *krylov.Result) {
	rec, ok := pc.(precond.CommErrRecorder)
	if !ok {
		return
	}
	if cerr := rec.TakeCommErr(); cerr != nil {
		res.Breakdown = true
		res.Err = errors.Join(res.Err, cerr)
	}
}

// RankSolveError attributes a per-rank solver error to the rank that
// produced it. The distributed recurrence is replicated, so most solver
// errors appear on every rank at once and Result.Err stays the plain
// rank-0 error; a RankSolveError appears exactly when rank 0 looked
// healthy while another rank failed — a communication fault on a specific
// link, or a breakdown reachable only on a rank with interface rows (an
// empty rank 0 never exchanges). It wraps the underlying error, so
// errors.Is/As look straight through it.
type RankSolveError struct {
	Rank int
	Err  error
}

func (e *RankSolveError) Error() string {
	return fmt.Sprintf("rank %d: %v", e.Rank, e.Err)
}

func (e *RankSolveError) Unwrap() error { return e.Err }

// aggregateResult folds the per-rank krylov results and recovery logs
// into res. The recurrence quantities (iterations, restarts, convergence,
// history) are replicated across ranks, so rank 0's copies are the
// world's; errors are not — an exchange failure is observed with its
// cause only by the rank whose Recv failed, every other rank just sees
// the poisoned recurrence break down. Surfacing only results[0].Err
// silently dropped those causes (the historical bug); instead the first
// non-nil per-rank error is surfaced, attributed with its rank when it
// is not rank 0's own. Recovery logs are merged the same way: rank 0's
// ladder is the base (the ladder walks in lockstep), and steps where
// rank 0 recorded no error inherit the first other rank's attributed
// one. The returned flag reports whether any rank saw a breakdown (for
// the observability counters).
func aggregateResult(res *Result, results []krylov.Result, logs []*krylov.RecoveryLog) (breakdown bool) {
	r0 := results[0]
	res.Iterations = r0.Iterations
	res.Restarts = r0.Restarts
	res.Converged = r0.Converged
	res.History = r0.History
	if r0.Initial > 0 {
		res.Residual = r0.Final / r0.Initial
	}
	res.ErrRank = -1
	for r := range results {
		if results[r].Breakdown {
			breakdown = true
		}
		if res.Err == nil && results[r].Err != nil {
			res.ErrRank = r
			if r == 0 {
				res.Err = results[r].Err
			} else {
				res.Err = &RankSolveError{Rank: r, Err: results[r].Err}
			}
		}
	}
	// A poisoned exchange breaks the replicated recurrence down on every
	// rank, but only the rank whose Recv failed carries the communication
	// root cause — surfacing rank 0's bare BreakdownError would hide it.
	// If the surfaced error lacks an exchange cause that another rank
	// recorded — whether from the system-level exchange (dsys) or a
	// Schur-type preconditioner's interface exchange (schur) — join the
	// first such cause, attributed to its rank.
	var ex *dsys.ExchangeError
	var sx *schur.ExchangeError
	if res.Err != nil && !errors.As(res.Err, &ex) && !errors.As(res.Err, &sx) {
		for r := range results {
			if r == res.ErrRank {
				continue
			}
			var rex *dsys.ExchangeError
			var rsx *schur.ExchangeError
			if errors.As(results[r].Err, &rex) {
				res.Err = errors.Join(res.Err, &RankSolveError{Rank: r, Err: rex})
				break
			}
			if errors.As(results[r].Err, &rsx) {
				res.Err = errors.Join(res.Err, &RankSolveError{Rank: r, Err: rsx})
				break
			}
		}
	}
	res.Recovery = mergeRecoveryLogs(logs)
	return breakdown
}

// mergeRecoveryLogs folds the per-rank escalation-ladder logs into one.
// All ranks walk the ladder in lockstep (every decision flows through
// collectives), so the logs agree on the step sequence; only the per-step
// errors differ — the rank that observed the communication fault carries
// the cause, the others carry the generic breakdown. Rank 0's log is the
// base; a step where rank 0 recorded no error inherits the first other
// rank's error, attributed. Recovered is OR-ed for safety, although a
// replicated ladder cannot actually disagree on it.
func mergeRecoveryLogs(logs []*krylov.RecoveryLog) *krylov.RecoveryLog {
	if len(logs) == 0 || logs[0] == nil {
		return nil
	}
	base := logs[0]
	for r := 1; r < len(logs); r++ {
		l := logs[r]
		if l == nil {
			continue
		}
		if l.Recovered {
			base.Recovered = true
		}
		for i := range base.Steps {
			if i < len(l.Steps) && base.Steps[i].Err == nil && l.Steps[i].Err != nil {
				base.Steps[i].Err = &RankSolveError{Rank: r, Err: l.Steps[i].Err}
			}
		}
	}
	return base
}
