package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// waitleak: every goroutine launched in the worker-pool packages must be
// joined on every path out of the launching function — including the
// early error returns, which is where leaks hide: the happy path reaches
// wg.Wait(), the `if err != nil { return err }` path does not, and the
// stranded workers either leak or race the caller's reuse of shared
// buffers.
//
// The check runs the forward-dataflow engine over the launching
// function's CFG. A `go` statement generates the fact "this spawn is
// unjoined"; any join construct — a sync.WaitGroup Wait call, a channel
// receive, a range over a channel — kills all pending facts (the
// matching of specific groups to specific spawns is deliberately
// approximate: one join construct on a path is taken to join the
// spawns before it). A `defer wg.Wait()` joins every exit at once. A
// fact that reaches the CFG Exit is a path on which the spawn was never
// joined.

// waitLeakPkgs are the packages audited: the ones that own worker pools.
var waitLeakPkgs = map[string]bool{
	"par":  true,
	"dist": true,
}

var WaitLeak = &ProgramAnalyzer{
	Name: "waitleak",
	Doc:  "goroutines launched in par/dist must be joined on all paths, including error returns",
	Run:  runWaitLeak,
}

func runWaitLeak(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	var out []Diagnostic
	for _, node := range sortedNodes(g) {
		if !waitLeakPkgs[lastInternalPkg(node.Pkg.Path)] {
			continue
		}
		out = append(out, waitLeakFunc(prog, node)...)
	}
	sortDiags(out)
	return out
}

func waitLeakFunc(prog *Program, node *CGNode) []Diagnostic {
	p := node.Pkg
	body := node.Decl.Body

	// Any spawns at all? (Only top-level `go` statements of this body:
	// a spawn inside a nested closure is the closure's business when it
	// runs — and par closures run under the pool's own join discipline.)
	var spawns []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			spawns = append(spawns, x)
		}
		return true
	})
	if len(spawns) == 0 {
		return nil
	}

	// Join constructs, collected up front so the transfer function can
	// test membership: WaitGroup Wait calls, channel receives, ranges
	// over channels.
	joins := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // a join inside a closure does not join here
		case *ast.CallExpr:
			if isWaitGroupWait(p, x) {
				joins[x] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joins[x] = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joins[x.X] = true // the CFG records the range head as X
				}
			}
		}
		return true
	})

	cfg := prog.CFGOf(node)

	// defer wg.Wait() (or any deferred join) covers every exit.
	for _, d := range cfg.Defers {
		if nodeContainsJoin(d.Call, joins) {
			return nil
		}
	}

	transfer := func(b *Block, in Facts) Facts {
		out := in.Clone()
		for _, s := range b.Stmts {
			if gs, ok := s.(*ast.GoStmt); ok {
				out[gs] = true
				continue
			}
			if nodeContainsJoin(s, joins) {
				out = Facts{}
			}
		}
		return out
	}

	res := Forward(cfg, Facts{}, transfer)
	atExit := res.In[cfg.Exit]

	var out []Diagnostic
	for _, gs := range spawns { // source order
		if atExit != nil && atExit[gs] {
			out = append(out, diag(p, gs.Pos(), "waitleak",
				"goroutine may outlive %s: no join (WaitGroup Wait, channel receive) on some path to return",
				FuncDisplayName(node.Fn)))
		}
	}
	return out
}

// nodeContainsJoin reports whether any join construct occurs in n,
// without descending into nested closures.
func nodeContainsJoin(n ast.Node, joins map[ast.Node]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m != nil && joins[m] {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupWait reports whether call is (*sync.WaitGroup).Wait.
func isWaitGroupWait(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
