package gateway

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"

	"parapre/internal/ckpt"
	"parapre/internal/krylov"
	"parapre/internal/obs"
)

// isCanceled reports whether a solver error is the cancellation
// sentinel (possibly wrapped in rank attribution).
func isCanceled(err error) bool { return errors.Is(err, krylov.ErrCanceled) }

// State is a job's position in its lifecycle.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"     // solver finished (converged or not)
	StateFailed   State = "failed"   // spec/setup/runtime error before a result
	StateCanceled State = "canceled" // canceled while still queued
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one entry of a job's ordered event stream — the unit the SSE
// endpoint ships. Type selects which optional fields are meaningful.
type Event struct {
	Type string `json:"type"` // state|residual|span|recovery|result|error
	Seq  int    `json:"seq"`

	State State `json:"state,omitempty"` // type "state"

	Iter     int     `json:"iter,omitempty"`     // type "residual"
	Residual float64 `json:"residual,omitempty"` // type "residual" (and "result")

	Span *obs.Event `json:"span,omitempty"` // type "span"

	Stage     string `json:"stage,omitempty"`   // type "recovery": ladder stage
	Attempt   int    `json:"attempt,omitempty"` // type "recovery"
	Recovered bool   `json:"recovered,omitempty"`

	Result *ResultSummary `json:"result,omitempty"` // type "result"
	Error  string         `json:"error,omitempty"`  // type "error"
}

// ResultSummary is the JSON projection of a finished solve.
type ResultSummary struct {
	Iterations int       `json:"iterations"`
	Restarts   int       `json:"restarts"`
	Converged  bool      `json:"converged"`
	Canceled   bool      `json:"canceled"`
	Residual   float64   `json:"residual"`
	SetupTime  float64   `json:"setup_time"`
	SolveTime  float64   `json:"solve_time"`
	Wall       float64   `json:"wall"`
	History    []float64 `json:"history,omitempty"`
	TrueRelRes float64   `json:"true_rel_res,omitempty"`
	X          []float64 `json:"x,omitempty"`
	Err        string    `json:"err,omitempty"`
	ErrRank    int       `json:"err_rank,omitempty"`

	Phases []obs.PhaseStat `json:"phases,omitempty"`

	Recovery []RecoveryStep `json:"recovery,omitempty"`
}

// RecoveryStep is the JSON projection of one resilient-ladder attempt.
type RecoveryStep struct {
	Stage      string `json:"stage"`
	Attempt    int    `json:"attempt"`
	Iterations int    `json:"iterations"`
	Converged  bool   `json:"converged"`
	Err        string `json:"err,omitempty"`
}

// Job is one submitted solve: its spec, lifecycle state, cancel hook,
// and an append-only event log that any number of subscribers replay
// and follow live.
type Job struct {
	ID     string
	Tenant string
	Spec   *Spec

	// Restore, when non-nil, resumes the solve from a persisted
	// checkpoint (the server's crash-recovery scan sets it).
	Restore *ckpt.Checkpoint

	mu     sync.Mutex
	state  State
	events []Event
	more   chan struct{} // closed and replaced on every append
	cancel context.CancelFunc
	result *ResultSummary
}

// NewJob creates a queued job with a fresh random ID.
func NewJob(tenant string, spec *Spec) *Job {
	var b [8]byte
	_, _ = rand.Read(b[:])
	j := &Job{
		ID:     hex.EncodeToString(b[:]),
		Tenant: tenant,
		Spec:   spec,
		state:  StateQueued,
		more:   make(chan struct{}),
	}
	j.publishLocked(Event{Type: "state", State: StateQueued})
	return j
}

// publishLocked appends an event and wakes every follower. Callers hold
// j.mu (NewJob runs before the job is shared).
func (j *Job) publishLocked(e Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.more)
	j.more = make(chan struct{})
}

// Publish appends an event to the job's stream.
func (j *Job) Publish(e Event) {
	j.mu.Lock()
	j.publishLocked(e)
	j.mu.Unlock()
}

// SetState transitions the job and publishes the state event.
func (j *Job) SetState(s State) {
	j.mu.Lock()
	j.state = s
	j.publishLocked(Event{Type: "state", State: s})
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Events returns the events from seq onward plus a channel that closes
// when more arrive — the follow-the-log primitive of the SSE endpoint.
func (j *Job) Events(from int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if from < len(j.events) {
		out = append(out, j.events[from:]...)
	}
	return out, j.more
}

// Finish publishes the result event and moves the job to StateDone.
func (j *Job) Finish(r *ResultSummary) {
	j.mu.Lock()
	j.result = r
	j.state = StateDone
	j.publishLocked(Event{Type: "result", Result: r, Residual: r.Residual})
	j.publishLocked(Event{Type: "state", State: StateDone})
	j.mu.Unlock()
}

// Fail publishes the error event and moves the job to StateFailed.
func (j *Job) Fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.publishLocked(Event{Type: "error", Error: err.Error()})
	j.publishLocked(Event{Type: "state", State: StateFailed})
	j.mu.Unlock()
}

// Result returns the finished solve's summary (nil before StateDone).
func (j *Job) Result() *ResultSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Cancel requests cancellation: a queued job is terminally canceled in
// place; a running job gets its context canceled and finishes through
// the solver's cancellation path (result carries Canceled). Returns
// false when the job is already terminal.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued:
		j.state = StateCanceled
		j.publishLocked(Event{Type: "state", State: StateCanceled})
		return true
	case j.state == StateRunning && j.cancel != nil:
		j.cancel()
		return true
	default:
		return false
	}
}

// arm installs the running job's cancel hook; it reports false (and does
// not transition) when the job was canceled while queued.
func (j *Job) arm(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.publishLocked(Event{Type: "state", State: StateRunning})
	return true
}

// summarize projects a core result into the wire form.
func summarize(res resultView) *ResultSummary {
	s := &ResultSummary{
		Iterations: res.Iterations,
		Restarts:   res.Restarts,
		Converged:  res.Converged,
		Residual:   res.Residual,
		SetupTime:  res.SetupTime,
		SolveTime:  res.SolveTime,
		Wall:       res.Wall,
		History:    res.History,
		TrueRelRes: res.TrueRelRes,
		X:          res.X,
		ErrRank:    res.ErrRank,
		Phases:     res.PhaseBreakdown,
	}
	if res.Err != nil {
		s.Err = res.Err.Error()
		s.Canceled = isCanceled(res.Err)
	}
	if res.Recovery != nil {
		for _, st := range res.Recovery.Steps {
			rs := RecoveryStep{
				Stage:      st.Stage,
				Attempt:    st.Attempt,
				Iterations: st.Iterations,
				Converged:  st.Converged,
			}
			if st.Err != nil {
				rs.Err = st.Err.Error()
			}
			s.Recovery = append(s.Recovery, rs)
		}
	}
	return s
}

// resultView is the slice of core.Result the summary needs (a local
// mirror keeps summarize testable without a solve).
type resultView struct {
	Iterations     int
	Restarts       int
	Converged      bool
	Residual       float64
	SetupTime      float64
	SolveTime      float64
	Wall           float64
	History        []float64
	TrueRelRes     float64
	X              []float64
	Err            error
	ErrRank        int
	PhaseBreakdown []obs.PhaseStat
	Recovery       *krylov.RecoveryLog
}
