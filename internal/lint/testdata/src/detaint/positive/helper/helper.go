// Package helper simulates a non-kernel utility package: the
// nondeterminism sources live HERE, outside the syntactic determinism
// analyzer's kernel scope, and only their float results flow into the
// kernel fixture package. Every function below must be summarized as
// tainted by the interprocedural fixpoint.
package helper

import "time"

// Seed derives a float directly from the wall clock.
func Seed() float64 {
	return float64(time.Now().UnixNano())
}

// Jitter launders Seed through a local variable — taint must survive
// the assignment and the transitive call.
func Jitter() float64 {
	j := Seed()
	return j / 1e9
}

// MapSum accumulates floats in map iteration order: the sum depends on
// the (randomized) range order, a taint source in its own right.
func MapSum(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
