package sparse

import (
	"fmt"
	"sort"

	"parapre/internal/par"
)

// COO is a coordinate-format assembly buffer. Finite-element assembly adds
// many small contributions at repeated (i, j) positions; ToCSR sums
// duplicates and produces a normalized CSR matrix.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty r×c assembly buffer with capacity for nnz
// contributions.
func NewCOO(r, c, nnz int) *COO {
	return &COO{
		Rows: r,
		Cols: c,
		I:    make([]int, 0, nnz),
		J:    make([]int, 0, nnz),
		V:    make([]float64, 0, nnz),
	}
}

// Add records the contribution v at position (i, j). Duplicates are summed
// by ToCSR. Add panics on out-of-range indices: an out-of-range assembly
// index is always a programming error in the discretization.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for %d×%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// Len returns the number of recorded contributions (including duplicates).
func (c *COO) Len() int { return len(c.I) }

// ent is one (column, value) pair during row normalization.
type ent struct {
	col int
	val float64
}

// entsByCol sorts row entries by column through a concrete sort.Interface:
// sort.Sort runs the same pdqsort as sort.Slice over the same comparisons
// (so equal-column entries land in the same deterministic order and the
// duplicate sums below keep their bits), but without the reflect-based
// swapper that dominated assembly-heavy profiles.
type entsByCol []ent

func (e entsByCol) Len() int           { return len(e) }
func (e entsByCol) Less(i, j int) bool { return e[i].col < e[j].col }
func (e entsByCol) Swap(i, j int)      { e[i], e[j] = e[j], e[i] }

// mergeRow sorts buf by column and appends the duplicate-summed entries to
// (cols, vals). Duplicates are summed in their post-sort order; since the
// sort and the input sequence are deterministic, so is the result. Both
// the serial and the parallel ToCSR paths normalize every row through this
// one helper, which is what makes them bit-identical.
func mergeRow(buf []ent, cols []int, vals []float64) ([]int, []float64) {
	sort.Sort(entsByCol(buf))
	for k := 0; k < len(buf); {
		j := buf[k].col
		var s float64
		for ; k < len(buf) && buf[k].col == j; k++ {
			s += buf[k].val
		}
		cols = append(cols, j)
		vals = append(vals, s)
	}
	return cols, vals
}

// cooParMinTriplets is the buffer size below which ToCSR stays serial.
const cooParMinTriplets = 8192

// ToCSR converts the buffer to CSR, summing duplicate entries.
//
// Contributions are bucketed by row with a counting sort, then each row is
// sorted by column and its duplicates merged. This is O(nnz log rowlen)
// and avoids a global sort of potentially tens of millions of triplets.
// Rows are independent, so large buffers are normalized in parallel over a
// triplet-balanced row partition; the result is bit-identical to the
// serial conversion for every worker count.
func (c *COO) ToCSR() *CSR {
	rowCount := make([]int, c.Rows+1)
	for _, i := range c.I {
		rowCount[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	perm := make([]int, len(c.I))
	next := append([]int(nil), rowCount...)
	for k, i := range c.I {
		perm[next[i]] = k
		next[i]++
	}

	if w := par.Workers(); w > 1 && len(c.I) >= cooParMinTriplets && c.Rows > 1 {
		return c.toCSRParallel(rowCount, perm, w)
	}

	a := NewCSR(c.Rows, c.Cols, len(c.I))
	var rowBuf []ent
	for i := 0; i < c.Rows; i++ {
		rowBuf = rowBuf[:0]
		for p := rowCount[i]; p < rowCount[i+1]; p++ {
			k := perm[p]
			rowBuf = append(rowBuf, ent{c.J[k], c.V[k]})
		}
		a.ColIdx, a.Val = mergeRow(rowBuf, a.ColIdx, a.Val)
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	a.Validate()
	return a
}

// toCSRParallel is the fan-out tail of ToCSR: rowCount is the prefix-sum
// row bucketing and perm the row-stable triplet permutation. Each worker
// normalizes a contiguous row range (balanced by triplet count) into a
// private buffer; the merged rows are then stitched together with one
// prefix sum and per-segment copies.
func (c *COO) toCSRParallel(rowCount, perm []int, w int) *CSR {
	// Triplet-balanced row boundaries via binary search on the prefix sums.
	bounds := make([]int, w+1)
	for s := 1; s < w; s++ {
		target := int(int64(s) * int64(len(c.I)) / int64(w))
		r := sort.SearchInts(rowCount, target)
		if r > c.Rows {
			r = c.Rows
		}
		if r < bounds[s-1] {
			r = bounds[s-1]
		}
		bounds[s] = r
	}
	bounds[w] = c.Rows

	type segOut struct {
		cols []int
		vals []float64
	}
	outs := make([]segOut, w)
	rowLen := make([]int, c.Rows) // merged length per row (disjoint writes)
	par.Run(w, func(s int) {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			return
		}
		o := segOut{
			cols: make([]int, 0, rowCount[hi]-rowCount[lo]),
			vals: make([]float64, 0, rowCount[hi]-rowCount[lo]),
		}
		var rowBuf []ent
		for i := lo; i < hi; i++ {
			rowBuf = rowBuf[:0]
			for p := rowCount[i]; p < rowCount[i+1]; p++ {
				k := perm[p]
				rowBuf = append(rowBuf, ent{c.J[k], c.V[k]})
			}
			before := len(o.cols)
			o.cols, o.vals = mergeRow(rowBuf, o.cols, o.vals)
			rowLen[i] = len(o.cols) - before
		}
		outs[s] = o
	})

	a := NewCSR(c.Rows, c.Cols, 0)
	for i := 0; i < c.Rows; i++ {
		a.RowPtr[i+1] = a.RowPtr[i] + rowLen[i]
	}
	total := a.RowPtr[c.Rows]
	a.ColIdx = make([]int, total)
	a.Val = make([]float64, total)
	par.Run(w, func(s int) {
		lo := bounds[s]
		if lo >= bounds[s+1] {
			return
		}
		copy(a.ColIdx[a.RowPtr[lo]:], outs[s].cols)
		copy(a.Val[a.RowPtr[lo]:], outs[s].vals)
	})
	a.Validate()
	return a
}

// FromTriplets builds a CSR matrix directly from parallel triplet slices,
// summing duplicates.
func FromTriplets(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(js) != len(vs) {
		panic("sparse: FromTriplets slices have different lengths")
	}
	c := &COO{Rows: rows, Cols: cols, I: is, J: js, V: vs}
	return c.ToCSR()
}
