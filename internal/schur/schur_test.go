package schur

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

func testMachine() *dist.Machine {
	return &dist.Machine{Name: "test", FlopRate: 1e9, Latency: 1e-6, ByteTime: 1e-9, Load: 1}
}

func buildSystems(t *testing.T, m, p int, seed int64) ([]*dsys.System, *sparse.CSR, []int) {
	t.Helper()
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, seed)
	if err != nil {
		panic(err)
	}
	return dsys.Distribute(a, b, part, p), a, part
}

// denseGlobalSchur computes the exact global Schur complement over the
// interface unknowns, ordered rank-major (each rank's interface globals in
// their local order).
func denseGlobalSchur(t *testing.T, a *sparse.CSR, systems []*dsys.System) (*sparse.Dense, []int) {
	t.Helper()
	var bIdx, cIdx []int
	for _, s := range systems {
		bIdx = append(bIdx, s.GlobalIDs[:s.NInt]...)
	}
	for _, s := range systems {
		cIdx = append(cIdx, s.GlobalIDs[s.NInt:]...)
	}
	App := sparse.Extract(a, bIdx, bIdx).Dense()
	Apc := sparse.Extract(a, bIdx, cIdx).Dense()
	Acp := sparse.Extract(a, cIdx, bIdx).Dense()
	Acc := sparse.Extract(a, cIdx, cIdx).Dense()
	f, err := App.Factor()
	if err != nil {
		t.Fatal(err)
	}
	nb, nc := len(bIdx), len(cIdx)
	s := sparse.NewDense(nc, nc)
	col := make([]float64, nb)
	for j := 0; j < nc; j++ {
		for i := 0; i < nb; i++ {
			col[i] = Apc.At(i, j)
		}
		w := f.Solve(col)
		for i := 0; i < nc; i++ {
			var acw float64
			for k := 0; k < nb; k++ {
				acw += Acp.At(i, k) * w[k]
			}
			s.Set(i, j, Acc.At(i, j)-acw)
		}
	}
	return s, cIdx
}

func exactBSolve(t *testing.T, s *dsys.System) *ilu.LU {
	t.Helper()
	f, err := ilu.ILUT(s.BlockB(), ilu.ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestImplicitMatVecMatchesDenseGlobalSchur(t *testing.T) {
	const p = 4
	systems, a, _ := buildSystems(t, 9, p, 1)
	sDense, _ := denseGlobalSchur(t, a, systems)

	// Random global interface vector, rank-major.
	rng := rand.New(rand.NewSource(2))
	nC := sDense.Rows
	y := make([]float64, nC)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	want := sDense.MulVec(y)

	// Split into per-rank pieces.
	pieces := make([][]float64, p)
	offs := make([]int, p+1)
	for r, s := range systems {
		offs[r+1] = offs[r] + s.NIface()
		pieces[r] = y[offs[r]:offs[r+1]]
	}

	got := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		op, err := NewImplicit(s, exactBSolve(t, s))
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		out := make([]float64, op.N())
		if err := op.MatVec(c, out, pieces[c.Rank()]); err != nil {
			t.Errorf("rank %d MatVec: %v", c.Rank(), err)
			return
		}
		got[c.Rank()] = out
	})
	for r := 0; r < p; r++ {
		for i, v := range got[r] {
			if math.Abs(v-want[offs[r]+i]) > 1e-8 {
				t.Fatalf("rank %d entry %d: %v, want %v", r, i, v, want[offs[r]+i])
			}
		}
	}
}

func TestExplicitMatchesImplicitWithExactB(t *testing.T) {
	const p = 3
	systems, _, _ := buildSystems(t, 8, p, 3)
	rng := rand.New(rand.NewSource(4))

	pieces := make([][]float64, p)
	for r, s := range systems {
		v := make([]float64, s.NIface())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		pieces[r] = v
	}

	implicit := make([][]float64, p)
	explicit := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		bf := exactBSolve(t, s)
		opI, err := NewImplicit(s, bf)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		out := make([]float64, opI.N())
		if err := opI.MatVec(c, out, pieces[c.Rank()]); err != nil {
			t.Errorf("rank %d MatVec: %v", c.Rank(), err)
			return
		}
		implicit[c.Rank()] = out
	})

	// Explicit local Schur: dense S_i = C − E·B⁻¹·F per rank, converted to
	// CSR.
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		bf := exactBSolve(t, s)
		nI := s.NIface()
		cBlk, eBlk, fBlk := s.BlockC(), s.BlockE(), s.BlockF()
		coo := sparse.NewCOO(nI, nI, nI*nI)
		// column j of S_i
		xj := make([]float64, nI)
		fx := make([]float64, s.NInt)
		bx := make([]float64, s.NInt)
		ex := make([]float64, nI)
		for j := 0; j < nI; j++ {
			for i := range xj {
				xj[i] = 0
			}
			xj[j] = 1
			cBlk.MulVecTo(ex, xj)
			if s.NInt > 0 {
				fBlk.MulVecTo(fx, xj)
				bf.Solve(bx, fx)
				eBlk.MulVecSub(ex, bx)
			}
			for i := 0; i < nI; i++ {
				if ex[i] != 0 {
					coo.Add(i, j, ex[i])
				}
			}
		}
		sLoc := coo.ToCSR()
		op, err := NewExplicit(s, sLoc, s.BlockEExt(), func(l int) (int, bool) {
			if l < s.NInt {
				return 0, false
			}
			return l - s.NInt, true
		})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		out := make([]float64, op.N())
		if err := op.MatVec(c, out, pieces[c.Rank()]); err != nil {
			t.Errorf("rank %d MatVec: %v", c.Rank(), err)
			return
		}
		explicit[c.Rank()] = out
	})

	for r := 0; r < p; r++ {
		for i := range implicit[r] {
			if math.Abs(implicit[r][i]-explicit[r][i]) > 1e-9 {
				t.Fatalf("rank %d entry %d: implicit %v vs explicit %v", r, i, implicit[r][i], explicit[r][i])
			}
		}
	}
}

func TestIfaceDotGlobal(t *testing.T) {
	const p = 3
	systems, _, _ := buildSystems(t, 8, p, 5)
	rng := rand.New(rand.NewSource(6))
	var want float64
	pieces := make([][]float64, p)
	for r, s := range systems {
		v := make([]float64, s.NIface())
		for i := range v {
			v[i] = rng.NormFloat64()
			want += v[i] * v[i]
		}
		pieces[r] = v
	}
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		op, err := NewImplicit(s, exactBSolve(t, s))
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		got := op.Dot(c, pieces[c.Rank()], pieces[c.Rank()])
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Errorf("rank %d: dot %v, want %v", c.Rank(), got, want)
		}
	})
}

func TestNewExplicitValidation(t *testing.T) {
	systems, _, _ := buildSystems(t, 8, 2, 7)
	s := systems[0]
	if _, err := NewExplicit(s, sparse.NewCSR(2, 3, 0), s.BlockEExt(), nil); err == nil {
		t.Fatal("non-square accepted")
	}
	bad := sparse.NewCSR(s.NIface(), s.NExt()+1, 0)
	sq := sparse.Identity(s.NIface())
	if _, err := NewExplicit(s, sq, bad, nil); err == nil {
		t.Fatal("bad eExt accepted")
	}
}
