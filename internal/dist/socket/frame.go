package socket

import (
	"encoding/binary"
	"io"
	"math"
)

// Frame types. Every frame on the wire is u32 payload-length followed by
// the payload; the payload's first byte is the type.
const (
	fHello       = byte(iota + 1) // client→hub: u32 rank
	fData                         // both ways: u32 from, u32 to, i64 tag, f64 time, f64 fdelay, u32 n, n×f64
	fReduce                       // client→hub: u32 rank, u8 kind, f64 clock, u32 n, n×f64
	fReduceReply                  // hub→client: f64 maxClock, u32 n, n×f64
	fCrashed                      // client→hub: u32 rank (a planned in-world crash)
	fPeerGone                     // hub→client: u32 rank (peer process died)
	fAbort                        // both ways: no body; world teardown
	fShard                        // client→hub: u32 n, n bytes (a ckpt-encoded single-rank checkpoint)
	fBye                          // client→hub: no body; clean departure — the EOF that follows is not a death
)

// maxFrame bounds one frame's payload. The largest legitimate frames are
// checkpoint shards carrying a full Krylov basis; 1 GiB is far above any
// real solve and small enough to reject garbage lengths immediately.
const maxFrame = 1 << 30

// writeFrame sends one length-prefixed payload. The caller serializes
// writers (a write mutex per connection).
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, &ProtocolError{Reason: "frame length out of range"}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// wire is an append-only payload builder mirroring the ckpt encoder.
type wire struct{ buf []byte }

func (w *wire) u8(v byte)     { w.buf = append(w.buf, v) }
func (w *wire) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *wire) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *wire) i64(v int64)   { w.u64(uint64(v)) }
func (w *wire) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wire) vec(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

// unwire is the bounds-checked payload parser; the first failure latches.
type unwire struct {
	buf []byte
	off int
	err error
}

func (u *unwire) fail() {
	if u.err == nil {
		u.err = &ProtocolError{Reason: "truncated frame"}
	}
}

func (u *unwire) need(n int) bool {
	if u.err != nil {
		return false
	}
	if u.off+n > len(u.buf) {
		u.fail()
		return false
	}
	return true
}

func (u *unwire) u8() byte {
	if !u.need(1) {
		return 0
	}
	v := u.buf[u.off]
	u.off++
	return v
}

func (u *unwire) u32() uint32 {
	if !u.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(u.buf[u.off:])
	u.off += 4
	return v
}

func (u *unwire) u64() uint64 {
	if !u.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(u.buf[u.off:])
	u.off += 8
	return v
}

func (u *unwire) i64() int64   { return int64(u.u64()) }
func (u *unwire) f64() float64 { return math.Float64frombits(u.u64()) }

func (u *unwire) vec() []float64 {
	n := int(u.u32())
	if n == 0 {
		return nil
	}
	if !u.need(8 * n) {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = u.f64()
	}
	return v
}

func (u *unwire) bytes() []byte {
	n := int(u.u32())
	if !u.need(n) {
		return nil
	}
	b := u.buf[u.off : u.off+n]
	u.off += n
	return b
}
