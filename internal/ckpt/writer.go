package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileWriter is the in-process Sink: it collects the P per-rank shards of
// each checkpoint sequence and, once a sequence is complete, writes the
// assembled checkpoint to its path atomically (write to a temp file in
// the same directory, fsync, rename). A reader therefore always sees
// either the previous complete checkpoint or the new one — never a torn
// file — which is what makes SIGKILL at any instant recoverable.
//
// Shards may arrive in any rank order (the rank goroutines race to the
// sink); sequences complete in order because checkpoints are taken at
// replicated iteration counts.
type FileWriter struct {
	path string
	p    int

	mu      sync.Mutex
	pending map[uint64]*pendingSeq
	lastSeq uint64 // highest sequence persisted
	wrote   int    // checkpoints persisted (for tests/CLIs)
	err     error  // first write failure, latched
}

type pendingSeq struct {
	iter   uint64
	shards []*RankState
	got    int
}

// NewFileWriter creates a sink persisting complete P-rank checkpoints to
// path.
func NewFileWriter(path string, p int) *FileWriter {
	return &FileWriter{path: path, p: p, pending: make(map[uint64]*pendingSeq)}
}

// PutShard registers one rank's shard of checkpoint sequence seq. The
// final shard of a sequence triggers the atomic write; its error (and any
// earlier latched write error) is returned to the caller.
func (w *FileWriter) PutShard(seq, iter uint64, p int, rs *RankState) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if p != w.p {
		w.err = fmt.Errorf("ckpt: shard for world size %d on a %d-rank writer", p, w.p)
		return w.err
	}
	ps, ok := w.pending[seq]
	if !ok {
		ps = &pendingSeq{iter: iter, shards: make([]*RankState, w.p)}
		w.pending[seq] = ps
	}
	if rs.Rank < 0 || rs.Rank >= w.p {
		w.err = fmt.Errorf("ckpt: shard rank %d outside world [0,%d)", rs.Rank, w.p)
		return w.err
	}
	if ps.shards[rs.Rank] == nil {
		ps.got++
	}
	ps.shards[rs.Rank] = rs
	if ps.got < w.p {
		return nil
	}
	delete(w.pending, seq)
	ck := &Checkpoint{Seq: seq, Iter: ps.iter, Ranks: make([]RankState, w.p)}
	for i, sh := range ps.shards {
		ck.Ranks[i] = *sh
	}
	if err := WriteFile(w.path, ck); err != nil {
		w.err = err
		return err
	}
	w.lastSeq = seq
	w.wrote++
	return nil
}

// Wrote returns how many complete checkpoints the writer has persisted.
func (w *FileWriter) Wrote() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wrote
}

// WriteFile persists one checkpoint atomically: encode, write to a
// same-directory temp file, fsync, rename over path.
func WriteFile(path string, ck *Checkpoint) error {
	data := Encode(ck)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error wins; cleanup is best-effort
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error wins; cleanup is best-effort
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}

// Load reads and decodes a checkpoint file. Decoding failures carry the
// typed *CorruptError / *VersionError of Decode; a missing file surfaces
// as the ordinary *os.PathError so callers can distinguish "no checkpoint
// yet" from "checkpoint damaged".
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
