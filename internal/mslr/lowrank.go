package mslr

import (
	"fmt"
	"math"
	"math/rand"

	"parapre/internal/sparse"
)

// lowRank is the rank-k correction of a Schur residual operator
// G = I − S·C̃⁻¹:
//
//	(I−G)⁻¹ ≈ I + V·((I−H)⁻¹ − I)·Vᵀ,  H = Vᵀ·G·V
//
// with V an orthonormal basis probing G's dominant eigenspace. A nil
// *lowRank (or k == 0) is the identity correction.
type lowRank struct {
	k      int
	v      [][]float64 // k orthonormal columns of length m
	hLU    *sparse.LU  // dense factorization of (I−H)
	ck, dk []float64   // scratch, length k
}

// correct computes dst = g + V·((I−H)⁻¹ − I)·Vᵀ·g. dst and g must not
// alias the scratch; dst == g is allowed.
func (lr *lowRank) correct(dst, g []float64) {
	if lr == nil || lr.k == 0 {
		if &dst[0] != &g[0] {
			copy(dst, g)
		}
		return
	}
	for i := 0; i < lr.k; i++ {
		lr.ck[i] = dot(lr.v[i], g)
	}
	lr.hLU.SolveTo(lr.dk, lr.ck)
	if &dst[0] != &g[0] {
		copy(dst, g)
	}
	for i := 0; i < lr.k; i++ {
		d := lr.dk[i] - lr.ck[i]
		if d == 0 {
			continue
		}
		vi := lr.v[i]
		for j := range dst {
			dst[j] += d * vi[j]
		}
	}
}

// applyFlops models one correct call over vectors of length m.
func (lr *lowRank) applyFlops(m int) float64 {
	if lr == nil || lr.k == 0 {
		return 0
	}
	return float64(4*m*lr.k + 2*lr.k*lr.k)
}

// buildFlops models the Arnoldi probing cost (k operator applications of
// roughly O(m²) work plus the orthogonalizations and the dense factor).
func (lr *lowRank) buildFlops(m int) float64 {
	if lr == nil || lr.k == 0 {
		return 0
	}
	k := float64(lr.k)
	mf := float64(m)
	return k*mf*mf + 4*k*k*mf + 2*k*k*k/3
}

// orthonormalize runs two modified-Gram-Schmidt passes of x against the
// basis and normalizes. It reports false when x is (numerically) inside
// the span of the basis.
func orthonormalize(x []float64, basis [][]float64) bool {
	nrm0 := math.Sqrt(dot(x, x))
	for pass := 0; pass < 2; pass++ {
		for _, b := range basis {
			h := dot(b, x)
			if h == 0 {
				continue
			}
			for i := range x {
				x[i] -= h * b[i]
			}
		}
	}
	nrm := math.Sqrt(dot(x, x))
	if nrm <= 1e-10*(1+nrm0) {
		return false
	}
	inv := 1 / nrm
	for i := range x {
		x[i] *= inv
	}
	return true
}

// randomOrthonormal draws a fresh probe direction orthonormal to the
// basis, retrying a few times before giving up (the basis then spans the
// numerically reachable space).
func randomOrthonormal(m int, basis [][]float64, rng *rand.Rand) ([]float64, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		x := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if orthonormalize(x, basis) {
			return x, true
		}
	}
	return nil, false
}

// buildLowRank probes apply (the operator G) with a seeded Arnoldi pass
// of rank min(k, m): each new direction is G of the previous one,
// orthonormalized against the basis, with a random restart when the
// Krylov space deflates early. H = Vᵀ·G·V is then formed explicitly —
// correct under deflation, where no Hessenberg structure survives — and
// I−H is factored densely. A singular I−H (the correction cannot help)
// degrades to the identity correction instead of failing setup.
func buildLowRank(m, k int, apply func(dst, src []float64), rng *rand.Rand) (*lowRank, error) {
	if k > m {
		k = m
	}
	if m == 0 || k <= 0 {
		return nil, nil
	}
	v := make([][]float64, 0, k)
	w := make([][]float64, 0, k)
	first, ok := randomOrthonormal(m, v, rng)
	if !ok {
		return nil, fmt.Errorf("mslr: no probe direction over %d rows", m)
	}
	v = append(v, first)
	for j := 0; j < k; j++ {
		wj := make([]float64, m)
		apply(wj, v[j])
		for _, x := range wj {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("mslr: Schur residual probe %d is not finite", j)
			}
		}
		w = append(w, wj)
		if j+1 == k {
			break
		}
		cand := append([]float64(nil), wj...)
		if !orthonormalize(cand, v) {
			var ok bool
			if cand, ok = randomOrthonormal(m, v, rng); !ok {
				k = j + 1 // deflated: the reachable space is exhausted
				break
			}
		}
		v = append(v, cand)
	}
	d := sparse.NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			h := dot(v[i], w[j])
			if i == j {
				d.Set(i, j, 1-h)
			} else {
				d.Set(i, j, -h)
			}
		}
	}
	hLU, err := d.Factor()
	if err != nil {
		return nil, nil // singular I−H: fall back to the identity correction
	}
	return &lowRank{
		k:   k,
		v:   v,
		hLU: hLU,
		ck:  make([]float64, k),
		dk:  make([]float64, k),
	}, nil
}
