// Package positive holds code every sharedwrite run must flag.
package positive

import "parapre/internal/par"

// Sum accumulates into a captured scalar from every worker: a data race,
// and even with a mutex the combination order would depend on scheduling.
func Sum(x []float64) float64 {
	var s float64
	par.For(len(x), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s += x[i] // WANT sharedwrite
		}
	})
	return s
}

// Last writes every worker's result into the same fixed slot.
func Last(xs [][]float64, out []float64) {
	par.Run(len(xs), func(t int) {
		out[0] = xs[t][0] // WANT sharedwrite
	})
}

// counter bumps a captured struct field from all workers.
type counter struct{ hits int }

// Count races on the captured counter's field.
func Count(n int) int {
	var c counter
	par.ForSegments([]int{0, n / 2, n}, func(lo, hi int) {
		c.hits += hi - lo // WANT sharedwrite
	})
	return c.hits
}
