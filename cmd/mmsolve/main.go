// Command mmsolve runs the paper's parallel algebraic preconditioners on
// an arbitrary sparse matrix in Matrix Market format — the pARMS-style
// workflow for matrices that do not come from this repository's built-in
// test cases. The partitioner works on the symmetrized sparsity graph.
//
// Usage:
//
//	mmsolve -matrix A.mtx -p 8 -precond "Schur 1"
//	mmsolve -matrix A.mtx -rhs b.mtx -out x.mtx
//
// Without -rhs the right-hand side is A·(1,…,1)ᵀ, so the exact solution
// is the all-ones vector and the reported error is meaningful.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"parapre"
	"parapre/internal/mmio"
	"parapre/internal/precond"
)

func main() {
	var (
		matPath = flag.String("matrix", "", "Matrix Market file with the system matrix (required)")
		rhsPath = flag.String("rhs", "", "Matrix Market array file with the right-hand side (default: A·ones)")
		outPath = flag.String("out", "", "write the solution as a Matrix Market array file")
		p       = flag.Int("p", 4, "number of (simulated) processors")
		kind    = flag.String("precond", "Schur 1", `preconditioner: "Schur 1", "Schur 2", "Block 1", "Block 2", "Block ARMS", "None"`)
		machine = flag.String("machine", "cluster", "machine model: cluster | origin")
		rcm     = flag.Bool("rcm", false, "RCM-reorder subdomain blocks before factoring (Block 1/2)")
		tol     = flag.Float64("tol", 1e-6, "relative residual tolerance")
	)
	flag.Parse()
	if *matPath == "" {
		fmt.Fprintln(os.Stderr, "mmsolve: -matrix is required")
		os.Exit(2)
	}

	mf, err := os.Open(*matPath)
	if err != nil {
		fatal(err)
	}
	a, err := mmio.ReadMatrix(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	if a.Rows != a.Cols {
		fatal(fmt.Errorf("matrix is %d×%d, need square", a.Rows, a.Cols))
	}

	var b []float64
	onesRHS := false
	if *rhsPath != "" {
		rf, err := os.Open(*rhsPath)
		if err != nil {
			fatal(err)
		}
		b, err = mmio.ReadVector(rf)
		if cerr := rf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		if len(b) != a.Rows {
			fatal(fmt.Errorf("rhs length %d, matrix dimension %d", len(b), a.Rows))
		}
	} else {
		ones := make([]float64, a.Rows)
		for i := range ones {
			ones[i] = 1
		}
		b = a.MulVec(ones)
		onesRHS = true
	}

	prob := &parapre.Problem{Name: *matPath, A: a, B: b}
	cfg := parapre.DefaultConfig(*p, precond.Kind(*kind))
	cfg.Solver.Tol = *tol
	cfg.RCM = *rcm
	cfg.KeepX = true
	if *machine == "origin" {
		cfg.Machine = parapre.Origin3800()
	}

	fmt.Printf("%s: %d unknowns, %d nonzeros, P = %d, %s\n",
		*matPath, a.Rows, a.NNZ(), *p, *kind)
	res, err := parapre.Solve(prob, cfg)
	if err != nil {
		fatal(err)
	}
	status := "converged"
	if !res.Converged {
		status = "NOT converged"
	}
	fmt.Printf("%s in %d iterations (relative residual %.2e, true %.2e)\n",
		status, res.Iterations, res.Residual, res.TrueRelRes)
	fmt.Printf("modeled time: %.4fs setup + %.4fs solve\n", res.SetupTime, res.SolveTime)

	if onesRHS {
		var maxErr float64
		for _, v := range res.X {
			if e := math.Abs(v - 1); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("max |x − 1| = %.3e (exact solution is all-ones)\n", maxErr)
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := mmio.WriteVector(of, res.X); err != nil {
			fatal(err)
		}
		if err := of.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("solution written to %s\n", *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mmsolve:", err)
	os.Exit(1)
}
