// Package positive holds code every dimguard run must flag.
package positive

// Gather indexes x through a permutation with no check that x is long
// enough: a mis-dimensioned call reads out of bounds deep in the loop.
func Gather(p []int, x []float64) []float64 { // WANT dimguard
	y := make([]float64, len(p))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}

// AddInto writes through y with an index derived from a different slice.
func AddInto(y, x []float64) { // WANT dimguard
	for i, v := range x {
		y[i] += v
	}
}

// Block is a toy kernel state.
type Block struct{ n int }

// Apply indexes the caller's slice against the receiver's dimension
// without comparing the two.
func (b *Block) Apply(y []float64) { // WANT dimguard
	for i := 0; i < b.n; i++ {
		y[i] = 0
	}
}
