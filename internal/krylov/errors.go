package krylov

import (
	"errors"
	"fmt"
	"math"
)

// ErrBreakdown is the sentinel all solver breakdown errors wrap. Callers
// test for it with errors.Is(res.Err, krylov.ErrBreakdown).
var ErrBreakdown = errors.New("krylov: breakdown")

// BreakdownError describes where and why an iteration broke down: a
// Givens rotation annihilated to zero (Krylov space exhausted), an inner
// product or norm went NaN/Inf (poisoned operator, singular
// preconditioner), or CG met a non-positive curvature direction. It wraps
// ErrBreakdown.
type BreakdownError struct {
	Method    string  // "GMRES", "FGMRES" or "CG"
	Iteration int     // matrix-vector products performed when detected
	Quantity  string  // the scalar that triggered detection
	Value     float64 // its offending value
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("krylov: %s breakdown at iteration %d: %s = %v",
		e.Method, e.Iteration, e.Quantity, e.Value)
}

// Unwrap makes errors.Is(e, ErrBreakdown) true.
func (e *BreakdownError) Unwrap() error { return ErrBreakdown }

// breakdownErr builds the solver-side breakdown record.
func breakdownErr(method string, iter int, quantity string, value float64) *BreakdownError {
	//lint:ignore allocfree breakdown is a terminal once-per-solve event, not steady-state
	return &BreakdownError{Method: method, Iteration: iter, Quantity: quantity, Value: value}
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
