package core_test

import (
	"errors"
	"testing"

	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/precond"
	"parapre/internal/schur"
)

// MSLR must converge through the full distributed pipeline at every world
// size the CI race matrix exercises, and the solve must be a pure
// function of the configuration: same config, same iteration count and
// bit-identical modeled time on repeat.
func TestMSLRConvergesAcrossWorldSizes(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 25)
	for _, p := range []int{2, 4, 8} {
		run := func() *core.Result {
			cfg := core.DefaultConfig(p, precond.KindMSLR)
			res, err := core.Solve(prob, cfg)
			if err != nil {
				t.Fatalf("P=%d: %v", p, err)
			}
			return res
		}
		res := run()
		if !res.Converged {
			t.Fatalf("P=%d: no convergence in %d iterations", p, res.Iterations)
		}
		if again := run(); again.Iterations != res.Iterations || again.SolveTime != res.SolveTime {
			t.Fatalf("P=%d: repeat run diverged: %d/%v vs %d/%v",
				p, res.Iterations, res.SolveTime, again.Iterations, again.SolveTime)
		}
	}
}

// The hierarchy knobs must flow through Config: a deeper hierarchy with
// corrections enabled still converges, and so does the degenerate
// zero-level, zero-rank configuration (plain ILUT everywhere).
func TestMSLRKnobsFlowThroughConfig(t *testing.T) {
	prob := buildProblem(t, "tc5-convdiff", 17)
	for _, tc := range []struct{ levels, rank int }{{0, 0}, {1, 4}, {4, 8}} {
		cfg := core.DefaultConfig(4, precond.KindMSLR)
		cfg.MSLR.Levels = tc.levels
		cfg.MSLR.Rank = tc.rank
		cfg.MSLR.MinBlock = 8
		res, err := core.Solve(prob, cfg)
		if err != nil {
			t.Fatalf("levels=%d rank=%d: %v", tc.levels, tc.rank, err)
		}
		if !res.Converged {
			t.Fatalf("levels=%d rank=%d: no convergence in %d iterations",
				tc.levels, tc.rank, res.Iterations)
		}
	}
}

// A corrupted exchange inside the MSLR interface solve must surface as a
// typed, rank-attributed cause through the aggregated result — the same
// contract the Schur preconditioners honor.
func TestMSLRFaultSurfacesTypedExchangeError(t *testing.T) {
	skipUnderParanoid(t)
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindMSLR)
	cfg.Faults = &dist.FaultPlan{Seed: 5, CorruptProb: 0.3, TargetRecvRanks: []int{2}}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("corrupted solve reported no error")
	}
	var dex *dsys.ExchangeError
	var sex *schur.ExchangeError
	switch {
	case errors.As(res.Err, &sex):
		if sex.Rank != 2 {
			t.Errorf("schur exchange error on rank %d, plan targeted rank 2", sex.Rank)
		}
	case errors.As(res.Err, &dex):
		if dex.Rank != 2 {
			t.Errorf("dsys exchange error on rank %d, plan targeted rank 2", dex.Rank)
		}
	default:
		t.Fatalf("Err = %v, want a typed exchange cause", res.Err)
	}
	if !errors.Is(res.Err, krylov.ErrBreakdown) {
		t.Errorf("Err = %v, want the breakdown joined with its cause", res.Err)
	}
}

// An MSLR breakdown under persistent corruption must walk the resilient
// escalation ladder: retry the MSLR stage, then fall back to the
// structurally different Block 2 (fallbackKind routes MSLR there, like
// the other Schur variants).
func TestMSLRResilientFallback(t *testing.T) {
	skipUnderParanoid(t)
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindMSLR)
	cfg.Faults = &dist.FaultPlan{Seed: 11, CorruptProb: 0.3, TargetRecvRanks: []int{2}}
	cfg.Resilient = true
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery == nil || len(res.Recovery.Steps) < 2 {
		t.Fatalf("recovery log %+v, want an MSLR attempt plus an escalation", res.Recovery)
	}
	stages := map[string]bool{}
	for _, st := range res.Recovery.Steps {
		stages[st.Stage] = true
	}
	if !stages[string(precond.KindMSLR)] {
		t.Errorf("ladder stages %v missing the MSLR attempt", stages)
	}
	if !stages[string(precond.KindBlock2)] {
		t.Errorf("ladder stages %v missing the Block 2 fallback", stages)
	}
}
