package sparse

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"parapre/internal/par"
)

// poisson2D builds the 5-point finite-difference Laplacian on an m×m grid
// — the matrix of the paper's Test Case 1 at m = 129 (N = 16 641,
// nnz ≈ 83 000).
func poisson2D(m int) *CSR {
	n := m * m
	coo := NewCOO(n, n, 5*n)
	id := func(i, j int) int { return j*m + i }
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			r := id(i, j)
			coo.Add(r, r, 4)
			if i > 0 {
				coo.Add(r, id(i-1, j), -1)
			}
			if i < m-1 {
				coo.Add(r, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(r, id(i, j-1), -1)
			}
			if j < m-1 {
				coo.Add(r, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

// BenchmarkSpMVSerialVsParallel measures real wall-clock time of the SpMV
// kernel on the 129² Poisson matrix, serial (1 worker) versus the full
// worker pool. On a ≥4-core machine the parallel sub-benchmark should run
// ≥2× faster per op; on a single-core machine the two coincide.
func BenchmarkSpMVSerialVsParallel(b *testing.B) {
	a := poisson2D(129)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1 + float64(i%13)
	}
	y := make([]float64, a.Rows)
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			a.rowPartition(w) // pre-warm the cached partition
			b.SetBytes(int64(8 * (a.NNZ() + a.Rows + a.Cols)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVecTo(y, x)
			}
			b.ReportMetric(2*float64(a.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}

// BenchmarkDotSerialVsParallel: the deterministic blocked inner product at
// 1 worker and at GOMAXPROCS.
func BenchmarkDotSerialVsParallel(b *testing.B) {
	n := 1 << 20
	rng := rand.New(rand.NewSource(1))
	x, y := make([]float64, n), make([]float64, n)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot(x, y)
			}
			_ = s
		})
	}
}

// BenchmarkSortRows: the allocation-free row sorter on FEM-like short
// rows (the satellite optimization — previously one sort.Sort interface
// allocation per row).
func BenchmarkSortRows(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const rows, perRow = 10000, 7
	proto := &CSR{Rows: rows, Cols: rows, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		seen := map[int]bool{}
		for len(seen) < perRow {
			c := rng.Intn(rows)
			if !seen[c] {
				seen[c] = true
				proto.ColIdx = append(proto.ColIdx, c)
				proto.Val = append(proto.Val, rng.NormFloat64())
			}
		}
		proto.RowPtr[i+1] = len(proto.ColIdx)
	}
	shuffled := append([]int(nil), proto.ColIdx...)
	vals := append([]float64(nil), proto.Val...)
	a := &CSR{Rows: rows, Cols: rows, RowPtr: proto.RowPtr, ColIdx: make([]int, len(shuffled)), Val: make([]float64, len(vals))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		copy(a.ColIdx, shuffled)
		copy(a.Val, vals)
		b.StartTimer()
		a.SortRows()
	}
}
