package mmio

import (
	"bytes"
	"strings"
	"testing"

	"parapre/internal/sparse"
)

// Round-trip invariants: read → write → read must preserve the expanded
// matrix exactly, and write → read → write must be byte-stable (the
// writer always emits coordinate real general, so the second write is a
// fixed point even when the source used symmetric or pattern storage).

func roundTrip(t *testing.T, name, src string) {
	t.Helper()
	a, err := ReadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatalf("%s: read: %v", name, err)
	}
	var buf1 bytes.Buffer
	if err := WriteMatrix(&buf1, a); err != nil {
		t.Fatalf("%s: write: %v", name, err)
	}
	b, err := ReadMatrix(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("%s: re-read: %v", name, err)
	}
	if !a.Equal(b) {
		t.Fatalf("%s: matrix changed across write→read", name)
	}
	var buf2 bytes.Buffer
	if err := WriteMatrix(&buf2, b); err != nil {
		t.Fatalf("%s: re-write: %v", name, err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("%s: write→read→write is not byte-stable:\n%q\nvs\n%q",
			name, buf1.String(), buf2.String())
	}
}

func TestRoundTripSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% lower triangle only; the reader must mirror the off-diagonals
3 3 4
1 1 2.5
2 1 -1
3 2 -0.125
3 3 4
`
	a, err := ReadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := a.NNZ(); got != 6 {
		t.Errorf("expanded nnz = %d, want 6 (two mirrored off-diagonals)", got)
	}
	ad := a.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if ad.At(i, j) != ad.At(j, i) {
				t.Errorf("expansion not symmetric at (%d,%d): %g vs %g", i, j, ad.At(i, j), ad.At(j, i))
			}
		}
	}
	roundTrip(t, "symmetric", src)
}

func TestRoundTripSkewSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real skew-symmetric
3 3 2
2 1 1.5
3 1 -2
`
	a, err := ReadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ad := a.Dense()
	if ad.At(0, 1) != -1.5 || ad.At(0, 2) != 2 {
		t.Errorf("skew mirror wrong: A[0,1]=%g A[0,2]=%g", ad.At(0, 1), ad.At(0, 2))
	}
	roundTrip(t, "skew-symmetric", src)
}

func TestRoundTripPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 3 3
1 1
1 3
2 2
`
	a, err := ReadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ad := a.Dense()
	for _, e := range [][2]int{{0, 0}, {0, 2}, {1, 1}} {
		if ad.At(e[0], e[1]) != 1 {
			t.Errorf("pattern entry (%d,%d) = %g, want 1", e[0], e[1], ad.At(e[0], e[1]))
		}
	}
	roundTrip(t, "pattern", src)
}

func TestRoundTripPatternSymmetric(t *testing.T) {
	roundTrip(t, "pattern-symmetric", `%%MatrixMarket matrix coordinate pattern symmetric
3 3 3
1 1
2 1
3 3
`)
}

func TestRoundTripOneByOne(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real general
1 1 1
1 1 -7.25
`
	a, err := ReadMatrix(strings.NewReader(src))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if a.Rows != 1 || a.Cols != 1 || a.Dense().At(0, 0) != -7.25 {
		t.Fatalf("1×1 matrix misparsed: %d×%d", a.Rows, a.Cols)
	}
	roundTrip(t, "1x1", src)
}

func TestRoundTripEmptyMatrix(t *testing.T) {
	// nnz = 0 is legal: an all-zero matrix.
	roundTrip(t, "empty", `%%MatrixMarket matrix coordinate real general
2 2 0
`)
}

// TestWriterReaderCSRAgreement drives the pair from the CSR side: a
// programmatically built matrix written and re-read must be Equal,
// including values that stress the %.17g formatting.
func TestWriterReaderCSRAgreement(t *testing.T) {
	coo := sparse.NewCOO(4, 4, 8)
	coo.Add(0, 0, 1.0/3.0)
	coo.Add(0, 3, -2.7182818284590452)
	coo.Add(1, 1, 1e-300)
	coo.Add(2, 2, 1e300)
	coo.Add(3, 0, -0.1)
	coo.Add(3, 3, 12345678901234567)
	a := coo.ToCSR()
	var buf bytes.Buffer
	if err := WriteMatrix(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !a.Equal(b) {
		t.Fatal("CSR changed across write→read (is the 17-digit formatting losing bits?)")
	}
}

func TestVectorRoundTripEdgeCases(t *testing.T) {
	for _, x := range [][]float64{{}, {1.5}, {1.0 / 3.0, -2, 1e-17}} {
		var buf bytes.Buffer
		if err := WriteVector(&buf, x); err != nil {
			t.Fatalf("write: %v", err)
		}
		y, err := ReadVector(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if len(x) != len(y) {
			t.Fatalf("length %d → %d", len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Errorf("x[%d]: %g → %g", i, x[i], y[i])
			}
		}
	}
}
