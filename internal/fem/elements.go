// Package fem discretizes the paper's four PDEs (§3) with linear finite
// elements: P1 triangles in 2D and P1 tetrahedra in 3D. It provides
// stiffness, mass, convection (with SUPG upwinding, cf. the paper's §3.3
// "upwind weighting functions"), and linear-elasticity assembly, plus
// symmetric Dirichlet boundary-condition application.
package fem

import (
	"math"

	"parapre/internal/grid"
)

// elemGeom holds the P1 geometry of one element: the (unsigned) measure
// and the constant basis-function gradients.
type elemGeom struct {
	measure float64       // area (2D) or volume (3D)
	grad    [4][3]float64 // grad[i][d] = ∂φ_i/∂x_d; only NPE×Dim entries used
}

// geometry computes the P1 element geometry of element e. Works for both
// orientations (the signed determinant cancels in every bilinear form
// assembled here).
func geometry(m *grid.Mesh, e int) elemGeom {
	el := m.Elem(e)
	var g elemGeom
	if m.Dim == 2 {
		a, b, c := m.Coord(el[0]), m.Coord(el[1]), m.Coord(el[2])
		det := (b[0]-a[0])*(c[1]-a[1]) - (c[0]-a[0])*(b[1]-a[1]) // 2·signed area
		g.measure = math.Abs(det) / 2
		inv := 1 / det
		// ∇φ_0 = (y_b − y_c, x_c − x_b)/det, cyclic.
		g.grad[0][0] = (b[1] - c[1]) * inv
		g.grad[0][1] = (c[0] - b[0]) * inv
		g.grad[1][0] = (c[1] - a[1]) * inv
		g.grad[1][1] = (a[0] - c[0]) * inv
		g.grad[2][0] = (a[1] - b[1]) * inv
		g.grad[2][1] = (b[0] - a[0]) * inv
		return g
	}
	a, b, c, d := m.Coord(el[0]), m.Coord(el[1]), m.Coord(el[2]), m.Coord(el[3])
	var J [3][3]float64 // edge vectors from a
	for k := 0; k < 3; k++ {
		J[0][k] = b[k] - a[k]
		J[1][k] = c[k] - a[k]
		J[2][k] = d[k] - a[k]
	}
	det := J[0][0]*(J[1][1]*J[2][2]-J[1][2]*J[2][1]) -
		J[0][1]*(J[1][0]*J[2][2]-J[1][2]*J[2][0]) +
		J[0][2]*(J[1][0]*J[2][1]-J[1][1]*J[2][0])
	g.measure = math.Abs(det) / 6
	inv := 1 / det
	// Rows of the inverse-transpose of J give ∇φ_1..3; ∇φ_0 = −Σ others.
	g.grad[1][0] = (J[1][1]*J[2][2] - J[1][2]*J[2][1]) * inv
	g.grad[1][1] = (J[1][2]*J[2][0] - J[1][0]*J[2][2]) * inv
	g.grad[1][2] = (J[1][0]*J[2][1] - J[1][1]*J[2][0]) * inv
	g.grad[2][0] = (J[0][2]*J[2][1] - J[0][1]*J[2][2]) * inv
	g.grad[2][1] = (J[0][0]*J[2][2] - J[0][2]*J[2][0]) * inv
	g.grad[2][2] = (J[0][1]*J[2][0] - J[0][0]*J[2][1]) * inv
	g.grad[3][0] = (J[0][1]*J[1][2] - J[0][2]*J[1][1]) * inv
	g.grad[3][1] = (J[0][2]*J[1][0] - J[0][0]*J[1][2]) * inv
	g.grad[3][2] = (J[0][0]*J[1][1] - J[0][1]*J[1][0]) * inv
	for d := 0; d < 3; d++ {
		g.grad[0][d] = -(g.grad[1][d] + g.grad[2][d] + g.grad[3][d])
	}
	return g
}

// centroid returns the element centroid into out.
func centroid(m *grid.Mesh, e int, out []float64) {
	el := m.Elem(e)
	for d := 0; d < m.Dim; d++ {
		out[d] = 0
	}
	for _, n := range el {
		c := m.Coord(n)
		for d := 0; d < m.Dim; d++ {
			out[d] += c[d]
		}
	}
	for d := 0; d < m.Dim; d++ {
		out[d] /= float64(m.NPE)
	}
}
