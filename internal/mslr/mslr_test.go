package mslr

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/par"
	"parapre/internal/sparse"
)

// laplace2D builds the 5-point Poisson matrix on an m×m grid.
func laplace2D(m int) *sparse.CSR {
	n := m * m
	coo := sparse.NewCOO(n, n, 5*n)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			r := j*m + i
			coo.Add(r, r, 4)
			if i > 0 {
				coo.Add(r, r-1, -1)
			}
			if i < m-1 {
				coo.Add(r, r+1, -1)
			}
			if j > 0 {
				coo.Add(r, r-m, -1)
			}
			if j < m-1 {
				coo.Add(r, r+m, -1)
			}
		}
	}
	return coo.ToCSR()
}

// randDiagDominant builds a random strictly diagonally dominant matrix.
func randDiagDominant(n int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, n*n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() >= density {
				continue
			}
			v := rng.NormFloat64()
			coo.Add(i, j, v)
			rowAbs[i] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return coo.ToCSR()
}

// completeOpts disables all dropping: ILUT(0, unlimited) is an exact LU.
var completeOpts = ilu.ILUTOptions{Tau: 0, LFil: 0}

// exactOptions configures MSLR as an exact solver over an n-unknown
// problem: complete factors, full-rank corrections, and a fully converged
// interface GMRES.
func exactOptions(n int) Options {
	return Options{
		Levels:     2,
		Rank:       n,
		MinBlock:   3,
		ILUT:       completeOpts,
		SchurIters: 3*n + 10,
		SchurTol:   1e-13,
		Seed:       5,
	}
}

// stripePartition splits n rows into p contiguous stripes.
func stripePartition(n, p int) []int {
	part := make([]int, n)
	for i := range part {
		part[i] = i * p / n
		if part[i] >= p {
			part[i] = p - 1
		}
	}
	return part
}

// applyGlobal runs the collective Apply over a scattered global residual
// and gathers the result.
func applyGlobal(t *testing.T, a *sparse.CSR, p int, opts Options, r []float64) []float64 {
	t.Helper()
	n := a.Rows
	systems := dsys.Distribute(a, make([]float64, n), stripePartition(n, p), p)
	pcs := make([]*Precond, p)
	for rk, s := range systems {
		pc, err := New(s, opts)
		if err != nil {
			t.Fatalf("rank %d: %v", rk, err)
		}
		pcs[rk] = pc
	}
	locals := dsys.Scatter(systems, r)
	zl := make([][]float64, p)
	dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
		rk := c.Rank()
		zl[rk] = make([]float64, systems[rk].NLoc())
		pcs[rk].Apply(c, zl[rk], locals[rk])
	})
	return dsys.Gather(systems, zl)
}

// With complete factors and full-rank corrections the multilevel solve is
// exact: Apply must reproduce the dense global solve at every world size,
// including the sequential P=1 hierarchy.
func TestExactSettingsMatchDenseInverse(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *sparse.CSR
	}{
		{"poisson-7x7", laplace2D(7)},
		{"random-30", randDiagDominant(30, 0.2, 12)},
	} {
		n := tc.a.Rows
		lu, err := tc.a.Dense().Factor()
		if err != nil {
			t.Fatal(err)
		}
		r := make([]float64, n)
		rng := rand.New(rand.NewSource(99))
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		want := lu.Solve(r)
		for _, p := range []int{1, 2, 3, 4} {
			got := applyGlobal(t, tc.a, p, exactOptions(n), r)
			var d, scale float64
			for i := range got {
				d = math.Max(d, math.Abs(got[i]-want[i]))
				scale = math.Max(scale, math.Abs(want[i]))
			}
			if d > 1e-10*(1+scale) {
				t.Errorf("%s P=%d: exact-settings Apply differs from dense solve by %g", tc.name, p, d)
			}
		}
	}
}

// The hierarchy ordering must be a true permutation of the interior
// block, and truncated ranks must still produce a finite, usable solve.
func TestHierarchyPermutationAndTruncatedRank(t *testing.T) {
	a := laplace2D(9)
	n := a.Rows
	opts := Options{Levels: 3, Rank: 4, MinBlock: 6,
		ILUT: ilu.DefaultILUT(), SchurIters: 4, SchurTol: 1e-2, Seed: 3}
	root, perm, setup, err := buildTree(a, opts, opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if root.n != n || len(perm) != n {
		t.Fatalf("hierarchy covers %d of %d rows", root.n, n)
	}
	seen := make([]bool, n)
	for _, v := range perm {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("ordering is not a permutation: %v", perm)
		}
		seen[v] = true
	}
	if setup <= 0 {
		t.Fatal("setup flops not accounted")
	}
	in := make([]float64, n)
	out := make([]float64, n)
	for i := range in {
		in[i] = float64(i%7) - 3
	}
	root.solve(out, in)
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("solve produced non-finite entry %g at %d", v, i)
		}
	}
}

// A disconnected interior (empty separators somewhere in the hierarchy)
// and a rank-0 configuration must both build and solve.
func TestDegenerateHierarchies(t *testing.T) {
	// Two decoupled 4x4 Poisson blocks: the top-level separator is empty.
	m := laplace2D(4)
	n2 := 2 * m.Rows
	coo := sparse.NewCOO(n2, n2, 2*m.NNZ())
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
			coo.Add(i+m.Rows, j+m.Rows, vals[k])
		}
	}
	a := coo.ToCSR()
	for _, rank := range []int{0, 5} {
		opts := Options{Levels: 2, Rank: rank, MinBlock: 4,
			ILUT: completeOpts, SchurIters: 3, SchurTol: 1e-2, Seed: 1}
		root, _, _, err := buildTree(a, opts, opts.Seed)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		in := make([]float64, n2)
		out := make([]float64, n2)
		for i := range in {
			in[i] = 1
		}
		root.solve(out, in)
		for _, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("rank %d: non-finite solve", rank)
			}
		}
	}
}

// The low-rank machinery at full rank must invert I−G exactly:
// for a random contraction G, correct(g) = (I−G)⁻¹·g·(I−H)… — concretely,
// (I−G)·correct(g) = g when V spans the whole space.
func TestLowRankFullRankInvertsResidual(t *testing.T) {
	const m = 9
	rng := rand.New(rand.NewSource(4))
	g := sparse.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			g.Set(i, j, 0.3*rng.NormFloat64()/float64(m))
		}
	}
	lr, err := buildLowRank(m, m, func(dst, src []float64) { g.MulVecTo(dst, src) }, newRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	if lr == nil || lr.k != m {
		t.Fatalf("full-rank build returned k=%v", lr)
	}
	rhs := make([]float64, m)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	cor := make([]float64, m)
	lr.correct(cor, rhs)
	// back = (I−G)·cor must equal rhs.
	back := make([]float64, m)
	g.MulVecTo(back, cor)
	for i := range back {
		back[i] = cor[i] - back[i]
	}
	for i := range back {
		if d := math.Abs(back[i] - rhs[i]); d > 1e-9 {
			t.Fatalf("(I−G)·correct(g) differs from g at %d by %g", i, d)
		}
	}
}

// Setup and solve are pure functions of (matrix, options): the gathered
// preconditioned residual must be bit-identical at any par worker count.
func TestBitIdenticalAcrossWorkerCounts(t *testing.T) {
	defer par.SetWorkers(par.Workers())
	a := laplace2D(11)
	n := a.Rows
	r := make([]float64, n)
	rng := rand.New(rand.NewSource(21))
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	opts := Options{Levels: 2, Rank: 6, MinBlock: 10,
		ILUT: ilu.DefaultILUT(), SchurIters: 4, SchurTol: 1e-3, Seed: 17}
	var ref []float64
	for _, workers := range []int{1, 2, 8} {
		par.SetWorkers(workers)
		z := applyGlobal(t, a, 3, opts, r)
		if ref == nil {
			ref = z
			continue
		}
		for i := range z {
			if z[i] != ref[i] {
				t.Fatalf("workers=%d: z[%d] = %v differs from workers=1 value %v",
					workers, i, z[i], ref[i])
			}
		}
	}
}
