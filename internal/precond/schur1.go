package precond

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/schur"
	"parapre/internal/sparse"
)

// Schur1Options tunes the Schur 1 preconditioner.
type Schur1Options struct {
	ILUT       ilu.ILUTOptions // subdomain factorization (supplies B̃ and L_S·U_S)
	SchurIters int             // distributed GMRES iterations on the global Schur system
	SchurTol   float64         // early-exit tolerance of the inner Schur solve
	InnerIters int             // local GMRES iterations per B-solve (0 ⇒ one ILUT sweep)
	InnerTol   float64
}

// DefaultSchur1 matches the paper's description: the global Schur system
// is solved by "a few" block-Jacobi preconditioned GMRES iterations; the
// subdomain solver is "a few" local GMRES iterations preconditioned by
// ILUT.
func DefaultSchur1() Schur1Options {
	return Schur1Options{
		ILUT:       ilu.DefaultILUT(),
		SchurIters: 5,
		SchurTol:   1e-2,
		InnerIters: 3,
		InnerTol:   1e-3,
	}
}

// Schur1 implements Algorithm 2.1 of the paper as a preconditioner
// application:
//
//  1. ĝ_i = g_i − E_i·B̃_i⁻¹·f_i
//  2. solve S·y = ĝ approximately (distributed GMRES, block-Jacobi
//     preconditioned by the trailing ILUT factors L_S·U_S)
//  3. u_i = B̃_i⁻¹·(f_i − F_i·y_i)
//
// Both B̃-solves use a few local GMRES iterations preconditioned by the
// leading ILUT factors, and the global Schur operator applies
// S_i = C_i − E_i·B̃_i⁻¹·F_i matrix-free with one ILUT sweep per product.
type Schur1 struct {
	s    *dsys.System
	opts Schur1Options

	bFact *ilu.LU     // leading factors: ILUT of B_i
	sFact *ilu.LU     // trailing factors: L_S·U_S ≈ S_i
	bBlk  *sparse.CSR // B_i (for the inner GMRES matvec)
	fBlk  *sparse.CSR // F_i
	eBlk  *sparse.CSR // E_i
	op    *schur.Iface

	// scratch
	y, gp, fTmp, uTmp []float64
	// Pooled solver workspaces: every Apply runs two inner B-solves and a
	// short Schur GMRES, which without pooling rebuilt their Krylov bases
	// on each outer iteration. One workspace per inner solver keeps the
	// shapes stable; Apply is per-rank sequential, so neither is ever
	// shared by concurrent solves.
	wsB, wsS *krylov.Workspace

	// commErr records the first interface-exchange failure observed
	// inside Apply's inner Schur solve (see CommErrRecorder).
	commErr error
}

// NewSchur1 builds the Schur 1 preconditioner for this rank's subdomain.
func NewSchur1(s *dsys.System, opts Schur1Options) (*Schur1, error) {
	full, err := ilu.ILUT(s.OwnedBlock(), opts.ILUT)
	if err != nil {
		return nil, fmt.Errorf("precond: Schur 1 rank %d: %w", s.Rank, err)
	}
	bFact, err := ilu.ExtractLeading(full, s.NInt)
	if err != nil {
		return nil, err
	}
	sFact, err := ilu.ExtractTrailing(full, s.NInt)
	if err != nil {
		return nil, err
	}
	op, err := schur.NewImplicit(s, bFact)
	if err != nil {
		return nil, err
	}
	p := &Schur1{
		s:     s,
		opts:  opts,
		bFact: bFact,
		sFact: sFact,
		bBlk:  s.BlockB(),
		fBlk:  s.BlockF(),
		eBlk:  s.BlockE(),
		op:    op,
		y:     make([]float64, s.NIface()),
		gp:    make([]float64, s.NIface()),
		fTmp:  make([]float64, s.NInt),
		uTmp:  make([]float64, s.NInt),
		wsB:   krylov.NewWorkspace(),
		wsS:   krylov.NewWorkspace(),
	}
	return p, nil
}

// bSolve approximately solves B_i·out = in with a few ILUT-preconditioned
// local GMRES iterations (purely local — no collectives).
func (p *Schur1) bSolve(c *dist.Comm, out, in []float64) {
	if p.s.NInt == 0 {
		return
	}
	if p.opts.InnerIters <= 0 {
		p.bFact.Solve(out, in)
		c.Compute(p.bFact.SolveFlops())
		return
	}
	for i := range out {
		out[i] = 0
	}
	krylov.SolveCSR(p.bBlk, func(z, r []float64) {
		p.bFact.Solve(z, r)
		c.Compute(p.bFact.SolveFlops())
	}, in, out, krylov.Options{
		Restart:  p.opts.InnerIters,
		MaxIters: p.opts.InnerIters,
		Tol:      p.opts.InnerTol,
		Compute:  c.Compute,
		Work:     p.wsB,
	})
}

// Apply runs Algorithm 2.1. Must be called collectively.
func (p *Schur1) Apply(c *dist.Comm, z, r []float64) {
	s := p.s
	nInt := s.NInt
	f := r[:nInt]
	g := r[nInt:]

	// Step 1: ĝ = g − E·B̃⁻¹·f.
	p.bSolve(c, p.uTmp, f)
	copy(p.gp, g)
	if nInt > 0 {
		p.eBlk.MulVecSub(p.gp, p.uTmp)
		c.Compute(2 * float64(p.eBlk.NNZ()))
	}

	// Step 2: a few distributed GMRES iterations on S·y = ĝ,
	// block-Jacobi preconditioned by the trailing factors.
	for i := range p.y {
		p.y[i] = 0
	}
	krylov.GMRES(s.NIface(),
		func(out, x []float64) {
			if err := p.op.MatVec(c, out, x); err != nil {
				if p.commErr == nil {
					p.commErr = err
				}
				poisonNaN(out)
			}
		},
		func(out, x []float64) {
			p.sFact.Solve(out, x)
			c.Compute(p.sFact.SolveFlops())
		},
		func(a, b []float64) float64 { return p.op.Dot(c, a, b) },
		p.gp, p.y,
		krylov.Options{
			Restart:  p.opts.SchurIters,
			MaxIters: p.opts.SchurIters,
			Tol:      p.opts.SchurTol,
			Compute:  c.Compute,
			Work:     p.wsS,
		})

	// Step 3: u = B̃⁻¹·(f − F·y).
	if nInt > 0 {
		copy(p.fTmp, f)
		p.fBlk.MulVecSub(p.fTmp, p.y)
		c.Compute(2 * float64(p.fBlk.NNZ()))
		p.bSolve(c, p.uTmp, p.fTmp)
	}
	copy(z[:nInt], p.uTmp[:nInt])
	copy(z[nInt:], p.y)
}

// Name returns the paper's notation for this preconditioner.
func (p *Schur1) Name() string { return string(KindSchur1) }

// TakeCommErr returns and clears the first interface-exchange failure
// recorded during Apply (CommErrRecorder).
func (p *Schur1) TakeCommErr() error {
	err := p.commErr
	p.commErr = nil
	return err
}

// SetupFlops estimates the construction cost of this preconditioner for
// virtual-time accounting: one ILUT factorization of the owned block,
// costed as a few sweeps over its factors.
func (p *Schur1) SetupFlops() float64 {
	return 2 * float64(p.bFact.NNZ()+p.sFact.NNZ()+p.bBlk.NNZ()+p.eBlk.NNZ()+p.fBlk.NNZ())
}
