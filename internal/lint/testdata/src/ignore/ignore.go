// Package ignore exercises the //lint:ignore convention.
package ignore

// BitEqual's contract is exact bit equality (determinism tests promoted
// into library code): suppressed with a documented reason.
func BitEqual(a, b float64) bool {
	//lint:ignore floatcmp bit-exact comparison is this function's documented contract
	return a == b
}

// TrailingForm suppresses with a trailing comment on the flagged line.
func TrailingForm(a, b float64) bool {
	return a != b //lint:ignore floatcmp exact mismatch detection is the point here
}

// MissingReason is malformed — no reason given — so the directive is
// reported and the comparison stays flagged.
func MissingReason(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
