package dsys_test

import (
	"math"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/krylov"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

func rowsTestMachine() *dist.Machine {
	return &dist.Machine{Name: "test", FlopRate: 1e9, Latency: 1e-6, ByteTime: 1e-9, Load: 1}
}

// buildBoth builds the same problem via the global-assembly path and via
// the distributed (per-rank row slab) discretization of §1.1.
func buildBoth(t *testing.T, m, p int, seed int64) (global, slabbed []*dsys.System, a *sparse.CSR) {
	t.Helper()
	g := grid.UnitSquareTri(m)
	pde := fem.ScalarPDE{
		Diffusion: 1,
		Velocity:  []float64{40, -10},
		SUPG:      true,
		Source:    func(x []float64) float64 { return x[0] - x[1] },
	}
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = math.Sin(float64(n))
		}
	}
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, seed)
	if err != nil {
		panic(err)
	}

	// Global path.
	aG, bG := fem.AssembleScalar(g, pde)
	fem.ApplyDirichlet(aG, bG, bc)
	global = dsys.Distribute(aG, bG, part, p)

	// Distributed-discretization path: each rank assembles only its rows.
	slabs := make([]*sparse.CSR, p)
	rhs := make([][]float64, p)
	for r := 0; r < p; r++ {
		r := r
		owned := func(node int) bool { return part[node] == r }
		slabs[r], rhs[r] = fem.AssembleScalarRows(g, pde, owned)
		fem.ApplyDirichletRows(slabs[r], rhs[r], bc, owned)
	}
	slabbed, err = dsys.DistributeRows(slabs, rhs, part)
	if err != nil {
		t.Fatal(err)
	}
	return global, slabbed, aG
}

func TestDistributedDiscretizationMatchesGlobal(t *testing.T) {
	const m, p = 11, 4
	global, slabbed, _ := buildBoth(t, m, p, 3)
	for r := 0; r < p; r++ {
		gs, ss := global[r], slabbed[r]
		if gs.NInt != ss.NInt || gs.NLoc() != ss.NLoc() || gs.NExt() != ss.NExt() {
			t.Fatalf("rank %d: shapes differ: (%d,%d,%d) vs (%d,%d,%d)",
				r, gs.NInt, gs.NLoc(), gs.NExt(), ss.NInt, ss.NLoc(), ss.NExt())
		}
		for l := range gs.GlobalIDs {
			if gs.GlobalIDs[l] != ss.GlobalIDs[l] {
				t.Fatalf("rank %d: GlobalIDs differ at %d", r, l)
			}
		}
		// Patterns must be identical; values may differ in the last ulp
		// because the slab assembly sums the diffusion/convection/SUPG
		// contributions of an element in one Add while the global path
		// uses three.
		if gs.A.NNZ() != ss.A.NNZ() {
			t.Fatalf("rank %d: nnz differ: %d vs %d", r, gs.A.NNZ(), ss.A.NNZ())
		}
		for k := range gs.A.ColIdx {
			if gs.A.ColIdx[k] != ss.A.ColIdx[k] {
				t.Fatalf("rank %d: pattern differs at %d", r, k)
			}
			if d := math.Abs(gs.A.Val[k] - ss.A.Val[k]); d > 1e-11*(1+math.Abs(gs.A.Val[k])) {
				t.Fatalf("rank %d: value %d differs: %v vs %v", r, k, gs.A.Val[k], ss.A.Val[k])
			}
		}
		for l := range gs.B {
			if math.Abs(gs.B[l]-ss.B[l]) > 1e-13 {
				t.Fatalf("rank %d: rhs differs at %d: %v vs %v", r, l, gs.B[l], ss.B[l])
			}
		}
		if err := ss.CheckStructure(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistributedDiscretizationSolves(t *testing.T) {
	const m, p = 11, 3
	_, slabbed, aG := buildBoth(t, m, p, 5)
	// Solve through the slab-built systems and compare against the global
	// reference solution.
	ref := make([]float64, aG.Rows)
	bGlob := dsys.Gather(slabbed, func() [][]float64 {
		out := make([][]float64, p)
		for r, s := range slabbed {
			out[r] = s.B
		}
		return out
	}())
	res := krylov.SolveCSR(aG, nil, bGlob, ref, krylov.Options{Restart: 40, MaxIters: 5000, Tol: 1e-10})
	if !res.Converged {
		t.Fatal("reference failed")
	}
	xl := make([][]float64, p)
	dist.Run(p, rowsTestMachine(), func(c *dist.Comm) {
		s := slabbed[c.Rank()]
		x := make([]float64, s.NLoc())
		r := krylov.Distributed(c, s, nil, s.B, x, krylov.Options{Restart: 40, MaxIters: 5000, Tol: 1e-10})
		if !r.Converged {
			t.Errorf("rank %d: no convergence", c.Rank())
		}
		xl[c.Rank()] = x
	})
	got := dsys.Gather(slabbed, xl)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-6 {
			t.Fatalf("slab-built solve differs at %d: %v vs %v", i, got[i], ref[i])
		}
	}
}

func TestDistributeRowsValidation(t *testing.T) {
	n := 4
	part := []int{0, 0, 1, 1}
	mk := func(rows ...int) *sparse.CSR {
		coo := sparse.NewCOO(n, n, n)
		for _, i := range rows {
			coo.Add(i, i, 1)
		}
		return coo.ToCSR()
	}
	ok0, ok1 := mk(0, 1), mk(2, 3)
	rhs := [][]float64{make([]float64, n), make([]float64, n)}

	if _, err := dsys.DistributeRows(nil, nil, part); err == nil {
		t.Error("empty slabs accepted")
	}
	if _, err := dsys.DistributeRows([]*sparse.CSR{ok0, ok1}, rhs, []int{0, 0, 1}); err == nil {
		t.Error("short partition accepted")
	}
	// Row stored by the wrong rank.
	if _, err := dsys.DistributeRows([]*sparse.CSR{mk(0, 1, 2), ok1}, rhs, part); err == nil {
		t.Error("foreign row accepted")
	}
	// Owner missing a row.
	if _, err := dsys.DistributeRows([]*sparse.CSR{mk(0), ok1}, rhs, part); err == nil {
		t.Error("missing row accepted")
	}
	// Valid input passes.
	if _, err := dsys.DistributeRows([]*sparse.CSR{ok0, ok1}, rhs, part); err != nil {
		t.Errorf("valid slabs rejected: %v", err)
	}
}

func TestDistributedElasticityAssemblyMatchesGlobal(t *testing.T) {
	const size, p = 7, 3
	g := grid.QuarterRing(size, size)
	const mu, lambda = 1.0, 1.5
	load := func(x []float64) (float64, float64) { return 0, -1 }
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		if math.Abs(c[0]) < 1e-12 {
			bc[2*n] = 0
		}
		if math.Abs(c[1]) < 1e-12 {
			bc[2*n+1] = 0
		}
	}
	ptr, adj := g.NodeGraph()
	nodePart, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, 2)
	if err != nil {
		panic(err)
	}
	part := make([]int, 2*g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		part[2*n], part[2*n+1] = nodePart[n], nodePart[n]
	}

	aG, bG := fem.AssembleElasticity(g, mu, lambda, load)
	fem.ApplyDirichlet(aG, bG, bc)
	global := dsys.Distribute(aG, bG, part, p)

	slabs := make([]*sparse.CSR, p)
	rhs := make([][]float64, p)
	for r := 0; r < p; r++ {
		owned := func(dof int) bool { return part[dof] == r }
		slabs[r], rhs[r] = fem.AssembleElasticityRows(g, mu, lambda, load, owned)
		fem.ApplyDirichletRows(slabs[r], rhs[r], bc, owned)
	}
	slabbed, err := dsys.DistributeRows(slabs, rhs, part)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < p; r++ {
		gs, ss := global[r], slabbed[r]
		if gs.NLoc() != ss.NLoc() || gs.NInt != ss.NInt {
			t.Fatalf("rank %d: shape mismatch", r)
		}
		if gs.A.NNZ() != ss.A.NNZ() {
			t.Fatalf("rank %d: nnz %d vs %d", r, gs.A.NNZ(), ss.A.NNZ())
		}
		for k := range gs.A.Val {
			if gs.A.ColIdx[k] != ss.A.ColIdx[k] ||
				math.Abs(gs.A.Val[k]-ss.A.Val[k]) > 1e-11*(1+math.Abs(gs.A.Val[k])) {
				t.Fatalf("rank %d: entry %d differs", r, k)
			}
		}
		for l := range gs.B {
			if math.Abs(gs.B[l]-ss.B[l]) > 1e-12 {
				t.Fatalf("rank %d: rhs %d differs", r, l)
			}
		}
	}
}
