//go:build paranoid

package paranoid

// Enabled reports whether the paranoid runtime invariant checks are
// compiled in. This file is selected by `go build -tags paranoid`.
const Enabled = true
