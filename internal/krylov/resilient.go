package krylov

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/obs"
)

// Stage is one rung of the ResilientSolve escalation ladder: a named
// preconditioner supplied as a lazy constructor, so the setup cost of a
// fallback is only paid if the ladder actually reaches it. Prec may
// return nil for an unpreconditioned stage.
type Stage struct {
	Name string
	Prec func() Prec
}

// RecoveryStep records one solve attempt of the escalation ladder.
type RecoveryStep struct {
	Stage      string
	Attempt    int // 1 = first try on this stage, 2 = fresh-restart retry
	Iterations int
	Converged  bool
	Err        error // the attempt's typed solver/communication error, if any
}

// RecoveryLog is the structured account of what ResilientSolve did: every
// attempt in order, and whether the solve ultimately succeeded only
// thanks to the ladder (a retry or a fallback stage).
type RecoveryLog struct {
	Steps     []RecoveryStep
	Recovered bool // converged, but not on the first attempt of stage 0
}

// ResilientSolve runs the distributed solve with graceful degradation:
//
//  1. solve with the first stage's preconditioner;
//  2. on a breakdown (NaN poisoning, annihilated rotation, communication
//     fault) discard the contaminated iterate and retry the same stage
//     once from a fresh zero restart;
//  3. if the stage still fails, escalate to the next stage (a stronger or
//     alternative preconditioner) and repeat;
//  4. when the ladder is exhausted, return the last result with its typed
//     error intact.
//
// Plain non-convergence (MaxIters reached without a breakdown) skips the
// fresh-restart retry — rerunning the identical iteration cannot help —
// and escalates directly. Every decision is derived from quantities
// replicated across ranks (convergence flags and breakdown detection flow
// through global reductions), so all ranks walk the ladder in lockstep;
// ResilientSolve must be called collectively, like Distributed. The
// returned RecoveryLog lists every attempt.
func ResilientSolve(c *dist.Comm, s *dsys.System, stages []Stage, b, x []float64, opt Options) (Result, *RecoveryLog) {
	log := &RecoveryLog{}
	var res Result
	first := true
	for si, st := range stages {
		var prec Prec
		if st.Prec != nil {
			prec = st.Prec()
		}
		for attempt := 1; attempt <= 2; attempt++ {
			if !first {
				// A failed attempt may have left NaNs in the iterate;
				// restart from zero.
				for i := range x {
					x[i] = 0
				}
			}
			first = false
			var sp dist.SpanHandle
			if c.ObsEnabled() {
				sp = c.BeginSpan(obs.KindAttempt, fmt.Sprintf("%s#%d", st.Name, attempt))
			}
			res = Distributed(c, s, prec, b, x, opt)
			if c.ObsEnabled() {
				c.EndSpan(sp)
				c.ObsCount("recovery_attempts", 1)
				if res.Err != nil {
					c.ObsCount("recovery_attempt_failures", 1)
				}
			}
			log.Steps = append(log.Steps, RecoveryStep{
				Stage:      st.Name,
				Attempt:    attempt,
				Iterations: res.Iterations,
				Converged:  res.Converged,
				Err:        res.Err,
			})
			if res.Converged {
				log.Recovered = si > 0 || attempt > 1
				return res, log
			}
			if res.Err == nil {
				break // ran out of iterations cleanly: escalate, don't retry
			}
		}
	}
	return res, log
}
