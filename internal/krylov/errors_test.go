package krylov

import (
	"errors"
	"math"
	"strings"
	"testing"

	"parapre/internal/paranoid"
	"parapre/internal/sparse"
)

// ident is the identity operator, handy for constructing exact systems.
func ident(y, x []float64) { copy(y, x) }

func TestGMRESBreakdownOnNaNRHS(t *testing.T) {
	n := 8
	b := make([]float64, n)
	b[3] = math.NaN()
	x := make([]float64, n)
	res := GMRES(n, ident, nil, sparse.Dot, b, x, Options{Restart: 4, MaxIters: 20, Tol: 1e-10})
	if !res.Breakdown {
		t.Fatalf("expected breakdown on NaN rhs: %+v", res)
	}
	if !errors.Is(res.Err, ErrBreakdown) {
		t.Fatalf("Err does not wrap ErrBreakdown: %v", res.Err)
	}
	var be *BreakdownError
	if !errors.As(res.Err, &be) {
		t.Fatalf("Err is not a *BreakdownError: %v", res.Err)
	}
	if be.Method != "GMRES" || be.Iteration != 0 {
		t.Fatalf("unexpected breakdown metadata: %+v", be)
	}
	if res.Converged {
		t.Fatalf("NaN solve must not report convergence: %+v", res)
	}
}

func TestGMRESBreakdownOnPoisonedOperator(t *testing.T) {
	// The operator behaves for the first application (the residual) and
	// then starts emitting NaN, poisoning the Arnoldi vector norms.
	n := 6
	calls := 0
	poison := func(y, x []float64) {
		copy(y, x)
		calls++
		if calls > 1 {
			y[0] = math.NaN()
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i)
	}
	x := make([]float64, n)
	if paranoid.Enabled {
		// Under the paranoid tag the NaN trips an invariant check inside
		// the Arnoldi loop before the graceful breakdown path can run —
		// the fail-fast behavior that tag exists for.
		defer func() {
			r := recover()
			if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "paranoid: ") {
				t.Fatalf("expected a paranoid panic, got %v", r)
			}
		}()
	}
	res := GMRES(n, poison, nil, sparse.Dot, b, x, Options{Restart: 4, MaxIters: 20, Tol: 1e-12})
	if paranoid.Enabled {
		t.Fatal("paranoid run must panic on the poisoned operator")
	}
	if !res.Breakdown || res.Converged {
		t.Fatalf("expected unconverged breakdown: %+v", res)
	}
	if !errors.Is(res.Err, ErrBreakdown) {
		t.Fatalf("Err does not wrap ErrBreakdown: %v", res.Err)
	}
	if !math.IsNaN(res.Final) {
		t.Fatalf("poisoned solve must report NaN residual, got %g", res.Final)
	}
}

func TestFGMRESBreakdownReportsFlexibleMethod(t *testing.T) {
	n := 5
	b := make([]float64, n)
	b[0] = math.Inf(1)
	x := make([]float64, n)
	res := GMRES(n, ident, nil, sparse.Dot, b, x,
		Options{Restart: 3, MaxIters: 10, Tol: 1e-10, Flexible: true})
	var be *BreakdownError
	if !errors.As(res.Err, &be) {
		t.Fatalf("expected a BreakdownError, got %v", res.Err)
	}
	if be.Method != "FGMRES" {
		t.Fatalf("flexible solve must name FGMRES, got %q", be.Method)
	}
	if !strings.Contains(be.Error(), "FGMRES") || !strings.Contains(be.Error(), "iteration 0") {
		t.Fatalf("unhelpful breakdown message: %q", be.Error())
	}
}

func TestGMRESSingularOperatorBreaksDownCleanly(t *testing.T) {
	// The zero operator: the Krylov space degenerates immediately and the
	// solver must stop with a diagnosable breakdown instead of dividing by
	// a vanishing Givens pivot.
	n := 4
	zero := func(y, x []float64) {
		for i := range y {
			y[i] = 0
		}
	}
	b := []float64{1, 2, 3, 4}
	x := make([]float64, n)
	res := GMRES(n, zero, nil, sparse.Dot, b, x, Options{Restart: 4, MaxIters: 8, Tol: 1e-10})
	if res.Converged {
		t.Fatalf("singular system must not converge: %+v", res)
	}
	if !res.Breakdown || !errors.Is(res.Err, ErrBreakdown) {
		t.Fatalf("expected breakdown error on singular operator: %+v", res)
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("iterate poisoned at %d: %v", i, x)
		}
	}
}

func TestGMRESLuckyBreakdownLeavesErrNil(t *testing.T) {
	// With the identity operator the first Krylov step is exact: the solver
	// hits hn == 0 having already converged — a lucky breakdown.
	n := 6
	b := []float64{1, -2, 3, -4, 5, -6}
	x := make([]float64, n)
	res := GMRES(n, ident, nil, sparse.Dot, b, x, Options{Restart: 4, MaxIters: 10, Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("identity solve must converge: %+v", res)
	}
	if res.Err != nil {
		t.Fatalf("lucky breakdown must leave Err nil, got %v", res.Err)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("wrong solution at %d: got %g want %g", i, x[i], b[i])
		}
	}
}

func TestCGBreakdownOnNaNRHS(t *testing.T) {
	n := 4
	b := make([]float64, n)
	b[0] = math.NaN()
	x := make([]float64, n)
	res := CG(n, ident, nil, sparse.Dot, b, x, Options{MaxIters: 10, Tol: 1e-10})
	var be *BreakdownError
	if !errors.As(res.Err, &be) {
		t.Fatalf("expected a BreakdownError, got %v", res.Err)
	}
	if be.Method != "CG" || be.Iteration != 0 {
		t.Fatalf("unexpected breakdown metadata: %+v", be)
	}
}

func TestCGIndefiniteSetsErr(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	a := coo.ToCSR()
	x := make([]float64, 2)
	res := CG(2, func(y, xx []float64) { a.MulVecTo(y, xx) }, nil, sparse.Dot,
		[]float64{0, 1}, x, Options{MaxIters: 10, Tol: 1e-10})
	if !errors.Is(res.Err, ErrBreakdown) {
		t.Fatalf("indefinite CG must report ErrBreakdown, got %v", res.Err)
	}
	var be *BreakdownError
	if !errors.As(res.Err, &be) || be.Quantity == "" {
		t.Fatalf("breakdown must name the offending quantity: %+v", res.Err)
	}
}

func TestCGHealthySolveLeavesErrNil(t *testing.T) {
	// Guard against over-eager breakdown detection on a well-posed SPD
	// system.
	coo := sparse.NewCOO(3, 3, 5)
	coo.Add(0, 0, 4)
	coo.Add(1, 1, 4)
	coo.Add(2, 2, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	a := coo.ToCSR()
	x := make([]float64, 3)
	res := CG(3, func(y, xx []float64) { a.MulVecTo(y, xx) }, nil, sparse.Dot,
		[]float64{1, 1, 1}, x, Options{MaxIters: 50, Tol: 1e-12})
	if !res.Converged || res.Err != nil {
		t.Fatalf("healthy SPD solve failed: %+v (err %v)", res, res.Err)
	}
}
