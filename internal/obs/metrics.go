package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Prometheus-style text exporter: a point-in-time snapshot of every
// counter the collector holds, in the classic exposition format
// (`name{label="value"} 1.23` lines). There is no scrape server — the
// virtual-time runs are batch jobs — but the format means the snapshots
// diff cleanly, grep cleanly, and load into any Prometheus tooling.
//
// Counter naming: collector-level counters (driver totals such as
// iterations or restarts) carry only the extra labels; per-rank counters
// gain a rank="r" label; phase-attributed counters ("flops/spmv") are
// split into the base name plus a phase label.

// metricPrefix namespaces every exported sample.
const metricPrefix = "parapre_"

// WriteMetrics writes the counter snapshot in Prometheus text format.
// extraLabels (may be nil) are attached to every sample — the multi-solve
// ippsbench export uses a solve="…" label to keep runs apart. Must be
// called after the recording world has finished.
func (c *Collector) WriteMetrics(w io.Writer, extraLabels map[string]string) error {
	if c == nil {
		return nil
	}
	ew := &errWriter{w: bufio.NewWriter(w)}
	c.mu.Lock()
	keys, vals := c.snapshotCounters()
	c.mu.Unlock()
	for _, k := range keys {
		name, phase := splitPhase(k.name)
		var labels []string
		for _, ln := range sortedKeys(extraLabels) {
			labels = append(labels, fmt.Sprintf("%s=%s", ln, strconv.Quote(extraLabels[ln])))
		}
		if phase != "" {
			labels = append(labels, fmt.Sprintf("phase=%q", phase))
		}
		if k.rank >= 0 {
			labels = append(labels, fmt.Sprintf("rank=%q", strconv.Itoa(k.rank)))
		}
		sample := metricPrefix + sanitizeMetricName(name)
		if len(labels) > 0 {
			sample += "{" + strings.Join(labels, ",") + "}"
		}
		ew.writeString(sample + " " + strconv.FormatFloat(vals[k], 'g', -1, 64) + "\n")
	}
	if ew.err != nil {
		return ew.err
	}
	return ew.w.Flush()
}

// WriteMetricsFile writes the snapshot to path.
func (c *Collector) WriteMetricsFile(path string, extraLabels map[string]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WriteMetrics(f, extraLabels); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// splitPhase splits a phase-attributed counter name ("flops/spmv") into
// the base name and the phase label; names without a slash pass through.
func splitPhase(name string) (base, phase string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return name, ""
}

// sanitizeMetricName maps arbitrary counter names onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:].
func sanitizeMetricName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
