package sparse

import "math"

// Vector kernels. These are the three Krylov kernel families the paper
// lists in §1: vector update, inner product, and (in csr.go) matrix-vector
// product. All operate on raw []float64 so the distributed layer can reuse
// them on local slices.

// Dot returns the inner product xᵀy.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled sum of squares for overflow safety on extreme inputs.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum-magnitude entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scal computes x *= a.
func Scal(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CopyTo copies src into dst (lengths must match).
func CopyTo(dst, src []float64) {
	copy(dst, src)
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Sub computes z = x − y into a fresh slice.
func Sub(x, y []float64) []float64 {
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}
