// Negative errtype fixture: the documented idioms — sentinels, typed
// error structs, %w wraps, and passthrough of callee errors. The
// analyzer must stay silent.
package ilu

import (
	"errors"
	"fmt"
)

// ErrBreakdown is the documented sentinel.
var ErrBreakdown = errors.New("ilu: breakdown")

// PivotError is the documented typed error.
type PivotError struct{ Row int }

func (e *PivotError) Error() string { return fmt.Sprintf("ilu: zero pivot at row %d", e.Row) }
func (e *PivotError) Unwrap() error { return ErrBreakdown }

// Factor returns only typed errors, wraps, sentinels and passthroughs.
func Factor(n int) error {
	if n < 0 {
		return ErrBreakdown
	}
	if n == 0 {
		return &PivotError{Row: n}
	}
	if n == 1 {
		return fmt.Errorf("factor of order %d: %w", n, ErrBreakdown)
	}
	if err := probe(n); err != nil {
		return err // passthrough from a callee: not fresh
	}
	return nil
}

func probe(n int) error {
	if n > 100 {
		return &PivotError{Row: n}
	}
	return nil
}
