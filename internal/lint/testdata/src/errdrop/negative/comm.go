package negative

// Handled (or explicitly discarded) uses of the supervised-runtime API
// shapes: errdrop must stay silent on all of these.

type comm struct{}

func (comm) RecvErr(from, tag int) ([]float64, error) { return nil, nil }

type system struct{}

func (system) ExchangeErr(c comm, ext []float64) error     { return nil }
func (system) MatVecErr(c comm, y, x, ext []float64) error { return nil }

func runOpts(p int, fn func(comm)) ([]int, error) { return nil, nil }

// Receive propagates the typed communication error.
func Receive(c comm) ([]float64, error) {
	got, err := c.RecvErr(0, 1)
	if err != nil {
		return nil, err
	}
	return got, nil
}

// Step checks both strict-exchange errors.
func Step(c comm, s system, y, x, ext []float64) error {
	if err := s.ExchangeErr(c, ext); err != nil {
		return err
	}
	return s.MatVecErr(c, y, x, ext)
}

// Launch explicitly discards the runtime report in an assignment — the
// deliberate-discard idiom the analyzer accepts.
func Launch() []int {
	stats, _ := runOpts(4, func(comm) {})
	return stats
}
