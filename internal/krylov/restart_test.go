package krylov

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/sparse"
)

func TestFullGMRESEqualsRestartedWhenNoRestartHit(t *testing.T) {
	// If the solver converges within one cycle, GMRES(m) and GMRES(2m)
	// produce identical iterates.
	rng := rand.New(rand.NewSource(40))
	a, b, _ := randSystem(rng, 30, 0.2, true)
	run := func(m int) ([]float64, Result) {
		x := make([]float64, 30)
		res := SolveCSR(a, nil, b, x, Options{Restart: m, MaxIters: 100, Tol: 1e-10})
		return x, res
	}
	x1, r1 := run(40)
	x2, r2 := run(80)
	if !r1.Converged || !r2.Converged {
		t.Fatal("no convergence")
	}
	if r1.Iterations != r2.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("iterates differ despite identical Krylov process")
		}
	}
}

func TestFGMRESMatchesGMRESWithConstantPreconditioner(t *testing.T) {
	// With a fixed (linear) preconditioner, flexible and plain
	// right-preconditioned GMRES generate the same Krylov space; the
	// iteration counts must match.
	rng := rand.New(rand.NewSource(41))
	a, b, _ := randSystem(rng, 40, 0.15, false)
	diag := a.Diagonal()
	prec := func(z, r []float64) {
		for i := range z {
			z[i] = r[i] / diag[i]
		}
	}
	run := func(flex bool) Result {
		x := make([]float64, 40)
		return SolveCSR(a, prec, b, x, Options{Restart: 20, MaxIters: 300, Tol: 1e-9, Flexible: flex})
	}
	plain := run(false)
	flex := run(true)
	if !plain.Converged || !flex.Converged {
		t.Fatal("no convergence")
	}
	if plain.Iterations != flex.Iterations {
		t.Fatalf("FGMRES (%d) and GMRES (%d) differ with a constant preconditioner",
			flex.Iterations, plain.Iterations)
	}
}

func TestGMRESMonotoneResidualWithinCycle(t *testing.T) {
	// The GMRES minimization property: within one restart cycle the
	// residual estimates never increase.
	rng := rand.New(rand.NewSource(42))
	a, b, _ := randSystem(rng, 60, 0.08, true)
	x := make([]float64, 60)
	res := SolveCSR(a, nil, b, x, Options{Restart: 60, MaxIters: 60, Tol: 1e-12, RecordHistory: true})
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-12) {
			t.Fatalf("residual increased within cycle at %d", i)
		}
	}
}

func TestGMRESSolvesSingularConsistentSystem(t *testing.T) {
	// A singular but consistent system (Neumann-like: A·1 = 0, b ⊥ 1):
	// GMRES must reduce the residual without blowing up, even if the
	// solution is only determined up to a constant.
	n := 10
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		coo.Add(i, (i+1)%n, -1)
		coo.Add(i, (i+n-1)%n, -1)
	}
	a := coo.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(2 * math.Pi * float64(i) / float64(n)) // zero mean
	}
	x := make([]float64, n)
	res := SolveCSR(a, nil, b, x, Options{Restart: 20, MaxIters: 100, Tol: 1e-8})
	r := append([]float64(nil), b...)
	a.MulVecSub(r, x)
	if rel := sparse.Norm2(r) / sparse.Norm2(b); rel > 1e-6 {
		t.Fatalf("residual %v on consistent singular system (res=%+v)", rel, res)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite iterate")
		}
	}
}

func TestDistributedHistoryIdenticalAcrossRanks(t *testing.T) {
	const p = 3
	systems, _, _ := buildDistributedPoisson(t, 11, p)
	histories := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		res := Distributed(c, s, nil, s.B, x, Options{
			Restart: 20, MaxIters: 500, Tol: 1e-8, RecordHistory: true,
		})
		histories[c.Rank()] = res.History
	})
	for r := 1; r < p; r++ {
		if len(histories[r]) != len(histories[0]) {
			t.Fatalf("history lengths differ: %d vs %d", len(histories[r]), len(histories[0]))
		}
		for i := range histories[0] {
			if histories[r][i] != histories[0][i] {
				t.Fatalf("histories diverge at rank %d step %d", r, i)
			}
		}
	}
}
