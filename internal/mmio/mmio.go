// Package mmio reads and writes Matrix Market files — the exchange format
// of the SPARSKIT/pARMS era the paper's software stack comes from. It
// supports coordinate-format real matrices (general, symmetric and
// skew-symmetric, plus pattern matrices read as 1.0 entries) and
// array-format dense vectors, which is what the solver drivers need to
// run the paper's preconditioners on arbitrary user matrices.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"parapre/internal/sparse"
)

// maxDim and maxNNZ bound accepted inputs: parsing is O(rows + nnz) in
// memory, so unbounded headers would let a tiny hostile file allocate
// gigabytes.
const (
	maxDim = 1 << 24
	maxNNZ = 1 << 28
)

// header fields of the %%MatrixMarket banner.
type header struct {
	object   string // matrix
	format   string // coordinate | array
	field    string // real | integer | pattern
	symmetry string // general | symmetric | skew-symmetric
}

func parseHeader(line string) (header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return header{}, fmt.Errorf("mmio: malformed banner %q", line)
	}
	h := header{object: fields[1], format: fields[2], field: fields[3], symmetry: fields[4]}
	if h.object != "matrix" {
		return h, fmt.Errorf("mmio: unsupported object %q", h.object)
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("mmio: unsupported field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return h, fmt.Errorf("mmio: unsupported symmetry %q", h.symmetry)
	}
	return h, nil
}

// nextDataLine returns the next non-comment, non-blank line.
func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// ReadMatrix parses a Matrix Market matrix. Symmetric and skew-symmetric
// storage is expanded to full form; pattern entries become 1.0.
func ReadMatrix(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	if h.format != "coordinate" {
		return nil, fmt.Errorf("mmio: matrices must be in coordinate format, got %q", h.format)
	}
	sizeLine, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("mmio: missing size line: %w", err)
	}
	var rows, cols, nnz int
	if _, err := fmt.Sscan(sizeLine, &rows, &cols, &nnz); err != nil {
		return nil, fmt.Errorf("mmio: bad size line %q: %w", sizeLine, err)
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: bad dimensions %d×%d nnz=%d", rows, cols, nnz)
	}
	if rows > maxDim || cols > maxDim || nnz > maxNNZ {
		return nil, fmt.Errorf("mmio: dimensions %d×%d nnz=%d exceed the supported maximum (%d / %d)",
			rows, cols, nnz, maxDim, maxNNZ)
	}
	coo := sparse.NewCOO(rows, cols, nnz*2)
	for k := 0; k < nnz; k++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d of %d: %w", k+1, nnz, err)
		}
		fields := strings.Fields(line)
		wantFields := 3
		if h.field == "pattern" {
			wantFields = 2
		}
		if len(fields) < wantFields {
			return nil, fmt.Errorf("mmio: entry %d malformed: %q", k+1, line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d row: %w", k+1, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d col: %w", k+1, err)
		}
		v := 1.0
		if h.field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d value: %w", k+1, err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mmio: entry %d index (%d,%d) out of range", k+1, i, j)
		}
		coo.Add(i-1, j-1, v)
		if i != j {
			switch h.symmetry {
			case "symmetric":
				coo.Add(j-1, i-1, v)
			case "skew-symmetric":
				coo.Add(j-1, i-1, -v)
			}
		}
	}
	return coo.ToCSR(), nil
}

// WriteMatrix writes a in coordinate real general format.
func WriteMatrix(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k])
		}
	}
	return bw.Flush()
}

// ReadVector parses an array-format dense vector (n×1 real matrix).
func ReadVector(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	h, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	if h.format != "array" || h.field == "pattern" {
		return nil, fmt.Errorf("mmio: vectors must be real array format")
	}
	sizeLine, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("mmio: missing size line: %w", err)
	}
	var rows, cols int
	if _, err := fmt.Sscan(sizeLine, &rows, &cols); err != nil {
		return nil, fmt.Errorf("mmio: bad size line %q: %w", sizeLine, err)
	}
	if cols != 1 {
		return nil, fmt.Errorf("mmio: expected a column vector, got %d×%d", rows, cols)
	}
	if rows < 0 || rows > maxDim {
		return nil, fmt.Errorf("mmio: vector length %d out of range", rows)
	}
	out := make([]float64, rows)
	for k := 0; k < rows; k++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("mmio: value %d of %d: %w", k+1, rows, err)
		}
		out[k], err = strconv.ParseFloat(strings.Fields(line)[0], 64)
		if err != nil {
			return nil, fmt.Errorf("mmio: value %d: %w", k+1, err)
		}
	}
	return out, nil
}

// WriteVector writes x as an array-format column vector.
func WriteVector(w io.Writer, x []float64) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix array real general")
	fmt.Fprintf(bw, "%d 1\n", len(x))
	for _, v := range x {
		fmt.Fprintf(bw, "%.17g\n", v)
	}
	return bw.Flush()
}
