// Package schur implements the distributed Schur-complement machinery of
// the paper's §2: the global interface system (eq. 8)
//
//	S·y = g′,  S = blockdiag(S_i) + offdiag(E_ij),
//
// applied matrix-free across ranks. Each rank contributes its local rows:
// S_i acting on its own interface unknowns (either implicitly through
// C_i − E_i·B_i⁻¹·F_i with an approximate B-solve, or through an
// explicitly assembled local Schur matrix), plus the E_ij couplings to
// neighbors' interface unknowns, refreshed by an interface-level exchange.
package schur

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// Iface is one rank's view of the global interface (Schur) system. The
// interface vector has length N (this rank's share); external values from
// neighbors extend it by the system's NExt slots.
type Iface struct {
	sys *dsys.System
	n   int

	// applyLocal computes y = S_i·x for this rank's diagonal block.
	applyLocal func(y, x []float64)
	localFlops float64

	// eExt couples this rank's interface rows to external interface
	// unknowns, in external-buffer order.
	eExt *sparse.CSR

	// sendMap translates dsys send indices (local subdomain numbering) to
	// interface-vector indices.
	sendMap map[int]int

	ext []float64 // scratch, length NExt
	tag int
}

const tagSchur = 200

// NewImplicit builds the Schur 1 style operator: S_i is applied as
// C_i·x − E_i·(B̃_i⁻¹·(F_i·x)), where B̃_i⁻¹ is the supplied approximate
// solve with the internal block (one ILUT backward/forward per
// application).
func NewImplicit(s *dsys.System, bSolve *ilu.LU) (*Iface, error) {
	c := s.BlockC()
	e := s.BlockE()
	f := s.BlockF()
	nI := s.NIface()
	tmpF := make([]float64, s.NInt)
	tmpB := make([]float64, s.NInt)
	op := &Iface{
		sys:  s,
		n:    nI,
		eExt: s.BlockEExt(),
		applyLocal: func(y, x []float64) {
			c.MulVecTo(y, x)
			if s.NInt > 0 {
				f.MulVecTo(tmpF, x)
				bSolve.Solve(tmpB, tmpF)
				e.MulVecSub(y, tmpB)
			}
		},
		localFlops: 2 * float64(c.NNZ()+e.NNZ()+f.NNZ()+bSolve.NNZ()),
		tag:        tagSchur,
	}
	if err := op.buildSendMap(func(l int) (int, bool) {
		if l < s.NInt {
			return 0, false
		}
		return l - s.NInt, true
	}); err != nil {
		return nil, err
	}
	return op, nil
}

// NewExplicit builds the operator from an explicitly assembled local
// Schur matrix sLoc (n×n over this rank's interface unknowns) together
// with the external coupling block eExt (n×NExt). toIface maps a dsys
// local index (≥ NInt) to its interface-vector index; it defines how the
// neighbors' requests are served. This is the form used by the Schur 2
// (expanded Schur) preconditioner.
func NewExplicit(s *dsys.System, sLoc, eExt *sparse.CSR, toIface func(local int) (int, bool)) (*Iface, error) {
	if sLoc.Rows != sLoc.Cols {
		return nil, fmt.Errorf("schur: explicit local Schur must be square, got %d×%d", sLoc.Rows, sLoc.Cols)
	}
	if eExt.Rows != sLoc.Rows || eExt.Cols != s.NExt() {
		return nil, fmt.Errorf("schur: eExt is %d×%d, want %d×%d", eExt.Rows, eExt.Cols, sLoc.Rows, s.NExt())
	}
	op := &Iface{
		sys:        s,
		n:          sLoc.Rows,
		eExt:       eExt,
		applyLocal: func(y, x []float64) { sLoc.MulVecTo(y, x) },
		localFlops: 2 * float64(sLoc.NNZ()),
		tag:        tagSchur + 1,
	}
	if err := op.buildSendMap(toIface); err != nil {
		return nil, err
	}
	return op, nil
}

func (o *Iface) buildSendMap(toIface func(int) (int, bool)) error {
	o.sendMap = make(map[int]int)
	for _, nb := range o.sys.Neigh {
		for _, l := range nb.SendIdx {
			ii, ok := toIface(l)
			if !ok {
				return fmt.Errorf("schur: rank %d: neighbor %d requests local %d, which is not an interface unknown (structurally unsymmetric partition?)",
					o.sys.Rank, nb.Rank, l)
			}
			o.sendMap[l] = ii
		}
	}
	o.ext = make([]float64, o.sys.NExt())
	return nil
}

// N returns the length of this rank's interface vector.
func (o *Iface) N() int { return o.n }

// Exchange refreshes the external interface values for the interface
// vector x.
func (o *Iface) Exchange(c *dist.Comm, x []float64) {
	s := o.sys
	buf := make([]float64, 0, 64)
	for _, nb := range s.Neigh {
		if len(nb.SendIdx) == 0 {
			continue
		}
		buf = buf[:0]
		for _, l := range nb.SendIdx {
			buf = append(buf, x[o.sendMap[l]])
		}
		c.Send(nb.Rank, o.tag, buf)
	}
	for _, nb := range s.Neigh {
		if nb.RecvLen == 0 {
			continue
		}
		got := c.Recv(nb.Rank, o.tag)
		copy(o.ext[nb.RecvOff:nb.RecvOff+nb.RecvLen], got)
	}
}

// MatVec computes y = S·x (this rank's rows of the global interface
// product), including the neighbor couplings.
func (o *Iface) MatVec(c *dist.Comm, y, x []float64) {
	o.Exchange(c, x)
	o.applyLocal(y, x)
	o.eExt.MulVecAdd(y, 1, o.ext)
	c.Compute(o.localFlops + 2*float64(o.eExt.NNZ()))
}

// Dot is the global inner product over the distributed interface vectors.
func (o *Iface) Dot(c *dist.Comm, x, y []float64) float64 {
	local := sparse.Dot(x, y)
	c.Compute(2 * float64(o.n))
	return c.AllReduceSum(local)
}
