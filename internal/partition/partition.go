// Package partition divides the nodes of a grid (equivalently, the rows of
// the distributed matrix) among P subdomains. It provides the two schemes
// the paper uses: a general graph partitioner in the spirit of Metis
// (greedy graph growing, recursive bisection, Fiduccia–Mattheyses boundary
// refinement, seeded randomness), and the "simple" partitioner of §5.1
// that cuts structured grids into rectangles or boxes.
//
// The paper observes (§4.3) that the two parallel machines partitioned the
// grid differently because their random number generators differed, which
// changed the iteration counts. The seed parameter reproduces that
// machine dependence deterministically.
package partition

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected graph in CSR adjacency form: the neighbors of
// vertex i are Adj[Ptr[i]:Ptr[i+1]]. Edges must be symmetric.
type Graph struct {
	Ptr []int
	Adj []int
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Ptr) - 1 }

// Neighbors returns the adjacency list of vertex v.
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// PartitionError reports an invalid partitioning request: a
// non-positive part count, or a malformed adjacency structure. It is the
// package's documented typed error, so callers can match on it instead
// of recovering a panic or string-matching.
type PartitionError struct {
	P      int    // requested part count
	N      int    // vertex count of the graph
	Reason string // what was wrong with the request
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("partition: p=%d over %d vertices: %s", e.P, e.N, e.Reason)
}

// General partitions the graph into p parts using seeded greedy graph
// growing with recursive bisection and FM refinement. It returns part,
// with part[v] ∈ [0, p) for every vertex v. Every part is non-empty
// whenever p ≤ NumVertices; when p exceeds the vertex count, vertex v is
// assigned to part v and the parts ≥ NumVertices stay empty — there are
// simply not enough vertices to populate them (the degenerate request is
// deliberately legal: empty ranks are supported downstream). A
// non-positive p or a malformed graph returns a *PartitionError.
func General(g *Graph, p int, seed int64) ([]int, error) {
	n := g.NumVertices()
	if p < 1 {
		return nil, &PartitionError{P: p, N: n, Reason: "part count must be positive"}
	}
	if len(g.Ptr) == 0 || g.Ptr[n] != len(g.Adj) {
		return nil, &PartitionError{P: p, N: n, Reason: "malformed adjacency structure"}
	}
	part := make([]int, n)
	if p == 1 {
		return part, nil
	}
	if p >= n {
		for v := range part {
			part[v] = v
		}
		return part, nil
	}
	verts := make([]int, n)
	for i := range verts {
		verts[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	bisect(g, verts, 0, p, part, rng)
	return part, nil
}

// bisect assigns part ids [base, base+parts) to the vertex set verts.
func bisect(g *Graph, verts []int, base, parts int, part []int, rng *rand.Rand) {
	if parts == 1 {
		for _, v := range verts {
			part[v] = base
		}
		return
	}
	left := parts / 2
	right := parts - left
	// Each side must receive at least as many vertices as parts it will
	// be split into, or deeper recursion would leave empty parts.
	targetLeft := len(verts) * left / parts
	if targetLeft < left {
		targetLeft = left
	}
	if len(verts)-targetLeft < right {
		targetLeft = len(verts) - right
	}

	inSet := makeMembership(g.NumVertices(), verts)
	side := growRegion(g, verts, targetLeft, inSet, rng)
	refine(g, verts, side, inSet, targetLeft, left, right)

	var lv, rv []int
	for _, v := range verts {
		if side[v] {
			lv = append(lv, v)
		} else {
			rv = append(rv, v)
		}
	}
	// Degenerate growth (disconnected pieces) can starve one side; steal
	// arbitrarily to keep every downstream part satisfiable.
	for len(lv) < left && len(rv) > right {
		lv = append(lv, rv[len(rv)-1])
		rv = rv[:len(rv)-1]
	}
	for len(rv) < right && len(lv) > left {
		rv = append(rv, lv[len(lv)-1])
		lv = lv[:len(lv)-1]
	}
	bisect(g, lv, base, left, part, rng)
	bisect(g, rv, base+left, right, part, rng)
}

func makeMembership(n int, verts []int) []bool {
	in := make([]bool, n)
	for _, v := range verts {
		in[v] = true
	}
	return in
}

// growRegion grows a BFS region of the requested size from a random start,
// restarting from a new random seed vertex whenever the frontier dies
// (disconnected subgraphs). It returns the membership of the grown side.
func growRegion(g *Graph, verts []int, target int, inSet []bool, rng *rand.Rand) []bool {
	side := make([]bool, len(inSet))
	if target <= 0 {
		return side
	}
	taken := 0
	visited := make([]bool, len(inSet))
	queue := make([]int, 0, target)
	pick := func() int {
		for tries := 0; tries < 32; tries++ {
			v := verts[rng.Intn(len(verts))]
			if !visited[v] {
				return v
			}
		}
		for _, v := range verts {
			if !visited[v] {
				return v
			}
		}
		return -1
	}
	for taken < target {
		s := pick()
		if s < 0 {
			break
		}
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 && taken < target {
			v := queue[0]
			queue = queue[1:]
			side[v] = true
			taken++
			for _, w := range g.Neighbors(v) {
				if inSet[w] && !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return side
}

// refine runs Fiduccia–Mattheyses-style passes: repeatedly move the
// boundary vertex with the best gain to the other side, allowing moves
// that keep the left-side size within ±imbalance of the target, and keep
// the best configuration seen. A few passes suffice for FEM graphs.
func refine(g *Graph, verts []int, side []bool, inSet []bool, targetLeft, minLeft, minRight int) {
	const passes = 4
	imbalance := len(verts)/20 + 1
	leftSize := 0
	for _, v := range verts {
		if side[v] {
			leftSize++
		}
	}
	gain := func(v int) int {
		ext, int_ := 0, 0
		for _, w := range g.Neighbors(v) {
			if !inSet[w] {
				continue
			}
			if side[w] == side[v] {
				int_++
			} else {
				ext++
			}
		}
		return ext - int_
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for _, v := range verts {
			gv := gain(v)
			if gv <= 0 {
				continue
			}
			// Balance guard, with hard floors so each side keeps enough
			// vertices for its downstream parts.
			if side[v] {
				if leftSize-1 < targetLeft-imbalance || leftSize-1 < minLeft {
					continue
				}
				leftSize--
			} else {
				if leftSize+1 > targetLeft+imbalance || len(verts)-(leftSize+1) < minRight {
					continue
				}
				leftSize++
			}
			side[v] = !side[v]
			moved = true
		}
		if !moved {
			break
		}
	}
}

// EdgeCut counts the edges whose endpoints lie in different parts. Each
// undirected edge is counted once.
func EdgeCut(g *Graph, part []int) int {
	cut := 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if w > v && part[v] != part[w] {
				cut++
			}
		}
	}
	return cut
}

// Sizes returns the number of vertices in each of the p parts.
func Sizes(part []int, p int) []int {
	s := make([]int, p)
	for _, q := range part {
		s[q]++
	}
	return s
}

// Imbalance returns max(sizes)·p/n, the standard load-imbalance factor
// (1.0 is perfect).
func Imbalance(part []int, p int) float64 {
	s := Sizes(part, p)
	max := 0
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return float64(max) * float64(p) / float64(len(part))
}
