package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUnitSquareTriCounts(t *testing.T) {
	for _, m := range []int{2, 3, 9, 33} {
		g := UnitSquareTri(m)
		if err := g.Check(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got, want := g.NumNodes(), m*m; got != want {
			t.Errorf("m=%d: %d nodes, want %d", m, got, want)
		}
		if got, want := g.NumElems(), 2*(m-1)*(m-1); got != want {
			t.Errorf("m=%d: %d elems, want %d", m, got, want)
		}
	}
}

func TestUnitSquareTriPaperSizeFormula(t *testing.T) {
	// The paper's grid is 1001×1001 = 1,002,001 points. Verify the count
	// formula at that size without building the mesh.
	m := 1001
	if m*m != 1002001 {
		t.Fatal("size formula broken")
	}
}

func TestUnitSquareTriAreaSums(t *testing.T) {
	g := UnitSquareTri(11)
	var total float64
	for e := 0; e < g.NumElems(); e++ {
		a := triArea(g, g.Elem(e))
		if a <= 0 {
			t.Fatalf("element %d has non-positive area %v", e, a)
		}
		total += a
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("areas sum to %v, want 1", total)
	}
}

func TestUnitCubeTetCounts(t *testing.T) {
	for _, m := range []int{2, 3, 5} {
		g := UnitCubeTet(m)
		if err := g.Check(); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got, want := g.NumNodes(), m*m*m; got != want {
			t.Errorf("m=%d: %d nodes, want %d", m, got, want)
		}
		if got, want := g.NumElems(), 6*(m-1)*(m-1)*(m-1); got != want {
			t.Errorf("m=%d: %d elems, want %d", m, got, want)
		}
	}
}

func tetVolume(g *Mesh, el []int) float64 {
	a, b, c, d := g.Coord(el[0]), g.Coord(el[1]), g.Coord(el[2]), g.Coord(el[3])
	var v [3][3]float64
	for k := 0; k < 3; k++ {
		v[0][k] = b[k] - a[k]
		v[1][k] = c[k] - a[k]
		v[2][k] = d[k] - a[k]
	}
	det := v[0][0]*(v[1][1]*v[2][2]-v[1][2]*v[2][1]) -
		v[0][1]*(v[1][0]*v[2][2]-v[1][2]*v[2][0]) +
		v[0][2]*(v[1][0]*v[2][1]-v[1][1]*v[2][0])
	return math.Abs(det) / 6
}

func TestUnitCubeTetVolumeSums(t *testing.T) {
	g := UnitCubeTet(4)
	var total float64
	for e := 0; e < g.NumElems(); e++ {
		vol := tetVolume(g, g.Elem(e))
		if vol <= 0 {
			t.Fatalf("element %d has non-positive volume", e)
		}
		total += vol
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("volumes sum to %v, want 1", total)
	}
}

func TestKuhnSubdivisionConforming(t *testing.T) {
	// Every interior facet must be shared by exactly two tets; boundary
	// facets by exactly one. BoundaryNodes relies on this, so check the
	// node-level consequence: the boundary of the unit cube mesh is
	// exactly the set of nodes with a coordinate at 0 or 1.
	g := UnitCubeTet(4)
	onB := g.BoundaryNodes()
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		want := false
		for _, v := range c {
			if v == 0 || v == 1 {
				want = true
			}
		}
		if onB[n] != want {
			t.Fatalf("node %d at %v: boundary=%v, want %v", n, c, onB[n], want)
		}
	}
}

func TestSquareBoundaryNodes(t *testing.T) {
	g := UnitSquareTri(9)
	onB := g.BoundaryNodes()
	count := 0
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		want := c[0] == 0 || c[0] == 1 || c[1] == 0 || c[1] == 1
		if onB[n] != want {
			t.Fatalf("node %d at %v: boundary=%v, want %v", n, c, onB[n], want)
		}
		if onB[n] {
			count++
		}
	}
	if want := 4*9 - 4; count != want {
		t.Fatalf("boundary node count = %d, want %d", count, want)
	}
}

func TestQuarterRing(t *testing.T) {
	g := QuarterRing(9, 17)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 9*17 {
		t.Fatalf("node count %d", g.NumNodes())
	}
	// All nodes must have radius in [1, 2] and angle in [0, π/2].
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		r := math.Hypot(c[0], c[1])
		if r < 1-1e-12 || r > 2+1e-12 {
			t.Fatalf("node %d radius %v out of [1,2]", n, r)
		}
		if c[0] < -1e-12 || c[1] < -1e-12 {
			t.Fatalf("node %d out of first quadrant: %v", n, c)
		}
	}
	// Area of the quarter annulus is (π/4)(4−1) = 3π/4; the triangulated
	// area converges to it from below.
	var total float64
	for e := 0; e < g.NumElems(); e++ {
		total += triArea(g, g.Elem(e))
	}
	want := 3 * math.Pi / 4
	if math.Abs(total-want) > 0.01*want {
		t.Fatalf("quarter-ring area %v, want ≈ %v", total, want)
	}
}

func TestNodeGraphSymmetricNoSelfLoops(t *testing.T) {
	for _, g := range []*Mesh{UnitSquareTri(7), UnitCubeTet(3), QuarterRing(5, 6), PlateWithHole(16)} {
		ptr, adj := g.NodeGraph()
		nn := g.NumNodes()
		if len(ptr) != nn+1 {
			t.Fatalf("%v: ptr length %d", g, len(ptr))
		}
		neighbors := func(i int) []int { return adj[ptr[i]:ptr[i+1]] }
		has := func(i, j int) bool {
			for _, v := range neighbors(i) {
				if v == j {
					return true
				}
			}
			return false
		}
		for i := 0; i < nn; i++ {
			prev := -1
			for _, j := range neighbors(i) {
				if j == i {
					t.Fatalf("%v: self loop at %d", g, i)
				}
				if j <= prev {
					t.Fatalf("%v: neighbors of %d not sorted/unique", g, i)
				}
				prev = j
				if !has(j, i) {
					t.Fatalf("%v: edge %d→%d not symmetric", g, i, j)
				}
			}
		}
	}
}

func TestNodeGraphMatchesElements(t *testing.T) {
	g := UnitSquareTri(5)
	ptr, adj := g.NodeGraph()
	// Corner node 0 belongs to 2 triangles {0,1,6} is not one: elements at
	// cell (0,0) are (0,1,6) and (0,6,5). Neighbors of node 0: {1, 5, 6}.
	got := adj[ptr[0]:ptr[1]]
	want := []int{1, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("neighbors of 0 = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors of 0 = %v, want %v", got, want)
		}
	}
}

func TestPlateWithHole(t *testing.T) {
	g := PlateWithHole(24)
	if err := g.Check(); err != nil {
		t.Fatal(err)
	}
	// All elements keep positive area and no node is inside the hole.
	for e := 0; e < g.NumElems(); e++ {
		if triArea(g, g.Elem(e)) <= 1e-14 {
			t.Fatalf("degenerate element %d", e)
		}
	}
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		if math.Hypot(c[0]-0.5, c[1]-0.5) < 0.22-1e-9 {
			t.Fatalf("node %d inside the hole: %v", n, c)
		}
	}
	// Total area: between the disc complement and the complement of the
	// enlarged (jagged, lattice-following) hole.
	var total float64
	for e := 0; e < g.NumElems(); e++ {
		total += triArea(g, g.Elem(e))
	}
	h := 1.0 / 23
	discOut := 1 - math.Pi*0.22*0.22
	jaggedOut := 1 - math.Pi*(0.22+2*h)*(0.22+2*h)
	if total > discOut+1e-9 || total < jaggedOut {
		t.Fatalf("area %v, want in [%v, %v]", total, jaggedOut, discOut)
	}
	// Boundary must include both the outer square and the (polygonal) hole
	// rim, whose nodes sit within two cells of the nominal radius.
	onB := g.BoundaryNodes()
	var outer, rim int
	for n := 0; n < g.NumNodes(); n++ {
		if !onB[n] {
			continue
		}
		c := g.Coord(n)
		if c[0] == 0 || c[0] == 1 || c[1] == 0 || c[1] == 1 {
			outer++
		} else if d := math.Hypot(c[0]-0.5, c[1]-0.5); d >= 0.22-1e-9 && d < 0.22+2*h {
			rim++
		} else {
			t.Fatalf("boundary node %d at %v is on neither boundary component", n, c)
		}
	}
	if outer == 0 || rim == 0 {
		t.Fatalf("boundary components missing: outer=%d rim=%d", outer, rim)
	}
}

func TestPlateWithHoleDeterministic(t *testing.T) {
	a, b := PlateWithHole(16), PlateWithHole(16)
	if a.NumNodes() != b.NumNodes() || a.NumElems() != b.NumElems() {
		t.Fatal("non-deterministic sizes")
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("non-deterministic coordinates")
		}
	}
}

func TestHashJitterRange(t *testing.T) {
	f := func(n uint16) bool {
		x, y := hashJitter(int(n))
		return x >= -1 && x < 1 && y >= -1 && y < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMeshCheckRejectsBadMeshes(t *testing.T) {
	bad := &Mesh{Dim: 2, NPE: 3, X: []float64{0, 0, 1, 0, 0, 1}, Elems: []int{0, 1, 3}}
	if err := bad.Check(); err == nil {
		t.Error("out-of-range node id accepted")
	}
	bad2 := &Mesh{Dim: 2, NPE: 3, X: []float64{0, 0, 1, 0, 0, 1}, Elems: []int{0, 1, 1}}
	if err := bad2.Check(); err == nil {
		t.Error("repeated node id accepted")
	}
	bad3 := &Mesh{Dim: 2, NPE: 4}
	if err := bad3.Check(); err == nil {
		t.Error("wrong NPE accepted")
	}
}

func TestMeshString(t *testing.T) {
	if s := UnitSquareTri(2).String(); s != "Mesh{2D tri, 4 nodes, 2 elems}" {
		t.Fatalf("String() = %q", s)
	}
	if s := UnitCubeTet(2).String(); s != "Mesh{3D tet, 8 nodes, 6 elems}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestFacetCanonicalization(t *testing.T) {
	// newFacet3 must sort any input order identically.
	want := [3]int{1, 2, 3}
	for _, in := range [][3]int{{1, 2, 3}, {3, 2, 1}, {2, 3, 1}, {3, 1, 2}, {2, 1, 3}, {1, 3, 2}} {
		if got := newFacet3(in[0], in[1], in[2]); got != want {
			t.Fatalf("newFacet3(%v) = %v", in, got)
		}
	}
	if got := newFacet2(5, 2); got != [3]int{2, 5, -1} {
		t.Fatalf("newFacet2 = %v", got)
	}
}
