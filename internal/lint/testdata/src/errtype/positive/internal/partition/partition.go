// Positive errtype fixture for the partition package: fresh untyped
// errors escaping the exported General API instead of the documented
// PartitionError type.
package partition

import (
	"errors"
	"fmt"
)

// Graph simulates the adjacency structure the partitioner consumes.
type Graph struct {
	Ptr []int
	Adj []int
}

// General is exported API: a raw errors.New or a non-wrapping
// fmt.Errorf crossing the boundary reduces callers to string matching.
func General(g *Graph, p int) ([]int, error) {
	if p < 1 {
		return nil, errors.New("part count must be positive") // WANT errtype
	}
	if len(g.Ptr) == 0 {
		return nil, fmt.Errorf("malformed adjacency over %d parts", p) // WANT errtype
	}
	if err := validate(g); err != nil {
		return nil, err
	}
	return make([]int, len(g.Ptr)-1), nil
}

// validate is unexported but reachable from General: its fresh error
// surfaces through the exported path and is flagged too.
func validate(g *Graph) error {
	if g.Ptr[len(g.Ptr)-1] != len(g.Adj) {
		return errors.New("truncated adjacency") // WANT errtype
	}
	return nil
}
