package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(64)
		x, y := randVec(rng, n), randVec(rng, n)
		return Dot(x, y) == Dot(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2MatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		x := randVec(rng, 1+rng.Intn(100))
		want := math.Sqrt(Dot(x, x))
		got := Norm2(x)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("Norm2 = %v, want %v", got, want)
		}
	}
}

func TestNorm2OverflowSafety(t *testing.T) {
	x := []float64{1e300, 1e300}
	got := Norm2(x)
	want := 1e300 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want) > 1e288 {
		t.Fatalf("Norm2 overflow: got %v, want %v", got, want)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
	if Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zeros != 0")
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -7, 3}); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if NormInf(nil) != 0 {
		t.Fatal("NormInf(nil) != 0")
	}
}

func TestAxpyScalZeroSub(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	for i, want := range []float64{12, 24, 36} {
		if y[i] != want {
			t.Fatalf("Axpy[%d] = %v, want %v", i, y[i], want)
		}
	}
	Scal(0.5, y)
	if y[0] != 6 {
		t.Fatalf("Scal = %v", y)
	}
	z := Sub(y, []float64{1, 2, 3})
	if z[0] != 5 || z[1] != 10 || z[2] != 15 {
		t.Fatalf("Sub = %v", z)
	}
	Zero(y)
	if y[0] != 0 || y[2] != 0 {
		t.Fatal("Zero failed")
	}
	dst := make([]float64, 3)
	CopyTo(dst, z)
	if dst[2] != 15 {
		t.Fatal("CopyTo failed")
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x, y := randVec(rng, n), randVec(rng, n)
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
