package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"parapre/internal/paranoid"
)

// ForLevels sweeps a level-scheduled dependency DAG: level l spans the
// half-open index range [ptr[l], ptr[l+1]), every level's indices may be
// processed concurrently, and no index of level l+1 may start before all
// of level l finished. It is the runner for level-scheduled sparse
// triangular solves, where one barrier per level is the entire
// synchronization cost of the sweep.
//
// Unlike For, which spawns goroutines per call, ForLevels spawns its
// workers once and carries them across all levels with a sense-reversing
// barrier between levels — many sweeps have hundreds of levels, and a
// per-level fan-out would drown the microseconds of work each level holds.
// Within a level the range is split into the same fixed contiguous blocks
// for every sweep (a function of the level span and worker count only),
// and every index is processed by exactly one worker, so body invocations
// partition the range exactly. Callers must ensure body is safe to run
// concurrently on disjoint ranges within one level.
func ForLevels(ptr []int, body func(lo, hi int)) {
	levels := len(ptr) - 1
	if levels <= 0 {
		return
	}
	if paranoid.Enabled {
		for l := 0; l < levels; l++ {
			paranoid.Check(ptr[l] <= ptr[l+1],
				"par: ForLevels ptr not non-decreasing at %d: %d > %d", l, ptr[l], ptr[l+1])
		}
	}
	w := Workers()
	if w <= 1 || !HaveParallelism() {
		for l := 0; l < levels; l++ {
			if ptr[l] < ptr[l+1] {
				body(ptr[l], ptr[l+1])
			}
		}
		return
	}

	b := &levelBarrier{n: int32(w)}
	run := func(t int) {
		for l := 0; l < levels; l++ {
			lo, hi := ptr[l], ptr[l+1]
			width := hi - lo
			if width > 0 {
				slo := lo + t*width/w
				shi := lo + (t+1)*width/w
				if slo < shi {
					body(slo, shi)
				}
			}
			b.wait()
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for t := 1; t < w; t++ {
		go func() {
			defer wg.Done()
			run(t)
		}()
	}
	run(0)
	wg.Wait()
}

// levelBarrier is a sense-reversing barrier for one level sweep. Waiters
// spin briefly on the phase counter and then yield: level bodies are
// balanced by the fixed splitting, so the last arrival is normally only a
// few hundred nanoseconds behind the first.
type levelBarrier struct {
	n       int32
	arrived atomic.Int32
	phase   atomic.Uint32
}

func (b *levelBarrier) wait() {
	ph := b.phase.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.phase.Add(1)
		return
	}
	for spins := 0; b.phase.Load() == ph; spins++ {
		if spins >= 64 {
			runtime.Gosched()
		}
	}
}
