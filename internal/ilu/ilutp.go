package ilu

import (
	"fmt"
	"math"
	"sort"

	"parapre/internal/sparse"
)

// PivLU is an incomplete factorization with column pivoting:
// A·Qᵀ ≈ L·U, where Q is the accumulated column permutation. Solve applies
// the factors and scatters through the permutation.
type PivLU struct {
	LU   *LU
	Perm sparse.Perm // Perm[k] = original column at permuted position k
	// Swaps counts the pivoting swaps performed (0 ⇒ identical to ILUT).
	Swaps int

	// tmp holds the pre-permutation solution between the factor solve and
	// the scatter. Pooling it makes Solve allocation-free, at the price of
	// a contract every current caller already satisfies: one PivLU must
	// not be applied concurrently from multiple goroutines (each rank's
	// preconditioner owns its own instance).
	tmp []float64
}

// Solve computes x with A·x = b (approximately): x = Qᵀ·U⁻¹·L⁻¹·b.
func (p *PivLU) Solve(x, b []float64) {
	n := p.LU.N()
	if cap(p.tmp) < n {
		p.tmp = make([]float64, n)
	}
	tmp := p.tmp[:n]
	p.LU.Solve(tmp, b)
	for k := 0; k < n; k++ {
		x[p.Perm[k]] = tmp[k]
	}
}

// SolveFlops returns the flop count of one Solve: the factor application
// (see LU.SolveFlops); the permutation scatter moves data but performs no
// arithmetic.
func (p *PivLU) SolveFlops() float64 { return p.LU.SolveFlops() }

// ILUTPOptions extends ILUT with the pivoting tolerance: at step i the
// largest U-part candidate replaces the diagonal when
// |w_max| · PermTol > |w_diag|. PermTol = 0 disables pivoting (plain
// ILUT); the SPARSKIT default is 0.5–1.
type ILUTPOptions struct {
	ILUTOptions
	PermTol float64
}

// ILUTP computes the dual-threshold incomplete factorization with column
// pivoting (Saad's ILUTP). It handles matrices with zero or weak
// diagonals — e.g. strongly convective problems or saddle-point-like
// blocks — where plain ILUT would need pivot fixes.
func ILUTP(a *sparse.CSR, opt ILUTPOptions) (*PivLU, error) {
	if a.Rows != a.Cols {
		return nil, badInputErr("ILUTP", "non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lfil := opt.LFil
	if lfil <= 0 {
		lfil = n
	}

	perm := sparse.IdentityPerm(n)  // permuted position → original column
	iperm := sparse.IdentityPerm(n) // original column → permuted position

	m := sparse.NewCSR(n, n, a.NNZ()*2)
	diag := make([]int, n)
	out := &PivLU{LU: &LU{M: m, Diag: diag}, Perm: perm}

	// Workspace indexed by ORIGINAL column id; the heap orders L-part
	// candidates by their permuted position.
	w := make([]float64, n)
	inRow := make([]bool, n)
	var lCols permHeap
	lCols.iperm = iperm
	uCols := make([]int, 0, n)
	procL := make([]int, 0, n) // kept L columns (original ids), elimination order
	var selL, selU []int       // selectLargest scratch, reused across rows

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		var rowNorm float64
		lCols.cols = lCols.cols[:0]
		uCols = uCols[:0]
		procL = procL[:0]
		for k, j := range cols {
			w[j] = vals[k]
			inRow[j] = true
			rowNorm += math.Abs(vals[k])
			if iperm[j] < i {
				lCols.cols = append(lCols.cols, j)
			} else {
				uCols = append(uCols, j)
			}
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("ILUTP", i)
		}
		rowNorm /= float64(len(cols))
		drop := opt.Tau * rowNorm
		lCols.init()

		for len(lCols.cols) > 0 {
			j := lCols.pop() // original column, smallest permuted pos
			k := iperm[j]    // pivot row
			lik := w[j] / m.Val[diag[k]]
			inRow[j] = false
			if math.Abs(lik) <= drop {
				continue
			}
			w[j] = lik
			procL = append(procL, j)
			for kj := diag[k] + 1; kj < m.RowPtr[k+1]; kj++ {
				jj := m.ColIdx[kj] // original column id (remapped later)
				delta := lik * m.Val[kj]
				if inRow[jj] {
					w[jj] -= delta
					continue
				}
				w[jj] = -delta
				inRow[jj] = true
				if iperm[jj] < i {
					lCols.push(jj)
				} else {
					uCols = append(uCols, jj)
				}
			}
		}

		// Ensure a diagonal candidate exists.
		dcol := perm[i]
		if !inRow[dcol] {
			w[dcol] = 0
			inRow[dcol] = true
			uCols = append(uCols, dcol)
		}

		// Column pivoting: promote the largest U candidate when it beats
		// the current diagonal by the permtol margin.
		if opt.PermTol > 0 {
			best := dcol
			for _, j := range uCols {
				if math.Abs(w[j]) > math.Abs(w[best]) {
					best = j
				}
			}
			if best != dcol && math.Abs(w[best])*opt.PermTol > math.Abs(w[dcol]) {
				pi, pb := iperm[dcol], iperm[best]
				perm[pi], perm[pb] = perm[pb], perm[pi]
				iperm[dcol], iperm[best] = iperm[best], iperm[dcol]
				dcol = best
				out.Swaps++
			}
		}

		selL = selectLargest(selL, procL, w, drop, lfil, -1)
		selU = selectLargest(selU, uCols, w, drop, lfil, dcol)
		lSel, uSel := selL, selU
		// Store in permuted order; remap to permuted indices after the
		// factorization completes (iperm still changes for columns ≥ i).
		sort.Slice(lSel, func(x, y int) bool { return iperm[lSel[x]] < iperm[lSel[y]] })
		sort.Slice(uSel, func(x, y int) bool { return iperm[uSel[x]] < iperm[uSel[y]] })
		for _, j := range lSel {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		for _, j := range uSel {
			if j == dcol {
				diag[i] = len(m.ColIdx)
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, fixPivot(w[j], rowNorm, &out.LU.PivotFixes))
				continue
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		m.RowPtr[i+1] = len(m.ColIdx)

		for _, j := range procL {
			inRow[j] = false
			w[j] = 0
		}
		for _, j := range uCols {
			inRow[j] = false
			w[j] = 0
		}
	}

	// Remap stored column ids to permuted coordinates and re-sort rows —
	// the factor becomes a standard LU in the permuted space.
	for k, j := range m.ColIdx {
		m.ColIdx[k] = iperm[j]
	}
	for i := 0; i < n; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		d := m.ColIdx[diag[i]]
		sortRowAligned(m.ColIdx[lo:hi], m.Val[lo:hi])
		// Relocate the diagonal index after sorting.
		for k := lo; k < hi; k++ {
			if m.ColIdx[k] == d {
				diag[i] = k
				break
			}
		}
		if m.ColIdx[diag[i]] != i {
			return nil, fmt.Errorf("ilu: ILUTP pivot relocation failed at row %d (found column %d): %w", i, m.ColIdx[diag[i]], ErrInternal)
		}
	}
	out.LU.prepLevels()
	return out, nil
}

func sortRowAligned(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// permHeap is a hand-rolled min-heap of original column ids keyed by
// their permuted positions. As with intHeap, the stored columns are
// unique and pop in strictly ascending key order, so the switch from
// container/heap is bit-neutral while avoiding the interface boxing.
type permHeap struct {
	cols  []int
	iperm sparse.Perm
}

func (h *permHeap) init() {
	for i := len(h.cols)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *permHeap) push(x int) {
	a := append(h.cols, x)
	key := h.iperm
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if key[a[p]] <= key[a[i]] {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
	h.cols = a
}

func (h *permHeap) pop() int {
	a := h.cols
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	h.cols = a[:n]
	h.siftDown(0)
	return top
}

func (h *permHeap) siftDown(i int) {
	a := h.cols
	key := h.iperm
	n := len(a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && key[a[r]] < key[a[l]] {
			m = r
		}
		if key[a[i]] <= key[a[m]] {
			return
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
}
