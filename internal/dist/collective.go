package dist

import (
	"errors"
	"sync"

	"parapre/internal/obs"
)

// reducer is a reusable combining barrier. All ranks must call the same
// collectives in the same order (the usual MPI contract). Each rank's
// contribution is parked in its own slot and the final arrival combines
// them in rank order, so floating-point results are bit-for-bit
// deterministic regardless of goroutine scheduling. Results are
// double-buffered by generation parity: a rank cannot be two collectives
// ahead of another, so parity slots never collide. A world abort (the
// RunOpts watchdog or a rank panic) wakes every waiter, which then
// reports ErrWorldAborted.
type reducer struct {
	mu   sync.Mutex
	cond *sync.Cond
	p    int

	count   int
	gen     int // generation currently accumulating
	done    int // number of fully completed generations
	aborted bool
	inputs  [][]float64
	clocks  []float64

	result   [2][]float64
	maxTimes [2]float64
}

func newReducer(p int) *reducer {
	r := &reducer{p: p, inputs: make([][]float64, p), clocks: make([]float64, p)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// abort releases every rank blocked in a collective; they and all later
// arrivals return ErrWorldAborted.
func (r *reducer) abort() {
	r.mu.Lock()
	r.aborted = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// reduce runs one collective wave: rank's contribution in is combined with
// everyone else's using op (applied in rank order), and the combined
// vector plus the maximum deposited clock are returned to all ranks. op
// must be equivalent across ranks.
func (r *reducer) reduce(rank int, in []float64, clock float64, op func(acc, in []float64)) ([]float64, float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.aborted {
		return nil, 0, ErrWorldAborted
	}
	myGen := r.gen
	r.inputs[rank] = append(r.inputs[rank][:0], in...)
	r.clocks[rank] = clock
	r.count++
	if r.count == r.p {
		slot := myGen & 1
		acc := append(r.result[slot][:0], r.inputs[0]...)
		maxClock := r.clocks[0]
		for q := 1; q < r.p; q++ {
			op(acc, r.inputs[q])
			if r.clocks[q] > maxClock {
				maxClock = r.clocks[q]
			}
		}
		r.result[slot] = acc
		r.maxTimes[slot] = maxClock
		r.count = 0
		r.gen++
		r.done++
		r.cond.Broadcast()
	} else {
		for r.done <= myGen && !r.aborted {
			r.cond.Wait()
		}
		if r.aborted {
			return nil, 0, ErrWorldAborted
		}
	}
	slot := myGen & 1
	out := append([]float64(nil), r.result[slot]...)
	return out, r.maxTimes[slot], nil
}

// reduce runs one collective wave through the world's transport,
// converting a world abort into the internal unwind panic. Any other
// transport failure (a socket IO error) keeps the panicking contract of
// the collective API; RunOpts and RunRank convert it into a typed error.
func (c *Comm) reduce(in []float64, kind ReduceKind) ([]float64, float64) {
	out, maxT, err := c.w.tr.Reduce(c.rank, in, c.clock, kind)
	if err != nil {
		if errors.Is(err, ErrWorldAborted) {
			panic(abortPanic{})
		}
		panic(err)
	}
	return out, maxT
}

// AllReduceSum sums x across all ranks; every rank receives the total.
func (c *Comm) AllReduceSum(x float64) float64 {
	return c.AllReduceSumVec([]float64{x})[0]
}

// AllReduceSumVec element-wise sums the vector across ranks. All ranks
// must pass equal-length vectors. The summation order is rank order, so
// results are deterministic.
func (c *Comm) AllReduceSumVec(x []float64) []float64 {
	c.beginOp("allreduce", -1, -1)
	sp := c.beginCollective(obs.KindAllReduce, 8*len(x))
	out, maxT := c.reduce(x, ReduceSum)
	c.syncClock(maxT, 8*len(x))
	sp.End(c.clock)
	c.endOp()
	return out
}

// beginCollective opens the observability span of one collective (no-op
// with tracing off).
func (c *Comm) beginCollective(kind string, bytes int) obs.Span {
	if c.rec == nil {
		return obs.Span{}
	}
	return c.rec.BeginComm(kind, -1, -1, bytes, c.clock)
}

// AllReduceMax returns the maximum of x across ranks.
func (c *Comm) AllReduceMax(x float64) float64 {
	c.beginOp("allreduce", -1, -1)
	sp := c.beginCollective(obs.KindAllReduce, 8)
	out, maxT := c.reduce([]float64{x}, ReduceMax)
	c.syncClock(maxT, 8)
	sp.End(c.clock)
	c.endOp()
	return out[0]
}

// AllReduceMin returns the minimum of x across ranks.
func (c *Comm) AllReduceMin(x float64) float64 {
	c.beginOp("allreduce", -1, -1)
	sp := c.beginCollective(obs.KindAllReduce, 8)
	out, maxT := c.reduce([]float64{x}, ReduceMin)
	c.syncClock(maxT, 8)
	sp.End(c.clock)
	c.endOp()
	return out[0]
}

// Barrier synchronizes all ranks (and their virtual clocks).
func (c *Comm) Barrier() {
	c.beginOp("barrier", -1, -1)
	sp := c.beginCollective(obs.KindBarrier, 0)
	_, maxT := c.reduce(nil, ReduceSum)
	c.syncClock(maxT, 0)
	sp.End(c.clock)
	c.endOp()
}

// AllGather concatenates each rank's contribution in rank order; every
// rank receives the full concatenation. Contributions may have different
// lengths but every rank must know all of them (counts[r] = length of
// rank r's piece).
func (c *Comm) AllGather(x []float64, counts []int) []float64 {
	c.beginOp("allgather", -1, -1)
	total := 0
	offs := make([]int, c.w.P)
	for r, n := range counts {
		offs[r] = total
		total += n
	}
	buf := make([]float64, total)
	copy(buf[offs[c.rank]:], x)
	sp := c.beginCollective(obs.KindAllGather, 8*total)
	out, maxT := c.reduce(buf, ReduceSum)
	c.syncClock(maxT, 8*total)
	sp.End(c.clock)
	c.endOp()
	return out
}

// VoteStop is an out-of-band control collective: every rank contributes
// its local stop observation and all ranks receive the OR of the votes,
// so a cooperative cancellation decision is identical everywhere even
// when only one rank saw the signal. It must be called collectively, in
// the same position of every rank's op sequence, like every collective.
//
// Unlike the data collectives above it is deliberately uncharged and
// invisible: no virtual-clock cost (the modeled times of a canceled-then-
// ignored run stay bit-identical to an unvoted one), no fault-plan op
// step (seeded crash/corruption schedules keep their exact firing
// points), and no observability span (golden traces are unchanged). The
// underlying combining barrier still gives the usual world-abort unwind.
func (c *Comm) VoteStop(stop bool) bool {
	v := 0.0
	if stop {
		v = 1
	}
	out, _ := c.reduce([]float64{v}, ReduceMax)
	return out[0] != 0
}

func (c *Comm) syncClock(maxT float64, bytes int) {
	if maxT > c.clock {
		c.clock = maxT
	}
	c.clock += c.w.Machine.collectiveTime(c.w.P, bytes)
}
