package core

import (
	"errors"
	"testing"

	"parapre/internal/dsys"
	"parapre/internal/krylov"
)

func TestAggregateSurfacesNonRankZeroError(t *testing.T) {
	// Rank 0 healthy (an empty rank runs the replicated recurrence but
	// never factors or exchanges), rank 2 broken: the historical
	// results[0]-only aggregation dropped rank 2's error entirely.
	boom := &krylov.BreakdownError{Method: "FGMRES", Iteration: 7, Quantity: "q", Value: 0}
	results := []krylov.Result{
		{Iterations: 7, Converged: false},
		{Iterations: 7, Converged: false},
		{Iterations: 7, Converged: false, Err: boom, Breakdown: true},
		{Iterations: 7, Converged: false},
	}
	res := &Result{}
	breakdown := aggregateResult(res, results, make([]*krylov.RecoveryLog, 4))
	if !breakdown {
		t.Error("breakdown flag lost")
	}
	if res.ErrRank != 2 {
		t.Errorf("ErrRank = %d, want 2", res.ErrRank)
	}
	var rse *RankSolveError
	if !errors.As(res.Err, &rse) || rse.Rank != 2 {
		t.Fatalf("Err = %v, want RankSolveError{Rank: 2}", res.Err)
	}
	if !errors.Is(res.Err, krylov.ErrBreakdown) {
		t.Error("rank attribution broke the errors.Is chain")
	}
}

func TestAggregateKeepsRankZeroErrorBare(t *testing.T) {
	// Replicated errors (the common case) must stay exactly rank 0's —
	// no wrapper, no behavior change for existing callers.
	boom := &krylov.BreakdownError{Method: "FGMRES", Iteration: 3, Quantity: "q", Value: 0}
	results := []krylov.Result{{Err: boom}, {Err: boom}}
	res := &Result{}
	aggregateResult(res, results, make([]*krylov.RecoveryLog, 2))
	if res.Err != error(boom) || res.ErrRank != 0 {
		t.Fatalf("Err = %v (rank %d), want the bare rank-0 error", res.Err, res.ErrRank)
	}
}

func TestAggregateNoErrors(t *testing.T) {
	res := &Result{}
	aggregateResult(res, []krylov.Result{{Converged: true}, {Converged: true}},
		make([]*krylov.RecoveryLog, 2))
	if res.Err != nil || res.ErrRank != -1 {
		t.Fatalf("clean solve: Err=%v ErrRank=%d", res.Err, res.ErrRank)
	}
}

func TestAggregateJoinsHiddenExchangeCause(t *testing.T) {
	// Every rank breaks down on the poisoned recurrence, but only rank 2
	// holds the communication root cause; the aggregate must carry both.
	bare := &krylov.BreakdownError{Method: "FGMRES", Iteration: 1, Quantity: "norm", Value: 0}
	ex := &dsys.ExchangeError{Rank: 2, Peer: 3, Reason: "non-finite payload"}
	results := []krylov.Result{
		{Err: bare, Breakdown: true},
		{Err: bare, Breakdown: true},
		{Err: errors.Join(bare, ex), Breakdown: true},
		{Err: bare, Breakdown: true},
	}
	res := &Result{}
	aggregateResult(res, results, make([]*krylov.RecoveryLog, 4))
	if res.ErrRank != 0 {
		t.Errorf("ErrRank = %d, want 0 (first non-nil)", res.ErrRank)
	}
	var gotEx *dsys.ExchangeError
	if !errors.As(res.Err, &gotEx) || gotEx.Rank != 2 {
		t.Fatalf("Err = %v, want the rank-2 exchange cause joined", res.Err)
	}
	var rse *RankSolveError
	if !errors.As(res.Err, &rse) || rse.Rank != 2 {
		t.Fatalf("Err = %v, want the cause attributed to rank 2", res.Err)
	}
	if !errors.Is(res.Err, krylov.ErrBreakdown) {
		t.Error("join broke the errors.Is chain")
	}
}

func TestMergeRecoveryLogs(t *testing.T) {
	boom := &krylov.BreakdownError{Method: "FGMRES", Iteration: 5, Quantity: "q", Value: 0}
	logs := []*krylov.RecoveryLog{
		{Steps: []krylov.RecoveryStep{
			{Stage: "Block 2", Attempt: 1, Iterations: 5},
			{Stage: "Block 2", Attempt: 2, Iterations: 9, Converged: true},
		}, Recovered: true},
		{Steps: []krylov.RecoveryStep{
			{Stage: "Block 2", Attempt: 1, Iterations: 5, Err: boom},
			{Stage: "Block 2", Attempt: 2, Iterations: 9, Converged: true},
		}, Recovered: true},
	}
	merged := mergeRecoveryLogs(logs)
	if merged == nil || len(merged.Steps) != 2 || !merged.Recovered {
		t.Fatalf("merged = %+v", merged)
	}
	var rse *RankSolveError
	if !errors.As(merged.Steps[0].Err, &rse) || rse.Rank != 1 {
		t.Fatalf("step 0 err = %v, want rank-1 attribution", merged.Steps[0].Err)
	}
	if merged.Steps[1].Err != nil {
		t.Errorf("step 1 err = %v, want nil", merged.Steps[1].Err)
	}
	if mergeRecoveryLogs(make([]*krylov.RecoveryLog, 3)) != nil {
		t.Error("nil logs must merge to nil")
	}
}
