// Package dist is the distributed-memory substrate standing in for the
// MPI runtimes of the paper's two parallel computers. Each "processor" is
// a goroutine holding a Comm handle; point-to-point messages travel over
// channels (with real blocking semantics, so protocol deadlocks would hang
// tests rather than pass silently), and collectives synchronize through a
// combining barrier.
//
// Because the reproduction host may have a single CPU core, wall-clock
// time cannot exhibit parallel speedup. Instead every Comm maintains a
// virtual clock in the standard LogP spirit: local computation advances
// the clock by flops/rate, a message advances the receiver to
// max(receiver, sender) + α + β·bytes, and a collective advances every
// participant to max(all) + ⌈log₂P⌉·(α + β·8). Iteration counts — the
// paper's primary metric — are unaffected by the model; only the reported
// times flow through it.
package dist

import "math"

// Machine models one parallel computer: a per-process flop rate, the
// latency/bandwidth of its network, a background-load multiplier on
// compute time, and the partitioning seed (the paper notes the two
// machines produced different partitions from their different random
// number generators, changing the iteration counts; the seed reproduces
// that).
type Machine struct {
	Name     string
	FlopRate float64 // sustained sparse-kernel flops per second per process
	Latency  float64 // seconds per message (α)
	ByteTime float64 // seconds per byte (β)
	Load     float64 // compute-time multiplier ≥ 1; models a shared, loaded machine
	Seed     int64   // grid-partitioning seed used on this machine
}

// LinuxCluster models the paper's low-end cluster: Pentium III 1 GHz
// processors on fast (100 Mbit/s) Ethernet, used exclusively.
func LinuxCluster() *Machine {
	return &Machine{
		Name:     "LinuxCluster",
		FlopRate: 120e6,
		Latency:  80e-6,
		ByteTime: 80e-9, // ≈12.5 MB/s
		Load:     1,
		Seed:     1,
	}
}

// Origin3800 models the paper's high-end SGI Origin 3800: 500 MHz R14000
// processors on a fast NUMAlink interconnect, but heavily loaded during
// the experiments (the paper blames its poor wall-clock numbers on the
// load, not the hardware).
func Origin3800() *Machine {
	return &Machine{
		Name:     "Origin3800",
		FlopRate: 250e6,
		Latency:  4e-6,
		ByteTime: 3e-9, // ≈330 MB/s
		Load:     6,
		Seed:     2,
	}
}

// Origin3800Unloaded is the same hardware without the background load —
// what the paper says the machine "ought to" deliver. Used by ablation
// benches.
func Origin3800Unloaded() *Machine {
	m := Origin3800()
	m.Name = "Origin3800Unloaded"
	m.Load = 1
	return m
}

// computeTime returns the virtual seconds consumed by the given flop
// count on this machine.
func (m *Machine) computeTime(flops float64) float64 {
	return flops / m.FlopRate * m.Load
}

// messageTime returns the α + β·bytes cost of one message.
func (m *Machine) messageTime(bytes int) float64 {
	return m.Latency + float64(bytes)*m.ByteTime
}

// collectiveTime returns the cost of one reduction round over p processes
// carrying payload bytes.
func (m *Machine) collectiveTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * (m.Latency + float64(bytes)*m.ByteTime)
}
