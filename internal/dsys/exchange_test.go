//go:build !paranoid

// The strict exchange and matvec tests inject NaN payloads, which the
// paranoid build's finite-value assertions would turn into panics before
// the typed-error paths under test can run.
package dsys

import (
	"errors"
	"math"
	"strings"
	"testing"

	"parapre/internal/dist"
)

// ExchangeErr must match the legacy Exchange bit for bit on healthy
// traffic.
func TestExchangeErrMatchesLegacyExchange(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 4, 1)
	systems := Distribute(a, b, part, 4)

	legacy := make([][]float64, 4)
	strict := make([][]float64, 4)
	fill := func(s *System, ext []float64) {
		for i := 0; i < s.NLoc(); i++ {
			ext[i] = float64(s.GlobalIDs[i])
		}
	}
	dist.Run(4, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		ext := make([]float64, s.NLoc()+s.NExt())
		fill(s, ext)
		s.Exchange(c, ext)
		legacy[c.Rank()] = ext
	})
	statsA := dist.Run(4, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		ext := make([]float64, s.NLoc()+s.NExt())
		fill(s, ext)
		if err := s.ExchangeErr(c, ext); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		strict[c.Rank()] = ext
	})
	for r := range legacy {
		for i := range legacy[r] {
			if legacy[r][i] != strict[r][i] {
				t.Fatalf("rank %d ext[%d]: %g vs %g", r, i, legacy[r][i], strict[r][i])
			}
		}
	}
	if statsA == nil {
		t.Fatal("no stats")
	}
}

// A wrong-length ext buffer is a caller bug reported as a typed error.
func TestExchangeErrBufferLengthValidated(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 2, 1)
	systems := Distribute(a, b, part, 2)
	dist.Run(2, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		err := s.ExchangeErr(c, make([]float64, 1))
		var xe *ExchangeError
		if !errors.As(err, &xe) || !strings.Contains(err.Error(), "length") {
			t.Errorf("rank %d: want buffer-length ExchangeError, got %v", c.Rank(), err)
		}
	})
}

// A NaN in an owned interface value must be flagged by every neighbor
// that receives it, as injected corruption would be.
func TestExchangeErrDetectsNonFinitePayload(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 2, 1)
	systems := Distribute(a, b, part, 2)
	errs := make([]error, 2)
	dist.Run(2, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		ext := make([]float64, s.NLoc()+s.NExt())
		if c.Rank() == 0 {
			// Poison every owned value: whatever subset is interfacial
			// reaches rank 1.
			for i := 0; i < s.NLoc(); i++ {
				ext[i] = math.NaN()
			}
		} else {
			for i := 0; i < s.NLoc(); i++ {
				ext[i] = 1
			}
		}
		errs[c.Rank()] = s.ExchangeErr(c, ext)
	})
	if errs[0] != nil {
		t.Errorf("rank 0 received clean data but errored: %v", errs[0])
	}
	var xe *ExchangeError
	if !errors.As(errs[1], &xe) {
		t.Fatalf("rank 1 must flag the NaN payload, got %v", errs[1])
	}
	if xe.Rank != 1 || xe.Peer != 0 || xe.Reason != "non-finite payload" {
		t.Errorf("fields wrong: %+v", xe)
	}
}

// Detecting corruption must not leave undelivered messages behind: a
// second, clean exchange right after a poisoned one must pair correctly
// and succeed.
func TestExchangeErrDrainsAllNeighborsOnFailure(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 4, 1)
	systems := Distribute(a, b, part, 4)
	dist.Run(4, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		ext := make([]float64, s.NLoc()+s.NExt())
		for i := 0; i < s.NLoc(); i++ {
			ext[i] = math.NaN() // every rank poisons round 1
		}
		_ = s.ExchangeErr(c, ext)
		for i := 0; i < s.NLoc(); i++ {
			ext[i] = 1
		}
		if err := s.ExchangeErr(c, ext); err != nil {
			t.Errorf("rank %d: clean exchange after a poisoned one failed: %v", c.Rank(), err)
		}
	})
}

// MatVecErr must agree with the legacy MatVec on healthy data and leave
// the output untouched when the exchange fails.
func TestMatVecErrStrictSemantics(t *testing.T) {
	a, b, part := poissonSystem(t, 9, 2, 1)
	systems := Distribute(a, b, part, 2)
	dist.Run(2, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		for i := range x {
			x[i] = float64(s.GlobalIDs[i]%7) + 1
		}
		ext := make([]float64, s.NLoc()+s.NExt())
		yLegacy := make([]float64, s.NLoc())
		s.MatVec(c, yLegacy, x, ext)
		yStrict := make([]float64, s.NLoc())
		if err := s.MatVecErr(c, yStrict, x, ext); err != nil {
			t.Errorf("rank %d: healthy MatVecErr failed: %v", c.Rank(), err)
		}
		for i := range yLegacy {
			if yLegacy[i] != yStrict[i] {
				t.Fatalf("rank %d y[%d]: %g vs %g", c.Rank(), i, yLegacy[i], yStrict[i])
			}
		}

		// Poisoned input: the error is typed and y keeps its sentinel.
		// Every entry is poisoned so the interfacial subset — whatever the
		// partition made it — carries NaN to rank 1.
		if c.Rank() == 0 {
			for i := range x {
				x[i] = math.NaN()
			}
		}
		const sentinel = -12345
		for i := range yStrict {
			yStrict[i] = sentinel
		}
		err := s.MatVecErr(c, yStrict, x, ext)
		hasIface := s.NLoc() > s.NInt
		if c.Rank() == 1 {
			var xe *ExchangeError
			// Rank 1 sees the NaN only if rank 0's poisoned entry is
			// interfacial; with this partition it is.
			if !errors.As(err, &xe) {
				t.Errorf("rank 1: want ExchangeError, got %v (iface=%v)", err, hasIface)
			}
			for i := range yStrict {
				if yStrict[i] != sentinel {
					t.Errorf("y modified on error at %d: %g", i, yStrict[i])
					break
				}
			}
		}
	})
}
