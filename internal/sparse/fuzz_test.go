package sparse

import (
	"sort"
	"testing"
)

// The fuzzers decode raw bytes into small integer-valued matrices. With
// every value an integer of magnitude ≤ 127 and at most a few thousand
// terms, all sums fit float64 exactly, so reference comparisons below are
// bitwise — no tolerance hides a real bug, and no summation-order
// difference produces a false alarm.

// fuzzDims caps fuzzed shapes: big enough to cross row-partition edges,
// small enough that the dense reference stays cheap.
const fuzzMaxDim = 16

// decodeTriplets interprets data as (rows, cols, triplet stream) and
// returns the shape plus the triplet list. Every triplet is reduced into
// range, so any byte stream decodes to a well-formed input.
func decodeTriplets(data []byte) (rows, cols int, trip [][3]int) {
	if len(data) < 2 {
		return 1, 1, nil
	}
	rows = int(data[0])%fuzzMaxDim + 1
	cols = int(data[1])%fuzzMaxDim + 1
	for k := 2; k+2 < len(data); k += 3 {
		i := int(data[k]) % rows
		j := int(data[k+1]) % cols
		v := int(int8(data[k+2]))
		trip = append(trip, [3]int{i, j, v})
	}
	return rows, cols, trip
}

// denseOf accumulates triplets into a dense reference, mirroring COO.Add
// semantics (duplicates sum).
func denseOf(rows, cols int, trip [][3]int) []float64 {
	d := make([]float64, rows*cols)
	for _, t := range trip {
		d[t[0]*cols+t[1]] += float64(t[2])
	}
	return d
}

// FuzzToCSR checks that COO→CSR conversion yields a structurally valid
// matrix that agrees entry-for-entry with a dense accumulation, for
// arbitrary (including duplicate-heavy and empty) triplet streams.
func FuzzToCSR(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 0, 0, 1, 0, 0, 2, 2, 2, 255, 1, 2, 128})
	f.Add([]byte{1, 16, 0, 15, 7, 0, 0, 7, 0, 15, 249})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, trip := decodeTriplets(data)
		coo := NewCOO(rows, cols, len(trip))
		for _, tr := range trip {
			coo.Add(tr[0], tr[1], float64(tr[2]))
		}
		a := coo.ToCSR()
		if err := a.CheckValid(); err != nil {
			t.Fatalf("ToCSR produced invalid CSR: %v", err)
		}
		if a.Rows != rows || a.Cols != cols {
			t.Fatalf("shape mangled: got %d×%d want %d×%d", a.Rows, a.Cols, rows, cols)
		}
		want := denseOf(rows, cols, trip)
		got := make([]float64, rows*cols)
		for i := 0; i < rows; i++ {
			cs, vs := a.Row(i)
			for k, j := range cs {
				got[i*cols+j] += vs[k]
			}
		}
		for p := range want {
			if got[p] != want[p] {
				t.Fatalf("entry (%d,%d): got %g want %g", p/cols, p%cols, got[p], want[p])
			}
		}
	})
}

// FuzzSortRows checks that sorting is a pure per-row permutation: columns
// come out nondecreasing and each row keeps exactly its multiset of
// (column, value) pairs. The raw CSR is built by hand with deliberately
// unsorted, duplicate-carrying rows — the state SortRows exists to repair.
func FuzzSortRows(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 8, 3, 2, 1, 0, 7, 3, 2, 9, 2, 9, 0, 1, 5, 200})
	f.Add([]byte{2, 4, 6, 6, 3, 1, 3, 2, 3, 3, 1, 1, 0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		rows := int(data[0])%8 + 1
		cols := int(data[1])%fuzzMaxDim + 1
		a := NewCSR(rows, cols, 0)
		k := 2
		for i := 0; i < rows; i++ {
			// One count byte per row, then that many (col, val) pairs —
			// as many as the stream still holds.
			n := 0
			if k < len(data) {
				n = int(data[k]) % 40
				k++
			}
			for e := 0; e < n && k+1 < len(data); e++ {
				a.ColIdx = append(a.ColIdx, int(data[k])%cols)
				a.Val = append(a.Val, float64(int8(data[k+1])))
				k += 2
			}
			a.RowPtr[i+1] = len(a.ColIdx)
		}

		type pair struct {
			col int
			val float64
		}
		want := make([][]pair, rows)
		for i := 0; i < rows; i++ {
			cs, vs := a.Row(i)
			for e, j := range cs {
				want[i] = append(want[i], pair{j, vs[e]})
			}
		}

		a.SortRows()

		for i := 0; i < rows; i++ {
			cs, vs := a.Row(i)
			if len(cs) != len(want[i]) {
				t.Fatalf("row %d changed length: %d → %d", i, len(want[i]), len(cs))
			}
			got := make([]pair, len(cs))
			for e, j := range cs {
				if e > 0 && cs[e-1] > j {
					t.Fatalf("row %d not sorted after SortRows: %v", i, cs)
				}
				got[e] = pair{j, vs[e]}
			}
			less := func(p []pair) func(x, y int) bool {
				return func(x, y int) bool {
					if p[x].col != p[y].col {
						return p[x].col < p[y].col
					}
					return p[x].val < p[y].val
				}
			}
			sort.Slice(got, less(got))
			sort.Slice(want[i], less(want[i]))
			for e := range got {
				if got[e] != want[i][e] {
					t.Fatalf("row %d entry multiset changed: got %v want %v", i, got, want[i])
				}
			}
		}
	})
}

// FuzzMulVec checks the CSR matrix-vector kernels against a dense
// reference on arbitrary matrices and vectors, and MulVec against
// MulVecTo (allocating and in-place paths must agree bit-for-bit).
func FuzzMulVec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 3, 0, 0, 2, 1, 1, 3, 2, 2, 5, 0, 2, 255, 1, 2, 3})
	f.Add([]byte{8, 1, 0, 0, 1, 3, 0, 2, 7, 0, 130, 5, 4, 3, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, trip := decodeTriplets(data)
		// Steal trailing bytes for the vector; triplets and vector may
		// overlap — both decoders are total, so sharing bytes is fine.
		x := make([]float64, cols)
		for i := range x {
			if i < len(data) {
				x[i] = float64(int8(data[len(data)-1-i]))
			} else {
				x[i] = 1
			}
		}
		coo := NewCOO(rows, cols, len(trip))
		for _, tr := range trip {
			coo.Add(tr[0], tr[1], float64(tr[2]))
		}
		a := coo.ToCSR()

		d := denseOf(rows, cols, trip)
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			var s float64
			for j := 0; j < cols; j++ {
				s += d[i*cols+j] * x[j]
			}
			want[i] = s
		}

		got := a.MulVec(x)
		if len(got) != rows {
			t.Fatalf("MulVec returned length %d, want %d", len(got), rows)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MulVec[%d]: got %g want %g", i, got[i], want[i])
			}
		}
		y := make([]float64, rows)
		a.MulVecTo(y, x)
		for i := range y {
			if y[i] != got[i] {
				t.Fatalf("MulVecTo disagrees with MulVec at %d: %g vs %g", i, y[i], got[i])
			}
		}
	})
}
