package core

import (
	"fmt"
	"time"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/par"
	"parapre/internal/precond"
	"parapre/internal/sparse"
)

// Session amortizes the expensive setup — partitioning, distribution and
// preconditioner construction — over many solves with the same matrix but
// different right-hand sides, the pattern of implicit time stepping
// (Test Case 4 runs one step; a real simulation runs thousands). All
// preconditioners in this repository depend only on the matrix, so they
// are built once — concurrently across ranks on the shared-memory worker
// pool — and reused by every Solve.
type Session struct {
	prob    *Problem
	cfg     Config
	part    []int
	systems []*dsys.System
	pcs     []precond.Preconditioner
	// modeled one-time setup cost (max over ranks)
	setupTime float64
}

// NewSession partitions and distributes the problem and constructs the
// per-rank preconditioners.
func NewSession(p *Problem, cfg Config) (*Session, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("core: P = %d", cfg.P)
	}
	if cfg.Solver.Restart == 0 {
		cfg.Solver = DefaultConfig(cfg.P, cfg.Precond).Solver
	}
	s := &Session{prob: p, cfg: cfg}
	if cfg.Schwarz != nil {
		s.part = precond.BoxPartition(cfg.Schwarz.M, cfg.Schwarz.Px, cfg.Schwarz.Py)
	} else {
		s.part = Partition(p, cfg)
	}
	s.systems = dsys.Distribute(p.A, p.B, s.part, cfg.P)

	s.pcs = make([]precond.Preconditioner, cfg.P)
	switch {
	case cfg.Schwarz != nil:
		sws, err := buildSchwarz(s.systems, p.A, *cfg.Schwarz)
		if err != nil {
			return nil, err
		}
		for r, sw := range sws {
			s.pcs[r] = sw
		}
	case cfg.OverlapLevels > 0 && (cfg.Precond == precond.KindBlock1 || cfg.Precond == precond.KindBlock2):
		blocks, err := precond.BuildOverlapBlocks(p.A, s.part, s.systems, precond.OverlapOptions{
			Levels:  cfg.OverlapLevels,
			UseILU0: cfg.Precond == precond.KindBlock1,
			ILUT:    cfg.ILUT,
		})
		if err != nil {
			return nil, err
		}
		for r, ob := range blocks {
			s.pcs[r] = ob
		}
	default:
		// Per-rank factorizations are independent: run them concurrently
		// on the worker pool.
		errs := make([]error, cfg.P)
		par.Run(cfg.P, func(r int) {
			pc, err := buildRankPrecond(cfg, s.systems[r], cfg.Precond)
			if err != nil {
				errs[r] = fmt.Errorf("core: rank %d setup: %w", r, err)
				return
			}
			s.pcs[r] = pc
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	// Model the one-time setup: every rank factors concurrently, so the
	// cost is the maximum per-rank estimate.
	for _, pc := range s.pcs {
		t := setupFlopFactor * setupCost(pc) / s.cfg.Machine.FlopRate * s.cfg.Machine.Load
		if t > s.setupTime {
			s.setupTime = t
		}
	}
	return s, nil
}

// P returns the processor count of the session.
func (s *Session) P() int { return s.cfg.P }

// SetupTime returns the modeled one-time setup cost in seconds.
func (s *Session) SetupTime() float64 { return s.setupTime }

// Systems exposes the per-rank subdomain systems (diagnostics).
func (s *Session) Systems() []*dsys.System { return s.systems }

// Solve runs the distributed preconditioned FGMRES for the global
// right-hand side b (nil reuses the problem's). The preconditioners and
// the distribution are reused; only the solve is charged to the virtual
// clocks.
func (s *Session) Solve(b []float64) (*Result, error) {
	if b == nil {
		b = s.prob.B
	}
	if len(b) != s.prob.A.Rows {
		return nil, fmt.Errorf("core: rhs length %d, want %d", len(b), s.prob.A.Rows)
	}
	if err := validateRestore(s.cfg); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	bl := dsys.Scatter(s.systems, b)
	sink := checkpointSink(s.cfg)

	results := make([]krylov.Result, s.cfg.P)
	logs := make([]*krylov.RecoveryLog, s.cfg.P)
	xl := make([][]float64, s.cfg.P)
	stats, runErr := runWorld(s.cfg, func(c *dist.Comm) {
		sys := s.systems[c.Rank()]
		pc := s.pcs[c.Rank()]
		sopt := rankSolverOptions(s.cfg, c, sink, s.cfg.Restore)
		x := make([]float64, sys.NLoc())
		var prec krylov.Prec
		if s.cfg.Precond != precond.KindNone || s.cfg.Schwarz != nil {
			prec = wrapApply(c, precondLabel(s.cfg), pc)
		}
		switch {
		case s.cfg.UseCG:
			results[c.Rank()] = krylov.DistributedCG(c, sys, prec, bl[c.Rank()], x, sopt)
		case s.cfg.Resilient:
			results[c.Rank()], logs[c.Rank()] = krylov.ResilientSolve(
				c, sys, resilientLadder(s.cfg, c, sys, prec), bl[c.Rank()], x, sopt)
		default:
			results[c.Rank()] = krylov.Distributed(c, sys, prec, bl[c.Rank()], x, sopt)
		}
		xl[c.Rank()] = x
	})
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{PerRank: stats, SetupTime: s.setupTime}
	sortPerRank(res.PerRank)
	r0 := results[0]
	res.Iterations = r0.Iterations
	res.Restarts = r0.Restarts
	res.Converged = r0.Converged
	res.History = r0.History
	res.Err = r0.Err
	res.Recovery = logs[0]
	if r0.Initial > 0 {
		res.Residual = r0.Final / r0.Initial
	}
	solveClock, cerr := dist.MaxClockErr(stats)
	if cerr != nil {
		return nil, fmt.Errorf("core: %w", cerr)
	}
	res.SolveTime = solveClock
	res.Wall = time.Since(wallStart).Seconds()
	recordSolveCounters(s.cfg, res, r0.Breakdown)
	if s.cfg.KeepX {
		res.X = dsys.Gather(s.systems, xl)
		rr := append([]float64(nil), b...)
		s.prob.A.MulVecSub(rr, res.X)
		nb := sparse.Norm2(b)
		if nb > 0 {
			res.TrueRelRes = sparse.Norm2(rr) / nb
		} else {
			res.TrueRelRes = sparse.Norm2(rr)
		}
	}
	return res, nil
}
