package precond

import (
	"fmt"

	"parapre/internal/arms"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/schur"
	"parapre/internal/sparse"
)

// Schur2Options tunes the Schur 2 preconditioner.
type Schur2Options struct {
	MaxGroup   int     // group-size cap of the independent sets
	DropTol    float64 // dropping in the expanded Schur assembly
	SchurIters int     // distributed GMRES iterations on the expanded system
	SchurTol   float64
	ILUT       ilu.ILUTOptions // only used if ILU(0) of the expanded Schur fails structurally
}

// DefaultSchur2 matches the paper's description: a two-level ARMS
// reduction supplies the expanded Schur system, which is solved by a few
// distributed GMRES iterations preconditioned by a (local) ILU(0).
func DefaultSchur2() Schur2Options {
	return Schur2Options{
		MaxGroup:   24,
		DropTol:    1e-4,
		SchurIters: 5,
		SchurTol:   1e-2,
		ILUT:       ilu.DefaultILUT(),
	}
}

// Schur2 is the expanded-Schur-complement preconditioner of §2: a
// group-independent-set reordering of each subdomain's internal unknowns
// (the ARMS construction) yields "local interface" unknowns; together with
// the interdomain interface unknowns they form the expanded Schur system,
// which is solved globally by a few GMRES iterations preconditioned by a
// distributed ILU(0) (applied to the local expanded Schur block). The
// ARMS reduction acts as the approximate subdomain solver for the group
// unknowns.
type Schur2 struct {
	s    *dsys.System
	opts Schur2Options

	red   *arms.Reduction // reduction of the whole owned block
	nG    int             // grouped unknowns
	nExp  int             // expanded interface size = NLoc − nG
	perm  sparse.Perm     // owned-local new→old, groups first
	inv   sparse.Perm
	sFact *ilu.LU // ILU(0) (or ILUT fallback) of the expanded Schur block
	op    *schur.Iface

	// scratch
	work, y, gp, uG, fTmp []float64
	ws                    *krylov.Workspace // pooled Schur-GMRES workspace

	// commErr records the first interface-exchange failure observed
	// inside Apply's inner Schur solve (see CommErrRecorder).
	commErr error
}

// NewSchur2 builds the Schur 2 preconditioner for this rank's subdomain.
//
// The reduction is applied to the full owned block with the interdomain
// interface unknowns forced into the separator, so the expanded interface
// is exactly {local interfaces} ∪ {interdomain interfaces} as in the
// paper's Fig. 2.
func NewSchur2(s *dsys.System, opts Schur2Options) (*Schur2, error) {
	owned := s.OwnedBlock()
	red, err := reduceInternalOnly(owned, s.NInt, opts.MaxGroup, opts.DropTol)
	if err != nil {
		return nil, fmt.Errorf("precond: Schur 2 rank %d: %w", s.Rank, err)
	}
	p := &Schur2{s: s, opts: opts}
	if red == nil {
		// Degenerate subdomain (everything separator): fall back to the
		// identity reduction — the expanded Schur system is the whole
		// owned block.
		p.nG = 0
		p.nExp = s.NLoc()
		p.perm = sparse.IdentityPerm(s.NLoc())
		p.inv = p.perm.Inverse()
		sExp := owned
		return p.finish(sExp, opts)
	}
	p.red = red
	p.nG = red.NB
	p.nExp = s.NLoc() - red.NB
	p.perm = red.Perm
	p.inv = p.perm.Inverse()
	return p.finish(red.S, opts)
}

// reduceInternalOnly runs the group-independent-set reduction on the
// owned block, with every interdomain interface unknown (local index ≥
// nInt) pre-assigned to the separator.
func reduceInternalOnly(owned *sparse.CSR, nInt, maxGroup int, dropTol float64) (*arms.Reduction, error) {
	// Mask: restrict grouping to the internal block by reducing the
	// leading principal submatrix and then splicing the interface part
	// back into the separator. arms.Reduce operates on a whole matrix, so
	// run it on B and rebuild the permutation over the owned block.
	n := owned.Rows
	if nInt == 0 {
		return nil, nil
	}
	idx := make([]int, nInt)
	for i := range idx {
		idx[i] = i
	}
	b := sparse.Extract(owned, idx, idx)
	group, ng := arms.GroupIndependentSet(b, maxGroup)
	permB, nB, blocks := arms.IndSetPerm(group, ng)
	if nB == 0 {
		return nil, nil
	}
	// Owned-block permutation: grouped internals first, then separator
	// internals, then interface unknowns.
	perm := make(sparse.Perm, 0, n)
	perm = append(perm, permB...)
	for i := nInt; i < n; i++ {
		perm = append(perm, i)
	}
	p := sparse.PermuteSym(owned, perm)

	red := &arms.Reduction{Perm: perm, NB: nB, Blocks: blocks}
	bIdx := make([]int, nB)
	for i := range bIdx {
		bIdx[i] = i
	}
	cIdx := make([]int, n-nB)
	for i := range cIdx {
		cIdx[i] = nB + i
	}
	bBlk := sparse.Extract(p, bIdx, bIdx)
	red.F = sparse.Extract(p, bIdx, cIdx)
	red.E = sparse.Extract(p, cIdx, bIdx)
	cBlk := sparse.Extract(p, cIdx, cIdx)

	red.BlockLU = make([]*sparse.LU, len(blocks))
	for g, ext := range blocks {
		d := denseBlock(bBlk, ext[0], ext[1])
		lu, err := d.Factor()
		if err != nil {
			return nil, fmt.Errorf("group %d: %w", g, err)
		}
		red.BlockLU[g] = lu
	}
	red.S = arms.AssembleSchur(cBlk, red.E, red.F, red, dropTol)
	return red, nil
}

func denseBlock(b *sparse.CSR, lo, hi int) *sparse.Dense {
	d := sparse.NewDense(hi-lo, hi-lo)
	for i := lo; i < hi; i++ {
		cols, vals := b.Row(i)
		for k, j := range cols {
			if j >= lo && j < hi {
				d.Set(i-lo, j-lo, vals[k])
			}
		}
	}
	return d
}

func (p *Schur2) finish(sExp *sparse.CSR, opts Schur2Options) (*Schur2, error) {
	s := p.s
	// The "distributed ILU(0)" preconditioner for the global expanded
	// Schur system: ILU(0) of the local expanded Schur block (the pARMS
	// practice).
	sFact, err := ilu.ILU0(sExp)
	if err != nil {
		// The expanded Schur assembly can, after aggressive dropping,
		// lose a diagonal entry; fall back to ILUT which re-creates it.
		sFact, err = ilu.ILUT(sExp, opts.ILUT)
		if err != nil {
			return nil, fmt.Errorf("precond: Schur 2 rank %d: %w", s.Rank, err)
		}
	}
	p.sFact = sFact

	// External couplings of the expanded rows: rows ≥ NInt (interdomain)
	// keep their E_ij blocks; local-interface rows have none.
	eExtSrc := s.BlockEExt() // NIface × NExt, rows are interdomain locals NInt..NLoc
	nIface := s.NIface()
	coo := sparse.NewCOO(p.nExp, s.NExt(), eExtSrc.NNZ())
	for i := 0; i < nIface; i++ {
		expRow := p.inv[s.NInt+i] - p.nG
		cols, vals := eExtSrc.Row(i)
		for k, j := range cols {
			coo.Add(expRow, j, vals[k])
		}
	}
	eExt := coo.ToCSR()

	op, err := schur.NewExplicit(s, sExp, eExt, func(l int) (int, bool) {
		ii := p.inv[l] - p.nG
		if ii < 0 {
			return 0, false
		}
		return ii, true
	})
	if err != nil {
		return nil, err
	}
	p.op = op
	p.work = make([]float64, s.NLoc())
	p.y = make([]float64, p.nExp)
	p.gp = make([]float64, p.nExp)
	p.uG = make([]float64, p.nG)
	p.fTmp = make([]float64, p.nG)
	p.ws = krylov.NewWorkspace()
	return p, nil
}

// Apply runs the expanded-Schur preconditioner. Must be called
// collectively.
func (p *Schur2) Apply(c *dist.Comm, z, r []float64) {
	// Permute into [groups | expanded interface].
	for i, old := range p.perm {
		p.work[i] = r[old]
	}
	rG := p.work[:p.nG]
	rExp := p.work[p.nG:]

	// Step 1: forward elimination — ĝ = r_exp − E·B⁻¹·r_G.
	copy(p.gp, rExp)
	if p.red != nil {
		p.red.SolveB(p.uG, rG)
		c.Compute(p.red.SolveBFlops())
		p.red.E.MulVecSub(p.gp, p.uG)
		c.Compute(2 * float64(p.red.E.NNZ()))
	}

	// Step 2: a few distributed GMRES iterations on the global expanded
	// Schur system, preconditioned by the local ILU(0).
	for i := range p.y {
		p.y[i] = 0
	}
	krylov.GMRES(p.nExp,
		func(out, x []float64) {
			if err := p.op.MatVec(c, out, x); err != nil {
				if p.commErr == nil {
					p.commErr = err
				}
				poisonNaN(out)
			}
		},
		func(out, x []float64) {
			p.sFact.Solve(out, x)
			c.Compute(p.sFact.SolveFlops())
		},
		func(a, b []float64) float64 { return p.op.Dot(c, a, b) },
		p.gp, p.y,
		krylov.Options{
			Restart:  p.opts.SchurIters,
			MaxIters: p.opts.SchurIters,
			Tol:      p.opts.SchurTol,
			Compute:  c.Compute,
			Work:     p.ws,
		})

	// Step 3: back substitution — u_G = B⁻¹·(r_G − F·y).
	if p.red != nil {
		copy(p.fTmp, rG)
		p.red.F.MulVecSub(p.fTmp, p.y)
		c.Compute(2 * float64(p.red.F.NNZ()))
		p.red.SolveB(p.uG, p.fTmp)
		c.Compute(p.red.SolveBFlops())
	}

	// Un-permute.
	for i, old := range p.perm {
		if i < p.nG {
			z[old] = p.uG[i]
		} else {
			z[old] = p.y[i-p.nG]
		}
	}
}

// Name returns the paper's notation for this preconditioner.
func (p *Schur2) Name() string { return string(KindSchur2) }

// TakeCommErr returns and clears the first interface-exchange failure
// recorded during Apply (CommErrRecorder).
func (p *Schur2) TakeCommErr() error {
	err := p.commErr
	p.commErr = nil
	return err
}

// ExpandedSize reports (grouped, expanded-interface) sizes for
// diagnostics: the paper's Fig. 2 distinction between interior, local
// interface and interdomain interface unknowns.
func (p *Schur2) ExpandedSize() (groups, expanded int) { return p.nG, p.nExp }

// SetupFlops estimates the construction cost of this preconditioner: the
// dense group-block factorizations plus the expanded-Schur assembly and
// its ILU(0).
func (p *Schur2) SetupFlops() float64 {
	var f float64
	if p.red != nil {
		for _, ext := range p.red.Blocks {
			sz := float64(ext[1] - ext[0])
			f += sz * sz * sz / 3
		}
		f += 2 * float64(p.red.E.NNZ()+p.red.F.NNZ()+p.red.S.NNZ())
	}
	f += 2 * float64(p.sFact.NNZ())
	return f
}
