package mmio

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"parapre/internal/sparse"
)

func randCSR(rng *rand.Rand, n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, n*4)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1+rng.Float64())
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestMatrixRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randCSR(rng, 2+rng.Intn(20))
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, a); err != nil {
			return false
		}
		b, err := ReadMatrix(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	x := []float64{1, -2.5, 3e-17, math.Pi, 0}
	var buf bytes.Buffer
	if err := WriteVector(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("vector differs at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
`
	a, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatalf("symmetric expansion failed: %v %v", a.At(0, 1), a.At(1, 0))
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz %d, want 5", a.NNZ())
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
`
	a, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 || a.At(0, 1) != -3 {
		t.Fatalf("skew expansion failed: %v %v", a.At(1, 0), a.At(0, 1))
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern values not 1.0")
	}
}

func TestReadIntegerField(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 2
1 1 7
2 2 -3
`
	a, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 7 || a.At(1, 1) != -3 {
		t.Fatal("integer values misread")
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"badBanner":     "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"badObject":     "%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"badField":      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"badSymmetry":   "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"arrayMatrix":   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"missingSize":   "%%MatrixMarket matrix coordinate real general\n",
		"badSize":       "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"negativeSize":  "%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
		"truncated":     "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"outOfRange":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"malformedRow":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"badValueToken": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrix(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadVectorErrors(t *testing.T) {
	cases := map[string]string{
		"coordinate": "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n",
		"matrix":     "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"truncated":  "%%MatrixMarket matrix array real general\n3 1\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadVector(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDuplicateEntriesSummed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1.0
1 1 2.5
2 2 1.0
`
	a, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3.5 {
		t.Fatalf("duplicates not summed: %v", a.At(0, 0))
	}
}
