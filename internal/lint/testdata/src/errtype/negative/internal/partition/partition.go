// Negative errtype fixture for the partition package: the documented
// typed PartitionError, %w wraps and callee passthroughs. The analyzer
// must stay silent.
package partition

import "fmt"

// Graph simulates the adjacency structure the partitioner consumes.
type Graph struct {
	Ptr []int
	Adj []int
}

// PartitionError is the documented typed rejection of a malformed
// partitioning request.
type PartitionError struct {
	P      int
	N      int
	Reason string
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("partition: p=%d over %d vertices: %s", e.P, e.N, e.Reason)
}

// General returns only the typed error, a %w wrap of it, or a callee
// passthrough.
func General(g *Graph, p int) ([]int, error) {
	n := len(g.Ptr) - 1
	if p < 1 {
		return nil, &PartitionError{P: p, N: n, Reason: "part count must be positive"}
	}
	if err := validate(g); err != nil {
		return nil, fmt.Errorf("partition: graph rejected: %w", err)
	}
	if err := validate(g); err != nil {
		return nil, err // passthrough from a callee: not fresh
	}
	return make([]int, n), nil
}

func validate(g *Graph) error {
	if g.Ptr[len(g.Ptr)-1] != len(g.Adj) {
		return &PartitionError{P: 0, N: len(g.Ptr) - 1, Reason: "truncated adjacency"}
	}
	return nil
}
