package krylov

import "fmt"

// State is a complete snapshot of one rank's solver recurrence at an
// iteration boundary — everything (F)GMRES or CG needs to continue the
// solve exactly where it stopped: the Krylov basis built so far, the
// Hessenberg columns with their Givens rotations, the iterate, and the
// residual history. Snapshots are produced by the Options.Checkpoint hook
// and consumed by Options.Resume; the ckpt package gives them a durable,
// versioned on-disk form.
//
// All slices are deep copies: a State never aliases live solver
// workspace, so it stays valid after the solve moves on (or dies).
type State struct {
	Method   string // "GMRES", "FGMRES" or "CG"
	N        int    // local unknowns
	M        int    // restart length m (GMRES family; 0 for CG)
	Iter     int    // total iterations completed
	Restarts int    // restart cycles begun after the first
	J        int    // next inner Arnoldi index within the current cycle

	Ref     float64 // convergence reference (initial residual norm)
	Initial float64 // Result.Initial at capture time

	// PrecondID names the preconditioner the Krylov space was built
	// with. The solver does not interpret it; the restore layer refuses
	// to resume a basis under a different preconditioner (the right-
	// preconditioned update x += M⁻¹·V·y is only meaningful for the M
	// that produced V).
	PrecondID string

	X []float64 // current iterate (start-of-cycle iterate mid-GMRES-cycle)

	// GMRES family: V holds basis vectors 0..J, Z the J preconditioned
	// vectors of the flexible variant, H the first J Hessenberg columns
	// (column-major, stride M+1), Cs/Sn the J applied rotations, G the
	// first J+1 entries of the rotated residual vector.
	V  [][]float64
	Z  [][]float64
	H  []float64
	Cs []float64
	Sn []float64
	G  []float64

	// CG recurrence.
	R  []float64
	P  []float64
	RZ float64

	History []float64 // residual history up to the snapshot (with RecordHistory)
}

// StateMismatchError reports a snapshot restored into a solver it does
// not fit: a different method, problem size, restart length, or
// preconditioner identity.
type StateMismatchError struct {
	Field string // "method", "n", "restart", "precond"
	Want  string
	Got   string
}

func (e *StateMismatchError) Error() string {
	return fmt.Sprintf("krylov: cannot resume: checkpoint %s is %q, solver wants %q",
		e.Field, e.Got, e.Want)
}

// check validates the snapshot against the solver about to consume it.
func (s *State) check(method string, n, m int) error {
	if s.Method != method {
		//lint:ignore allocfree restore mismatch is a terminal once-per-solve event, not steady-state
		return &StateMismatchError{Field: "method", Want: method, Got: s.Method}
	}
	if s.N != n {
		//lint:ignore allocfree restore mismatch is a terminal once-per-solve event, not steady-state
		return &StateMismatchError{Field: "n", Want: fmt.Sprint(n), Got: fmt.Sprint(s.N)}
	}
	if s.M != m {
		//lint:ignore allocfree restore mismatch is a terminal once-per-solve event, not steady-state
		return &StateMismatchError{Field: "restart", Want: fmt.Sprint(m), Got: fmt.Sprint(s.M)}
	}
	return nil
}

// cloneVec is a deep copy helper for snapshot capture.
func cloneVec(v []float64) []float64 {
	if v == nil {
		return nil
	}
	//lint:ignore allocfree snapshot capture deep-copies by contract; the hook is opt-in and excluded from the steady-state claim
	return append([]float64(nil), v...)
}

// captureGMRES deep-copies the live (F)GMRES recurrence at the boundary
// of inner iteration j. Only the defined prefixes are captured, so two
// runs that reach the same iteration produce byte-identical snapshots
// regardless of what stale workspace memory holds.
func captureGMRES(method string, n, m, totalIters, restarts, j int, ref float64,
	res *Result, x []float64, V, Z [][]float64, H, cs, sn, g []float64) *State {
	//lint:ignore allocfree checkpoint capture is an opt-in boundary event, excluded from the steady-state contract
	st := &State{
		Method:   method,
		N:        n,
		M:        m,
		Iter:     totalIters,
		Restarts: restarts,
		J:        j,
		Ref:      ref,
		Initial:  res.Initial,
		X:        cloneVec(x),
		H:        cloneVec(H[:(m+1)*j]),
		Cs:       cloneVec(cs[:j]),
		Sn:       cloneVec(sn[:j]),
		G:        cloneVec(g[:j+1]),
		History:  cloneVec(res.History),
	}
	//lint:ignore allocfree checkpoint capture is an opt-in boundary event, excluded from the steady-state contract
	st.V = make([][]float64, j+1)
	for i := 0; i <= j; i++ {
		st.V[i] = cloneVec(V[i])
	}
	if Z != nil {
		//lint:ignore allocfree checkpoint capture is an opt-in boundary event, excluded from the steady-state contract
		st.Z = make([][]float64, j)
		for i := 0; i < j; i++ {
			st.Z[i] = cloneVec(Z[i])
		}
	}
	return st
}

// captureCG deep-copies the live CG recurrence at the boundary of
// iteration it.
func captureCG(n, it int, res *Result, x, r, p []float64, rz float64) *State {
	//lint:ignore allocfree checkpoint capture is an opt-in boundary event, excluded from the steady-state contract
	return &State{
		Method:  "CG",
		N:       n,
		Iter:    it,
		Ref:     res.Initial,
		Initial: res.Initial,
		X:       cloneVec(x),
		R:       cloneVec(r),
		P:       cloneVec(p),
		RZ:      rz,
		History: cloneVec(res.History),
	}
}
