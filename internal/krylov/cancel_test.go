package krylov

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestGMRESStopCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, _ := randSystem(rng, 80, 0.05, true)
	x := make([]float64, 80)
	polls := 0
	opt := Options{Restart: 10, MaxIters: 500, Tol: 1e-12, RecordHistory: true,
		Stop: func() bool { polls++; return polls > 4 }}
	res := SolveCSR(a, nil, b, x, opt)
	if !errors.Is(res.Err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	var ce *CanceledError
	if !errors.As(res.Err, &ce) {
		t.Fatalf("Err %T does not unwrap to *CanceledError", res.Err)
	}
	if ce.Method != "GMRES" || ce.Iteration != res.Iterations {
		t.Errorf("CanceledError = %+v, Iterations = %d", ce, res.Iterations)
	}
	if res.Converged || res.Iterations != 4 {
		t.Errorf("stopped after 4 completed iterations, got %+v", res)
	}
	// The iterate must carry the 4 completed columns, not be abandoned.
	for _, v := range x {
		if !finite(v) {
			t.Fatal("canceled iterate is not finite")
		}
	}
	if res.Final <= 0 || !finite(res.Final) {
		t.Errorf("Final = %v, want the running residual estimate", res.Final)
	}
}

func TestGMRESStopBeforeFirstIteration(t *testing.T) {
	a, b, _ := randSystem(rand.New(rand.NewSource(12)), 30, 0.1, false)
	x := make([]float64, 30)
	res := SolveCSR(a, nil, b, x, Options{Restart: 10, MaxIters: 100, Tol: 1e-10,
		Stop: func() bool { return true }})
	if !errors.Is(res.Err, ErrCanceled) || res.Iterations != 0 {
		t.Fatalf("immediate cancel: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x moved on an immediately-canceled solve")
		}
	}
}

func TestCGStopCancels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, b, _ := randSystem(rng, 60, 0.05, false) // symmetric, diagonally dominant
	n := 60
	x := make([]float64, n)
	polls := 0
	res := CG(n, func(y, v []float64) { a.MulVecTo(y, v) }, nil,
		func(u, v []float64) float64 {
			var s float64
			for i := range u {
				s += u[i] * v[i]
			}
			return s
		}, b, x, Options{MaxIters: 500, Tol: 1e-12,
			Stop: func() bool { polls++; return polls > 3 }})
	if !errors.Is(res.Err, ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	var ce *CanceledError
	if !errors.As(res.Err, &ce) || ce.Method != "CG" {
		t.Fatalf("bad cancel record: %v", res.Err)
	}
	if res.Converged || res.Iterations != 3 {
		t.Errorf("stopped after 3 completed iterations, got %+v", res)
	}
	if res.Final <= 0 || !finite(res.Final) {
		t.Errorf("Final = %v, want last completed residual", res.Final)
	}
}

// A Stop hook that never fires must leave the arithmetic untouched: same
// iterations, bit-identical residual history.
func TestStopNeverFiringIsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a, b, _ := randSystem(rng, 70, 0.08, true)
	run := func(stop func() bool) Result {
		x := make([]float64, 70)
		return SolveCSR(a, nil, b, x, Options{Restart: 15, MaxIters: 300, Tol: 1e-9,
			RecordHistory: true, Stop: stop})
	}
	ref := run(nil)
	polled := run(func() bool { return false })
	if ref.Iterations != polled.Iterations || len(ref.History) != len(polled.History) {
		t.Fatalf("iteration mismatch: %d vs %d", ref.Iterations, polled.Iterations)
	}
	for i := range ref.History {
		if ref.History[i] != polled.History[i] {
			t.Fatalf("history[%d]: %v vs %v", i, ref.History[i], polled.History[i])
		}
	}
}

// Progress must report exactly the values History records, in order.
func TestProgressMirrorsHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a, b, _ := randSystem(rng, 50, 0.1, true)
	x := make([]float64, 50)
	var iters []int
	var resids []float64
	res := SolveCSR(a, nil, b, x, Options{Restart: 12, MaxIters: 200, Tol: 1e-9,
		RecordHistory: true,
		Progress:      func(it int, r float64) { iters = append(iters, it); resids = append(resids, r) }})
	if len(resids) != len(res.History) {
		t.Fatalf("progress calls %d, history %d", len(resids), len(res.History))
	}
	for i := range resids {
		if resids[i] != res.History[i] {
			t.Fatalf("progress[%d] = %v, history %v", i, resids[i], res.History[i])
		}
	}
	for i := 1; i < len(iters); i++ {
		if iters[i] != iters[i-1]+1 {
			t.Fatalf("progress iterations not consecutive: %v", iters)
		}
	}
	if math.IsNaN(res.Final) {
		t.Fatal("NaN final")
	}
}
