package dist

import (
	"math"
	"math/rand"
	"sort"
)

// FaultPlan is a seeded, deterministic chaos schedule for one world. Every
// injection decision is drawn from a per-rank PRNG seeded by (Seed, rank),
// and every rank's operation sequence is itself deterministic, so a plan
// reproduces the exact same faults on every run — no wall-clock
// randomness anywhere. The zero value injects nothing; a nil plan is
// bypassed with a single pointer check per operation, leaving modeled
// times bit-identical to a world without the fault layer.
//
// Fault plans are meant to be driven through RunOpts (or core.Config),
// which converts the injected failures into typed errors; under the
// legacy Run a hard crash would take the process down.
type FaultPlan struct {
	Seed int64

	// DropProb is the per-message probability that the network silently
	// eats a Send. The receiver keeps waiting — the symptom is a watchdog
	// DeadlockError or, once the stream re-pairs, a TagMismatchError.
	DropProb float64

	// DelayProb/DelayMax inject per-message latency jitter: with
	// probability DelayProb a message's virtual timestamp is pushed back
	// by Uniform(0, DelayMax) seconds, modeling a congested network.
	DelayProb float64
	DelayMax  float64

	// CorruptProb is the per-message probability of payload corruption:
	// half the injections poison one element with NaN (detected by the
	// strict exchange and the solver's breakdown checks), half flip one
	// mantissa bit (a silent value error that must surface through
	// residual behavior).
	CorruptProb float64

	// StragglerEvery/StragglerFactor slow down every StragglerEvery-th
	// rank (ranks r with (r+1) % StragglerEvery == 0) by multiplying its
	// compute time, modeling the paper's "heavily loaded" Origin 3800.
	// 0 disables.
	StragglerEvery  int
	StragglerFactor float64

	// CrashRank hard-crashes one rank after it has completed CrashAfterOps
	// dist operations (Send/Recv/collective/Compute calls). Crashing is
	// active only when CrashAfterOps > 0, so the zero value is safe.
	CrashRank     int
	CrashAfterOps int

	// TargetRecvRanks, when non-empty, restricts the per-message faults
	// (drop, delay, corruption) to messages whose *receiver* is listed —
	// aiming the chaos at specific ranks, e.g. to exercise error paths
	// that only fire away from rank 0. The PRNG draws are consumed for
	// every message regardless, so a targeted plan's fault stream stays
	// aligned with the same plan untargeted: the same messages are hit,
	// the off-target hits are just not applied. Nil targets every rank.
	TargetRecvRanks []int
}

// FaultPlanNames lists the built-in chaos plans, in matrix order.
func FaultPlanNames() []string {
	names := make([]string, 0, len(namedPlans))
	for n := range namedPlans {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var namedPlans = map[string]func(seed int64) *FaultPlan{
	"drop":      func(s int64) *FaultPlan { return &FaultPlan{Seed: s, DropProb: 0.01} },
	"delay":     func(s int64) *FaultPlan { return &FaultPlan{Seed: s, DelayProb: 0.25, DelayMax: 2e-3} },
	"corrupt":   func(s int64) *FaultPlan { return &FaultPlan{Seed: s, CorruptProb: 0.02} },
	"straggler": func(s int64) *FaultPlan { return &FaultPlan{Seed: s, StragglerEvery: 4, StragglerFactor: 8} },
	"crash":     func(s int64) *FaultPlan { return &FaultPlan{Seed: s, CrashRank: 1, CrashAfterOps: 400} },
}

// NamedFaultPlan returns one of the built-in chaos plans ("drop",
// "delay", "corrupt", "straggler", "crash") seeded with seed.
func NamedFaultPlan(name string, seed int64) (*FaultPlan, error) {
	mk, ok := namedPlans[name]
	if !ok {
		return nil, &UnknownPlanError{Name: name, Have: FaultPlanNames()}
	}
	return mk(seed), nil
}

// countingSource wraps the fault PRNG's source with a draw counter, so a
// checkpoint can record the stream position as a plain integer cursor and
// a restore can fast-forward to it by discarding draws — exact stream
// reproduction without serializing math/rand internals.
type countingSource struct {
	src rand.Source
	n   uint64 // raw Int63 draws consumed
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// rankFaults is the per-rank instantiation of a FaultPlan: its own PRNG
// stream plus the precomputed straggler/crash roles of this rank.
type rankFaults struct {
	plan     *FaultPlan
	src      *countingSource
	rng      *rand.Rand
	straggle float64 // compute-time multiplier (1 = none)
	crashAt  int     // op count at which this rank dies; -1 = never
	ops      int     // dist operations started so far
}

func newRankFaults(p *FaultPlan, rank int) *rankFaults {
	// SplitMix64-style seed scrambling keeps per-rank streams decorrelated
	// even for adjacent (Seed, rank) pairs.
	s := uint64(p.Seed)*0x9E3779B97F4A7C15 + uint64(rank+1)*0xBF58476D1CE4E5B9
	s ^= s >> 31
	src := &countingSource{src: rand.NewSource(int64(s))}
	f := &rankFaults{plan: p, src: src, rng: rand.New(src), straggle: 1, crashAt: -1}
	if p.StragglerEvery > 0 && p.StragglerFactor > 1 && (rank+1)%p.StragglerEvery == 0 {
		f.straggle = p.StragglerFactor
	}
	if p.CrashAfterOps > 0 && p.CrashRank == rank {
		f.crashAt = p.CrashAfterOps
	}
	return f
}

// step counts one dist operation and fires the planned hard crash. Called
// at the start of every Send/Recv/collective/Compute.
func (f *rankFaults) step(rank int) {
	f.ops++
	if f.crashAt >= 0 && f.ops > f.crashAt {
		panic(crashPanic{rank: rank})
	}
}

// sendFaults draws this message's injection decisions for a message bound
// for rank to. The draw count per call is fixed (three uniforms, plus
// conditional draws whose conditions are themselves deterministic — the
// receiver targeting masks the *application*, never the draws), so the
// stream stays aligned across runs and across targeting changes. It
// returns the extra virtual delay, whether the message is dropped, and
// whether the payload was corrupted (mutated in place) — the last two so
// the observability layer can count fault events without extra draws.
func (f *rankFaults) sendFaults(buf []float64, to int) (delay float64, dropped, corrupted bool) {
	p := f.plan
	dropU, delayU, corrU := f.rng.Float64(), f.rng.Float64(), f.rng.Float64()
	targeted := p.targetsRecv(to)
	if p.DelayProb > 0 && delayU < p.DelayProb {
		d := f.rng.Float64() * p.DelayMax
		if targeted {
			delay = d
		}
	}
	if p.CorruptProb > 0 && corrU < p.CorruptProb && len(buf) > 0 {
		i := f.rng.Intn(len(buf))
		nan := f.rng.Float64() < 0.5
		var bit uint
		if !nan {
			bit = uint(f.rng.Intn(52)) // mantissa bit: a silent value error
		}
		if targeted {
			corrupted = true
			if nan {
				buf[i] = math.NaN()
			} else {
				buf[i] = math.Float64frombits(math.Float64bits(buf[i]) ^ (1 << bit))
			}
		}
	}
	dropped = targeted && p.DropProb > 0 && dropU < p.DropProb
	return delay, dropped, corrupted
}

// targetsRecv reports whether per-message faults apply to messages
// received by rank to under this plan's targeting.
func (p *FaultPlan) targetsRecv(to int) bool {
	if len(p.TargetRecvRanks) == 0 {
		return true
	}
	for _, r := range p.TargetRecvRanks {
		if r == to {
			return true
		}
	}
	return false
}
