package precond

import (
	"fmt"
	"sort"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/par"
	"parapre/internal/sparse"
)

// OverlapBlock is the paper's §1.1 extension of the simple block
// preconditioners: each subdomain is enlarged by `levels` layers of
// matrix-graph neighbors beyond the minimum (distance-1) overlap, the
// enlarged block is factored incompletely, and the preconditioner applies
// a restricted-additive-Schwarz sweep — residuals are gathered over the
// overlap, the enlarged system is solved approximately, and only the
// owned part of the correction is kept (restriction avoids the
// double-counting of classical additive Schwarz and converges faster).
// levels = 0 degenerates to the plain Block preconditioner (with a halo
// of zero extra rows).
type OverlapBlock struct {
	name string
	s    *dsys.System
	f    *ilu.LU

	extNodes []int // global ids of the enlarged subdomain, owned first
	ownN     int

	// halo exchange lists (wired by WireOverlap)
	haloOut []haloPeer // peers needing our owned values
	haloIn  []haloPeer // peers owning parts of our overlap

	rExt, zExt []float64
}

const tagOverlapR = 320

// OverlapOptions selects the factorization of the enlarged blocks.
type OverlapOptions struct {
	Levels  int             // extra overlap layers beyond the minimum
	UseILU0 bool            // true: ILU(0) (Block 1 flavor); false: ILUT (Block 2 flavor)
	ILUT    ilu.ILUTOptions // used when UseILU0 is false
}

// BuildOverlapBlocks constructs one OverlapBlock per rank from the global
// matrix and the partition, and wires the halo exchanges. The per-rank
// block growth and factorization are independent and run on the
// shared-memory worker pool; only the cross-rank halo wiring is
// sequential. Apply is collective.
func BuildOverlapBlocks(a *sparse.CSR, part []int, systems []*dsys.System, opt OverlapOptions) ([]*OverlapBlock, error) {
	p := len(systems)
	all := make([]*OverlapBlock, p)
	ownerLocal := make([]map[int]int, p)
	for r, s := range systems {
		m := make(map[int]int, s.NLoc())
		for l, g := range s.GlobalIDs {
			m[g] = l
		}
		ownerLocal[r] = m
	}

	errs := make([]error, p)
	par.Run(p, func(r int) {
		s := systems[r]
		ob := &OverlapBlock{s: s, ownN: s.NLoc()}
		if opt.UseILU0 {
			ob.name = fmt.Sprintf("Block 1 (+%d overlap)", opt.Levels)
		} else {
			ob.name = fmt.Sprintf("Block 2 (+%d overlap)", opt.Levels)
		}

		// Grow the subdomain by `levels` graph layers.
		inSet := make(map[int]bool, s.NLoc()*2)
		ob.extNodes = append(ob.extNodes, s.GlobalIDs...)
		for _, g := range s.GlobalIDs {
			inSet[g] = true
		}
		frontier := append([]int(nil), s.GlobalIDs...)
		for lev := 0; lev < opt.Levels; lev++ {
			var next []int
			for _, g := range frontier {
				cols, _ := a.Row(g)
				for _, j := range cols {
					if !inSet[j] {
						inSet[j] = true
						next = append(next, j)
					}
				}
			}
			sort.Ints(next)
			ob.extNodes = append(ob.extNodes, next...)
			frontier = next
		}

		// Factor the enlarged block (zero-Dirichlet exterior).
		blk := sparse.Extract(a, ob.extNodes, ob.extNodes)
		var err error
		if opt.UseILU0 {
			ob.f, err = ilu.ILU0(blk)
		} else {
			ob.f, err = ilu.ILUT(blk, opt.ILUT)
		}
		if err != nil {
			errs[r] = fmt.Errorf("precond: overlap block rank %d: %w", r, err)
			return
		}
		ob.rExt = make([]float64, len(ob.extNodes))
		ob.zExt = make([]float64, len(ob.extNodes))
		all[r] = ob
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Wire halos: rank r needs values of extNodes[ownN:] from their
	// owners.
	for r, ob := range all {
		needs := map[int][]int{} // owner → ext index
		for k := ob.ownN; k < len(ob.extNodes); k++ {
			g := ob.extNodes[k]
			owner := part[g]
			needs[owner] = append(needs[owner], k)
		}
		peers := make([]int, 0, len(needs))
		for q := range needs {
			peers = append(peers, q)
		}
		sort.Ints(peers)
		for _, q := range peers {
			extIdx := needs[q]
			send := make([]int, len(extIdx))
			for t, k := range extIdx {
				l, ok := ownerLocal[q][ob.extNodes[k]]
				if !ok {
					return nil, fmt.Errorf("precond: overlap wiring: rank %d does not own node %d", q, ob.extNodes[k])
				}
				send[t] = l
			}
			ob.haloIn = append(ob.haloIn, haloPeer{rank: q, recvIdx: extIdx})
			all[q].haloOut = append(all[q].haloOut, haloPeer{rank: r, sendIdx: send,
				buf: make([]float64, len(send))})
		}
	}
	return all, nil
}

// Apply gathers the residual over the overlap, runs one incomplete solve
// on the enlarged block, and keeps the owned part (restricted additive
// Schwarz). Must be called collectively after BuildOverlapBlocks.
func (p *OverlapBlock) Apply(c *dist.Comm, z, r []float64) {
	copy(p.rExt[:p.ownN], r)
	for i := p.ownN; i < len(p.rExt); i++ {
		p.rExt[i] = 0
	}
	for _, hp := range p.haloOut {
		for t, l := range hp.sendIdx {
			hp.buf[t] = r[l]
		}
		c.Send(hp.rank, tagOverlapR, hp.buf)
	}
	for _, hp := range p.haloIn {
		got := c.Recv(hp.rank, tagOverlapR)
		for t, k := range hp.recvIdx {
			p.rExt[k] = got[t]
		}
	}
	p.f.Solve(p.zExt, p.rExt)
	c.Compute(p.f.SolveFlops())
	copy(z, p.zExt[:p.ownN])
}

// Name identifies the preconditioner variant, including the overlap depth.
func (p *OverlapBlock) Name() string { return p.name }

// ExtSize reports (owned, total) block sizes for diagnostics.
func (p *OverlapBlock) ExtSize() (owned, total int) { return p.ownN, len(p.extNodes) }

// SetupFlops estimates the construction cost (factor sweeps).
func (p *OverlapBlock) SetupFlops() float64 { return 2 * float64(p.f.NNZ()) }
