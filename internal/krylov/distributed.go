package krylov

import (
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/sparse"
)

// SolveCSR runs (F)GMRES on a sequentially stored sparse system. It is
// the subdomain-local solver used inside the Schur 1 preconditioner ("a
// few local GMRES iterations preconditioned by ILUT").
func SolveCSR(a *sparse.CSR, precond Prec, b, x []float64, opt Options) Result {
	matvec := func(y, xx []float64) {
		a.MulVecTo(y, xx)
		if opt.Compute != nil {
			opt.Compute(2 * float64(a.NNZ()))
		}
	}
	return GMRES(a.Rows, matvec, precond, sparse.Dot, b, x, opt)
}

// Distributed runs (F)GMRES(m) on the distributed system s from rank c:
// the matvec performs the interface exchange, the inner product performs
// the global reduction, and all local vector work is charged to the
// rank's virtual clock. Every rank must call Distributed collectively
// with its own s and x. The solution overwrites x (owned unknowns only).
func Distributed(c *dist.Comm, s *dsys.System, precond Prec, b, x []float64, opt Options) Result {
	ext := make([]float64, s.NLoc()+s.NExt())
	matvec := func(y, xx []float64) { s.MatVec(c, y, xx, ext) }
	dot := func(u, v []float64) float64 { return s.Dot(c, u, v) }
	if opt.Compute == nil {
		opt.Compute = c.Compute
	}
	return GMRES(s.NLoc(), matvec, precond, dot, b, x, opt)
}

// DistributedCG runs preconditioned CG on the distributed system, used by
// benchmark baselines for the SPD test cases.
func DistributedCG(c *dist.Comm, s *dsys.System, precond Prec, b, x []float64, opt Options) Result {
	ext := make([]float64, s.NLoc()+s.NExt())
	matvec := func(y, xx []float64) { s.MatVec(c, y, xx, ext) }
	dot := func(u, v []float64) float64 { return s.Dot(c, u, v) }
	if opt.Compute == nil {
		opt.Compute = c.Compute
	}
	return CG(s.NLoc(), matvec, precond, dot, b, x, opt)
}
