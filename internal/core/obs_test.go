package core_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/obs"
	"parapre/internal/par"
	"parapre/internal/precond"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden observability files")

// TestCollectorBitIdentity is the disabled-observer half of the tracing
// contract: attaching a collector must not change a single modeled bit.
// Iteration counts, residual histories, solutions, and per-rank virtual
// clocks are compared bit-for-bit between a plain solve and an observed
// solve at several worker counts.
func TestCollectorBitIdentity(t *testing.T) {
	ref := solveWithWorkers(t, 1, nil)
	for _, w := range []int{1, 3, 8} {
		col := obs.NewCollector()
		got := solveWithWorkers(t, w, func(cfg *core.Config) { cfg.Collector = col })
		if got.Iterations != ref.Iterations {
			t.Fatalf("w=%d: %d iterations, want %d", w, got.Iterations, ref.Iterations)
		}
		for i := range ref.History {
			if got.History[i] != ref.History[i] {
				t.Fatalf("w=%d: History[%d] = %x, want %x", w, i, got.History[i], ref.History[i])
			}
		}
		for i := range ref.X {
			if got.X[i] != ref.X[i] {
				t.Fatalf("w=%d: X[%d] = %x, want %x", w, i, got.X[i], ref.X[i])
			}
		}
		if len(got.PerRank) != len(ref.PerRank) {
			t.Fatalf("w=%d: %d ranks, want %d", w, len(got.PerRank), len(ref.PerRank))
		}
		for r := range ref.PerRank {
			if got.PerRank[r].Clock != ref.PerRank[r].Clock {
				t.Fatalf("w=%d: rank %d clock %x, want %x", w, r, got.PerRank[r].Clock, ref.PerRank[r].Clock)
			}
		}
		if len(col.Events()) == 0 {
			t.Fatalf("w=%d: observed solve recorded no events", w)
		}
	}
}

// TestGoldenChromeTrace pins the full tracing pipeline — span placement,
// virtual-clock attribution, exporter formatting — to a golden file: a
// fixed-seed 4-rank Poisson solve must reproduce the trace byte-for-byte
// (wall-clock fields stripped). Regenerate with -update-golden after an
// intentional instrumentation change and review the diff.
func TestGoldenChromeTrace(t *testing.T) {
	prev := par.SetWorkers(2)
	defer par.SetWorkers(prev)
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(9)
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Collector = obs.NewCollector()
	if _, err := core.Solve(prob, cfg); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	entry := obs.TraceEntry{Name: "tc1-poisson2d/Block 2/P=4", PID: 0, Collector: cfg.Collector}
	if err := obs.WriteChromeTrace(&buf, []obs.TraceEntry{entry}, obs.TraceOptions{OmitWall: true}); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("golden trace fails validation: %v", err)
	}

	golden := filepath.Join("testdata", "trace_tc1_p4.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace diverges from golden %s (%d vs %d bytes); run with -update-golden if intentional",
			golden, buf.Len(), len(want))
	}
}

// Benchmarks for the ≤2% disabled-path overhead budget: the nil-collector
// solve exercises every instrumented hot path (SpMV, exchange, FGMRES,
// preconditioner apply) with tracing off; the observed variant measures
// the recording cost.
//
//	go test ./internal/core/ -bench Solve -benchmem
func benchSolve(b *testing.B, col func() *obs.Collector) {
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		b.Fatal(err)
	}
	prob := c.Build(33)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(4, precond.KindBlock2)
		cfg.Collector = col()
		if _, err := core.Solve(prob, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNoCollector(b *testing.B) {
	benchSolve(b, func() *obs.Collector { return nil })
}

func BenchmarkSolveObserved(b *testing.B) {
	benchSolve(b, obs.NewCollector)
}
