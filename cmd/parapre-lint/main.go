// Command parapre-lint runs the project's static-analysis suite over Go
// packages in this module. It is stdlib-only (go/parser + go/types with
// a source importer) so it needs no tool dependencies beyond the Go
// toolchain itself.
//
// Two analyzer suites run:
//
//   - the syntactic per-package suite (floatcmp, determinism, dimguard,
//     sharedwrite, errdrop), on every tag set;
//   - the interprocedural program suite (detaint, allocfree, errtype,
//     waitleak), on the default tag set only — the paranoid debugging
//     build deliberately allocates for its invariant checks and is
//     outside the steady-state contracts the program suite proves.
//
// Usage:
//
//	go run ./cmd/parapre-lint ./...
//	go run ./cmd/parapre-lint -tags paranoid ./internal/sparse ./internal/krylov
//	go run ./cmd/parapre-lint -json ./...
//	go run ./cmd/parapre-lint -write-baseline ./...
//	go run ./cmd/parapre-lint -list
//
// Findings are gated against the committed baseline (lint-baseline.json
// at the module root, override with -baseline): findings the baseline
// does not cover are NEW and fail the run; baseline entries whose
// finding is gone are STALE and also fail the run, prompting a
// -write-baseline regeneration so the baseline only ever shrinks.
// Stale //lint:ignore directives that suppress nothing are reported as
// unusedignore findings by the same run.
//
// Exit status is 0 when the run is clean against the baseline, 1 when it
// is not, and 2 on usage or load errors. Findings that are intentional
// are suppressed in source with a documented directive:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the flagged line or on its own line directly above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parapre/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("parapre-lint", flag.ContinueOnError)
	var (
		tags      = fs.String("tags", "", "comma-separated build tags to enable (e.g. paranoid)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		only      = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		verbose   = fs.Bool("v", false, "print each package as it is checked")
		jsonOut   = fs.Bool("json", false, "emit findings and the baseline diff as JSON on stdout")
		baseline  = fs.String("baseline", "", "baseline file to gate against (default: <module>/lint-baseline.json)")
		writeBase = fs.Bool("write-baseline", false, "regenerate the baseline from this run's findings and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: parapre-lint [flags] <packages>\n\n")
		fmt.Fprintf(fs.Output(), "Packages are directory paths relative to the module root; a\n")
		fmt.Fprintf(fs.Output(), "trailing /... recurses (testdata, vendor and hidden dirs are skipped).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.All()
	progAnalyzers := lint.AllProgram()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range progAnalyzers {
			fmt.Printf("%-12s %s (interprocedural)\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers, progAnalyzers = selectAnalyzers(*only)
		if analyzers == nil && progAnalyzers == nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: unknown analyzer in -only=%s\n", *only)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
		return 2
	}
	defaultTags := true
	for _, t := range strings.Split(*tags, ",") {
		if t = strings.TrimSpace(t); t != "" {
			loader.Tags[t] = true
			defaultTags = false
		}
	}

	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintf(os.Stderr, "parapre-lint: no packages match %s\n", strings.Join(patterns, " "))
		return 2
	}

	var pkgs []*lint.Package
	targetDirs := map[string]bool{}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "checking %s\n", pkg.Path)
		}
		pkgs = append(pkgs, pkg)
		targetDirs[pkg.Dir] = true
	}

	// One shared suppression index across every loaded package (targets
	// plus module-internal dependencies): interprocedural findings can
	// land in dependency files, and their directives must be honored.
	ig, diags := lint.CollectIgnores(loader.Loaded(), lint.KnownAnalyzerNames())

	ranAnalyzers := map[string]bool{"lint": true}
	for _, p := range pkgs {
		diags = append(diags, lint.RunPackageWith(p, analyzers, ig)...)
	}
	for _, a := range analyzers {
		ranAnalyzers[a.Name] = true
	}

	// The interprocedural suite runs on the default build only: its
	// contracts (zero steady-state allocation, pruned paranoid paths)
	// are stated for the untagged binary.
	if defaultTags && len(progAnalyzers) > 0 {
		prog := lint.NewProgram(loader.Loaded())
		diags = append(diags, lint.RunProgram(prog, progAnalyzers, ig)...)
		for _, a := range progAnalyzers {
			ranAnalyzers[a.Name] = true
		}
	}

	// Unused-suppression audit: directives in the analyzed target
	// packages that suppressed nothing, for analyzers that actually ran.
	inScope := func(file string) bool { return targetDirs[filepath.Dir(file)] }
	diags = append(diags, ig.Unused(func(name string) bool { return ranAnalyzers[name] }, inScope)...)

	moduleRoot := loader.ModuleRoot
	basePath := *baseline
	if basePath == "" {
		basePath = filepath.Join(moduleRoot, "lint-baseline.json")
	}

	if *writeBase {
		if err := lint.WriteBaseline(basePath, moduleRoot, diags); err != nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "parapre-lint: wrote %d finding(s) to %s\n", len(diags), basePath)
		return 0
	}

	base, err := lint.LoadBaseline(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
		return 2
	}
	diff := base.Diff(moduleRoot, diags)

	if *jsonOut {
		report := struct {
			Diagnostics []lint.JSONDiagnostic `json:"diagnostics"`
			New         []lint.JSONDiagnostic `json:"new"`
			Stale       []lint.BaselineKey    `json:"stale_baseline"`
		}{
			Diagnostics: lint.ToJSONDiagnostics(moduleRoot, diags),
			New:         lint.ToJSONDiagnostics(moduleRoot, diff.New),
			Stale:       diff.StaleKeys(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			fmt.Fprintf(os.Stderr, "parapre-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diff.New {
			fmt.Println(d)
		}
		for _, k := range diff.StaleKeys() {
			fmt.Printf("%s: [baseline] stale entry [%s] %q: finding is gone; run -write-baseline to shrink the baseline\n",
				k.File, k.Analyzer, k.Message)
		}
	}

	if !diff.Clean() {
		if len(diff.New) > 0 {
			fmt.Fprintf(os.Stderr, "parapre-lint: %d new finding(s) not covered by %s\n", len(diff.New), basePath)
		}
		if len(diff.Stale) > 0 {
			fmt.Fprintf(os.Stderr, "parapre-lint: %d stale baseline entr(ies) in %s; regenerate with -write-baseline\n", len(diff.Stale), basePath)
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves -only names across both suites. It returns
// (nil, nil) when any name is unknown.
func selectAnalyzers(names string) ([]*lint.Analyzer, []*lint.ProgramAnalyzer) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range lint.All() {
		byName[a.Name] = a
	}
	progByName := map[string]*lint.ProgramAnalyzer{}
	for _, a := range lint.AllProgram() {
		progByName[a.Name] = a
	}
	var out []*lint.Analyzer
	var progOut []*lint.ProgramAnalyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		switch {
		case byName[n] != nil:
			out = append(out, byName[n])
		case progByName[n] != nil:
			progOut = append(progOut, progByName[n])
		default:
			return nil, nil
		}
	}
	return out, progOut
}
