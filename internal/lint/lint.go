// Package lint is the project's custom static-analysis suite: a small,
// dependency-free analyzer framework (go/ast + go/types only) plus five
// project-specific analyzers that enforce the numerical and concurrency
// invariants this codebase promises — bit-identical reductions at any
// worker count, dimension-checked kernel entry points, no silent float
// equality, no discarded errors.
//
// The analyzers:
//
//	floatcmp    ==/!= between float operands (exact-zero tests excepted)
//	determinism map iteration, time.Now or math/rand feeding numeric
//	            state in the numeric kernel packages
//	dimguard    exported sparse kernels indexing caller slices without a
//	            dimension check near the top
//	sharedwrite writes to captured variables inside par worker closures
//	            without a per-worker index
//	errdrop     discarded error returns
//
// False positives are suppressed, with a mandatory reason, by
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. An ignore
// without a reason is itself reported. The driver is cmd/parapre-lint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string

	// Applies restricts the analyzer to certain import paths; nil means
	// every package. The driver consults it; tests calling Run directly
	// on fixture packages bypass it.
	Applies func(pkgPath string) bool

	Run func(p *Package) []Diagnostic
}

// All returns the syntactic (per-package) analyzer suite in reporting
// order. The interprocedural suite is AllProgram.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, Determinism, DimGuard, SharedWrite, ErrDrop}
}

// KnownAnalyzerNames returns every analyzer name a //lint:ignore
// directive may legally reference: the syntactic suite, the
// interprocedural suite, and the framework's own "lint" channel. The
// full set is always legal in directives, regardless of which analyzers
// a particular run executes — otherwise a partial run would misreport
// the other suite's directives as unknown.
func KnownAnalyzerNames() map[string]bool {
	known := map[string]bool{"lint": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range AllProgram() {
		known[a.Name] = true
	}
	return known
}

// RunPackage runs every applicable analyzer on p and returns the
// diagnostics that survive //lint:ignore filtering, plus a diagnostic for
// each malformed ignore comment.
func RunPackage(p *Package, analyzers []*Analyzer) []Diagnostic {
	ig, malformed := CollectIgnores([]*Package{p}, KnownAnalyzerNames())
	return append(malformed, RunPackageWith(p, analyzers, ig)...)
}

// RunPackageWith is RunPackage against a caller-owned suppression index,
// so a whole-module run can share one index (and audit it afterwards).
func RunPackageWith(p *Package, analyzers []*Analyzer, ig *Ignores) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(p.Path) {
			continue
		}
		out = append(out, ig.Filter(a.Run(p))...)
	}
	return out
}

// diag builds a Diagnostic at pos.
func diag(p *Package, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// isFloat reports whether t is (an alias of) a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isFloatDeep reports whether t is a float or a slice/array nesting of
// floats ([]float64, [][]float64, [4]float32, …).
func isFloatDeep(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return isFloatDeep(u.Elem())
	case *types.Array:
		return isFloatDeep(u.Elem())
	}
	return false
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for indirect calls, conversions and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
