package schur

import "fmt"

// ExchangeError describes a failed or corrupted interface exchange: a
// receive that returned a typed communicator error, a neighbor block of
// the wrong length, or a non-finite payload (injected corruption or a
// poisoned upstream vector). It wraps the underlying receive error, if
// any, for errors.As/Is inspection, so a peer crash mid-Schur-apply
// surfaces as a rank-attributed error instead of a panic.
type ExchangeError struct {
	Rank   int
	Peer   int // -1 when the error is not tied to one neighbor
	Reason string
	Err    error // underlying dist receive error (may be nil)
}

func (e *ExchangeError) Error() string {
	msg := fmt.Sprintf("schur: rank %d interface exchange with rank %d: %s", e.Rank, e.Peer, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying receive error.
func (e *ExchangeError) Unwrap() error { return e.Err }
