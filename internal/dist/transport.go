package dist

import (
	"errors"
	"fmt"
	"time"
)

// Message is one point-to-point payload in flight between two ranks,
// together with the sender-side virtual timestamp. FDelay is the portion
// of the timestamp that is injected fault jitter rather than modeled
// communication, so the receiver can book its wait in the right Stats
// bucket.
type Message struct {
	Tag    int
	Data   []float64
	Time   float64
	FDelay float64
}

// ReduceKind names a collective fold. Transports must apply the fold in
// ascending rank order so floating-point collective results are
// bit-identical regardless of scheduling — the determinism contract every
// layer above relies on.
type ReduceKind int

// The collective folds the communicator needs. ReduceSum also carries
// Barrier (empty vectors) and AllGather (sum of zero-padded slots).
const (
	ReduceSum ReduceKind = iota
	ReduceMax
	ReduceMin
)

// ReduceOp returns the element-wise fold of the given kind. The closure
// bodies are shared by every transport (the in-process reducer and the
// socket hub) so the arithmetic — and therefore the bits — cannot drift
// between them.
func ReduceOp(kind ReduceKind) func(acc, in []float64) {
	switch kind {
	case ReduceMax:
		return func(acc, in []float64) {
			for i := range acc {
				if in[i] > acc[i] {
					acc[i] = in[i]
				}
			}
		}
	case ReduceMin:
		return func(acc, in []float64) {
			for i := range acc {
				if in[i] < acc[i] {
					acc[i] = in[i]
				}
			}
		}
	default:
		return func(acc, in []float64) {
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
}

// Sentinel errors a Transport uses to report world-level conditions. The
// Comm layer translates them: ErrWorldAborted unwinds the rank with the
// internal abort panic, ErrPeerGone becomes a *PeerCrashedError carrying
// the rank/peer/tag context only the Comm knows.
var (
	// ErrWorldAborted reports that the world was torn down (watchdog
	// deadlock, rank panic, supervisor shutdown) while the operation was
	// blocked.
	ErrWorldAborted = errors.New("dist: world aborted")
	// ErrPeerGone reports that the peer of a point-to-point operation is
	// dead (hard-crashed rank, closed socket) with no message left in
	// flight.
	ErrPeerGone = errors.New("dist: peer gone")
)

// Transport carries every rank-to-rank interaction of one world: the
// point-to-point message streams and the combining collectives. The
// default implementation is the in-process channel transport (goroutine
// ranks, exactly the pre-Transport semantics); package dist/socket runs
// each rank as an OS process over unix sockets or TCP.
//
// Semantics every implementation must provide:
//
//   - Send blocks only on backpressure and returns nil once the message
//     is accepted for delivery; a send to a dead peer is silently
//     discarded (the message could never be read).
//   - Recv blocks until a message from the given sender is available and
//     delivers messages of one ordered pair in send order.
//   - Reduce is a combining barrier: every rank contributes once per
//     wave, the fold runs in ascending rank order (see ReduceOp), and
//     all ranks receive the folded vector plus the maximum deposited
//     clock.
//   - Abort releases every blocked rank; blocked and subsequent
//     operations return ErrWorldAborted.
//   - MarkCrashed declares one rank dead: its peers' pending receives
//     drain any in-flight messages and then fail with ErrPeerGone.
//   - Grace is the wall-clock latency bound of one transport operation —
//     0 for in-process channels, the per-op deadline for sockets. The
//     deadlock watchdog extends its no-progress budget by this much so a
//     slow-but-healthy transport is not misread as a stall.
type Transport interface {
	Send(from, to int, m Message) error
	Recv(to, from int) (Message, error)
	Reduce(rank int, in []float64, clock float64, kind ReduceKind) ([]float64, float64, error)
	MarkCrashed(rank int)
	Abort()
	Grace() time.Duration
	Close() error
}

// chanTransport is the in-process channel transport: P rank goroutines in
// one address space, one buffered channel per ordered pair, a combining
// reducer for collectives. It is the default and preserves the historical
// semantics and virtual-time model bit-for-bit.
type chanTransport struct {
	p         int
	chans     []chan Message // chans[from*p+to]
	done      chan struct{}  // closed on Abort
	crashedCh []chan struct{}
	red       *reducer
}

// NewLoopback creates the in-process channel transport for a world of p
// ranks with the given per-ordered-pair buffer depth (0 means
// DefaultBufferDepth). It is exported so tests and wrappers (for example
// a delayed transport exercising the watchdog's Grace accounting) can
// compose with it; NewWorldOpts installs one automatically when
// WorldOptions.Transport is nil.
func NewLoopback(p, depth int) Transport {
	if p < 1 {
		panic(fmt.Sprintf("dist: loopback transport size %d", p))
	}
	if depth <= 0 {
		depth = DefaultBufferDepth
	}
	t := &chanTransport{
		p:         p,
		chans:     make([]chan Message, p*p),
		done:      make(chan struct{}),
		crashedCh: make([]chan struct{}, p),
		red:       newReducer(p),
	}
	for i := range t.chans {
		t.chans[i] = make(chan Message, depth)
	}
	for r := range t.crashedCh {
		t.crashedCh[r] = make(chan struct{})
	}
	return t
}

// Send delivers m on the (from, to) channel. It blocks only when the
// buffer is full, stays cancellable on world abort, and discards the
// message if the receiver has crashed (it would never be read).
func (t *chanTransport) Send(from, to int, m Message) error {
	ch := t.chans[from*t.p+to]
	select {
	case ch <- m:
	default:
		select {
		case ch <- m:
		case <-t.done:
			return ErrWorldAborted
		case <-t.crashedCh[to]:
		}
	}
	return nil
}

// Recv blocks for the next message from the given sender, waking on world
// abort or on the peer crashing. A crashed peer may still have messages
// in flight, so those are drained before the peer is declared dead.
func (t *chanTransport) Recv(to, from int) (Message, error) {
	ch := t.chans[from*t.p+to]
	select {
	case m := <-ch:
		return m, nil
	default:
		select {
		case m := <-ch:
			return m, nil
		case <-t.done:
			return Message{}, ErrWorldAborted
		case <-t.crashedCh[from]:
			select {
			case m := <-ch:
				return m, nil
			default:
				return Message{}, ErrPeerGone
			}
		}
	}
}

// Reduce runs one wave of the combining barrier.
func (t *chanTransport) Reduce(rank int, in []float64, clock float64, kind ReduceKind) ([]float64, float64, error) {
	return t.red.reduce(rank, in, clock, ReduceOp(kind))
}

// MarkCrashed wakes every peer blocked on the crashed rank.
func (t *chanTransport) MarkCrashed(rank int) {
	close(t.crashedCh[rank])
}

// Abort releases every rank blocked in a channel operation or collective.
func (t *chanTransport) Abort() {
	close(t.done)
	t.red.abort()
}

// Grace is zero: channel operations complete at memory speed, so the
// watchdog budget needs no transport slack.
func (t *chanTransport) Grace() time.Duration { return 0 }

// Close is a no-op; the garbage collector owns the channels.
func (t *chanTransport) Close() error { return nil }
