// Schwarz example: reproduces the paper's §5.2 comparison on Test Case 1.
// The overlapping additive Schwarz preconditioner (box subdomains, ~5%
// overlap, one FFT-accelerated CG iteration per subdomain) is run with
// and without coarse-grid corrections, next to the best algebraic
// preconditioner (Schur 1). Without CGC the Schwarz iteration count grows
// rapidly with P; with CGC it is the fastest-converging method of the
// study.
package main

import (
	"fmt"
	"log"

	"parapre"
	"parapre/internal/precond"
)

func main() {
	const size = 65
	prob := parapre.BuildCase("tc1-poisson2d", size)
	fmt.Printf("Poisson 2D, %d unknowns — additive Schwarz vs Schur 1\n\n", prob.A.Rows)

	fmt.Printf("%-4s | %-22s | %-22s | %-22s\n", "P", "AddSchwarz (no CGC)", "AddSchwarz + CGC", "Schur 1")
	for _, layout := range []struct{ p, px, py int }{{4, 2, 2}, {16, 4, 4}} {
		fmt.Printf("%-4d", layout.p)
		for _, mode := range []string{"plain", "cgc", "schur"} {
			var cfg parapre.Config
			if mode == "schur" {
				cfg = parapre.DefaultConfig(layout.p, parapre.Schur1)
			} else {
				cfg = parapre.DefaultConfig(layout.p, precond.KindNone)
				sw := precond.DefaultSchwarz(size, layout.px, layout.py, mode == "cgc")
				cfg.Schwarz = &sw
			}
			res, err := parapre.Solve(prob, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %4d itr %9.4fs   ", res.Iterations, res.SetupTime+res.SolveTime)
		}
		fmt.Println()
	}
}
