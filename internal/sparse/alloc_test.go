package sparse

import (
	"testing"

	"parapre/internal/par"
)

// measureSteadyAllocs pins the pool to one worker, runs one warm-up call
// to build the cached row partition and block-routing verdict, then
// measures steady-state allocations.
func measureSteadyAllocs(t *testing.T, mul func()) float64 {
	t.Helper()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	mul()
	return testing.AllocsPerRun(10, mul)
}

// blockTestCSR builds a 2×2-blocked diagonally dominant matrix large
// enough to exercise the partitioned kernels.
func blockTestCSR(nb int) *CSR {
	n := 2 * nb
	coo := NewCOO(n, n, 8*n)
	for bi := 0; bi < nb; bi++ {
		for r := 0; r < 2; r++ {
			i := 2*bi + r
			for c := 0; c < 2; c++ {
				coo.Add(i, 2*bi+c, 4)
				if bi > 0 {
					coo.Add(i, 2*(bi-1)+c, -1)
				}
				if bi < nb-1 {
					coo.Add(i, 2*(bi+1)+c, -1)
				}
			}
		}
	}
	return coo.ToCSR()
}

// TestCSRMulVecToZeroAllocSteadyState pins the dynamic twin of the
// static //lint:allocfree proof on the CSR matvec.
//
// alloctest: (*sparse.CSR).MulVecTo
func TestCSRMulVecToZeroAllocSteadyState(t *testing.T) {
	a := blockTestCSR(600)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	if got := measureSteadyAllocs(t, func() { a.MulVecTo(y, x) }); got != 0 {
		t.Fatalf("CSR.MulVecTo allocates %v objects per steady-state call, want 0", got)
	}
}

// TestBSRMulVecToZeroAllocSteadyState pins the dynamic twin of the
// static //lint:allocfree proof on the BSR matvec.
//
// alloctest: (*sparse.BSR).MulVecTo
func TestBSRMulVecToZeroAllocSteadyState(t *testing.T) {
	a := blockTestCSR(600)
	b, err := ToBSR(a, 2, 2)
	if err != nil {
		t.Fatalf("ToBSR: %v", err)
	}
	x := make([]float64, b.Cols)
	y := make([]float64, b.Rows)
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	if got := measureSteadyAllocs(t, func() { b.MulVecTo(y, x) }); got != 0 {
		t.Fatalf("BSR.MulVecTo allocates %v objects per steady-state call, want 0", got)
	}
}
