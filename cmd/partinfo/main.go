// Command partinfo inspects grid partitions: it partitions a test case's
// grid with the general (Metis-style) and simple (box) schemes and
// reports balance, edge cut and interface sizes — the quantities that
// drive the preconditioner behavior studied in the paper.
//
// Usage:
//
//	partinfo -case tc1-poisson2d -p 8 -size 65 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"parapre"
	"parapre/internal/partition"
)

func main() {
	var (
		name = flag.String("case", "tc1-poisson2d", "test case name")
		p    = flag.Int("p", 8, "number of subdomains")
		size = flag.Int("size", 0, "grid resolution parameter (0 = case default)")
		seed = flag.Int64("seed", 1, "general partitioner seed (the paper's machine-dependent RNG)")
	)
	flag.Parse()

	var sz int
	found := false
	for _, c := range parapre.Cases() {
		if c.Name == *name {
			sz, found = c.DefaultSize, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "partinfo: unknown case %q\n", *name)
		os.Exit(2)
	}
	if *size > 0 {
		sz = *size
	}
	prob := parapre.BuildCase(*name, sz)
	mesh := prob.Mesh
	ptr, adj := mesh.NodeGraph()
	g := &partition.Graph{Ptr: ptr, Adj: adj}

	fmt.Printf("case %s: %d nodes, %d elements, %d graph edges\n",
		*name, mesh.NumNodes(), mesh.NumElems(), len(adj)/2)

	report := func(label string, part []int) {
		cut := partition.EdgeCut(g, part)
		sizes := partition.Sizes(part, *p)
		min, max := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		// Interface nodes: nodes with a neighbor in another part.
		iface := 0
		for v := 0; v < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(v) {
				if part[w] != part[v] {
					iface++
					break
				}
			}
		}
		fmt.Printf("%-22s cut=%-7d sizes=[%d..%d] imbalance=%.3f interface nodes=%d (%.1f%%)\n",
			label, cut, min, max, partition.Imbalance(part, *p), iface,
			100*float64(iface)/float64(g.NumVertices()))
	}

	gen, err := partition.General(g, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "partinfo:", err)
		os.Exit(1)
	}
	report(fmt.Sprintf("general (seed %d):", *seed), gen)
	report("simple (boxes):", partition.Simple(mesh.X, mesh.Dim, *p))
}
