package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the fixed-block bit-identity contract of the
// numeric packages: a result must depend only on the input, never on map
// iteration order, the clock, or a random source. It flags, inside the
// kernel packages listed in deterministicPkgs:
//
//   - range over a map whose body feeds floating-point state — writing
//     through a float slice, or assigning/appending to a float-typed
//     variable declared outside the loop (an accumulator);
//   - any call to time.Now;
//   - any call into math/rand or math/rand/v2.
//
// Maps are fine for membership tests and for collecting keys that are
// sorted before numeric use — only float-flow out of the iteration is
// flagged.
var Determinism = &Analyzer{
	Name:    "determinism",
	Doc:     "map iteration, time.Now or math/rand feeding numeric state in kernel packages",
	Applies: inDeterministicPkg,
	Run:     runDeterminism,
}

// deterministicPkgs are the packages under the bit-identity contract
// (DESIGN.md §7): everything a solver result can depend on.
var deterministicPkgs = map[string]bool{
	"sparse": true, "fem": true, "krylov": true, "par": true, "dsys": true,
	"precond": true, "schur": true, "ilu": true, "arms": true,
}

func inDeterministicPkg(pkgPath string) bool {
	_, rest, ok := strings.Cut(pkgPath, "/internal/")
	return ok && deterministicPkgs[rest]
}

func runDeterminism(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(node.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && mapRangeFeedsFloats(p, node) {
						out = append(out, diag(p, node.For, "determinism",
							"map iteration order feeds floating-point state: iterate a sorted key slice instead"))
					}
				}
			case *ast.CallExpr:
				if f := calleeFunc(p, node); f != nil && f.Pkg() != nil {
					switch path := f.Pkg().Path(); {
					case path == "time" && f.Name() == "Now":
						out = append(out, diag(p, node.Pos(), "determinism",
							"time.Now in a kernel package: results must be a function of the input only"))
					case path == "math/rand" || path == "math/rand/v2":
						out = append(out, diag(p, node.Pos(), "determinism",
							"math/rand in a kernel package: inject a seeded source from the caller instead"))
					}
				}
			}
			return true
		})
	}
	return out
}

// mapRangeFeedsFloats reports whether the body of a map-range statement
// writes floating-point state: through an index into a float slice, or
// into a float (or float-slice) variable declared outside the loop.
func mapRangeFeedsFloats(p *Package, rs *ast.RangeStmt) bool {
	found := false
	check := func(lhs ast.Expr) {
		switch target := lhs.(type) {
		case *ast.IndexExpr:
			if t := p.Info.TypeOf(target.X); t != nil && isFloatDeep(t) {
				found = true
			}
		case *ast.Ident:
			if target.Name == "_" {
				return
			}
			obj := p.Info.ObjectOf(target)
			if obj == nil || within(obj.Pos(), rs) {
				return // loop-local temporary
			}
			if isFloatDeep(obj.Type()) {
				found = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(stmt.X)
		}
		return !found
	})
	return found
}
