package core

import (
	"fmt"

	"parapre/internal/ckpt"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/obs"
	"parapre/internal/precond"
)

// worldRun is the per-rank solve body shared by the in-process world
// (Solve: P goroutine ranks over the channel transport) and the
// multi-process worker (SolveRank: one OS process per rank over the
// socket transport). Keeping the two paths on one body is what makes the
// socket world reproduce the in-process arithmetic: same setup charge,
// same barrier, same solver options, same checkpoint hook placement.
type worldRun struct {
	cfg     Config
	systems []*dsys.System
	schwarz []*precond.Schwarz
	overlap []*precond.OverlapBlock
	sink    ckpt.Sink

	results []krylov.Result
	logs    []*krylov.RecoveryLog
	setup   []float64
	xl      [][]float64
	errs    []error
}

func (wr *worldRun) alloc() {
	p := wr.cfg.P
	wr.results = make([]krylov.Result, p)
	wr.logs = make([]*krylov.RecoveryLog, p)
	wr.setup = make([]float64, p)
	wr.xl = make([][]float64, p)
	wr.errs = make([]error, p)
}

// rank is the rank body: build the preconditioner, charge its setup,
// synchronize, and run the configured solver with checkpoint/restore
// wiring.
func (wr *worldRun) rank(c *dist.Comm) {
	cfg := wr.cfg
	s := wr.systems[c.Rank()]
	var pc precond.Preconditioner
	var err error
	switch {
	case wr.schwarz != nil:
		pc = wr.schwarz[c.Rank()]
	case wr.overlap != nil:
		pc = wr.overlap[c.Rank()]
	default:
		pc, err = buildRankPrecond(cfg, s, cfg.Precond)
	}
	if err != nil {
		wr.errs[c.Rank()] = err
		pc = precond.NewIdentity()
	}
	// Charge setup heuristically (factor construction ≈ a few solve
	// sweeps) and synchronize, as all processors finish setup before
	// iterating.
	sp := c.BeginSpan(obs.KindPrecondSetup, precondLabel(cfg))
	c.Compute(setupFlopFactor * setupCost(pc))
	c.EndSpan(sp)
	c.Barrier()
	wr.setup[c.Rank()] = c.Stats().Clock

	sopt := rankSolverOptions(cfg, c, wr.sink, cfg.Restore)
	x := make([]float64, s.NLoc())
	var prec krylov.Prec
	if cfg.Precond != precond.KindNone || cfg.Schwarz != nil {
		prec = wrapApply(c, precondLabel(cfg), pc)
	}
	switch {
	case cfg.UseCG:
		wr.results[c.Rank()] = krylov.DistributedCG(c, s, prec, s.B, x, sopt)
	case cfg.Resilient:
		wr.results[c.Rank()], wr.logs[c.Rank()] = krylov.ResilientSolve(
			c, s, resilientLadder(cfg, c, s, prec), s.B, x, sopt)
	default:
		wr.results[c.Rank()] = krylov.Distributed(c, s, prec, s.B, x, sopt)
	}
	joinPrecondCommErr(pc, &wr.results[c.Rank()])
	wr.xl[c.Rank()] = x
}

// checkpointSink resolves the configured checkpoint destination: an
// explicit sink wins, else a file writer on CheckpointPath, else nil
// (checkpointing off).
func checkpointSink(cfg Config) ckpt.Sink {
	if cfg.CheckpointEvery <= 0 {
		return nil
	}
	if cfg.CheckpointSink != nil {
		return cfg.CheckpointSink
	}
	if cfg.CheckpointPath != "" {
		return ckpt.NewFileWriter(cfg.CheckpointPath, cfg.P)
	}
	return nil
}

// rankSolverOptions copies the configured solver options for one rank and
// wires the checkpoint hook and the restore state into the copy (the
// shared Config value must stay untouched — rank bodies run concurrently).
//
// On restore, the rank's virtual clock, fault-RNG cursor and
// observability counters are rewound to the snapshot before the solver
// resumes, so the continued run is bit-identical — clocks included — to
// the uninterrupted one. The rewind happens after the fresh setup phase
// charged the clock, deliberately discarding the respawned process's
// duplicated setup cost from the modeled time.
func rankSolverOptions(cfg Config, c *dist.Comm, sink ckpt.Sink, restore *ckpt.Checkpoint) krylov.Options {
	sopt := cfg.Solver
	if sopt.Work != nil && cfg.P > 1 {
		// A caller-supplied workspace in Config.Solver would be copied to
		// every one of the P rank goroutines and shared — a data race. Drop
		// it; each rank allocates (or Session leases) its own.
		sopt.Work = nil
	}
	if cfg.Ctx != nil {
		if done := cfg.Ctx.Done(); done != nil {
			// Every rank polls and votes every iteration regardless of what
			// it observed locally — the vote is a collective and must appear
			// in the same position of every rank's op sequence. The OR of
			// the votes makes the stop decision identical everywhere.
			sopt.Stop = func() bool {
				v := false
				select {
				case <-done:
					v = true
				default:
				}
				return c.VoteStop(v)
			}
		}
	}
	if sink != nil && cfg.CheckpointEvery > 0 {
		sopt.CheckpointEvery = cfg.CheckpointEvery
		pid := precondLabel(cfg)
		p := cfg.P
		sopt.Checkpoint = func(st *krylov.State) {
			st.PrecondID = pid
			draws, ops := c.FaultCursor()
			// The replicated iteration count doubles as the sequence
			// number, so shard grouping is consistent across ranks and
			// across restarts. A sink failure must not kill the solve; the
			// previous durable checkpoint stays valid.
			_ = sink.PutShard(uint64(st.Iter), uint64(st.Iter), p, &ckpt.RankState{
				Rank:       c.Rank(),
				Solver:     st,
				Stats:      c.Stats(),
				FaultDraws: draws,
				FaultOps:   uint64(ops),
				Counters:   c.ObsCounterSnapshot(),
			})
		}
	}
	if restore != nil {
		rs := &restore.Ranks[c.Rank()]
		sopt.Resume = rs.Solver
		c.FastForwardFaults(rs.FaultDraws, int(rs.FaultOps))
		c.ObsMergeCounters(rs.Counters)
		c.RestoreStats(rs.Stats)
	}
	return sopt
}

// validateRestore rejects a checkpoint that does not fit the config
// before any rank starts: wrong world size, missing solver state, or (on
// the non-resilient path, which has no ladder to re-match stages) a
// different preconditioner identity.
func validateRestore(cfg Config) error {
	ck := cfg.Restore
	if ck == nil {
		return nil
	}
	if ck.P() != cfg.P {
		return fmt.Errorf("core: checkpoint holds %d ranks, config wants P=%d", ck.P(), cfg.P)
	}
	want := precondLabel(cfg)
	for i := range ck.Ranks {
		s := ck.Ranks[i].Solver
		if s == nil {
			return fmt.Errorf("core: checkpoint rank %d carries no solver state", i)
		}
		if !cfg.Resilient && s.PrecondID != want {
			return &krylov.StateMismatchError{Field: "precond", Want: want, Got: s.PrecondID}
		}
	}
	return nil
}

// SolveRank runs exactly one rank of the distributed solve over the
// given transport — the worker side of a multi-process (socket) run. The
// worker re-derives the partition and subdomain systems deterministically
// from the same problem and config the supervisor used, so no matrix data
// crosses the wire; only solver traffic does.
//
// The additive-Schwarz and overlapping-block preconditioners are wired
// through shared memory across ranks and cannot run multi-process;
// requesting them returns an error. Fault plans and watchdogs are
// likewise in-process machinery (dist.RemoteWorld strips them): chaos for
// socket worlds is real — kill the process.
//
// The rank's krylov result and final virtual-time stats are returned
// even on error (stats cover work up to the failure point).
func SolveRank(p *Problem, cfg Config, rank int, tr dist.Transport, sink ckpt.Sink) (krylov.Result, dist.Stats, error) {
	if cfg.P < 1 || rank < 0 || rank >= cfg.P {
		return krylov.Result{}, dist.Stats{}, fmt.Errorf("core: rank %d of P=%d", rank, cfg.P)
	}
	if cfg.Schwarz != nil || cfg.OverlapLevels > 0 {
		return krylov.Result{}, dist.Stats{}, fmt.Errorf("core: overlapping/Schwarz preconditioners are shared-memory wired and cannot run multi-process")
	}
	if cfg.Solver.Restart == 0 {
		cfg.Solver = DefaultConfig(cfg.P, cfg.Precond).Solver
	}
	// A context is per-process: if only this worker polled the stop vote
	// the worlds' op sequences would diverge. Cancellation of a socket
	// world is the supervisor's job (signal the processes).
	cfg.Ctx = nil
	if err := validateRestore(cfg); err != nil {
		return krylov.Result{}, dist.Stats{}, err
	}
	if sink == nil {
		sink = checkpointSink(cfg)
	}

	part, err := Partition(p, cfg)
	if err != nil {
		return krylov.Result{}, dist.Stats{}, err
	}
	systems := dsys.Distribute(p.A, p.B, part, cfg.P)

	wr := &worldRun{cfg: cfg, systems: systems, sink: sink}
	wr.alloc()
	w := dist.RemoteWorld(cfg.P, cfg.Machine, tr, dist.WorldOptions{Collector: cfg.Collector})
	st, err := dist.RunRank(w.Comm(rank), wr.rank)
	if err == nil && wr.errs[rank] != nil {
		err = fmt.Errorf("core: rank %d setup: %w", rank, wr.errs[rank])
	}
	return wr.results[rank], st, err
}
