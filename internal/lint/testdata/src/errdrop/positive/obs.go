package positive

import "io"

// The shapes of the observability exporter APIs (obs.WriteChromeTrace,
// Collector.WriteMetrics, their *File variants, ValidateChromeTrace):
// dropping their error silently produces a truncated or missing trace,
// which CI's tracecheck step exists to prevent.

type collector struct{}

func (*collector) WriteMetrics(w io.Writer, labels map[string]string) error { return nil }
func (*collector) WriteMetricsFile(path string, labels map[string]string) error {
	return nil
}

type traceEntry struct{}
type traceOptions struct{}

func writeChromeTrace(w io.Writer, entries []traceEntry, opts traceOptions) error { return nil }
func writeChromeTraceFile(path string, entries []traceEntry, opts traceOptions) error {
	return nil
}
func validateChromeTrace(data []byte) error { return nil }

// Export drops every exporter error: a half-written trace file looks
// like success.
func Export(col *collector, w io.Writer, entries []traceEntry) {
	writeChromeTrace(w, entries, traceOptions{})                // WANT errdrop
	writeChromeTraceFile("trace.json", entries, traceOptions{}) // WANT errdrop
	col.WriteMetrics(w, nil)                                    // WANT errdrop
	col.WriteMetricsFile("metrics.prom", nil)                   // WANT errdrop
}

// Check drops the validation verdict — the only thing the call returns.
func Check(data []byte) {
	validateChromeTrace(data) // WANT errdrop
}
