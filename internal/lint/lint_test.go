package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one fixture package under testdata/src.
func loadFixture(t *testing.T, l *Loader, rel string) *Package {
	t.Helper()
	p, err := l.LoadDir(filepath.Join("testdata", "src", rel))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", rel, err)
	}
	return p
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// wantLines scans a fixture package's files for "// WANT <analyzer>"
// markers and returns file:line keys.
func wantLines(t *testing.T, p *Package, analyzer string) []string {
	t.Helper()
	var want []string
	marker := "// WANT " + analyzer
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		fh, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(fh)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), marker) {
				want = append(want, keyOf(name, line))
			}
		}
		if err := fh.Close(); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	return want
}

func keyOf(file string, line int) string {
	return filepath.Base(file) + ":" + strings.Repeat("0", 0) + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestAnalyzerFixtures checks, for each analyzer, that every marked line
// of its positive fixture is flagged (and nothing else), and that its
// negative fixture is completely silent.
func TestAnalyzerFixtures(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"floatcmp", "determinism", "dimguard", "sharedwrite", "errdrop"} {
		t.Run(name, func(t *testing.T) {
			a := analyzerByName(t, name)

			pos := loadFixture(t, l, filepath.Join(name, "positive"))
			var got []string
			for _, d := range a.Run(pos) {
				got = append(got, keyOf(d.Pos.Filename, d.Pos.Line))
			}
			sort.Strings(got)
			want := wantLines(t, pos, name)
			if len(want) == 0 {
				t.Fatalf("positive fixture has no WANT markers")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("positive fixture: got diagnostics at %v, want %v", got, want)
			}

			neg := loadFixture(t, l, filepath.Join(name, "negative"))
			if ds := a.Run(neg); len(ds) != 0 {
				t.Errorf("negative fixture: unexpected diagnostics: %v", ds)
			}
		})
	}
}

// TestIgnoreConvention checks that a well-formed //lint:ignore (own-line
// and trailing forms) suppresses its diagnostic, and that a reason-less
// one is reported as malformed while suppressing nothing.
func TestIgnoreConvention(t *testing.T) {
	l := newTestLoader(t)
	p := loadFixture(t, l, "ignore")
	ds := RunPackage(p, []*Analyzer{FloatCmp})

	byAnalyzer := map[string]int{}
	for _, d := range ds {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["lint"] != 1 {
		t.Errorf("want exactly 1 malformed-ignore diagnostic, got %d (%v)", byAnalyzer["lint"], ds)
	}
	// Only the comparison under the malformed ignore may survive.
	if byAnalyzer["floatcmp"] != 1 {
		t.Errorf("want exactly 1 surviving floatcmp diagnostic, got %d (%v)", byAnalyzer["floatcmp"], ds)
	}
	for _, d := range ds {
		if d.Analyzer == "floatcmp" && !strings.Contains(textOfLine(t, d), "MissingReason") {
			// The surviving diagnostic must belong to MissingReason's body;
			// cheap structural check: it sits after the malformed comment.
			if d.Pos.Line < 20 {
				t.Errorf("surviving floatcmp diagnostic at unexpected position %v", d.Pos)
			}
		}
	}
}

// textOfLine fetches the flagged source line (test diagnostic aid).
func textOfLine(t *testing.T, d Diagnostic) string {
	t.Helper()
	data, err := os.ReadFile(d.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if d.Pos.Line-1 < len(lines) {
		return lines[d.Pos.Line-1]
	}
	return ""
}

// TestRepoPackagesClean locks in the tentpole acceptance criterion at the
// unit level: the suite stays silent on the repository's core numeric
// packages (the full sweep is cmd/parapre-lint in CI).
func TestRepoPackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib from source; skipped in -short")
	}
	l := newTestLoader(t)
	for _, rel := range []string{"internal/sparse", "internal/par", "internal/krylov", "internal/dsys"} {
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, rel))
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		if ds := RunPackage(p, All()); len(ds) != 0 {
			t.Errorf("%s: unexpected diagnostics:", rel)
			for _, d := range ds {
				t.Errorf("  %s", d)
			}
		}
	}
}

// TestLoaderBuildTags checks that the default tag set excludes
// paranoid-tagged files and that enabling the tag flips the selection.
func TestLoaderBuildTags(t *testing.T) {
	l := newTestLoader(t)
	names, err := l.selectFiles(filepath.Join(l.ModuleRoot, "internal", "paranoid"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if n == "enabled_on.go" {
			t.Errorf("default tag set must exclude enabled_on.go, got %v", names)
		}
	}

	lp, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	lp.Tags["paranoid"] = true
	names, err = lp.selectFiles(filepath.Join(lp.ModuleRoot, "internal", "paranoid"))
	if err != nil {
		t.Fatal(err)
	}
	onSeen, offSeen := false, false
	for _, n := range names {
		onSeen = onSeen || n == "enabled_on.go"
		offSeen = offSeen || n == "enabled_off.go"
	}
	if !onSeen || offSeen {
		t.Errorf("paranoid tag set: want enabled_on.go and not enabled_off.go, got %v", names)
	}
}
