// Positive errtype fixture for the checkpoint codec package: decode
// failures surfaced as fresh untyped errors instead of the documented
// CorruptError/VersionError types.
package ckpt

import (
	"errors"
	"fmt"
)

// Decode is exported API: hostile bytes must map to typed errors, so a
// raw errors.New here crosses the boundary untyped.
func Decode(data []byte) error {
	if len(data) < 4 {
		return errors.New("short checkpoint") // WANT errtype
	}
	if data[0] != 'P' {
		return fmt.Errorf("bad magic %q", data[0]) // WANT errtype
	}
	return nil
}
