package dist

import "testing"

func TestVoteStopPropagatesAnyRanksVote(t *testing.T) {
	const p = 4
	got := make([]bool, p)
	Run(p, testMachine(), func(c *Comm) {
		// Only rank 2 observes the stop signal; everyone must receive it.
		got[c.Rank()] = c.VoteStop(c.Rank() == 2)
	})
	for r, v := range got {
		if !v {
			t.Errorf("rank %d: vote OR lost (got false)", r)
		}
	}
}

func TestVoteStopUnanimousFalse(t *testing.T) {
	const p = 4
	got := make([]bool, p)
	Run(p, testMachine(), func(c *Comm) {
		got[c.Rank()] = c.VoteStop(false)
	})
	for r, v := range got {
		if v {
			t.Errorf("rank %d: spurious stop", r)
		}
	}
}

func TestVoteStopIsUnchargedAndInvisible(t *testing.T) {
	// The control vote must not move virtual clocks, consume fault-RNG
	// draws, or advance the fault op counter — a run that polls but never
	// stops has to stay bit-identical to one that never polls.
	const p = 3
	body := func(votes int) []Stats {
		return Run(p, testMachine(), func(c *Comm) {
			c.AllReduceSum(float64(c.Rank()))
			for i := 0; i < votes; i++ {
				if c.VoteStop(false) {
					t.Error("unexpected stop")
				}
			}
			c.AllReduceMax(float64(c.Rank()))
		})
	}
	ref := body(0)
	polled := body(5)
	for r := 0; r < p; r++ {
		if ref[r].Clock != polled[r].Clock {
			t.Errorf("rank %d: VoteStop charged the clock: %v vs %v", r, ref[r].Clock, polled[r].Clock)
		}
		if ref[r].CommTime != polled[r].CommTime {
			t.Errorf("rank %d: VoteStop charged comm time: %v vs %v", r, ref[r].CommTime, polled[r].CommTime)
		}
	}
}
