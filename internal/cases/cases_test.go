package cases

import (
	"math"
	"testing"

	"parapre/internal/krylov"
	"parapre/internal/sparse"
)

func isSym(a *sparse.CSR, tol float64) bool {
	at := a.Transpose()
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if math.Abs(vals[k]-at.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

func TestAllCasesAssembleAndMatchMetadata(t *testing.T) {
	for _, c := range All() {
		p := c.Build(c.DefaultSize)
		if err := p.A.CheckValid(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if p.A.Rows != len(p.B) {
			t.Fatalf("%s: rhs length mismatch", c.Name)
		}
		dpn := p.DofsPerNode
		if dpn == 0 {
			dpn = 1
		}
		if p.A.Rows != p.Mesh.NumNodes()*dpn {
			t.Fatalf("%s: %d rows for %d nodes × %d dof", c.Name, p.A.Rows, p.Mesh.NumNodes(), dpn)
		}
		if got := isSym(p.A, 1e-10); got != c.SPD {
			t.Fatalf("%s: symmetry = %v, metadata says SPD = %v", c.Name, got, c.SPD)
		}
		if p.Name != c.Name {
			t.Fatalf("problem name %q != case name %q", p.Name, c.Name)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("tc5-convdiff")
	if err != nil || c.ID != 5 {
		t.Fatalf("ByName: %v %v", c, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// solveSmall solves a case at tiny size with tight sequential GMRES and
// returns the solution.
func solveSmall(t *testing.T, c Case, size int) []float64 {
	t.Helper()
	p := c.Build(size)
	x := make([]float64, p.A.Rows)
	res := krylov.SolveCSR(p.A, nil, p.B, x, krylov.Options{Restart: 60, MaxIters: 30000, Tol: 1e-11})
	if !res.Converged {
		t.Fatalf("%s: solve failed: %+v", c.Name, res)
	}
	return x
}

func TestPoisson2DManufacturedSolution(t *testing.T) {
	c, _ := ByName("tc1-poisson2d")
	p := c.Build(17)
	x := solveSmall(t, c, 17)
	var maxErr float64
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		e := math.Abs(x[n] - exact2D(p.Mesh.Coord(n)))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-4 {
		t.Fatalf("tc1 discretization error %v too large", maxErr)
	}
}

func TestPoisson3DManufacturedSolution(t *testing.T) {
	c, _ := ByName("tc2-poisson3d")
	p := c.Build(7)
	x := solveSmall(t, c, 7)
	var maxErr float64
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		e := math.Abs(x[n] - exact3D(p.Mesh.Coord(n)))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-3 {
		t.Fatalf("tc2 discretization error %v too large", maxErr)
	}
}

func TestHeatStepContractsAndStaysBounded(t *testing.T) {
	c, _ := ByName("tc4-heat3d")
	p := c.Build(7)
	x := solveSmall(t, c, 7)
	// One implicit heat step from u⁰ ∈ [0,1] must stay within [−ε, 1+ε]
	// (discrete maximum principle holds approximately for this mesh).
	for i, v := range x {
		if v < -0.05 || v > 1.05 {
			t.Fatalf("heat step out of bounds at %d: %v", i, v)
		}
	}
	// And the Dirichlet face x=1 must be exactly zero.
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		if p.Mesh.Coord(n)[0] == 1 && x[n] != 0 {
			t.Fatalf("Dirichlet face violated at node %d: %v", n, x[n])
		}
	}
}

func TestConvDiffSolutionWithinBCRange(t *testing.T) {
	c, _ := ByName("tc5-convdiff")
	x := solveSmall(t, c, 17)
	for i, v := range x {
		if v < -0.2 || v > 1.2 {
			t.Fatalf("convection solution wildly out of range at %d: %v (SUPG broken?)", i, v)
		}
	}
}

func TestElasticityRespectsSymmetryConstraints(t *testing.T) {
	c, _ := ByName("tc6-elasticity")
	p := c.Build(9)
	x := solveSmall(t, c, 9)
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		crd := p.Mesh.Coord(n)
		if math.Abs(crd[0]) < 1e-12 && x[2*n] != 0 {
			t.Fatalf("u1 != 0 on Γ1 at node %d", n)
		}
		if math.Abs(crd[1]) < 1e-12 && x[2*n+1] != 0 {
			t.Fatalf("u2 != 0 on Γ2 at node %d", n)
		}
	}
	// The downward load must push the ring down: mean u2 < 0.
	var mean float64
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		mean += x[2*n+1]
	}
	mean /= float64(p.Mesh.NumNodes())
	if mean >= 0 {
		t.Fatalf("mean vertical displacement %v, want negative under downward load", mean)
	}
}

func TestPaperSizesDocumented(t *testing.T) {
	want := map[int]int{1: 1001, 2: 101, 3: 723, 4: 101, 5: 1001, 6: 241, 7: 0}
	for _, c := range All() {
		if c.PaperSize != want[c.ID] {
			t.Fatalf("case %d paper size %d, want %d", c.ID, c.PaperSize, want[c.ID])
		}
	}
	// Paper-scale unknown counts for the structured cases.
	if n := 1001 * 1001; n != 1002001 {
		t.Fatal("tc1 size")
	}
	if n := 101 * 101 * 101; n != 1030301 {
		t.Fatal("tc2 size")
	}
}

func TestHeatMultiStepDecayRate(t *testing.T) {
	// Extension of Test Case 4: several implicit steps on the 2D-mode
	// initial condition must decay close to the continuous rate
	// e^{−2π²Δt} per step (implicit Euler damps slightly faster). This
	// validates both M and K assembly jointly.
	const size = 9
	const dt = 0.05
	c, _ := ByName("tc4-heat3d")
	p := c.Build(size)
	// Solve one step via the assembled case, then continue manually with
	// the same operators rebuilt here for stepping.
	x := solveSmall(t, c, size)
	// u⁰ at the midplane center line: compare the damping of the max.
	var max0, max1 float64
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		crd := p.Mesh.Coord(n)
		u0 := math.Sin(math.Pi*crd[0]) * math.Sin(math.Pi*crd[1])
		if u0 > max0 {
			max0 = u0
		}
		if x[n] > max1 {
			max1 = x[n]
		}
	}
	ratio := max1 / max0
	// Continuous decay for the (1,1,·) mode in one step; the Dirichlet
	// face at x=1 only strengthens the damping. Implicit Euler gives
	// 1/(1+2π²Δt) ≈ 0.50 at Δt=0.05.
	implicit := 1 / (1 + 2*math.Pi*math.Pi*dt)
	if ratio > implicit*1.25 || ratio < implicit*0.4 {
		t.Fatalf("one-step damping ratio %.3f, expected near %.3f", ratio, implicit)
	}
}

func TestConvDiffLayerPosition(t *testing.T) {
	// The discontinuity enters at (0, 0.25) and is convected at 45°; on
	// the outflow boundary x=1 the jump should sit near y = 1 (0.25 + 1
	// clipped) — so the top-right corner region is ≈1 and the bottom-right
	// is ≈0.
	c, _ := ByName("tc5-convdiff")
	p := c.Build(21)
	x := solveSmall(t, c, 21)
	g := p.Mesh
	var bottomRight, topLeftInterior float64
	for n := 0; n < g.NumNodes(); n++ {
		crd := g.Coord(n)
		if crd[0] == 1 && crd[1] == 0.25 {
			bottomRight = x[n]
		}
		if crd[0] == 0.5 && crd[1] == 1 {
			topLeftInterior = x[n]
		}
	}
	if bottomRight > 0.3 {
		t.Fatalf("below-layer outflow value %v, want ≈0", bottomRight)
	}
	if topLeftInterior < 0.7 {
		t.Fatalf("above-layer value %v, want ≈1", topLeftInterior)
	}
}

func TestCaseSizesGrowCorrectly(t *testing.T) {
	for _, c := range All() {
		small := c.Build(c.DefaultSize)
		// Elasticity size is mr=mt; others vary; just check monotonicity.
		bigger := c.Build(c.DefaultSize + 4)
		if bigger.A.Rows <= small.A.Rows {
			t.Fatalf("%s: size +4 did not grow the system (%d -> %d)", c.Name, small.A.Rows, bigger.A.Rows)
		}
	}
}

func TestJumpCaseFluxBehavior(t *testing.T) {
	// In the high-k inclusion the solution must be much flatter than
	// outside (large k ⇒ small gradient): compare the solution range in
	// the inner box against the global range.
	c, _ := ByName("tc7-jump")
	p := c.Build(21)
	x := solveSmall(t, c, 21)
	var inMin, inMax, gMax float64
	inMin = math.Inf(1)
	inMax = math.Inf(-1)
	for n := 0; n < p.Mesh.NumNodes(); n++ {
		crd := p.Mesh.Coord(n)
		v := x[n]
		if v > gMax {
			gMax = v
		}
		if crd[0] > 0.3 && crd[0] < 0.7 && crd[1] > 0.3 && crd[1] < 0.7 {
			if v < inMin {
				inMin = v
			}
			if v > inMax {
				inMax = v
			}
		}
	}
	if gMax <= 0 {
		t.Fatal("solution not positive")
	}
	if (inMax-inMin)/gMax > 0.1 {
		t.Fatalf("inclusion not flat: range %.3f of global max %.3f", inMax-inMin, gMax)
	}
}
