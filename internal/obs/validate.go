package obs

import (
	"encoding/json"
	"fmt"
)

// Minimal Chrome trace-event schema check, used by cmd/tracecheck and the
// CI traced-solve step: the exported file must parse as JSON, carry a
// traceEvents array, and every event must satisfy the invariants the
// exporter promises (known phase, non-negative ids, and for complete
// events non-negative virtual timestamps and durations).

// traceDoc mirrors the exported document shape for validation.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string   `json:"ph"`
	PID  *int     `json:"pid"`
	TID  *int     `json:"tid"`
	Name string   `json:"name"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

// ValidateChromeTrace checks data against the minimal trace schema and
// returns a description of the first violation.
func ValidateChromeTrace(data []byte) error {
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, e := range doc.TraceEvents {
		where := fmt.Sprintf("obs: traceEvents[%d]", i)
		switch e.Ph {
		case "X", "M":
		case "":
			return fmt.Errorf("%s: missing ph field", where)
		default:
			return fmt.Errorf("%s: unexpected phase %q", where, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("%s: missing name", where)
		}
		if e.PID == nil || *e.PID < 0 {
			return fmt.Errorf("%s: missing or negative pid", where)
		}
		if e.TID == nil || *e.TID < 0 {
			return fmt.Errorf("%s: missing or negative tid", where)
		}
		if e.Ph == "X" {
			if e.TS == nil || *e.TS < 0 {
				return fmt.Errorf("%s: complete event with missing or negative ts", where)
			}
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("%s: complete event with missing or negative dur", where)
			}
		}
	}
	return nil
}
