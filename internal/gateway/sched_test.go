package gateway

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// blockingRun is a controllable job body: each run parks until released.
type blockingRun struct {
	mu      sync.Mutex
	started []string
	release chan struct{}
}

func newBlockingRun() *blockingRun {
	return &blockingRun{release: make(chan struct{})}
}

func (b *blockingRun) run(ctx context.Context, j *Job) {
	b.mu.Lock()
	b.started = append(b.started, j.ID)
	b.mu.Unlock()
	select {
	case <-b.release:
	case <-ctx.Done():
	}
	j.Finish(&ResultSummary{})
}

func (b *blockingRun) startedIDs() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.started...)
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// The pool is bounded: with one worker, only one job runs at a time and
// the per-tenant queue overflows into ErrQueueFull with a positive
// Retry-After.
func TestSchedulerBoundAndBackpressure(t *testing.T) {
	br := newBlockingRun()
	s := NewScheduler(1, 2, br.run)
	a := NewJob("t1", &Spec{})
	if err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(br.startedIDs()) == 1 })
	// Two fit in the queue behind the running job…
	if err := s.Submit(NewJob("t1", &Spec{})); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(NewJob("t1", &Spec{})); err != nil {
		t.Fatal(err)
	}
	// …the third bounces.
	err := s.Submit(NewJob("t1", &Spec{}))
	var full *ErrQueueFull
	if !errors.As(err, &full) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if full.RetryAfter < 1 {
		t.Errorf("RetryAfter = %d, want >= 1", full.RetryAfter)
	}
	// Another tenant's queue is unaffected by t1's backlog.
	if err := s.Submit(NewJob("t2", &Spec{})); err != nil {
		t.Fatalf("tenant isolation broken: %v", err)
	}
	if got := len(br.startedIDs()); got != 1 {
		t.Fatalf("%d jobs running on a 1-worker pool", got)
	}
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// Dispatch round-robins over tenants with backlog rather than serving
// one tenant's whole queue first.
func TestSchedulerTenantFairness(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	started := make(chan struct{})
	s := NewScheduler(1, 8, func(ctx context.Context, j *Job) {
		if j.Tenant == "stall" {
			// Park the single worker so both tenants build a backlog.
			close(started)
			<-gate
		} else {
			mu.Lock()
			order = append(order, j.Tenant)
			mu.Unlock()
		}
		j.Finish(&ResultSummary{})
	})
	if err := s.Submit(NewJob("stall", &Spec{})); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 3; i++ {
		if err := s.Submit(NewJob("a", &Spec{})); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(NewJob("b", &Spec{})); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 6 {
		t.Fatalf("ran %d jobs, want 6", len(order))
	}
	// With both queues full, no tenant is served twice in a row.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("tenant %q served twice in a row: %v", order[i], order)
		}
	}
}

// Drain refuses new work, finishes the backlog, and returns.
func TestSchedulerDrain(t *testing.T) {
	br := newBlockingRun()
	s := NewScheduler(2, 4, br.run)
	jobs := make([]*Job, 3)
	for i := range jobs {
		jobs[i] = NewJob("t", &Spec{})
		if err := s.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(br.startedIDs()) == 2 })
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(NewJob("t", &Spec{})); err != ErrDraining {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	for i, j := range jobs {
		if j.State() != StateDone {
			t.Errorf("job %d state %s after drain", i, j.State())
		}
	}
}

// A job canceled while queued never runs.
func TestSchedulerCancelQueued(t *testing.T) {
	br := newBlockingRun()
	s := NewScheduler(1, 4, br.run)
	running := NewJob("t", &Spec{})
	if err := s.Submit(running); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(br.startedIDs()) == 1 })
	queued := NewJob("t", &Spec{})
	if err := s.Submit(queued); err != nil {
		t.Fatal(err)
	}
	if !queued.Cancel() {
		t.Fatal("cancel of queued job refused")
	}
	if queued.State() != StateCanceled {
		t.Fatalf("state = %s", queued.State())
	}
	close(br.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range br.startedIDs() {
		if id == queued.ID {
			t.Fatal("canceled job was executed")
		}
	}
}
