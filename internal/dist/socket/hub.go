package socket

import (
	"fmt"
	"net"
	"sync"
	"time"

	"parapre/internal/ckpt"
	"parapre/internal/dist"
)

// Hub is the rendezvous point of a multi-process world: it accepts one
// connection per rank, routes point-to-point frames, folds collective
// waves in ascending rank order (through the same fold kernels as the
// in-process reducer, so the bits match), forwards checkpoint shards to
// its Sink, and watches for dead peers. The hub lives in the supervisor
// process; worker processes Dial it.
type Hub struct {
	p  int
	ln net.Listener

	// Sink, when non-nil, receives the checkpoint shards workers forward
	// over their connections (typically a *ckpt.FileWriter).
	sink ckpt.Sink

	// onDeath, when non-nil, is called once per rank whose connection
	// drops before Shutdown — the supervisor's respawn trigger.
	onDeath func(rank int, err error)

	mu       sync.Mutex
	conns    []*hubConn
	pending  [][]redWave // pending[rank]: queued contributions, wave order
	dead     []bool
	departed []bool // said goodbye (fBye): finished cleanly, not dead
	aborted  bool
	shutdown bool

	wg sync.WaitGroup
}

type hubConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

type redWave struct {
	kind  dist.ReduceKind
	clock float64
	vec   []float64
}

// HubOptions configures a hub.
type HubOptions struct {
	Sink    ckpt.Sink                 // checkpoint shard destination (optional)
	OnDeath func(rank int, err error) // dead-peer callback (optional)
}

// NewHub listens on network/addr ("unix" with a socket path, or "tcp"
// with host:port — ":0" picks a free port) for a world of p ranks.
func NewHub(network, addr string, p int, opt HubOptions) (*Hub, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return &Hub{
		p:        p,
		ln:       ln,
		sink:     opt.Sink,
		onDeath:  opt.OnDeath,
		conns:    make([]*hubConn, p),
		pending:  make([][]redWave, p),
		dead:     make([]bool, p),
		departed: make([]bool, p),
	}, nil
}

// Addr returns the listener address workers should dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Accept waits for all p ranks to connect and identify themselves, then
// starts the per-connection router goroutines. It must be called before
// any worker performs a transport operation (workers retry their dials,
// so spawn-then-Accept is race-free).
func (h *Hub) Accept(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for n := 0; n < h.p; n++ {
		if d, ok := h.ln.(interface{ SetDeadline(time.Time) error }); ok {
			_ = d.SetDeadline(deadline) // a dead listener fails the Accept below
		}
		conn, err := h.ln.Accept()
		if err != nil {
			return &ConnectError{Network: h.ln.Addr().Network(), Addr: h.Addr(), Attempts: n, Err: err}
		}
		payload, err := readFrame(conn)
		if err != nil {
			_ = conn.Close() // the handshake failure wins
			return &ConnectError{Network: h.ln.Addr().Network(), Addr: h.Addr(), Attempts: n, Err: err}
		}
		u := &unwire{buf: payload}
		if u.u8() != fHello {
			_ = conn.Close()
			return &ProtocolError{Reason: "expected hello frame"}
		}
		rank := int(u.u32())
		if u.err != nil || rank < 0 || rank >= h.p {
			_ = conn.Close()
			return &ProtocolError{Reason: "hello rank out of range"}
		}
		h.mu.Lock()
		if h.conns[rank] != nil {
			h.mu.Unlock()
			_ = conn.Close()
			return &ProtocolError{Reason: fmt.Sprintf("duplicate hello for rank %d", rank)}
		}
		h.conns[rank] = &hubConn{conn: conn}
		h.mu.Unlock()
	}
	for r := 0; r < h.p; r++ {
		h.wg.Add(1)
		go h.serveConn(r)
	}
	return nil
}

// serveConn routes one rank's incoming frames until the connection drops.
func (h *Hub) serveConn(rank int) {
	defer h.wg.Done()
	hc := h.conns[rank]
	for {
		payload, err := readFrame(hc.conn)
		if err != nil {
			h.peerDied(rank, err)
			return
		}
		u := &unwire{buf: payload}
		switch u.u8() {
		case fData:
			from := int(u.u32())
			to := int(u.u32())
			if u.err != nil || from != rank || to < 0 || to >= h.p {
				h.peerDied(rank, &ProtocolError{Reason: "malformed data frame"})
				return
			}
			// Forward verbatim: re-framing would only copy bytes.
			h.forward(to, payload)
		case fReduce:
			r := int(u.u32())
			kind := dist.ReduceKind(u.u8())
			clock := u.f64()
			vec := u.vec()
			if u.err != nil || r != rank {
				h.peerDied(rank, &ProtocolError{Reason: "malformed reduce frame"})
				return
			}
			h.contribute(rank, redWave{kind: kind, clock: clock, vec: vec})
		case fCrashed:
			r := int(u.u32())
			if u.err != nil || r < 0 || r >= h.p {
				h.peerDied(rank, &ProtocolError{Reason: "malformed crashed frame"})
				return
			}
			h.broadcastPeerGone(r, nil)
		case fAbort:
			h.broadcastAbort()
		case fBye:
			// Clean departure: the rank finished its solve. Stop routing for
			// it without declaring a death — the EOF that follows is expected.
			h.mu.Lock()
			h.departed[rank] = true
			h.mu.Unlock()
			return
		case fShard:
			data := u.bytes()
			if u.err != nil {
				h.peerDied(rank, &ProtocolError{Reason: "malformed shard frame"})
				return
			}
			h.putShard(rank, data)
		default:
			h.peerDied(rank, &ProtocolError{Reason: "unknown frame type"})
			return
		}
	}
}

// forward relays a routed frame to its destination rank.
func (h *Hub) forward(to int, payload []byte) {
	h.mu.Lock()
	hc := h.conns[to]
	gone := h.dead[to] || h.departed[to]
	h.mu.Unlock()
	if hc == nil || gone {
		return // sends to a dead or departed peer are silently discarded, per the Transport contract
	}
	hc.wmu.Lock()
	defer hc.wmu.Unlock()
	_ = hc.conn.SetWriteDeadline(time.Now().Add(DefaultOpTimeout))
	// A failed write surfaces as that conn's read-side death.
	_ = writeFrame(hc.conn, payload)
}

// contribute queues one rank's collective contribution and folds the wave
// once every live rank has deposited its head contribution.
func (h *Hub) contribute(rank int, wv redWave) {
	h.mu.Lock()
	h.pending[rank] = append(h.pending[rank], wv)
	for r := 0; r < h.p; r++ {
		if h.dead[r] {
			// A dead rank can never contribute; the wave cannot complete.
			// Clients learn through the peer-gone broadcast.
			h.mu.Unlock()
			return
		}
		if len(h.pending[r]) == 0 {
			h.mu.Unlock()
			return
		}
	}
	// Pop the head wave of every rank and fold in ascending rank order —
	// the identical arithmetic, in the identical order, as the in-process
	// reducer.
	waves := make([]redWave, h.p)
	for r := 0; r < h.p; r++ {
		waves[r] = h.pending[r][0]
		h.pending[r] = h.pending[r][1:]
	}
	h.mu.Unlock()

	acc := append([]float64(nil), waves[0].vec...)
	op := dist.ReduceOp(waves[0].kind)
	maxT := waves[0].clock
	for r := 1; r < h.p; r++ {
		op(acc, waves[r].vec)
		if waves[r].clock > maxT {
			maxT = waves[r].clock
		}
	}
	var w wire
	w.u8(fReduceReply)
	w.f64(maxT)
	w.vec(acc)
	for r := 0; r < h.p; r++ {
		h.forward(r, w.buf)
	}
}

// putShard decodes a forwarded single-rank checkpoint shard and hands it
// to the sink.
func (h *Hub) putShard(rank int, data []byte) {
	if h.sink == nil {
		return
	}
	ck, err := ckpt.Decode(data)
	if err != nil || len(ck.Ranks) != 1 {
		h.peerDied(rank, &ProtocolError{Reason: "undecodable checkpoint shard"})
		return
	}
	// Sink failures must not kill the solve; the previous durable
	// checkpoint stays valid.
	_ = h.sink.PutShard(ck.Seq, ck.Iter, h.p, &ck.Ranks[0])
}

// peerDied records a dropped connection, tells the survivors, and fires
// the supervisor callback.
func (h *Hub) peerDied(rank int, err error) {
	h.mu.Lock()
	if h.dead[rank] || h.shutdown {
		h.mu.Unlock()
		return
	}
	h.dead[rank] = true
	cb := h.onDeath
	h.mu.Unlock()
	h.broadcastPeerGone(rank, nil)
	if cb != nil {
		cb(rank, err)
	}
}

// broadcastPeerGone tells every live rank that rank is dead.
func (h *Hub) broadcastPeerGone(rank int, _ error) {
	h.mu.Lock()
	h.dead[rank] = true
	h.mu.Unlock()
	var w wire
	w.u8(fPeerGone)
	w.u32(uint32(rank))
	for r := 0; r < h.p; r++ {
		if r != rank {
			h.forward(r, w.buf)
		}
	}
}

// broadcastAbort relays a world abort to every rank.
func (h *Hub) broadcastAbort() {
	h.mu.Lock()
	if h.aborted {
		h.mu.Unlock()
		return
	}
	h.aborted = true
	h.mu.Unlock()
	var w wire
	w.u8(fAbort)
	for r := 0; r < h.p; r++ {
		h.forward(r, w.buf)
	}
}

// Shutdown closes the listener and every rank connection and waits for
// the router goroutines. Connection drops after Shutdown are not reported
// as peer deaths.
func (h *Hub) Shutdown() {
	h.mu.Lock()
	h.shutdown = true
	conns := append([]*hubConn(nil), h.conns...)
	h.mu.Unlock()
	_ = h.ln.Close()
	for _, hc := range conns {
		if hc != nil {
			_ = hc.conn.Close()
		}
	}
	h.wg.Wait()
}
