package grid

import (
	"testing"
)

// countFacets tallies how many elements share each facet; a conforming
// mesh has every facet in exactly one or two elements.
func countFacets(m *Mesh) map[[3]int]int {
	count := map[[3]int]int{}
	for e := 0; e < m.NumElems(); e++ {
		el := m.Elem(e)
		if m.NPE == 3 {
			count[newFacet2(el[0], el[1])]++
			count[newFacet2(el[1], el[2])]++
			count[newFacet2(el[2], el[0])]++
		} else {
			count[newFacet3(el[0], el[1], el[2])]++
			count[newFacet3(el[0], el[1], el[3])]++
			count[newFacet3(el[0], el[2], el[3])]++
			count[newFacet3(el[1], el[2], el[3])]++
		}
	}
	return count
}

func TestAllMeshesConforming(t *testing.T) {
	meshes := map[string]*Mesh{
		"square":   UnitSquareTri(9),
		"cube":     UnitCubeTet(4),
		"ring":     QuarterRing(5, 7),
		"plate":    PlateWithHole(16),
		"bigPlate": PlateWithHole(24),
	}
	for name, m := range meshes {
		for f, c := range countFacets(m) {
			if c < 1 || c > 2 {
				t.Fatalf("%s: facet %v shared by %d elements — non-conforming mesh", name, f, c)
			}
		}
	}
}

func TestEulerCharacteristic2D(t *testing.T) {
	// For a 2D simply connected triangulated disc: V − E + F = 1 (not
	// counting the outer face). The plate-with-hole has genus-like
	// characteristic 0 (one hole).
	euler := func(m *Mesh) int {
		edges := map[[3]int]bool{}
		for e := 0; e < m.NumElems(); e++ {
			el := m.Elem(e)
			edges[newFacet2(el[0], el[1])] = true
			edges[newFacet2(el[1], el[2])] = true
			edges[newFacet2(el[2], el[0])] = true
		}
		return m.NumNodes() - len(edges) + m.NumElems()
	}
	if got := euler(UnitSquareTri(8)); got != 1 {
		t.Fatalf("square euler = %d, want 1", got)
	}
	if got := euler(QuarterRing(6, 5)); got != 1 {
		t.Fatalf("ring euler = %d, want 1", got)
	}
	if got := euler(PlateWithHole(20)); got != 0 {
		t.Fatalf("plate-with-hole euler = %d, want 0 (one hole)", got)
	}
}

func TestNodeGraphDegreeBounds(t *testing.T) {
	// Structured triangulation: interior vertices have degree ≤ 8 wait —
	// with the diagonal split used here, interior degree is 6; corners 2
	// or 3. Kuhn tets: interior degree ≤ 14.
	ptr, _ := UnitSquareTri(9).NodeGraph()
	for i := 0; i+1 < len(ptr); i++ {
		deg := ptr[i+1] - ptr[i]
		if deg < 2 || deg > 6 {
			t.Fatalf("square graph degree %d at %d out of [2,6]", deg, i)
		}
	}
	ptr, _ = UnitCubeTet(4).NodeGraph()
	for i := 0; i+1 < len(ptr); i++ {
		deg := ptr[i+1] - ptr[i]
		if deg < 3 || deg > 14 {
			t.Fatalf("cube graph degree %d at %d out of [3,14]", deg, i)
		}
	}
}

func TestNodeGraphEdgeCountMatchesEdges(t *testing.T) {
	// In 2D the node graph is exactly the edge graph of the mesh.
	m := PlateWithHole(18)
	ptr, _ := m.NodeGraph()
	graphEdges := ptr[len(ptr)-1] / 2
	meshEdges := 0
	for _, c := range countFacets(m) {
		_ = c
		meshEdges++
	}
	if graphEdges != meshEdges {
		t.Fatalf("graph has %d edges, mesh has %d", graphEdges, meshEdges)
	}
}

func TestBoundaryNodesCount2D(t *testing.T) {
	// Boundary facets each contribute their nodes; for the square the
	// boundary is a cycle: #boundary nodes == #boundary edges.
	m := UnitSquareTri(12)
	bEdges := 0
	for _, c := range countFacets(m) {
		if c == 1 {
			bEdges++
		}
	}
	onB := m.BoundaryNodes()
	bNodes := 0
	for _, b := range onB {
		if b {
			bNodes++
		}
	}
	if bNodes != bEdges {
		t.Fatalf("boundary nodes %d != boundary edges %d (boundary is a single cycle)", bNodes, bEdges)
	}
}
