package lint

// A small forward-dataflow engine over the CFGs of cfg.go. The lattice is
// the powerset of opaque facts with union join — the shape every analysis
// in this suite needs: detaint's fact is "this object holds a
// nondeterminism-tainted value", waitleak's is "this goroutine spawn has
// not been joined yet". Must-style analyses are expressed in the same
// engine by negating the question: a fact that reaches Exit on ANY path
// is a path on which the kill (the join, the check) did not happen.

// Facts is a set of analysis facts. Keys are opaque to the engine;
// analyses typically use types.Object or ast.Node values.
type Facts map[any]bool

// NewFacts builds a fact set from the given keys.
func NewFacts(keys ...any) Facts {
	f := make(Facts, len(keys))
	for _, k := range keys {
		f[k] = true
	}
	return f
}

// Clone returns an independent copy of f.
func (f Facts) Clone() Facts {
	g := make(Facts, len(f))
	for k := range f {
		g[k] = true
	}
	return g
}

// Union adds every fact of g to f and reports whether f changed.
func (f Facts) Union(g Facts) bool {
	changed := false
	for k := range g {
		if !f[k] {
			f[k] = true
			changed = true
		}
	}
	return changed
}

// Equal reports whether f and g hold exactly the same facts.
func (f Facts) Equal(g Facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// Transfer maps a block's entry fact set to its exit fact set. It must
// not mutate in; analyses return a fresh (possibly shared-on-no-change)
// set.
type Transfer func(b *Block, in Facts) Facts

// FlowResult holds the fixpoint of one forward run: the fact set at the
// entry and exit of every reachable block.
type FlowResult struct {
	In  map[*Block]Facts
	Out map[*Block]Facts
}

// Forward runs the forward worklist iteration: starting from boundary
// facts at cfg.Entry, propagate through transfer with union join at
// every merge point until nothing changes. Unreachable blocks keep empty
// sets. Termination: fact sets only grow and the universe is finite (the
// facts an analysis generates from a finite function body).
func Forward(cfg *CFG, boundary Facts, transfer Transfer) *FlowResult {
	res := &FlowResult{In: map[*Block]Facts{}, Out: map[*Block]Facts{}}
	reach := cfg.Reachable()

	res.In[cfg.Entry] = boundary.Clone()
	work := []*Block{cfg.Entry}
	queued := map[*Block]bool{cfg.Entry: true}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := res.In[b]
		if in == nil {
			in = Facts{}
			res.In[b] = in
		}
		out := transfer(b, in)
		if out == nil {
			out = Facts{}
		}
		if prev := res.Out[b]; prev != nil && prev.Equal(out) {
			continue
		}
		res.Out[b] = out

		for _, s := range b.Succs {
			if !reach[s] {
				continue
			}
			sin := res.In[s]
			if sin == nil {
				sin = Facts{}
				res.In[s] = sin
			}
			changed := sin.Union(out)
			if (changed || res.Out[s] == nil) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
