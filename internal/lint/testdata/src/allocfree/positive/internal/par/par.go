// A stub of the worker-pool package: the trailing internal/par path
// element makes For a recognized fan-out boundary, so closures passed to
// it are exempt from the closure-creation finding while their bodies are
// still scanned.
package par

// For runs f(0..n-1); the real pool's serial path runs f inline.
func For(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
