package mprun_test

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"parapre/internal/cases"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/dist/socket"
	"parapre/internal/mprun"
	"parapre/internal/precond"
)

// The re-exec pattern: the test binary doubles as the rank worker. When
// spawned by the supervisor with the sentinel first argument it runs one
// rank of the solve and exits — exactly the shape of solvepde's
// -socket-worker mode, but self-contained in the test binary.
const workerSentinel = "mprun-worker"

func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == workerSentinel {
		os.Exit(workerMain(os.Args[2:]))
	}
	os.Exit(m.Run())
}

// Fixed solve every worker (and the in-process reference) runs: ~15
// iterations, checkpointed every 5, with the chaos rank self-SIGKILLing
// right after the iteration-10 checkpoint — a death mid-recurrence with a
// resumable snapshot behind it.
const (
	tcase     = "tc7-jump"
	tsize     = 17
	tprocs    = 4
	tevery    = 5
	tdieIters = 7
)

func workerConfig() core.Config {
	cfg := core.DefaultConfig(tprocs, precond.KindSchur1)
	cfg.Solver.RecordHistory = true
	cfg.CheckpointEvery = tevery
	return cfg
}

func workerMain(argv []string) int {
	fs := flag.NewFlagSet(workerSentinel, flag.ExitOnError)
	rank := fs.Int("rank", -1, "")
	hubNet := fs.String("hub-net", "unix", "")
	hubAddr := fs.String("hub-addr", "", "")
	die := fs.Bool("die", false, "")
	restore := fs.String("restore", "", "")
	out := fs.String("out", "", "")
	fs.Parse(argv) //nolint:errcheck // ExitOnError

	c, err := cases.ByName(tcase)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		return 1
	}
	prob := c.Build(tsize)
	cfg := workerConfig()
	if *restore != "" {
		ck, err := ckpt.Load(*restore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worker restore:", err)
			return 1
		}
		cfg.Restore = ck
	}

	cl, err := socket.Dial(*hubNet, *hubAddr, tprocs, *rank, socket.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker dial:", err)
		return 1
	}
	defer cl.Close()

	var sink ckpt.Sink = cl
	if *die {
		sink = mprun.DieAtSink{Sink: cl, Iter: tdieIters}
	}
	res, _, err := core.SolveRank(prob, cfg, *rank, cl, sink)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker solve:", err)
		return 1
	}
	if *rank == 0 && *out != "" {
		line := fmt.Sprintf("%d %d\n", res.Iterations, math.Float64bits(res.Final/res.Initial))
		if err := os.WriteFile(*out, []byte(line), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "worker out:", err)
			return 1
		}
	}
	return 0
}

// TestSuperviseResumesAfterSIGKILL is the end-to-end durability gate over
// real OS processes: rank 1 SIGKILLs itself (uncatchable) right after the
// iteration-12 checkpoint, the supervisor respawns the world with
// -restore, and the resumed run must land on the same iteration count and
// bit-identical final residual as the uninterrupted in-process solve.
func TestSuperviseResumesAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a multi-process world")
	}
	c, err := cases.ByName(tcase)
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(tsize)
	cfg := workerConfig()
	cfg.CheckpointSink = discardSink{} // reference run: checkpoint hook on, durability off
	base, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations <= tdieIters {
		t.Fatalf("reference solve took %d iterations, death at %d never triggers", base.Iterations, tdieIters)
	}

	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "solve.ckpt")
	outPath := filepath.Join(dir, "rank0.out")
	var logBuf strings.Builder
	err = mprun.Supervise(mprun.Options{
		P:              tprocs,
		CheckpointPath: ckptPath,
		AcceptTimeout:  30 * time.Second,
		Log:            &logBuf,
		Args: func(rank int, network, addr string, restore bool) []string {
			args := []string{
				workerSentinel,
				"-rank", strconv.Itoa(rank),
				"-hub-net", network,
				"-hub-addr", addr,
				"-out", outPath,
			}
			if restore {
				args = append(args, "-restore", ckptPath)
			} else if rank == 1 {
				args = append(args, "-die")
			}
			return args
		},
	})
	if err != nil {
		t.Fatalf("Supervise: %v\nsupervisor log:\n%s", err, logBuf.String())
	}
	raw0, _ := os.ReadFile(outPath)
	if !strings.Contains(logBuf.String(), "respawning world from checkpoint") {
		t.Fatalf("supervisor never respawned from the checkpoint; out=%q log:\n%s", raw0, logBuf.String())
	}

	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("rank 0 wrote no result: %v", err)
	}
	var gotIters int
	var gotBits uint64
	if _, err := fmt.Sscanf(string(raw), "%d %d", &gotIters, &gotBits); err != nil {
		t.Fatalf("rank 0 result %q: %v", raw, err)
	}
	if gotIters != base.Iterations {
		t.Fatalf("resumed world took %d iterations, uninterrupted in-process %d", gotIters, base.Iterations)
	}
	if gotBits != math.Float64bits(base.Residual) {
		t.Fatalf("resumed residual bits %x, uninterrupted %x", gotBits, math.Float64bits(base.Residual))
	}
}

// discardSink satisfies ckpt.Sink for the reference run so both runs
// execute the same checkpoint hook (the hook must not perturb the solve).
type discardSink struct{}

func (discardSink) PutShard(seq, iter uint64, p int, rs *ckpt.RankState) error { return nil }
