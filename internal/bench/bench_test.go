package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestExperimentsCoverAllPaperTables(t *testing.T) {
	want := []string{
		"tc1-cluster", "tc1-origin", "tc2-cluster", "tc2-origin",
		"tc3-cluster", "tc4-cluster", "tc5-cluster", "tc5-origin",
		"tc6-cluster", "shape", "jump", "schwarz",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d is %q, want %q", i, got[i].ID, id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("tc4-cluster")
	if err != nil || e.CaseName != "tc4-heat3d" {
		t.Fatalf("ByID: %+v %v", e, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// runTiny shrinks an experiment for test execution.
func runTiny(t *testing.T, id string, size int, ps []int) []Table {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	e.Ps = ps
	tables, err := e.Run(size)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func TestTC1ClusterTinyRun(t *testing.T) {
	tables := runTiny(t, "tc1-cluster", 17, []int{2, 4})
	if len(tables) != 1 {
		t.Fatal("table count")
	}
	tb := tables[0]
	if len(tb.Rows) != 2 || len(tb.Columns) != 5 {
		t.Fatalf("table shape %dx%d", len(tb.Rows), len(tb.Columns))
	}
	for _, r := range tb.Rows {
		for i, c := range r.Cells {
			if !c.Converged {
				t.Errorf("P=%d %s: not converged", r.P, tb.Columns[i])
			}
			if c.Iters <= 0 || c.Time <= 0 {
				t.Errorf("P=%d %s: bogus cell %+v", r.P, tb.Columns[i], c)
			}
		}
	}
}

func TestShapeExperimentProducesTwoTables(t *testing.T) {
	tables := runTiny(t, "shape", 9, []int{4})
	if len(tables) != 2 {
		t.Fatalf("shape produced %d tables, want 2", len(tables))
	}
	if !strings.Contains(tables[0].Title, "general") || !strings.Contains(tables[1].Title, "simple") {
		t.Fatalf("titles: %q / %q", tables[0].Title, tables[1].Title)
	}
}

func TestSchwarzExperimentTinyRun(t *testing.T) {
	tables := runTiny(t, "schwarz", 25, []int{4})
	tb := tables[0]
	if len(tb.Columns) != 2 {
		t.Fatalf("columns %v", tb.Columns)
	}
	for _, r := range tb.Rows {
		for i, c := range r.Cells {
			if !c.Converged {
				t.Errorf("P=%d %s: not converged", r.P, tb.Columns[i])
			}
		}
	}
}

func TestTableWrite(t *testing.T) {
	tb := Table{
		Title:   "demo",
		N:       100,
		Columns: []string{"A", "B"},
		Rows: []Row{
			{P: 2, Cells: []Cell{{Iters: 10, Time: 0.5, Converged: true}, {Converged: false}}},
		},
	}
	var buf bytes.Buffer
	tb.Write(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "N = 100", "10", "n.c."} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOriginExperimentUsesOriginMachine(t *testing.T) {
	e, _ := ByID("tc1-origin")
	if e.Machine().Name != "Origin3800" {
		t.Fatalf("machine %q", e.Machine().Name)
	}
	e2, _ := ByID("tc1-cluster")
	if e2.Machine().Name != "LinuxCluster" {
		t.Fatalf("machine %q", e2.Machine().Name)
	}
}

// TestEveryExperimentRunsTiny executes every experiment id at a reduced
// size so no table regeneration path rots.
func TestEveryExperimentRunsTiny(t *testing.T) {
	sizes := map[string]int{
		"tc1-cluster": 13, "tc1-origin": 13,
		"tc2-cluster": 7, "tc2-origin": 7,
		"tc3-cluster": 16, "tc4-cluster": 7,
		"tc5-cluster": 13, "tc5-origin": 13,
		"tc6-cluster": 9, "shape": 7, "jump": 13, "schwarz": 25,
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			e.Ps = []int{2}
			if e.ID == "schwarz" {
				e.Ps = []int{4}
			}
			tables, err := e.Run(sizes[e.ID])
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
					t.Fatalf("empty table %q", tb.Title)
				}
				for _, r := range tb.Rows {
					if len(r.Cells) != len(tb.Columns) {
						t.Fatalf("ragged row in %q", tb.Title)
					}
				}
			}
		})
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := Table{
		Title:   "demo",
		N:       10,
		Columns: []string{"A"},
		Rows:    []Row{{P: 2, Cells: []Cell{{Iters: 5, Time: 0.25, Converged: true}}}},
	}
	var buf bytes.Buffer
	tb.WriteMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"**demo**", "| P |", "| 2 |", "5 / 0.2500s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}
