package fem

import (
	"parapre/internal/grid"
	"parapre/internal/sparse"
)

// AssembleScalarRows performs the paper's §1.1 distributed discretization
// for the scalar PDE: it assembles only the matrix rows of the nodes
// selected by owned, visiting exactly the elements incident to them (each
// processor "carries out discretization on its own subdomain"). The
// result is a row slab in global numbering — rows of non-owned nodes stay
// empty — suitable for dsys.DistributeRows. The union of all ranks' slabs
// equals the global assembly, without any rank ever forming it.
func AssembleScalarRows(m *grid.Mesh, pde ScalarPDE, owned func(node int) bool) (*sparse.CSR, []float64) {
	npe := m.NPE
	vel := pde.Velocity
	vnorm := pde.velocityNorm()
	convect := vnorm > 0

	return assemble(m, m.NumNodes(), 0, func(e int, s *sink) {
		el := m.Elem(e)
		anyOwned := false
		for _, node := range el {
			if owned(node) {
				anyOwned = true
				break
			}
		}
		if !anyOwned {
			return
		}
		g := geometry(m, e)

		kDiff := pde.Diffusion
		if pde.DiffusionFn != nil {
			centroid(m, e, s.x)
			kDiff = pde.DiffusionFn(s.x)
		}
		var fc float64
		if pde.Source != nil {
			centroid(m, e, s.x)
			fc = pde.Source(s.x)
		}

		var vg [4]float64
		var tau float64
		if convect {
			for i := 0; i < npe; i++ {
				for d := 0; d < m.Dim; d++ {
					vg[i] += vel[d] * g.grad[i][d]
				}
			}
			if pde.SUPG {
				h := elemScale(m.Dim, g.measure)
				pe := vnorm * h / (2 * kDiff)
				tau = h / (2 * vnorm) * upwindFn(pe)
			}
		}

		w := g.measure / float64(npe)
		for i := 0; i < npe; i++ {
			if !owned(el[i]) {
				continue // this row belongs to another processor
			}
			for j := 0; j < npe; j++ {
				var dot float64
				for d := 0; d < m.Dim; d++ {
					dot += g.grad[i][d] * g.grad[j][d]
				}
				v := kDiff * g.measure * dot
				if convect {
					v += w * vg[j]
					if pde.SUPG {
						v += tau * g.measure * vg[i] * vg[j]
					}
				}
				s.add(el[i], el[j], v)
			}
			if pde.Source != nil {
				s.addRHS(el[i], w*fc)
				if pde.SUPG && convect {
					s.addRHS(el[i], tau*g.measure*vg[i]*fc)
				}
			}
		}
	})
}

// ApplyDirichletRows imposes the boundary conditions on a row slab: it is
// ApplyDirichlet restricted to the owned rows (non-owned rows are empty
// and untouched). bc must be the GLOBAL boundary map — a processor knows
// the boundary values of its external interface neighbors because they
// come from the boundary-condition function, not from other processors.
func ApplyDirichletRows(a *sparse.CSR, b []float64, bc map[int]float64, owned func(node int) bool) {
	if len(bc) == 0 {
		return
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowNNZ(i) == 0 || !owned(i) {
			continue
		}
		cols, vals := a.Row(i)
		if v, isBC := bc[i]; isBC {
			for k, j := range cols {
				if j == i {
					vals[k] = 1
				} else {
					vals[k] = 0
				}
			}
			b[i] = v
			continue
		}
		for k, j := range cols {
			if v, isBC := bc[j]; isBC {
				b[i] -= vals[k] * v
				vals[k] = 0
			}
		}
	}
}

// AssembleElasticityRows is the distributed-discretization variant of
// AssembleElasticity: only the rows of owned degrees of freedom (dof
// d = 2·node+α with owned(d)) are assembled. Partitioning keeps both dofs
// of a node together, so ownership is effectively per node.
func AssembleElasticityRows(m *grid.Mesh, mu, lambda float64,
	f func(x []float64) (fx, fy float64), owned func(dof int) bool) (*sparse.CSR, []float64) {
	if m.Dim != 2 {
		panic("fem: AssembleElasticityRows supports 2D meshes only")
	}
	npe := m.NPE
	gd := mu + lambda

	return assemble(m, 2*m.NumNodes(), 0, func(e int, s *sink) {
		el := m.Elem(e)
		anyOwned := false
		for _, node := range el {
			if owned(2*node) || owned(2*node+1) {
				anyOwned = true
				break
			}
		}
		if !anyOwned {
			return
		}
		g := geometry(m, e)
		var fx, fy float64
		if f != nil {
			centroid(m, e, s.x)
			fx, fy = f(s.x)
		}
		w := g.measure / float64(npe)
		for i := 0; i < npe; i++ {
			for alpha := 0; alpha < 2; alpha++ {
				row := 2*el[i] + alpha
				if !owned(row) {
					continue
				}
				for j := 0; j < npe; j++ {
					var gradDot float64
					for d := 0; d < 2; d++ {
						gradDot += g.grad[i][d] * g.grad[j][d]
					}
					for beta := 0; beta < 2; beta++ {
						v := gd * g.grad[i][alpha] * g.grad[j][beta]
						if alpha == beta {
							v += mu * gradDot
						}
						s.add(row, 2*el[j]+beta, g.measure*v)
					}
				}
				if f != nil {
					if alpha == 0 {
						s.addRHS(row, w*fx)
					} else {
						s.addRHS(row, w*fy)
					}
				}
			}
		}
	})
}
