module parapre

go 1.22
