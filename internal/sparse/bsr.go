package sparse

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"parapre/internal/par"
)

// BSR is a sparse matrix in block compressed sparse row format: the
// scalar matrix is tiled into dense BR×BC blocks, and only blocks holding
// at least one stored scalar entry are kept. Vector-valued FEM
// discretizations (elasticity: 2 or 3 unknowns per node) produce fully
// dense small blocks, where BSR wins over CSR by amortizing index loads
// over BR·BC values and keeping the x entries of a block column in
// registers.
//
// Block row bi owns the half-open range RowPtr[bi]:RowPtr[bi+1] of ColIdx
// (block column indices, strictly increasing within a block row) and the
// corresponding blocks of Val; block k occupies
// Val[k·BR·BC : (k+1)·BR·BC], row-major within the block. Positions with
// no stored scalar entry hold an explicit 0.
//
// Determinism: the matvec kernels accumulate each scalar row's terms one
// multiply-subtract at a time in ascending scalar column order — the same
// expression shape and order as the CSR kernels — so a conversion with no
// fill (every block fully dense, the only kind the automatic router
// accepts) is bit-identical to CSR for every input, including non-finite
// values. With fill, the extra 0·x terms are exact zeros for finite x.
type BSR struct {
	Rows, Cols int // scalar dimensions
	BR, BC     int // block dimensions; Rows%BR == 0, Cols%BC == 0
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// rowPart caches the nnz-balanced block-row partition of the parallel
	// kernels, exactly like CSR.rowPart.
	rowPart atomic.Pointer[rowPartCache]
}

// BlockRows returns the number of block rows.
func (b *BSR) BlockRows() int { return b.Rows / b.BR }

// NNZ returns the number of stored scalar entries (including the explicit
// zeros that pad partially filled blocks).
func (b *BSR) NNZ() int { return len(b.Val) }

// Blocks returns the number of stored blocks.
func (b *BSR) Blocks() int { return len(b.ColIdx) }

// String returns a compact summary.
func (b *BSR) String() string {
	return fmt.Sprintf("BSR{%d×%d, %d×%d blocks, nb=%d}", b.Rows, b.Cols, b.BR, b.BC, b.Blocks())
}

// ToBSR converts a CSR matrix to BSR with the given block shape. The
// scalar dimensions must tile exactly. Block columns are sorted within
// each block row, so the scalar accumulation order of the matvec kernels
// matches CSR's ascending-column order.
func ToBSR(a *CSR, br, bc int) (*BSR, error) {
	if br <= 0 || bc <= 0 {
		//lint:ignore allocfree validation failure of the once-per-shape lazy BSR build, not steady-state
		return nil, fmt.Errorf("sparse: ToBSR block shape %d×%d", br, bc)
	}
	if a.Rows%br != 0 || a.Cols%bc != 0 {
		//lint:ignore allocfree validation failure of the once-per-shape lazy BSR build, not steady-state
		return nil, fmt.Errorf("sparse: ToBSR %d×%d does not tile into %d×%d blocks", a.Rows, a.Cols, br, bc)
	}
	a.Validate()
	nbr := a.Rows / br
	nbc := a.Cols / bc
	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	b := &BSR{Rows: a.Rows, Cols: a.Cols, BR: br, BC: bc, RowPtr: make([]int, nbr+1)}

	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	mark := make([]int, nbc)
	for i := range mark {
		mark[i] = -1
	}
	for bi := 0; bi < nbr; bi++ {
		cnt := 0
		for i := bi * br; i < (bi+1)*br; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if bj := a.ColIdx[k] / bc; mark[bj] != bi {
					mark[bj] = bi
					cnt++
				}
			}
		}
		b.RowPtr[bi+1] = b.RowPtr[bi] + cnt
	}
	nb := b.RowPtr[nbr]
	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	b.ColIdx = make([]int, nb)
	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	b.Val = make([]float64, nb*br*bc)

	for i := range mark {
		mark[i] = -1
	}
	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	pos := make([]int, nbc) // block column → block slot, valid while mark[bj] == bi
	//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
	scratch := make([]int, 0, nbc)
	for bi := 0; bi < nbr; bi++ {
		scratch = scratch[:0]
		for i := bi * br; i < (bi+1)*br; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if bj := a.ColIdx[k] / bc; mark[bj] != bi {
					mark[bj] = bi
					//lint:ignore allocfree BSR conversion runs once per matrix shape and is cached behind blocked()
					scratch = append(scratch, bj)
				}
			}
		}
		sort.Ints(scratch)
		base := b.RowPtr[bi]
		for t, bj := range scratch {
			b.ColIdx[base+t] = bj
			pos[bj] = base + t
		}
		for i := bi * br; i < (bi+1)*br; i++ {
			r := i - bi*br
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				j := a.ColIdx[k]
				bj := j / bc
				b.Val[pos[bj]*br*bc+r*bc+(j-bj*bc)] = a.Val[k]
			}
		}
	}
	return b, nil
}

// ToCSR converts back to CSR, dropping the explicit zeros that padded
// partially filled blocks: a CSR→BSR→ToCSR round trip reproduces the
// original pattern exactly when the original stored no explicit zeros.
func (b *BSR) ToCSR() *CSR {
	a := NewCSR(b.Rows, b.Cols, b.NNZ())
	br, bc := b.BR, b.BC
	for bi := 0; bi < b.BlockRows(); bi++ {
		for r := 0; r < br; r++ {
			i := bi*br + r
			for k := b.RowPtr[bi]; k < b.RowPtr[bi+1]; k++ {
				j0 := b.ColIdx[k] * bc
				blk := b.Val[k*br*bc+r*bc : k*br*bc+(r+1)*bc]
				for c, v := range blk {
					if v != 0 {
						a.ColIdx = append(a.ColIdx, j0+c)
						a.Val = append(a.Val, v)
					}
				}
			}
			a.RowPtr[i+1] = len(a.ColIdx)
		}
	}
	return a
}

// blockFill returns stored-block count for square r×r tiling of a, or -1
// when the dimensions do not tile.
func blockFill(a *CSR, r int) int {
	if a.Rows%r != 0 || a.Cols%r != 0 {
		return -1
	}
	nbr := a.Rows / r
	nbc := a.Cols / r
	//lint:ignore allocfree block-size detection runs once per matrix shape and is cached behind blocked()
	mark := make([]int, nbc)
	for i := range mark {
		mark[i] = -1
	}
	blocks := 0
	for bi := 0; bi < nbr; bi++ {
		for i := bi * r; i < (bi+1)*r; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if bj := a.ColIdx[k] / r; bj < nbc && mark[bj] != bi {
					mark[bj] = bi
					blocks++
				}
			}
		}
	}
	return blocks
}

// DetectBlockSize inspects the sparsity pattern for a natural square
// block size r ∈ {4, 3, 2}: the largest candidate whose fill ratio
// (stored block area over scalar nonzeros) stays within maxFill is
// returned; 1 means the pattern has no useful block structure. Vector
// FEM assemblies — every degree of freedom of a node coupling to every
// degree of freedom of its neighbors — score a fill ratio of exactly 1.
func DetectBlockSize(a *CSR, maxFill float64) int {
	nnz := a.NNZ()
	if nnz == 0 {
		return 1
	}
	for _, r := range [...]int{4, 3, 2} {
		blocks := blockFill(a, r)
		if blocks < 0 {
			continue
		}
		if float64(blocks*r*r) <= maxFill*float64(nnz) {
			return r
		}
	}
	return 1
}

// rowPartition mirrors CSR.rowPartition for block rows: segment bounds of
// roughly equal stored-block count. Correctness does not depend on the
// balance, only coverage, so a racing recompute is harmless.
func (b *BSR) rowPartition(segs int) []int {
	nbr := b.BlockRows()
	if p := b.rowPart.Load(); p != nil && p.segs == segs && p.rows == nbr && p.nnz == b.Blocks() {
		return p.bounds
	}
	nb := b.Blocks()
	//lint:ignore allocfree row partition is computed once per (shape, segs) and cached in rowPart
	bounds := make([]int, segs+1)
	for s := 1; s < segs; s++ {
		target := int(int64(s) * int64(nb) / int64(segs))
		r := sort.SearchInts(b.RowPtr, target)
		if r > nbr {
			r = nbr
		}
		if r < bounds[s-1] {
			r = bounds[s-1]
		}
		bounds[s] = r
	}
	bounds[segs] = nbr
	//lint:ignore allocfree row partition is computed once per (shape, segs) and cached in rowPart
	b.rowPart.Store(&rowPartCache{segs: segs, rows: nbr, nnz: nb, bounds: bounds})
	return bounds
}

// mulRange computes y[..] = A[..]·x over the block rows [lo, hi),
// dispatching to the register-blocked kernel for the common shapes.
func (b *BSR) mulRange(y, x []float64, lo, hi int) {
	switch {
	case b.BR == 2 && b.BC == 2:
		b.mul2x2(y, x, lo, hi)
	case b.BR == 3 && b.BC == 3:
		b.mul3x3(y, x, lo, hi)
	default:
		b.mulGeneric(y, x, lo, hi)
	}
}

// The specialized kernels accumulate one multiply-add per statement, in
// ascending scalar column order within each scalar row — the exact
// expression shape of CSR.mulRange, so the compiler applies (or does not
// apply) fused multiply-add identically and results match CSR bit for
// bit. The win is structural: one index load drives BR·BC values, and the
// BC entries of x per block column are loaded once for all BR rows.

func (b *BSR) mul2x2(y, x []float64, lo, hi int) {
	rp, ci, vv := b.RowPtr, b.ColIdx, b.Val
	for bi := lo; bi < hi; bi++ {
		var s0, s1 float64
		for k := rp[bi]; k < rp[bi+1]; k++ {
			j := ci[k] * 2
			x0, x1 := x[j], x[j+1]
			blk := vv[k*4 : k*4+4 : k*4+4]
			s0 += blk[0] * x0
			s0 += blk[1] * x1
			s1 += blk[2] * x0
			s1 += blk[3] * x1
		}
		y[bi*2] = s0
		y[bi*2+1] = s1
	}
}

func (b *BSR) mul3x3(y, x []float64, lo, hi int) {
	rp, ci, vv := b.RowPtr, b.ColIdx, b.Val
	for bi := lo; bi < hi; bi++ {
		var s0, s1, s2 float64
		for k := rp[bi]; k < rp[bi+1]; k++ {
			j := ci[k] * 3
			x0, x1, x2 := x[j], x[j+1], x[j+2]
			blk := vv[k*9 : k*9+9 : k*9+9]
			s0 += blk[0] * x0
			s0 += blk[1] * x1
			s0 += blk[2] * x2
			s1 += blk[3] * x0
			s1 += blk[4] * x1
			s1 += blk[5] * x2
			s2 += blk[6] * x0
			s2 += blk[7] * x1
			s2 += blk[8] * x2
		}
		y[bi*3] = s0
		y[bi*3+1] = s1
		y[bi*3+2] = s2
	}
}

func (b *BSR) mulGeneric(y, x []float64, lo, hi int) {
	rp, ci, vv := b.RowPtr, b.ColIdx, b.Val
	br, bc := b.BR, b.BC
	for bi := lo; bi < hi; bi++ {
		for r := 0; r < br; r++ {
			var s float64
			for k := rp[bi]; k < rp[bi+1]; k++ {
				j := ci[k] * bc
				row := vv[k*br*bc+r*bc : k*br*bc+(r+1)*bc]
				for c, v := range row {
					s += v * x[j+c]
				}
			}
			y[bi*br+r] = s
		}
	}
}

func (b *BSR) checkMulDims(op string, y, x []float64) {
	if len(x) < b.Cols || len(y) < b.Rows {
		panic(fmt.Sprintf("sparse: %s dimension mismatch: A is %d×%d, len(x)=%d, len(y)=%d",
			op, b.Rows, b.Cols, len(x), len(y)))
	}
}

// MulVecTo computes y = A·x without allocating, in parallel over the
// nnz-balanced block-row partition for large matrices. Bit-identical to
// the CSR kernel on fill-free conversions at any worker count.
//
//lint:allocfree steady state once the block-row partition is built; verified dynamically by TestBSRMulVecToZeroAllocSteadyState
func (b *BSR) MulVecTo(y, x []float64) {
	b.checkMulDims("MulVecTo", y, x)
	if w := par.Workers(); w > 1 && b.NNZ() >= spmvParMinNNZ {
		par.ForSegments(b.rowPartition(w), func(lo, hi int) { b.mulRange(y, x, lo, hi) })
		return
	}
	b.mulRange(y, x, 0, b.BlockRows())
}

// MulVecAdd computes y += alpha · A·x, mirroring CSR.MulVecAdd: each
// scalar row's product is accumulated fully, then folded into y with one
// multiply-add.
func (b *BSR) MulVecAdd(y []float64, alpha float64, x []float64) {
	b.checkMulDims("MulVecAdd", y, x)
	body := func(lo, hi int) {
		br := b.BR
		for bi := lo; bi < hi; bi++ {
			for r := 0; r < br; r++ {
				i := bi*br + r
				s := b.rowDot(bi, r, x)
				y[i] += alpha * s
			}
		}
	}
	if w := par.Workers(); w > 1 && b.NNZ() >= spmvParMinNNZ {
		par.ForSegments(b.rowPartition(w), body)
		return
	}
	body(0, b.BlockRows())
}

// MulVecSub computes y -= A·x, mirroring CSR.MulVecSub.
func (b *BSR) MulVecSub(y, x []float64) {
	b.checkMulDims("MulVecSub", y, x)
	body := func(lo, hi int) {
		br := b.BR
		for bi := lo; bi < hi; bi++ {
			for r := 0; r < br; r++ {
				i := bi*br + r
				s := b.rowDot(bi, r, x)
				y[i] -= s
			}
		}
	}
	if w := par.Workers(); w > 1 && b.NNZ() >= spmvParMinNNZ {
		par.ForSegments(b.rowPartition(w), body)
		return
	}
	body(0, b.BlockRows())
}

// rowDot accumulates scalar row (bi·BR + r) · x in ascending column
// order, one multiply-add per stored entry — the CSR accumulation shape.
func (b *BSR) rowDot(bi, r int, x []float64) float64 {
	rp, ci, vv := b.RowPtr, b.ColIdx, b.Val
	br, bc := b.BR, b.BC
	var s float64
	for k := rp[bi]; k < rp[bi+1]; k++ {
		j := ci[k] * bc
		row := vv[k*br*bc+r*bc : k*br*bc+(r+1)*bc]
		for c, v := range row {
			s += v * x[j+c]
		}
	}
	return s
}

// Automatic format selection. CSR matvecs consult a per-matrix cache: on
// first use of a large enough matrix the pattern is probed for a natural
// block size with zero fill (the only conversion that is bit-identical
// unconditionally — see the BSR doc comment), and the verdict — a BSR
// twin or a decline — is cached. Mutating CSR methods invalidate the
// cache; callers that write CSR.Val directly around matvecs of the same
// matrix must call InvalidateBlocked afterwards.

// EnvAutoBlock disables the automatic CSR→BSR routing when set to "0" or
// "off" — an escape hatch for isolating kernels during debugging.
const EnvAutoBlock = "PARAPRE_BSR"

var autoBlockOn atomic.Bool

func init() {
	switch os.Getenv(EnvAutoBlock) {
	case "0", "off":
	default:
		autoBlockOn.Store(true)
	}
}

// SetAutoBlock enables or disables automatic blocked-format routing for
// all subsequent CSR matvecs and returns the previous setting.
func SetAutoBlock(on bool) bool { return autoBlockOn.Swap(on) }

// autoBlockMinNNZ gates detection: probing tiny matrices costs more than
// their matvecs could ever win back.
const autoBlockMinNNZ = 4096

// bsrCache is one detection verdict, tagged with the shape it was made
// for. b == nil records a decline.
type bsrCache struct {
	rows, nnz int
	b         *BSR
}

// blocked returns the BSR twin to route this matvec through, or nil to
// stay on CSR. The verdict is computed once and revalidated against the
// current shape, mirroring rowPartition.
func (a *CSR) blocked() *BSR {
	if !autoBlockOn.Load() {
		return nil
	}
	if c := a.bsr.Load(); c != nil && c.rows == a.Rows && c.nnz == a.NNZ() {
		return c.b
	}
	//lint:ignore allocfree block-routing verdict is computed once per matrix shape and cached in bsr
	c := &bsrCache{rows: a.Rows, nnz: a.NNZ()}
	if a.NNZ() >= autoBlockMinNNZ {
		// maxFill 1.0: only fill-free tilings, so routing never changes a
		// single bit of any matvec.
		if r := DetectBlockSize(a, 1.0); r > 1 {
			if b, err := ToBSR(a, r, r); err == nil {
				c.b = b
			}
		}
	}
	a.bsr.Store(c)
	return c.b
}

// AutoBlocked runs (or recalls) blocked-format detection for this matrix
// and returns the BSR twin the matvecs will use, or nil when the matrix
// stays on CSR. dsys calls it at distribution time to move the one-time
// detection cost out of the first solve iteration.
func (a *CSR) AutoBlocked() *BSR { return a.blocked() }

// InvalidateBlocked drops the cached blocked-format verdict. The mutating
// CSR methods call it automatically; it exists for callers that edit Val
// in place between matvecs.
func (a *CSR) InvalidateBlocked() { a.bsr.Store(nil) }
