package ilu

import (
	"os"
	"sync/atomic"

	"parapre/internal/par"
)

// Level-scheduled triangular solves.
//
// A sparse triangular solve is a topological sweep of the factor's
// dependency DAG: row i of the forward sweep depends exactly on the rows
// named by its L-part columns, and row i of the backward sweep on its
// U-part columns. Grouping rows by their topological level (the length of
// the longest dependency chain ending at the row) turns the sweep into a
// sequence of levels whose rows are mutually independent, so each level
// can run across the par worker pool with one barrier per level.
//
// Determinism: every row still accumulates its own terms left to right
// over exactly the stored entries, and each row is written by exactly one
// worker, so the scheduled sweep is bit-identical to the serial sweep at
// any worker count — the level order only reorders *between* rows whose
// results never feed each other within a level.
//
// The analysis is O(nnz), computed once per factor (eagerly at
// factorization time when the process can run parallel sweeps, lazily
// otherwise) and cached behind an atomic pointer: factors are shared
// read-only between goroutines in a few places and concurrent first
// solves must not race. Racing builders produce identical schedules; the
// last store wins.

// EnvLevelSched selects the level-scheduling mode: "off" forces the plain
// serial sweeps, "force" always routes through the level schedule (used
// by the bit-identity tests), anything else is the profitability-gated
// default.
const EnvLevelSched = "PARAPRE_LEVELSCHED"

// LevelMode selects how triangular solves choose between the serial sweep
// and the level-scheduled sweep.
type LevelMode int32

const (
	// LevelAuto uses the level schedule only when the worker pool can run
	// it concurrently and the level structure is wide enough to pay for
	// the per-level barriers.
	LevelAuto LevelMode = iota
	// LevelForce always routes through the level schedule (still serial
	// inside par.ForLevels when the process has a single P) — the mode the
	// bit-identity tests pin.
	LevelForce
	// LevelOff always uses the plain serial sweeps.
	LevelOff
)

var levelSchedMode atomic.Int32

func init() {
	switch os.Getenv(EnvLevelSched) {
	case "off":
		levelSchedMode.Store(int32(LevelOff))
	case "force":
		levelSchedMode.Store(int32(LevelForce))
	}
}

func levelMode() LevelMode { return LevelMode(levelSchedMode.Load()) }

// SetLevelMode sets the level-scheduling mode for all subsequent solves
// and returns the previous mode. Tests use it to pin a specific kernel
// path; production code leaves the default.
func SetLevelMode(m LevelMode) LevelMode {
	return LevelMode(levelSchedMode.Swap(int32(m)))
}

// Profitability gate. Each level costs one barrier (hundreds of
// nanoseconds of synchronization), so the schedule only wins when the
// average level holds enough rows to keep every worker busy past that
// cost. Narrow/deep structures — strongly sequential factors such as a
// tridiagonal ILU — fall back to the serial sweep.
const (
	levelMinRows  = 2048 // below this the whole sweep is cheaper than any fan-out
	levelMinWidth = 48   // minimum average rows per level, per worker
)

// levelSet groups the rows of one triangular sweep by topological level:
// level l owns rows[ptr[l]:ptr[l+1]], ascending within the level.
type levelSet struct {
	ptr  []int
	rows []int
}

// profitable reports whether the level structure is wide enough for the
// scheduled sweep to beat the serial one at w workers.
func (ls *levelSet) profitable(w int) bool {
	l := len(ls.ptr) - 1
	n := len(ls.rows)
	return l > 0 && n >= levelMinRows && n >= levelMinWidth*w*l
}

// triSched is the cached pair of level sets of one factorization's
// forward and backward sweeps.
type triSched struct {
	fwd, bwd levelSet
}

// bucketLevels converts per-row levels into a levelSet via a counting
// sort, keeping rows ascending within each level.
func bucketLevels(lvl []int) levelSet {
	n := len(lvl)
	maxL := 0
	for _, l := range lvl {
		if l > maxL {
			maxL = l
		}
	}
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	ptr := make([]int, maxL+2)
	for _, l := range lvl {
		ptr[l+1]++
	}
	for l := 0; l <= maxL; l++ {
		ptr[l+1] += ptr[l]
	}
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	rows := make([]int, n)
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	next := append([]int(nil), ptr[:maxL+1]...)
	for i, l := range lvl {
		rows[next[l]] = i
		next[l]++
	}
	return levelSet{ptr: ptr, rows: rows}
}

// buildLUSched computes the forward (L-part) and backward (U-part) level
// sets of a combined LU factor (see LU: columns < i are L, columns > i
// are U, Diag[i] marks the diagonal).
func buildLUSched(rp, ci, diag []int, n int) *triSched {
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	lvl := make([]int, n)
	for i := 0; i < n; i++ {
		l := 0
		for k := rp[i]; k < diag[i]; k++ {
			if d := lvl[ci[k]] + 1; d > l {
				l = d
			}
		}
		lvl[i] = l
	}
	fwd := bucketLevels(lvl)
	// Backward levels: dependencies are the U-part columns j > i, whose
	// levels are already final when row i is visited in descending order,
	// so lvl can be reused in place.
	for i := n - 1; i >= 0; i-- {
		l := 0
		for k := diag[i] + 1; k < rp[i+1]; k++ {
			if d := lvl[ci[k]] + 1; d > l {
				l = d
			}
		}
		lvl[i] = l
	}
	bwd := bucketLevels(lvl)
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	return &triSched{fwd: fwd, bwd: bwd}
}

// buildCholSched computes the level sets of an incomplete Cholesky pair:
// the forward sweep over L (diagonal last in each row) and the backward
// sweep over Lᵀ (diagonal first).
func buildCholSched(lrp, lci, trp, tci []int, n int) *triSched {
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	lvl := make([]int, n)
	for i := 0; i < n; i++ {
		l := 0
		for k := lrp[i]; k < lrp[i+1]-1; k++ {
			if d := lvl[lci[k]] + 1; d > l {
				l = d
			}
		}
		lvl[i] = l
	}
	fwd := bucketLevels(lvl)
	for i := n - 1; i >= 0; i-- {
		l := 0
		for k := trp[i] + 1; k < trp[i+1]; k++ {
			if d := lvl[tci[k]] + 1; d > l {
				l = d
			}
		}
		lvl[i] = l
	}
	bwd := bucketLevels(lvl)
	//lint:ignore allocfree level schedule is built once per factor and cached (prepLevels/atomic.Pointer)
	return &triSched{fwd: fwd, bwd: bwd}
}

// levels returns the cached level schedule, building it on first use.
func (f *LU) levels() *triSched {
	if s := f.lvl.Load(); s != nil {
		return s
	}
	s := buildLUSched(f.M.RowPtr, f.M.ColIdx, f.Diag, f.N())
	f.lvl.Store(s)
	return s
}

// sched returns the level schedule when the current mode and worker pool
// would use it for at least one sweep, nil otherwise. In LevelAuto on a
// serial configuration it returns nil without building anything, so the
// plain sweeps carry zero scheduling overhead.
func (f *LU) sched() *triSched {
	switch levelMode() {
	case LevelOff:
		return nil
	case LevelForce:
		return f.levels()
	}
	w := par.Workers()
	if w <= 1 || !par.HaveParallelism() {
		return nil
	}
	s := f.levels()
	if !s.fwd.profitable(w) && !s.bwd.profitable(w) {
		return nil
	}
	return s
}

// prepLevels builds the schedule at factorization time when the process
// could run level-scheduled sweeps, so the first Solve does not pay the
// analysis.
func (f *LU) prepLevels() {
	switch levelMode() {
	case LevelOff:
	case LevelForce:
		f.levels()
	default:
		if par.Workers() > 1 && par.HaveParallelism() {
			f.levels()
		}
	}
}

func (c *Chol) levels() *triSched {
	if s := c.lvl.Load(); s != nil {
		return s
	}
	s := buildCholSched(c.L.RowPtr, c.L.ColIdx, c.Lt.RowPtr, c.Lt.ColIdx, c.N())
	c.lvl.Store(s)
	return s
}

func (c *Chol) sched() *triSched {
	switch levelMode() {
	case LevelOff:
		return nil
	case LevelForce:
		return c.levels()
	}
	w := par.Workers()
	if w <= 1 || !par.HaveParallelism() {
		return nil
	}
	s := c.levels()
	if !s.fwd.profitable(w) && !s.bwd.profitable(w) {
		return nil
	}
	return s
}

func (c *Chol) prepLevels() {
	switch levelMode() {
	case LevelOff:
	case LevelForce:
		c.levels()
	default:
		if par.Workers() > 1 && par.HaveParallelism() {
			c.levels()
		}
	}
}
