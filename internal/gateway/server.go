package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/obs"
)

// Server is the solver-as-a-service gateway: it owns the job registry,
// the per-spec session cache, the scheduler, and (optionally) the
// checkpoint directory that makes jobs survive a kill.
type Server struct {
	sched   *Scheduler
	ckptDir string

	mu       sync.Mutex
	jobs     map[string]*Job
	sessions map[string]*sessionEntry
}

// sessionEntry builds its core.Session at most once; concurrent jobs
// with the same spec key block on the first build and then share it.
type sessionEntry struct {
	once sync.Once
	sess *core.Session
	err  error
}

// Options configures New.
type Options struct {
	Workers    int    // solver pool size (default 2)
	QueueDepth int    // per-tenant queue capacity (default 8)
	CkptDir    string // non-empty enables checkpoint persistence + resume
}

// New creates a gateway server and recovers any resumable jobs left in
// the checkpoint directory by a previous process.
func New(opt Options) (*Server, error) {
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 8
	}
	s := &Server{
		ckptDir:  opt.CkptDir,
		jobs:     make(map[string]*Job),
		sessions: make(map[string]*sessionEntry),
	}
	s.sched = NewScheduler(opt.Workers, opt.QueueDepth, s.runJob)
	if err := s.resumeScan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Drain stops admission and waits for in-flight jobs (SIGTERM path).
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates, registers and enqueues a job for the tenant.
func (s *Server) Submit(tenant string, spec *Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	j := NewJob(tenant, spec)
	return j, s.enqueue(j)
}

func (s *Server) enqueue(j *Job) error {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	if err := s.sched.Submit(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		return err
	}
	return nil
}

// session returns the cached session for the spec, building it on first
// use. Session setup (partitioning, factorization) is the expensive part
// a service must amortize — the whole point of core.Session.
func (s *Server) session(spec *Spec) (*core.Session, error) {
	key := spec.SessionKey()
	s.mu.Lock()
	e, ok := s.sessions[key]
	if !ok {
		e = &sessionEntry{}
		s.sessions[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		prob, err := spec.BuildProblem()
		if err != nil {
			e.err = err
			return
		}
		e.sess, e.err = core.NewSession(prob, spec.BuildConfig())
	})
	return e.sess, e.err
}

// ckptPath returns the job's checkpoint and spec-sidecar paths.
func (s *Server) ckptPath(id string) (ck, spec string) {
	return filepath.Join(s.ckptDir, id+".ckpt"), filepath.Join(s.ckptDir, id+".json")
}

// persistedSpec is the sidecar the resume scan reads: enough to rebuild
// the job exactly.
type persistedSpec struct {
	Tenant string `json:"tenant"`
	Spec   *Spec  `json:"spec"`
}

// resumeScan re-enqueues jobs whose checkpoints a killed predecessor
// left behind: for every sidecar spec with a loadable checkpoint the job
// restarts mid-recurrence; a sidecar without a checkpoint (killed before
// the first snapshot) restarts from scratch.
func (s *Server) resumeScan() error {
	if s.ckptDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.ckptDir, 0o755); err != nil {
		return err
	}
	sidecars, err := filepath.Glob(filepath.Join(s.ckptDir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(sidecars)
	for _, sc := range sidecars {
		data, err := os.ReadFile(sc)
		if err != nil {
			continue
		}
		var ps persistedSpec
		if json.Unmarshal(data, &ps) != nil || ps.Spec == nil || ps.Spec.Validate() != nil {
			_ = os.Remove(sc)
			continue
		}
		id := strings.TrimSuffix(filepath.Base(sc), ".json")
		j := NewJob(ps.Tenant, ps.Spec)
		j.ID = id // keep the identity clients hold
		ckFile, _ := s.ckptPath(id)
		if ck, err := ckpt.Load(ckFile); err == nil {
			j.Restore = ck
		}
		j.Publish(Event{Type: "recovery", Stage: "resume", Recovered: j.Restore != nil})
		if err := s.enqueue(j); err != nil {
			return fmt.Errorf("gateway: resume %s: %w", id, err)
		}
	}
	return nil
}

// runJob executes one job on a worker: session lookup, live event
// wiring, the solve itself, result projection, checkpoint cleanup.
func (s *Server) runJob(ctx context.Context, j *Job) {
	sess, err := s.session(j.Spec)
	if err != nil {
		j.Fail(err)
		return
	}

	coll := obs.NewCollector()
	streamAll := j.Spec.StreamSpans
	coll.SetLiveSink(func(e obs.Event) {
		// Attempt spans are rare and newsworthy (the resilience ladder in
		// action); everything else is per-iteration noise unless the
		// client opted into the firehose.
		if streamAll || e.Kind == obs.KindAttempt {
			ev := e
			j.Publish(Event{Type: "span", Span: &ev})
		}
	})

	// Every rank reports every iteration; publish each once.
	var pmu sync.Mutex
	seen := -1
	progress := func(iter int, resid float64) {
		pmu.Lock()
		fresh := iter > seen
		if fresh {
			seen = iter
		}
		pmu.Unlock()
		if fresh {
			j.Publish(Event{Type: "residual", Iter: iter, Residual: resid})
		}
	}

	opts := core.SolveOptions{
		Ctx:       ctx,
		Collector: coll,
		Progress:  progress,
		Restore:   j.Restore,
	}
	ckFile, scFile := "", ""
	if s.ckptDir != "" && j.Spec.CheckpointEvery > 0 {
		ckFile, scFile = s.ckptPath(j.ID)
		if data, err := json.Marshal(&persistedSpec{Tenant: j.Tenant, Spec: j.Spec}); err == nil {
			_ = os.WriteFile(scFile, data, 0o644)
		}
		opts.CheckpointEvery = j.Spec.CheckpointEvery
		opts.CheckpointPath = ckFile
	}

	res, err := sess.SolveWith(nil, opts)
	if err != nil {
		j.Fail(err)
		return
	}
	sum := summarize(resultView{
		Iterations:     res.Iterations,
		Restarts:       res.Restarts,
		Converged:      res.Converged,
		Residual:       res.Residual,
		SetupTime:      res.SetupTime,
		SolveTime:      res.SolveTime,
		Wall:           res.Wall,
		History:        res.History,
		TrueRelRes:     res.TrueRelRes,
		X:              res.X,
		Err:            res.Err,
		ErrRank:        res.ErrRank,
		PhaseBreakdown: res.PhaseBreakdown,
		Recovery:       res.Recovery,
	})
	if res.Recovery != nil {
		for _, st := range res.Recovery.Steps {
			ev := Event{Type: "recovery", Stage: st.Stage, Attempt: st.Attempt,
				Recovered: st.Converged, Iter: st.Iterations}
			if st.Err != nil {
				ev.Error = st.Err.Error()
			}
			j.Publish(ev)
		}
	}
	j.Finish(sum)
	// The job is terminal: its durable state has served its purpose.
	if ckFile != "" {
		_ = os.Remove(ckFile)
		_ = os.Remove(scFile)
	}
}

// Handler returns the HTTP API:
//
//	POST   /v1/jobs          submit (X-Tenant header; 202, 400, 429)
//	GET    /v1/jobs/{id}        status + result
//	GET    /v1/jobs/{id}/events SSE event stream (replay + live)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /healthz             liveness + pool stats
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	var spec Spec
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	j, err := s.Submit(tenant, &spec)
	if err != nil {
		var full *ErrQueueFull
		switch {
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfter))
			httpError(w, http.StatusTooManyRequests, err.Error())
		case err == ErrDraining:
			w.Header().Set("Retry-After", "30")
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"id": j.ID, "state": j.State()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{
		"id":     j.ID,
		"tenant": j.Tenant,
		"state":  j.State(),
		"result": j.Result(),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !j.Cancel() {
		httpError(w, http.StatusConflict, "job already finished")
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	pending, active := s.sched.Stats()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"ok": true, "pending": pending, "active": active})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
