// Package arms implements the Algebraic Recursive Multilevel Solver of
// Saad & Suchomel that the paper's Schur 2 preconditioner uses as its
// approximate subdomain solver (§2). The construction starts from
// group-independent sets: groups of unknowns with no coupling between
// different groups (Fig. 2 of the paper). Ordering the group unknowns
// first makes the leading block B exactly block-diagonal (one small dense
// block per group), so the reduction to the Schur complement of the
// remaining "local interface" unknowns is cheap and can be repeated
// recursively.
package arms

import "parapre/internal/sparse"

// GroupIndependentSet partitions the vertices of the (structurally
// symmetric) sparsity graph of a into groups with no edges between
// different groups, plus a separator. It returns group[v] = id ≥ 0 for
// grouped vertices and −1 for separator vertices, along with the number
// of groups. maxGroup caps the group size (≥ 1).
//
// Greedy single pass: an unassigned vertex joins the unique neighboring
// group if it has one (and the group has room), becomes a separator if it
// neighbors two different groups, and otherwise seeds a new group. The
// no-cross-edges invariant holds by induction: both endpoints of an edge
// see each other's assignment when processed.
func GroupIndependentSet(a *sparse.CSR, maxGroup int) (group []int, ngroups int) {
	n := a.Rows
	if maxGroup < 1 {
		maxGroup = 1
	}
	group = make([]int, n)
	for i := range group {
		group[i] = -2 // unassigned
	}
	size := []int{}
	for v := 0; v < n; v++ {
		if group[v] != -2 {
			continue
		}
		// Inspect assigned neighbors.
		gFound := -1
		conflict := false
		cols, _ := a.Row(v)
		for _, w := range cols {
			if w == v || w >= n {
				continue
			}
			g := group[w]
			if g < 0 {
				continue
			}
			if gFound == -1 {
				gFound = g
			} else if gFound != g {
				conflict = true
				break
			}
		}
		switch {
		case conflict:
			group[v] = -1
		case gFound >= 0 && size[gFound] < maxGroup:
			group[v] = gFound
			size[gFound]++
		case gFound >= 0:
			// Unique neighboring group, but full: separator (a fresh
			// group here would create a cross-group edge).
			group[v] = -1
		default:
			group[v] = len(size)
			size = append(size, 1)
		}
	}
	return group, len(size)
}

// IndSetPerm builds the ARMS level permutation from a group assignment:
// grouped vertices first (ordered by group id, so B is block diagonal
// with contiguous blocks), separator vertices last. It returns the
// permutation (new→old), the size of the grouped part, and the contiguous
// extent [start, end) of each group in the new ordering.
func IndSetPerm(group []int, ngroups int) (perm sparse.Perm, nB int, blocks [][2]int) {
	n := len(group)
	perm = make(sparse.Perm, 0, n)
	blocks = make([][2]int, ngroups)
	for g := 0; g < ngroups; g++ {
		start := len(perm)
		for v := 0; v < n; v++ {
			if group[v] == g {
				perm = append(perm, v)
			}
		}
		blocks[g] = [2]int{start, len(perm)}
	}
	nB = len(perm)
	for v := 0; v < n; v++ {
		if group[v] < 0 {
			perm = append(perm, v)
		}
	}
	return perm, nB, blocks
}
