package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives. A finding that is intentional is silenced in
// source with
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the flagged line or the line directly above it. Directives are
// tracked: every suppression remembers whether it actually suppressed
// anything, so the driver's audit can report stale ignores — directives
// whose finding has since been fixed, which would otherwise silently
// disable the analyzer on whatever code drifts onto that line next.

// IgnoreEntry is one parsed //lint:ignore directive.
type IgnoreEntry struct {
	Pos   token.Position
	Names []string        // analyzers it names
	used  map[string]bool // which of Names suppressed at least one diagnostic
}

// ignoreKey addresses the suppression index: one analyzer on one line.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// Ignores is the suppression index of a set of packages.
type Ignores struct {
	entries []*IgnoreEntry
	byKey   map[ignoreKey]*IgnoreEntry
}

// CollectIgnores scans the packages' comments for //lint:ignore
// directives. known names the acceptable analyzers; malformed directives
// (no reason, unknown analyzer) are returned as diagnostics so they
// cannot silently rot.
func CollectIgnores(pkgs []*Package, known map[string]bool) (*Ignores, []Diagnostic) {
	ig := &Ignores{byKey: map[ignoreKey]*IgnoreEntry{}}
	var malformed []Diagnostic
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed ignore: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
						})
						continue
					}
					names := strings.Split(fields[0], ",")
					bad := false
					for _, name := range names {
						if !known[name] {
							malformed = append(malformed, Diagnostic{
								Analyzer: "lint",
								Pos:      pos,
								Message:  fmt.Sprintf("ignore names unknown analyzer %q", name),
							})
							bad = true
						}
					}
					if bad {
						continue
					}
					e := &IgnoreEntry{Pos: pos, Names: names, used: map[string]bool{}}
					ig.entries = append(ig.entries, e)
					for _, name := range names {
						ig.byKey[ignoreKey{pos.Filename, pos.Line, name}] = e
						ig.byKey[ignoreKey{pos.Filename, pos.Line + 1, name}] = e
					}
				}
			}
		}
	}
	return ig, malformed
}

// Suppress reports whether d is covered by a directive, marking the
// directive used.
func (ig *Ignores) Suppress(d Diagnostic) bool {
	e, ok := ig.byKey[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
	if !ok {
		return false
	}
	e.used[d.Analyzer] = true
	return true
}

// Filter drops the suppressed diagnostics, marking their directives used.
func (ig *Ignores) Filter(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if !ig.Suppress(d) {
			out = append(out, d)
		}
	}
	return out
}

// Unused reports the stale directives: every (directive, analyzer) pair
// where the analyzer ran — per the ran predicate — over the directive's
// file but suppressed nothing. inScope restricts the audit to files the
// run actually analyzed (a partial lint must not call dependency-package
// ignores stale).
func (ig *Ignores) Unused(ran func(analyzer string) bool, inScope func(file string) bool) []Diagnostic {
	var out []Diagnostic
	for _, e := range ig.entries {
		if inScope != nil && !inScope(e.Pos.Filename) {
			continue
		}
		for _, name := range e.Names {
			if !ran(name) || e.used[name] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "unusedignore",
				Pos:      e.Pos,
				Message:  fmt.Sprintf("stale //lint:ignore %s: it suppresses nothing; delete it", name),
			})
		}
	}
	return out
}
