package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Chrome trace-event exporter. The output loads directly into
// chrome://tracing or https://ui.perfetto.dev: one "process" per traced
// solve, one "thread" per simulated rank, and one complete ("X") event
// per recorded span with the timestamp and duration taken from the
// VIRTUAL clock (microseconds of modeled machine time). The wall-clock
// interval of each span travels in args.wall_us so both clocks stay
// inspectable side by side.
//
// The writer emits events in (pid, rank, sequence) order with a fixed
// field order and fixed float formatting, so a deterministic run
// produces a byte-identical file — the golden-trace tests depend on it.

// TraceEntry is one traced solve in a multi-solve trace file. PID
// becomes the Chrome process id; Name labels it in the UI.
type TraceEntry struct {
	Name      string
	PID       int
	Collector *Collector
}

// TraceOptions tunes the export.
type TraceOptions struct {
	// OmitWall drops the wall-clock args from every event, leaving only
	// virtual-clock fields — the deterministic subset the golden tests
	// compare byte for byte.
	OmitWall bool
}

// errWriter accumulates the first write error so the emit loop stays
// linear instead of threading an error through every line.
type errWriter struct {
	w   *bufio.Writer
	err error
}

func (ew *errWriter) writeString(s string) {
	if ew.err == nil {
		_, ew.err = ew.w.WriteString(s)
	}
}

// WriteChromeTrace serializes the entries as one Chrome trace-event JSON
// document.
func WriteChromeTrace(w io.Writer, entries []TraceEntry, opts TraceOptions) error {
	ew := &errWriter{w: bufio.NewWriter(w)}
	ew.writeString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			ew.writeString(",\n")
		}
		first = false
		ew.writeString(line)
	}
	for _, entry := range entries {
		if !entry.Collector.Enabled() {
			continue
		}
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			entry.PID, strconv.Quote(entry.Name)))
		entry.Collector.mu.Lock()
		recs := entry.Collector.rankList()
		entry.Collector.mu.Unlock()
		for _, rec := range recs {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"rank %d"}}`,
				entry.PID, rec.rank, rec.rank))
			for _, e := range rec.events {
				emit(chromeEvent(entry.PID, e, opts))
			}
		}
	}
	ew.writeString("\n],\"displayTimeUnit\":\"ms\"}\n")
	if ew.err != nil {
		return ew.err
	}
	return ew.w.Flush()
}

// WriteChromeTraceFile writes the trace to path.
func WriteChromeTraceFile(path string, entries []TraceEntry, opts TraceOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, entries, opts); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// chromeEvent renders one complete event with a fixed field order and
// fixed-precision timestamps (microseconds, 3 decimals = nanosecond
// resolution), so equal spans always render to equal bytes.
func chromeEvent(pid int, e Event, opts TraceOptions) string {
	name := e.Kind
	if e.Name != "" {
		name = e.Kind + ":" + e.Name
	}
	us := func(sec float64) string { return strconv.FormatFloat(sec*1e6, 'f', 3, 64) }
	line := fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"cat":%s,"ts":%s,"dur":%s,"args":{"seq":%d`,
		pid, e.Rank, strconv.Quote(name), strconv.Quote(e.Kind), us(e.VStart), us(e.VEnd-e.VStart), e.Seq)
	if e.Peer >= 0 {
		line += fmt.Sprintf(`,"peer":%d,"tag":%d`, e.Peer, e.Tag)
	}
	if e.Bytes > 0 {
		line += fmt.Sprintf(`,"bytes":%d`, e.Bytes)
	}
	if !opts.OmitWall {
		line += fmt.Sprintf(`,"wall_us":%s,"wall_dur_us":%s`,
			strconv.FormatFloat(float64(e.WStart)/1e3, 'f', 3, 64),
			strconv.FormatFloat(float64(e.WEnd-e.WStart)/1e3, 'f', 3, 64))
	}
	return line + "}}"
}
