//go:build !paranoid

// The strict exchange tests inject NaN payloads, which the paranoid
// build's finite-value assertions would turn into panics before the
// typed-error paths under test can run.
package schur

import (
	"errors"
	"math"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/par"
)

// buildOps constructs one implicit interface operator per rank plus the
// per-rank interface vectors filled from a deterministic pattern.
func buildOps(t *testing.T, m, p int, seed int64) ([]*Iface, [][]float64) {
	t.Helper()
	systems, _, _ := buildSystems(t, m, p, seed)
	ops := make([]*Iface, p)
	xs := make([][]float64, p)
	for r, s := range systems {
		op, err := NewImplicit(s, exactBSolve(t, s))
		if err != nil {
			t.Fatalf("rank %d: NewImplicit: %v", r, err)
		}
		ops[r] = op
		x := make([]float64, op.N())
		for i := range x {
			x[i] = float64((r+1)*(i+3)%11) - 5
		}
		xs[r] = x
	}
	return ops, xs
}

// Steady-state Exchange and MatVec must allocate nothing on the schur
// side: the per-neighbor staging buffers are pooled, so the only
// allocations left per round are the transport's own payload copies
// (dist.Comm.Send copies every message — one object per message sent in
// the whole world, observed globally because allocation counters are
// process-wide).
func TestExchangeSteadyStateAllocs(t *testing.T) {
	const p = 2
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	ops, xs := buildOps(t, 9, p, 1)
	msgs := 0
	for _, op := range ops {
		for _, idx := range op.sendIdx {
			if len(idx) > 0 {
				msgs++
			}
		}
	}
	if msgs == 0 {
		t.Fatal("test partition produced no neighbor traffic")
	}
	got := make([]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		r := c.Rank()
		y := make([]float64, ops[r].N())
		// Both ranks run AllocsPerRun with the same run count, so the
		// collective exchanges stay paired across the whole measurement.
		got[r] = testing.AllocsPerRun(10, func() {
			if err := ops[r].MatVec(c, y, xs[r]); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		})
	})
	for r, g := range got {
		if g > float64(msgs) {
			t.Errorf("rank %d: %v allocations per MatVec round, want at most the %d transport copies",
				r, g, msgs)
		}
	}
}

// A NaN in a neighbor's interface contribution must surface as a typed
// *ExchangeError naming the link — not a panic, not a silent wrong
// answer — and MatVec must leave the output untouched.
func TestExchangeDetectsNonFinitePayload(t *testing.T) {
	const p = 2
	ops, xs := buildOps(t, 9, p, 1)
	for i := range xs[0] {
		xs[0][i] = math.NaN()
	}
	errs := make([]error, p)
	sentinels := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		r := c.Rank()
		y := make([]float64, ops[r].N())
		const sentinel = -12345
		for i := range y {
			y[i] = sentinel
		}
		errs[r] = ops[r].MatVec(c, y, xs[r])
		sentinels[r] = y
	})
	if errs[0] != nil {
		t.Errorf("rank 0 received clean data but errored: %v", errs[0])
	}
	var xe *ExchangeError
	if !errors.As(errs[1], &xe) {
		t.Fatalf("rank 1 must flag the NaN payload, got %v", errs[1])
	}
	if xe.Rank != 1 || xe.Peer != 0 || xe.Reason != "non-finite payload" {
		t.Errorf("fields wrong: %+v", xe)
	}
	for i, v := range sentinels[1] {
		if v != -12345 {
			t.Errorf("rank 1 output modified on error at %d: %g", i, v)
			break
		}
	}
}

// Detecting corruption must not leave undelivered messages behind: a
// clean exchange right after a poisoned one must pair correctly.
func TestExchangeDrainsAllNeighborsOnFailure(t *testing.T) {
	const p = 4
	ops, xs := buildOps(t, 9, p, 1)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		r := c.Rank()
		poisoned := make([]float64, ops[r].N())
		for i := range poisoned {
			poisoned[i] = math.NaN()
		}
		_ = ops[r].Exchange(c, poisoned) // every rank poisons round 1
		if err := ops[r].Exchange(c, xs[r]); err != nil {
			t.Errorf("rank %d: clean exchange after a poisoned one failed: %v", r, err)
		}
	})
}
