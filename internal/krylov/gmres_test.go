package krylov

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

func randSystem(rng *rand.Rand, n int, density float64, unsym bool) (*sparse.CSR, []float64, []float64) {
	coo := sparse.NewCOO(n, n, n*8)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 10+rng.Float64())
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < density {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				if !unsym {
					coo.Add(j, i, v)
				}
			}
		}
	}
	a := coo.ToCSR()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	return a, a.MulVec(xTrue), xTrue
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestGMRESUnpreconditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, unsym := range []bool{false, true} {
		a, b, xTrue := randSystem(rng, 60, 0.1, unsym)
		x := make([]float64, 60)
		res := SolveCSR(a, nil, b, x, Options{Restart: 30, MaxIters: 500, Tol: 1e-10})
		if !res.Converged {
			t.Fatalf("unsym=%v: did not converge: %+v", unsym, res)
		}
		if d := maxAbsDiff(x, xTrue); d > 1e-7 {
			t.Fatalf("unsym=%v: solution error %v", unsym, d)
		}
		if res.Iterations <= 0 || res.Initial <= 0 {
			t.Fatalf("bogus result fields: %+v", res)
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a, _, _ := randSystem(rand.New(rand.NewSource(2)), 10, 0.2, false)
	x := make([]float64, 10)
	res := SolveCSR(a, nil, make([]float64, 10), x, DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS: %+v", res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x moved for zero RHS")
		}
	}
}

func TestGMRESWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, xTrue := randSystem(rng, 40, 0.15, false)
	x := append([]float64(nil), xTrue...)
	res := SolveCSR(a, nil, b, x, DefaultOptions())
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("exact initial guess should converge instantly: %+v", res)
	}
}

func TestGMRESMaxItersRespected(t *testing.T) {
	// An ill-conditioned system with a tiny iteration cap must stop at
	// the cap and report non-convergence.
	n := 200
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	a := coo.ToCSR()
	b := make([]float64, n)
	b[0] = 1
	x := make([]float64, n)
	res := SolveCSR(a, nil, b, x, Options{Restart: 10, MaxIters: 7, Tol: 1e-14})
	if res.Converged {
		t.Fatal("unexpected convergence")
	}
	if res.Iterations > 7 {
		t.Fatalf("performed %d iterations, cap 7", res.Iterations)
	}
}

func TestGMRESWithILUTPreconditioner(t *testing.T) {
	// ILUT preconditioning must cut the iteration count substantially on
	// a 2D Poisson matrix.
	g := grid.UnitSquareTri(17)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	n := a.Rows

	solve := func(pr Prec) Result {
		x := make([]float64, n)
		return SolveCSR(a, pr, b, x, Options{Restart: 20, MaxIters: 500, Tol: 1e-8})
	}
	plain := solve(nil)
	f, err := ilu.ILUT(a, ilu.DefaultILUT())
	if err != nil {
		t.Fatal(err)
	}
	prec := solve(func(z, r []float64) { f.Solve(z, r) })
	if !plain.Converged || !prec.Converged {
		t.Fatalf("convergence failure: plain %+v prec %+v", plain, prec)
	}
	if prec.Iterations*3 > plain.Iterations {
		t.Fatalf("ILUT did not help: %d vs %d iterations", prec.Iterations, plain.Iterations)
	}
}

func TestFGMRESWithVariablePreconditioner(t *testing.T) {
	// Inner GMRES as preconditioner: only the flexible variant is
	// guaranteed to handle a preconditioner that varies per application.
	rng := rand.New(rand.NewSource(4))
	a, b, xTrue := randSystem(rng, 80, 0.08, true)
	inner := func(z, r []float64) {
		for i := range z {
			z[i] = 0
		}
		SolveCSR(a, nil, r, z, Options{Restart: 5, MaxIters: 5, Tol: 1e-2})
	}
	x := make([]float64, 80)
	res := GMRES(80, func(y, xx []float64) { a.MulVecTo(y, xx) }, inner, sparse.Dot, b, x,
		Options{Restart: 20, MaxIters: 200, Tol: 1e-10, Flexible: true})
	if !res.Converged {
		t.Fatalf("FGMRES did not converge: %+v", res)
	}
	if d := maxAbsDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("solution error %v", d)
	}
	// The variable preconditioner should make it much faster than plain.
	plainX := make([]float64, 80)
	plain := SolveCSR(a, nil, b, plainX, Options{Restart: 20, MaxIters: 200, Tol: 1e-10})
	if plain.Converged && res.Iterations > plain.Iterations {
		t.Fatalf("FGMRES+inner (%d) slower than plain (%d)", res.Iterations, plain.Iterations)
	}
}

func TestGMRESSmallRestartStillConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, b, xTrue := randSystem(rng, 50, 0.1, false)
	x := make([]float64, 50)
	res := SolveCSR(a, nil, b, x, Options{Restart: 3, MaxIters: 2000, Tol: 1e-9})
	if !res.Converged {
		t.Fatalf("GMRES(3) failed: %+v", res)
	}
	if d := maxAbsDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("solution error %v", d)
	}
}

func TestCGMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// SPD via A = Mᵀ+M construction (diag dominant symmetric).
	a, b, xTrue := randSystem(rng, 70, 0.05, false)
	x := make([]float64, 70)
	res := CG(70, func(y, xx []float64) { a.MulVecTo(y, xx) }, nil, sparse.Dot, b, x,
		Options{MaxIters: 500, Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("CG failed: %+v", res)
	}
	if d := maxAbsDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("solution error %v", d)
	}
}

func TestCGPreconditioned(t *testing.T) {
	g := grid.UnitSquareTri(15)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	n := a.Rows
	f, err := ilu.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pr Prec) Result {
		x := make([]float64, n)
		return CG(n, func(y, xx []float64) { a.MulVecTo(y, xx) }, pr, sparse.Dot, b, x,
			Options{MaxIters: 500, Tol: 1e-8})
	}
	plain := run(nil)
	prec := run(func(z, r []float64) { f.Solve(z, r) })
	if !plain.Converged || !prec.Converged {
		t.Fatalf("CG convergence failure: %+v / %+v", plain, prec)
	}
	if prec.Iterations >= plain.Iterations {
		t.Fatalf("IC-style preconditioning did not reduce iterations: %d vs %d", prec.Iterations, plain.Iterations)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -1)
	a := coo.ToCSR()
	x := make([]float64, 2)
	res := CG(2, func(y, xx []float64) { a.MulVecTo(y, xx) }, nil, sparse.Dot,
		[]float64{0, 1}, x, Options{MaxIters: 10, Tol: 1e-10})
	if !res.Breakdown {
		t.Fatalf("expected breakdown on indefinite matrix: %+v", res)
	}
}

// --- distributed solver tests ---

func testMachine() *dist.Machine {
	return &dist.Machine{Name: "test", FlopRate: 1e9, Latency: 1e-6, ByteTime: 1e-9, Load: 1}
}

func buildDistributedPoisson(t *testing.T, m, p int) ([]*dsys.System, *sparse.CSR, []float64) {
	t.Helper()
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return x[0] * math.Exp(x[1]) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			c := g.Coord(n)
			bc[n] = c[0] * math.Exp(c[1])
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, 3)
	if err != nil {
		panic(err)
	}
	return dsys.Distribute(a, b, part, p), a, b
}

func TestDistributedGMRESMatchesGlobalSolve(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		systems, a, b := buildDistributedPoisson(t, 13, p)
		// Global reference solution.
		want := make([]float64, a.Rows)
		ref := SolveCSR(a, nil, b, want, Options{Restart: 30, MaxIters: 3000, Tol: 1e-10})
		if !ref.Converged {
			t.Fatal("reference solve failed")
		}
		xl := make([][]float64, p)
		iters := make([]int, p)
		dist.Run(p, testMachine(), func(c *dist.Comm) {
			s := systems[c.Rank()]
			x := make([]float64, s.NLoc())
			res := Distributed(c, s, nil, s.B, x, Options{Restart: 30, MaxIters: 3000, Tol: 1e-10})
			if !res.Converged {
				t.Errorf("p=%d rank %d: no convergence: %+v", p, c.Rank(), res)
			}
			xl[c.Rank()] = x
			iters[c.Rank()] = res.Iterations
		})
		got := dsys.Gather(systems, xl)
		if d := maxAbsDiff(got, want); d > 1e-6 {
			t.Fatalf("p=%d: distributed solution differs by %v", p, d)
		}
		for r := 1; r < p; r++ {
			if iters[r] != iters[0] {
				t.Fatalf("p=%d: ranks disagree on iteration count: %v", p, iters)
			}
		}
	}
}

func TestDistributedGMRESDeterministic(t *testing.T) {
	const p = 4
	systems, _, _ := buildDistributedPoisson(t, 11, p)
	run := func() ([]float64, int) {
		xl := make([][]float64, p)
		var iters int
		dist.Run(p, testMachine(), func(c *dist.Comm) {
			s := systems[c.Rank()]
			x := make([]float64, s.NLoc())
			res := Distributed(c, s, nil, s.B, x, Options{Restart: 20, MaxIters: 2000, Tol: 1e-8})
			xl[c.Rank()] = x
			if c.Rank() == 0 {
				iters = res.Iterations
			}
		})
		return dsys.Gather(systems, xl), iters
	}
	x1, it1 := run()
	x2, it2 := run()
	if it1 != it2 {
		t.Fatalf("iteration counts differ across runs: %d vs %d", it1, it2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solutions not bitwise identical at %d (collectives not rank-ordered?)", i)
		}
	}
}

func TestDistributedCGMatchesGMRESOnSPD(t *testing.T) {
	const p = 3
	systems, a, b := buildDistributedPoisson(t, 11, p)
	want := make([]float64, a.Rows)
	if res := SolveCSR(a, nil, b, want, Options{Restart: 40, MaxIters: 4000, Tol: 1e-10}); !res.Converged {
		t.Fatal("reference failed")
	}
	xl := make([][]float64, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		res := DistributedCG(c, s, nil, s.B, x, Options{MaxIters: 4000, Tol: 1e-10})
		if !res.Converged {
			t.Errorf("rank %d CG failed: %+v", c.Rank(), res)
		}
		xl[c.Rank()] = x
	})
	got := dsys.Gather(systems, xl)
	if d := maxAbsDiff(got, want); d > 1e-6 {
		t.Fatalf("CG solution differs by %v", d)
	}
}

func TestComputeHookCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, _ := randSystem(rng, 30, 0.2, false)
	var charged float64
	x := make([]float64, 30)
	SolveCSR(a, nil, b, x, Options{
		Restart: 10, MaxIters: 50, Tol: 1e-8,
		Compute: func(f float64) { charged += f },
	})
	if charged <= 0 {
		t.Fatal("no flops charged through Compute hook")
	}
}

func TestResidualHistoryRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, b, _ := randSystem(rng, 40, 0.1, false)
	x := make([]float64, 40)
	res := SolveCSR(a, nil, b, x, Options{Restart: 20, MaxIters: 200, Tol: 1e-8, RecordHistory: true})
	if !res.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
	if len(res.History) < res.Iterations {
		t.Fatalf("history length %d < iterations %d", len(res.History), res.Iterations)
	}
	if res.History[0] != res.Initial {
		t.Fatalf("History[0] = %v, want initial %v", res.History[0], res.Initial)
	}
	// GMRES residual estimates are non-increasing within a restart cycle;
	// with restart=20 and fast convergence the whole history should be
	// non-increasing.
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]*(1+1e-12) {
			t.Fatalf("history not non-increasing at %d: %v > %v", i, res.History[i], res.History[i-1])
		}
	}
	last := res.History[len(res.History)-1]
	if last > res.Initial*1e-8 {
		t.Fatalf("final history entry %v did not reach tolerance", last)
	}
}

func TestCGHistoryRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b, _ := randSystem(rng, 40, 0.08, false)
	x := make([]float64, 40)
	res := CG(40, func(y, xx []float64) { a.MulVecTo(y, xx) }, nil, sparse.Dot, b, x,
		Options{MaxIters: 200, Tol: 1e-10, RecordHistory: true})
	if !res.Converged {
		t.Fatal("CG failed")
	}
	if len(res.History) != res.Iterations+1 {
		t.Fatalf("history length %d, want %d", len(res.History), res.Iterations+1)
	}
}

func TestNoHistoryByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a, b, _ := randSystem(rng, 20, 0.2, false)
	x := make([]float64, 20)
	res := SolveCSR(a, nil, b, x, DefaultOptions())
	if res.History != nil {
		t.Fatal("history recorded without RecordHistory")
	}
}
