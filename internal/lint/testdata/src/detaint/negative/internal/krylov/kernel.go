// The kernel side of the detaint negative fixture: deterministic
// cross-package float flow, non-float nondeterminism, and a discarded
// tainted result. The analyzer must stay silent on all of it.
package krylov

import helper "parapre/internal/lint/testdata/src/detaint/negative/helper"

// Norm consumes a deterministic helper: no finding.
func Norm(xs []float64) float64 {
	return helper.Sum(xs)
}

// Log consumes nondeterministic non-float data: out of scope.
func Log() int64 {
	return helper.Stamp()
}

// Warm calls a tainted helper but throws the result away: no float
// state enters the kernel.
func Warm() {
	helper.Bench()
}
