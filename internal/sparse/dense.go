package sparse

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. It backs the small systems in this
// repository: coarse-grid corrections, Hessenberg least-squares inside
// GMRES (via the krylov package), and test oracles for the sparse kernels.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed r×c dense matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns entry (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns entry (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Add adds v to entry (i, j).
func (d *Dense) Add(i, j int, v float64) { d.Data[i*d.Cols+j] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{Rows: d.Rows, Cols: d.Cols, Data: append([]float64(nil), d.Data...)}
}

// MulVec returns y = D·x.
func (d *Dense) MulVec(x []float64) []float64 {
	y := make([]float64, d.Rows)
	d.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = D·x without allocating.
func (d *Dense) MulVecTo(y, x []float64) {
	if len(y) < d.Rows || len(x) < d.Cols {
		panic(fmt.Sprintf("sparse: Dense.MulVecTo on %d×%d matrix needs len(y) ≥ %d, len(x) ≥ %d; got %d, %d",
			d.Rows, d.Cols, d.Rows, d.Cols, len(y), len(x)))
	}
	for i := 0; i < d.Rows; i++ {
		row := d.Data[i*d.Cols : (i+1)*d.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// LU is an LU factorization with partial pivoting of a square dense matrix.
type LU struct {
	n    int
	lu   []float64 // packed L (unit diagonal, below) and U (on/above)
	piv  []int
	sign int
}

// Factor computes the LU factorization of square d with partial pivoting.
// It returns an error when a pivot underflows, i.e. the matrix is singular
// to working precision.
func (d *Dense) Factor() (*LU, error) {
	if d.Rows != d.Cols {
		return nil, fmt.Errorf("sparse: LU of non-square %d×%d matrix", d.Rows, d.Cols)
	}
	n := d.Rows
	f := &LU{n: n, lu: append([]float64(nil), d.Data...), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, maxAbs := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(f.lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("sparse: singular matrix at pivot %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[k*n+j], f.lu[p*n+j] = f.lu[p*n+j], f.lu[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= m * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b in place of a fresh slice, where A is the factored
// matrix.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.n)
	f.SolveTo(x, b)
	return x
}

// SolveTo solves A·x = b into x without allocating. x and b must not
// alias (the pivot gather reads b while x is written).
func (f *LU) SolveTo(x, b []float64) {
	if len(b) != f.n {
		panic(fmt.Sprintf("sparse: LU.Solve length %d, want %d", len(b), f.n))
	}
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Backward substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu[i*n+i]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}
