//go:build !paranoid

// Chaos harness: the full solver stack is driven under every built-in
// fault plan with fixed seeds, asserting the resilience contract — every
// run either converges or ends in a typed error, within the watchdog
// budget, with no hang and no escaped panic. (NaN-injecting plans are
// incompatible with the paranoid build tag, whose finite-value assertions
// panic before the typed-error machinery can classify the fault.)
package dist_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/precond"
)

func TestChaosMatrixConvergeOrTypedError(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(17)

	for _, plan := range dist.FaultPlanNames() {
		for _, seed := range []int64{1, 2, 3} {
			for _, kind := range []precond.Kind{precond.KindBlock2, precond.KindSchur1} {
				name := fmt.Sprintf("%s/seed%d/%s", plan, seed, kind)
				t.Run(name, func(t *testing.T) {
					fp, err := dist.NamedFaultPlan(plan, seed)
					if err != nil {
						t.Fatal(err)
					}
					cfg := core.DefaultConfig(4, kind)
					cfg.Faults = fp
					cfg.Watchdog = 2 * time.Second
					cfg.Resilient = true
					res, err := core.Solve(prob, cfg)
					if err != nil {
						// Runtime-level failures must be typed: a deadlock,
						// crash, or communication error satisfies the
						// contract; anything else (an escaped panic) is a
						// bug.
						var de *dist.DeadlockError
						var ce *dist.CrashError
						var pc *dist.PeerCrashedError
						var tm *dist.TagMismatchError
						if !errors.As(err, &de) && !errors.As(err, &ce) &&
							!errors.As(err, &pc) && !errors.As(err, &tm) {
							t.Fatalf("untyped failure: %v", err)
						}
						return
					}
					if !res.Converged && res.Err == nil {
						t.Fatalf("did not converge and carries no typed error (iters %d)", res.Iterations)
					}
				})
			}
		}
	}
}

// A fault-free config must remain bit-identical whether or not the
// supervised runtime is active — the end-to-end version of the dist-level
// nil-plan guarantee.
func TestChaosNilPlanBitIdenticalThroughCore(t *testing.T) {
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(17)

	cfg := core.DefaultConfig(4, precond.KindBlock2)
	base, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Watchdog = 30 * time.Second // supervised runtime, no faults
	watched, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations != watched.Iterations {
		t.Errorf("iterations differ: %d vs %d", base.Iterations, watched.Iterations)
	}
	if base.SetupTime != watched.SetupTime || base.SolveTime != watched.SolveTime {
		t.Errorf("modeled times differ: %g/%g vs %g/%g",
			base.SetupTime, base.SolveTime, watched.SetupTime, watched.SolveTime)
	}
}

// Repeating one chaos configuration must reproduce the same outcome —
// fault injection is deterministic end to end.
func TestChaosDeterministicThroughCore(t *testing.T) {
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(17)

	run := func() (bool, int, float64) {
		fp, err := dist.NamedFaultPlan("corrupt", 7)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(4, precond.KindBlock2)
		cfg.Faults = fp
		cfg.Watchdog = 2 * time.Second
		res, err := core.Solve(prob, cfg)
		if err != nil {
			t.Fatalf("corrupt plan must not stall the runtime: %v", err)
		}
		return res.Converged, res.Iterations, res.SolveTime
	}
	c1, i1, t1 := run()
	c2, i2, t2 := run()
	if c1 != c2 || i1 != i2 || t1 != t2 {
		t.Errorf("chaos run not reproducible: (%v %d %g) vs (%v %d %g)", c1, i1, t1, c2, i2, t2)
	}
}
