// Command ippsbench regenerates the tables of Cai & Sosonkina,
// "A Numerical Study of Some Parallel Algebraic Preconditioners"
// (IPPS 2003). Each experiment id corresponds to one table of the paper's
// §5; see DESIGN.md for the index.
//
// Usage:
//
//	ippsbench -list
//	ippsbench -exp tc1-cluster
//	ippsbench -exp tc1-cluster -size 257 -procs 2,4,8,16,32
//	ippsbench -all -size 65
//	ippsbench -exp tc1-cluster -workers 8 -json
//	ippsbench -exp tc1-cluster -faults drop -faultseed 3
//
// -workers pins the shared-memory worker pool (default: GOMAXPROCS, or
// the PARAPRE_WORKERS environment variable); iteration counts and modeled
// times are identical at every setting. -json additionally writes all
// measurements — iteration counts, modeled time, and measured wall-clock
// time — to BENCH_<date>.json.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"parapre/internal/bench"
	"parapre/internal/dist"
	"parapre/internal/obs"
	"parapre/internal/par"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id(s) to run, comma separated (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		size    = flag.Int("size", 0, "override the grid resolution parameter (0 = experiment default)")
		procs   = flag.String("procs", "", "override the processor counts, comma separated (e.g. 2,4,8)")
		md      = flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
		jsonOut = flag.Bool("json", false, "also write results to BENCH_<date>.json")
		jsonTo  = flag.String("o", "", "JSON output path (implies -json; default BENCH_<date>.json)")
		compare = flag.String("compare", "", "compare modeled times against a committed BENCH_*.json baseline and fail on regressions")
		tol     = flag.Float64("tol", 0.10, "relative modeled-time regression tolerance for -compare")
		workers = flag.Int("workers", 0, "shared-memory worker count (0 = GOMAXPROCS / PARAPRE_WORKERS)")

		faults    = flag.String("faults", "", `chaos plan for every solve: "drop", "delay", "corrupt", "straggler" or "crash"`)
		faultSeed = flag.Int64("faultseed", 1, "chaos plan seed")
		resilient = flag.Bool("resilient", false, "run solves through the self-healing escalation ladder")

		trace   = flag.String("trace", "", "write a Chrome trace-event JSON covering every solve (one process per solve)")
		metrics = flag.String("metrics", "", "write a Prometheus-style text metrics snapshot covering every solve")
		phases  = flag.Bool("phases", false, "print the per-phase virtual-time breakdown under each table")
		pprofOn = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	if *pprofOn != "" {
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ippsbench: pprof:", err)
			}
		}()
	}

	if *list {
		fmt.Println("id            table")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.Experiments()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			toRun = append(toRun, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "ippsbench: specify -exp <id>, -all, or -list")
		os.Exit(2)
	}

	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fatal(err)
		}
		for i := range toRun {
			toRun[i].Ps = ps
		}
	}

	if *faults != "" {
		plan, err := dist.NamedFaultPlan(*faults, *faultSeed)
		if err != nil {
			fatal(err)
		}
		for i := range toRun {
			toRun[i].Faults = plan
		}
		fmt.Printf("chaos: plan %q seed %d — typed failures appear as table notes\n\n", *faults, *faultSeed)
	}
	if *resilient {
		for i := range toRun {
			toRun[i].Resilient = true
		}
	}

	// With any observability output requested, every solve gets its own
	// collector; the exports carry the solve label ("<id>/<precond>/P=<p>").
	var observed []labeledCollector
	if *trace != "" || *metrics != "" || *phases {
		for i := range toRun {
			toRun[i].Observe = func(label string) *obs.Collector {
				col := obs.NewCollector()
				observed = append(observed, labeledCollector{label: label, col: col})
				return col
			}
		}
	}

	var allTables []bench.Table
	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(*size)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if *md {
				t.WriteMarkdown(os.Stdout)
			} else {
				t.Write(os.Stdout)
			}
			if *phases {
				t.WritePhases(os.Stdout)
			}
		}
		allTables = append(allTables, tables...)
		fmt.Printf("[%s completed in %.1fs real time]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *trace != "" {
		entries := make([]obs.TraceEntry, len(observed))
		for i, lc := range observed {
			entries[i] = obs.TraceEntry{Name: lc.label, PID: i, Collector: lc.col}
		}
		if err := obs.WriteChromeTraceFile(*trace, entries, obs.TraceOptions{}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (%d solves; open in chrome://tracing or https://ui.perfetto.dev)\n", *trace, len(entries))
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		for _, lc := range observed {
			if err := lc.col.WriteMetrics(f, map[string]string{"solve": lc.label}); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d solves)\n", *metrics, len(observed))
	}

	if *jsonOut || *jsonTo != "" {
		date := time.Now().Format("2006-01-02")
		path := *jsonTo
		if path == "" {
			path = "BENCH_" + date + ".json"
		}
		if err := bench.NewReport(date, allTables).WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (workers=%d)\n", path, par.Workers())
	}

	if *compare != "" {
		base, err := bench.ReadReport(*compare)
		if err != nil {
			fatal(err)
		}
		cur := bench.NewReport("", allTables)
		regs := bench.CompareModelTimes(base, cur, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "ippsbench: %d modeled-time regression(s) vs %s (tol %.0f%%):\n",
				len(regs), *compare, *tol*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("modeled times within %.0f%% of %s\n", *tol*100, *compare)
	}
}

// labeledCollector pairs one solve's collector with its label for the
// post-run exports.
type labeledCollector struct {
	label string
	col   *obs.Collector
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("ippsbench: bad processor count %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ippsbench:", err)
	os.Exit(1)
}
