package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/krylov"
	"parapre/internal/precond"
)

func buildProblem(t *testing.T, name string, size int) *core.Problem {
	t.Helper()
	c, err := cases.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c.Build(size)
}

func TestSolveCtxCancelMidSolve(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := core.DefaultConfig(4, precond.KindBlock1)
	cfg.Ctx = ctx
	// Every rank reports progress; the cancel is idempotent. The stop vote
	// is collective, so all ranks leave at the same iteration boundary.
	cfg.Solver.Progress = func(it int, _ float64) {
		if it >= 3 {
			cancel()
		}
	}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, krylov.ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	if res.Converged {
		t.Fatal("canceled solve reported converged")
	}
	// Canceled at the boundary right after the signal: within one Krylov
	// iteration of the cancel point.
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want exactly 3 (cancel observed at the next boundary)", res.Iterations)
	}
}

func TestSolveCtxCanceledBeforeStart(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Ctx = ctx
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, krylov.ErrCanceled) || res.Iterations != 0 {
		t.Fatalf("pre-canceled solve: Err=%v Iterations=%d", res.Err, res.Iterations)
	}
}

// A live but never-canceled context installs the per-iteration stop vote;
// the solve must stay bit-identical — history, iteration count and modeled
// times — to one with no context at all.
func TestSolveCtxNeverCanceledBitIdentical(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	run := func(ctx context.Context) *core.Result {
		cfg := core.DefaultConfig(4, precond.KindSchur1)
		cfg.Ctx = ctx
		cfg.Solver.RecordHistory = true
		res, err := core.Solve(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nil)
	ctx, cancel := context.WithCancel(context.Background())
	polled := run(ctx)
	cancel()
	if ref.Iterations != polled.Iterations || ref.SolveTime != polled.SolveTime ||
		ref.SetupTime != polled.SetupTime {
		t.Fatalf("modeled results diverged: %d/%v/%v vs %d/%v/%v",
			ref.Iterations, ref.SetupTime, ref.SolveTime,
			polled.Iterations, polled.SetupTime, polled.SolveTime)
	}
	if len(ref.History) != len(polled.History) {
		t.Fatalf("history length %d vs %d", len(ref.History), len(polled.History))
	}
	for i := range ref.History {
		if ref.History[i] != polled.History[i] {
			t.Fatalf("history[%d]: %v vs %v", i, ref.History[i], polled.History[i])
		}
	}
}

func TestSessionSolveCtxCancel(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Ctx = ctx
	var fired atomic.Bool
	cfg.Solver.Progress = func(it int, _ float64) {
		if it >= 2 {
			fired.Store(true)
			cancel()
		}
	}
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("progress hook never reached the cancel point")
	}
	if !errors.Is(res.Err, krylov.ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	if res.Iterations != 2 {
		t.Errorf("Iterations = %d, want exactly 2", res.Iterations)
	}
}

// Cancellation must terminate the resilient escalation ladder: no fresh-
// restart retry, no fallback stage — one attempt, ended by the caller.
func TestResilientCancelDoesNotEscalate(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := core.DefaultConfig(4, precond.KindBlock1)
	cfg.Ctx = ctx
	cfg.Resilient = true
	cfg.Solver.Progress = func(it int, _ float64) {
		if it >= 2 {
			cancel()
		}
	}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Err, krylov.ErrCanceled) {
		t.Fatalf("Err = %v, want ErrCanceled", res.Err)
	}
	if res.Recovery == nil || len(res.Recovery.Steps) != 1 {
		t.Fatalf("recovery log %+v, want exactly one (canceled) attempt", res.Recovery)
	}
	if res.Recovery.Recovered {
		t.Error("canceled solve marked recovered")
	}
}
