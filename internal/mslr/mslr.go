// Package mslr implements a GeMSLR-style multilevel low-rank Schur
// preconditioner, the recursive extension of the paper's Schur 1 method.
//
// Each rank covers its subdomain with an L-level vertex-separator
// hierarchy built by nested graph bisection (internal/partition): every
// node reorders its rows as [interior₀ | interior₁ | separator], the
// interiors recurse, and the separator's Schur complement inverse is
// approximated as
//
//	S⁻¹ ≈ C̃⁻¹·(I + V·((I−H)⁻¹ − I)·Vᵀ)
//
// where C̃ is an ILUT factorization of the separator block C and the
// rank-k correction captures the dominant eigenspace of the Schur
// residual operator G = I − S·C̃⁻¹, probed matrix-free by a seeded
// Arnoldi pass (H = Vᵀ·G·V). At full rank the correction is exact:
// V(I−H)⁻¹Vᵀ = (S·C̃⁻¹)⁻¹ for square orthonormal V, so the approximation
// collapses to S⁻¹ regardless of the quality of C̃.
//
// Across ranks the preconditioner keeps the Schur 1 shape (Algorithm 2.1
// of the paper): the local B-solves are the hierarchy root solves, and
// the global interface system S·y = ĝ is solved by a few distributed
// GMRES iterations, preconditioned per rank by the same C̃⁻¹ + low-rank
// construction applied to the local interface block.
//
// Setup is purely local and deterministic: the bisection and the Arnoldi
// probes are seeded per node (children derive 2s+1 and 2s+2 from their
// parent's seed s), and every kernel is bit-reproducible under any
// par.SetWorkers value, so solves are bit-identical at any worker count.
package mslr

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/obs"
	"parapre/internal/schur"
	"parapre/internal/sparse"
)

// Options tunes the multilevel low-rank preconditioner.
type Options struct {
	// Levels is the depth of the separator hierarchy: 0 factors the
	// whole interior block with one ILUT (degenerating to Schur 1 with
	// a corrected interface solve), L splits interiors L times.
	Levels int
	// Rank is the maximum rank of each low-rank Schur correction. It is
	// clamped to the separator size; Rank equal to the interface size
	// makes the correction exact. 0 disables the corrections.
	Rank int
	// MinBlock stops the recursion: blocks with at most MinBlock rows
	// are factored directly. Clamped to at least 2.
	MinBlock int
	// ILUT configures every incomplete factorization in the hierarchy
	// (leaf interiors and separator blocks C̃).
	ILUT ilu.ILUTOptions
	// SchurIters and SchurTol bound the distributed GMRES on the global
	// interface system (level 0), exactly as in Schur 1.
	SchurIters int
	SchurTol   float64
	// Seed drives the nested bisection and the Arnoldi probing. Setup is
	// a pure function of (matrix, Options), so any fixed seed gives
	// bit-reproducible solves.
	Seed int64
}

// DefaultOptions mirrors the Schur 1 defaults with a moderate hierarchy:
// three levels, rank-16 corrections, and "a few" distributed interface
// iterations.
func DefaultOptions() Options {
	return Options{
		Levels:     3,
		Rank:       16,
		MinBlock:   32,
		ILUT:       ilu.DefaultILUT(),
		SchurIters: 5,
		SchurTol:   1e-2,
		Seed:       7,
	}
}

// normalized clamps the degenerate knob values.
func (o Options) normalized() Options {
	if o.Levels < 0 {
		o.Levels = 0
	}
	if o.Rank < 0 {
		o.Rank = 0
	}
	if o.MinBlock < 2 {
		o.MinBlock = 2
	}
	if o.SchurIters < 1 {
		o.SchurIters = 1
	}
	return o
}

// Precond is one rank's multilevel low-rank Schur preconditioner. Apply
// must be called collectively (the interface solve communicates), and the
// type satisfies precond.CommErrRecorder so interface-exchange failures
// inside Apply surface as typed, rank-attributed causes instead of
// panics.
type Precond struct {
	s    *dsys.System
	opts Options

	root   *tnode // separator hierarchy over the interior block B
	perm   []int  // hierarchy ordering: perm[i] = B row of position i
	xp, yp []float64

	fBlk  *sparse.CSR // F: interior × interface coupling
	eBlk  *sparse.CSR // E: interface × interior coupling
	cFact *ilu.LU  // C̃ of the local interface block
	lr    *lowRank // level-0 correction for the local interface block
	op    *schur.Iface

	bFlops float64 // modeled cost of one hierarchy root solve
	setup  float64

	// scratch (Apply is per-rank sequential; never shared)
	y, gp, fTmp, uTmp, corr []float64
	wsS                     *krylov.Workspace

	// commErr records the first interface-exchange failure observed
	// inside Apply's inner Schur solve (see precond.CommErrRecorder).
	commErr error
}

// New builds the MSLR preconditioner for this rank's subdomain.
func New(s *dsys.System, opts Options) (*Precond, error) {
	opts = opts.normalized()
	p := &Precond{
		s:    s,
		opts: opts,
		y:    make([]float64, s.NIface()),
		gp:   make([]float64, s.NIface()),
		corr: make([]float64, s.NIface()),
		fTmp: make([]float64, s.NInt),
		uTmp: make([]float64, s.NInt),
		wsS:  krylov.NewWorkspace(),
	}

	if s.NInt > 0 {
		root, perm, setupFlops, err := buildTree(s.BlockB(), opts, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("mslr: rank %d interior hierarchy: %w", s.Rank, err)
		}
		p.root, p.perm = root, perm
		p.setup += setupFlops
		p.xp = make([]float64, s.NInt)
		p.yp = make([]float64, s.NInt)
		p.bFlops = root.solveFlops
	}
	p.fBlk = s.BlockF()
	p.eBlk = s.BlockE()

	if nI := s.NIface(); nI > 0 {
		cBlk := s.BlockC()
		cFact, err := ilu.ILUT(cBlk, opts.ILUT)
		if err != nil {
			return nil, fmt.Errorf("mslr: rank %d interface block: %w", s.Rank, err)
		}
		p.cFact = cFact
		p.setup += 2 * float64(cFact.NNZ())

		// Level-0 correction: probe the purely local Schur residual
		// G·x = x − S_loc·C̃⁻¹·x with S_loc·w = C·w − E·B⁻¹·(F·w).
		fBuf := make([]float64, s.NInt)
		uBuf := make([]float64, s.NInt)
		tBuf := make([]float64, nI)
		sBuf := make([]float64, nI)
		gApply := func(dst, x []float64) {
			cFact.Solve(tBuf, x)
			p.fBlk.MulVecTo(fBuf, tBuf)
			p.bSolve(uBuf, fBuf)
			cBlk.MulVecTo(sBuf, tBuf)
			p.eBlk.MulVecAdd(sBuf, -1, uBuf)
			for i := range dst {
				dst[i] = x[i] - sBuf[i]
			}
		}
		lr, err := buildLowRank(nI, opts.Rank, gApply, newRNG(opts.Seed*31+11))
		if err != nil {
			return nil, fmt.Errorf("mslr: rank %d interface correction: %w", s.Rank, err)
		}
		p.lr = lr
		p.setup += lr.buildFlops(nI)
	}

	op, err := schur.NewImplicitOp(s, p.bSolve, p.bFlops)
	if err != nil {
		return nil, err
	}
	p.op = op
	return p, nil
}

// bSolve applies the hierarchy root solve out = B̃⁻¹·in through the
// separator ordering (purely local — no collectives).
func (p *Precond) bSolve(out, in []float64) {
	if p.root == nil {
		return
	}
	for i, o := range p.perm {
		p.xp[i] = in[o]
	}
	p.root.solve(p.yp, p.xp)
	for i, o := range p.perm {
		out[o] = p.yp[i]
	}
}

// Apply runs Algorithm 2.1 with the hierarchy as the subdomain solver:
//
//  1. ĝ = g − E·B̃⁻¹·f
//  2. solve S·y = ĝ by a few distributed GMRES iterations, each rank
//     preconditioned by its local C̃⁻¹ + low-rank correction
//  3. u = B̃⁻¹·(f − F·y)
//
// Must be called collectively.
func (p *Precond) Apply(c *dist.Comm, z, r []float64) {
	s := p.s
	nInt := s.NInt
	f := r[:nInt]
	g := r[nInt:]

	// Step 1: ĝ = g − E·B̃⁻¹·f.
	p.bSolve(p.uTmp, f)
	c.Compute(p.bFlops)
	copy(p.gp, g)
	if nInt > 0 {
		p.eBlk.MulVecSub(p.gp, p.uTmp)
		c.Compute(2 * float64(p.eBlk.NNZ()))
	}

	// Step 2: distributed GMRES on the global interface system.
	for i := range p.y {
		p.y[i] = 0
	}
	if s.NIface() > 0 {
		h := c.BeginSpan(obs.KindMSLRSchur, "MSLR")
		krylov.GMRES(s.NIface(),
			func(out, x []float64) {
				if err := p.op.MatVec(c, out, x); err != nil {
					if p.commErr == nil {
						p.commErr = err
					}
					poisonNaN(out)
				}
			},
			func(out, x []float64) {
				p.lr.correct(p.corr, x)
				p.cFact.Solve(out, p.corr)
				c.Compute(p.cFact.SolveFlops() + p.lr.applyFlops(len(x)))
			},
			func(a, b []float64) float64 { return p.op.Dot(c, a, b) },
			p.gp, p.y,
			krylov.Options{
				Restart:  p.opts.SchurIters,
				MaxIters: p.opts.SchurIters,
				Tol:      p.opts.SchurTol,
				Compute:  c.Compute,
				Work:     p.wsS,
			})
		c.EndSpan(h)
	}

	// Step 3: u = B̃⁻¹·(f − F·y).
	if nInt > 0 {
		copy(p.fTmp, f)
		p.fBlk.MulVecSub(p.fTmp, p.y)
		c.Compute(2 * float64(p.fBlk.NNZ()))
		p.bSolve(p.uTmp, p.fTmp)
		c.Compute(p.bFlops)
	}
	copy(z[:nInt], p.uTmp[:nInt])
	copy(z[nInt:], p.y)
}

// Name returns the preconditioner's benchmark label.
func (p *Precond) Name() string { return "MSLR" }

// SetupFlops estimates the construction cost: every factorization sweep
// in the hierarchy plus the Arnoldi probing passes.
func (p *Precond) SetupFlops() float64 {
	if p.setup <= 0 {
		return 1
	}
	return p.setup
}

// TakeCommErr returns and clears the first interface-exchange failure
// recorded during Apply (precond.CommErrRecorder).
func (p *Precond) TakeCommErr() error {
	err := p.commErr
	p.commErr = nil
	return err
}

// poisonNaN floods v with NaN so a lost exchange surfaces as a replicated
// breakdown instead of a silently wrong search direction.
func poisonNaN(v []float64) {
	for i := range v {
		v[i] = nan
	}
}
