// Command tracecheck validates a Chrome trace-event JSON file produced by
// solvepde/ippsbench -trace (or any other tool emitting the same format).
// It exits 0 when every event passes the schema checks of
// obs.ValidateChromeTrace and 1 with a diagnostic otherwise — CI runs it
// on a freshly recorded trace so exporter regressions fail the build.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"fmt"
	"os"

	"parapre/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [more.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			failed = true
			continue
		}
		if err := obs.ValidateChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok (%d bytes)\n", path, len(data))
	}
	if failed {
		os.Exit(1)
	}
}
