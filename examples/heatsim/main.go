// Heat-simulation example: the paper's Test Case 4 runs a single implicit
// time step; a real simulation runs many. This example integrates the 2D
// heat equation u_t = ∇²u over 20 implicit Euler steps with homogeneous
// Dirichlet boundaries, reusing one Session (partition + Schur 1
// preconditioner built once) for every step, and checks the computed
// decay of the fundamental mode against the exact rate e^{−2π²t}.
package main

import (
	"fmt"
	"log"
	"math"

	"parapre"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/sparse"
)

func main() {
	const (
		m     = 49
		dt    = 0.002
		steps = 20
	)
	g := grid.UnitSquareTri(m)
	k, _ := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1})
	mass := fem.AssembleMass(g)

	// A = M + Δt·K with u = 0 on the whole boundary.
	n := k.Rows
	coo := sparse.NewCOO(n, n, k.NNZ()+mass.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := mass.Row(i)
		for kk, j := range cols {
			coo.Add(i, j, vals[kk])
		}
		cols, vals = k.Row(i)
		for kk, j := range cols {
			coo.Add(i, j, dt*vals[kk])
		}
	}
	a := coo.ToCSR()
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for node := 0; node < n; node++ {
		if onB[node] {
			bc[node] = 0
		}
	}
	rhs := make([]float64, n)
	fem.ApplyDirichlet(a, rhs, bc)

	prob := &parapre.Problem{Name: "heatsim", A: a, B: rhs, Mesh: g, DofsPerNode: 1}
	cfg := parapre.DefaultConfig(8, parapre.Schur1)
	cfg.KeepX = true
	sess, err := parapre.NewSession(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D heat equation, %d unknowns, Δt = %g, 8 processors, one-time setup %.4fs (modeled)\n\n",
		n, dt, sess.SetupTime())

	// Initial condition: fundamental mode sin(πx)sin(πy), which decays as
	// e^{−2π²t}.
	u := make([]float64, n)
	for node := 0; node < n; node++ {
		c := g.Coord(node)
		u[node] = math.Sin(math.Pi*c[0]) * math.Sin(math.Pi*c[1])
	}
	center := (m/2)*m + m/2

	fmt.Printf("%-6s %-10s %-10s %-8s %-10s\n", "step", "t", "u(center)", "#itr", "exact")
	b := make([]float64, n)
	var totalTime float64
	for s := 1; s <= steps; s++ {
		mass.MulVecTo(b, u)
		for node := range bc {
			b[node] = 0
		}
		res, err := sess.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		u = res.X
		totalTime += res.SolveTime
		exact := math.Exp(-2 * math.Pi * math.Pi * dt * float64(s))
		if s%4 == 0 || s == 1 {
			fmt.Printf("%-6d %-10.4f %-10.6f %-8d %-10.6f\n",
				s, dt*float64(s), u[center], res.Iterations, exact)
		}
	}
	fmt.Printf("\ntotal modeled solve time over %d steps: %.4fs\n", steps, totalTime)
	want := math.Exp(-2 * math.Pi * math.Pi * dt * steps)
	fmt.Printf("final center value %.6f vs exact %.6f (implicit Euler damps slightly faster)\n",
		u[center], want)
}
