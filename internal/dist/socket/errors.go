// Package socket is the multi-process transport of package dist: each
// rank runs as its own OS process and speaks a length-prefixed binary
// protocol over a unix socket (or TCP) to a hub process, which routes
// point-to-point messages, folds collectives in ascending rank order
// (bit-identical to the in-process reducer — both share dist's fold
// kernels), assembles checkpoint shards, and detects dead peers.
//
// The failure model is explicit and typed end to end: dialing failures
// after bounded retry surface as *ConnectError, per-operation deadline
// expiries and I/O faults as *OpError, and protocol damage as
// *ProtocolError. World-level conditions reuse the dist sentinels
// (dist.ErrWorldAborted, dist.ErrPeerGone) so the Comm layer translates
// them exactly as it does for the in-process transport.
package socket

import (
	"fmt"
	"time"
)

// ConnectError reports that a rank could not reach the hub within its
// dial-retry budget.
type ConnectError struct {
	Network  string
	Addr     string
	Attempts int
	Err      error // last dial error
}

func (e *ConnectError) Error() string {
	return fmt.Sprintf("socket: connect %s %s failed after %d attempts: %v",
		e.Network, e.Addr, e.Attempts, e.Err)
}

func (e *ConnectError) Unwrap() error { return e.Err }

// OpError reports a transport operation that failed at the socket layer:
// a per-op deadline expired (Timeout reports true) or the connection
// broke mid-operation.
type OpError struct {
	Op      string // "send", "recv", "reduce", "shard"
	Rank    int    // local rank
	Peer    int    // remote rank; -1 for hub-wide operations
	Timeout bool
	Err     error // underlying I/O error; nil for pure deadline expiry
}

func (e *OpError) Error() string {
	verb := "failed"
	if e.Timeout {
		verb = "timed out"
	}
	if e.Peer >= 0 {
		if e.Err != nil {
			return fmt.Sprintf("socket: rank %d %s with peer %d %s: %v", e.Rank, e.Op, e.Peer, verb, e.Err)
		}
		return fmt.Sprintf("socket: rank %d %s with peer %d %s", e.Rank, e.Op, e.Peer, verb)
	}
	if e.Err != nil {
		return fmt.Sprintf("socket: rank %d %s %s: %v", e.Rank, e.Op, verb, e.Err)
	}
	return fmt.Sprintf("socket: rank %d %s %s", e.Rank, e.Op, verb)
}

func (e *OpError) Unwrap() error { return e.Err }

// ProtocolError reports bytes on the wire that do not parse as the
// protocol: a bad frame type, an oversized frame, a malformed payload.
type ProtocolError struct {
	Reason string
}

func (e *ProtocolError) Error() string { return "socket: protocol error: " + e.Reason }

// DefaultOpTimeout bounds one transport operation (a send accepted by the
// hub, a receive turning up a frame, one collective wave completing). It
// doubles as the transport's Grace: the dist watchdog extends its
// no-progress budget by this much.
const DefaultOpTimeout = 30 * time.Second

// Dial-retry schedule: attempts spaced by an exponential backoff. The
// schedule tolerates a hub that is still binding its listener (worker
// processes race the supervisor) for a few seconds without masking a hub
// that never comes up.
const (
	dialAttempts   = 24
	dialBackoffMin = 10 * time.Millisecond
	dialBackoffMax = 500 * time.Millisecond
)
