package fem

import (
	"math"
	"testing"

	"parapre/internal/grid"
	"parapre/internal/krylov"
)

// stepHeat integrates the 2D heat equation on a small grid to time T with
// the θ-method and homogeneous Dirichlet BC, returning the final field.
func stepHeat(t *testing.T, m int, dt, theta, T float64) []float64 {
	t.Helper()
	g := grid.UnitSquareTri(m)
	lhs, rhsM, err := HeatThetaMatrices(g, dt, theta)
	if err != nil {
		t.Fatal(err)
	}
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	dummy := make([]float64, g.NumNodes())
	ApplyDirichlet(lhs, dummy, bc)

	u := make([]float64, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		u[n] = math.Sin(math.Pi*c[0]) * math.Sin(math.Pi*c[1])
	}
	steps := int(T/dt + 0.5)
	b := make([]float64, len(u))
	for s := 0; s < steps; s++ {
		rhsM.MulVecTo(b, u)
		for n := range bc {
			b[n] = 0
		}
		x := make([]float64, len(u))
		res := krylov.SolveCSR(lhs, nil, b, x, krylov.Options{Restart: 40, MaxIters: 5000, Tol: 1e-12})
		if !res.Converged {
			t.Fatalf("step %d did not converge", s)
		}
		u = x
	}
	return u
}

func TestThetaSchemeOrders(t *testing.T) {
	// Crank–Nicolson (θ=½) must converge in Δt at second order, implicit
	// Euler (θ=1) at first: halving Δt should shrink the time error by
	// ≈4× resp. ≈2×. The spatial grid is fixed, so compare against a
	// fine-Δt reference of the same spatial problem.
	const m = 9
	const T = 0.08
	center := (m/2)*m + m/2
	ref := stepHeat(t, m, T/64, 0.5, T)[center]

	order := func(theta float64) float64 {
		e1 := math.Abs(stepHeat(t, m, T/4, theta, T)[center] - ref)
		e2 := math.Abs(stepHeat(t, m, T/8, theta, T)[center] - ref)
		return e1 / e2
	}
	be := order(1.0)
	cn := order(0.5)
	t.Logf("error ratios: backward Euler %.2f (want ≈2), Crank–Nicolson %.2f (want ≈4)", be, cn)
	if be < 1.5 || be > 2.6 {
		t.Fatalf("backward Euler ratio %.2f not ≈2", be)
	}
	if cn < 3.2 || cn > 4.8 {
		t.Fatalf("Crank–Nicolson ratio %.2f not ≈4", cn)
	}
}

func TestThetaSchemeValidation(t *testing.T) {
	g := grid.UnitSquareTri(4)
	if _, _, err := HeatThetaMatrices(g, -0.1, 1); err == nil {
		t.Fatal("negative dt accepted")
	}
	if _, _, err := HeatThetaMatrices(g, 0.1, 0); err == nil {
		t.Fatal("theta=0 accepted")
	}
	if _, _, err := HeatThetaMatrices(g, 0.1, 1.5); err == nil {
		t.Fatal("theta>1 accepted")
	}
}

func TestThetaOneMatchesTestCase4Operator(t *testing.T) {
	// θ=1 reproduces the paper's A = M + Δt·K (eq. 13).
	g := grid.UnitCubeTet(3)
	lhs, rhsM, err := HeatThetaMatrices(g, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	mass := AssembleMass(g)
	for i := 0; i < lhs.Rows; i++ {
		cols, vals := lhs.Row(i)
		for kk, j := range cols {
			want := mass.At(i, j) + 0.05*k.At(i, j)
			if math.Abs(vals[kk]-want) > 1e-13 {
				t.Fatalf("lhs (%d,%d) = %v, want %v", i, j, vals[kk], want)
			}
		}
		// And the rhs operator must be exactly M for θ=1.
		cols, vals = rhsM.Row(i)
		for kk, j := range cols {
			if math.Abs(vals[kk]-mass.At(i, j)) > 1e-13 {
				t.Fatalf("rhs (%d,%d) differs from M", i, j)
			}
		}
	}
}
