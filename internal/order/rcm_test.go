package order

import (
	"math/rand"
	"testing"

	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/sparse"
)

func poisson(t testing.TB, m int) (*sparse.CSR, []float64) {
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return a, b
}

func TestRCMIsValidPermutation(t *testing.T) {
	a, _ := poisson(t, 15)
	p := RCM(a)
	if !p.IsValid() {
		t.Fatal("RCM produced an invalid permutation")
	}
}

func TestRCMReducesBandwidthAfterShuffle(t *testing.T) {
	// Scramble a banded matrix, then RCM must recover a small bandwidth.
	a, _ := poisson(t, 15)
	rng := rand.New(rand.NewSource(1))
	shuffle := sparse.Perm(rng.Perm(a.Rows))
	scrambled := sparse.PermuteSym(a, shuffle)
	before := Bandwidth(scrambled)
	p := RCM(scrambled)
	after := Bandwidth(sparse.PermuteSym(scrambled, p))
	if after*3 > before {
		t.Fatalf("RCM bandwidth %d not clearly better than scrambled %d", after, before)
	}
	// And it should be close to the natural-band ordering of the grid.
	if natural := Bandwidth(a); after > 3*natural {
		t.Fatalf("RCM bandwidth %d far from natural %d", after, natural)
	}
}

func TestRCMReducesProfile(t *testing.T) {
	a, _ := poisson(t, 13)
	rng := rand.New(rand.NewSource(2))
	scrambled := sparse.PermuteSym(a, sparse.Perm(rng.Perm(a.Rows)))
	p := RCM(scrambled)
	if got, was := Profile(sparse.PermuteSym(scrambled, p)), Profile(scrambled); got >= was {
		t.Fatalf("RCM profile %d ≥ scrambled %d", got, was)
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two disjoint 2-cliques plus an isolated vertex.
	coo := sparse.NewCOO(5, 5, 10)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 3, 1)
	coo.Add(3, 2, 1)
	p := RCM(coo.ToCSR())
	if !p.IsValid() {
		t.Fatal("invalid permutation on disconnected graph")
	}
}

func TestRCMImprovesILUTQuality(t *testing.T) {
	// At fixed small lfil, the RCM-ordered factorization should
	// precondition at least as well as a randomly scrambled ordering.
	a, b := poisson(t, 21)
	rng := rand.New(rand.NewSource(3))
	scramble := sparse.Perm(rng.Perm(a.Rows))
	scrambled := sparse.PermuteSym(a, scramble)
	bs := scramble.ApplyVec(b)

	iters := func(m *sparse.CSR, rhs []float64) int {
		f, err := ilu.ILUT(m, ilu.ILUTOptions{Tau: 1e-2, LFil: 3})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, m.Rows)
		res := krylov.SolveCSR(m, func(z, r []float64) { f.Solve(z, r) }, rhs, x,
			krylov.Options{Restart: 30, MaxIters: 600, Tol: 1e-8})
		if !res.Converged {
			return 600
		}
		return res.Iterations
	}
	p := RCM(scrambled)
	ordered := sparse.PermuteSym(scrambled, p)
	bo := p.ApplyVec(bs)
	itScrambled := iters(scrambled, bs)
	itRCM := iters(ordered, bo)
	t.Logf("scrambled=%d rcm=%d", itScrambled, itRCM)
	if itRCM > itScrambled {
		t.Fatalf("RCM ordering worsened ILUT preconditioning: %d vs %d", itRCM, itScrambled)
	}
}

func TestBandwidthAndProfileBasics(t *testing.T) {
	a := sparse.Identity(4)
	if Bandwidth(a) != 0 || Profile(a) != 0 {
		t.Fatal("identity bandwidth/profile")
	}
	coo := sparse.NewCOO(4, 4, 5)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(3, 0, 1)
	m := coo.ToCSR()
	if Bandwidth(m) != 3 {
		t.Fatalf("bandwidth %d, want 3", Bandwidth(m))
	}
	if Profile(m) != 3 {
		t.Fatalf("profile %d, want 3", Profile(m))
	}
}
