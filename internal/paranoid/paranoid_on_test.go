//go:build paranoid

package paranoid

import (
	"math"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a paranoid panic containing %q", substr)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("paranoid panics must carry string messages, got %T", r)
		}
		if !strings.HasPrefix(msg, "paranoid: ") || !strings.Contains(msg, substr) {
			t.Fatalf("panic message %q does not match %q", msg, substr)
		}
	}()
	f()
}

func TestEnabledUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatal("Enabled must be true under the paranoid build tag")
	}
}

func TestCheckFinite(t *testing.T) {
	CheckFinite("ok value", 1.5) // must not panic
	mustPanic(t, "inner product", func() { CheckFinite("inner product", math.NaN()) })
	mustPanic(t, "norm", func() { CheckFinite("norm", math.Inf(-1)) })
}

func TestCheckFiniteVec(t *testing.T) {
	CheckFiniteVec("clean", []float64{0, -1, 2.5})
	mustPanic(t, "poisoned[2]", func() { CheckFiniteVec("poisoned", []float64{0, 1, math.NaN()}) })
}

func TestCheckLen(t *testing.T) {
	CheckLen("exact", 4, 4)
	mustPanic(t, "buffer", func() { CheckLen("buffer", 3, 4) })
	CheckMinLen("at least", 5, 4)
	mustPanic(t, "output", func() { CheckMinLen("output", 3, 4) })
}

func TestCheck(t *testing.T) {
	Check(true, "never seen")
	mustPanic(t, "segment 3", func() { Check(false, "segment %d out of order", 3) })
}
