// Package negative holds code dimguard must stay silent on.
package negative

import "fmt"

// Gather carries the guard dimguard asks for.
func Gather(p []int, x []float64) []float64 {
	if len(x) < len(p) {
		panic(fmt.Sprintf("gather: len(x)=%d < len(p)=%d", len(x), len(p)))
	}
	y := make([]float64, len(p))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}

// Scale only indexes the slice it ranges over: provably in range.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Zero bounds its loop by the slice's own length: provably in range.
func Zero(x []float64) {
	for i := 0; i < len(x); i++ {
		x[i] = 0
	}
}

// Block is a toy kernel state.
type Block struct{ n int }

func (b *Block) checkDims(y []float64) {
	if len(y) < b.n {
		panic("block: y shorter than dimension")
	}
}

// Apply delegates its guard to a named check helper, like the CSR
// kernels do with checkMulDims.
func (b *Block) Apply(y []float64) {
	b.checkDims(y)
	for i := 0; i < b.n; i++ {
		y[i] = 0
	}
}

// scatter is unexported: in-package callers own the contract.
func scatter(p []int, x, y []float64) {
	for i, v := range p {
		y[v] = x[i]
	}
}
