package core_test

import (
	"testing"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/par"
	"parapre/internal/precond"
)

// workersM is the tc1 grid size used by the worker-invariance tests.
const workersM = 17

// solveWithWorkers runs one full partition+distribute+solve pipeline with
// the worker pool pinned to w.
func solveWithWorkers(t *testing.T, w int, mutate func(*core.Config)) *core.Result {
	t.Helper()
	prev := par.SetWorkers(w)
	defer par.SetWorkers(prev)
	c, err := cases.ByName("tc1-poisson2d")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(workersM)
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.KeepX = true
	cfg.Solver.RecordHistory = true
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSolveWorkerInvariance is the end-to-end determinism contract of the
// shared-memory layer: the entire pipeline — assembly, distribution,
// concurrent preconditioner setup, and the distributed Krylov solve —
// produces bit-identical iteration counts, residual histories, and
// solutions at every worker count.
func TestSolveWorkerInvariance(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"block2", nil},
		{"schur1", func(cfg *core.Config) { cfg.Precond = precond.KindSchur1 }},
		{"block1-overlap", func(cfg *core.Config) { cfg.Precond = precond.KindBlock1; cfg.OverlapLevels = 1 }},
		{"schwarz", func(cfg *core.Config) {
			cfg.Precond = precond.KindNone
			sw := precond.DefaultSchwarz(workersM, 2, 2, true)
			cfg.Schwarz = &sw
			cfg.Scheme = core.PartitionSimple
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ref := solveWithWorkers(t, 1, v.mutate)
			if !ref.Converged {
				t.Fatalf("reference solve did not converge (%d iters)", ref.Iterations)
			}
			for _, w := range []int{3, 8} {
				got := solveWithWorkers(t, w, v.mutate)
				if got.Iterations != ref.Iterations {
					t.Fatalf("w=%d: %d iterations, want %d", w, got.Iterations, ref.Iterations)
				}
				if len(got.History) != len(ref.History) {
					t.Fatalf("w=%d: history length %d, want %d", w, len(got.History), len(ref.History))
				}
				for i := range ref.History {
					if got.History[i] != ref.History[i] {
						t.Fatalf("w=%d: History[%d] = %x, want %x", w, i, got.History[i], ref.History[i])
					}
				}
				for i := range ref.X {
					if got.X[i] != ref.X[i] {
						t.Fatalf("w=%d: X[%d] = %x, want %x", w, i, got.X[i], ref.X[i])
					}
				}
			}
		})
	}
}
