package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// Control-flow graphs. Each function body is lowered to basic blocks of
// statements/expressions with successor edges, the substrate of the
// forward-dataflow engine (dataflow.go) and of the path-sensitive
// analyzers (allocfree's reachability pruning, waitleak's all-paths join
// check).
//
// Two properties matter for this suite and are guaranteed here:
//
//   - Constant conditions prune. `if !paranoid.Enabled { return }` with
//     the untagged constant-false Enabled keeps only the live branch, so
//     the paranoid failure paths (fmt.Sprintf, interface boxing of panic
//     arguments) are invisible to the default-build analyses, exactly as
//     they are invisible to the compiled binary.
//   - Terminating statements end their block with no fall-through edge:
//     return edges to the synthetic Exit block, panic(...) edges nowhere.
//
// The builder is intentionally approximate where precision buys nothing
// for these analyzers: goto edges to any label already seen are resolved,
// forward gotos fall back to a conservative edge to Exit.

// Block is one basic block: a maximal straight-line run of statements and
// guarded expressions, ending where control can transfer.
type Block struct {
	ID    int
	Stmts []ast.Node // statements, plus condition/tag expressions evaluated in this block
	Succs []*Block
}

// CFG is one function body's control-flow graph. Entry is the first
// block; Exit is a synthetic empty block every return (and normal
// fall-off) edges to. Defers collects the deferred calls seen anywhere in
// the body: they run at every exit, which is how the waitleak analyzer
// models `defer wg.Wait()`.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Defers []*ast.DeferStmt
}

// NewCFG lowers a function body to a control-flow graph. pkg supplies
// type information for constant-condition pruning; a nil pkg disables
// pruning (used by hand-built tests).
func NewCFG(pkg *Package, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{pkg: pkg, cfg: &CFG{}}
	b.cfg.Exit = b.newBlock() // allocate Exit first so it always exists
	entry := b.newBlock()
	b.cfg.Entry = entry
	if out := b.stmtList(entry, body.List); out != nil {
		b.edge(out, b.cfg.Exit)
	}
	return b.cfg
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if b == nil || seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

type cfgBuilder struct {
	pkg *Package
	cfg *CFG

	// loop/switch context for break and continue, innermost last. A
	// label ("" for unlabeled) names the construct each frame belongs to.
	frames []ctrlFrame
	labels map[string]*Block // label → block it labels (for resolved gotos)

	// pendingLabel carries a just-seen statement label into the loop or
	// switch it labels, so `continue L` / `break L` resolve to the right
	// frame. The construct consumes (clears) it on entry.
	pendingLabel string
}

type ctrlFrame struct {
	label    string
	breakTo  *Block
	contTo   *Block // nil for switch/select frames
	canBreak bool
	canCont  bool
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{ID: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// constBool reports the compile-time boolean value of e, when it has one.
func (b *cfgBuilder) constBool(e ast.Expr) (val, ok bool) {
	if b.pkg == nil || e == nil {
		return false, false
	}
	tv, found := b.pkg.Info.Types[e]
	if !found || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// stmtList lowers a statement sequence starting in cur; it returns the
// block where control continues, or nil when every path terminated.
func (b *cfgBuilder) stmtList(cur *Block, stmts []ast.Stmt) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Dead code after return/break/…: still lower it (its own
			// diagnostics are not this layer's business) but keep it
			// disconnected so reachability analyses skip it.
			cur = b.newBlock()
			cur.Stmts = nil
			dead := b.stmt(cur, s)
			cur = dead
			continue
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt lowers one statement into cur and returns the continuation block
// (possibly cur itself), or nil if control cannot fall through.
func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		cur.Stmts = append(cur.Stmts, st.Cond)
		val, isConst := b.constBool(st.Cond)

		var after *Block
		join := func(out *Block) {
			if out == nil {
				return
			}
			if after == nil {
				after = b.newBlock()
			}
			b.edge(out, after)
		}

		if !isConst || val {
			then := b.newBlock()
			b.edge(cur, then)
			join(b.stmtList(then, st.Body.List))
		}
		if !isConst || !val {
			if st.Else != nil {
				els := b.newBlock()
				b.edge(cur, els)
				join(b.stmt(els, st.Else))
			} else {
				join(cur)
			}
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if st.Cond != nil {
			head.Stmts = append(head.Stmts, st.Cond)
		}
		after := b.newBlock()
		val, isConst := b.constBool(st.Cond)
		condTrue := st.Cond == nil || !isConst || val
		condFalse := st.Cond != nil && (!isConst || !val)

		body := b.newBlock()
		if condTrue {
			b.edge(head, body)
		}
		if condFalse {
			b.edge(head, after)
		}
		b.pushFrame(label, after, head)
		out := b.stmtList(body, st.Body.List)
		b.popFrame()
		if out != nil {
			if st.Post != nil {
				out = b.stmt(out, st.Post)
			}
			b.edge(out, head)
		}
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.Stmts = append(cur.Stmts, st.X)
		head := b.newBlock()
		b.edge(cur, head)
		if st.Key != nil {
			head.Stmts = append(head.Stmts, st.Key)
		}
		if st.Value != nil {
			head.Stmts = append(head.Stmts, st.Value)
		}
		after := b.newBlock()
		b.edge(head, after) // empty collection
		body := b.newBlock()
		b.edge(head, body)
		b.pushFrame(label, after, head)
		out := b.stmtList(body, st.Body.List)
		b.popFrame()
		b.edge(out, head)
		return after

	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		if st.Tag != nil {
			cur.Stmts = append(cur.Stmts, st.Tag)
		}
		return b.caseClauses(cur, st.Body.List, true)

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(cur, st.Init)
		}
		cur.Stmts = append(cur.Stmts, st.Assign)
		return b.caseClauses(cur, st.Body.List, true)

	case *ast.SelectStmt:
		return b.caseClauses(cur, st.Body.List, false)

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, st)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, st)
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if t := b.findFrame(label, true); t != nil {
				b.edge(cur, t.breakTo)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.findFrame(label, false); t != nil {
				b.edge(cur, t.contTo)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case token.GOTO:
			if t, ok := b.labels[label]; ok {
				b.edge(cur, t)
			} else {
				b.edge(cur, b.cfg.Exit) // forward goto: conservative
			}
		case token.FALLTHROUGH:
			// Handled by caseClauses; a stray one falls through normally.
			return cur
		}
		return nil

	case *ast.LabeledStmt:
		head := b.newBlock()
		b.edge(cur, head)
		if b.labels == nil {
			b.labels = map[string]*Block{}
		}
		b.labels[st.Label.Name] = head
		b.pendingLabel = st.Label.Name
		out := b.stmt(head, st.Stmt)
		b.pendingLabel = ""
		return out

	case *ast.DeferStmt:
		cur.Stmts = append(cur.Stmts, st)
		b.cfg.Defers = append(b.cfg.Defers, st)
		return cur

	case *ast.ExprStmt:
		cur.Stmts = append(cur.Stmts, st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && b.isBuiltin(id) {
				return nil // terminates: no fall-through edge
			}
		}
		return cur

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-line.
		cur.Stmts = append(cur.Stmts, st)
		return cur
	}
}

// takeLabel consumes the pending statement label.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) pushFrame(label string, breakTo, contTo *Block) {
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: breakTo, contTo: contTo,
		canBreak: true, canCont: contTo != nil})
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) findFrame(label string, forBreak bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if forBreak && f.canBreak {
			return f
		}
		if !forBreak && f.canCont {
			return f
		}
	}
	return nil
}

// caseClauses lowers the clause list of a switch/type-switch (loop=true
// frames support break) or select. Every clause body gets its own block
// fed from the head; fallthrough chains switch clause i into clause i+1.
func (b *cfgBuilder) caseClauses(head *Block, clauses []ast.Stmt, isSwitch bool) *Block {
	after := b.newBlock()
	b.pushFrame(b.takeLabel(), after, nil)

	hasDefault := false
	bodies := make([]*Block, len(clauses))
	outs := make([]*Block, len(clauses))
	var bodyStmts [][]ast.Stmt
	for i, cl := range clauses {
		blk := b.newBlock()
		bodies[i] = blk
		b.edge(head, blk)
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				blk.Stmts = append(blk.Stmts, e)
			}
			bodyStmts = append(bodyStmts, c.Body)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blk.Stmts = append(blk.Stmts, c.Comm)
			}
			bodyStmts = append(bodyStmts, c.Body)
		default:
			bodyStmts = append(bodyStmts, nil)
		}
	}
	for i := range clauses {
		stmts := bodyStmts[i]
		fallsThrough := false
		if isSwitch && len(stmts) > 0 {
			if br, ok := stmts[len(stmts)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				stmts = stmts[:len(stmts)-1]
			}
		}
		out := b.stmtList(bodies[i], stmts)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(out, bodies[i+1])
			out = nil
		}
		outs[i] = out
	}
	b.popFrame()

	for _, out := range outs {
		b.edge(out, after)
	}
	if !hasDefault || len(clauses) == 0 {
		// No default: the head may skip every clause.
		b.edge(head, after)
	}
	return after
}

// isBuiltin reports whether id resolves to a universe-scope builtin.
func (b *cfgBuilder) isBuiltin(id *ast.Ident) bool {
	if b.pkg == nil {
		return id.Name == "panic"
	}
	obj := b.pkg.Info.ObjectOf(id)
	if obj == nil {
		return true // unresolved in a fixture: assume the builtin
	}
	return obj.Parent() == nil || obj.Pkg() == nil
}
