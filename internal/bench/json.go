package bench

import (
	"encoding/json"
	"os"
	"runtime"

	"parapre/internal/par"
)

// JSON report of one ippsbench run. Every cell carries both clocks: the
// modeled (virtual-machine) time the paper tabulates and the measured
// wall-clock time of the actual solve on this host, so speedups of the
// shared-memory kernel layer can be tracked per commit.

// ReportCell is one (preconditioner, P) measurement in the JSON report.
type ReportCell struct {
	Precond   string  `json:"precond"`
	Iters     int     `json:"iters"`
	Restarts  int     `json:"restarts,omitempty"`
	ModelTime float64 `json:"model_time_s"`
	WallTime  float64 `json:"wall_time_s"`
	Converged bool    `json:"converged"`
	Note      string  `json:"note,omitempty"` // chaos outcome annotation
	// Phases is the phase → slowest-rank virtual seconds breakdown,
	// present only when the run attached an observability collector.
	Phases map[string]float64 `json:"phases,omitempty"`
}

// ReportRow groups the cells of one processor count.
type ReportRow struct {
	P     int          `json:"p"`
	Cells []ReportCell `json:"cells"`
}

// ReportTable is one regenerated table.
type ReportTable struct {
	ID    string      `json:"id"`
	Title string      `json:"title"`
	N     int         `json:"n"`
	Rows  []ReportRow `json:"rows"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string        `json:"date"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Tables     []ReportTable `json:"tables"`
}

// NewReport converts regenerated tables into a report stamped with the
// given date and the current shared-memory configuration.
func NewReport(date string, tables []Table) *Report {
	rep := &Report{Date: date, Workers: par.Workers(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, t := range tables {
		rt := ReportTable{ID: t.ID, Title: t.Title, N: t.N}
		for _, r := range t.Rows {
			rr := ReportRow{P: r.P}
			for ci, c := range r.Cells {
				name := ""
				if ci < len(t.Columns) {
					name = t.Columns[ci]
				}
				rr.Cells = append(rr.Cells, ReportCell{
					Precond:   name,
					Iters:     c.Iters,
					Restarts:  c.Restarts,
					ModelTime: c.Time,
					WallTime:  c.Wall,
					Converged: c.Converged,
					Note:      c.Note,
					Phases:    c.Phases,
				})
			}
			rt.Rows = append(rt.Rows, rr)
		}
		rep.Tables = append(rep.Tables, rt)
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
