package lint

import (
	"go/ast"
	"go/types"
)

// allocfree: static zero-allocation proofs. A function annotated
//
//	//lint:allocfree
//
// in its doc comment claims the steady-state contract the dynamic
// testing.AllocsPerRun tests measure: once warmed up, a call allocates
// nothing. This analyzer proves the claim's static twin by walking the
// annotated function's call cone — every statically resolvable callee,
// transitively — and flagging allocation constructs reachable on the
// default build:
//
//	make, new, append, slice/map composite literals, &T{…}
//	interface boxing of non-pointer-shaped values (call args, assigns)
//	fmt.* calls (formatting allocates)
//	closure creation and `go` statements
//
// The contract is steady-state, so three boundaries are deliberate:
//
//   - Indirect calls (injected Op/Prec/Dot function values, interface
//     methods) are the CALLER's obligation, exactly as in the dynamic
//     tests, which inject non-allocating closures. They are not
//     traversed and not flagged.
//   - par fan-out functions (For, ForSegments, ForLevels, Run,
//     SumBlocks) are cone boundaries: the dynamic tests pin Workers=1,
//     where the serial path runs the closure inline. The closure
//     ARGUMENT is therefore not a "closure creation" finding (it does
//     not escape on the serial path), but its body is still scanned —
//     it is the hot loop.
//   - Allocations inside panic(...) arguments are exempt: a panic is
//     terminal, not steady-state.
//
// Reachability is CFG-based with constant-condition pruning, so code
// behind `if paranoid.Enabled` (const false on the default build) is
// invisible — as it is to the compiled binary. Warm-up allocation sites
// (workspace growth, lazily built level schedules, result-history
// recording) carry reasoned //lint:ignore allocfree lines at the site.

var AllocFree = &ProgramAnalyzer{
	Name: "allocfree",
	Doc:  "proves //lint:allocfree functions transitively allocation-free on the default build",
	Run:  runAllocFree,
}

// parBoundaryFuncs are the par fan-out entry points that bound the cone.
var parBoundaryFuncs = map[string]bool{
	"For":         true,
	"ForSegments": true,
	"ForLevels":   true,
	"Run":         true,
	"SumBlocks":   true,
}

func isParBoundary(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return lastInternalPkg(fn.Pkg().Path()) == "par" && parBoundaryFuncs[fn.Name()]
}

func runAllocFree(prog *Program) []Diagnostic {
	g := prog.CallGraph()

	// Roots: annotated declarations, in deterministic order.
	var roots []*CGNode
	for _, node := range sortedNodes(g) {
		if directiveOnDecl(node.Decl, "allocfree") {
			roots = append(roots, node)
		}
	}

	// Live-node sets are root-independent: cache per function.
	liveCache := map[*CGNode]map[ast.Node]bool{}
	liveOf := func(node *CGNode) map[ast.Node]bool {
		if s, ok := liveCache[node]; ok {
			return s
		}
		s := liveNodeSet(prog, node)
		liveCache[node] = s
		return s
	}

	type siteKey struct {
		file string
		line int
		col  int
		msg  string
	}
	seen := map[siteKey]bool{}
	var out []Diagnostic

	for _, root := range roots {
		rootName := FuncDisplayName(root.Fn)
		visited := map[*CGNode]bool{}
		var visit func(node *CGNode)
		visit = func(node *CGNode) {
			if visited[node] {
				return
			}
			visited[node] = true
			live := liveOf(node)
			for _, d := range allocSitesIn(node, live, rootName) {
				k := siteKey{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message}
				if !seen[k] {
					seen[k] = true
					out = append(out, d)
				}
			}
			// Extend the cone along static edges, skipping the par
			// boundary and calls the reachability pruning cut.
			for _, e := range node.Out {
				if e.Callee == nil || isParBoundary(e.Callee.Fn) {
					continue
				}
				if !live[e.Site] {
					continue
				}
				visit(e.Callee)
			}
		}
		visit(root)
	}
	sortDiags(out)
	return out
}

// liveNodeSet returns every AST node that can execute on the default
// build: all nodes nested in the statements (and guarded expressions) of
// CFG-reachable blocks. Closure bodies nested in live statements are
// included — a closure runs on its creator's behalf.
func liveNodeSet(prog *Program, node *CGNode) map[ast.Node]bool {
	cfg := prog.CFGOf(node)
	reach := cfg.Reachable()
	out := map[ast.Node]bool{}
	for _, b := range cfg.Blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.Stmts {
			ast.Inspect(s, func(m ast.Node) bool {
				if m != nil {
					out[m] = true
				}
				return true
			})
		}
	}
	return out
}

// allocSitesIn scans one function body for allocation constructs on live
// nodes, attributing findings to rootName.
func allocSitesIn(node *CGNode, live map[ast.Node]bool, rootName string) []Diagnostic {
	p := node.Pkg

	var out []Diagnostic
	report := func(pos ast.Node, what string) {
		out = append(out, diag(p, pos.Pos(), "allocfree",
			"%s in the call cone of //lint:allocfree %s", what, rootName))
	}

	// Closure arguments to par fan-out calls are exempt from the
	// closure-creation finding (the serial path runs them inline).
	parArgLits := map[*ast.FuncLit]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && isParBoundary(fn) {
			for _, a := range call.Args {
				if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					parArgLits[lit] = true
				}
			}
		}
		return true
	})

	ast.Inspect(node.Decl.Body, func(m ast.Node) bool {
		if m == nil || !live[m] {
			// Dead (pruned) nodes report nothing; still descend, since
			// liveness is per-node and costs nothing to re-test.
			return true
		}
		switch x := m.(type) {
		case *ast.FuncLit:
			if !parArgLits[x] {
				report(x, "closure creation allocates")
			}
		case *ast.GoStmt:
			report(x, "`go` allocates a goroutine")
		case *ast.CallExpr:
			return allocCheckCall(p, x, report)
		case *ast.CompositeLit:
			allocCheckComposite(p, x, report)
		case *ast.UnaryExpr:
			allocCheckUnary(p, x, report)
		case *ast.AssignStmt:
			allocCheckBoxing(p, x, report)
		}
		return true
	})
	sortDiags(out)
	return out
}

// allocCheckCall handles builtin allocators, fmt calls, panic exemption
// and interface boxing at call arguments. The bool return feeds
// ast.Inspect: false stops descent (panic arguments are exempt).
func allocCheckCall(p *Package, call *ast.CallExpr, report func(ast.Node, string)) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := p.Info.ObjectOf(id)
		if obj == nil || obj.Pkg() == nil {
			switch id.Name {
			case "panic":
				return false // terminal, not steady-state: exempt args
			case "make":
				report(call, "make allocates")
			case "new":
				report(call, "new allocates")
			case "append":
				report(call, "append may grow its backing array")
			}
			return true
		}
	}
	fn := calleeFunc(p, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call, "fmt."+fn.Name()+" formats and allocates")
		return true
	}
	// Boxing at call arguments: a non-pointer-shaped concrete value
	// passed where the (statically resolved) callee takes an interface.
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok {
			checkArgBoxing(p, call, sig, report)
		}
	}
	return true
}

// checkArgBoxing flags concrete non-pointer-shaped arguments passed to
// interface parameters — the conversion heap-allocates the value.
func checkArgBoxing(p *Package, call *ast.CallExpr, sig *types.Signature, report func(ast.Node, string)) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	// Method values resolved through a selector have the receiver bound:
	// call.Args align with params directly in both cases go/types hands
	// us here (Selections methods report the unbound signature's params
	// without the receiver).
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxesAt(p, arg, pt) {
			report(arg, "interface boxing allocates")
		}
	}
}

// boxesAt reports whether passing arg into an interface-typed slot
// heap-allocates: the slot is an interface, the argument's type is
// concrete, and the value is not pointer-shaped (pointers, channels,
// maps and funcs fit in the interface data word directly).
func boxesAt(p *Package, arg ast.Expr, slot types.Type) bool {
	if slot == nil || !types.IsInterface(slot.Underlying()) {
		return false
	}
	tv, ok := p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || types.IsInterface(tv.Type.Underlying()) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// allocCheckComposite flags heap-allocating composite literals: slices
// and maps always allocate backing storage.
func allocCheckComposite(p *Package, lit *ast.CompositeLit, report func(ast.Node, string)) {
	tv, ok := p.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		report(lit, "slice literal allocates")
	case *types.Map:
		report(lit, "map literal allocates")
	}
}

// allocCheckUnary flags &T{…}: taking the address of a fresh composite
// heap-allocates it.
func allocCheckUnary(p *Package, u *ast.UnaryExpr, report func(ast.Node, string)) {
	if u.Op.String() != "&" {
		return
	}
	if _, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
		report(u, "&composite literal allocates")
	}
}

// allocCheckBoxing flags assignments that box a concrete
// non-pointer-shaped value into an interface-typed destination.
func allocCheckBoxing(p *Package, as *ast.AssignStmt, report func(ast.Node, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		ltv, ok := p.Info.Types[as.Lhs[i]]
		if !ok {
			// := defines the LHS: its type IS the RHS type, never a
			// boxing conversion.
			continue
		}
		if boxesAt(p, as.Rhs[i], ltv.Type) {
			report(as.Rhs[i], "interface boxing allocates")
		}
	}
}
