package verify

import (
	"fmt"

	"parapre/internal/cases"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fft"
	"parapre/internal/ilu"
	"parapre/internal/mslr"
	"parapre/internal/precond"
	"parapre/internal/sparse"
)

// checkFFTPoisson verifies the DST-based fast Poisson solver against a
// dense 5-point Laplacian: forward operator and solve, on square and
// rectangular grids with unequal spacings, down to a 1×1 grid.
func checkFFTPoisson(cfg Config) []Violation {
	var out []Violation
	type gridCase struct {
		nx, ny int
		hx, hy float64
	}
	gcs := []gridCase{{1, 1, 1, 1}, {3, 2, 1, 1}, {5, 5, 0.5, 0.25}, {8, 3, 1, 0.125}}
	if !cfg.Quick {
		gcs = append(gcs, gridCase{13, 9, 0.2, 0.7}, gridCase{1, 6, 1, 1})
	}
	for _, gc := range gcs {
		n := gc.nx * gc.ny
		lap := denseLaplacian5pt(gc.nx, gc.ny, gc.hx, gc.hy)
		p := fft.NewPoissonSolver(gc.nx, gc.ny, gc.hx, gc.hy)
		tag := fmt.Sprintf("nx=%d ny=%d hx=%g hy=%g", gc.nx, gc.ny, gc.hx, gc.hy)

		f := randomRHS(n, cfg.Seed+int64(101*gc.nx+gc.ny))
		// Forward operator vs dense multiply.
		u := randomRHS(n, cfg.Seed+int64(307*gc.nx+gc.ny))
		av := p.Apply(u)
		ref := make([]float64, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += lap.At(i, j) * u[j]
			}
			ref[i] = s
		}
		if d := maxAbsDiff(av, ref); d > 1e-9*(1+maxAbs(ref)) {
			out = append(out, Violation{"fft-poisson",
				fmt.Sprintf("Apply differs from dense 5-point operator by %g", d), tag})
		}
		// Solve vs dense LU solve.
		lu, err := lap.Factor()
		if err != nil {
			out = append(out, Violation{"fft-poisson", fmt.Sprintf("dense factor: %v", err), tag})
			continue
		}
		ud := lu.Solve(f)
		us := p.Solve(f)
		if d := maxAbsDiff(us, ud); d > 1e-9*(1+maxAbs(ud)) {
			out = append(out, Violation{"fft-poisson",
				fmt.Sprintf("DST solve differs from dense solve by %g", d), tag})
		}
	}
	return out
}

// denseLaplacian5pt assembles the 5-point −Δ_h operator on an nx×ny
// interior grid with homogeneous Dirichlet boundaries, row-major.
func denseLaplacian5pt(nx, ny int, hx, hy float64) *sparse.Dense {
	n := nx * ny
	d := sparse.NewDense(n, n)
	cx, cy := 1/(hx*hx), 1/(hy*hy)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			row := j*nx + i
			d.Set(row, row, 2*cx+2*cy)
			if i > 0 {
				d.Set(row, row-1, -cx)
			}
			if i < nx-1 {
				d.Set(row, row+1, -cx)
			}
			if j > 0 {
				d.Set(row, row-nx, -cy)
			}
			if j < ny-1 {
				d.Set(row, row+nx, -cy)
			}
		}
	}
	return d
}

// checkPrecondBlock verifies the block-Jacobi preconditioners against
// their definition z_i = Ã_i⁻¹·r_i: with complete factors the application
// must equal the dense solve of the owned block, and with incomplete
// factors the application must exactly invert the stored factor product.
func checkPrecondBlock(cfg Config) []Violation {
	var out []Violation
	sizes := []int{6, 12}
	if !cfg.Quick {
		sizes = append(sizes, 21)
	}
	for _, n := range sizes {
		for _, p := range []int{2, 3} {
			seed := cfg.Seed + 1300*int64(n) + int64(p)
			tag := func(extra string) string { return repro(n, seed, fmt.Sprintf("P=%d %s", p, extra)) }
			a := randomSPD(n, 0.5, seed)
			part := randomPartition(n, p, seed)
			b := make([]float64, n)
			systems := dsys.Distribute(a, b, part, p)

			for r, s := range systems {
				nl := s.NLoc()
				if nl == 0 {
					continue
				}
				owned := s.OwnedBlock()
				lu, err := owned.Dense().Factor()
				if err != nil {
					out = append(out, Violation{"precond-block", fmt.Sprintf("rank %d dense factor: %v", r, err), tag("")})
					continue
				}
				rhs := randomRHS(nl, seed+int64(r))
				zd := lu.Solve(rhs)

				apply := func(name string, ap func(c *dist.Comm, z, rr []float64)) []float64 {
					z := make([]float64, nl)
					dist.Run(1, dist.LinuxCluster(), func(c *dist.Comm) { ap(c, z, rhs) })
					_ = name
					return z
				}

				// Complete-factor variants must equal the dense solve.
				if bp, err := precond.NewBlock2(s, completeOpts); err != nil {
					out = append(out, Violation{"precond-block", fmt.Sprintf("rank %d Block2: %v", r, err), tag("")})
				} else if d := maxAbsDiff(apply("Block2", bp.Apply), zd); d > 1e-8*(1+maxAbs(zd)) {
					out = append(out, Violation{"precond-block",
						fmt.Sprintf("rank %d complete Block 2 differs from dense owned-block solve by %g", r, d), tag("")})
				}
				if bp, err := precond.NewBlock2Pivot(s, ilu.ILUTPOptions{ILUTOptions: completeOpts, PermTol: 1}); err != nil {
					out = append(out, Violation{"precond-block", fmt.Sprintf("rank %d Block2P: %v", r, err), tag("")})
				} else if d := maxAbsDiff(apply("Block2P", bp.Apply), zd); d > 1e-8*(1+maxAbs(zd)) {
					out = append(out, Violation{"precond-block",
						fmt.Sprintf("rank %d complete Block 2P differs from dense owned-block solve by %g", r, d), tag("")})
				}

				// Incomplete variants must exactly invert their own factor
				// product (the block-Jacobi Ã_i).
				if bp, err := precond.NewBlock1(s); err != nil {
					out = append(out, Violation{"precond-block", fmt.Sprintf("rank %d Block1: %v", r, err), tag("")})
				} else {
					z := apply("Block1", bp.Apply)
					f, _ := ilu.ILU0(owned)
					back := f.Product().MulVec(z)
					if d := maxAbsDiff(back, rhs); d > 1e-8*(1+maxAbs(z)) {
						out = append(out, Violation{"precond-block",
							fmt.Sprintf("rank %d Block 1: (L·U)·Apply(r) differs from r by %g", r, d), tag("")})
					}
				}
				if bp, err := precond.NewBlockIC(s); err != nil {
					out = append(out, Violation{"precond-block", fmt.Sprintf("rank %d BlockIC: %v", r, err), tag("")})
				} else {
					z := apply("BlockIC", bp.Apply)
					ch, _ := ilu.IC0(owned)
					back := cholProductMulVec(ch, z)
					if d := maxAbsDiff(back, rhs); d > 1e-8*(1+maxAbs(z)) {
						out = append(out, Violation{"precond-block",
							fmt.Sprintf("rank %d Block IC: (L·Lᵀ)·Apply(r) differs from r by %g", r, d), tag("")})
					}
				}
			}
		}
	}
	return out
}

// cholProductMulVec computes (L·Lᵀ)·z from the stored IC factors.
func cholProductMulVec(ch *ilu.Chol, z []float64) []float64 {
	t := ch.Lt.MulVec(z)
	return ch.L.MulVec(t)
}

// exactSchur1Opts configures Schur 1 as an exact solver: complete
// subdomain factors, exact B-solves (one sweep of the complete factor),
// and a fully converged inner Schur GMRES.
func exactSchur1Opts(n int) precond.Schur1Options {
	return precond.Schur1Options{
		ILUT:       completeOpts,
		SchurIters: 2*n + 10,
		SchurTol:   1e-13,
		InnerIters: 0,
	}
}

// checkPrecondSchur1 verifies the Schur 1 preconditioner against its
// definition: with exact settings Algorithm 2.1 is an exact block-LU
// solve of the global system, so Apply must reproduce the dense global
// solve.
func checkPrecondSchur1(cfg Config) []Violation {
	return checkPrecondGlobalInverse(cfg, "precond-schur1", 1400, 1e-7,
		func(s *dsys.System, n int) (distApplier, error) {
			return precond.NewSchur1(s, exactSchur1Opts(n))
		})
}

// checkPrecondMSLR verifies the multilevel low-rank Schur preconditioner
// the same way, at the tighter tolerance its exactness argument supports:
// with complete factors and rank equal to every separator/interface size,
// each low-rank correction collapses to the exact Schur inverse
// (V(I−H)⁻¹Vᵀ = (S·C̃⁻¹)⁻¹ for square orthonormal V), so the recursive
// hierarchy plus the fully converged interface GMRES must reproduce the
// dense global solve to near machine precision.
func checkPrecondMSLR(cfg Config) []Violation {
	return checkPrecondGlobalInverse(cfg, "precond-mslr", 1600, 1e-10,
		func(s *dsys.System, n int) (distApplier, error) {
			return precond.NewMSLR(s, mslr.Options{
				Levels:     2,
				Rank:       n,
				MinBlock:   3,
				ILUT:       completeOpts,
				SchurIters: 3*n + 10,
				SchurTol:   1e-13,
				Seed:       cfg.Seed + 11,
			})
		})
}

// checkPrecondSchur2 verifies the Schur 2 (expanded Schur) preconditioner
// the same way: with dropping disabled and the expanded-system GMRES run
// to convergence, the two-level reduction is an exact solve.
func checkPrecondSchur2(cfg Config) []Violation {
	return checkPrecondGlobalInverse(cfg, "precond-schur2", 1500, 1e-7,
		func(s *dsys.System, n int) (distApplier, error) {
			return precond.NewSchur2(s, precond.Schur2Options{
				MaxGroup:   6,
				DropTol:    0,
				SchurIters: 3*n + 10,
				SchurTol:   1e-13,
				ILUT:       completeOpts,
			})
		})
}

type distApplier interface {
	Apply(c *dist.Comm, z, r []float64)
}

// checkPrecondGlobalInverse drives one exact-settings preconditioner over
// random problems and compares its collective Apply with the dense global
// solve, to the relative tolerance the method’s exactness argument
// supports.
func checkPrecondGlobalInverse(cfg Config, name string, seedBase int64,
	tol float64, build func(s *dsys.System, n int) (distApplier, error)) []Violation {
	var out []Violation
	sizes := []int{8, 13}
	ps := []int{2, 3}
	if !cfg.Quick {
		sizes = append(sizes, 20)
		ps = append(ps, 4)
	}
	for _, n := range sizes {
		for _, p := range ps {
			seed := cfg.Seed + seedBase*int64(n) + int64(p)
			tag := repro(n, seed, fmt.Sprintf("P=%d", p))
			a := randomDiagDominant(n, 0.35, seed)
			part := randomPartition(n, p, seed)
			rg := randomRHS(n, seed)
			systems := dsys.Distribute(a, make([]float64, n), part, p)

			pcs := make([]distApplier, p)
			buildFailed := false
			for r, s := range systems {
				pc, err := build(s, n)
				if err != nil {
					out = append(out, Violation{name, fmt.Sprintf("rank %d build: %v", r, err), tag})
					buildFailed = true
					break
				}
				pcs[r] = pc
			}
			if buildFailed {
				continue
			}

			lu, err := a.Dense().Factor()
			if err != nil {
				out = append(out, Violation{name, fmt.Sprintf("dense factor: %v", err), tag})
				continue
			}
			zd := lu.Solve(rg)

			locals := dsys.Scatter(systems, rg)
			zl := make([][]float64, p)
			dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
				r := c.Rank()
				zl[r] = make([]float64, systems[r].NLoc())
				pcs[r].Apply(c, zl[r], locals[r])
			})
			z := dsys.Gather(systems, zl)
			if d := maxAbsDiff(z, zd); d > tol*(1+maxAbs(zd)) {
				out = append(out, Violation{name,
					fmt.Sprintf("exact-settings Apply differs from dense global solve by %g", d), tag})
			}
		}
	}
	return out
}

// checkPrecondSchwarz verifies the additive Schwarz preconditioner
// against an independently composed reference: for every subdomain box
// (geometry replicated here from first principles), one DST-accelerated
// CG step on the box-restricted matrix, scatter-added over all boxes.
func checkPrecondSchwarz(cfg Config) []Violation {
	var out []Violation
	type layout struct{ m, px, py int }
	lts := []layout{{6, 2, 1}, {8, 2, 2}}
	if !cfg.Quick {
		lts = append(lts, layout{11, 3, 2})
	}
	for _, lt := range lts {
		for _, overlap := range []float64{0.05, 0.3} {
			n := lt.m * lt.m
			p := lt.px * lt.py
			tag := fmt.Sprintf("m=%d Px=%d Py=%d overlap=%g", lt.m, lt.px, lt.py, overlap)
			prob := cases.Poisson2D(lt.m)
			part := precond.BoxPartition(lt.m, lt.px, lt.py)
			systems := dsys.Distribute(prob.A, prob.B, part, p)
			opt := precond.SchwarzOptions{M: lt.m, Px: lt.px, Py: lt.py, Overlap: overlap}

			sws := make([]*precond.Schwarz, p)
			fail := false
			for r, s := range systems {
				sw, err := precond.NewSchwarz(s, prob.A, opt)
				if err != nil {
					out = append(out, Violation{"precond-schwarz", fmt.Sprintf("rank %d: %v", r, err), tag})
					fail = true
					break
				}
				sws[r] = sw
			}
			if fail {
				continue
			}
			if err := precond.WireHalo(sws); err != nil {
				out = append(out, Violation{"precond-schwarz", fmt.Sprintf("WireHalo: %v", err), tag})
				continue
			}

			rg := randomRHS(n, cfg.Seed+int64(17*lt.m+p))
			locals := dsys.Scatter(systems, rg)
			zl := make([][]float64, p)
			dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
				r := c.Rank()
				zl[r] = make([]float64, systems[r].NLoc())
				sws[r].Apply(c, zl[r], locals[r])
			})
			z := dsys.Gather(systems, zl)

			ref := schwarzReference(prob.A, rg, opt)
			if d := maxAbsDiff(z, ref); d > 1e-9*(1+maxAbs(ref)) {
				out = append(out, Violation{"precond-schwarz",
					fmt.Sprintf("Apply differs from composed subdomain reference by %g", d), tag})
			}
		}
	}
	return out
}

// schwarzReference composes z = Σ_i R_iᵀ·(one DST-preconditioned CG step
// on Ã_i)·R_i·r from scratch: box geometry, restriction, the straight-line
// first CG iteration (x₁ = α·M·r with α = (r·z₀)/(z₀·A·z₀)), and the
// overlapping scatter-add. Shares no code with precond.Schwarz beyond the
// sparse kernels already validated below it in the hierarchy.
func schwarzReference(a *sparse.CSR, r []float64, opt precond.SchwarzOptions) []float64 {
	m := opt.M
	z := make([]float64, m*m)
	ceil := func(x, y int) int { return (x + y - 1) / y }
	for br := 0; br < opt.Px*opt.Py; br++ {
		bi, bj := br%opt.Px, br/opt.Px
		i0, i1 := ceil(bi*m, opt.Px), ceil((bi+1)*m, opt.Px)
		j0, j1 := ceil(bj*m, opt.Py), ceil((bj+1)*m, opt.Py)
		ovx := int(opt.Overlap*float64(i1-i0)) + 1
		ovy := int(opt.Overlap*float64(j1-j0)) + 1
		ei0, ei1 := max(0, i0-ovx), min(m, i1+ovx)
		ej0, ej1 := max(0, j0-ovy), min(m, j1+ovy)
		var boxNodes []int
		for j := ej0; j < ej1; j++ {
			for i := ei0; i < ei1; i++ {
				boxNodes = append(boxNodes, j*m+i)
			}
		}
		aBox := sparse.Extract(a, boxNodes, boxNodes)
		rBox := make([]float64, len(boxNodes))
		for k, g := range boxNodes {
			rBox[k] = r[g]
		}
		pois := fft.NewPoissonSolver(ei1-ei0, ej1-ej0, 1, 1)
		z0 := pois.Solve(rBox)
		az0 := aBox.MulVec(z0)
		pap := sparse.Dot(z0, az0)
		if pap > 0 {
			alpha := sparse.Dot(rBox, z0) / pap
			for k, g := range boxNodes {
				z[g] += alpha * z0[k]
			}
		}
	}
	return z
}
