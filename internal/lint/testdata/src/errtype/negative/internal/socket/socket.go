// Negative errtype fixture for the socket transport package: the
// documented typed errors (ConnectError, OpError), sentinel wraps and
// callee passthroughs. The analyzer must stay silent.
package socket

import (
	"errors"
	"fmt"
)

// ErrPeerGone is the documented sentinel.
var ErrPeerGone = errors.New("socket: peer gone")

// ConnectError is the typed rendezvous failure.
type ConnectError struct {
	Addr     string
	Attempts int
	Err      error
}

func (e *ConnectError) Error() string {
	return fmt.Sprintf("socket: connect %s failed after %d attempts: %v", e.Addr, e.Attempts, e.Err)
}
func (e *ConnectError) Unwrap() error { return e.Err }

// OpError is the typed per-operation failure.
type OpError struct {
	Op      string
	Rank    int
	Timeout bool
	Err     error
}

func (e *OpError) Error() string {
	return fmt.Sprintf("socket: %s on rank %d: %v", e.Op, e.Rank, e.Err)
}
func (e *OpError) Unwrap() error { return e.Err }

// Client simulates the transport client whose methods are package API.
type Client struct{ rank int }

// Dial returns only the typed connect failure.
func Dial(addr string, rank int) (*Client, error) {
	if err := probe(addr); err != nil {
		return nil, &ConnectError{Addr: addr, Attempts: 1, Err: err}
	}
	return &Client{rank: rank}, nil
}

// Recv returns typed op errors, sentinel wraps, and passthroughs.
func (c *Client) Recv(from int) error {
	if from < 0 {
		return &OpError{Op: "recv", Rank: c.rank, Err: ErrPeerGone}
	}
	if from == c.rank {
		return fmt.Errorf("socket: recv loopback: %w", ErrPeerGone)
	}
	if err := probe("peer"); err != nil {
		return err // passthrough from a callee: not fresh
	}
	return nil
}

func probe(s string) error {
	if s == "" {
		return &OpError{Op: "probe", Err: ErrPeerGone}
	}
	return nil
}
