package fem

import (
	"math"
	"testing"

	"parapre/internal/grid"
)

// solveDirichletProblem assembles, applies exact-solution Dirichlet data
// on the whole boundary, solves densely, and returns the max nodal error.
func solveDirichletProblem(t *testing.T, g *grid.Mesh, pde ScalarPDE, exact func([]float64) float64) float64 {
	t.Helper()
	a, b := AssembleScalar(g, pde)
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = exact(g.Coord(n))
		}
	}
	ApplyDirichlet(a, b, bc)
	x := solveDense(t, a, b)
	var maxErr float64
	for n := 0; n < g.NumNodes(); n++ {
		if e := math.Abs(x[n] - exact(g.Coord(n))); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestPoisson3DConvergenceOrder(t *testing.T) {
	// u = e^x·sin(y) is harmonic (also in 3D), non-polynomial — so the
	// discrete solution is not nodally exact and the error must decay
	// O(h²). (Low-degree harmonic polynomials are reproduced exactly by
	// the symmetric Kuhn mesh and would make this test vacuous.)
	exact := func(x []float64) float64 { return math.Exp(x[0]) * math.Sin(x[1]) }
	var errs []float64
	for _, m := range []int{3, 5, 9} {
		errs = append(errs, solveDirichletProblem(t, grid.UnitCubeTet(m),
			ScalarPDE{Diffusion: 1}, exact))
	}
	if errs[0] < errs[1] || errs[1] < errs[2] {
		t.Fatalf("3D errors not decreasing: %v", errs)
	}
	if ratio := errs[1] / errs[2]; ratio < 2.5 {
		t.Fatalf("3D convergence ratio %v, want ≳4 (errors %v)", ratio, errs)
	}
}

func TestQuarterRingPoissonHarmonic(t *testing.T) {
	// u = log(r) is harmonic on the annulus; the curvilinear grid must
	// approximate it with errors decaying under refinement.
	exact := func(x []float64) float64 { return 0.5 * math.Log(x[0]*x[0]+x[1]*x[1]) }
	e1 := solveDirichletProblem(t, grid.QuarterRing(5, 7), ScalarPDE{Diffusion: 1}, exact)
	e2 := solveDirichletProblem(t, grid.QuarterRing(9, 13), ScalarPDE{Diffusion: 1}, exact)
	if e2 >= e1 {
		t.Fatalf("quarter-ring errors not decreasing: %v -> %v", e1, e2)
	}
	if e2 > 2e-3 {
		t.Fatalf("quarter-ring error %v too large", e2)
	}
}

func TestUnstructuredConvergence(t *testing.T) {
	// On the jittered plate-with-hole grid: u = e^x·sin(y) is harmonic
	// (note: the paper's x·e^y is NOT — Δ(x·e^y) = x·e^y), so with f = 0
	// the errors must decay under refinement despite the irregular
	// elements.
	exact := func(x []float64) float64 { return math.Exp(x[0]) * math.Sin(x[1]) }
	e1 := solveDirichletProblem(t, grid.PlateWithHole(14), ScalarPDE{Diffusion: 1}, exact)
	e2 := solveDirichletProblem(t, grid.PlateWithHole(26), ScalarPDE{Diffusion: 1}, exact)
	if e2 >= e1 {
		t.Fatalf("unstructured errors not decreasing: %v -> %v", e1, e2)
	}
}

func TestElasticityEnergyPositive(t *testing.T) {
	// Strain energy ½uᵀKu must be positive for non-rigid displacement
	// fields and zero for translations.
	g := grid.QuarterRing(5, 6)
	a, _ := AssembleElasticity(g, 1, 2, nil)
	n := a.Rows

	u := make([]float64, n)
	for node := 0; node < n/2; node++ {
		c := g.Coord(node)
		u[2*node] = c[0] * c[0]
		u[2*node+1] = -c[1]
	}
	if e := energy(a, u); e <= 0 {
		t.Fatalf("strain energy %v for deforming field, want > 0", e)
	}
	tr := make([]float64, n)
	for node := 0; node < n/2; node++ {
		tr[2*node] = 3
		tr[2*node+1] = -7
	}
	if e := energy(a, tr); math.Abs(e) > 1e-9 {
		t.Fatalf("translation energy %v, want 0", e)
	}
}

func energy(a interface {
	MulVec(x []float64) []float64
}, u []float64) float64 {
	au := a.MulVec(u)
	var e float64
	for i := range u {
		e += u[i] * au[i]
	}
	return e / 2
}

func TestSUPGConsistencyOrder(t *testing.T) {
	// SUPG is a consistent stabilization: for a smooth exact solution of
	// a moderately convective problem the error must still decay under
	// refinement.
	v := []float64{3, 2}
	exact := func(x []float64) float64 { return math.Sin(math.Pi*x[0]) * math.Sin(math.Pi*x[1]) }
	src := func(x []float64) float64 {
		// −Δu + v·∇u for the u above.
		pi := math.Pi
		lap := 2 * pi * pi * exact(x)
		conv := v[0]*pi*math.Cos(pi*x[0])*math.Sin(pi*x[1]) + v[1]*pi*math.Sin(pi*x[0])*math.Cos(pi*x[1])
		return lap + conv
	}
	var errs []float64
	for _, m := range []int{5, 9, 17} {
		errs = append(errs, solveDirichletProblem(t, grid.UnitSquareTri(m),
			ScalarPDE{Diffusion: 1, Velocity: v, SUPG: true, Source: src}, exact))
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Fatalf("SUPG errors not decreasing: %v", errs)
	}
}

func TestGeometryMeasuresMatchOrientation(t *testing.T) {
	// Swapping two nodes of an element flips orientation but must not
	// change the assembled stiffness (the paper's unstructured mesh has
	// mixed orientations).
	g := grid.UnitSquareTri(4)
	a1, _ := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	// Flip the first triangle's orientation.
	g.Elems[0], g.Elems[1] = g.Elems[1], g.Elems[0]
	a2, _ := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	for i := 0; i < a1.Rows; i++ {
		for j := 0; j < a1.Cols; j++ {
			if math.Abs(a1.At(i, j)-a2.At(i, j)) > 1e-13 {
				t.Fatalf("orientation flip changed stiffness at (%d,%d)", i, j)
			}
		}
	}
}

func TestVariableDiffusionPatch(t *testing.T) {
	// With smooth k(x) and a linear exact solution, −∇·(k∇u) = −∇k·∇u;
	// pass that as the source and the patch test must hold (piecewise-
	// constant k sampling is exact for the stiffness of linear u only up
	// to quadrature — use k linear so centroid sampling is exact).
	g := grid.UnitSquareTri(7)
	kfn := func(x []float64) float64 { return 1 + x[0] }
	u := func(x []float64) float64 { return 2 * x[1] } // ∇u = (0,2): ∇k·∇u = 0
	a, b := AssembleScalar(g, ScalarPDE{Diffusion: 1, DiffusionFn: kfn})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = u(g.Coord(n))
		}
	}
	ApplyDirichlet(a, b, bc)
	x := solveDense(t, a, b)
	for n := 0; n < g.NumNodes(); n++ {
		if math.Abs(x[n]-u(g.Coord(n))) > 1e-9 {
			t.Fatalf("variable-coefficient patch failed at %d", n)
		}
	}
}

func TestJumpCoefficientStillSPD(t *testing.T) {
	g := grid.UnitSquareTri(9)
	a, _ := AssembleScalar(g, ScalarPDE{
		Diffusion:   1,
		DiffusionFn: func(x []float64) float64 { return 1 + 999*x[0] },
	})
	if !isSymmetric(a, 1e-12) {
		t.Fatal("variable-coefficient stiffness not symmetric")
	}
}

func TestAssembleScalarRowsUnionEqualsGlobal(t *testing.T) {
	// In-package equivalence check (the distributed-system level is
	// covered in dsys): summing all ranks' slabs reproduces the global
	// assembly up to rounding.
	g := grid.UnitSquareTri(9)
	pde := ScalarPDE{
		Diffusion: 2,
		Velocity:  []float64{10, 5},
		SUPG:      true,
		Source:    func(x []float64) float64 { return x[0] },
	}
	aG, bG := AssembleScalar(g, pde)
	n := g.NumNodes()
	part := make([]int, n)
	for i := range part {
		part[i] = i % 3
	}
	sumB := make([]float64, n)
	type cell struct{ i, j int }
	sum := map[cell]float64{}
	for r := 0; r < 3; r++ {
		r := r
		slab, rb := AssembleScalarRows(g, pde, func(node int) bool { return part[node] == r })
		for i := 0; i < n; i++ {
			cols, vals := slab.Row(i)
			for k, j := range cols {
				sum[cell{i, j}] += vals[k]
			}
			sumB[i] += rb[i]
		}
	}
	if len(sum) != aG.NNZ() {
		t.Fatalf("pattern sizes differ: %d vs %d", len(sum), aG.NNZ())
	}
	for i := 0; i < n; i++ {
		cols, vals := aG.Row(i)
		for k, j := range cols {
			if math.Abs(sum[cell{i, j}]-vals[k]) > 1e-11*(1+math.Abs(vals[k])) {
				t.Fatalf("entry (%d,%d) differs", i, j)
			}
		}
		if math.Abs(sumB[i]-bG[i]) > 1e-12 {
			t.Fatalf("rhs %d differs", i)
		}
	}
}

func TestApplyDirichletRowsMatchesGlobal(t *testing.T) {
	g := grid.UnitSquareTri(7)
	pde := ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }}
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = float64(n % 3)
		}
	}
	aG, bG := AssembleScalar(g, pde)
	ApplyDirichlet(aG, bG, bc)

	all := func(int) bool { return true }
	aR, bR := AssembleScalarRows(g, pde, all)
	ApplyDirichletRows(aR, bR, bc, all)
	for i := 0; i < aG.Rows; i++ {
		cols, vals := aG.Row(i)
		for k, j := range cols {
			if math.Abs(aR.At(i, j)-vals[k]) > 1e-12 {
				t.Fatalf("(%d,%d) differs after Dirichlet", i, j)
			}
		}
		if math.Abs(bR[i]-bG[i]) > 1e-12 {
			t.Fatalf("rhs %d differs after Dirichlet", i)
		}
	}
}
