// Package positive holds code every errdrop run must flag.
package positive

import "os"

// Persist drops both the sync and the close error: data loss would be
// silent.
func Persist(path string, data []byte) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Write(data) // WANT errdrop
	f.Sync()      // WANT errdrop
	f.Close()     // WANT errdrop
}

// Cleanup ignores the removal error.
func Cleanup(path string) {
	os.Remove(path) // WANT errdrop
}
