package partition

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"parapre/internal/grid"
)

func meshGraph(m *grid.Mesh) *Graph {
	ptr, adj := m.NodeGraph()
	return &Graph{Ptr: ptr, Adj: adj}
}

// mustGeneral partitions or fails the test — for the many call sites that
// exercise legal inputs and only care about the resulting partition.
func mustGeneral(t *testing.T, g *Graph, p int, seed int64) []int {
	t.Helper()
	part, err := General(g, p, seed)
	if err != nil {
		t.Fatalf("General(p=%d, seed=%d): %v", p, seed, err)
	}
	return part
}

func checkPartition(t *testing.T, g *Graph, part []int, p int, maxImbalance float64) {
	t.Helper()
	if len(part) != g.NumVertices() {
		t.Fatalf("part length %d, want %d", len(part), g.NumVertices())
	}
	sizes := Sizes(part, p)
	for q, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d empty (sizes %v)", q, sizes)
		}
	}
	if im := Imbalance(part, p); im > maxImbalance {
		t.Fatalf("imbalance %v > %v (sizes %v)", im, maxImbalance, sizes)
	}
	for _, q := range part {
		if q < 0 || q >= p {
			t.Fatalf("part id %d out of range [0,%d)", q, p)
		}
	}
}

func TestGeneralPartitionSquare(t *testing.T) {
	g := meshGraph(grid.UnitSquareTri(33))
	for _, p := range []int{2, 3, 4, 7, 8, 16} {
		part := mustGeneral(t, g, p, 42)
		checkPartition(t, g, part, p, 1.30)
	}
}

func TestGeneralPartitionCube(t *testing.T) {
	g := meshGraph(grid.UnitCubeTet(9))
	for _, p := range []int{2, 4, 8} {
		part := mustGeneral(t, g, p, 1)
		checkPartition(t, g, part, p, 1.35)
	}
}

func TestGeneralPartitionUnstructured(t *testing.T) {
	g := meshGraph(grid.PlateWithHole(28))
	part := mustGeneral(t, g, 8, 7)
	checkPartition(t, g, part, 8, 1.35)
}

func TestGeneralPartitionDeterministicPerSeed(t *testing.T) {
	g := meshGraph(grid.UnitSquareTri(17))
	a := mustGeneral(t, g, 8, 5)
	b := mustGeneral(t, g, 8, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
	c := mustGeneral(t, g, 8, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical partitions — the paper's machine-dependent partitioning cannot be reproduced")
	}
}

func TestGeneralPartitionCutReasonable(t *testing.T) {
	// A 33×33 grid split into 4 parts: the optimal cut is ~2·33 edges
	// (two straight cuts, counting diagonal edges ~4·33). The partitioner
	// must stay within a small factor of that.
	m := 33
	g := meshGraph(grid.UnitSquareTri(m))
	part := mustGeneral(t, g, 4, 3)
	cut := EdgeCut(g, part)
	if cut > 8*m {
		t.Fatalf("edge cut %d too large for %d×%d grid in 4 parts", cut, m, m)
	}
	if cut == 0 {
		t.Fatal("zero edge cut impossible for a connected grid")
	}
}

func TestGeneralP1(t *testing.T) {
	g := meshGraph(grid.UnitSquareTri(5))
	part := mustGeneral(t, g, 1, 0)
	for _, q := range part {
		if q != 0 {
			t.Fatal("p=1 must assign everything to part 0")
		}
	}
}

func TestGeneralRejectsBadP(t *testing.T) {
	g := meshGraph(grid.UnitSquareTri(3))
	for _, p := range []int{0, -1} {
		part, err := General(g, p, 0)
		if err == nil {
			t.Errorf("p=%d accepted", p)
			continue
		}
		if part != nil {
			t.Errorf("p=%d returned a partition alongside the error", p)
		}
		var pe *PartitionError
		if !errors.As(err, &pe) {
			t.Errorf("p=%d error is %T, want *PartitionError", p, err)
			continue
		}
		if pe.P != p || pe.N != g.NumVertices() {
			t.Errorf("p=%d error carries P=%d N=%d, want P=%d N=%d",
				p, pe.P, pe.N, p, g.NumVertices())
		}
	}
}

func TestGeneralRejectsMalformedGraph(t *testing.T) {
	// Ptr[n] must equal len(Adj); a truncated adjacency must be caught
	// before the partitioner walks off the end of it.
	g := &Graph{Ptr: []int{0, 1, 3, 5, 6}, Adj: []int{1, 0, 2}}
	if _, err := General(g, 2, 0); err == nil {
		t.Fatal("malformed adjacency accepted")
	} else {
		var pe *PartitionError
		if !errors.As(err, &pe) {
			t.Fatalf("error is %T, want *PartitionError", err)
		}
	}
}

func TestGeneralPExceedsVertices(t *testing.T) {
	// p > n is a legal degenerate request: every vertex gets its own part
	// and the parts ≥ n stay empty (unavoidable).
	g := meshGraph(grid.UnitSquareTri(3))
	n := g.NumVertices()
	p := n + 5
	part := mustGeneral(t, g, p, 0)
	if len(part) != n {
		t.Fatalf("partition length %d, want %d", len(part), n)
	}
	seen := make([]bool, p)
	for v, q := range part {
		if q < 0 || q >= p {
			t.Fatalf("vertex %d assigned to invalid part %d", v, q)
		}
		if seen[q] {
			t.Fatalf("part %d holds more than one vertex while others are empty", q)
		}
		seen[q] = true
	}
}

func TestSimplePartitionBoxes(t *testing.T) {
	m := grid.UnitSquareTri(16)
	part := Simple(m.X, 2, 4)
	checkPartition(t, meshGraph(m), part, 4, 1.10)
	// Each part must be an axis-aligned rectangle: the set of (x, y) in a
	// part has x-range and y-range that no other point of a different part
	// intrudes into. Verify via cut structure: the edge cut of a 4-box
	// split of a 16×16 grid is close to 2 straight cuts.
	g := meshGraph(m)
	cut := EdgeCut(g, part)
	if cut > 6*16 {
		t.Fatalf("simple partition cut %d, want near-minimal", cut)
	}
}

func TestSimplePartition3D(t *testing.T) {
	m := grid.UnitCubeTet(8)
	part := Simple(m.X, 3, 8)
	checkPartition(t, meshGraph(m), part, 8, 1.15)
}

func TestSimplePartitionNonPowerOfTwo(t *testing.T) {
	m := grid.UnitSquareTri(15)
	part := Simple(m.X, 2, 6) // 3×2 boxes
	checkPartition(t, meshGraph(m), part, 6, 1.25)
}

func TestFactorAxes(t *testing.T) {
	cases := []struct {
		p, dim int
		want   []int
	}{
		{16, 2, []int{4, 4}},
		{8, 2, []int{4, 2}},
		{16, 3, []int{4, 2, 2}},
		{6, 2, []int{3, 2}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := factorAxes(c.p, c.dim)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("factorAxes(%d,%d) = %v, want %v", c.p, c.dim, got, c.want)
				break
			}
		}
	}
}

func TestEdgeCutAndSizes(t *testing.T) {
	// Path graph 0-1-2-3 split in the middle: cut = 1.
	g := &Graph{Ptr: []int{0, 1, 3, 5, 6}, Adj: []int{1, 0, 2, 1, 3, 2}}
	part := []int{0, 0, 1, 1}
	if got := EdgeCut(g, part); got != 1 {
		t.Fatalf("EdgeCut = %d, want 1", got)
	}
	s := Sizes(part, 2)
	if s[0] != 2 || s[1] != 2 {
		t.Fatalf("Sizes = %v", s)
	}
	if im := Imbalance(part, 2); im != 1 {
		t.Fatalf("Imbalance = %v, want 1", im)
	}
}

func TestRefineImprovesRandomSplit(t *testing.T) {
	// Start from the grown region and verify refinement never worsens the
	// cut versus a fully random assignment baseline.
	m := grid.UnitSquareTri(21)
	g := meshGraph(m)
	part := mustGeneral(t, g, 2, 11)
	cut := EdgeCut(g, part)
	// Random assignment cuts ~half of all edges.
	random := make([]int, g.NumVertices())
	for i := range random {
		random[i] = (i * 2654435761) >> 16 & 1
	}
	randCut := EdgeCut(g, random)
	if cut*4 > randCut {
		t.Fatalf("partitioned cut %d not clearly better than random %d", cut, randCut)
	}
}

func TestGeneralPartitionElasticityDofMapping(t *testing.T) {
	// Partitioning happens on nodes; dof expansion must keep pairs
	// together. Simulate what core.Partition does for 2 dof/node.
	m := grid.QuarterRing(9, 9)
	ptr, adj := m.NodeGraph()
	g := &Graph{Ptr: ptr, Adj: adj}
	nodePart := mustGeneral(t, g, 4, 3)
	for n := 0; n < m.NumNodes(); n++ {
		_ = n
	}
	// Expand and check pairing.
	part := make([]int, 2*m.NumNodes())
	for n := 0; n < m.NumNodes(); n++ {
		part[2*n] = nodePart[n]
		part[2*n+1] = nodePart[n]
	}
	for n := 0; n < m.NumNodes(); n++ {
		if part[2*n] != part[2*n+1] {
			t.Fatal("dof pair split across subdomains")
		}
	}
}

func TestImbalanceWorstCase(t *testing.T) {
	part := []int{0, 0, 0, 1}
	if got := Imbalance(part, 2); got != 1.5 {
		t.Fatalf("Imbalance = %v, want 1.5", got)
	}
}

func TestSimplePartitionJitteredCoordinates(t *testing.T) {
	// The quantile-based simple scheme must stay balanced on the jittered
	// unstructured mesh too (it splits by population, not geometry).
	m := grid.PlateWithHole(24)
	part := Simple(m.X, 2, 6)
	checkPartition(t, meshGraph(m), part, 6, 1.40)
}

func TestGeneralPartitionPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(80)
		// Random connected-ish graph: a ring plus chords (symmetric).
		ptr := make([]int, 0, n+1)
		adjSet := make([]map[int]bool, n)
		for i := range adjSet {
			adjSet[i] = map[int]bool{}
		}
		link := func(a, b int) {
			if a != b {
				adjSet[a][b] = true
				adjSet[b][a] = true
			}
		}
		for i := 0; i < n; i++ {
			link(i, (i+1)%n)
			link(i, rng.Intn(n))
		}
		var adj []int
		ptr = append(ptr, 0)
		for i := 0; i < n; i++ {
			for j := range adjSet[i] {
				adj = append(adj, j)
			}
			sort.Ints(adj[ptr[i]:])
			ptr = append(ptr, len(adj))
		}
		g := &Graph{Ptr: ptr, Adj: adj}
		p := 2 + rng.Intn(4)
		if p > n {
			p = n
		}
		part, err := General(g, p, seed)
		if err != nil {
			return false
		}
		sizes := Sizes(part, p)
		for _, s := range sizes {
			if s == 0 {
				return false
			}
		}
		for _, q := range part {
			if q < 0 || q >= p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralDisconnectedWithIsolatedVertices(t *testing.T) {
	// A graph with several components and isolated vertices (no neighbors
	// at all): region growing cannot reach the isolated vertices from any
	// frontier, and odd part counts force uneven recursive splits. The
	// partitioner must still assign every vertex a valid part and keep all
	// parts nonempty.
	//
	// Layout: two 8-vertex paths, one 4-cycle, and 5 isolated vertices.
	var ptr []int
	var adj []int
	ptr = append(ptr, 0)
	addPath := func(start, n int) {
		for i := 0; i < n; i++ {
			if i > 0 {
				adj = append(adj, start+i-1)
			}
			if i < n-1 {
				adj = append(adj, start+i+1)
			}
			ptr = append(ptr, len(adj))
		}
	}
	addPath(0, 8)
	addPath(8, 8)
	// 4-cycle on vertices 16..19.
	for i := 0; i < 4; i++ {
		adj = append(adj, 16+(i+3)%4, 16+(i+1)%4)
		ptr = append(ptr, len(adj))
	}
	// Isolated vertices 20..24.
	for i := 0; i < 5; i++ {
		ptr = append(ptr, len(adj))
	}
	g := &Graph{Ptr: ptr, Adj: adj}
	n := g.NumVertices()
	if n != 25 {
		t.Fatalf("test graph has %d vertices, want 25", n)
	}
	for _, p := range []int{2, 3, 5, 7} {
		for _, seed := range []int64{0, 1, 9} {
			part, err := General(g, p, seed)
			if err != nil {
				t.Fatalf("p=%d seed=%d: %v", p, seed, err)
			}
			if len(part) != n {
				t.Fatalf("p=%d: partition length %d, want %d", p, len(part), n)
			}
			sizes := Sizes(part, p)
			for q, s := range sizes {
				if s == 0 {
					t.Fatalf("p=%d seed=%d: part %d empty (sizes %v)", p, seed, q, sizes)
				}
			}
			for v, q := range part {
				if q < 0 || q >= p {
					t.Fatalf("p=%d: vertex %d assigned invalid part %d", p, v, q)
				}
			}
		}
	}
}
