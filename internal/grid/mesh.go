// Package grid builds the computational grids of the paper's six test
// cases (§3): structured triangulations of the unit square, Kuhn
// tetrahedralizations of the unit cube, a curvilinear structured grid of a
// quarter ring, and a synthetic unstructured triangulation standing in for
// the paper's 521,185-node "special domain" of Test Case 3.
package grid

import "fmt"

// Mesh is a conforming simplicial mesh: triangles in 2D (NPE = 3) or
// tetrahedra in 3D (NPE = 4). Node coordinates are stored interleaved,
// Dim values per node; element connectivity is flattened, NPE node ids per
// element.
type Mesh struct {
	Dim   int       // spatial dimension, 2 or 3
	NPE   int       // nodes per element, 3 or 4
	X     []float64 // len = NumNodes()*Dim
	Elems []int     // len = NumElems()*NPE
}

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.X) / m.Dim }

// NumElems returns the element count.
func (m *Mesh) NumElems() int { return len(m.Elems) / m.NPE }

// Coord returns the coordinates of node n (a view into the mesh storage).
func (m *Mesh) Coord(n int) []float64 { return m.X[n*m.Dim : (n+1)*m.Dim] }

// Elem returns the node ids of element e (a view into the mesh storage).
func (m *Mesh) Elem(e int) []int { return m.Elems[e*m.NPE : (e+1)*m.NPE] }

// String returns a short summary.
func (m *Mesh) String() string {
	kind := "tri"
	if m.NPE == 4 {
		kind = "tet"
	}
	return fmt.Sprintf("Mesh{%dD %s, %d nodes, %d elems}", m.Dim, kind, m.NumNodes(), m.NumElems())
}

// Check validates structural invariants: coordinate/connectivity lengths
// divisible by Dim/NPE, element node ids in range and distinct.
func (m *Mesh) Check() error {
	if m.Dim != 2 && m.Dim != 3 {
		return fmt.Errorf("grid: dimension %d unsupported", m.Dim)
	}
	if m.NPE != m.Dim+1 {
		return fmt.Errorf("grid: %dD mesh must have %d nodes per element, has %d", m.Dim, m.Dim+1, m.NPE)
	}
	if len(m.X)%m.Dim != 0 {
		return fmt.Errorf("grid: coordinate array length %d not divisible by dim %d", len(m.X), m.Dim)
	}
	if len(m.Elems)%m.NPE != 0 {
		return fmt.Errorf("grid: connectivity length %d not divisible by NPE %d", len(m.Elems), m.NPE)
	}
	nn := m.NumNodes()
	for e := 0; e < m.NumElems(); e++ {
		el := m.Elem(e)
		for i, a := range el {
			if a < 0 || a >= nn {
				return fmt.Errorf("grid: element %d references node %d (of %d)", e, a, nn)
			}
			for _, b := range el[:i] {
				if a == b {
					return fmt.Errorf("grid: element %d has repeated node %d", e, a)
				}
			}
		}
	}
	return nil
}

// NodeGraph returns the node adjacency of the mesh in CSR-like form:
// adj[ptr[i]:ptr[i+1]] lists the distinct neighbors of node i (nodes
// sharing at least one element with i, excluding i itself), sorted. This is
// exactly the sparsity graph of the assembled FEM matrix, which is what the
// partitioner operates on.
func (m *Mesh) NodeGraph() (ptr, adj []int) {
	nn := m.NumNodes()
	// First pass: count element memberships per node.
	deg := make([]int, nn)
	for e := 0; e < m.NumElems(); e++ {
		for _, a := range m.Elem(e) {
			deg[a] += m.NPE - 1
		}
	}
	ptr = make([]int, nn+1)
	for i := 0; i < nn; i++ {
		ptr[i+1] = ptr[i] + deg[i]
	}
	adj = make([]int, ptr[nn])
	next := append([]int(nil), ptr[:nn]...)
	for e := 0; e < m.NumElems(); e++ {
		el := m.Elem(e)
		for _, a := range el {
			for _, b := range el {
				if a != b {
					adj[next[a]] = b
					next[a]++
				}
			}
		}
	}
	// Deduplicate per node.
	out := adj[:0]
	w := 0
	for i := 0; i < nn; i++ {
		lo, hi := ptr[i], ptr[i+1]
		seg := adj[lo:hi]
		insertionSortInts(seg)
		start := w
		prev := -1
		for _, v := range seg {
			if v != prev {
				out = append(out, v)
				w++
				prev = v
			}
		}
		ptr[i] = start
	}
	ptr[nn] = w
	// ptr was rewritten in place during compaction: shift to canonical form.
	// (ptr[i] currently holds the compacted start of node i.)
	return ptr, out
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// BoundaryNodes returns a marker slice: true for every node lying on the
// topological boundary of the mesh (incident to a facet that belongs to
// exactly one element). This works for multiply-connected domains such as
// the plate-with-hole mesh, where geometric predicates would not.
func (m *Mesh) BoundaryNodes() []bool {
	onB := make([]bool, m.NumNodes())
	type facet [3]int // sorted node ids; third is -1 in 2D
	count := make(map[facet]int)
	record := func(f facet) { count[f]++ }
	for e := 0; e < m.NumElems(); e++ {
		el := m.Elem(e)
		if m.NPE == 3 {
			record(newFacet2(el[0], el[1]))
			record(newFacet2(el[1], el[2]))
			record(newFacet2(el[2], el[0]))
		} else {
			record(newFacet3(el[0], el[1], el[2]))
			record(newFacet3(el[0], el[1], el[3]))
			record(newFacet3(el[0], el[2], el[3]))
			record(newFacet3(el[1], el[2], el[3]))
		}
	}
	for f, c := range count {
		if c == 1 {
			onB[f[0]] = true
			onB[f[1]] = true
			if f[2] >= 0 {
				onB[f[2]] = true
			}
		}
	}
	return onB
}

func newFacet2(a, b int) [3]int {
	if a > b {
		a, b = b, a
	}
	return [3]int{a, b, -1}
}

func newFacet3(a, b, c int) [3]int {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int{a, b, c}
}
