package dist

import (
	"math/rand"
	"testing"
)

// TestManyRanksMixedTraffic stresses the communicator with 32 ranks doing
// interleaved point-to-point rings and collectives — a miniature of what
// a full preconditioned solve does, checking nothing deadlocks and all
// values arrive intact.
func TestManyRanksMixedTraffic(t *testing.T) {
	const p = 32
	const rounds = 25
	stats := Run(p, testMachine(), func(c *Comm) {
		r := c.Rank()
		next := (r + 1) % p
		prev := (r + p - 1) % p
		acc := float64(r)
		for round := 0; round < rounds; round++ {
			c.Send(next, round, []float64{acc})
			got := c.Recv(prev, round)
			acc = got[0] + 1
			// Interleave a collective every few rounds.
			if round%3 == 0 {
				sum := c.AllReduceSum(acc)
				if sum <= 0 {
					t.Errorf("rank %d round %d: sum %v", r, round, sum)
					return
				}
			}
		}
		// After `rounds` ring hops, the value originated at rank
		// (r − rounds) mod p and gained +1 per hop.
		want := float64((r-rounds%p+p)%p + rounds)
		if acc != want {
			t.Errorf("rank %d: acc %v, want %v", r, acc, want)
		}
	})
	for _, s := range stats {
		if s.MsgsSent != rounds {
			t.Fatalf("rank %d sent %d messages, want %d", s.Rank, s.MsgsSent, rounds)
		}
	}
}

// TestClockMonotone verifies that a rank's virtual clock never decreases
// across a random sequence of operations.
func TestClockMonotone(t *testing.T) {
	const p = 4
	Run(p, testMachine(), func(c *Comm) {
		// All ranks draw the same operation sequence (collectives must be
		// called in the same order everywhere); only the Compute amounts
		// differ per rank.
		rng := rand.New(rand.NewSource(99))
		last := 0.0
		check := func() {
			now := c.Stats().Clock
			if now < last {
				t.Errorf("rank %d: clock went backwards: %v -> %v", c.Rank(), last, now)
			}
			last = now
		}
		for i := 0; i < 50; i++ {
			switch rng.Intn(3) {
			case 0:
				c.Compute(float64(rng.Intn(1000) * (c.Rank() + 1)))
			case 1:
				c.Barrier()
			case 2:
				c.AllReduceSum(1)
			}
			check()
		}
	})
}

// TestCollectiveOrderIndependence: the deterministic rank-ordered
// combining must give identical results across repeated runs even though
// goroutine arrival order varies.
func TestCollectiveOrderIndependence(t *testing.T) {
	const p = 8
	run := func() []float64 {
		out := make([]float64, p)
		Run(p, testMachine(), func(c *Comm) {
			// Rank-dependent fp values whose sum depends on order.
			v := 1e-16 * float64(c.Rank()*c.Rank())
			if c.Rank() == 0 {
				v = 1.0
			}
			s := v
			for i := 0; i < 30; i++ {
				s = c.AllReduceSum(s) / float64(p)
			}
			out[c.Rank()] = s
		})
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v != %v across runs", i, a[i], b[i])
		}
	}
}

// TestSendRecvFIFOPerPair: messages between a fixed ordered pair must
// arrive in send order.
func TestSendRecvFIFOPerPair(t *testing.T) {
	Run(2, testMachine(), func(c *Comm) {
		const k = 8 // channel buffer capacity; stay within it
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				c.Send(1, 5, []float64{float64(i)})
			}
		} else {
			for i := 0; i < k; i++ {
				got := c.Recv(0, 5)
				if got[0] != float64(i) {
					t.Errorf("message %d arrived out of order: %v", i, got[0])
					return
				}
			}
		}
	})
}

// TestBytesAccounting checks the 8-bytes-per-float64 accounting.
func TestBytesAccounting(t *testing.T) {
	stats := Run(2, testMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 10))
			c.Send(1, 1, make([]float64, 3))
		} else {
			c.Recv(0, 0)
			c.Recv(0, 1)
		}
	})
	if stats[0].BytesSent != 8*13 {
		t.Fatalf("bytes sent %d, want %d", stats[0].BytesSent, 8*13)
	}
	if stats[1].BytesSent != 0 {
		t.Fatalf("receiver reported %d bytes sent", stats[1].BytesSent)
	}
}

// TestEmptyMessage: zero-length payloads are legal (used by protocols
// with pure synchronization semantics).
func TestEmptyMessage(t *testing.T) {
	Run(2, testMachine(), func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, nil)
		} else {
			if got := c.Recv(0, 9); len(got) != 0 {
				t.Errorf("expected empty message, got %v", got)
			}
		}
	})
}

// TestAllGatherUnevenAndEmpty exercises zero-length contributions.
func TestAllGatherUnevenAndEmpty(t *testing.T) {
	const p = 3
	counts := []int{0, 2, 1}
	Run(p, testMachine(), func(c *Comm) {
		var mine []float64
		switch c.Rank() {
		case 1:
			mine = []float64{10, 11}
		case 2:
			mine = []float64{20}
		}
		got := c.AllGather(mine, counts)
		want := []float64{10, 11, 20}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d: AllGather %v", c.Rank(), got)
				return
			}
		}
	})
}
