// Package order provides fill-reducing orderings for the subdomain
// factorizations — the SPARSKIT-era companion of the ILU preconditioners.
// Reverse Cuthill–McKee concentrates the matrix profile near the
// diagonal, which reduces the fill an ILUT factorization discards and
// typically improves its quality at fixed lfil.
package order

import (
	"sort"

	"parapre/internal/sparse"
)

// RCM returns the reverse Cuthill–McKee permutation (new→old) of the
// symmetrized sparsity graph of a. Disconnected components are ordered
// one after another, each from its own pseudo-peripheral start.
func RCM(a *sparse.CSR) sparse.Perm {
	n := a.Rows
	adj := symmetrizedAdj(a)
	deg := func(v int) int { return len(adj[v]) }

	visited := make([]bool, n)
	order := make([]int, 0, n)
	buf := make([]int, 0, n)

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		s := pseudoPeripheral(adj, start)
		// BFS with degree-sorted neighbor expansion (Cuthill–McKee).
		visited[s] = true
		queue := append(buf[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			order = append(order, v)
			nbrs := make([]int, 0, len(adj[v]))
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(x, y int) bool { return deg(nbrs[x]) < deg(nbrs[y]) })
			queue = append(queue, nbrs...)
		}
	}
	// Reverse for RCM.
	perm := make(sparse.Perm, n)
	for i, v := range order {
		perm[n-1-i] = v
	}
	return perm
}

// pseudoPeripheral finds an approximately peripheral vertex by repeated
// BFS to the farthest level (the George–Liu heuristic).
func pseudoPeripheral(adj [][]int, start int) int {
	v := start
	lastEcc := -1
	for iter := 0; iter < 8; iter++ {
		levels, far := bfsLevels(adj, v)
		if levels <= lastEcc {
			break
		}
		lastEcc = levels
		v = far
	}
	return v
}

// bfsLevels returns the eccentricity of v within its component and a
// minimum-degree vertex of the last level.
func bfsLevels(adj [][]int, v int) (int, int) {
	dist := map[int]int{v: 0}
	queue := []int{v}
	lastLevel := []int{v}
	depth := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range adj[u] {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				if dist[w] > depth {
					depth = dist[w]
					lastLevel = lastLevel[:0]
				}
				if dist[w] == depth {
					lastLevel = append(lastLevel, w)
				}
				queue = append(queue, w)
			}
		}
	}
	best := lastLevel[0]
	for _, w := range lastLevel {
		if len(adj[w]) < len(adj[best]) {
			best = w
		}
	}
	return depth, best
}

func symmetrizedAdj(a *sparse.CSR) [][]int {
	n := a.Rows
	set := make([]map[int]bool, n)
	for i := range set {
		set[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if j != i && j < n {
				set[i][j] = true
				set[j][i] = true
			}
		}
	}
	adj := make([][]int, n)
	for i := range adj {
		for j := range set[i] {
			adj[i] = append(adj[i], j)
		}
		sort.Ints(adj[i])
	}
	return adj
}

// Bandwidth returns max|i−j| over the stored entries of a.
func Bandwidth(a *sparse.CSR) int {
	b := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > b {
				b = d
			}
		}
	}
	return b
}

// Profile returns the sum over rows of (i − min column in row i), the
// envelope size that RCM minimizes heuristically.
func Profile(a *sparse.CSR) int {
	p := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		minJ := i
		for _, j := range cols {
			if j < minJ {
				minJ = j
			}
		}
		p += i - minJ
	}
	return p
}
