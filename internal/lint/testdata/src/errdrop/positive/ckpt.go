package positive

// The shapes of the durability APIs (ckpt.Sink.PutShard, socket
// Client.Close, ckpt.Load): a dropped error here means a checkpoint that
// silently never became durable, or a transport teardown whose failure
// is invisible — exactly the losses the restart path cannot survive.

type rankState struct{}

type sink struct{}

func (sink) PutShard(seq, iter uint64, p int, rs *rankState) error { return nil }

type client struct{}

func (client) Close() error { return nil }

func load(path string) (*rankState, error) { return nil, nil }

// Snapshot drops the shard-write error: the solve continues believing
// the checkpoint is durable.
func Snapshot(s sink, rs *rankState) {
	s.PutShard(1, 10, 4, rs) // WANT errdrop
}

// Teardown drops both the transport close and the restore-load error.
func Teardown(c client, path string) {
	c.Close()  // WANT errdrop
	load(path) // WANT errdrop
}
