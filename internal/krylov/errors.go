package krylov

import (
	"errors"
	"fmt"
	"math"
)

// ErrBreakdown is the sentinel all solver breakdown errors wrap. Callers
// test for it with errors.Is(res.Err, krylov.ErrBreakdown).
var ErrBreakdown = errors.New("krylov: breakdown")

// ErrCanceled is the sentinel a cooperatively stopped solve wraps: the
// caller's Options.Stop returned true at an iteration boundary and the
// solver returned with its current (uncontaminated) iterate. Callers test
// for it with errors.Is(res.Err, krylov.ErrCanceled).
var ErrCanceled = errors.New("krylov: canceled")

// CanceledError records where a solve was cooperatively stopped. It wraps
// ErrCanceled. Unlike a breakdown, a canceled solve's iterate is the last
// completed restart's (GMRES) or iteration's (CG) — valid, just not
// converged.
type CanceledError struct {
	Method    string // "GMRES", "FGMRES" or "CG"
	Iteration int    // matrix-vector products performed when stopped
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("krylov: %s canceled at iteration %d", e.Method, e.Iteration)
}

// Unwrap makes errors.Is(e, ErrCanceled) true.
func (e *CanceledError) Unwrap() error { return ErrCanceled }

// canceledErr builds the solver-side cancellation record.
func canceledErr(method string, iter int) *CanceledError {
	//lint:ignore allocfree cancellation is a terminal once-per-solve event, not steady-state
	return &CanceledError{Method: method, Iteration: iter}
}

// BreakdownError describes where and why an iteration broke down: a
// Givens rotation annihilated to zero (Krylov space exhausted), an inner
// product or norm went NaN/Inf (poisoned operator, singular
// preconditioner), or CG met a non-positive curvature direction. It wraps
// ErrBreakdown.
type BreakdownError struct {
	Method    string  // "GMRES", "FGMRES" or "CG"
	Iteration int     // matrix-vector products performed when detected
	Quantity  string  // the scalar that triggered detection
	Value     float64 // its offending value
}

func (e *BreakdownError) Error() string {
	return fmt.Sprintf("krylov: %s breakdown at iteration %d: %s = %v",
		e.Method, e.Iteration, e.Quantity, e.Value)
}

// Unwrap makes errors.Is(e, ErrBreakdown) true.
func (e *BreakdownError) Unwrap() error { return ErrBreakdown }

// breakdownErr builds the solver-side breakdown record.
func breakdownErr(method string, iter int, quantity string, value float64) *BreakdownError {
	//lint:ignore allocfree breakdown is a terminal once-per-solve event, not steady-state
	return &BreakdownError{Method: method, Iteration: iter, Quantity: quantity, Value: value}
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
