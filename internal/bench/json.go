package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"parapre/internal/par"
)

// JSON report of one ippsbench run. Every cell carries both clocks: the
// modeled (virtual-machine) time the paper tabulates and the measured
// wall-clock time of the actual solve on this host, so speedups of the
// shared-memory kernel layer can be tracked per commit.

// ReportCell is one (preconditioner, P) measurement in the JSON report.
type ReportCell struct {
	Precond   string  `json:"precond"`
	Iters     int     `json:"iters"`
	Restarts  int     `json:"restarts,omitempty"`
	ModelTime float64 `json:"model_time_s"`
	WallTime  float64 `json:"wall_time_s"`
	Converged bool    `json:"converged"`
	Note      string  `json:"note,omitempty"` // chaos outcome annotation
	// Phases is the phase → slowest-rank virtual seconds breakdown,
	// present only when the run attached an observability collector.
	Phases map[string]float64 `json:"phases,omitempty"`
}

// ReportRow groups the cells of one processor count.
type ReportRow struct {
	P     int          `json:"p"`
	Cells []ReportCell `json:"cells"`
}

// ReportTable is one regenerated table.
type ReportTable struct {
	ID    string      `json:"id"`
	Title string      `json:"title"`
	N     int         `json:"n"`
	Rows  []ReportRow `json:"rows"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string        `json:"date"`
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Tables     []ReportTable `json:"tables"`
}

// NewReport converts regenerated tables into a report stamped with the
// given date and the current shared-memory configuration.
func NewReport(date string, tables []Table) *Report {
	rep := &Report{Date: date, Workers: par.Workers(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, t := range tables {
		rt := ReportTable{ID: t.ID, Title: t.Title, N: t.N}
		for _, r := range t.Rows {
			rr := ReportRow{P: r.P}
			for ci, c := range r.Cells {
				name := ""
				if ci < len(t.Columns) {
					name = t.Columns[ci]
				}
				rr.Cells = append(rr.Cells, ReportCell{
					Precond:   name,
					Iters:     c.Iters,
					Restarts:  c.Restarts,
					ModelTime: c.Time,
					WallTime:  c.Wall,
					Converged: c.Converged,
					Note:      c.Note,
					Phases:    c.Phases,
				})
			}
			rt.Rows = append(rt.Rows, rr)
		}
		rep.Tables = append(rep.Tables, rt)
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a previously written BENCH_*.json report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// cellKey identifies one measurement across reports.
type cellKey struct {
	table   string
	p       int
	precond string
}

// CompareModelTimes checks the current report against a committed baseline:
// every cell present in both must keep its iteration count exactly (modeled
// runs are deterministic; an iteration change is a golden change) and its
// modeled time within the relative tolerance. Wall-clock times are
// host-dependent and deliberately not compared. The returned strings
// describe each regression; an empty slice means the run is clean. Cells
// present in only one report are skipped, so the guard tolerates baseline
// and run configurations that overlap rather than match.
func CompareModelTimes(base, cur *Report, tol float64) []string {
	ref := make(map[cellKey]ReportCell)
	for _, t := range base.Tables {
		for _, r := range t.Rows {
			for _, c := range r.Cells {
				ref[cellKey{t.ID, r.P, c.Precond}] = c
			}
		}
	}
	var regs []string
	for _, t := range cur.Tables {
		for _, r := range t.Rows {
			for _, c := range r.Cells {
				b, ok := ref[cellKey{t.ID, r.P, c.Precond}]
				if !ok {
					continue
				}
				id := fmt.Sprintf("%s/%s/P=%d", t.ID, c.Precond, r.P)
				if c.Iters != b.Iters {
					regs = append(regs, fmt.Sprintf("%s: iterations %d, baseline %d", id, c.Iters, b.Iters))
					continue
				}
				if c.Converged != b.Converged {
					regs = append(regs, fmt.Sprintf("%s: converged=%v, baseline %v", id, c.Converged, b.Converged))
					continue
				}
				if b.ModelTime > 0 && c.ModelTime > b.ModelTime*(1+tol) {
					regs = append(regs, fmt.Sprintf("%s: modeled time %.4fs exceeds baseline %.4fs by more than %.0f%%",
						id, c.ModelTime, b.ModelTime, tol*100))
				}
			}
		}
	}
	return regs
}
