package ckpt

import (
	"encoding/binary"
	"hash/crc64"
	"math"
	"sort"

	"parapre/internal/krylov"
)

// The wire format, all little-endian:
//
//	magic "PCKP" | u32 version | payload | u64 CRC64-ECMA(magic..payload)
//
// payload:
//
//	u64 seq | u64 iter | u32 P | P × rankState
//
// rankState:
//
//	u32 rank
//	6 × f64 stats (clock, compute, comm, faultDelay, flops) + 2 × u64 (msgs, bytes)
//	u64 faultDraws | u64 faultOps
//	u32 nCounters | nCounters × (string key, f64 value)   — sorted by key
//	u8 hasSolver | solverState?
//
// solverState:
//
//	string method | u64 n | u64 m | u64 iter | u64 restarts | u64 j
//	f64 ref | f64 initial | string precondID
//	vec X | vecs V | vecs Z | vec H | vec Cs | vec Sn | vec G
//	vec R | vec P | f64 RZ | vec History
//
// string: u32 length + bytes. vec: u32 length + f64s; length 0 decodes to
// nil. vecs: u32 count + count × vec. The nil/empty collapse makes the
// encoding canonical: encode→decode→encode is byte-identical.

var crcTable = crc64.MakeTable(crc64.ECMA)

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) vec(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *encoder) vecs(v [][]float64) {
	e.u32(uint32(len(v)))
	for _, row := range v {
		e.vec(row)
	}
}

// Encode serializes the checkpoint into its canonical binary form.
func Encode(ck *Checkpoint) []byte {
	e := &encoder{buf: make([]byte, 0, encodedSizeHint(ck))}
	e.buf = append(e.buf, Magic[:]...)
	e.u32(Version)
	e.u64(ck.Seq)
	e.u64(ck.Iter)
	e.u32(uint32(len(ck.Ranks)))
	for i := range ck.Ranks {
		encodeRank(e, &ck.Ranks[i])
	}
	e.u64(crc64.Checksum(e.buf, crcTable))
	return e.buf
}

func encodeRank(e *encoder, rs *RankState) {
	e.u32(uint32(rs.Rank))
	st := rs.Stats
	e.f64(st.Clock)
	e.f64(st.ComputeTime)
	e.f64(st.CommTime)
	e.f64(st.FaultDelay)
	e.f64(st.Flops)
	e.u64(uint64(st.MsgsSent))
	e.u64(uint64(st.BytesSent))
	e.u64(rs.FaultDraws)
	e.u64(rs.FaultOps)

	keys := make([]string, 0, len(rs.Counters))
	for k := range rs.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u32(uint32(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.f64(rs.Counters[k])
	}

	if rs.Solver == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	s := rs.Solver
	e.str(s.Method)
	e.u64(uint64(s.N))
	e.u64(uint64(s.M))
	e.u64(uint64(s.Iter))
	e.u64(uint64(s.Restarts))
	e.u64(uint64(s.J))
	e.f64(s.Ref)
	e.f64(s.Initial)
	e.str(s.PrecondID)
	e.vec(s.X)
	e.vecs(s.V)
	e.vecs(s.Z)
	e.vec(s.H)
	e.vec(s.Cs)
	e.vec(s.Sn)
	e.vec(s.G)
	e.vec(s.R)
	e.vec(s.P)
	e.f64(s.RZ)
	e.vec(s.History)
}

// encodedSizeHint sizes the encode buffer to avoid growth in the common
// case; an underestimate only costs a reallocation.
func encodedSizeHint(ck *Checkpoint) int {
	n := 64
	for i := range ck.Ranks {
		n += 128
		if s := ck.Ranks[i].Solver; s != nil {
			n += 8 * (len(s.X) + len(s.H) + len(s.R) + len(s.P) + len(s.History) + 64)
			for _, v := range s.V {
				n += 8*len(v) + 8
			}
			for _, v := range s.Z {
				n += 8*len(v) + 8
			}
		}
		n += 32 * len(ck.Ranks[i].Counters)
	}
	return n
}

// decoder is a bounds-checked reader over untrusted bytes. Every read
// validates the remaining length first; the first failure latches a typed
// *CorruptError and turns all further reads into no-ops, so decode paths
// need no per-call error plumbing.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(reason string) {
	if d.err == nil {
		d.err = &CorruptError{Reason: reason, Offset: int64(d.off)}
	}
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated")
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// sint decodes a u64 that must fit a non-negative int.
func (d *decoder) sint() int {
	v := d.u64()
	if d.err == nil && v > math.MaxInt32 {
		d.fail("integer field out of range")
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := int(d.u32())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) vec() []float64 {
	n := int(d.u32())
	if n == 0 {
		return nil
	}
	// Each element needs 8 bytes: lengths beyond the remaining buffer are
	// corrupt, and rejecting them here also stops allocation bombs.
	if !d.need(8 * n) {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *decoder) vecs() [][]float64 {
	n := int(d.u32())
	if n == 0 {
		return nil
	}
	if d.err != nil || n > len(d.buf)-d.off { // ≥1 byte per row, loose pre-check
		d.fail("truncated")
		return nil
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = d.vec()
	}
	return v
}

// Decode parses a checkpoint from its binary form. Hostile bytes are
// safe: any structural damage returns a *CorruptError, a version skew a
// *VersionError, and no input panics.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(Magic)+4+8 {
		return nil, &CorruptError{Reason: "shorter than header", Offset: int64(len(data))}
	}
	if string(data[:4]) != string(Magic[:]) {
		return nil, &CorruptError{Reason: "bad magic", Offset: 0}
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(trailer) {
		return nil, &CorruptError{Reason: "checksum mismatch", Offset: -1}
	}
	d := &decoder{buf: body, off: 4}
	if v := d.u32(); v != Version {
		return nil, &VersionError{Got: v, Want: Version}
	}
	ck := &Checkpoint{Seq: d.u64(), Iter: d.u64()}
	p := int(d.u32())
	if d.err == nil && (p < 0 || p > len(body)) { // ≥1 byte per rank shard
		d.fail("rank count out of range")
	}
	if d.err == nil {
		ck.Ranks = make([]RankState, p)
		for i := 0; i < p; i++ {
			decodeRank(d, &ck.Ranks[i])
			if d.err != nil {
				break
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, &CorruptError{Reason: "trailing bytes after payload", Offset: int64(d.off)}
	}
	return ck, nil
}

func decodeRank(d *decoder, rs *RankState) {
	rs.Rank = int(d.u32())
	rs.Stats.Rank = rs.Rank
	rs.Stats.Clock = d.f64()
	rs.Stats.ComputeTime = d.f64()
	rs.Stats.CommTime = d.f64()
	rs.Stats.FaultDelay = d.f64()
	rs.Stats.Flops = d.f64()
	rs.Stats.MsgsSent = d.sint()
	rs.Stats.BytesSent = d.sint()
	rs.FaultDraws = d.u64()
	rs.FaultOps = d.u64()

	n := int(d.u32())
	if n > 0 {
		if d.err != nil || n > len(d.buf)-d.off {
			d.fail("truncated")
			return
		}
		rs.Counters = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k := d.str()
			v := d.f64()
			if d.err != nil {
				return
			}
			if _, dup := rs.Counters[k]; dup {
				d.fail("duplicate counter key")
				return
			}
			rs.Counters[k] = v
		}
	}

	switch d.u8() {
	case 0:
		return
	case 1:
	default:
		d.fail("bad solver-presence tag")
		return
	}
	s := &krylov.State{}
	s.Method = d.str()
	s.N = d.sint()
	s.M = d.sint()
	s.Iter = d.sint()
	s.Restarts = d.sint()
	s.J = d.sint()
	s.Ref = d.f64()
	s.Initial = d.f64()
	s.PrecondID = d.str()
	s.X = d.vec()
	s.V = d.vecs()
	s.Z = d.vecs()
	s.H = d.vec()
	s.Cs = d.vec()
	s.Sn = d.vec()
	s.G = d.vec()
	s.R = d.vec()
	s.P = d.vec()
	s.RZ = d.f64()
	s.History = d.vec()
	if d.err == nil {
		rs.Solver = s
	}
}
