// Elasticity example: the paper's toughest case — the displacement field
// of a quarter ring under a downward volume load (Test Case 6, two
// unknowns per node). The block preconditioners struggle here while the
// Schur-complement-enhanced ones stay robust; the example also reports
// physical solution statistics so the discretization itself can be
// sanity-checked.
package main

import (
	"fmt"
	"log"
	"math"

	"parapre"
	"parapre/internal/precond"
)

func main() {
	const size = 33
	prob := parapre.BuildCase("tc6-elasticity", size)
	fmt.Printf("linear elasticity, quarter ring, %d nodes × 2 dof = %d unknowns\n\n",
		prob.Mesh.NumNodes(), prob.A.Rows)

	const p = 8
	for _, kind := range []precond.Kind{parapre.Schur1, parapre.Schur2, parapre.Block1, parapre.Block2} {
		cfg := parapre.DefaultConfig(p, kind)
		cfg.Solver.MaxIters = 400
		cfg.KeepX = true
		res, err := parapre.Solve(prob, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			fmt.Printf("%-8s did not converge within %d iterations (the paper reports the same trouble for the block preconditioners)\n",
				kind, cfg.Solver.MaxIters)
			continue
		}
		maxDisp := 0.0
		for n := 0; n < prob.Mesh.NumNodes(); n++ {
			d := math.Hypot(res.X[2*n], res.X[2*n+1])
			if d > maxDisp {
				maxDisp = d
			}
		}
		fmt.Printf("%-8s %3d iterations, %.3fs modeled, max displacement %.4f\n",
			kind, res.Iterations, res.SetupTime+res.SolveTime, maxDisp)
	}
}
