package ilu

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/sparse"
)

func TestIC0ExactOnTridiagonal(t *testing.T) {
	a := tridiag(40)
	c, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fixes != 0 {
		t.Fatalf("fixes %d on an M-matrix", c.Fixes)
	}
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, 40)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x := make([]float64, 40)
	c.Solve(x, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-9 {
			t.Fatalf("IC0 not exact on no-fill matrix: err at %d", i)
		}
	}
}

func TestIC0FactorsReproduceNoFillMatrix(t *testing.T) {
	// L·Lᵀ must equal A exactly when the pattern admits no fill.
	a := tridiag(15)
	c, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += c.L.At(i, k) * c.L.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-12 {
				t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestIC0PreconditionerIsSymmetric(t *testing.T) {
	// xᵀM⁻¹y == yᵀM⁻¹x: the property that keeps PCG valid.
	a := lap2d(8)
	c, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		mx := make([]float64, n)
		my := make([]float64, n)
		c.Solve(mx, x)
		c.Solve(my, y)
		lhs := sparse.Dot(y, mx)
		rhs := sparse.Dot(x, my)
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("M⁻¹ not symmetric: %v vs %v", lhs, rhs)
		}
	}
}

func TestIC0SolveAlias(t *testing.T) {
	a := lap2d(5)
	c, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i % 3)
	}
	want := make([]float64, n)
	c.Solve(want, b)
	x := append([]float64(nil), b...)
	c.Solve(x, x)
	for i := range want {
		if x[i] != want[i] {
			t.Fatal("aliased IC solve differs")
		}
	}
}

func TestIC0NonSquare(t *testing.T) {
	if _, err := IC0(sparse.NewCSR(2, 3, 0)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestIC0FixesIndefinite(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, -5) // not SPD
	c, err := IC0(coo.ToCSR())
	if err != nil {
		t.Fatal(err)
	}
	if c.Fixes == 0 {
		t.Fatal("indefinite diagonal not detected")
	}
	z := make([]float64, 2)
	c.Solve(z, []float64{1, 1})
	for _, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite solve after fix")
		}
	}
}
