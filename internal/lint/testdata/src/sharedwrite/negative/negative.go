// Package negative holds code sharedwrite must stay silent on.
package negative

import "parapre/internal/par"

// Scale writes only slots indexed by the worker's own range bounds.
func Scale(a float64, x []float64) {
	par.For(len(x), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// PerWorker gives every task its own output slot.
func PerWorker(n int) []float64 {
	out := make([]float64, n)
	par.Run(n, func(t int) {
		out[t] = float64(t)
	})
	return out
}

// Buffered builds per-worker state in closure-local variables and
// publishes it through a worker-indexed slot — the sanctioned pattern of
// the parallel assembly and COO conversion.
func Buffered(n, w int) [][]float64 {
	outs := make([][]float64, w)
	par.Run(w, func(s int) {
		buf := make([]float64, 0, n/w)
		for i := 0; i < n/w; i++ {
			buf = append(buf, float64(s*i))
		}
		outs[s] = buf
	})
	return outs
}

// Reduce uses the deterministic fixed-block reduction instead of a
// shared accumulator.
func Reduce(x []float64) float64 {
	return par.SumBlocks(len(x), func(lo, hi int) float64 {
		var s float64
		for _, v := range x[lo:hi] {
			s += v
		}
		return s
	})
}
