package fft

import "math"

// PoissonSolver is a direct fast solver for the 5-point finite-difference
// Laplacian on an nx×ny interior grid of a rectangle with spacing hx, hy
// and homogeneous Dirichlet boundary values:
//
//	(−Δ_h u)_{ij} = f_{ij}.
//
// It diagonalizes the operator with DST-I in both directions, which costs
// O(N log N) per solve. In the additive-Schwarz preconditioner this serves
// exactly the role the paper describes in §5.2: a "special FFT-based
// preconditioner" accelerating one CG iteration on each rectangular
// subdomain.
type PoissonSolver struct {
	nx, ny  int
	hx, hy  float64
	eig     []float64 // eig[j*nx+i] = λx_i + λy_j
	scaleX  float64   // DST normalization factors folded into the solve
	scaleY  float64
	rowBuf  []float64
	colBuf  []float64
	scratch []float64
}

// NewPoissonSolver builds a solver for an nx×ny interior grid with mesh
// widths hx, hy.
func NewPoissonSolver(nx, ny int, hx, hy float64) *PoissonSolver {
	p := &PoissonSolver{
		nx:      nx,
		ny:      ny,
		hx:      hx,
		hy:      hy,
		eig:     make([]float64, nx*ny),
		scaleX:  2 / float64(nx+1),
		scaleY:  2 / float64(ny+1),
		rowBuf:  make([]float64, nx),
		colBuf:  make([]float64, ny),
		scratch: make([]float64, nx*ny),
	}
	lamX := make([]float64, nx)
	for i := 0; i < nx; i++ {
		s := math.Sin(math.Pi * float64(i+1) / (2 * float64(nx+1)))
		lamX[i] = 4 * s * s / (hx * hx)
	}
	for j := 0; j < ny; j++ {
		s := math.Sin(math.Pi * float64(j+1) / (2 * float64(ny+1)))
		lamY := 4 * s * s / (hy * hy)
		for i := 0; i < nx; i++ {
			p.eig[j*nx+i] = lamX[i] + lamY
		}
	}
	return p
}

// Solve computes u with −Δ_h u = f for the row-major interior grid f
// (f[j*nx+i]) and returns u in the same layout. f is not modified.
func (p *PoissonSolver) Solve(f []float64) []float64 {
	u := make([]float64, len(f))
	p.SolveTo(u, f)
	return u
}

// SolveTo computes u in place of the preallocated slice u (length nx·ny).
func (p *PoissonSolver) SolveTo(u, f []float64) {
	nx, ny := p.nx, p.ny
	w := p.scratch
	// DST-I along x for every row.
	for j := 0; j < ny; j++ {
		copy(p.rowBuf, f[j*nx:(j+1)*nx])
		t := DSTI(p.rowBuf)
		copy(w[j*nx:(j+1)*nx], t)
	}
	// DST-I along y for every column.
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			p.colBuf[j] = w[j*nx+i]
		}
		t := DSTI(p.colBuf)
		for j := 0; j < ny; j++ {
			w[j*nx+i] = t[j]
		}
	}
	// Divide by eigenvalues.
	for k := range w {
		w[k] /= p.eig[k]
	}
	// Inverse transforms (DST-I scaled).
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			p.colBuf[j] = w[j*nx+i]
		}
		t := DSTI(p.colBuf)
		for j := 0; j < ny; j++ {
			w[j*nx+i] = t[j] * p.scaleY
		}
	}
	for j := 0; j < ny; j++ {
		copy(p.rowBuf, w[j*nx:(j+1)*nx])
		t := DSTI(p.rowBuf)
		for i := 0; i < nx; i++ {
			u[j*nx+i] = t[i] * p.scaleX
		}
	}
}

// Apply computes f = −Δ_h u for the same grid, the forward operator used
// by the solver's tests and by the Schwarz smoother's residual checks.
func (p *PoissonSolver) Apply(u []float64) []float64 {
	nx, ny := p.nx, p.ny
	hx2 := p.hx * p.hx
	hy2 := p.hy * p.hy
	f := make([]float64, nx*ny)
	at := func(i, j int) float64 {
		if i < 0 || i >= nx || j < 0 || j >= ny {
			return 0
		}
		return u[j*nx+i]
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			f[j*nx+i] = (2*at(i, j)-at(i-1, j)-at(i+1, j))/hx2 +
				(2*at(i, j)-at(i, j-1)-at(i, j+1))/hy2
		}
	}
	return f
}
