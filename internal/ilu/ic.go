package ilu

import (
	"fmt"
	"math"

	"parapre/internal/sparse"
)

// Chol is a zero fill-in incomplete Cholesky factorization A ≈ L·Lᵀ of a
// symmetric positive definite matrix. Unlike the unsymmetric ILU variants
// it is itself symmetric positive definite, which preconditioned CG
// requires.
type Chol struct {
	L  *sparse.CSR // lower triangle, diagonal last in each row
	Lt *sparse.CSR // Lᵀ, for the backward solve
	// Fixes counts diagonal entries that had to be repaired to keep the
	// factorization real (0 for M-matrices / well-behaved SPD input).
	Fixes int
}

// N returns the matrix dimension.
func (c *Chol) N() int { return c.L.Rows }

// SolveFlops returns the cost of one Solve application.
func (c *Chol) SolveFlops() float64 { return 4 * float64(c.L.NNZ()) }

// Solve computes z = L⁻ᵀ·L⁻¹·r. z and r may alias.
func (c *Chol) Solve(z, r []float64) {
	n := c.N()
	// Forward: L z = r (diagonal is the last entry of each row).
	for i := 0; i < n; i++ {
		s := r[i]
		lo, hi := c.L.RowPtr[i], c.L.RowPtr[i+1]
		for k := lo; k < hi-1; k++ {
			s -= c.L.Val[k] * z[c.L.ColIdx[k]]
		}
		z[i] = s / c.L.Val[hi-1]
	}
	// Backward: Lᵀ z = z (diagonal is the first entry of each Lt row).
	for i := n - 1; i >= 0; i-- {
		lo, hi := c.Lt.RowPtr[i], c.Lt.RowPtr[i+1]
		s := z[i]
		for k := lo + 1; k < hi; k++ {
			s -= c.Lt.Val[k] * z[c.Lt.ColIdx[k]]
		}
		z[i] = s / c.Lt.Val[lo]
	}
}

// IC0 computes the zero fill-in incomplete Cholesky factorization: L
// keeps exactly the lower-triangular pattern of a. a must be square with
// a symmetric pattern and positive diagonal; non-positive intermediate
// diagonals are repaired (counted in Fixes).
func IC0(a *sparse.CSR) (*Chol, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ilu: IC0 of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := sparse.NewCSR(n, n, a.NNZ()/2+n)
	fixes := 0

	// Dense scatter of the current row's computed L values.
	w := make([]float64, n)
	inRow := make([]bool, n)

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		var rowNorm float64
		var diagA float64
		// Collect lower-pattern entries of row i.
		start := len(l.ColIdx)
		for k, j := range cols {
			rowNorm += math.Abs(vals[k])
			if j < i {
				l.ColIdx = append(l.ColIdx, j)
				l.Val = append(l.Val, vals[k])
			} else if j == i {
				diagA = vals[k]
			}
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("IC0", i)
		}
		rowNorm /= float64(len(cols))

		// Compute L[i][j] for j in pattern, in increasing j.
		rowCols := l.ColIdx[start:]
		rowVals := l.Val[start:]
		for t, j := range rowCols {
			// s = A[i][j] − Σ_{k<j} L[i][k]·L[j][k]; iterate row j of L.
			s := rowVals[t]
			jlo, jhi := l.RowPtr[j], l.RowPtr[j+1]
			for k := jlo; k < jhi-1; k++ {
				jk := l.ColIdx[k]
				if inRow[jk] {
					s -= w[jk] * l.Val[k]
				}
			}
			ljj := l.Val[jhi-1]
			lij := s / ljj
			rowVals[t] = lij
			w[j] = lij
			inRow[j] = true
		}
		// Diagonal.
		d := diagA
		for _, j := range rowCols {
			d -= w[j] * w[j]
		}
		if d <= 0 {
			fixes++
			d = pivotRel * rowNorm
			if d <= 0 {
				d = pivotRel
			}
		}
		l.ColIdx = append(l.ColIdx, i)
		l.Val = append(l.Val, math.Sqrt(d))
		l.RowPtr[i+1] = len(l.ColIdx)

		for _, j := range rowCols {
			inRow[j] = false
			w[j] = 0
		}
	}
	return &Chol{L: l, Lt: l.Transpose(), Fixes: fixes}, nil
}
