// Custom-PDE example: the library is not limited to the paper's six test
// cases. This example discretizes its own PDE — a convection–diffusion
// problem with a rotating velocity would need variable coefficients, so
// here we take a strongly skewed constant flow over the plate-with-hole
// unstructured grid — wraps the assembled system in a core Problem, and
// compares the preconditioners on it.
package main

import (
	"fmt"
	"log"
	"math"

	"parapre"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/precond"
)

func main() {
	// 1. Build an unstructured grid and discretize a custom PDE on it.
	g := grid.PlateWithHole(49)
	vel := []float64{200 * math.Cos(0.2), 200 * math.Sin(0.2)}
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Velocity:  vel,
		SUPG:      true,
		Source:    func(x []float64) float64 { return 1 },
	})

	// 2. Boundary conditions: u = 0 everywhere on the boundary (outer
	//    square and hole rim).
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)

	// 3. Wrap as a Problem and solve with each preconditioner.
	prob := &parapre.Problem{Name: "custom-convdiff-hole", A: a, B: b, Mesh: g, DofsPerNode: 1}
	fmt.Printf("custom PDE on plate-with-hole: %d unknowns, |v| = 200\n\n", a.Rows)
	for _, kind := range []precond.Kind{parapre.Schur1, parapre.Schur2, parapre.Block1, parapre.Block2} {
		cfg := parapre.DefaultConfig(8, kind)
		res, err := parapre.Solve(prob, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %3d iterations, %.4fs modeled (converged=%v)\n",
			kind, res.Iterations, res.SetupTime+res.SolveTime, res.Converged)
	}
}
