package dist

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TagMismatchError reports a receive whose next queued message carried an
// unexpected tag. On a healthy world this is a protocol bug; under an
// injected fault plan it is also the natural symptom of message loss (the
// receiver pairs up with the *next* message of the stream).
type TagMismatchError struct {
	Rank int // receiving rank
	Peer int // sending rank
	Want int
	Got  int
}

func (e *TagMismatchError) Error() string {
	return fmt.Sprintf("dist: rank %d expected tag %d from %d, got %d",
		e.Rank, e.Want, e.Peer, e.Got)
}

// PeerCrashedError reports a receive from a rank that hard-crashed (fault
// injection) with no matching message left in flight.
type PeerCrashedError struct {
	Rank int // receiving rank
	Peer int // crashed sender
	Tag  int
}

func (e *PeerCrashedError) Error() string {
	return fmt.Sprintf("dist: rank %d cannot receive tag %d from rank %d: peer crashed",
		e.Rank, e.Tag, e.Peer)
}

// RankState is one rank's diagnostic snapshot inside a DeadlockError: what
// the rank was last doing when the world stopped making progress.
type RankState struct {
	Rank    int
	LastOp  string  // "send", "recv", "allreduce", "barrier", "allgather", "compute", or "" (no op yet)
	Peer    int     // peer of the last point-to-point op; -1 for collectives/compute
	Tag     int     // tag of the last point-to-point op; -1 otherwise
	Clock   float64 // virtual seconds at the last completed op
	Ops     uint64  // dist operations completed
	Blocked bool    // the rank was inside (blocked in) LastOp when sampled
	Crashed bool    // the rank hard-crashed (fault injection)
	Done    bool    // the rank function returned
}

func (s RankState) String() string {
	status := "running"
	switch {
	case s.Crashed:
		status = "CRASHED"
	case s.Done:
		status = "done"
	case s.Blocked:
		status = "BLOCKED"
	}
	op := s.LastOp
	if op == "" {
		op = "(none)"
	}
	if s.Peer >= 0 {
		op = fmt.Sprintf("%s(peer=%d, tag=%d)", op, s.Peer, s.Tag)
	}
	return fmt.Sprintf("rank %d: %s in %s after %d ops, t=%.6fs", s.Rank, status, op, s.Ops, s.Clock)
}

// DeadlockError is returned by RunOpts when no rank made progress within
// the watchdog budget: the world is stalled (a protocol deadlock, a
// dropped message someone is still waiting for, or a crashed rank holding
// up a collective). Ranks carries every rank's last-op diagnostics.
type DeadlockError struct {
	Budget time.Duration
	Ranks  []RankState
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist: deadlock: no progress for %v across %d ranks", e.Budget, len(e.Ranks))
	for _, r := range e.Ranks {
		if r.Done {
			continue
		}
		b.WriteString("; ")
		b.WriteString(r.String())
	}
	return b.String()
}

// CrashError reports that one or more ranks hard-crashed (fault
// injection) while the surviving ranks still ran to completion.
type CrashError struct {
	Ranks []int
}

func (e *CrashError) Error() string {
	rs := append([]int(nil), e.Ranks...)
	sort.Ints(rs)
	return fmt.Sprintf("dist: ranks %v crashed", rs)
}

// RankPanicError wraps a panic that escaped a rank function under
// RunOpts, so a programming error surfaces as a typed error instead of
// killing the process (and instead of hanging every other rank).
type RankPanicError struct {
	Rank  int
	Value any
	Stack string
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("dist: rank %d panicked: %v", e.Rank, e.Value)
}

// StatsError reports a per-rank Stats slice that does not have the shape
// every Run/RunOpts result has: nonempty, with ranks 0..len-1 in order.
// Aggregation helpers return it instead of silently producing poisoned
// timings from misassembled input.
type StatsError struct {
	Index int // offending index; -1 for an empty slice
	Got   int // rank found at Index (meaningless when Index < 0)
}

func (e *StatsError) Error() string {
	if e.Index < 0 {
		return "dist: aggregation over empty stats slice"
	}
	return fmt.Sprintf("dist: stats[%d] carries rank %d, want %d (misassembled per-rank stats)",
		e.Index, e.Got, e.Index)
}

// UnknownPlanError reports a fault-plan name that names no built-in
// chaos plan. Have lists the valid names.
type UnknownPlanError struct {
	Name string
	Have []string
}

func (e *UnknownPlanError) Error() string {
	return fmt.Sprintf("dist: unknown fault plan %q (have %v)", e.Name, e.Have)
}

// abortPanic unwinds a rank goroutine when the world has been aborted
// (watchdog deadlock, another rank's panic). It never escapes RunOpts.
type abortPanic struct{}

// crashPanic unwinds a rank goroutine at its planned hard-crash point. It
// never escapes RunOpts.
type crashPanic struct{ rank int }
