package socket

import (
	"net"
	"sync"
	"time"

	"parapre/internal/ckpt"
	"parapre/internal/dist"
)

// Options tunes a client connection.
type Options struct {
	// OpTimeout bounds each transport operation; 0 means
	// DefaultOpTimeout. It is also the transport's Grace.
	OpTimeout time.Duration
}

// Client is one rank's end of the socket transport: it implements
// dist.Transport over a single hub connection, and ckpt.Sink by
// forwarding checkpoint shards to the hub (which owns the file writer).
//
// A Client serves exactly one rank: Send's from and Recv's to must equal
// the rank it was dialed with (the SPMD worker shape — each process hosts
// one rank).
type Client struct {
	p    int
	rank int
	conn net.Conn
	opt  Options

	wmu sync.Mutex // serializes frame writes

	dataCh     []chan dist.Message // per-sender in-order queues
	redCh      chan redReply       // collective replies, in wave order
	abortCh    chan struct{}       // closed on world abort
	crashedCh  []chan struct{}     // closed when that peer is declared dead
	anyCrashed chan struct{}       // closed on the first dead peer (collectives can never complete)

	closeOnce sync.Once
	abortOnce sync.Once
	crashMu   sync.Mutex

	readerDone chan struct{}
	readErr    error // set before readerDone closes
}

type redReply struct {
	vec  []float64
	maxT float64
}

// queueDepth is the per-sender buffered depth of the client's receive
// queues. The reader goroutine blocks when a queue fills, pushing
// backpressure onto the hub connection — the socket analogue of the
// in-process transport's bounded channel buffers.
const queueDepth = 4096

// Dial connects rank to the hub at network/addr, retrying with
// exponential backoff while the hub's listener comes up. The returned
// Client is ready for transport use once Dial returns (the hello frame
// has been sent).
func Dial(network, addr string, p, rank int, opt Options) (*Client, error) {
	if opt.OpTimeout <= 0 {
		opt.OpTimeout = DefaultOpTimeout
	}
	var conn net.Conn
	var err error
	backoff := dialBackoffMin
	attempts := 0
	for attempts < dialAttempts {
		attempts++
		conn, err = net.DialTimeout(network, addr, opt.OpTimeout)
		if err == nil {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > dialBackoffMax {
			backoff = dialBackoffMax
		}
	}
	if err != nil {
		return nil, &ConnectError{Network: network, Addr: addr, Attempts: attempts, Err: err}
	}
	c := &Client{
		p:          p,
		rank:       rank,
		conn:       conn,
		opt:        opt,
		dataCh:     make([]chan dist.Message, p),
		redCh:      make(chan redReply, 4),
		abortCh:    make(chan struct{}),
		crashedCh:  make([]chan struct{}, p),
		anyCrashed: make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	for i := range c.dataCh {
		c.dataCh[i] = make(chan dist.Message, queueDepth)
		c.crashedCh[i] = make(chan struct{})
	}
	var w wire
	w.u8(fHello)
	w.u32(uint32(rank))
	if err := c.write(w.buf); err != nil {
		_ = conn.Close() // the hello failure wins
		return nil, &ConnectError{Network: network, Addr: addr, Attempts: attempts, Err: err}
	}
	go c.readLoop()
	return c, nil
}

// write sends one frame under the writer lock with a write deadline.
func (c *Client) write(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	// Deadline arming only fails on a closed connection, which the write
	// below reports anyway.
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.opt.OpTimeout))
	return writeFrame(c.conn, payload)
}

// readLoop demultiplexes incoming frames into the per-sender queues, the
// collective reply queue, and the crash/abort signals. It exits on any
// read error (including the hub closing), recording the error and waking
// every blocked operation.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := readFrame(c.conn)
		if err != nil {
			c.readErr = err
			return
		}
		u := &unwire{buf: payload}
		switch u.u8() {
		case fData:
			from := int(u.u32())
			u.u32() // to == c.rank by construction
			m := dist.Message{Tag: int(u.i64()), Time: u.f64(), FDelay: u.f64(), Data: u.vec()}
			if u.err != nil || from < 0 || from >= c.p {
				c.readErr = &ProtocolError{Reason: "malformed data frame"}
				return
			}
			select {
			case c.dataCh[from] <- m:
			case <-c.abortCh:
			}
		case fReduceReply:
			maxT := u.f64()
			vec := u.vec()
			if u.err != nil {
				c.readErr = &ProtocolError{Reason: "malformed reduce reply"}
				return
			}
			select {
			case c.redCh <- redReply{vec: vec, maxT: maxT}:
			case <-c.abortCh:
			}
		case fPeerGone:
			r := int(u.u32())
			if u.err != nil || r < 0 || r >= c.p {
				c.readErr = &ProtocolError{Reason: "malformed peer-gone frame"}
				return
			}
			c.markCrashedLocal(r)
		case fAbort:
			c.abortLocal()
		default:
			c.readErr = &ProtocolError{Reason: "unknown frame type"}
			return
		}
	}
}

func (c *Client) markCrashedLocal(r int) {
	c.crashMu.Lock()
	defer c.crashMu.Unlock()
	select {
	case <-c.crashedCh[r]:
	default:
		close(c.crashedCh[r])
	}
	if r != c.rank {
		select {
		case <-c.anyCrashed:
		default:
			close(c.anyCrashed)
		}
	}
}

func (c *Client) abortLocal() {
	c.abortOnce.Do(func() { close(c.abortCh) })
}

// Send forwards the message to the hub, which routes it to the receiver.
func (c *Client) Send(from, to int, m dist.Message) error {
	select {
	case <-c.abortCh:
		return dist.ErrWorldAborted
	default:
	}
	var w wire
	w.u8(fData)
	w.u32(uint32(from))
	w.u32(uint32(to))
	w.i64(int64(m.Tag))
	w.f64(m.Time)
	w.f64(m.FDelay)
	w.vec(m.Data)
	if err := c.write(w.buf); err != nil {
		return &OpError{Op: "send", Rank: c.rank, Peer: to, Timeout: isTimeout(err), Err: err}
	}
	return nil
}

// Recv blocks for the next message from the given sender, with the same
// drain-then-fail semantics on a dead peer as the in-process transport,
// plus a per-op deadline.
func (c *Client) Recv(to, from int) (dist.Message, error) {
	ch := c.dataCh[from]
	select {
	case m := <-ch:
		return m, nil
	default:
	}
	timer := time.NewTimer(c.opt.OpTimeout)
	defer timer.Stop()
	select {
	case m := <-ch:
		return m, nil
	case <-c.abortCh:
		return dist.Message{}, dist.ErrWorldAborted
	case <-c.crashedCh[from]:
		select {
		case m := <-ch:
			return m, nil
		default:
			return dist.Message{}, dist.ErrPeerGone
		}
	case <-c.readerDone:
		return dist.Message{}, &OpError{Op: "recv", Rank: c.rank, Peer: from, Err: c.readErr}
	case <-timer.C:
		return dist.Message{}, &OpError{Op: "recv", Rank: c.rank, Peer: from, Timeout: true}
	}
}

// Reduce contributes this rank's vector to the current collective wave
// and blocks for the hub's rank-order fold.
func (c *Client) Reduce(rank int, in []float64, clock float64, kind dist.ReduceKind) ([]float64, float64, error) {
	var w wire
	w.u8(fReduce)
	w.u32(uint32(rank))
	w.u8(byte(kind))
	w.f64(clock)
	w.vec(in)
	if err := c.write(w.buf); err != nil {
		return nil, 0, &OpError{Op: "reduce", Rank: c.rank, Peer: -1, Timeout: isTimeout(err), Err: err}
	}
	timer := time.NewTimer(c.opt.OpTimeout)
	defer timer.Stop()
	select {
	case r := <-c.redCh:
		return r.vec, r.maxT, nil
	case <-c.abortCh:
		return nil, 0, dist.ErrWorldAborted
	case <-c.anyCrashed:
		// The hub may have folded and replied to this wave before the peer
		// died; prefer the completed result over the failure.
		select {
		case r := <-c.redCh:
			return r.vec, r.maxT, nil
		default:
			return nil, 0, dist.ErrPeerGone
		}
	case <-c.readerDone:
		return nil, 0, &OpError{Op: "reduce", Rank: c.rank, Peer: -1, Err: c.readErr}
	case <-timer.C:
		return nil, 0, &OpError{Op: "reduce", Rank: c.rank, Peer: -1, Timeout: true}
	}
}

// MarkCrashed tells the hub this rank is dead by plan; the hub broadcasts
// peer-gone to the survivors.
func (c *Client) MarkCrashed(rank int) {
	c.markCrashedLocal(rank)
	var w wire
	w.u8(fCrashed)
	w.u32(uint32(rank))
	_ = c.write(w.buf) // crash notification is best-effort by design
}

// Abort tears the world down: local wake-up first, then a best-effort
// abort frame so the hub releases the other ranks.
func (c *Client) Abort() {
	c.abortLocal()
	var w wire
	w.u8(fAbort)
	_ = c.write(w.buf) // the hub also aborts on seeing our connection close
}

// Grace is the per-op deadline: the watchdog must allow each healthy
// operation up to this much wall time.
func (c *Client) Grace() time.Duration { return c.opt.OpTimeout }

// Close announces a clean departure to the hub (so the connection drop
// that follows is not mistaken for a process death) and shuts the
// connection down; blocked operations fail with their per-op errors as
// the reader exits.
func (c *Client) Close() error {
	var err error
	c.closeOnce.Do(func() {
		var w wire
		w.u8(fBye)
		// The goodbye is best-effort; a failed write reads as a death,
		// which only costs a spurious respawn.
		_ = c.write(w.buf)
		err = c.conn.Close()
	})
	return err
}

// PutShard implements ckpt.Sink by forwarding the shard to the hub, which
// assembles complete checkpoints and owns the durable file. The shard is
// serialized as a single-rank checkpoint in the canonical ckpt codec.
func (c *Client) PutShard(seq, iter uint64, p int, rs *ckpt.RankState) error {
	data := ckpt.Encode(&ckpt.Checkpoint{Seq: seq, Iter: iter, Ranks: []ckpt.RankState{*rs}})
	var w wire
	w.u8(fShard)
	w.u32(uint32(len(data)))
	w.buf = append(w.buf, data...)
	if err := c.write(w.buf); err != nil {
		return &OpError{Op: "shard", Rank: c.rank, Peer: -1, Timeout: isTimeout(err), Err: err}
	}
	return nil
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}
