// Package par is the shared-memory execution layer under every hot kernel
// in this repository. The distributed layer (package dist) models the
// paper's message-passing parallelism with goroutine "ranks" and a virtual
// clock; package par is orthogonal to it and real: it spreads the actual
// CPU work of a kernel — SpMV rows, vector blocks, finite elements,
// per-subdomain factorizations — across OS threads, the way MiniFE layers
// OpenMP inside an MPI decomposition.
//
// The worker count defaults to GOMAXPROCS, can be pinned with the
// PARAPRE_WORKERS environment variable, and can be changed at runtime with
// SetWorkers. One worker means every helper runs inline with zero
// goroutine overhead, so the serial fallback is the code path itself.
//
// Determinism contract: helpers that only partition exact elementwise work
// (For, ForSegments, Run) produce results independent of the worker count
// trivially. For floating-point reductions, SumBlocks fixes the block
// boundaries as a function of the problem size alone — never the worker
// count — and combines the per-block partial sums in ascending block
// order, so a reduction yields bit-identical results at 1 worker and at N.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"parapre/internal/paranoid"
)

// EnvWorkers is the environment variable that pins the worker count.
const EnvWorkers = "PARAPRE_WORKERS"

var workers atomic.Int32

func init() {
	workers.Store(int32(workersFromEnv(os.Getenv, runtime.GOMAXPROCS(0))))
}

// workersFromEnv resolves the initial worker count from the environment,
// falling back to def (normally GOMAXPROCS). Non-numeric or non-positive
// values are ignored.
func workersFromEnv(getenv func(string) string, def int) int {
	if s := getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	if def < 1 {
		def = 1
	}
	return def
}

// Workers returns the current worker count (always ≥ 1).
func Workers() int { return int(workers.Load()) }

// HaveParallelism reports whether fanning work out to goroutines can run
// on more than one CPU at all. On a single-P process (GOMAXPROCS=1) every
// parallel region would just time-slice one core while paying the spawn
// and synchronization overhead, so the helpers below stay inline there —
// an adaptive fallback, not a semantic switch: all helpers produce
// bit-identical results at any worker count by construction.
func HaveParallelism() bool { return runtime.GOMAXPROCS(0) > 1 }

// SetWorkers sets the worker count for all subsequent parallel regions and
// returns the previous value. Counts below 1 are clamped to 1 (serial).
// It is safe to call concurrently; in-flight regions keep the count they
// started with.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int32(n)))
}

// For runs body over the index range [0, n) split into at most Workers()
// contiguous chunks of at least grain indices each. The calling goroutine
// executes the first chunk itself, so a serial configuration adds no
// overhead. body must be safe to run concurrently on disjoint ranges.
func For(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if maxW := (n + grain - 1) / grain; w > maxW {
		w = maxW
	}
	if w <= 1 || !HaveParallelism() {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for c := 1; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	body(0, n/w)
	wg.Wait()
}

// ForSegments runs body once per segment [bounds[s], bounds[s+1]), all
// segments concurrently (the first on the calling goroutine). bounds must
// be non-decreasing; empty segments are skipped. It is the runner for
// precomputed load-balanced partitions such as the nnz-balanced row
// partition of sparse.CSR.
func ForSegments(bounds []int, body func(lo, hi int)) {
	segs := len(bounds) - 1
	if segs <= 0 {
		return
	}
	if paranoid.Enabled {
		for s := 0; s < segs; s++ {
			paranoid.Check(bounds[s] <= bounds[s+1],
				"par: ForSegments bounds not non-decreasing at %d: %d > %d", s, bounds[s], bounds[s+1])
		}
	}
	if segs == 1 || !HaveParallelism() {
		for s := 0; s < segs; s++ {
			if bounds[s] < bounds[s+1] {
				body(bounds[s], bounds[s+1])
			}
		}
		return
	}
	var wg sync.WaitGroup
	for s := 1; s < segs; s++ {
		lo, hi := bounds[s], bounds[s+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(lo, hi)
		}()
	}
	if bounds[0] < bounds[1] {
		body(bounds[0], bounds[1])
	}
	wg.Wait()
}

// Run invokes body(t) for every task t in [0, tasks), distributing tasks
// dynamically over min(Workers(), tasks) goroutines. Unlike For it does
// not assume uniform task cost — it is meant for coarse independent jobs
// such as per-subdomain ILU/ARMS factorizations, whose sizes are skewed by
// the partitioner.
func Run(tasks int, body func(t int)) {
	if tasks <= 0 {
		return
	}
	w := Workers()
	if w > tasks {
		w = tasks
	}
	if w <= 1 || !HaveParallelism() {
		for t := 0; t < tasks; t++ {
			body(t)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			body(t)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for i := 1; i < w; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// BlockSize is the fixed width of reduction blocks. It depends on nothing:
// not the worker count, not the machine. That invariance is what makes the
// blocked reductions deterministic — see SumBlocks.
const BlockSize = 4096

// NumBlocks returns the number of fixed-size reduction blocks covering
// [0, n).
func NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BlockSize - 1) / BlockSize
}

// SumBlocks computes Σ_b block(lo_b, hi_b) over the fixed-size blocks of
// [0, n), evaluating blocks in parallel and combining the per-block
// partial sums serially in ascending block order. Because the block
// boundaries depend only on n and the combination order is fixed, the
// result is bit-identical for every worker count — the deterministic
// reduction that keeps Krylov iteration counts and residual histories
// independent of the parallel configuration.
func SumBlocks(n int, block func(lo, hi int) float64) float64 {
	nb := NumBlocks(n)
	switch nb {
	case 0:
		return 0
	case 1:
		return block(0, n)
	}
	if Workers() == 1 || !HaveParallelism() {
		var s float64
		for b := 0; b < nb; b++ {
			lo := b * BlockSize
			hi := lo + BlockSize
			if hi > n {
				hi = n
			}
			s += block(lo, hi)
		}
		return s
	}
	partials := make([]float64, nb)
	For(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * BlockSize
			hi := lo + BlockSize
			if hi > n {
				hi = n
			}
			partials[b] = block(lo, hi)
		}
	})
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}
