package ilu

import (
	"testing"

	"parapre/internal/par"
)

// measureSteadyAllocs pins the pool to one worker (the fan-out's own
// closures are not part of the solve contract), runs one warm-up call to
// build the cached level schedules, and measures steady-state allocations.
func measureSteadyAllocs(t *testing.T, solve func()) float64 {
	t.Helper()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	solve()
	return testing.AllocsPerRun(10, solve)
}

// TestLUSolveZeroAllocSteadyState pins the dynamic twin of the static
// //lint:allocfree proof on the ILU triangular solve.
//
// alloctest: (*ilu.LU).Solve
func TestLUSolveZeroAllocSteadyState(t *testing.T) {
	a := tridiag(300)
	f, err := ILU0(a)
	if err != nil {
		t.Fatalf("ILU0: %v", err)
	}
	n := a.Rows
	x := make([]float64, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	if got := measureSteadyAllocs(t, func() { f.Solve(x, b) }); got != 0 {
		t.Fatalf("LU.Solve allocates %v objects per steady-state call, want 0", got)
	}
}

// TestCholSolveZeroAllocSteadyState pins the dynamic twin of the static
// //lint:allocfree proof on the incomplete-Cholesky solve.
//
// alloctest: (*ilu.Chol).Solve
func TestCholSolveZeroAllocSteadyState(t *testing.T) {
	a := tridiag(300)
	c, err := IC0(a)
	if err != nil {
		t.Fatalf("IC0: %v", err)
	}
	n := a.Rows
	z := make([]float64, n)
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%5) - 2
	}
	if got := measureSteadyAllocs(t, func() { c.Solve(z, r) }); got != 0 {
		t.Fatalf("Chol.Solve allocates %v objects per steady-state call, want 0", got)
	}
}
