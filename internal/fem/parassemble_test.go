package fem

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"parapre/internal/grid"
	"parapre/internal/par"
	"parapre/internal/sparse"
)

func withWorkers(w int, fn func()) {
	prev := par.SetWorkers(w)
	defer par.SetWorkers(prev)
	fn()
}

// testPDE exercises every assembly branch at once: variable diffusion,
// convection, SUPG, and a source term.
func testPDE() ScalarPDE {
	return ScalarPDE{
		Diffusion:   1,
		DiffusionFn: func(x []float64) float64 { return 1 + 10*x[0] + x[1]*x[1] },
		Velocity:    []float64{20, -7},
		Source:      func(x []float64) float64 { return math.Sin(3*x[0]) * math.Cos(x[1]) },
		SUPG:        true,
	}
}

func eqSystem(t *testing.T, w int, a, ref *sparse.CSR, b, refb []float64) {
	t.Helper()
	if !a.Equal(ref) {
		t.Fatalf("w=%d: assembled matrix differs from serial", w)
	}
	for i := range refb {
		if b[i] != refb[i] {
			t.Fatalf("w=%d: rhs[%d] = %x, want %x", w, i, b[i], refb[i])
		}
	}
}

// TestAssembleScalarBitIdenticalAcrossWorkers: the chunked element loop
// with per-worker triplet buffers must reproduce the serial assembly
// exactly, for every worker count.
func TestAssembleScalarBitIdenticalAcrossWorkers(t *testing.T) {
	m := grid.UnitSquareTri(40) // 3200 elements > femParMinElems
	if m.NumElems() < femParMinElems {
		t.Fatalf("mesh too small (%d elems) to engage the parallel path", m.NumElems())
	}
	pde := testPDE()
	var refA *sparse.CSR
	var refB []float64
	withWorkers(1, func() { refA, refB = AssembleScalar(m, pde) })
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			a, b := AssembleScalar(m, pde)
			eqSystem(t, w, a, refA, b, refB)
		})
	}
}

func TestAssembleMassBitIdenticalAcrossWorkers(t *testing.T) {
	m := grid.UnitSquareTri(40)
	var ref *sparse.CSR
	withWorkers(1, func() { ref = AssembleMass(m) })
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			if a := AssembleMass(m); !a.Equal(ref) {
				t.Fatalf("w=%d: mass matrix differs from serial", w)
			}
		})
	}
}

func TestAssembleElasticityBitIdenticalAcrossWorkers(t *testing.T) {
	m := grid.UnitSquareTri(40)
	f := func(x []float64) (float64, float64) { return x[0] * x[1], -x[0] }
	var refA *sparse.CSR
	var refB []float64
	withWorkers(1, func() { refA, refB = AssembleElasticity(m, 1, 2.5, f) })
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			a, b := AssembleElasticity(m, 1, 2.5, f)
			eqSystem(t, w, a, refA, b, refB)
		})
	}
}

// TestAssembleScalarRowsBitIdenticalAcrossWorkers covers the distributed
// row-slab variant, whose kernel skips non-owned elements.
func TestAssembleScalarRowsBitIdenticalAcrossWorkers(t *testing.T) {
	m := grid.UnitSquareTri(40)
	pde := testPDE()
	owned := func(node int) bool { return node%3 != 1 }
	var refA *sparse.CSR
	var refB []float64
	withWorkers(1, func() { refA, refB = AssembleScalarRows(m, pde, owned) })
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			a, b := AssembleScalarRows(m, pde, owned)
			eqSystem(t, w, a, refA, b, refB)
		})
	}
}

// BenchmarkAssemblySerialVsParallel measures wall-clock assembly time of
// the full SUPG scalar system on a 128×128 unit-square mesh (32 768
// elements), serial versus the full worker pool.
func BenchmarkAssemblySerialVsParallel(b *testing.B) {
	m := grid.UnitSquareTri(128)
	pde := testPDE()
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 1 {
			name = "serial"
		}
		b.Run(name, func(b *testing.B) {
			prev := par.SetWorkers(w)
			defer par.SetWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, _ := AssembleScalar(m, pde)
				_ = a
			}
			b.ReportMetric(float64(m.NumElems())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Melem/s")
		})
	}
}
