package grid

import (
	"fmt"
	"math"
)

// UnitSquareTri triangulates the unit square with m×m nodes (m ≥ 2) on a
// uniform lattice; every lattice cell is split into two triangles. This is
// the grid of Test Cases 1 and 5 (the paper uses m = 1001, i.e. 1,002,001
// points).
func UnitSquareTri(m int) *Mesh {
	if m < 2 {
		panic(fmt.Sprintf("grid: UnitSquareTri needs m >= 2, got %d", m))
	}
	h := 1 / float64(m-1)
	mesh := &Mesh{
		Dim:   2,
		NPE:   3,
		X:     make([]float64, 0, 2*m*m),
		Elems: make([]int, 0, 6*(m-1)*(m-1)),
	}
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			mesh.X = append(mesh.X, float64(i)*h, float64(j)*h)
		}
	}
	id := func(i, j int) int { return j*m + i }
	for j := 0; j < m-1; j++ {
		for i := 0; i < m-1; i++ {
			a, b, c, d := id(i, j), id(i+1, j), id(i+1, j+1), id(i, j+1)
			mesh.Elems = append(mesh.Elems, a, b, c, a, c, d)
		}
	}
	return mesh
}

// kuhnTets lists the six tetrahedra of the Kuhn subdivision of the unit
// cube, as corner indices into the standard corner numbering
// (i + 2j + 4k for corner offsets (i,j,k) ∈ {0,1}³). Every tetrahedron
// contains the main diagonal 0–7, which makes the subdivision conforming
// across neighboring cells.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7},
	{0, 1, 5, 7},
	{0, 2, 3, 7},
	{0, 2, 6, 7},
	{0, 4, 5, 7},
	{0, 4, 6, 7},
}

// UnitCubeTet tetrahedralizes the unit cube with m×m×m nodes, six
// tetrahedra per lattice cell (Kuhn subdivision). This is the grid of Test
// Cases 2 and 4 (the paper uses m = 101, i.e. 1,030,301 points).
func UnitCubeTet(m int) *Mesh {
	if m < 2 {
		panic(fmt.Sprintf("grid: UnitCubeTet needs m >= 2, got %d", m))
	}
	h := 1 / float64(m-1)
	mesh := &Mesh{
		Dim:   3,
		NPE:   4,
		X:     make([]float64, 0, 3*m*m*m),
		Elems: make([]int, 0, 24*(m-1)*(m-1)*(m-1)),
	}
	for k := 0; k < m; k++ {
		for j := 0; j < m; j++ {
			for i := 0; i < m; i++ {
				mesh.X = append(mesh.X, float64(i)*h, float64(j)*h, float64(k)*h)
			}
		}
	}
	id := func(i, j, k int) int { return (k*m+j)*m + i }
	var corners [8]int
	for k := 0; k < m-1; k++ {
		for j := 0; j < m-1; j++ {
			for i := 0; i < m-1; i++ {
				for c := 0; c < 8; c++ {
					corners[c] = id(i+c&1, j+(c>>1)&1, k+(c>>2)&1)
				}
				for _, t := range kuhnTets {
					mesh.Elems = append(mesh.Elems,
						corners[t[0]], corners[t[1]], corners[t[2]], corners[t[3]])
				}
			}
		}
	}
	return mesh
}

// QuarterRing builds a curvilinear structured triangulation of the quarter
// annulus {1 ≤ r ≤ 2, 0 ≤ θ ≤ π/2}, with mr nodes radially and mt nodes
// angularly. This is the grid of Test Case 6 (two displacement unknowns
// per node are added later by the elasticity discretization).
func QuarterRing(mr, mt int) *Mesh {
	if mr < 2 || mt < 2 {
		panic(fmt.Sprintf("grid: QuarterRing needs mr, mt >= 2, got %d, %d", mr, mt))
	}
	mesh := &Mesh{
		Dim:   2,
		NPE:   3,
		X:     make([]float64, 0, 2*mr*mt),
		Elems: make([]int, 0, 6*(mr-1)*(mt-1)),
	}
	for j := 0; j < mt; j++ {
		theta := math.Pi / 2 * float64(j) / float64(mt-1)
		for i := 0; i < mr; i++ {
			r := 1 + float64(i)/float64(mr-1)
			mesh.X = append(mesh.X, r*math.Cos(theta), r*math.Sin(theta))
		}
	}
	id := func(i, j int) int { return j*mr + i }
	for j := 0; j < mt-1; j++ {
		for i := 0; i < mr-1; i++ {
			a, b, c, d := id(i, j), id(i+1, j), id(i+1, j+1), id(i, j+1)
			mesh.Elems = append(mesh.Elems, a, b, c, a, c, d)
		}
	}
	return mesh
}
