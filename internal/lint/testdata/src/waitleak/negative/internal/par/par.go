// Negative waitleak fixture: every join idiom the analyzer recognizes —
// Wait on all branches, a deferred Wait covering every exit, channel
// receives, range over a channel — plus spawns nested in closures, which
// are the closure's business. The analyzer must stay silent.
package par

import (
	"errors"
	"sync"
)

var errFail = errors.New("par: worker failure")

// JoinAllPaths waits on both the error path and the happy path.
func JoinAllPaths(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if fail {
		wg.Wait()
		return errFail
	}
	wg.Wait()
	return nil
}

// DeferJoin covers every exit with one deferred Wait.
func DeferJoin(fail bool) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	if fail {
		return errFail
	}
	return nil
}

// ReceiveJoin joins through a channel receive.
func ReceiveJoin() int {
	ch := make(chan int)
	go feed(ch)
	return <-ch
}

// RangeJoin joins by draining the channel.
func RangeJoin() int {
	ch := make(chan int)
	go feedAndClose(ch)
	s := 0
	for v := range ch {
		s += v
	}
	return s
}

// Spawner's goroutine is launched inside a closure: joined (or not) when
// the closure runs, not on Spawner's paths.
func Spawner(done chan struct{}) func() {
	return func() {
		go drain(done)
	}
}

func feed(ch chan int) { ch <- 1 }

func feedAndClose(ch chan int) {
	ch <- 1
	close(ch)
}

func drain(done chan struct{}) { <-done }
