package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// naiveDFT is the O(n²) oracle.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		out[k] = s
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (sizeExp % 10)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		return maxDiff(x, y) < 1e-10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	x, y := randComplex(rng, n), randComplex(rng, n)
	alpha := complex(1.7, -0.3)
	z := make([]complex128, n)
	for i := range z {
		z[i] = x[i] + alpha*y[i]
	}
	FFT(x)
	FFT(y)
	FFT(z)
	for i := range z {
		want := x[i] + alpha*y[i]
		if cmplx.Abs(z[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := randComplex(rng, n)
	var tEnergy float64
	for _, v := range x {
		tEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	FFT(x)
	var fEnergy float64
	for _, v := range x {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fEnergy/float64(n)-tEnergy) > 1e-8*tEnergy {
		t.Fatalf("Parseval violated: time %v, freq/N %v", tEnergy, fEnergy/float64(n))
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=3")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestDSTIMatchesSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// n+1 power of two => fast path; other n => slow path. Both must agree
	// with the definition.
	for _, n := range []int{1, 3, 7, 15, 31, 5, 10, 12} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := DSTI(x)
		want := slowDSTI(x)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d: DSTI[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestDSTIInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{7, 15, 63, 9} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := InvDSTI(DSTI(x))
		for i := range x {
			if math.Abs(y[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d: InvDSTI∘DSTI differs at %d: %v vs %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestPoissonSolverExactOnEigenmodes(t *testing.T) {
	// u = sin(kπx)sin(lπy) on the grid is an exact eigenvector of the
	// discrete Laplacian, so Solve(Apply(u)) must reproduce u to rounding.
	nx, ny := 15, 31
	hx, hy := 1.0/float64(nx+1), 1.0/float64(ny+1)
	p := NewPoissonSolver(nx, ny, hx, hy)
	for _, kl := range [][2]int{{1, 1}, {3, 2}, {7, 5}} {
		u := make([]float64, nx*ny)
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				u[j*nx+i] = math.Sin(float64(kl[0])*math.Pi*float64(i+1)*hx) *
					math.Sin(float64(kl[1])*math.Pi*float64(j+1)*hy)
			}
		}
		got := p.Solve(p.Apply(u))
		for idx := range u {
			if math.Abs(got[idx]-u[idx]) > 1e-10 {
				t.Fatalf("mode %v: mismatch at %d: %v vs %v", kl, idx, got[idx], u[idx])
			}
		}
	}
}

func TestPoissonSolverRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nx, ny := 31, 15
	p := NewPoissonSolver(nx, ny, 0.5/float64(nx+1), 2.0/float64(ny+1))
	f := make([]float64, nx*ny)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	u := p.Solve(f)
	back := p.Apply(u)
	for i := range f {
		if math.Abs(back[i]-f[i]) > 1e-8 {
			t.Fatalf("Apply(Solve(f)) differs at %d: %v vs %v", i, back[i], f[i])
		}
	}
}

func TestPoissonSolverAwkwardSizes(t *testing.T) {
	// Sizes where n+1 is not a power of two exercise the slow DST path.
	rng := rand.New(rand.NewSource(7))
	nx, ny := 10, 13
	p := NewPoissonSolver(nx, ny, 0.1, 0.07)
	f := make([]float64, nx*ny)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	back := p.Apply(p.Solve(f))
	for i := range f {
		if math.Abs(back[i]-f[i]) > 1e-8 {
			t.Fatalf("awkward size round trip differs at %d", i)
		}
	}
}

func TestPoissonSolveToReusesBuffer(t *testing.T) {
	nx, ny := 7, 7
	p := NewPoissonSolver(nx, ny, 0.125, 0.125)
	f := make([]float64, nx*ny)
	f[nx*ny/2] = 1
	u1 := p.Solve(f)
	u2 := make([]float64, nx*ny)
	p.SolveTo(u2, f)
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatal("SolveTo differs from Solve")
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(8)), 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkPoissonSolve63(b *testing.B) {
	n := 63
	p := NewPoissonSolver(n, n, 1.0/float64(n+1), 1.0/float64(n+1))
	f := make([]float64, n*n)
	for i := range f {
		f[i] = float64(i % 17)
	}
	u := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SolveTo(u, f)
	}
}
