package dist

import (
	"errors"
	"testing"
	"time"
)

// slowTransport wraps the in-process loopback with a fixed wall-clock
// delay on every operation and reports that delay as its Grace — the
// shape of a healthy-but-slow socket transport. It is the regression
// fixture for the watchdog's Grace accounting: without the
// `budget += tr.Grace()` extension, a per-op latency above the raw
// budget reads as "no progress" and fires a spurious DeadlockError.
type slowTransport struct {
	Transport
	delay time.Duration
}

func (s *slowTransport) Recv(to, from int) (Message, error) {
	time.Sleep(s.delay)
	return s.Transport.Recv(to, from)
}

func (s *slowTransport) Reduce(rank int, in []float64, clock float64, kind ReduceKind) ([]float64, float64, error) {
	time.Sleep(s.delay)
	return s.Transport.Reduce(rank, in, clock, kind)
}

func (s *slowTransport) Grace() time.Duration { return 2 * s.delay }

// Satellite: a transport whose per-op latency exceeds the watchdog budget
// must NOT be misread as a deadlock — the budget is extended by the
// transport's Grace, so the slow-but-progressing world completes cleanly.
func TestWatchdogToleratesSlowTransport(t *testing.T) {
	const p = 3
	tr := &slowTransport{Transport: NewLoopback(p, 0), delay: 120 * time.Millisecond}
	// Raw budget (40ms) is far below the per-op latency (120ms); only the
	// Grace extension (240ms) keeps the watchdog quiet.
	opts := WorldOptions{Watchdog: 40 * time.Millisecond, Transport: tr}
	stats, err := RunOpts(p, testMachine(), opts, func(c *Comm) {
		for i := 0; i < 3; i++ {
			c.Barrier()
			next := (c.Rank() + 1) % p
			prev := (c.Rank() + p - 1) % p
			c.Send(next, i, []float64{float64(i)})
			m := c.Recv(prev, i)
			if int(m[0]) != i {
				t.Errorf("rank %d round %d: got %v", c.Rank(), i, m)
			}
		}
	})
	var de *DeadlockError
	if errors.As(err, &de) {
		t.Fatalf("slow transport misdiagnosed as deadlock: %v", err)
	}
	if err != nil {
		t.Fatalf("slow-transport world failed: %v", err)
	}
	if len(stats) != p {
		t.Fatalf("got %d rank stats, want %d", len(stats), p)
	}
}

// A genuine stall through a slow transport must still be caught, and the
// reported budget must carry the Grace extension so the diagnostic states
// the budget that actually applied.
func TestWatchdogStillFiresThroughSlowTransport(t *testing.T) {
	const p = 2
	tr := &slowTransport{Transport: NewLoopback(p, 0), delay: 50 * time.Millisecond}
	opts := WorldOptions{Watchdog: 100 * time.Millisecond, Transport: tr}
	start := time.Now()
	_, err := RunOpts(p, testMachine(), opts, func(c *Comm) {
		c.Recv((c.Rank()+1)%p, 3) // nobody sends: a real deadlock
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if want := 100*time.Millisecond + tr.Grace(); de.Budget != want {
		t.Errorf("reported budget %v, want raw+grace %v", de.Budget, want)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("slow-transport deadlock detection took far longer than the budget")
	}
}
