package arms

import (
	"testing"

	"parapre/internal/sparse"
)

// checkNoCrossEdges asserts the group-independent-set invariant: no edge
// of a couples two different groups.
func checkNoCrossEdges(t *testing.T, a *sparse.CSR, group []int) {
	t.Helper()
	for v := 0; v < a.Rows; v++ {
		cols, _ := a.Row(v)
		for _, w := range cols {
			if w == v || w >= a.Rows {
				continue
			}
			if group[v] >= 0 && group[w] >= 0 && group[v] != group[w] {
				t.Fatalf("edge (%d,%d) couples groups %d and %d", v, w, group[v], group[w])
			}
		}
	}
}

// tridiag builds the n×n tridiagonal stencil used by the edge cases.
func tridiag(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// maxGroup <= 0 must be clamped to 1, not panic or produce empty groups:
// every group then holds exactly one vertex and the invariant still
// holds.
func TestGroupIndependentSetNonPositiveMaxGroup(t *testing.T) {
	a := tridiag(12)
	for _, mg := range []int{0, -3} {
		group, ng := GroupIndependentSet(a, mg)
		checkNoCrossEdges(t, a, group)
		counts := make([]int, ng)
		for _, g := range group {
			if g >= 0 {
				counts[g]++
			}
		}
		for g, c := range counts {
			if c > 1 {
				t.Fatalf("maxGroup=%d: group %d holds %d vertices, cap is 1", mg, g, c)
			}
			if c == 0 {
				t.Fatalf("maxGroup=%d: group %d empty", mg, g)
			}
		}
	}
}

// A fully dense row couples every vertex: after the first vertex seeds a
// group, everything that touches two groups (or a full one) falls into
// the separator, and the invariant must survive.
func TestGroupIndependentSetDenseRow(t *testing.T) {
	const n = 10
	coo := sparse.NewCOO(n, n, n*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		// Row 0 and column 0 dense: vertex 0 neighbors everyone.
		if i > 0 {
			coo.Add(0, i, -1)
			coo.Add(i, 0, -1)
		}
	}
	a := coo.ToCSR()
	group, ng := GroupIndependentSet(a, 3)
	checkNoCrossEdges(t, a, group)
	if ng < 1 {
		t.Fatalf("ngroups = %d, want at least the seed group", ng)
	}
	perm, nB, blocks := IndSetPerm(group, ng)
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	if nB < 1 || nB > n {
		t.Fatalf("grouped part %d out of range", nB)
	}
	if len(blocks) != ng {
		t.Fatalf("blocks %d, want %d", len(blocks), ng)
	}
}

// The empty matrix is a degenerate but legal input: no groups, no
// separator, empty permutation.
func TestGroupIndependentSetEmptyMatrix(t *testing.T) {
	a := sparse.NewCSR(0, 0, 0)
	group, ng := GroupIndependentSet(a, 4)
	if len(group) != 0 {
		t.Fatalf("group length %d, want 0", len(group))
	}
	if ng != 0 {
		t.Fatalf("ngroups = %d, want 0", ng)
	}
	perm, nB, blocks := IndSetPerm(group, ng)
	if len(perm) != 0 || nB != 0 || len(blocks) != 0 {
		t.Fatalf("perm=%v nB=%d blocks=%v, want all empty", perm, nB, blocks)
	}
}

// IndSetPerm must be a true permutation (round-trip through its inverse
// is the identity), with grouped vertices first in group order and the
// separator last, matching the group assignment exactly.
func TestIndSetPermRoundTrip(t *testing.T) {
	a := tridiag(23)
	group, ng := GroupIndependentSet(a, 4)
	perm, nB, blocks := IndSetPerm(group, ng)
	n := len(group)
	if len(perm) != n {
		t.Fatalf("perm length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, old := range perm {
		if old < 0 || old >= n || seen[old] {
			t.Fatalf("perm is not a permutation: %v", perm)
		}
		seen[old] = true
	}
	inv := perm.Inverse()
	for v := 0; v < n; v++ {
		if perm[inv[v]] != v {
			t.Fatalf("inverse round-trip broken at %d", v)
		}
	}
	// New position classifies consistently with the assignment.
	for newIdx, old := range perm {
		if newIdx < nB {
			g := group[old]
			if g < 0 {
				t.Fatalf("separator vertex %d landed in the grouped part", old)
			}
			ext := blocks[g]
			if newIdx < ext[0] || newIdx >= ext[1] {
				t.Fatalf("vertex %d of group %d at %d outside extent %v", old, g, newIdx, ext)
			}
		} else if group[old] >= 0 {
			t.Fatalf("grouped vertex %d landed in the separator part", old)
		}
	}
	// Extents tile [0, nB) in order.
	prev := 0
	for g, ext := range blocks {
		if ext[0] != prev {
			t.Fatalf("group %d extent %v not contiguous after %d", g, ext, prev)
		}
		if ext[1] < ext[0] {
			t.Fatalf("group %d extent %v inverted", g, ext)
		}
		prev = ext[1]
	}
	if prev != nB {
		t.Fatalf("extents end at %d, want %d", prev, nB)
	}
}
