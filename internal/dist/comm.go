package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"parapre/internal/obs"
)

// DefaultBufferDepth is the per-ordered-pair channel capacity of a world
// created without options. See WorldOptions.BufferDepth for the deadlock
// regime it implies.
const DefaultBufferDepth = 8

// WorldOptions tunes a communicator world beyond the machine model.
type WorldOptions struct {
	// BufferDepth is the per-ordered-pair channel capacity (0 means
	// DefaultBufferDepth). A sender blocks once it has BufferDepth
	// undelivered messages to one peer, so protocols that post all sends
	// before any receive — like the dsys interface exchange — deadlock
	// when some neighbor must absorb more than BufferDepth messages
	// before its first receive. With the exchange's one-message-per-
	// neighbor pattern any depth ≥ 1 is safe for arbitrarily dense
	// neighbor graphs; raise it for protocols that burst several messages
	// per peer, or lower it to 1 to stress eagerness assumptions.
	BufferDepth int

	// Faults injects the given deterministic chaos plan (nil = none).
	// Fault plans should be driven through RunOpts, which converts
	// injected failures into typed errors.
	Faults *FaultPlan

	// Watchdog is the real-time budget of RunOpts' progress watchdog: if
	// no rank completes an operation for this long while some rank is
	// still running, the world is declared deadlocked, every rank is
	// unwound, and RunOpts returns a DeadlockError with per-rank
	// diagnostics. 0 disables the watchdog (RunOpts applies
	// DefaultWatchdogBudget when a fault plan is set).
	Watchdog time.Duration

	// Collector, when non-nil, records per-rank spans (sends, receives,
	// collectives, and the solver-level phases hooked in through
	// Comm.BeginSpan) and counters into the given observability
	// collector. A nil collector leaves every operation on the
	// single-pointer-check fast path and all modeled times bit-identical
	// to an unobserved world.
	Collector *obs.Collector

	// Transport carries the world's rank communication. Nil (the default)
	// installs the in-process channel transport, which preserves the
	// historical semantics and virtual-time model bit-for-bit; inject a
	// dist/socket client (multi-process ranks) or a test wrapper to run
	// the same protocol over a different medium.
	Transport Transport
}

// World couples P rank goroutines to one machine model. Create it with
// NewWorld and hand each rank its Comm, or use Run / RunOpts to drive
// everything.
type World struct {
	P       int
	Machine *Machine
	opts    WorldOptions
	tr      Transport

	// abort plumbing (always allocated; only exercised under RunOpts
	// with faults or a watchdog).
	abortOnce sync.Once
	abortMu   sync.Mutex
	abortErr  error

	// progress tracking for the watchdog (enabled iff track).
	track    bool
	progress atomic.Uint64
	states   []rankState
}

// rankState is the watchdog-visible snapshot of one rank, updated by the
// rank under its own mutex and sampled by the watchdog goroutine.
type rankState struct {
	mu sync.Mutex
	RankState
}

// NewWorld creates a communicator world of p ranks on machine m with
// default options.
func NewWorld(p int, m *Machine) *World {
	return NewWorldOpts(p, m, WorldOptions{})
}

// NewWorldOpts creates a communicator world with explicit options.
func NewWorldOpts(p int, m *Machine, opts WorldOptions) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d", p))
	}
	tr := opts.Transport
	if tr == nil {
		tr = NewLoopback(p, opts.BufferDepth)
	}
	w := &World{
		P:       p,
		Machine: m,
		opts:    opts,
		tr:      tr,
		track:   opts.Watchdog > 0,
		states:  make([]rankState, p),
	}
	for r := range w.states {
		w.states[r].Rank = r
		w.states[r].Peer = -1
		w.states[r].Tag = -1
	}
	return w
}

// RemoteWorld creates the single-rank view of a P-rank world whose
// communication runs over the injected transport — the multi-process
// path, where each OS process holds exactly one rank and tr is a
// dist/socket client. Only Comm(rank) of the owning rank may be used;
// fault plans and the in-process watchdog (both of which need the whole
// world in one address space) are ignored.
func RemoteWorld(p int, m *Machine, tr Transport, opts WorldOptions) *World {
	opts.Faults = nil
	opts.Watchdog = 0
	opts.Transport = tr
	return NewWorldOpts(p, m, opts)
}

// abort marks the world failed with err (first abort wins), releases
// every rank blocked in a transport operation or collective, and makes
// all subsequent operations unwind with abortPanic.
func (w *World) abort(err error) {
	w.abortOnce.Do(func() {
		w.abortMu.Lock()
		w.abortErr = err
		w.abortMu.Unlock()
		w.tr.Abort()
	})
}

// abortReason returns the error the world was aborted with, if any.
func (w *World) abortReason() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// markCrashed records rank r's hard crash and wakes every peer blocked on
// a receive from it.
func (w *World) markCrashed(r int) {
	st := &w.states[r]
	st.mu.Lock()
	st.Crashed = true
	st.mu.Unlock()
	w.tr.MarkCrashed(r)
	w.progress.Add(1)
}

// markDone records that rank r's function returned.
func (w *World) markDone(r int) {
	st := &w.states[r]
	st.mu.Lock()
	st.Done = true
	st.mu.Unlock()
	w.progress.Add(1)
}

// snapshot copies every rank's diagnostic state.
func (w *World) snapshot() []RankState {
	out := make([]RankState, w.P)
	for r := range w.states {
		st := &w.states[r]
		st.mu.Lock()
		out[r] = st.RankState
		st.mu.Unlock()
	}
	return out
}

// allDone reports whether every rank has returned or crashed.
func (w *World) allDone() bool {
	for r := range w.states {
		st := &w.states[r]
		st.mu.Lock()
		fin := st.Done || st.Crashed
		st.mu.Unlock()
		if !fin {
			return false
		}
	}
	return true
}

// Comm is rank r's handle to the world. It is not safe for concurrent use
// by multiple goroutines (exactly like an MPI rank).
type Comm struct {
	w    *World
	rank int

	clock       float64 // virtual seconds since Run started
	computeTime float64 // portion of clock spent in Compute
	faultDelay  float64 // portion of clock that is injected fault stall
	flops       float64
	msgsSent    int
	bytesSent   int

	faults *rankFaults // nil when the world has no fault plan

	rec   *obs.RankRecorder // nil when the world has no collector
	phase string            // innermost open span kind (flop/byte attribution)
}

// Comm returns the handle of rank r.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.P {
		panic(fmt.Sprintf("dist: rank %d of %d", r, w.P))
	}
	c := &Comm{w: w, rank: r}
	if w.opts.Faults != nil {
		c.faults = newRankFaults(w.opts.Faults, r)
	}
	c.rec = w.opts.Collector.Rank(r) // nil-safe: nil collector ⇒ nil recorder
	return c
}

// ObsEnabled reports whether this rank records observability data.
func (c *Comm) ObsEnabled() bool { return c.rec != nil }

// ObsCount increments a per-rank observability counter (no-op when
// tracing is off).
func (c *Comm) ObsCount(name string, v float64) {
	if c.rec != nil {
		c.rec.Count(name, v)
	}
}

// SpanHandle is an open observability span on this rank, created by
// BeginSpan and closed by EndSpan. The zero handle (tracing off) is
// inert.
type SpanHandle struct {
	span      obs.Span
	prevPhase string
}

// BeginSpan opens a span of the given kind (see the obs.Kind* constants)
// at the rank's current virtual clock and makes kind the phase to which
// Compute flops and Send bytes are attributed until the matching
// EndSpan. Spans nest; the innermost phase wins attribution. name is an
// optional label shown in trace viewers. With tracing off this is a
// single pointer check.
func (c *Comm) BeginSpan(kind, name string) SpanHandle {
	if c.rec == nil {
		return SpanHandle{}
	}
	h := SpanHandle{span: c.rec.Begin(kind, name, c.clock), prevPhase: c.phase}
	c.phase = kind
	return h
}

// EndSpan closes a span opened with BeginSpan at the current virtual
// clock and restores the enclosing phase.
func (c *Comm) EndSpan(h SpanHandle) {
	if c.rec == nil {
		return
	}
	h.span.End(c.clock)
	c.phase = h.prevPhase
}

// Rank returns this process's rank in [0, P).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size P.
func (c *Comm) Size() int { return c.w.P }

// MachineName returns the name of the machine profile in use.
func (c *Comm) MachineName() string { return c.w.Machine.Name }

// beginOp fires planned crashes and publishes the rank's in-progress op
// for the watchdog. peer/tag are -1 for collectives and compute.
func (c *Comm) beginOp(op string, peer, tag int) {
	if c.faults != nil {
		c.faults.step(c.rank)
	}
	if !c.w.track {
		return
	}
	st := &c.w.states[c.rank]
	st.mu.Lock()
	st.LastOp = op
	st.Peer = peer
	st.Tag = tag
	st.Clock = c.clock
	st.Blocked = true
	st.mu.Unlock()
}

// endOp publishes op completion; every completion counts as world
// progress for the watchdog.
func (c *Comm) endOp() {
	if !c.w.track {
		return
	}
	st := &c.w.states[c.rank]
	st.mu.Lock()
	st.Blocked = false
	st.Ops++
	st.Clock = c.clock
	st.mu.Unlock()
	c.w.progress.Add(1)
}

// Compute charges the virtual clock for flops floating-point operations
// of local work. Solver kernels call this with their operation counts.
// A straggler fault plan stretches the wait on the clock, but the
// stretch is booked as Stats.FaultDelay, not ComputeTime: the modeled
// cost of the work itself is machine-determined and must not change
// under chaos.
func (c *Comm) Compute(flops float64) {
	c.beginOp("compute", -1, -1)
	t := c.w.Machine.computeTime(flops)
	if c.faults != nil && c.faults.straggle > 1 {
		extra := t * (c.faults.straggle - 1)
		c.clock += extra
		c.faultDelay += extra
		if c.rec != nil {
			c.rec.Count("fault_straggle_seconds", extra)
		}
	}
	c.clock += t
	c.computeTime += t
	c.flops += flops
	if c.rec != nil {
		c.rec.CountPhase("flops", c.phase, flops)
	}
	c.endOp()
}

// Send transmits data to rank to with the given tag. The data slice is
// copied, so the caller may reuse its buffer. The sender's clock is
// charged the per-message overhead α before the message is stamped, so
// the receiver observes it too; the receiver additionally pays
// α + β·bytes on delivery. Send blocks only when the channel buffer is
// full (WorldOptions.BufferDepth outstanding messages per ordered pair).
func (c *Comm) Send(to, tag int, data []float64) {
	c.beginOp("send", to, tag)
	var sp obs.Span
	if c.rec != nil {
		sp = c.rec.BeginComm(obs.KindSend, to, tag, 8*len(data), c.clock)
		c.rec.CountPhase("bytes", c.phase, float64(8*len(data)))
	}
	buf := append([]float64(nil), data...)
	c.msgsSent++
	c.bytesSent += 8 * len(buf)
	// Sender-side overhead: the α spent handing the message to the
	// network is the sender's time, not the receiver's.
	c.clock += c.w.Machine.Latency
	m := Message{Tag: tag, Data: buf, Time: c.clock}
	if c.faults != nil {
		delay, dropped, corrupted := c.faults.sendFaults(buf, to)
		m.Time += delay
		m.FDelay = delay
		if c.rec != nil {
			if delay > 0 {
				c.rec.Count("fault_delays", 1)
			}
			if corrupted {
				c.rec.Count("fault_corruptions", 1)
			}
			if dropped {
				c.rec.Count("fault_drops", 1)
			}
		}
		if dropped {
			sp.End(c.clock)
			c.endOp()
			return // the network ate it; the stats above still count the send
		}
	}
	if err := c.w.tr.Send(c.rank, to, m); err != nil {
		// A world abort unwinds the rank quietly; any other transport
		// failure (a socket IO error) keeps the legacy panicking contract
		// of Send — RunOpts and RunRank convert it into a typed error.
		if errors.Is(err, ErrWorldAborted) {
			panic(abortPanic{})
		}
		panic(err)
	}
	sp.End(c.clock)
	c.endOp()
}

// Recv receives the next message from rank from, which must carry the
// expected tag. It is the legacy panicking wrapper around RecvErr: a tag
// mismatch or crashed peer panics with the typed error as the panic
// value.
func (c *Comm) Recv(from, tag int) []float64 {
	data, err := c.RecvErr(from, tag)
	if err != nil {
		panic(err)
	}
	return data
}

// RecvErr receives the next message from rank from. The receiver's clock
// advances to max(own, sender) + α + β·bytes. A message with the wrong
// tag yields a *TagMismatchError; a receive from a hard-crashed peer with
// no message left in flight yields a *PeerCrashedError.
func (c *Comm) RecvErr(from, tag int) ([]float64, error) {
	c.beginOp("recv", from, tag)
	var sp obs.Span
	if c.rec != nil {
		sp = c.rec.BeginComm(obs.KindRecv, from, tag, 0, c.clock)
	}
	m, err := c.w.tr.Recv(c.rank, from)
	if err != nil {
		if errors.Is(err, ErrWorldAborted) {
			panic(abortPanic{})
		}
		sp.End(c.clock)
		c.endOp()
		if errors.Is(err, ErrPeerGone) {
			return nil, &PeerCrashedError{Rank: c.rank, Peer: from, Tag: tag}
		}
		return nil, err // transport-level typed error (socket IO failure)
	}
	if m.Tag != tag {
		sp.End(c.clock)
		c.endOp()
		return nil, &TagMismatchError{Rank: c.rank, Peer: from, Want: tag, Got: m.Tag}
	}
	if m.Time > c.clock {
		// The receiver idles until the message's stamped arrival. The
		// part of that wait caused by injected delay jitter is fault
		// stall, not modeled communication: book it separately so chaos
		// runs do not inflate the comm fraction.
		wait := m.Time - c.clock
		if m.FDelay > 0 {
			d := m.FDelay
			if d > wait {
				d = wait
			}
			c.faultDelay += d
		}
		c.clock = m.Time
	}
	c.clock += c.w.Machine.messageTime(8 * len(m.Data))
	sp.End(c.clock)
	c.endOp()
	return m.Data, nil
}

// Stats reports this rank's accounting so far. The three buckets
// partition the clock exactly: Clock = ComputeTime + CommTime +
// FaultDelay.
type Stats struct {
	Rank        int
	Clock       float64 // total virtual seconds
	ComputeTime float64 // virtual seconds of local work (unstretched by fault plans)
	CommTime    float64 // Clock − ComputeTime − FaultDelay: modeled communication and wait
	FaultDelay  float64 // injected chaos stall: delay jitter waits and straggler stretch
	Flops       float64
	MsgsSent    int
	BytesSent   int
}

// Stats returns a snapshot of this rank's accounting.
func (c *Comm) Stats() Stats {
	return Stats{
		Rank:        c.rank,
		Clock:       c.clock,
		ComputeTime: c.computeTime,
		CommTime:    c.clock - c.computeTime - c.faultDelay,
		FaultDelay:  c.faultDelay,
		Flops:       c.flops,
		MsgsSent:    c.msgsSent,
		BytesSent:   c.bytesSent,
	}
}

// RestoreStats resets this rank's accounting to a previously captured
// snapshot — the checkpoint-restore path, which must resume the virtual
// clocks exactly where the interrupted run left them so modeled times
// are independent of how often the solve was killed. It must be called
// before the rank performs any operation.
func (c *Comm) RestoreStats(s Stats) {
	c.clock = s.Clock
	c.computeTime = s.ComputeTime
	c.faultDelay = s.FaultDelay
	c.flops = s.Flops
	c.msgsSent = s.MsgsSent
	c.bytesSent = s.BytesSent
}

// FaultCursor returns the position of this rank's fault-plan RNG stream:
// the count of raw draws consumed plus the operation counter driving the
// planned crash point. Zero values on a world without a fault plan.
func (c *Comm) FaultCursor() (draws uint64, ops int) {
	if c.faults == nil {
		return 0, 0
	}
	return c.faults.src.n, c.faults.ops
}

// FastForwardFaults advances this rank's fault-plan RNG stream to the
// given cursor (a previous FaultCursor result), so a restored solve sees
// exactly the faults the uninterrupted run would have seen from that
// point on. No-op without a fault plan.
func (c *Comm) FastForwardFaults(draws uint64, ops int) {
	if c.faults == nil {
		return
	}
	for c.faults.src.n < draws {
		c.faults.src.Int63()
	}
	c.faults.ops = ops
}

// ObsCounterSnapshot copies this rank's observability counters (nil when
// tracing is off) for inclusion in a solver checkpoint.
func (c *Comm) ObsCounterSnapshot() map[string]float64 {
	return c.rec.CounterSnapshot()
}

// ObsMergeCounters folds previously checkpointed counters back into this
// rank's recorder on restore, so post-restore metrics cover the whole
// logical solve. No-op when tracing is off.
func (c *Comm) ObsMergeCounters(m map[string]float64) {
	c.rec.MergeCounters(m)
}

// MaxClock returns the slowest rank's virtual time — the modeled
// wall-clock time of the parallel run. An empty slice yields 0 (there is
// nothing to time); callers that must distinguish "no ranks" from "zero
// time", or that cannot vouch for the slice's integrity, use
// MaxClockErr.
func MaxClock(stats []Stats) float64 {
	var m float64
	for _, s := range stats {
		if s.Clock > m {
			m = s.Clock
		}
	}
	return m
}

// MaxClockErr is the checked variant of MaxClock: it rejects an empty
// slice and a slice whose entries are not exactly ranks 0..len-1 in
// order (the shape every Run/RunOpts result has), so silent
// zero-time results and duplicated or misassembled per-rank stats
// surface as errors instead of poisoned timings.
func MaxClockErr(stats []Stats) (float64, error) {
	if len(stats) == 0 {
		return 0, &StatsError{Index: -1}
	}
	for i, s := range stats {
		if s.Rank != i {
			return 0, &StatsError{Index: i, Got: s.Rank}
		}
	}
	return MaxClock(stats), nil
}
