package gateway

import (
	"context"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Submit when the tenant's queue is at
// capacity — the HTTP layer maps it to 429 with Retry-After.
type ErrQueueFull struct {
	Tenant     string
	Depth      int
	RetryAfter int // seconds — a crude service-rate estimate
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("gateway: tenant %q queue full (%d queued)", e.Tenant, e.Depth)
}

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = fmt.Errorf("gateway: server is draining")

// Scheduler runs jobs on a bounded worker pool with one FIFO queue per
// tenant. Admission is per tenant (a noisy tenant fills its own queue
// and gets 429s; others are unaffected) and dispatch round-robins over
// tenants with backlog, so service is fair rather than
// first-come-first-served across the whole server.
type Scheduler struct {
	workers int
	depth   int
	run     func(context.Context, *Job)

	mu       sync.Mutex
	cond     *sync.Cond
	queues   map[string][]*Job
	tenants  []string // round-robin order; tenants join on first submit
	next     int      // round-robin cursor
	pending  int
	active   int
	draining bool

	wg sync.WaitGroup
}

// NewScheduler starts workers goroutines servicing per-tenant queues of
// capacity depth each; run executes one job (it must handle the job's
// full lifecycle: state transitions, events, result).
func NewScheduler(workers, depth int, run func(context.Context, *Job)) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	s := &Scheduler{
		workers: workers,
		depth:   depth,
		run:     run,
		queues:  make(map[string][]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit enqueues the job on its tenant's queue. It fails fast with
// ErrQueueFull (backpressure) or ErrDraining (shutdown) — never blocks.
func (s *Scheduler) Submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	q := s.queues[j.Tenant]
	if len(q) >= s.depth {
		// Retry-After: the backlog ahead of a resubmit, spread over the
		// pool — at least a second so clients actually back off.
		retry := (s.pending + s.active) / s.workers
		if retry < 1 {
			retry = 1
		}
		return &ErrQueueFull{Tenant: j.Tenant, Depth: len(q), RetryAfter: retry}
	}
	if _, ok := s.queues[j.Tenant]; !ok {
		s.tenants = append(s.tenants, j.Tenant)
	}
	s.queues[j.Tenant] = append(q, j)
	s.pending++
	s.cond.Signal()
	return nil
}

// pop removes the next job in round-robin tenant order. Caller holds
// s.mu; returns nil when every queue is empty.
func (s *Scheduler) pop() *Job {
	for range s.tenants {
		t := s.tenants[s.next%len(s.tenants)]
		s.next++
		if q := s.queues[t]; len(q) > 0 {
			j := q[0]
			s.queues[t] = q[1:]
			s.pending--
			return j
		}
	}
	return nil
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending == 0 && !s.draining {
			s.cond.Wait()
		}
		j := s.pop()
		if j == nil {
			// Draining and nothing queued.
			s.mu.Unlock()
			return
		}
		s.active++
		s.mu.Unlock()

		ctx, cancel := context.WithCancel(context.Background())
		// A job canceled while queued skips execution entirely.
		if j.arm(cancel) {
			s.run(ctx, j)
		}
		cancel()

		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}
}

// Queued reports the tenant's current backlog (diagnostics, tests).
func (s *Scheduler) Queued(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[tenant])
}

// Stats reports pending and active job counts.
func (s *Scheduler) Stats() (pending, active int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending, s.active
}

// Drain stops admission, lets queued and running jobs finish, and
// returns when the pool is idle or ctx expires (running solves keep
// their checkpoints either way, so a timeout loses no durable work).
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
