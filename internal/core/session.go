package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"parapre/internal/ckpt"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/obs"
	"parapre/internal/par"
	"parapre/internal/precond"
	"parapre/internal/sparse"
)

// Session amortizes the expensive setup — partitioning, distribution and
// preconditioner construction — over many solves with the same matrix but
// different right-hand sides, the pattern of implicit time stepping
// (Test Case 4 runs one step; a real simulation runs thousands). All
// preconditioners in this repository depend only on the matrix, so they
// are built once — concurrently across ranks on the shared-memory worker
// pool — and reused by every Solve.
type Session struct {
	prob    *Problem
	cfg     Config
	part    []int
	systems []*dsys.System
	pcs     []precond.Preconditioner
	// modeled one-time setup cost (max over ranks)
	setupTime float64

	// mu implements the concurrent-Solve policy. Most configurations can
	// overlap solves freely (read side): the matrix, distribution and
	// factors are immutable after setup, the per-rank halo buffers are
	// atomically leased, and the block preconditioners either have no
	// apply-time scratch or serialize it internally. The write side —
	// full serialization — is taken when solves share mutable state that
	// cannot be locked at a finer grain: a preconditioner that
	// communicates inside Apply (a per-Apply lock across two in-flight
	// worlds deadlocks: each world holds some ranks' locks while its
	// inner iteration waits for ranks whose locks the other world holds),
	// the session-default checkpoint destination (one file), or the
	// session-inherited observability collector (per-rank recorders are
	// single-writer by contract).
	mu sync.RWMutex
	// serialOnly marks the communicating preconditioners (Schur 1/2,
	// MSLR, Schwarz, overlapping blocks): their solves can never overlap.
	serialOnly bool

	// wsPool recycles the per-rank solver workspaces across (possibly
	// concurrent) solves: each Solve leases a full set of P workspaces,
	// so ranks never share one and repeated solves stop allocating.
	wsPool sync.Pool
}

// SolveOptions carries the per-solve knobs of Session.SolveWith — the
// pieces a long-running service varies per request while the session
// (matrix, partition, preconditioners) stays shared. The zero value
// reproduces Session.Solve exactly.
type SolveOptions struct {
	// Ctx cancels this solve only (see Config.Ctx for semantics); it
	// overrides the session config's context.
	Ctx context.Context
	// Collector records this solve's spans and counters. Distinct
	// concurrent solves must pass distinct collectors (a collector's
	// per-rank recorders are single-writer); overriding the session
	// collector is what makes concurrent traced solves possible at all.
	Collector *obs.Collector
	// Progress streams the per-iteration residuals of this solve (the
	// callback runs on rank goroutines — every rank reports each
	// iteration — and must be cheap and thread-safe).
	Progress func(iter int, resid float64)
	// CheckpointEvery/CheckpointPath/CheckpointSink/Restore override the
	// session config's checkpoint wiring for this solve. Distinct
	// concurrent solves must use distinct destinations.
	CheckpointEvery int
	CheckpointPath  string
	CheckpointSink  ckpt.Sink
	Restore         *ckpt.Checkpoint
}

// NewSession partitions and distributes the problem and constructs the
// per-rank preconditioners.
func NewSession(p *Problem, cfg Config) (*Session, error) {
	if cfg.P < 1 {
		return nil, fmt.Errorf("core: P = %d", cfg.P)
	}
	if cfg.Solver.Restart == 0 {
		cfg.Solver = DefaultConfig(cfg.P, cfg.Precond).Solver
	}
	s := &Session{prob: p, cfg: cfg}
	if cfg.Schwarz != nil {
		s.part = precond.BoxPartition(cfg.Schwarz.M, cfg.Schwarz.Px, cfg.Schwarz.Py)
	} else {
		var err error
		s.part, err = Partition(p, cfg)
		if err != nil {
			return nil, err
		}
	}
	s.systems = dsys.Distribute(p.A, p.B, s.part, cfg.P)

	s.pcs = make([]precond.Preconditioner, cfg.P)
	switch {
	case cfg.Schwarz != nil:
		sws, err := buildSchwarz(s.systems, p.A, *cfg.Schwarz)
		if err != nil {
			return nil, err
		}
		for r, sw := range sws {
			s.pcs[r] = sw
		}
	case cfg.OverlapLevels > 0 && (cfg.Precond == precond.KindBlock1 || cfg.Precond == precond.KindBlock2):
		blocks, err := precond.BuildOverlapBlocks(p.A, s.part, s.systems, precond.OverlapOptions{
			Levels:  cfg.OverlapLevels,
			UseILU0: cfg.Precond == precond.KindBlock1,
			ILUT:    cfg.ILUT,
		})
		if err != nil {
			return nil, err
		}
		for r, ob := range blocks {
			s.pcs[r] = ob
		}
	default:
		// Per-rank factorizations are independent: run them concurrently
		// on the worker pool.
		errs := make([]error, cfg.P)
		par.Run(cfg.P, func(r int) {
			pc, err := buildRankPrecond(cfg, s.systems[r], cfg.Precond)
			if err != nil {
				errs[r] = fmt.Errorf("core: rank %d setup: %w", r, err)
				return
			}
			s.pcs[r] = pc
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	// Model the one-time setup: every rank factors concurrently, so the
	// cost is the maximum per-rank estimate.
	for _, pc := range s.pcs {
		t := setupFlopFactor * setupCost(pc) / s.cfg.Machine.FlopRate * s.cfg.Machine.Load
		if t > s.setupTime {
			s.setupTime = t
		}
	}
	s.serialOnly = cfg.Schwarz != nil ||
		cfg.Precond == precond.KindSchur1 || cfg.Precond == precond.KindSchur2 ||
		cfg.Precond == precond.KindMSLR ||
		(cfg.OverlapLevels > 0 && (cfg.Precond == precond.KindBlock1 || cfg.Precond == precond.KindBlock2))
	s.wsPool.New = func() any {
		ws := make([]*krylov.Workspace, cfg.P)
		for i := range ws {
			ws[i] = krylov.NewWorkspace()
		}
		return ws
	}
	return s, nil
}

// Concurrent reports whether this session can run overlapping Solves
// (false for the communicating preconditioners, which serialize) — a
// scheduling hint for services multiplexing requests over one session.
func (s *Session) Concurrent() bool { return !s.serialOnly }

// P returns the processor count of the session.
func (s *Session) P() int { return s.cfg.P }

// SetupTime returns the modeled one-time setup cost in seconds.
func (s *Session) SetupTime() float64 { return s.setupTime }

// Systems exposes the per-rank subdomain systems (diagnostics).
func (s *Session) Systems() []*dsys.System { return s.systems }

// Solve runs the distributed preconditioned FGMRES for the global
// right-hand side b (nil reuses the problem's). The preconditioners and
// the distribution are reused; only the solve is charged to the virtual
// clocks. Equivalent to SolveWith(b, SolveOptions{}).
func (s *Session) Solve(b []float64) (*Result, error) {
	return s.SolveWith(b, SolveOptions{})
}

// SolveWith runs one solve under the session with per-solve overrides —
// cancellation context, collector, progress stream, checkpoint wiring.
// Solves are safe to call concurrently: overlapping solves share the
// immutable setup and proceed in parallel where the configuration allows
// it, and serialize (correctly, not racily) where it does not — see the
// Session mutex policy.
func (s *Session) SolveWith(b []float64, opts SolveOptions) (*Result, error) {
	cfg := s.cfg
	if opts.Ctx != nil {
		cfg.Ctx = opts.Ctx
	}
	if opts.Collector != nil {
		cfg.Collector = opts.Collector
	}
	if opts.Progress != nil {
		cfg.Solver.Progress = opts.Progress
	}
	if opts.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opts.CheckpointEvery
	}
	if opts.CheckpointPath != "" {
		cfg.CheckpointPath = opts.CheckpointPath
		cfg.CheckpointSink = nil
	}
	if opts.CheckpointSink != nil {
		cfg.CheckpointSink = opts.CheckpointSink
	}
	if opts.Restore != nil {
		cfg.Restore = opts.Restore
	}

	// Exclusive when solves share mutable state at session scope: a
	// communicating preconditioner, the session's own checkpoint
	// destination (not overridden per solve), or the session-inherited
	// collector. Per-solve collectors and checkpoint destinations are the
	// caller's to keep distinct.
	exclusive := s.serialOnly ||
		(cfg.CheckpointEvery > 0 && opts.CheckpointPath == "" && opts.CheckpointSink == nil &&
			(cfg.CheckpointPath != "" || cfg.CheckpointSink != nil)) ||
		(cfg.Collector != nil && opts.Collector == nil)
	if exclusive {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}

	if b == nil {
		b = s.prob.B
	}
	if len(b) != s.prob.A.Rows {
		return nil, fmt.Errorf("core: rhs length %d, want %d", len(b), s.prob.A.Rows)
	}
	if err := validateRestore(cfg); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	bl := dsys.Scatter(s.systems, b)
	sink := checkpointSink(cfg)
	ws := s.wsPool.Get().([]*krylov.Workspace)
	defer s.wsPool.Put(ws)

	results := make([]krylov.Result, cfg.P)
	logs := make([]*krylov.RecoveryLog, cfg.P)
	xl := make([][]float64, cfg.P)
	stats, runErr := runWorld(cfg, func(c *dist.Comm) {
		sys := s.systems[c.Rank()]
		pc := s.pcs[c.Rank()]
		sopt := rankSolverOptions(cfg, c, sink, cfg.Restore)
		sopt.Work = ws[c.Rank()]
		x := make([]float64, sys.NLoc())
		var prec krylov.Prec
		if cfg.Precond != precond.KindNone || cfg.Schwarz != nil {
			prec = wrapApply(c, precondLabel(cfg), pc)
		}
		switch {
		case cfg.UseCG:
			results[c.Rank()] = krylov.DistributedCG(c, sys, prec, bl[c.Rank()], x, sopt)
		case cfg.Resilient:
			results[c.Rank()], logs[c.Rank()] = krylov.ResilientSolve(
				c, sys, resilientLadder(cfg, c, sys, prec), bl[c.Rank()], x, sopt)
		default:
			results[c.Rank()] = krylov.Distributed(c, sys, prec, bl[c.Rank()], x, sopt)
		}
		joinPrecondCommErr(pc, &results[c.Rank()])
		xl[c.Rank()] = x
	})
	if runErr != nil {
		return nil, runErr
	}

	res := &Result{PerRank: stats, SetupTime: s.setupTime}
	sortPerRank(res.PerRank)
	breakdown := aggregateResult(res, results, logs)
	solveClock, cerr := dist.MaxClockErr(stats)
	if cerr != nil {
		return nil, fmt.Errorf("core: %w", cerr)
	}
	res.SolveTime = solveClock
	res.Wall = time.Since(wallStart).Seconds()
	recordSolveCounters(cfg, res, breakdown)
	if cfg.KeepX {
		res.X = dsys.Gather(s.systems, xl)
		rr := append([]float64(nil), b...)
		s.prob.A.MulVecSub(rr, res.X)
		nb := sparse.Norm2(b)
		if nb > 0 {
			res.TrueRelRes = sparse.Norm2(rr) / nb
		} else {
			res.TrueRelRes = sparse.Norm2(rr)
		}
	}
	return res, nil
}
