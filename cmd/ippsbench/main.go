// Command ippsbench regenerates the tables of Cai & Sosonkina,
// "A Numerical Study of Some Parallel Algebraic Preconditioners"
// (IPPS 2003). Each experiment id corresponds to one table of the paper's
// §5; see DESIGN.md for the index.
//
// Usage:
//
//	ippsbench -list
//	ippsbench -exp tc1-cluster
//	ippsbench -exp tc1-cluster -size 257 -procs 2,4,8,16,32
//	ippsbench -all -size 65
//	ippsbench -exp tc1-cluster -workers 8 -json
//	ippsbench -exp tc1-cluster -faults drop -faultseed 3
//	ippsbench -exp tc1-cluster -procs 4 -precond "Schur 1" -transport socket \
//	  -checkpoint bench.ckpt -checkpoint-every 5
//
// -transport socket runs a single-cell sweep with one OS process per
// rank (the re-exec pattern); a worker killed mid-solve is respawned
// from the last durable checkpoint and the resumed solve lands on the
// bit-identical result (-die-rank/-die-at-iter inject a real SIGKILL).
//
// -workers pins the shared-memory worker pool (default: GOMAXPROCS, or
// the PARAPRE_WORKERS environment variable); iteration counts and modeled
// times are identical at every setting. -json additionally writes all
// measurements — iteration counts, modeled time, and measured wall-clock
// time — to BENCH_<date>.json.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"parapre/internal/bench"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/dist/socket"
	"parapre/internal/mprun"
	"parapre/internal/obs"
	"parapre/internal/par"
	"parapre/internal/precond"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id(s) to run, comma separated (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		size    = flag.Int("size", 0, "override the grid resolution parameter (0 = experiment default)")
		procs   = flag.String("procs", "", "override the processor counts, comma separated (e.g. 2,4,8)")
		md      = flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
		jsonOut = flag.Bool("json", false, "also write results to BENCH_<date>.json")
		jsonTo  = flag.String("o", "", "JSON output path (implies -json; default BENCH_<date>.json)")
		compare = flag.String("compare", "", "compare modeled times against a committed BENCH_*.json baseline and fail on regressions")
		tol     = flag.Float64("tol", 0.10, "relative modeled-time regression tolerance for -compare")
		workers = flag.Int("workers", 0, "shared-memory worker count (0 = GOMAXPROCS / PARAPRE_WORKERS)")

		precKind  = flag.String("precond", "", `narrow every experiment to one preconditioner column, case-insensitive (e.g. "Schur 1", "mslr")`)
		ckptPath  = flag.String("checkpoint", "", "durable checkpoint file (requires a single-cell sweep: one -procs value, one -precond column)")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint the solver recurrence every N iterations (0 = off)")
		restore   = flag.String("restore", "", "resume the sweep's solve mid-recurrence from this checkpoint file")

		transport = flag.String("transport", "chan", `rank communication: "chan" (in-process, default) or "socket" (one OS process per rank; single-cell sweeps only)`)
		dieRank   = flag.Int("die-rank", -1, "socket chaos: this rank's worker process SIGKILLs itself (requires -die-at-iter)")
		dieAt     = flag.Int("die-at-iter", 0, "socket chaos: SIGKILL -die-rank right after the first checkpoint at or past this iteration")

		sockWorker = flag.Bool("socket-worker", false, "internal: run as one rank of a socket world")
		sockRank   = flag.Int("rank", -1, "internal: this worker's rank")
		hubNet     = flag.String("hub-net", "unix", "internal: hub listener network")
		hubAddr    = flag.String("hub-addr", "", "internal: hub listener address")

		faults    = flag.String("faults", "", `chaos plan for every solve: "drop", "delay", "corrupt", "straggler" or "crash"`)
		faultSeed = flag.Int64("faultseed", 1, "chaos plan seed")
		resilient = flag.Bool("resilient", false, "run solves through the self-healing escalation ladder")

		trace   = flag.String("trace", "", "write a Chrome trace-event JSON covering every solve (one process per solve)")
		metrics = flag.String("metrics", "", "write a Prometheus-style text metrics snapshot covering every solve")
		phases  = flag.Bool("phases", false, "print the per-phase virtual-time breakdown under each table")
		pprofOn = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	if *pprofOn != "" {
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ippsbench: pprof:", err)
			}
		}()
	}

	if *list {
		fmt.Println("id            table")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.Experiments()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			toRun = append(toRun, e)
		}
	default:
		fmt.Fprintln(os.Stderr, "ippsbench: specify -exp <id>, -all, or -list")
		os.Exit(2)
	}

	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fatal(err)
		}
		for i := range toRun {
			toRun[i].Ps = ps
		}
	}

	if *precKind != "" {
		for i := range toRun {
			if toRun[i].Schwarz {
				continue // Schwarz tables have no algebraic-preconditioner columns
			}
			var kept []precond.Kind
			for _, k := range toRun[i].Preconds {
				if strings.EqualFold(string(k), *precKind) {
					kept = append(kept, k)
				}
			}
			if len(kept) == 0 {
				fatal(fmt.Errorf("%s: no preconditioner column %q", toRun[i].ID, *precKind))
			}
			toRun[i].Preconds = kept
		}
	}

	if *ckptEvery > 0 || *ckptPath != "" || *restore != "" {
		var ck *ckpt.Checkpoint
		if *restore != "" {
			var err error
			if ck, err = ckpt.Load(*restore); err != nil {
				fatal(err)
			}
		}
		for i := range toRun {
			toRun[i].CheckpointEvery = *ckptEvery
			toRun[i].CheckpointPath = *ckptPath
			toRun[i].Restore = ck
		}
	}

	if *faults != "" {
		plan, err := dist.NamedFaultPlan(*faults, *faultSeed)
		if err != nil {
			fatal(err)
		}
		for i := range toRun {
			toRun[i].Faults = plan
		}
		fmt.Printf("chaos: plan %q seed %d — typed failures appear as table notes\n\n", *faults, *faultSeed)
	}
	if *resilient {
		for i := range toRun {
			toRun[i].Resilient = true
		}
	}

	if *sockWorker {
		if len(toRun) != 1 || *sockRank < 0 || *hubAddr == "" {
			fmt.Fprintf(os.Stderr, "ippsbench: bad worker wiring: %d experiment(s), rank %d, hub %q\n", len(toRun), *sockRank, *hubAddr)
			os.Exit(2)
		}
		os.Exit(runSocketWorker(toRun[0], *size, *sockRank, *hubNet, *hubAddr, *dieRank, *dieAt))
	}
	switch *transport {
	case "chan":
		// The in-process default: the sweep loop below, bit-identical to
		// every run before transports existed.
	case "socket":
		if len(toRun) != 1 {
			fmt.Fprintln(os.Stderr, "ippsbench: -transport socket runs exactly one experiment (one -exp id)")
			os.Exit(2)
		}
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{*faults != "", "-faults"},
			{*trace != "", "-trace"},
			{*metrics != "", "-metrics"},
			{*phases, "-phases"},
			{*jsonOut || *jsonTo != "", "-json"},
			{*compare != "", "-compare"},
			{*md, "-markdown"},
		} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "ippsbench: %s is in-process machinery; drop it for -transport socket (chaos there is real: -die-rank)\n", bad.flag)
				os.Exit(2)
			}
		}
		os.Exit(runSupervisor(toRun[0], *size, *workers, *ckptPath, *restore, *dieRank, *dieAt))
	default:
		fmt.Fprintf(os.Stderr, "ippsbench: unknown -transport %q (chan | socket)\n", *transport)
		os.Exit(2)
	}

	// With any observability output requested, every solve gets its own
	// collector; the exports carry the solve label ("<id>/<precond>/P=<p>").
	var observed []labeledCollector
	if *trace != "" || *metrics != "" || *phases {
		for i := range toRun {
			toRun[i].Observe = func(label string) *obs.Collector {
				col := obs.NewCollector()
				observed = append(observed, labeledCollector{label: label, col: col})
				return col
			}
		}
	}

	var allTables []bench.Table
	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(*size)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if *md {
				t.WriteMarkdown(os.Stdout)
			} else {
				t.Write(os.Stdout)
			}
			if *phases {
				t.WritePhases(os.Stdout)
			}
		}
		allTables = append(allTables, tables...)
		fmt.Printf("[%s completed in %.1fs real time]\n\n", e.ID, time.Since(start).Seconds())
	}

	if *trace != "" {
		entries := make([]obs.TraceEntry, len(observed))
		for i, lc := range observed {
			entries[i] = obs.TraceEntry{Name: lc.label, PID: i, Collector: lc.col}
		}
		if err := obs.WriteChromeTraceFile(*trace, entries, obs.TraceOptions{}); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace %s (%d solves; open in chrome://tracing or https://ui.perfetto.dev)\n", *trace, len(entries))
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		for _, lc := range observed {
			if err := lc.col.WriteMetrics(f, map[string]string{"solve": lc.label}); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics %s (%d solves)\n", *metrics, len(observed))
	}

	if *jsonOut || *jsonTo != "" {
		date := time.Now().Format("2006-01-02")
		path := *jsonTo
		if path == "" {
			path = "BENCH_" + date + ".json"
		}
		if err := bench.NewReport(date, allTables).WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (workers=%d)\n", path, par.Workers())
	}

	if *compare != "" {
		base, err := bench.ReadReport(*compare)
		if err != nil {
			fatal(err)
		}
		cur := bench.NewReport("", allTables)
		regs := bench.CompareModelTimes(base, cur, *tol)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "ippsbench: %d modeled-time regression(s) vs %s (tol %.0f%%):\n",
				len(regs), *compare, *tol*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Printf("modeled times within %.0f%% of %s\n", *tol*100, *compare)
	}
}

// runSocketWorker is the internal worker mode: one rank of a socket
// world solving the experiment's single cell. It dials the hub, loads
// the restore checkpoint when the supervisor passed one (the -restore
// handling above already decoded it into the experiment), and runs
// exactly this rank's share; rank 0 prints the result line the
// supervisor's terminal shows.
func runSocketWorker(e bench.Experiment, size, rank int, network, addr string, dieRank, dieAt int) int {
	prob, cfg, err := e.SingleCell(size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ippsbench: rank %d: %v\n", rank, err)
		return 2
	}
	cl, err := socket.Dial(network, addr, cfg.P, rank, socket.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ippsbench: rank %d: %v\n", rank, err)
		return 1
	}
	defer cl.Close()
	var sink ckpt.Sink = cl
	if rank == dieRank && dieAt > 0 && cfg.Restore == nil {
		// Deterministic chaos: SIGKILL ourselves right after shipping the
		// shard of the trigger iteration — first life only, so the
		// respawned world runs to completion.
		sink = mprun.DieAtSink{Sink: cl, Iter: uint64(dieAt)}
	}
	res, _, err := core.SolveRank(prob, cfg, rank, cl, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ippsbench: rank %d: %v\n", rank, err)
		return 1
	}
	if rank == 0 {
		status := "converged"
		if !res.Converged {
			status = "NOT converged"
		}
		rel := res.Final
		if res.Initial > 0 {
			rel = res.Final / res.Initial
		}
		fmt.Printf("%s/%s/P=%d: %s in %d iterations (relative residual %.2e)\n",
			e.ID, e.Preconds[0], cfg.P, status, res.Iterations, rel)
	}
	return 0
}

// runSupervisor hosts the hub and checkpoint writer and supervises one
// worker process per rank (the re-exec pattern: ippsbench is its own
// worker binary), respawning the world from the last durable checkpoint
// when a rank dies.
func runSupervisor(e bench.Experiment, size, workers int, ckptPath, restorePath string, dieRank, dieAt int) int {
	prob, cfg, err := e.SingleCell(size)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ippsbench:", err)
		return 2
	}
	if e.CheckpointEvery > 0 && ckptPath == "" {
		fmt.Fprintln(os.Stderr, "ippsbench: -checkpoint-every over -transport socket needs -checkpoint (the hub owns the file)")
		return 2
	}
	fmt.Printf("%s: %d unknowns, P = %d, %s, socket transport (one OS process per rank)\n",
		e.ID, prob.A.Rows, cfg.P, e.Preconds[0])
	err = mprun.Supervise(mprun.Options{
		P:              cfg.P,
		CheckpointPath: ckptPath,
		Log:            os.Stderr,
		Args: func(rank int, network, addr string, restore bool) []string {
			args := []string{
				"-socket-worker",
				"-rank", strconv.Itoa(rank),
				"-hub-net", network,
				"-hub-addr", addr,
				"-exp", e.ID,
				"-size", strconv.Itoa(size),
				"-procs", strconv.Itoa(cfg.P),
				"-precond", string(e.Preconds[0]),
			}
			if workers > 0 {
				args = append(args, "-workers", strconv.Itoa(workers))
			}
			if e.Resilient {
				args = append(args, "-resilient")
			}
			if e.CheckpointEvery > 0 {
				args = append(args, "-checkpoint-every", strconv.Itoa(e.CheckpointEvery))
			}
			switch {
			case restore:
				args = append(args, "-restore", ckptPath)
			case restorePath != "":
				args = append(args, "-restore", restorePath)
			}
			if dieRank >= 0 && dieAt > 0 {
				args = append(args, "-die-rank", strconv.Itoa(dieRank), "-die-at-iter", strconv.Itoa(dieAt))
			}
			return args
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ippsbench:", err)
		return 1
	}
	return 0
}

// labeledCollector pairs one solve's collector with its label for the
// post-run exports.
type labeledCollector struct {
	label string
	col   *obs.Collector
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("ippsbench: bad processor count %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ippsbench:", err)
	os.Exit(1)
}
