package socket_test

import (
	"encoding/binary"
	"errors"
	"math"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"parapre/internal/cases"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/dist/socket"
)

// world starts a hub plus p connected clients over a unix socket and
// returns them ready for transport traffic.
func world(t *testing.T, p int, opt socket.HubOptions) (*socket.Hub, []*socket.Client) {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "hub.sock")
	hub, err := socket.NewHub("unix", addr, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Shutdown)
	clients := make([]*socket.Client, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			clients[r], errs[r] = socket.Dial("unix", addr, p, r, socket.Options{OpTimeout: 5 * time.Second})
		}(r)
	}
	if err := hub.Accept(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("dial rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})
	return hub, clients
}

func TestSendRecvPreservesOrderAndPayload(t *testing.T) {
	_, cl := world(t, 3, socket.HubOptions{})
	const msgs = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			m := dist.Message{Tag: i, Time: float64(i) / 8, FDelay: 0.25, Data: []float64{float64(i), -float64(i)}}
			if err := cl[0].Send(0, 2, m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < msgs; i++ {
			m, err := cl[2].Recv(2, 0)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			if m.Tag != i || m.Time != float64(i)/8 || m.FDelay != 0.25 ||
				len(m.Data) != 2 || m.Data[0] != float64(i) || m.Data[1] != -float64(i) {
				t.Errorf("recv %d: got %+v", i, m)
				return
			}
		}
	}()
	wg.Wait()
}

func TestReduceFoldsInRankOrder(t *testing.T) {
	const p = 4
	_, cl := world(t, p, socket.HubOptions{})
	// Contributions chosen so the fold order matters in floating point;
	// the hub must reproduce the serial rank-order fold exactly.
	contrib := func(r int) []float64 {
		return []float64{1e16 * float64(r%2), 1, float64(r) * 1e-8}
	}
	want := append([]float64(nil), contrib(0)...)
	op := dist.ReduceOp(dist.ReduceSum)
	for r := 1; r < p; r++ {
		op(want, contrib(r))
	}

	results := make([][]float64, p)
	clocks := make([]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			vec, maxT, err := cl[r].Reduce(r, contrib(r), float64(r)+0.5, dist.ReduceSum)
			if err != nil {
				t.Errorf("reduce rank %d: %v", r, err)
				return
			}
			results[r] = vec
			clocks[r] = maxT
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for i := range want {
			if math.Float64bits(results[r][i]) != math.Float64bits(want[i]) {
				t.Fatalf("rank %d element %d: %v, want %v (fold order differs from in-process reducer)", r, i, results[r][i], want[i])
			}
		}
		if clocks[r] != float64(p-1)+0.5 {
			t.Fatalf("rank %d maxT = %v, want %v", r, clocks[r], float64(p-1)+0.5)
		}
	}
}

func TestPeerGoneDrainsThenFails(t *testing.T) {
	_, cl := world(t, 2, socket.HubOptions{})
	// Rank 0 sends one message, then crashes by plan.
	if err := cl[0].Send(0, 1, dist.Message{Tag: 7, Data: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	cl[0].MarkCrashed(0)
	// The queued message must still be delivered before the failure.
	deadline := time.After(5 * time.Second)
	for {
		m, err := cl[1].Recv(1, 0)
		if err == nil {
			if m.Tag != 7 {
				t.Fatalf("drained message tag %d, want 7", m.Tag)
			}
			continue
		}
		if !errors.Is(err, dist.ErrPeerGone) {
			t.Fatalf("after drain: %v, want ErrPeerGone", err)
		}
		break
	}
	select {
	case <-deadline:
		t.Fatal("timed out waiting for peer-gone")
	default:
	}
	// Collectives can never complete with a dead rank.
	if _, _, err := cl[1].Reduce(1, []float64{1}, 0, dist.ReduceSum); !errors.Is(err, dist.ErrPeerGone) {
		t.Fatalf("reduce with dead peer: %v, want ErrPeerGone", err)
	}
}

func TestAbortWakesBlockedOperations(t *testing.T) {
	_, cl := world(t, 2, socket.HubOptions{})
	done := make(chan error, 1)
	go func() {
		_, err := cl[1].Recv(1, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cl[0].Abort()
	select {
	case err := <-done:
		if !errors.Is(err, dist.ErrWorldAborted) {
			t.Fatalf("blocked recv after abort: %v, want ErrWorldAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abort did not wake the blocked recv")
	}
	if err := cl[1].Send(1, 0, dist.Message{}); !errors.Is(err, dist.ErrWorldAborted) {
		t.Fatalf("send after abort: %v, want ErrWorldAborted", err)
	}
}

func TestOpTimeoutIsTypedAndDeadlineBounded(t *testing.T) {
	_, cl := world(t, 2, socket.HubOptions{})
	short := cl[1]
	// No message will ever come: the recv must fail at ~OpTimeout with a
	// typed, timeout-flagged OpError — not hang.
	start := time.Now()
	_, err := short.Recv(1, 0)
	var oe *socket.OpError
	if !errors.As(err, &oe) || !oe.Timeout {
		t.Fatalf("recv with silent peer: %v, want timeout *OpError", err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Second || elapsed > 30*time.Second {
		t.Fatalf("timeout fired after %v, configured 5s", elapsed)
	}
}

func TestCleanCloseIsNotADeath(t *testing.T) {
	var mu sync.Mutex
	var deaths []int
	hub, cl := world(t, 2, socket.HubOptions{OnDeath: func(rank int, err error) {
		mu.Lock()
		deaths = append(deaths, rank)
		mu.Unlock()
	}})
	for _, c := range cl {
		c.Close()
	}
	time.Sleep(100 * time.Millisecond)
	hub.Shutdown()
	mu.Lock()
	defer mu.Unlock()
	if len(deaths) != 0 {
		t.Fatalf("clean closes reported as deaths of ranks %v", deaths)
	}
}

func TestDroppedConnectionFiresOnDeath(t *testing.T) {
	addr := filepath.Join(t.TempDir(), "hub.sock")
	died := make(chan int, 2)
	hub, err := socket.NewHub("unix", addr, 2, socket.HubOptions{
		OnDeath: func(rank int, err error) { died <- rank },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Shutdown()

	// Rank 1 is a well-behaved client; rank 0 is a raw connection that
	// says hello and then vanishes without a goodbye — a process death.
	var cl *socket.Client
	var dialErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl, dialErr = socket.Dial("unix", addr, 2, 1, socket.Options{OpTimeout: 5 * time.Second})
	}()
	raw, err := net.Dial("unix", addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := []byte{1, 0, 0, 0, 0} // fHello, u32 rank 0
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(hello)))
	if _, err := raw.Write(append(hdr[:], hello...)); err != nil {
		t.Fatal(err)
	}
	if err := hub.Accept(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if dialErr != nil {
		t.Fatal(dialErr)
	}
	defer cl.Close()

	raw.Close() // SIGKILL stand-in: the connection drops mid-world
	select {
	case r := <-died:
		if r != 0 {
			t.Fatalf("death reported for rank %d, want 0", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dropped connection never reported as a death")
	}
	// The survivor's next receive from the dead rank fails typed.
	if _, err := cl.Recv(1, 0); !errors.Is(err, dist.ErrPeerGone) {
		t.Fatalf("recv from dead rank: %v, want ErrPeerGone", err)
	}
}

// TestSocketSolveBitIdenticalToInProcess is the transport-refactor
// acceptance gate: the same solve over OS processes' transport (here: P
// in-process clients against a real unix-socket hub) must reproduce the
// in-process channel transport bit for bit — iterations, residuals,
// history, and modeled clocks — and the hub-side FileWriter must leave a
// loadable checkpoint behind.
func TestSocketSolveBitIdenticalToInProcess(t *testing.T) {
	const p = 4
	c, err := cases.ByName("tc7-jump")
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(17)

	cfg := core.DefaultConfig(p, "Schur 1")
	cfg.Solver.RecordHistory = true
	base, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(t.TempDir(), "solve.ckpt")
	hub, cl := world(t, p, socket.HubOptions{Sink: ckpt.NewFileWriter(ckptPath, p)})
	defer hub.Shutdown()

	scfg := cfg
	scfg.CheckpointEvery = 10
	iters := make([]int, p)
	finals := make([]uint64, p)
	clocks := make([]float64, p)
	histories := make([][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			res, st, err := core.SolveRank(prob, scfg, r, cl[r], cl[r])
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			iters[r] = res.Iterations
			finals[r] = math.Float64bits(res.Final / res.Initial)
			clocks[r] = st.Clock
			histories[r] = res.History
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for r := 0; r < p; r++ {
		if iters[r] != base.Iterations {
			t.Fatalf("rank %d: %d iterations over socket, %d in-process", r, iters[r], base.Iterations)
		}
		if finals[r] != math.Float64bits(base.Residual) {
			t.Fatalf("rank %d: socket residual bits differ from in-process", r)
		}
		if len(histories[r]) != len(base.History) {
			t.Fatalf("rank %d: history length %d vs %d", r, len(histories[r]), len(base.History))
		}
		for i := range base.History {
			if math.Float64bits(histories[r][i]) != math.Float64bits(base.History[i]) {
				t.Fatalf("rank %d: history[%d] differs over socket", r, i)
			}
		}
		// SolveRank's stats carry the rank's full virtual clock (setup +
		// barrier + solve), so the bitwise reference is the in-process
		// per-rank clock, not Result.SolveTime (which subtracts setup).
		if math.Float64bits(clocks[r]) != math.Float64bits(base.PerRank[r].Clock) {
			t.Fatalf("rank %d: socket modeled clock %v, in-process %v", r, clocks[r], base.PerRank[r].Clock)
		}
	}

	ck, err := ckpt.Load(ckptPath)
	if err != nil {
		t.Fatalf("hub-side checkpoint: %v", err)
	}
	if ck.P() != p || ck.Iter == 0 {
		t.Fatalf("hub-side checkpoint P=%d iter=%d", ck.P(), ck.Iter)
	}
}
