package ilu

import (
	"parapre/internal/sparse"
)

// ExtractTrailing returns the trailing sub-factorization of f for the
// unknowns [start, n): rows ≥ start with columns ≥ start, indices shifted
// to zero. When the factored matrix was ordered internal-first /
// interface-last (as every dsys.System is), the result is the L_S·U_S
// pair of the paper's §2 — an incomplete factorization of the local Schur
// complement S_i = C_i − E_i·B_i⁻¹·F_i, obtained for free from the
// subdomain factorization.
func ExtractTrailing(f *LU, start int) (*LU, error) {
	n := f.N()
	if start < 0 || start > n {
		return nil, badInputErr("ExtractTrailing", "start %d out of [0,%d]", start, n)
	}
	sn := n - start
	m := sparse.NewCSR(sn, sn, 0)
	diag := make([]int, sn)
	for i := start; i < n; i++ {
		li := i - start
		lo, hi := f.M.RowPtr[i], f.M.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := f.M.ColIdx[k]
			if j < start {
				continue
			}
			if k == f.Diag[i] {
				diag[li] = len(m.ColIdx)
			}
			m.ColIdx = append(m.ColIdx, j-start)
			m.Val = append(m.Val, f.M.Val[k])
		}
		m.RowPtr[li+1] = len(m.ColIdx)
	}
	return &LU{M: m, Diag: diag}, nil
}

// ExtractLeading returns the leading sub-factorization of f for the
// unknowns [0, end): rows < end with columns < end. Because incomplete
// elimination of the first rows never involves later rows, this is
// exactly the incomplete factorization of the leading block B_i — the
// paper's Schur 1 preconditioner obtains its approximate B_i-solve this
// way from the same subdomain factorization that supplies L_S·U_S.
func ExtractLeading(f *LU, end int) (*LU, error) {
	n := f.N()
	if end < 0 || end > n {
		return nil, badInputErr("ExtractLeading", "end %d out of [0,%d]", end, n)
	}
	m := sparse.NewCSR(end, end, 0)
	diag := make([]int, end)
	for i := 0; i < end; i++ {
		lo, hi := f.M.RowPtr[i], f.M.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := f.M.ColIdx[k]
			if j >= end {
				continue
			}
			if k == f.Diag[i] {
				diag[i] = len(m.ColIdx)
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, f.M.Val[k])
		}
		m.RowPtr[i+1] = len(m.ColIdx)
	}
	return &LU{M: m, Diag: diag}, nil
}

// Product multiplies the factors back: returns L·U as a dense matrix.
// Test oracle — for complete factorizations it must reproduce A, and the
// trailing product must reproduce the exact Schur complement.
func (f *LU) Product() *sparse.Dense {
	n := f.N()
	out := sparse.NewDense(n, n)
	// L row i: unit diag + entries before Diag[i]; U row k: Diag[k]..end.
	for i := 0; i < n; i++ {
		// Contribution of L(i,i)=1 times U row i.
		for k := f.Diag[i]; k < f.M.RowPtr[i+1]; k++ {
			out.Add(i, f.M.ColIdx[k], f.M.Val[k])
		}
		// Contributions of L(i,kk) times U row kk.
		for k := f.M.RowPtr[i]; k < f.Diag[i]; k++ {
			kk := f.M.ColIdx[k]
			lik := f.M.Val[k]
			for kj := f.Diag[kk]; kj < f.M.RowPtr[kk+1]; kj++ {
				out.Add(i, f.M.ColIdx[kj], lik*f.M.Val[kj])
			}
		}
	}
	return out
}
