package dsys

import (
	"testing"

	"parapre/internal/sparse"
)

// nonsymSystem builds a 6-node system split across 2 ranks where global
// node 3 (rank 1) is referenced by rank 0's row 2 but has no cross edge of
// its own — the classification must still mark it interface.
func nonsymSystem() (*sparse.CSR, []float64, []int) {
	n := 6
	coo := sparse.NewCOO(n, n, 20)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	coo.Add(0, 1, -1)
	coo.Add(1, 0, -1)
	coo.Add(2, 3, -1) // cross edge rank0 → rank1 with no reverse edge
	coo.Add(4, 5, -1)
	coo.Add(5, 4, -1)
	coo.Add(1, 2, -1)
	coo.Add(2, 1, -1)
	coo.Add(4, 3, -1)
	coo.Add(3, 4, -1)
	b := []float64{1, 1, 1, 1, 1, 1}
	part := []int{0, 0, 0, 1, 1, 1}
	return coo.ToCSR(), b, part
}

// Regression: the interface classification used to look only at outgoing
// edges, so a node referenced exclusively through incoming cross edges
// stayed "internal" on its owner — dsys could still exchange it via
// SendIdx, but the Schur machinery (which only sends interface unknowns)
// failed its send-map construction. The classification is now symmetric.
func TestNonsymmetricPatternInterfaceClassification(t *testing.T) {
	a, b, part := nonsymSystem()
	systems := Distribute(a, b, part, 2)
	s1 := systems[1]
	// Global node 3 is owned by rank 1 and must be interface there.
	found := false
	for l, g := range s1.GlobalIDs {
		if g == 3 {
			found = true
			if l < s1.NInt {
				t.Fatalf("global node 3 classified internal (local %d < NInt %d)", l, s1.NInt)
			}
		}
	}
	if !found {
		t.Fatal("rank 1 does not own global node 3")
	}
	for _, s := range systems {
		if err := s.CheckStructure(); err != nil {
			t.Fatalf("rank %d: %v", s.Rank, err)
		}
	}
	// Every unknown any rank imports must be an interface unknown on its
	// owner — the invariant the Schur operators rely on.
	for _, s := range systems {
		for _, g := range s.ExtGlobal {
			owner := systems[part[g]]
			for l, og := range owner.GlobalIDs {
				if og == g && l < owner.NInt {
					t.Fatalf("rank %d imports global %d, internal on rank %d", s.Rank, g, owner.Rank)
				}
			}
		}
	}
}
