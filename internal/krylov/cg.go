package krylov

import (
	"math"

	"parapre/internal/paranoid"
)

// CG solves A·x = b for symmetric positive definite A with preconditioned
// conjugate gradients. x holds the initial guess on entry and the
// solution on exit. The paper uses one FFT-preconditioned CG iteration as
// the additive-Schwarz subdomain solver (§5.2); set MaxIters=1 for that.
//
//lint:allocfree steady state with a warmed Workspace; verified dynamically by TestCGZeroAllocSteadyState
func CG(n int, matvec Op, precond Prec, dot Dot, b, x []float64, opt Options) Result {
	if opt.MaxIters <= 0 {
		opt.MaxIters = DefaultOptions().MaxIters
	}
	nf := float64(n)
	ws := opt.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	r := ws.vec(&ws.r, n)
	z := ws.vec(&ws.zVec, n)
	p := ws.vec(&ws.p, n)
	ap := ws.vec(&ws.ap, n)

	res := Result{}
	it0 := 0
	var rz float64
	justResumed := false
	if st := opt.Resume; st != nil {
		// Mid-solve restore: the CG recurrence at an iteration boundary is
		// exactly (x, r, p, rz) — z is rewritten before it is read.
		if err := st.check("CG", n, 0); err != nil {
			res.Err = err
			return res
		}
		it0 = st.Iter
		res.Iterations = it0
		res.Initial = st.Initial
		copy(x, st.X)
		copy(r, st.R)
		copy(p, st.P)
		rz = st.RZ
		if opt.RecordHistory {
			//lint:ignore allocfree checkpoint restore is opt-in recovery, excluded from the steady-state contract
			res.History = append(res.History[:0], st.History...)
			if len(res.History) > 0 {
				res.Final = res.History[len(res.History)-1]
			}
		}
		justResumed = true
	} else {
		matvec(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		opt.charge(nf)
		res.Initial = math.Sqrt(math.Max(dot(r, r), 0))
		if !finite(res.Initial) {
			res.Breakdown = true
			res.Err = breakdownErr("CG", 0, "residual norm", res.Initial)
			res.Final = res.Initial
			return res
		}
		res.Final = res.Initial
		if opt.RecordHistory {
			//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
			res.History = append(res.History, res.Initial)
		}
		if opt.Progress != nil {
			opt.Progress(0, res.Initial)
		}
		if res.Initial == 0 {
			res.Converged = true
			return res
		}

		if precond != nil {
			precond(z, r)
			paranoid.CheckFiniteVec("krylov: CG preconditioned residual", z)
		} else {
			copy(z, r)
		}
		copy(p, z)
		rz = dot(r, z)
		paranoid.CheckFinite("krylov: CG r·z", rz)
	}
	tolAbs := opt.Tol * res.Initial

	for it := it0; it < opt.MaxIters; it++ {
		// Cooperative cancellation at the iteration boundary — the same
		// replicated point the checkpoint hook fires at, so in a
		// distributed solve every rank leaves the loop together. x and
		// res.Final carry the last completed iteration's state.
		if opt.Stop != nil && opt.Stop() {
			res.Err = canceledErr("CG", it)
			return res
		}
		if opt.Checkpoint != nil && opt.CheckpointEvery > 0 && it > 0 &&
			it%opt.CheckpointEvery == 0 && !justResumed {
			opt.Checkpoint(captureCG(n, it, &res, x, r, p, rz))
		}
		justResumed = false
		matvec(ap, p)
		pap := dot(p, ap)
		if !finite(pap) || !finite(rz) {
			res.Breakdown = true
			res.Err = breakdownErr("CG", it+1, "curvature p·Ap", pap)
			res.Final = math.NaN()
			res.Iterations = it
			return res
		}
		if pap <= 0 {
			// Not SPD (or breakdown): bail out with the current iterate.
			res.Breakdown = true
			res.Err = breakdownErr("CG", it+1, "curvature p·Ap", pap)
			res.Final = math.Sqrt(math.Max(dot(r, r), 0))
			res.Iterations = it
			return res
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		opt.charge(4 * nf)
		res.Iterations = it + 1
		rn := math.Sqrt(math.Max(dot(r, r), 0))
		res.Final = rn
		if opt.RecordHistory {
			//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
			res.History = append(res.History, rn)
		}
		if opt.Progress != nil {
			opt.Progress(it+1, rn)
		}
		if rn <= tolAbs {
			res.Converged = true
			return res
		}
		if precond != nil {
			precond(z, r)
			paranoid.CheckFiniteVec("krylov: CG preconditioned residual", z)
		} else {
			copy(z, r)
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		opt.charge(2 * nf)
	}
	return res
}
