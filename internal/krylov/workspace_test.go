package krylov

import (
	"math/rand"
	"testing"

	"parapre/internal/par"
	"parapre/internal/sparse"
)

// allocTestSystem builds a small well-conditioned system plus the serial
// matvec/precond/dot closures the solvers need. Everything is captured up
// front so the solve loop itself is the only thing measured.
func allocTestSystem(n int) (a *sparse.CSR, b []float64, matvec Op, dot Dot) {
	rng := rand.New(rand.NewSource(11))
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	a = coo.ToCSR()
	b = make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	matvec = func(y, x []float64) { a.MulVecTo(y, x) }
	dot = func(u, v []float64) float64 {
		var s float64
		for i := range u {
			s += u[i] * v[i]
		}
		return s
	}
	return a, b, matvec, dot
}

// measureSteadyAllocs runs one warm-up solve (which sizes the workspace)
// and then measures allocations of subsequent solves. Workers are pinned
// to 1 so the parallel fan-out's closure allocations don't pollute the
// count — the pooling contract is about the solver's own temporaries.
func measureSteadyAllocs(t *testing.T, solve func()) float64 {
	t.Helper()
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	solve() // warm-up: grows the workspace buffers
	return testing.AllocsPerRun(10, solve)
}

// TestGMRESZeroAllocSteadyState pins the tentpole contract: a pooled
// GMRES solve allocates nothing once its workspace has been sized.
//
// alloctest: krylov.GMRES
func TestGMRESZeroAllocSteadyState(t *testing.T) {
	n := 200
	_, b, matvec, dot := allocTestSystem(n)
	x := make([]float64, n)
	ws := NewWorkspace()
	opt := Options{Restart: 20, MaxIters: 40, Tol: 1e-10, Work: ws}
	solve := func() {
		for i := range x {
			x[i] = 0
		}
		GMRES(n, matvec, nil, dot, b, x, opt)
	}
	if got := measureSteadyAllocs(t, solve); got != 0 {
		t.Fatalf("pooled GMRES allocates %v objects per steady-state solve, want 0", got)
	}
}

// TestFGMRESZeroAllocSteadyState covers the flexible variant, whose Z
// basis is the extra pooled store (FGMRES is GMRES with opt.Flexible, so
// it maps to the same annotated function).
//
// alloctest: krylov.GMRES
func TestFGMRESZeroAllocSteadyState(t *testing.T) {
	n := 200
	_, b, matvec, dot := allocTestSystem(n)
	x := make([]float64, n)
	ws := NewWorkspace()
	precond := func(z, r []float64) { copy(z, r) }
	opt := Options{Restart: 15, MaxIters: 30, Tol: 1e-10, Flexible: true, Work: ws}
	solve := func() {
		for i := range x {
			x[i] = 0
		}
		GMRES(n, matvec, precond, dot, b, x, opt)
	}
	if got := measureSteadyAllocs(t, solve); got != 0 {
		t.Fatalf("pooled FGMRES allocates %v objects per steady-state solve, want 0", got)
	}
}

// TestCGZeroAllocSteadyState covers the CG hot path.
//
// alloctest: krylov.CG
func TestCGZeroAllocSteadyState(t *testing.T) {
	n := 200
	_, b, matvec, dot := allocTestSystem(n)
	x := make([]float64, n)
	ws := NewWorkspace()
	opt := Options{MaxIters: 50, Tol: 1e-10, Work: ws}
	solve := func() {
		for i := range x {
			x[i] = 0
		}
		CG(n, matvec, nil, dot, b, x, opt)
	}
	if got := measureSteadyAllocs(t, solve); got != 0 {
		t.Fatalf("pooled CG allocates %v objects per steady-state solve, want 0", got)
	}
}

// TestWorkspaceReuseAcrossShapes checks that one workspace serves solves
// of different sizes and restart lengths (the Schur 1 usage: a short
// inner solve and a Schur solve of another dimension share nothing but
// the pattern).
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	ws := NewWorkspace()
	for _, n := range []int{50, 200, 120} {
		_, b, matvec, dot := allocTestSystem(n)
		x := make([]float64, n)
		res := GMRES(n, matvec, nil, dot, b, x,
			Options{Restart: 10, MaxIters: 200, Tol: 1e-9, Work: ws})
		if !res.Converged {
			t.Fatalf("n=%d: pooled solve did not converge: %+v", n, res)
		}
		// The answer must match a fresh-workspace solve bitwise.
		xRef := make([]float64, n)
		GMRES(n, matvec, nil, dot, b, xRef,
			Options{Restart: 10, MaxIters: 200, Tol: 1e-9})
		for i := range x {
			if x[i] != xRef[i] {
				t.Fatalf("n=%d: pooled x[%d] = %x, fresh %x", n, i, x[i], xRef[i])
			}
		}
	}
}

// BenchmarkGMRESAllocating / BenchmarkGMRESPooled pair the nil-workspace
// and pooled solves (run with -benchmem to see the allocation delta).
func benchGMRES(b *testing.B, ws *Workspace) {
	n := 400
	_, rhs, matvec, dot := allocTestSystem(n)
	x := make([]float64, n)
	opt := Options{Restart: 30, MaxIters: 60, Tol: 1e-12, Work: ws}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range x {
			x[j] = 0
		}
		GMRES(n, matvec, nil, dot, rhs, x, opt)
	}
}

func BenchmarkGMRESAllocating(b *testing.B) { benchGMRES(b, nil) }
func BenchmarkGMRESPooled(b *testing.B)     { benchGMRES(b, NewWorkspace()) }
