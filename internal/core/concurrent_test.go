package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"parapre/internal/core"
	"parapre/internal/krylov"
	"parapre/internal/obs"
	"parapre/internal/precond"
)

// A session's solves must be safe to overlap — the gateway multiplexes
// requests over one cached session per problem spec. Run under -race.
func TestConcurrentSolvesIdentical(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Solver.RecordHistory = true
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Concurrent() {
		t.Fatal("Block 2 session should allow overlapping solves")
	}
	const n = 8
	results := make([]*core.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sess.Solve(nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("solve %d: %v", i, errs[i])
		}
	}
	ref := results[0]
	if !ref.Converged {
		t.Fatal("reference solve did not converge")
	}
	for i := 1; i < n; i++ {
		r := results[i]
		if r.Iterations != ref.Iterations || r.SolveTime != ref.SolveTime || r.Residual != ref.Residual {
			t.Fatalf("solve %d diverged: %d/%v/%v vs %d/%v/%v",
				i, r.Iterations, r.SolveTime, r.Residual, ref.Iterations, ref.SolveTime, ref.Residual)
		}
		if len(r.History) != len(ref.History) {
			t.Fatalf("solve %d history length %d vs %d", i, len(r.History), len(ref.History))
		}
		for j := range ref.History {
			if r.History[j] != ref.History[j] {
				t.Fatalf("solve %d history[%d]: %v vs %v", i, j, r.History[j], ref.History[j])
			}
		}
	}
}

// Communicating preconditioners cannot overlap; the session serializes
// them internally, so concurrent callers still get correct (identical)
// answers rather than a deadlock or a race.
func TestConcurrentSolvesSerialOnlySession(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindSchur1)
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Concurrent() {
		t.Fatal("Schur 1 session must report serial-only")
	}
	const n = 4
	results := make([]*core.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sess.Solve(nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("solve %d: %v", i, errs[i])
		}
		if results[i].Iterations != results[0].Iterations || results[i].SolveTime != results[0].SolveTime {
			t.Fatalf("solve %d diverged from solve 0", i)
		}
	}
}

// Per-solve overrides compose with concurrency: each solve gets its own
// collector and progress stream, and canceling one must not disturb the
// others.
func TestConcurrentSolveWithIndependentOverrides(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindBlock1)
	cfg.Solver.RecordHistory = true
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	const victim = 2
	results := make([]*core.Result, n)
	errs := make([]error, n)
	colls := make([]*obs.Collector, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		colls[i] = obs.NewCollector()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var mu sync.Mutex
			var hist []float64
			opts := core.SolveOptions{
				Ctx:       ctx,
				Collector: colls[i],
				Progress: func(it int, resid float64) {
					mu.Lock()
					if it == len(hist) {
						hist = append(hist, resid)
					}
					mu.Unlock()
					if i == victim && it >= 2 {
						cancel()
					}
				},
			}
			results[i], errs[i] = sess.SolveWith(nil, opts)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("solve %d: %v", i, errs[i])
		}
	}
	if !errors.Is(results[victim].Err, krylov.ErrCanceled) {
		t.Fatalf("victim Err = %v, want ErrCanceled", results[victim].Err)
	}
	if results[victim].Iterations != 2 {
		t.Errorf("victim Iterations = %d, want 2", results[victim].Iterations)
	}
	for i := 0; i < n; i++ {
		if i == victim {
			continue
		}
		if !results[i].Converged {
			t.Errorf("solve %d: cancel of solve %d leaked (not converged, err %v)",
				i, victim, results[i].Err)
		}
		if len(colls[i].Events()) == 0 {
			t.Errorf("solve %d: per-solve collector recorded nothing", i)
		}
	}
}
