// Package verify is the differential-oracle harness: every numerical
// layer of the repository — factorizations, Schur operators,
// preconditioners, distributed Krylov solvers, and the algebraic
// plumbing underneath them — is cross-checked against an independent
// reference on small, seeded random problems and on the paper's test
// cases. The lint suite and the paranoid build tag check structure and
// finiteness; this package checks the mathematics.
//
// The oracle hierarchy (see DESIGN.md §14) is bottom-up: dense linear
// algebra and exact algebraic identities validate the sparse kernels,
// the validated kernels compose into references for the factorizations,
// complete (no-dropping) factorizations turn the incomplete-LU machinery
// into exact oracles for the Schur operators, and a sequential replay of
// the distributed arithmetic pins the parallel solvers to their
// sequential counterparts down to the last bit.
//
// Every check is a deterministic function of its Config; a reported
// violation carries a minimized reproducer (smallest n and seed that
// still fail) so the failure can be replayed in isolation.
package verify

import (
	"fmt"
	"sort"
	"strings"
)

// Violation is one oracle disagreement.
type Violation struct {
	Check  string // name of the violated check
	Detail string // what disagreed, with the offending numbers
	Repro  string // minimized reproducer parameters ("n=6 seed=3 P=2")
}

func (v Violation) String() string {
	if v.Repro == "" {
		return fmt.Sprintf("%s: %s", v.Check, v.Detail)
	}
	return fmt.Sprintf("%s: %s [repro: %s]", v.Check, v.Detail, v.Repro)
}

// Config controls a harness run.
type Config struct {
	// Seed offsets every generator: two runs with the same Seed are
	// identical, and the weekly CI run randomizes it.
	Seed int64
	// Quick restricts each check to its smallest sizes and trial counts —
	// the CI smoke setting. The full run sweeps larger grids.
	Quick bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Check is one named oracle comparison.
type Check struct {
	Name string
	Desc string
	Run  func(cfg Config) []Violation
}

// Checks returns the full ordered registry, bottom of the oracle
// hierarchy first.
func Checks() []Check {
	return []Check{
		{"spmv-dense", "sparse kernels (SpMV, add/sub, transpose, dot) vs dense references", checkSpMVDense},
		{"perm-identity", "permutations: P·Pᵀ = I, RCM validity, PermuteSym vs dense congruence", checkPermIdentity},
		{"partition-valid", "graph partitions cover every vertex: P=1, P>n, disconnected graphs", checkPartitionValid},
		{"coo-csr", "COO→CSR assembly: duplicate merging vs dense accumulation", checkCOOCSR},
		{"mmio-roundtrip", "Matrix Market write→read→write: byte stability and CSR equality", checkMMIORoundTrip},
		{"distribute-reassembly", "dsys.Distribute: local matrices reassemble the global matrix exactly", checkDistributeReassembly},
		{"factor-complete", "complete ILUT/ILUTP product reproduces A; solves match dense LU", checkFactorComplete},
		{"factor-incomplete", "incomplete factor Solve inverts the factor product exactly", checkFactorIncomplete},
		{"factor-ic", "IC0: Lt = Lᵀ, complete-pattern IC reproduces SPD A, solve matches dense", checkFactorIC},
		{"factor-zero-pivot", "structurally zero rows are refused with typed errors, never floored", checkFactorZeroPivot},
		{"schur-trailing", "trailing factors of a complete LU multiply back to the exact Schur complement", checkSchurTrailing},
		{"schur-operator", "matrix-free distributed Schur operator vs dense C − E·B⁻¹·F", checkSchurOperator},
		{"fft-poisson", "DST fast Poisson solve vs dense 5-point Laplacian solve", checkFFTPoisson},
		{"precond-block", "block preconditioner Apply vs dense solve composed from its factors", checkPrecondBlock},
		{"precond-schur1", "Schur 1 with exact settings inverts the global matrix", checkPrecondSchur1},
		{"precond-schur2", "Schur 2 with exact settings inverts the global matrix", checkPrecondSchur2},
		{"precond-mslr", "MSLR with full-rank corrections inverts the global matrix to 1e-10", checkPrecondMSLR},
		{"precond-schwarz", "additive Schwarz Apply vs independently composed subdomain solves", checkPrecondSchwarz},
		{"dist-vs-seq", "distributed GMRES/FGMRES/CG at P∈{2,4,8} vs sequential replay: identical iterations, histories within 1e-12", checkDistVsSeq},
		{"paper-cases", "factor, Schur and distributed oracles over the paper's test cases", checkPaperCases},
	}
}

// Report aggregates a run.
type Report struct {
	Ran        []string
	Violations []Violation
}

// Failed reports whether any check produced a violation.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders the outcome as text.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d checks run, %d violations\n", len(r.Ran), len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION %s\n", v)
	}
	return b.String()
}

// Run executes the checks whose names contain filter (all when filter is
// empty) and aggregates their violations.
func Run(cfg Config, filter string) *Report {
	rep := &Report{}
	for _, ck := range Checks() {
		if filter != "" && !strings.Contains(ck.Name, filter) {
			continue
		}
		cfg.logf("check %-22s %s", ck.Name, ck.Desc)
		vs := ck.Run(cfg)
		rep.Ran = append(rep.Ran, ck.Name)
		if len(vs) > 0 {
			sort.Slice(vs, func(i, j int) bool { return vs[i].Detail < vs[j].Detail })
			cfg.logf("check %-22s FAILED (%d violations)", ck.Name, len(vs))
			rep.Violations = append(rep.Violations, vs...)
		}
	}
	return rep
}
