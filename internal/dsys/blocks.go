package dsys

import (
	"fmt"

	"parapre/internal/sparse"
)

// extractBlock copies the submatrix of s.A with rows [r0, r1) and columns
// [c0, c1), shifting indices to start at zero.
func (s *System) extractBlock(r0, r1, c0, c1 int) *sparse.CSR {
	out := sparse.NewCSR(r1-r0, c1-c0, 0)
	for i := r0; i < r1; i++ {
		cols, vals := s.A.Row(i)
		for k, j := range cols {
			if j >= c0 && j < c1 {
				out.ColIdx = append(out.ColIdx, j-c0)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i-r0+1] = len(out.ColIdx)
	}
	return out
}

// OwnedBlock returns the square NLoc×NLoc block of this subdomain's rows
// restricted to its owned columns — the A_i that the block preconditioners
// factor (external couplings are what block Jacobi discards).
func (s *System) OwnedBlock() *sparse.CSR { return s.extractBlock(0, s.NLoc(), 0, s.NLoc()) }

// BlockB returns B_i, the internal×internal block of eq. (4).
func (s *System) BlockB() *sparse.CSR { return s.extractBlock(0, s.NInt, 0, s.NInt) }

// BlockF returns F_i, the internal×interface coupling block.
func (s *System) BlockF() *sparse.CSR { return s.extractBlock(0, s.NInt, s.NInt, s.NLoc()) }

// BlockE returns E_i, the interface×internal coupling block.
func (s *System) BlockE() *sparse.CSR { return s.extractBlock(s.NInt, s.NLoc(), 0, s.NInt) }

// BlockC returns C_i, the interface×interface block.
func (s *System) BlockC() *sparse.CSR { return s.extractBlock(s.NInt, s.NLoc(), s.NInt, s.NLoc()) }

// BlockEExt returns the coupling of this subdomain's interface rows to the
// external interface unknowns — the E_ij blocks of eq. (5), concatenated
// over all neighbors j in external-buffer order.
func (s *System) BlockEExt() *sparse.CSR {
	return s.extractBlock(s.NInt, s.NLoc(), s.NLoc(), s.NLoc()+s.NExt())
}

// CheckStructure validates the subdomain invariants of §1.1: internal rows
// reference only owned columns (internal nodes have no couplings across
// the subdomain boundary), column indices are in range, and every external
// column is covered by exactly one neighbor's receive block.
func (s *System) CheckStructure() error {
	if err := s.A.CheckValid(); err != nil {
		return fmt.Errorf("rank %d: %w", s.Rank, err)
	}
	for i := 0; i < s.NInt; i++ {
		cols, _ := s.A.Row(i)
		for _, j := range cols {
			if j >= s.NLoc() {
				return fmt.Errorf("rank %d: internal row %d references external column %d", s.Rank, i, j)
			}
		}
	}
	covered := make([]int, s.NExt())
	for _, nb := range s.Neigh {
		for k := 0; k < nb.RecvLen; k++ {
			covered[nb.RecvOff+k]++
		}
	}
	for k, c := range covered {
		if c != 1 {
			return fmt.Errorf("rank %d: external slot %d covered %d times", s.Rank, k, c)
		}
	}
	if s.NInt > s.NLoc() {
		return fmt.Errorf("rank %d: NInt %d > NLoc %d", s.Rank, s.NInt, s.NLoc())
	}
	return nil
}
