// Package paranoid is the runtime half of the correctness tooling: a set
// of invariant checks over the numerical kernels that are compiled in only
// under the `paranoid` build tag (`go test -tags paranoid ./...`) and are
// constant-folded to empty functions otherwise.
//
// The static analyzers in internal/lint catch invariant violations that
// are visible in the source; this package catches the ones that are only
// visible in the data — a CSR whose column indices were corrupted by
// manual surgery, a NaN escaping an inner product, a neighbor exchange
// buffer of the wrong length. Checks panic with a descriptive message:
// paranoid runs are debugging runs, and the first violated invariant is
// the information we want, not a limping result.
package paranoid

import (
	"fmt"
	"math"
)

// CheckFinite panics if v is NaN or ±Inf. context names the quantity in
// the panic message, e.g. "gmres: H[i,j]".
func CheckFinite(context string, v float64) {
	if !Enabled {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("paranoid: %s is not finite: %v", context, v))
	}
}

// CheckFiniteVec panics if any entry of x is NaN or ±Inf, reporting the
// first offending index.
func CheckFiniteVec(context string, x []float64) {
	if !Enabled {
		return
	}
	for i, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic(fmt.Sprintf("paranoid: %s[%d] is not finite: %v", context, i, v))
		}
	}
}

// CheckLen panics if got != want, for exact-length contracts such as
// exchange buffers.
func CheckLen(context string, got, want int) {
	if !Enabled {
		return
	}
	if got != want {
		panic(fmt.Sprintf("paranoid: %s: length %d, want %d", context, got, want))
	}
}

// CheckMinLen panics if got < want, for at-least-length contracts such as
// kernel output slices.
func CheckMinLen(context string, got, want int) {
	if !Enabled {
		return
	}
	if got < want {
		panic(fmt.Sprintf("paranoid: %s: length %d, want at least %d", context, got, want))
	}
}

// Check panics with the formatted message if cond is false. It is the
// escape hatch for invariants that do not fit the typed helpers.
func Check(cond bool, format string, args ...any) {
	if !Enabled {
		return
	}
	if !cond {
		panic("paranoid: " + fmt.Sprintf(format, args...))
	}
}
