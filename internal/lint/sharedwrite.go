package lint

import (
	"go/ast"
	"strings"
)

// SharedWrite looks inside the worker closures handed to par.Run, par.For
// and par.ForSegments for writes that are not isolated per worker: an
// assignment to a variable captured from the enclosing scope, or a write
// through a captured slice at an index that does not involve anything the
// closure itself defines (its worker/range parameters or loop variables).
// Both are data races, and even under a mutex they would reintroduce the
// scheduling-order dependence the deterministic reduction layer exists to
// remove. The sanctioned patterns — out[t] = …, per-block slots
// partials[b], per-range y[i] with i from the [lo, hi) arguments — all
// index with closure-derived values and stay silent.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc:  "writes to captured state inside par worker closures without a per-worker index",
	Run:  runSharedWrite,
}

// parWorkerFuncs are the entry points whose closure argument runs
// concurrently on the worker pool.
var parWorkerFuncs = map[string]bool{"Run": true, "For": true, "ForSegments": true}

func runSharedWrite(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil ||
				!strings.HasSuffix(fn.Pkg().Path(), "internal/par") || !parWorkerFuncs[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					out = append(out, checkWorkerBody(p, fn.Name(), fl)...)
				}
			}
			return true
		})
	}
	return out
}

// checkWorkerBody flags shared writes inside one worker closure.
func checkWorkerBody(p *Package, parFn string, fl *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	flag := func(lhs ast.Expr) {
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if target.Name == "_" {
				return
			}
			if obj := p.Info.ObjectOf(target); obj != nil && !within(obj.Pos(), fl) {
				out = append(out, diag(p, target.Pos(), "sharedwrite",
					"assignment to captured %q inside par.%s worker: every worker races on it; use a per-worker slot",
					target.Name, parFn))
			}
		case *ast.IndexExpr:
			base, ok := ast.Unparen(target.X).(*ast.Ident)
			if !ok {
				return
			}
			obj := p.Info.ObjectOf(base)
			if obj == nil || within(obj.Pos(), fl) {
				return // closure-local slice: private by construction
			}
			if indexUsesClosureLocal(p, target.Index, fl) {
				return // per-worker / per-range slot
			}
			out = append(out, diag(p, target.Pos(), "sharedwrite",
				"write to captured slice %q at a worker-independent index inside par.%s worker",
				base.Name, parFn))
		case *ast.SelectorExpr:
			if root := rootIdent(target); root != nil {
				if obj := p.Info.ObjectOf(root); obj != nil && !within(obj.Pos(), fl) {
					out = append(out, diag(p, target.Pos(), "sharedwrite",
						"write to field of captured %q inside par.%s worker: every worker races on it",
						root.Name, parFn))
				}
			}
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(stmt.X)
		}
		return true
	})
	return out
}

// indexUsesClosureLocal reports whether the index expression references
// at least one identifier declared inside the closure — its worker/range
// parameters or derived loop variables — making the written slot
// worker-dependent.
func indexUsesClosureLocal(p *Package, idx ast.Expr, fl *ast.FuncLit) bool {
	uses := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.ObjectOf(id); obj != nil && obj.Pos().IsValid() && within(obj.Pos(), fl) {
			uses = true
		}
		return !uses
	})
	return uses
}

// rootIdent unwraps selector/index chains (a.b[i].c → a) to the root
// identifier, or nil if the root is not a plain identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}
