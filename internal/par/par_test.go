package par

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the worker count pinned to w, restoring the
// previous value afterwards.
func withWorkers(w int, fn func()) {
	prev := SetWorkers(w)
	defer SetWorkers(prev)
	fn()
}

func TestWorkersFromEnv(t *testing.T) {
	env := func(vals map[string]string) func(string) string {
		return func(k string) string { return vals[k] }
	}
	cases := []struct {
		val  string
		def  int
		want int
	}{
		{"", 7, 7},
		{"3", 7, 3},
		{"1", 7, 1},
		{"0", 7, 7},   // non-positive ignored
		{"-2", 7, 7},  // non-positive ignored
		{"abc", 7, 7}, // non-numeric ignored
		{"", 0, 1},    // degenerate default clamped
	}
	for _, c := range cases {
		got := workersFromEnv(env(map[string]string{EnvWorkers: c.val}), c.def)
		if got != c.want {
			t.Errorf("workersFromEnv(%q, %d) = %d, want %d", c.val, c.def, got, c.want)
		}
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(5)
	defer SetWorkers(prev)
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
	if old := SetWorkers(0); old != 5 {
		t.Fatalf("SetWorkers returned %d, want 5", old)
	}
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) should clamp to 1, got %d", Workers())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		withWorkers(w, func() {
			const n = 1000
			var marks [n]int32
			For(n, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("w=%d: index %d visited %d times", w, i, m)
				}
			}
		})
	}
}

func TestForRespectsGrain(t *testing.T) {
	withWorkers(8, func() {
		var calls atomic.Int32
		For(100, 100, func(lo, hi int) {
			calls.Add(1)
			if lo != 0 || hi != 100 {
				t.Errorf("grain=n should give one chunk, got [%d,%d)", lo, hi)
			}
		})
		if calls.Load() != 1 {
			t.Fatalf("expected 1 chunk, got %d", calls.Load())
		}
	})
	// n = 0 is a no-op.
	For(0, 1, func(lo, hi int) { t.Fatal("body called for n=0") })
}

func TestForSegments(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(w, func() {
			bounds := []int{0, 3, 3, 10, 64} // includes an empty segment
			var marks [64]int32
			ForSegments(bounds, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&marks[i], 1)
				}
			})
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("w=%d: index %d visited %d times", w, i, m)
				}
			}
		})
	}
	ForSegments(nil, func(lo, hi int) { t.Fatal("body called for nil bounds") })
	ForSegments([]int{5}, func(lo, hi int) { t.Fatal("body called for single bound") })
}

func TestRunCoversEveryTaskOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		withWorkers(w, func() {
			const tasks = 57
			var marks [tasks]int32
			Run(tasks, func(tk int) { atomic.AddInt32(&marks[tk], 1) })
			for i, m := range marks {
				if m != 1 {
					t.Fatalf("w=%d: task %d ran %d times", w, i, m)
				}
			}
		})
	}
}

// TestNestedParallelism ensures a For inside a Run (a kernel invoked from
// a subdomain job) neither deadlocks nor loses work.
func TestNestedParallelism(t *testing.T) {
	withWorkers(4, func() {
		var total atomic.Int64
		Run(6, func(tk int) {
			For(500, 8, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		})
		if total.Load() != 6*500 {
			t.Fatalf("nested total = %d, want %d", total.Load(), 6*500)
		}
	})
}

func TestNumBlocks(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {-1, 0}, {1, 1}, {BlockSize, 1}, {BlockSize + 1, 2}, {3 * BlockSize, 3},
	}
	for _, c := range cases {
		if got := NumBlocks(c.n); got != c.want {
			t.Errorf("NumBlocks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestSumBlocksDeterministic is the core determinism contract: the blocked
// sum is bit-identical across worker counts, including the serial one.
func TestSumBlocksDeterministic(t *testing.T) {
	// A sum that is rounding-sensitive: alternating magnitudes.
	n := 3*BlockSize + 123
	x := make([]float64, n)
	for i := range x {
		x[i] = 1e-8 + float64(i%7)*1e8
	}
	block := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += x[i]
		}
		return s
	}
	var ref float64
	withWorkers(1, func() { ref = SumBlocks(n, block) })
	for _, w := range []int{2, 3, 8} {
		withWorkers(w, func() {
			if got := SumBlocks(n, block); got != ref {
				t.Fatalf("w=%d: SumBlocks = %x, want %x (w=1)", w, got, ref)
			}
		})
	}
}

func TestSumBlocksSmall(t *testing.T) {
	if got := SumBlocks(0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("SumBlocks(0) = %g", got)
	}
	got := SumBlocks(10, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != 10 {
		t.Fatalf("single-block SumBlocks = %g, want 10", got)
	}
}
