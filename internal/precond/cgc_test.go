package precond

import (
	"testing"

	"parapre/internal/dsys"
	"parapre/internal/ilu"
)

// TestCGCHelpsAtLargerP reproduces the §5.2 trend at reduced scale: with
// many subdomains, the coarse-grid correction must reduce the additive
// Schwarz iteration count (the paper reports a "dangerously rapid growth"
// without CGCs).
func TestCGCHelpsAtLargerP(t *testing.T) {
	const m, px, py = 49, 4, 4
	const p = px * py
	systems, a, _ := buildPoissonBoxes(t, m, px, py)
	run := func(cgc bool) int {
		all := make([]*Schwarz, p)
		for r := 0; r < p; r++ {
			sw, err := NewSchwarz(systems[r], a, DefaultSchwarz(m, px, py, cgc))
			if err != nil {
				t.Fatal(err)
			}
			all[r] = sw
		}
		if err := WireHalo(all); err != nil {
			t.Fatal(err)
		}
		it, _ := solveWith(t, systems, p, func(s *dsys.System) Preconditioner { return all[s.Rank] })
		return it
	}
	plain, cgc := run(false), run(true)
	t.Logf("P=16 m=49: plain=%d cgc=%d", plain, cgc)
	if cgc >= plain {
		t.Fatalf("CGC did not help at P=16: %d vs %d", cgc, plain)
	}
}

// TestOverlapBlockImprovesOnPlainBlock exercises the §1.1 extension: an
// overlapping restricted-additive-Schwarz block preconditioner must not
// converge slower than the non-overlapping block Jacobi it generalizes,
// and levels=0 must behave like the plain preconditioner.
func TestOverlapBlockImprovesOnPlainBlock(t *testing.T) {
	const m, p = 21, 4
	systems, a, b := buildPoisson(t, m, p, 21)
	want := refSolution(t, a, b)

	part := make([]int, a.Rows)
	for r, s := range systems {
		for _, g := range s.GlobalIDs {
			part[g] = r
		}
	}

	run := func(levels int) (int, []float64) {
		obs, err := BuildOverlapBlocks(a, part, systems, OverlapOptions{
			Levels: levels, UseILU0: false, ILUT: ilu.DefaultILUT(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return solveWith(t, systems, p, func(s *dsys.System) Preconditioner { return obs[s.Rank] })
	}

	itPlainBlock, _ := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewBlock2(s, ilu.DefaultILUT())
		if err != nil {
			t.Fatal(err)
		}
		return pc
	})
	it0, x0 := run(0)
	checkClose(t, x0, want, 2e-4, "overlap-0")
	it2, x2 := run(2)
	checkClose(t, x2, want, 2e-4, "overlap-2")

	t.Logf("plain block=%d, overlap0=%d, overlap2=%d", itPlainBlock, it0, it2)
	if it0 != itPlainBlock {
		t.Errorf("levels=0 (%d iters) differs from plain Block 2 (%d)", it0, itPlainBlock)
	}
	if it2 >= it0 {
		t.Errorf("overlap did not improve convergence: %d vs %d", it2, it0)
	}
}

// TestOverlapBlockExtSizes checks that growing levels strictly enlarges
// the factored blocks (until the subdomain swallows the domain).
func TestOverlapBlockExtSizes(t *testing.T) {
	const m, p = 15, 3
	systems, a, _ := buildPoisson(t, m, p, 22)
	part := make([]int, a.Rows)
	for r, s := range systems {
		for _, g := range s.GlobalIDs {
			part[g] = r
		}
	}
	prev := make([]int, p)
	for levels := 0; levels <= 2; levels++ {
		obs, err := BuildOverlapBlocks(a, part, systems, OverlapOptions{
			Levels: levels, UseILU0: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for r, ob := range obs {
			owned, total := ob.ExtSize()
			if owned != systems[r].NLoc() {
				t.Fatalf("rank %d: owned %d != NLoc %d", r, owned, systems[r].NLoc())
			}
			if levels > 0 && total <= prev[r] {
				t.Fatalf("rank %d: levels=%d total %d did not grow beyond %d", r, levels, total, prev[r])
			}
			prev[r] = total
			if ob.SetupFlops() <= 0 {
				t.Fatal("SetupFlops")
			}
			if ob.Name() == "" {
				t.Fatal("Name")
			}
		}
	}
}
