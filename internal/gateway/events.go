package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// handleEvents streams a job's event log as Server-Sent Events: a full
// replay from ?from= (default 0) followed by live events until the job
// reaches a terminal state or the client goes away. Event types map to
// SSE event names; payloads are the Event JSON.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from")
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	for {
		// Read the state BEFORE the log: a terminal transition appends
		// its state event first, so terminal-then-empty-fetch proves the
		// log is fully shipped (the other order would race and drop the
		// final events).
		term := j.State().Terminal()
		events, more := j.Events(from)
		for _, e := range events {
			if err := writeSSE(w, e); err != nil {
				return
			}
			from = e.Seq + 1
		}
		fl.Flush()
		if len(events) == 0 {
			if term {
				return
			}
			select {
			case <-more:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// writeSSE serializes one event in SSE framing: the event name is the
// job event type, the data line its JSON.
func writeSSE(w http.ResponseWriter, e Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}
