package ilu

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/sparse"
)

func TestLeadingTrailingTileFactor(t *testing.T) {
	// Leading block entries + trailing block entries + the two coupling
	// blocks must account for every stored factor entry.
	rng := rand.New(rand.NewSource(20))
	a := randSPDish(rng, 30, 0.2)
	f, err := ILUT(a, ILUTOptions{Tau: 1e-3, LFil: 10})
	if err != nil {
		t.Fatal(err)
	}
	const cut = 18
	lead, err := ExtractLeading(f, cut)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := ExtractTrailing(f, cut)
	if err != nil {
		t.Fatal(err)
	}
	coupling := 0
	for i := 0; i < f.N(); i++ {
		cols, _ := f.M.Row(i)
		for _, j := range cols {
			if (i < cut) != (j < cut) {
				coupling++
			}
		}
	}
	if lead.NNZ()+trail.NNZ()+coupling != f.NNZ() {
		t.Fatalf("blocks do not tile: %d + %d + %d != %d",
			lead.NNZ(), trail.NNZ(), coupling, f.NNZ())
	}
}

func TestLeadingEqualsDirectFactorOfB(t *testing.T) {
	// Elimination of the leading rows never touches later rows, so for a
	// complete factorization ExtractLeading(ILUT(A), k) equals
	// ILUT(A[:k,:k]) exactly. (With dropping they can differ slightly:
	// the row-norm threshold and the per-row fill budget see the coupling
	// block F too.)
	rng := rand.New(rand.NewSource(21))
	a := randSPDish(rng, 25, 0.25)
	opt := ILUTOptions{Tau: 0, LFil: 0}
	full, err := ILUT(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	const k = 14
	lead, err := ExtractLeading(full, k)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	direct, err := ILUT(sparse.Extract(a, idx, idx), opt)
	if err != nil {
		t.Fatal(err)
	}
	if lead.NNZ() != direct.NNZ() {
		t.Fatalf("nnz differ: %d vs %d", lead.NNZ(), direct.NNZ())
	}
	for p := range lead.M.Val {
		if math.Abs(lead.M.Val[p]-direct.M.Val[p]) > 1e-12 {
			t.Fatalf("factor value %d differs: %v vs %v", p, lead.M.Val[p], direct.M.Val[p])
		}
	}
}

// lap2d builds the 5-point Laplacian on an n×n grid.
func lap2d(n int) *sparse.CSR {
	coo := sparse.NewCOO(n*n, n*n, 5*n*n)
	id := func(i, j int) int { return j*n + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			coo.Add(id(i, j), id(i, j), 4)
			if i > 0 {
				coo.Add(id(i, j), id(i-1, j), -1)
			}
			if i < n-1 {
				coo.Add(id(i, j), id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(id(i, j), id(i, j-1), -1)
			}
			if j < n-1 {
				coo.Add(id(i, j), id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSR()
}

func TestILUTQualityImprovesWithFill(t *testing.T) {
	// ‖b − A·M⁻¹b‖ must shrink monotonically as lfil grows on a Laplacian.
	a := lap2d(12)
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	var prev float64 = math.Inf(1)
	for _, lfil := range []int{1, 3, 8, 20} {
		f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: lfil})
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		f.Solve(x, b)
		r := append([]float64(nil), b...)
		a.MulVecSub(r, x)
		got := sparse.Norm2(r)
		if got > prev*(1+1e-9) {
			t.Fatalf("lfil=%d residual %v worse than previous %v", lfil, got, prev)
		}
		prev = got
	}
}

func TestNoPivotFixesOnSPD(t *testing.T) {
	a := lap2d(10)
	f0, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if f0.PivotFixes != 0 {
		t.Fatalf("ILU0 fixed %d pivots on an M-matrix", f0.PivotFixes)
	}
	ft, err := ILUT(a, DefaultILUT())
	if err != nil {
		t.Fatal(err)
	}
	if ft.PivotFixes != 0 {
		t.Fatalf("ILUT fixed %d pivots on an M-matrix", ft.PivotFixes)
	}
}

func TestILU0OnLaplacianPositivePivots(t *testing.T) {
	// The ILU(0) of an M-matrix keeps strictly positive pivots.
	a := lap2d(9)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		if p := f.M.Val[f.Diag[i]]; p <= 0 {
			t.Fatalf("pivot %d = %v", i, p)
		}
	}
}

func TestSolveAliasedInOut(t *testing.T) {
	// Solve documents that x and b may alias.
	a := lap2d(6)
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	want := make([]float64, n)
	f.Solve(want, b)
	x := append([]float64(nil), b...)
	f.Solve(x, x)
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("aliased solve differs at %d", i)
		}
	}
}

func TestTrailingSolveApproximatesSchurSolve(t *testing.T) {
	// With a complete factorization, solving with the trailing factors
	// must equal solving with the dense exact Schur complement.
	rng := rand.New(rand.NewSource(22))
	n, nB := 20, 12
	a := randSPDish(rng, n, 0.3)
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ExtractTrailing(f, nB)
	if err != nil {
		t.Fatal(err)
	}
	sDense := fs.Product()
	lu, err := sDense.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, n-nB)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	want := lu.Solve(rhs)
	got := make([]float64, n-nB)
	fs.Solve(got, rhs)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("trailing solve differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}
