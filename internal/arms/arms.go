package arms

import (
	"fmt"
	"math"

	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// Options configures the multilevel construction.
type Options struct {
	Levels   int     // reduction levels; the paper's Schur 2 uses 2
	MaxGroup int     // group-size cap for the independent sets
	DropTol  float64 // relative drop tolerance for Schur-complement assembly
	ILUT     ilu.ILUTOptions
}

// DefaultOptions matches the two-level ARMS the paper uses.
func DefaultOptions() Options {
	return Options{Levels: 2, MaxGroup: 24, DropTol: 1e-4, ILUT: ilu.DefaultILUT()}
}

// Reduction is one independent-set reduction step: the permuted matrix
// splits as [B F; E C] with exactly block-diagonal B (by
// group-independent-set construction); BlockLU holds the dense
// factorization of each B block and S the (dropped) Schur complement
// C − E·B⁻¹·F that the next level acts on.
type Reduction struct {
	Perm    sparse.Perm // new→old within this level's matrix
	NB      int         // size of the grouped (B) part
	Blocks  [][2]int    // contiguous extent of each group in the new order
	BlockLU []*sparse.LU
	F, E    *sparse.CSR // coupling blocks of the permuted matrix
	S       *sparse.CSR // reduced (Schur) matrix
}

// SolveB applies the exact block-diagonal solve out = B⁻¹·in.
func (r *Reduction) SolveB(out, in []float64) {
	for g, ext := range r.Blocks {
		lo, hi := ext[0], ext[1]
		sol := r.BlockLU[g].Solve(in[lo:hi])
		copy(out[lo:hi], sol)
	}
}

// SolveBFlops returns the flop count of one SolveB.
func (r *Reduction) SolveBFlops() float64 {
	var f float64
	for _, ext := range r.Blocks {
		sz := float64(ext[1] - ext[0])
		f += 2 * sz * sz
	}
	return f
}

// Reduce performs a single independent-set reduction of a: it finds a
// group-independent set (groups capped at maxGroup), permutes the grouped
// unknowns first, factors the resulting block-diagonal B exactly, and
// assembles S = C − E·B⁻¹·F with relative drop tolerance dropTol. It
// returns nil (no error) with a nil Reduction when no reduction is
// possible. This is the building block both of the multilevel Solver and
// of the paper's expanded-Schur preconditioner (Schur 2).
func Reduce(a *sparse.CSR, maxGroup int, dropTol float64) (*Reduction, error) {
	group, ng := GroupIndependentSet(a, maxGroup)
	perm, nB, blocks := IndSetPerm(group, ng)
	if nB == 0 || nB == a.Rows {
		return nil, nil
	}
	p := sparse.PermuteSym(a, perm)
	red := &Reduction{Perm: perm, NB: nB, Blocks: blocks}

	bIdx := rangeInts(0, nB)
	cIdx := rangeInts(nB, p.Rows)
	B := sparse.Extract(p, bIdx, bIdx)
	red.F = sparse.Extract(p, bIdx, cIdx)
	red.E = sparse.Extract(p, cIdx, bIdx)
	C := sparse.Extract(p, cIdx, cIdx)

	red.BlockLU = make([]*sparse.LU, len(blocks))
	for g, ext := range blocks {
		d := blockDense(B, ext[0], ext[1])
		lu, err := d.Factor()
		if err != nil {
			return nil, fmt.Errorf("arms: group %d: %w", g, err)
		}
		red.BlockLU[g] = lu
	}
	red.S = AssembleSchur(C, red.E, red.F, red, dropTol)
	return red, nil
}

// Solver is a multilevel ARMS preconditioner for a sequential (subdomain-
// local) matrix.
type Solver struct {
	n      int
	levels []*Reduction
	last   *ilu.LU // ILUT factorization of the final reduced matrix
	// per-level permutation scratch
	buf [][]float64
}

// N returns the dimension of the preconditioned matrix.
func (s *Solver) N() int { return s.n }

// SolveFlops estimates the flop count of one Apply, for virtual-time
// accounting.
func (s *Solver) SolveFlops() float64 {
	var f float64
	for _, l := range s.levels {
		f += 2*l.SolveBFlops() + 2*float64(l.E.NNZ()) + 2*float64(l.F.NNZ())
	}
	f += s.last.SolveFlops()
	return f
}

// New builds the ARMS hierarchy for matrix a.
func New(a *sparse.CSR, opt Options) (*Solver, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("arms: non-square %d×%d matrix", a.Rows, a.Cols)
	}
	if opt.Levels < 1 {
		opt.Levels = 1
	}
	if opt.MaxGroup < 1 {
		opt.MaxGroup = DefaultOptions().MaxGroup
	}
	s := &Solver{n: a.Rows}
	cur := a
	for lev := 0; lev < opt.Levels; lev++ {
		red, err := Reduce(cur, opt.MaxGroup, opt.DropTol)
		if err != nil {
			return nil, fmt.Errorf("arms: level %d: %w", lev, err)
		}
		if red == nil {
			// No reduction possible (fully separated or fully grouped):
			// stop stacking levels.
			break
		}
		s.levels = append(s.levels, red)
		cur = red.S
	}
	lastLU, err := ilu.ILUT(cur, opt.ILUT)
	if err != nil {
		return nil, fmt.Errorf("arms: final level: %w", err)
	}
	s.last = lastLU

	// Scratch: one buffer per level, sized to the level's dimension, plus
	// one for the last level.
	dim := s.n
	for i := range s.levels {
		s.buf = append(s.buf, make([]float64, dim))
		dim -= s.levels[i].NB
	}
	s.buf = append(s.buf, make([]float64, dim))
	return s, nil
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// blockDense copies the diagonal block B[lo:hi, lo:hi] into dense storage.
func blockDense(b *sparse.CSR, lo, hi int) *sparse.Dense {
	d := sparse.NewDense(hi-lo, hi-lo)
	for i := lo; i < hi; i++ {
		cols, vals := b.Row(i)
		for k, j := range cols {
			if j >= lo && j < hi {
				d.Set(i-lo, j-lo, vals[k])
			}
		}
	}
	return d
}

// AssembleSchur computes S = C − E·B⁻¹·F with per-row relative dropping,
// using the reduction's exact block-diagonal solves for B⁻¹. Exposed for
// the expanded-Schur (Schur 2) preconditioner, which runs the reduction on
// the internal unknowns only.
func AssembleSchur(c, e, f *sparse.CSR, l *Reduction, dropTol float64) *sparse.CSR {
	nc := c.Rows
	coo := sparse.NewCOO(nc, nc, c.NNZ()*2)
	for i := 0; i < nc; i++ {
		cols, vals := c.Row(i)
		for k, j := range cols {
			coo.Add(i, j, vals[k])
		}
	}
	// For each group g: W = B_g⁻¹ F_g (dense |g|×support), then subtract
	// E[:,g]·W.
	ft := f // F rows are the group rows already
	for g, ext := range l.Blocks {
		lo, hi := ext[0], ext[1]
		sz := hi - lo
		// Column support of F_g.
		support := map[int]int{}
		var supCols []int
		for r := lo; r < hi; r++ {
			cols, _ := ft.Row(r)
			for _, j := range cols {
				if _, ok := support[j]; !ok {
					support[j] = len(supCols)
					supCols = append(supCols, j)
				}
			}
		}
		if len(supCols) == 0 {
			continue
		}
		// Dense W: sz × |support|, column by column via LU solves.
		rhs := make([]float64, sz)
		w := make([]float64, sz*len(supCols))
		for sc, j := range supCols {
			for i := range rhs {
				rhs[i] = 0
			}
			for r := lo; r < hi; r++ {
				cols, vals := ft.Row(r)
				for k, jj := range cols {
					if jj == j {
						rhs[r-lo] = vals[k]
					}
				}
			}
			sol := l.BlockLU[g].Solve(rhs)
			for i := 0; i < sz; i++ {
				w[i*len(supCols)+sc] = sol[i]
			}
		}
		// Subtract E[:, lo:hi]·W from S: iterate rows of E that touch the
		// group's columns.
		for i := 0; i < nc; i++ {
			cols, vals := e.Row(i)
			for k, j := range cols {
				if j < lo || j >= hi {
					continue
				}
				eij := vals[k]
				row := w[(j-lo)*len(supCols) : (j-lo+1)*len(supCols)]
				for sc, jj := range supCols {
					if v := eij * row[sc]; v != 0 {
						coo.Add(i, jj, -v)
					}
				}
			}
		}
	}
	s := coo.ToCSR()
	return dropSmall(s, dropTol)
}

// dropSmall removes entries below tol·(mean row magnitude), keeping
// diagonals.
func dropSmall(a *sparse.CSR, tol float64) *sparse.CSR {
	if tol <= 0 {
		return a
	}
	out := sparse.NewCSR(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		var norm float64
		for _, v := range vals {
			norm += math.Abs(v)
		}
		if len(vals) > 0 {
			norm /= float64(len(vals))
		}
		thresh := tol * norm
		for k, j := range cols {
			if j == i || math.Abs(vals[k]) > thresh {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, vals[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Apply computes z = M⁻¹·r through the multilevel hierarchy:
// per level, u_B = B⁻¹r_B; r_C' = r_C − E·u_B; recurse on r_C'; then
// u_B −= B⁻¹·F·z_C. z and r must have length N(); they may alias.
func (s *Solver) Apply(z, r []float64) {
	s.applyLevel(0, z, r)
}

func (s *Solver) applyLevel(lev int, z, r []float64) {
	if lev == len(s.levels) {
		s.last.Solve(z, r)
		return
	}
	l := s.levels[lev]
	n := len(l.Perm)
	work := s.buf[lev]
	// Permute r into work.
	for i, old := range l.Perm {
		work[i] = r[old]
	}
	rB := work[:l.NB]
	rC := work[l.NB:n]

	// u_B = B⁻¹ r_B (exact block solves).
	uB := make([]float64, l.NB)
	l.SolveB(uB, rB)

	// r_C' = r_C − E·u_B.
	l.E.MulVecSub(rC, uB)

	// Recurse.
	zC := make([]float64, n-l.NB)
	s.applyLevel(lev+1, zC, rC)

	// u_B -= B⁻¹·F·z_C.
	fz := make([]float64, l.NB)
	l.F.MulVecTo(fz, zC)
	corr := make([]float64, l.NB)
	l.SolveB(corr, fz)
	for i := range uB {
		uB[i] -= corr[i]
	}

	// Un-permute into z.
	for i, old := range l.Perm {
		if i < l.NB {
			z[old] = uB[i]
		} else {
			z[old] = zC[i-l.NB]
		}
	}
}
