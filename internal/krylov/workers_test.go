package krylov

import (
	"math"
	"testing"

	"parapre/internal/par"
	"parapre/internal/sparse"
)

// laplacian2D builds the 5-point Laplacian on an m×m grid.
func laplacian2D(m int) *sparse.CSR {
	n := m * m
	coo := sparse.NewCOO(n, n, 5*n)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			r := j*m + i
			coo.Add(r, r, 4)
			if i > 0 {
				coo.Add(r, r-1, -1)
			}
			if i < m-1 {
				coo.Add(r, r+1, -1)
			}
			if j > 0 {
				coo.Add(r, r-m, -1)
			}
			if j < m-1 {
				coo.Add(r, r+m, -1)
			}
		}
	}
	return coo.ToCSR()
}

// TestGMRESHistoryWorkerInvariance runs plain GMRES on a system large
// enough (n = 81² = 6561 > par.BlockSize) to engage the parallel SpMV and
// the blocked reductions, and checks that the residual history — hence
// the iteration count — is bit-identical at every worker count.
func TestGMRESHistoryWorkerInvariance(t *testing.T) {
	a := laplacian2D(81)
	n := a.Rows
	if n <= par.BlockSize {
		t.Fatalf("system too small (n=%d) to engage the blocked reductions", n)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i)) + 0.5
	}
	// A fixed iteration budget (well short of convergence for the
	// unpreconditioned Laplacian) is enough: the contract is that every
	// intermediate residual matches bitwise, across several restarts.
	opt := Options{Restart: 30, MaxIters: 120, Tol: 1e-12, RecordHistory: true}

	run := func() Result {
		x := make([]float64, n)
		return SolveCSR(a, nil, b, x, opt)
	}
	prev := par.SetWorkers(1)
	ref := run()
	par.SetWorkers(prev)
	if ref.Iterations != opt.MaxIters {
		t.Fatalf("reference GMRES stopped after %d of %d iterations", ref.Iterations, opt.MaxIters)
	}
	for _, w := range []int{2, 3, 8} {
		prev := par.SetWorkers(w)
		got := run()
		par.SetWorkers(prev)
		if got.Iterations != ref.Iterations {
			t.Fatalf("w=%d: %d iterations, want %d", w, got.Iterations, ref.Iterations)
		}
		if len(got.History) != len(ref.History) {
			t.Fatalf("w=%d: history length %d, want %d", w, len(got.History), len(ref.History))
		}
		for i := range ref.History {
			if got.History[i] != ref.History[i] {
				t.Fatalf("w=%d: History[%d] = %x, want %x", w, i, got.History[i], ref.History[i])
			}
		}
	}
}
