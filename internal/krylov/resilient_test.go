//go:build !paranoid

// The recovery tests inject NaN through the preconditioner, which the
// paranoid build's finite-value assertions would turn into panics before
// the escalation ladder can observe the breakdown.
package krylov

import (
	"math"
	"testing"

	"parapre/internal/dist"
)

func resilientOpts() Options {
	return Options{Restart: 30, MaxIters: 3000, Tol: 1e-8}
}

// A clean solve takes the first rung: one step, no recovery flag.
func TestResilientSolveCleanFirstStage(t *testing.T) {
	const p = 2
	systems, _, _ := buildDistributedPoisson(t, 13, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		stages := []Stage{{Name: "none", Prec: func() Prec { return nil }}}
		res, log := ResilientSolve(c, s, stages, s.B, x, resilientOpts())
		if !res.Converged {
			t.Errorf("rank %d: clean solve failed: %+v", c.Rank(), res)
		}
		if len(log.Steps) != 1 || log.Recovered {
			t.Errorf("rank %d: want 1 step and no recovery, got %d steps recovered=%v",
				c.Rank(), len(log.Steps), log.Recovered)
		}
	})
}

// A permanently poisoning stage-0 preconditioner must burn both attempts
// (first try plus the fresh-restart retry), then the ladder escalates to
// the fallback stage, which converges: three steps, Recovered = true.
func TestResilientSolveEscalatesPastPoisonedStage(t *testing.T) {
	const p = 2
	systems, _, _ := buildDistributedPoisson(t, 13, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		poison := func(z, r []float64) {
			for i := range z {
				z[i] = math.NaN()
			}
		}
		stages := []Stage{
			{Name: "poisoned", Prec: func() Prec { return poison }},
			{Name: "identity", Prec: func() Prec { return nil }},
		}
		res, log := ResilientSolve(c, s, stages, s.B, x, resilientOpts())
		if !res.Converged {
			t.Fatalf("rank %d: ladder did not recover: %+v", c.Rank(), res)
		}
		if len(log.Steps) != 3 {
			t.Fatalf("rank %d: want 3 steps (poisoned×2, identity×1), got %+v", c.Rank(), log.Steps)
		}
		for i, st := range log.Steps[:2] {
			if st.Stage != "poisoned" || st.Attempt != i+1 || st.Converged || st.Err == nil {
				t.Errorf("rank %d step %d: want failed poisoned attempt %d with typed error, got %+v",
					c.Rank(), i, i+1, st)
			}
		}
		last := log.Steps[2]
		if last.Stage != "identity" || last.Attempt != 1 || !last.Converged {
			t.Errorf("rank %d: want identity stage converging on attempt 1, got %+v", c.Rank(), last)
		}
		if !log.Recovered {
			t.Error("recovery via the fallback stage must set Recovered")
		}
	})
}

// A transient fault — rank 0's preconditioner corrupts only its very
// first application — breaks down attempt 1 on every rank (the NaN
// replicates through the global reductions), and the fresh-restart retry
// of the same stage converges: recovery without escalation.
func TestResilientSolveFreshRestartHealsTransientFault(t *testing.T) {
	const p = 2
	systems, _, _ := buildDistributedPoisson(t, 13, p)
	logs := make([]*RecoveryLog, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		applies := 0
		flaky := func(z, r []float64) {
			applies++
			copy(z, r)
			if c.Rank() == 0 && applies == 1 {
				for i := range z {
					z[i] = math.NaN()
				}
			}
		}
		stages := []Stage{{Name: "flaky", Prec: func() Prec { return flaky }}}
		res, log := ResilientSolve(c, s, stages, s.B, x, resilientOpts())
		logs[c.Rank()] = log
		if !res.Converged {
			t.Fatalf("rank %d: retry did not recover: %+v", c.Rank(), res)
		}
		if len(log.Steps) != 2 {
			t.Fatalf("rank %d: want 2 steps (failed try, converged retry), got %+v", c.Rank(), log.Steps)
		}
		if log.Steps[0].Converged || log.Steps[0].Err == nil {
			t.Errorf("rank %d: attempt 1 must fail with a typed error, got %+v", c.Rank(), log.Steps[0])
		}
		if !log.Steps[1].Converged || log.Steps[1].Attempt != 2 || log.Steps[1].Stage != "flaky" {
			t.Errorf("rank %d: attempt 2 must converge on the same stage, got %+v", c.Rank(), log.Steps[1])
		}
		if !log.Recovered {
			t.Error("fresh-restart recovery must set Recovered")
		}
	})
	// The ladder walk is collective: both ranks must have recorded the
	// identical sequence even though only rank 0 injected the fault.
	for r := 1; r < p; r++ {
		if len(logs[r].Steps) != len(logs[0].Steps) {
			t.Fatalf("ranks disagree on ladder walk: %+v vs %+v", logs[0].Steps, logs[r].Steps)
		}
	}
}

// Exhausting the ladder returns the last failed result with its typed
// error and an honest log: no recovery claimed.
func TestResilientSolveExhaustedLadderKeepsTypedError(t *testing.T) {
	const p = 2
	systems, _, _ := buildDistributedPoisson(t, 13, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		x := make([]float64, s.NLoc())
		poison := func(z, r []float64) {
			for i := range z {
				z[i] = math.NaN()
			}
		}
		stages := []Stage{{Name: "poisoned", Prec: func() Prec { return poison }}}
		res, log := ResilientSolve(c, s, stages, s.B, x, resilientOpts())
		if res.Converged || res.Err == nil {
			t.Errorf("rank %d: exhausted ladder must fail with a typed error, got %+v", c.Rank(), res)
		}
		if len(log.Steps) != 2 || log.Recovered {
			t.Errorf("rank %d: want 2 failed steps and Recovered=false, got %+v", c.Rank(), log)
		}
	})
}
