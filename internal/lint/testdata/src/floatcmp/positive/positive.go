// Package positive holds code every floatcmp run must flag.
package positive

// Converged compares two residuals for exact equality: a tolerance bug.
func Converged(prev, cur float64) bool {
	return prev == cur // WANT floatcmp
}

// DriftedFrom tests a float against a nonzero constant.
func DriftedFrom(x float64) bool {
	return x != 1.0 // WANT floatcmp
}

// SameNorm hides the comparison behind arithmetic.
func SameNorm(a, b []float64) bool {
	var sa, sb float64
	for _, v := range a {
		sa += v * v
	}
	for _, v := range b {
		sb += v * v
	}
	return sa == sb // WANT floatcmp
}
