// Package lint is the project's custom static-analysis suite: a small,
// dependency-free analyzer framework (go/ast + go/types only) plus five
// project-specific analyzers that enforce the numerical and concurrency
// invariants this codebase promises — bit-identical reductions at any
// worker count, dimension-checked kernel entry points, no silent float
// equality, no discarded errors.
//
// The analyzers:
//
//	floatcmp    ==/!= between float operands (exact-zero tests excepted)
//	determinism map iteration, time.Now or math/rand feeding numeric
//	            state in the numeric kernel packages
//	dimguard    exported sparse kernels indexing caller slices without a
//	            dimension check near the top
//	sharedwrite writes to captured variables inside par worker closures
//	            without a per-worker index
//	errdrop     discarded error returns
//
// False positives are suppressed, with a mandatory reason, by
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. An ignore
// without a reason is itself reported. The driver is cmd/parapre-lint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	Name string
	Doc  string

	// Applies restricts the analyzer to certain import paths; nil means
	// every package. The driver consults it; tests calling Run directly
	// on fixture packages bypass it.
	Applies func(pkgPath string) bool

	Run func(p *Package) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, Determinism, DimGuard, SharedWrite, ErrDrop}
}

// RunPackage runs every applicable analyzer on p and returns the
// diagnostics that survive //lint:ignore filtering, plus a diagnostic for
// each malformed ignore comment.
func RunPackage(p *Package, analyzers []*Analyzer) []Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, malformed := collectIgnores(p, known)

	var out []Diagnostic
	out = append(out, malformed...)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(p.Path) {
			continue
		}
		for _, d := range a.Run(p) {
			if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// collectIgnores scans the package's comments for //lint:ignore
// directives. A well-formed directive names one or more known analyzers
// (comma-separated) and gives a non-empty reason; it suppresses those
// analyzers on its own line and the line directly below. Malformed
// directives are returned as diagnostics so they cannot silently rot.
func collectIgnores(p *Package, known map[string]bool) (map[ignoreKey]bool, []Diagnostic) {
	ignores := map[ignoreKey]bool{}
	var malformed []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed ignore: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				bad := false
				for _, name := range names {
					if !known[name] {
						malformed = append(malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  fmt.Sprintf("ignore names unknown analyzer %q", name),
						})
						bad = true
					}
				}
				if bad {
					continue
				}
				for _, name := range names {
					ignores[ignoreKey{pos.Filename, pos.Line, name}] = true
					ignores[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return ignores, malformed
}

// diag builds a Diagnostic at pos.
func diag(p *Package, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	return Diagnostic{Analyzer: analyzer, Pos: p.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
}

// isFloat reports whether t is (an alias of) a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isFloatDeep reports whether t is a float or a slice/array nesting of
// floats ([]float64, [][]float64, [4]float32, …).
func isFloatDeep(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Slice:
		return isFloatDeep(u.Elem())
	case *types.Array:
		return isFloatDeep(u.Elem())
	}
	return false
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for indirect calls, conversions and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
