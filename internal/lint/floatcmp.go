package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatCmp flags == and != between floating-point operands. Exact float
// equality is almost always a tolerance bug in numerical code; the one
// idiomatic exception — comparing against an exact constant zero to guard
// a division or detect an unwritten entry — is allowed. Deliberate
// bit-exact comparisons (determinism tests promoted into library code)
// are suppressed with //lint:ignore floatcmp <reason>.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "==/!= on float operands outside test files (exact-zero comparisons excepted)",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if isZeroConst(p, be.X) || isZeroConst(p, be.Y) {
				return true
			}
			out = append(out, diag(p, be.OpPos, "floatcmp",
				"%s on float operands: compare with a tolerance, or document bit-exactness with //lint:ignore", be.Op))
			return true
		})
	}
	return out
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to zero.
func isZeroConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
