//go:build !paranoid

// The NaN-corrupting fault plan used here trips the paranoid
// invariants by design (they panic on the very values the typed-error
// machinery classifies), so this half of the bit-identity contract is
// gated like the chaos matrix in internal/dist.

package core_test

import (
	"fmt"
	"testing"

	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/obs"
)

// TestCollectorBitIdentityUnderFaults extends the contract to chaos runs:
// the collector must not shift the deterministic fault stream. A corrupt
// plan with the resilient ladder produces the same recovery log and
// residual history with and without an observer.
func TestCollectorBitIdentityUnderFaults(t *testing.T) {
	chaos := func(cfg *core.Config) {
		cfg.Faults = &dist.FaultPlan{Seed: 11, CorruptProb: 0.05}
		cfg.Resilient = true
	}
	ref := solveWithWorkers(t, 1, chaos)
	for _, w := range []int{1, 3} {
		got := solveWithWorkers(t, w, func(cfg *core.Config) {
			chaos(cfg)
			cfg.Collector = obs.NewCollector()
		})
		if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
			t.Fatalf("w=%d: (%d, %v), want (%d, %v)", w, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
		}
		for i := range ref.History {
			if got.History[i] != ref.History[i] {
				t.Fatalf("w=%d: History[%d] = %x, want %x", w, i, got.History[i], ref.History[i])
			}
		}
		refSteps, gotSteps := recoverySummary(ref), recoverySummary(got)
		if refSteps != gotSteps {
			t.Fatalf("w=%d: recovery log %q, want %q", w, gotSteps, refSteps)
		}
	}
}

func recoverySummary(res *core.Result) string {
	if res.Recovery == nil {
		return ""
	}
	s := ""
	for _, st := range res.Recovery.Steps {
		s += fmt.Sprintf("%s#%d:%d:%v;", st.Stage, st.Attempt, st.Iterations, st.Converged)
	}
	return s
}
