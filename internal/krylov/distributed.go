package krylov

import (
	"errors"
	"math"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/sparse"
)

// SolveCSR runs (F)GMRES on a sequentially stored sparse system. It is
// the subdomain-local solver used inside the Schur 1 preconditioner ("a
// few local GMRES iterations preconditioned by ILUT").
func SolveCSR(a *sparse.CSR, precond Prec, b, x []float64, opt Options) Result {
	matvec := func(y, xx []float64) {
		a.MulVecTo(y, xx)
		if opt.Compute != nil {
			opt.Compute(2 * float64(a.NNZ()))
		}
	}
	return GMRES(a.Rows, matvec, precond, sparse.Dot, b, x, opt)
}

// distOps builds the strict distributed operator set for system s: the
// matvec performs the interface exchange through dsys.MatVecErr, so
// communication failures and injected payload corruption surface as typed
// errors instead of silent wrong answers. On an exchange failure the
// output vector is poisoned with NaN — the replicated recurrence then
// breaks down identically on every rank at the next norm — and the first
// error is retained for attachment to the Result.
type distOps struct {
	ext  []float64
	xerr error // first exchange/communication failure observed
}

func newDistOps(c *dist.Comm, s *dsys.System) (*distOps, Op, Dot) {
	d := &distOps{ext: make([]float64, s.NLoc()+s.NExt())}
	matvec := func(y, xx []float64) {
		if err := s.MatVecErr(c, y, xx, d.ext); err != nil {
			if d.xerr == nil {
				d.xerr = err
			}
			for i := range y {
				y[i] = math.NaN()
			}
		}
	}
	dot := func(u, v []float64) float64 { return s.Dot(c, u, v) }
	return d, matvec, dot
}

// attach folds the recorded communication failure (if any) into the
// solver result: the solve cannot have converged past a poisoned matvec,
// so the typed exchange error joins the breakdown diagnostics.
func (d *distOps) attach(res Result) Result {
	if d.xerr != nil {
		res.Breakdown = true
		res.Err = errors.Join(res.Err, d.xerr)
	}
	return res
}

// Distributed runs (F)GMRES(m) on the distributed system s from rank c:
// the matvec performs the interface exchange, the inner product performs
// the global reduction, and all local vector work is charged to the
// rank's virtual clock. Every rank must call Distributed collectively
// with its own s and x. The solution overwrites x (owned unknowns only).
//
// Exchange failures — typed receive errors, wrong-length neighbor blocks,
// injected NaN corruption — poison the recurrence, which the breakdown
// checks detect within one iteration; Result.Err then wraps both the
// BreakdownError and the underlying dsys.ExchangeError.
func Distributed(c *dist.Comm, s *dsys.System, precond Prec, b, x []float64, opt Options) Result {
	d, matvec, dot := newDistOps(c, s)
	if opt.Compute == nil {
		opt.Compute = c.Compute
	}
	wireSpans(c, &opt)
	return d.attach(GMRES(s.NLoc(), matvec, precond, dot, b, x, opt))
}

// wireSpans connects the solver's span hook to the rank's observability
// recorder. A single check when tracing is off; an explicit opt.Span set
// by the caller wins.
func wireSpans(c *dist.Comm, opt *Options) {
	if opt.Span != nil || !c.ObsEnabled() {
		return
	}
	opt.Span = func(kind, name string) func() {
		h := c.BeginSpan(kind, name)
		return func() { c.EndSpan(h) }
	}
}

// DistributedCG runs preconditioned CG on the distributed system, used by
// benchmark baselines for the SPD test cases. Exchange failures surface
// exactly as in Distributed.
func DistributedCG(c *dist.Comm, s *dsys.System, precond Prec, b, x []float64, opt Options) Result {
	d, matvec, dot := newDistOps(c, s)
	if opt.Compute == nil {
		opt.Compute = c.Compute
	}
	wireSpans(c, &opt)
	return d.attach(CG(s.NLoc(), matvec, precond, dot, b, x, opt))
}
