package verify

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/schur"
	"parapre/internal/sparse"
)

// denseSchurRef assembles the exact Schur complement C − E·B⁻¹·F of the
// global matrix with the listed interface unknowns ordered last, using
// only dense linear algebra. This is the reference every sparse and
// matrix-free Schur path is compared against.
func denseSchurRef(a *sparse.CSR, ifaceGlobals []int) (*sparse.Dense, error) {
	n := a.Rows
	isI := make([]bool, n)
	for _, g := range ifaceGlobals {
		isI[g] = true
	}
	var internals []int
	for i := 0; i < n; i++ {
		if !isI[i] {
			internals = append(internals, i)
		}
	}
	nB := len(internals)
	nI := len(ifaceGlobals)
	ad := a.Dense()
	bb := sparse.NewDense(nB, nB)
	for i, gi := range internals {
		for j, gj := range internals {
			bb.Set(i, j, ad.At(gi, gj))
		}
	}
	lu, err := bb.Factor()
	if err != nil {
		return nil, fmt.Errorf("dense B factor: %w", err)
	}
	s := sparse.NewDense(nI, nI)
	col := make([]float64, nB)
	for j, gj := range ifaceGlobals {
		for i, gi := range internals {
			col[i] = ad.At(gi, gj) // F column j
		}
		x := lu.Solve(col)
		for i, gi := range ifaceGlobals {
			v := ad.At(gi, gj) // C entry
			for q, gq := range internals {
				v -= ad.At(gi, gq) * x[q]
			}
			s.Set(i, j, v)
		}
	}
	return s, nil
}

// checkSchurTrailing verifies the trailing/leading sub-factorization
// identities on complete factors: ExtractLeading multiplies back to the
// B block, and ExtractTrailing multiplies back to the exact Schur
// complement of the trailing unknowns — including the degenerate splits
// k = 0 and k = n.
func checkSchurTrailing(cfg Config) []Violation {
	var out []Violation
	sizes := []int{2, 6, 12}
	if !cfg.Quick {
		sizes = append(sizes, 25)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 1100*int64(n) + trial
			a := randomDiagDominant(n, 0.35, seed)
			ad := a.Dense()
			scale := denseScale(ad)
			f, err := ilu.ILUT(a, completeOpts)
			if err != nil {
				out = append(out, Violation{"schur-trailing", fmt.Sprintf("ILUT: %v", err), repro(n, seed, "")})
				continue
			}
			for _, k := range []int{0, 1, n / 3, n / 2, n - 1, n} {
				if k < 0 || k > n {
					continue
				}
				lead, err := ilu.ExtractLeading(f, k)
				if err != nil {
					out = append(out, Violation{"schur-trailing", fmt.Sprintf("ExtractLeading(%d): %v", k, err), repro(n, seed, "")})
					continue
				}
				trail, err := ilu.ExtractTrailing(f, k)
				if err != nil {
					out = append(out, Violation{"schur-trailing", fmt.Sprintf("ExtractTrailing(%d): %v", k, err), repro(n, seed, "")})
					continue
				}
				// Leading product = B block of A exactly (incomplete
				// elimination of the first k rows never touches later rows;
				// with no dropping it is the complete LU of B).
				lp := lead.Product()
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						if d := absf(lp.At(i, j) - ad.At(i, j)); d > 1e-9*scale {
							out = append(out, Violation{"schur-trailing",
								fmt.Sprintf("leading product (%d,%d) off by %g at split %d", i, j, d, k),
								repro(n, seed, fmt.Sprintf("k=%d", k))})
						}
					}
				}
				// Trailing product = exact Schur complement of [k, n).
				iface := make([]int, n-k)
				for i := range iface {
					iface[i] = k + i
				}
				var sd *sparse.Dense
				if k == 0 {
					sd = ad
				} else {
					sd, err = denseSchurRef(a, iface)
					if err != nil {
						out = append(out, Violation{"schur-trailing", err.Error(), repro(n, seed, fmt.Sprintf("k=%d", k))})
						continue
					}
				}
				tp := trail.Product()
				if d := denseMaxDiff(tp, sd); d > 1e-8*scale {
					out = append(out, Violation{"schur-trailing",
						fmt.Sprintf("trailing product differs from dense Schur complement by %g at split %d", d, k),
						repro(n, seed, fmt.Sprintf("k=%d", k))})
				}
			}
		}
	}
	return out
}

// checkSchurOperator verifies the distributed matrix-free Schur operator:
// applied column by column to unit vectors at P ranks, it must reproduce
// the dense global C − E·B⁻¹·F — on symmetric and on structurally
// unsymmetric patterns (the classification bug the harness caught).
func checkSchurOperator(cfg Config) []Violation {
	var out []Violation
	type gen struct {
		name string
		make func(n int, seed int64) *sparse.CSR
	}
	gens := []gen{
		{"sym-pattern", func(n int, seed int64) *sparse.CSR { return randomDiagDominant(n, 0.35, seed) }},
		{"nonsym-pattern", func(n int, seed int64) *sparse.CSR { return randomNonsymPattern(n, 0.3, seed) }},
	}
	sizes := []int{6, 10}
	ps := []int{2, 3}
	if !cfg.Quick {
		sizes = append(sizes, 17)
		ps = append(ps, 4)
	}
	for _, g := range gens {
		for _, n := range sizes {
			for _, p := range ps {
				seed := cfg.Seed + 1200*int64(n) + int64(p)
				a := g.make(n, seed)
				out = append(out, schurOperatorOne(g.name, a, n, p, seed)...)
			}
		}
	}
	return out
}

func schurOperatorOne(gname string, a *sparse.CSR, n, p int, seed int64) []Violation {
	var out []Violation
	tag := func(extra string) string { return repro(n, seed, fmt.Sprintf("P=%d gen=%s %s", p, gname, extra)) }
	part := randomPartition(n, p, seed)
	b := make([]float64, n)
	systems := dsys.Distribute(a, b, part, p)

	ops := make([]*schur.Iface, p)
	for r, s := range systems {
		bf, err := ilu.ILUT(s.BlockB(), completeOpts)
		if err != nil {
			return []Violation{{"schur-operator", fmt.Sprintf("rank %d factor B: %v", r, err), tag("")}}
		}
		op, err := schur.NewImplicit(s, bf)
		if err != nil {
			return []Violation{{"schur-operator", fmt.Sprintf("rank %d NewImplicit: %v", r, err), tag("")}}
		}
		ops[r] = op
	}

	var ifaceGlobals []int
	offs := make([]int, p+1)
	for r, s := range systems {
		ifaceGlobals = append(ifaceGlobals, s.GlobalIDs[s.NInt:]...)
		offs[r+1] = offs[r] + s.NIface()
	}
	nI := len(ifaceGlobals)
	if nI == 0 {
		return nil // fully decoupled partition: nothing to check
	}
	sd, err := denseSchurRef(a, ifaceGlobals)
	if err != nil {
		return []Violation{{"schur-operator", err.Error(), tag("")}}
	}
	scale := denseScale(sd)

	x := make([]float64, nI)
	for col := 0; col < nI; col++ {
		for i := range x {
			x[i] = 0
		}
		x[col] = 1
		y := make([]float64, nI)
		mvErrs := make([]error, p)
		dist.Run(p, dist.LinuxCluster(), func(c *dist.Comm) {
			r := c.Rank()
			xl := x[offs[r]:offs[r+1]]
			yl := make([]float64, offs[r+1]-offs[r])
			mvErrs[r] = ops[r].MatVec(c, yl, xl)
			copy(y[offs[r]:offs[r+1]], yl)
		})
		for r, err := range mvErrs {
			if err != nil {
				out = append(out, Violation{"schur-operator",
					fmt.Sprintf("rank %d MatVec: %v", r, err), tag(fmt.Sprintf("col=%d", col))})
			}
		}
		for i := 0; i < nI; i++ {
			if d := absf(y[i] - sd.At(i, col)); d > 1e-8*(1+scale) {
				out = append(out, Violation{"schur-operator",
					fmt.Sprintf("S[%d,%d]: operator %g, dense %g", i, col, y[i], sd.At(i, col)),
					tag(fmt.Sprintf("col=%d", col))})
			}
		}
		if len(out) > 4 {
			break // one broken operator floods every column; cap the noise
		}
	}
	return out
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
