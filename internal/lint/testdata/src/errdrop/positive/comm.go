package positive

// The shapes of the supervised-runtime APIs (Comm.RecvErr,
// dsys.ExchangeErr/MatVecErr, dist.RunOpts): their entire point is the
// error return, so calling them as bare statements reverts to the
// panicking legacy semantics minus the panic — the worst of both.

type comm struct{}

func (comm) RecvErr(from, tag int) ([]float64, error) { return nil, nil }

type system struct{}

func (system) ExchangeErr(c comm, ext []float64) error     { return nil }
func (system) MatVecErr(c comm, y, x, ext []float64) error { return nil }

func runOpts(p int, fn func(comm)) ([]int, error) { return nil, nil }

// Receive drops the typed communication error together with the data.
func Receive(c comm) {
	c.RecvErr(0, 1) // WANT errdrop
}

// Step drops both strict-exchange errors: corruption would sail through.
func Step(c comm, s system, y, x, ext []float64) {
	s.ExchangeErr(c, ext)     // WANT errdrop
	s.MatVecErr(c, y, x, ext) // WANT errdrop
}

// Launch drops the runtime's typed deadlock/crash report.
func Launch() {
	runOpts(4, func(comm) {}) // WANT errdrop
}
