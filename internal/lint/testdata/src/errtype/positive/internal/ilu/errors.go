// Positive errtype fixture: fresh untyped errors escaping through the
// exported API of a simulated ilu package, directly, laundered through a
// local, and via an unexported helper on an exported path.
package ilu

import (
	"errors"
	"fmt"
)

// ErrSeed is a package-level sentinel: the allowed idiom, never flagged.
var ErrSeed = errors.New("ilu: seed")

// Factor is exported API: every fresh untyped error it returns crosses
// the package boundary.
func Factor(n int) error {
	if n < 0 {
		return errors.New("negative order") // WANT errtype
	}
	if n == 0 {
		return fmt.Errorf("empty system of order %d", n) // WANT errtype
	}
	err := errors.New("laundered through a local")
	if n == 1 {
		return err // WANT errtype
	}
	return helperErr(n)
}

// helperErr is unexported but reachable from Factor: still audited.
func helperErr(n int) error {
	return fmt.Errorf("helper failure %d", n) // WANT errtype
}

// orphan is unreachable from the exported API: its fresh error never
// crosses the boundary, so it is not flagged.
func orphan() error {
	return errors.New("orphan")
}
