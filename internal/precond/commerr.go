package precond

import "math"

// CommErrRecorder is implemented by preconditioners whose Apply runs
// distributed interface exchanges that can fail (the Schur-type inner
// solves). Apply cannot return an error — the krylov.Prec contract is a
// plain callback — so on an exchange failure the preconditioner poisons
// its output with NaN (breaking the outer recurrence down identically on
// every rank within one iteration) and records the first typed error
// here for the solve driver to join into the rank's result.
type CommErrRecorder interface {
	// TakeCommErr returns the first communication error recorded since
	// the last call and clears it.
	TakeCommErr() error
}

// poisonNaN floods v with NaN so the next replicated norm detects the
// failure as a breakdown on every rank simultaneously.
func poisonNaN(v []float64) {
	for i := range v {
		v[i] = math.NaN()
	}
}
