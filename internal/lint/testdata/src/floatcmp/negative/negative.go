// Package negative holds code floatcmp must stay silent on.
package negative

import "math"

// GuardZero is the allowed idiom: an exact-zero test before a division.
func GuardZero(pivot float64) bool {
	return pivot == 0
}

// SkipZero tests != against exact zero (unwritten entry detection).
func SkipZero(v float64) bool {
	return v != 0.0
}

// WithinTol compares with an explicit tolerance.
func WithinTol(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12
}

// IntEqual compares integers, not floats.
func IntEqual(a, b int) bool {
	return a == b
}
