// Negative allocfree fixture: an annotated cone that is genuinely
// allocation-free on the default build, plus every exemption — pruned
// constant branches, indirect calls (the caller's obligation), fan-out
// closures, panic, and allocations in functions outside any cone. The
// analyzer must stay silent.
package krylov

import par "parapre/internal/lint/testdata/src/allocfree/negative/internal/par"

const debug = false

// addTo is in the cone and allocation-free.
func addTo(y, x []float64) {
	for i := range y {
		y[i] += x[i]
	}
}

//lint:allocfree clean cone: nothing below allocates on the default build
func Hot(y, x []float64, op func(y, x []float64)) {
	if len(y) != len(x) {
		panic("krylov: length mismatch")
	}
	if debug {
		y = append(y, 1) // pruned: invisible on the default build
	}
	addTo(y, x)
	op(y, x) // indirect: the CALLER's obligation, exactly as in AllocsPerRun tests
	par.For(len(y), func(i int) {
		y[i] *= 2 // clean fan-out body
	})
}

// Cold is not annotated and in no annotated cone: its allocation is
// nobody's business.
func Cold(n int) []float64 {
	return make([]float64, n)
}
