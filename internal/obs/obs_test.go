package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestNilCollectorIsInert: every method of the nil collector and the nil
// recorder must be callable and do nothing — the tracing-off hot path.
func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	rec := c.Rank(3)
	if rec != nil {
		t.Fatal("nil collector returned a recorder")
	}
	c.Add("x", 1)
	c.Set("y", 2)
	sp := rec.Begin("spmv", "", 1.5)
	sp.End(2.5)
	rec.Count("n", 1)
	rec.CountPhase("flops", "spmv", 10)
	if got := c.Events(); got != nil {
		t.Fatalf("nil collector has events: %v", got)
	}
	if got := c.PhaseBreakdown(); got != nil {
		t.Fatalf("nil collector has phases: %v", got)
	}
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil collector metrics: err=%v len=%d", err, buf.Len())
	}
}

func TestSpanRecordingAndOrdering(t *testing.T) {
	c := NewCollector()
	r1, r0 := c.Rank(1), c.Rank(0)
	s := r0.Begin(KindSpMV, "", 1.0)
	s.End(2.0)
	s = r0.BeginComm(KindSend, 2, 7, 80, 2.0)
	s.End(2.5)
	s = r1.Begin(KindOrth, "", 0.5)
	s.End(0.75)

	ev := c.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	// Sorted by (rank, seq).
	if ev[0].Rank != 0 || ev[0].Kind != KindSpMV || ev[0].Dur() != 1.0 {
		t.Fatalf("event 0: %+v", ev[0])
	}
	if ev[1].Kind != KindSend || ev[1].Peer != 2 || ev[1].Tag != 7 || ev[1].Bytes != 80 {
		t.Fatalf("event 1: %+v", ev[1])
	}
	if ev[2].Rank != 1 || ev[2].Kind != KindOrth {
		t.Fatalf("event 2: %+v", ev[2])
	}
	if ev[0].Seq != 0 || ev[1].Seq != 1 || ev[2].Seq != 0 {
		t.Fatalf("sequence numbers: %d %d %d", ev[0].Seq, ev[1].Seq, ev[2].Seq)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	c := NewCollector()
	for rank := 0; rank < 2; rank++ {
		rec := c.Rank(rank)
		s := rec.Begin(KindSpMV, "", 0)
		s.End(float64(rank + 1)) // rank 0 spends 1s, rank 1 spends 2s
		rec.CountPhase("flops", KindSpMV, 100)
		rec.CountPhase("bytes", KindSend, 64)
	}
	stats := c.PhaseBreakdown()
	var spmv, send *PhaseStat
	for i := range stats {
		switch stats[i].Phase {
		case KindSpMV:
			spmv = &stats[i]
		case KindSend:
			send = &stats[i]
		}
	}
	if spmv == nil || spmv.Count != 2 || spmv.TotalSeconds != 3 || spmv.MaxSeconds != 2 || spmv.Flops != 200 {
		t.Fatalf("spmv phase: %+v", spmv)
	}
	if send == nil || send.Bytes != 128 {
		t.Fatalf("send phase: %+v", send)
	}
}

func TestMetricsSnapshot(t *testing.T) {
	c := NewCollector()
	c.Add("iterations", 42)
	c.Rank(0).Count("fault_drops", 2)
	c.Rank(0).CountPhase("flops", KindSpMV, 1e6)
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf, map[string]string{"solve": "tc1/P=4"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`parapre_iterations{solve="tc1/P=4"} 42`,
		`parapre_fault_drops{solve="tc1/P=4",rank="0"} 2`,
		`parapre_flops{solve="tc1/P=4",phase="spmv",rank="0"} 1e+06`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceDeterministicAndValid(t *testing.T) {
	build := func() *Collector {
		c := NewCollector()
		rec := c.Rank(0)
		s := rec.Begin(KindSpMV, "", 0.001)
		s.End(0.002)
		s = rec.BeginComm(KindSend, 1, 100, 800, 0.002)
		s.End(0.0021)
		s = c.Rank(1).Begin(KindPrecondApply, "Schur 1", 0)
		s.End(0.5)
		return c
	}
	render := func(c *Collector) []byte {
		var buf bytes.Buffer
		err := WriteChromeTrace(&buf, []TraceEntry{{Name: "test", PID: 0, Collector: c}}, TraceOptions{OmitWall: true})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(build()), render(build())
	if !bytes.Equal(a, b) {
		t.Fatalf("trace output not deterministic:\n%s\n---\n%s", a, b)
	}
	if err := ValidateChromeTrace(a); err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, a)
	}
	if !strings.Contains(string(a), `"name":"precond_apply:Schur 1"`) {
		t.Fatalf("labeled span missing:\n%s", a)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     `{"traceEvents":[`,
		"no events":    `{"other":1}`,
		"bad phase":    `{"traceEvents":[{"ph":"Q","pid":0,"tid":0,"name":"x"}]}`,
		"missing name": `{"traceEvents":[{"ph":"M","pid":0,"tid":0}]}`,
		"missing pid":  `{"traceEvents":[{"ph":"M","tid":0,"name":"x"}]}`,
		"negative ts":  `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"name":"x","ts":-1,"dur":0}]}`,
		"missing dur":  `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"name":"x","ts":1}]}`,
		"negative tid": `{"traceEvents":[{"ph":"X","pid":0,"tid":-2,"name":"x","ts":1,"dur":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	ok := `{"traceEvents":[{"ph":"X","pid":0,"tid":0,"name":"x","ts":1.5,"dur":0}],"displayTimeUnit":"ms"}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// TestLiveSinkPublishesCompletedSpans: a registered live sink sees every
// span exactly once, at End time, with its final fields, and recording
// into the collector is unchanged.
func TestLiveSinkPublishesCompletedSpans(t *testing.T) {
	c := NewCollector()
	var got []Event
	c.SetLiveSink(func(e Event) { got = append(got, e) })
	rec := c.Rank(0)
	sp := rec.Begin("spmv", "", 1.0)
	if len(got) != 0 {
		t.Fatal("sink fired before End")
	}
	sp.End(2.0)
	sp2 := rec.BeginComm("send", 1, 7, 80, 2.0)
	sp2.End(2.5)
	if len(got) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(got))
	}
	if got[0].Kind != "spmv" || got[0].VEnd != 2.0 {
		t.Fatalf("event 0 = %+v", got[0])
	}
	if got[1].Kind != "send" || got[1].Peer != 1 || got[1].Bytes != 80 {
		t.Fatalf("event 1 = %+v", got[1])
	}
	if len(c.Events()) != 2 {
		t.Fatal("live sink must not replace recording")
	}
	// The sink is copied at recorder creation: setting it after a
	// recorder exists does not retroactively attach (documented contract).
	c2 := NewCollector()
	r2 := c2.Rank(0)
	c2.SetLiveSink(func(Event) { t.Fatal("late sink must not attach to existing recorder") })
	c2.Rank(0) // same recorder back
	r2.Begin("spmv", "", 0).End(1)
}
