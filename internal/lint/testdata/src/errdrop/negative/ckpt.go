package negative

// The durability APIs handled properly: the shard-write error is either
// propagated or explicitly discarded with the blank identifier (the
// documented "previous durable checkpoint stays valid" decision), and
// transport teardown uses the deferred-cleanup idiom.

type rankState struct{}

type sink struct{}

func (sink) PutShard(seq, iter uint64, p int, rs *rankState) error { return nil }

type client struct{}

func (client) Close() error { return nil }

func load(path string) (*rankState, error) { return nil, nil }

// Snapshot propagates the shard-write failure.
func Snapshot(s sink, rs *rankState) error {
	return s.PutShard(1, 10, 4, rs)
}

// BestEffortSnapshot makes the drop explicit and reviewable: a sink
// failure must not kill the solve, the previous checkpoint stays valid.
func BestEffortSnapshot(s sink, rs *rankState) {
	_ = s.PutShard(1, 10, 4, rs)
}

// Restore handles the load error and defers the transport close.
func Restore(c client, path string) (*rankState, error) {
	defer c.Close()
	rs, err := load(path)
	if err != nil {
		return nil, err
	}
	return rs, nil
}
