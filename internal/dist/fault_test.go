package dist

import (
	"errors"
	"testing"
	"time"
)

// ringProtocol is a small representative workload: compute, a ring
// send/recv, and a collective per round.
func ringProtocol(rounds int) func(c *Comm) {
	return func(c *Comm) {
		p := c.Size()
		for i := 0; i < rounds; i++ {
			c.Compute(1000)
			c.Send((c.Rank()+1)%p, 5, []float64{float64(c.Rank()), float64(i)})
			c.Recv((c.Rank()+p-1)%p, 5)
			c.AllReduceSum(float64(c.Rank()))
		}
	}
}

func statsEqual(a, b []Stats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A nil fault plan must leave the modeled times bit-identical to the
// legacy runtime, with and without the watchdog's progress tracking.
func TestNilFaultPlanBitIdentical(t *testing.T) {
	m := testMachine()
	base := Run(4, m, ringProtocol(20))

	plain, err := RunOpts(4, m, WorldOptions{}, ringProtocol(20))
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	if !statsEqual(base, plain) {
		t.Errorf("RunOpts without options diverges from Run:\n%v\nvs\n%v", base, plain)
	}

	watched, err := RunOpts(4, m, WorldOptions{Watchdog: 10 * time.Second}, ringProtocol(20))
	if err != nil {
		t.Fatalf("RunOpts watchdog: %v", err)
	}
	if !statsEqual(base, watched) {
		t.Errorf("watchdog tracking changed the modeled times:\n%v\nvs\n%v", base, watched)
	}
}

// The same seed must reproduce the exact same faults: two runs under an
// identical plan give bit-identical stats.
func TestFaultPlanDeterministic(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 42, DelayProb: 0.5, DelayMax: 1e-3, CorruptProb: 0.3}
	opts := WorldOptions{Faults: plan, Watchdog: 10 * time.Second}
	first, err1 := RunOpts(4, m, opts, ringProtocol(20))
	second, err2 := RunOpts(4, m, opts, ringProtocol(20))
	if err1 != nil || err2 != nil {
		t.Fatalf("runs failed: %v / %v", err1, err2)
	}
	if !statsEqual(first, second) {
		t.Errorf("same seed produced different runs:\n%v\nvs\n%v", first, second)
	}
}

// Delay jitter must push receiver clocks later than the fault-free run.
func TestDelayFaultSlowsReceivers(t *testing.T) {
	m := testMachine()
	base := Run(4, m, ringProtocol(20))
	plan := &FaultPlan{Seed: 1, DelayProb: 1, DelayMax: 1e-2}
	delayed, err := RunOpts(4, m, WorldOptions{Faults: plan, Watchdog: 10 * time.Second}, ringProtocol(20))
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	if MaxClock(delayed) <= MaxClock(base) {
		t.Errorf("delay plan did not slow the run: %g <= %g", MaxClock(delayed), MaxClock(base))
	}
}

// Straggler plans slow the designated ranks only. The stall is booked in
// the FaultDelay bucket — ComputeTime stays the machine-determined value,
// so a straggler's Clock still partitions as Compute + Comm + FaultDelay.
func TestStragglerFaultSlowsDesignatedRank(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 1, StragglerEvery: 2, StragglerFactor: 8}
	stats, err := RunOpts(4, m, WorldOptions{Faults: plan, Watchdog: 10 * time.Second}, func(c *Comm) {
		c.Compute(1e6)
	})
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	// Ranks 1 and 3 are stragglers ((r+1)%2 == 0); 0 and 2 are not.
	// ComputeTime is the unstretched cost everywhere; the stretch shows up
	// as injected delay on the straggler's clock.
	if stats[1].ComputeTime != stats[0].ComputeTime {
		t.Errorf("straggler stall booked as compute: %g vs %g", stats[1].ComputeTime, stats[0].ComputeTime)
	}
	if stats[0].FaultDelay != 0 {
		t.Errorf("non-straggler rank 0 has fault delay %g", stats[0].FaultDelay)
	}
	want := stats[0].ComputeTime * (plan.StragglerFactor - 1)
	if diff := stats[1].FaultDelay - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("straggler factor not applied exactly: FaultDelay %g want %g", stats[1].FaultDelay, want)
	}
	if stats[1].Clock <= stats[0].Clock {
		t.Errorf("straggler rank 1 not slowed: clock %g vs %g", stats[1].Clock, stats[0].Clock)
	}
	for _, s := range stats {
		sum := s.ComputeTime + s.CommTime + s.FaultDelay
		if diff := s.Clock - sum; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("rank %d: Clock %g != Compute+Comm+FaultDelay %g", s.Rank, s.Clock, sum)
		}
	}
}

// A certain drop leaves the receiver waiting forever; the watchdog must
// convert the stall into a DeadlockError that names the stuck receive.
func TestDropFaultTriggersDeadlockError(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 1, DropProb: 1}
	_, err := RunOpts(2, m, WorldOptions{Faults: plan, Watchdog: 100 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 9, []float64{1})
		} else {
			c.Recv(0, 9)
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	r1 := de.Ranks[1]
	if r1.LastOp != "recv" || r1.Peer != 0 || r1.Tag != 9 || !r1.Blocked {
		t.Errorf("rank 1 diagnostics wrong: %+v", r1)
	}
}

// A planned hard crash surfaces as a PeerCrashedError on the blocked
// receiver and a CrashError from the harness once the survivors finish.
func TestCrashFaultTypedErrors(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 1, CrashRank: 0, CrashAfterOps: 1}
	var recvErr error
	stats, err := RunOpts(2, m, WorldOptions{Faults: plan, Watchdog: 5 * time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Compute(10) // op 1 survives...
			c.Compute(10) // ...op 2 fires the crash
			t.Error("rank 0 survived its planned crash")
			return
		}
		_, recvErr = c.RecvErr(0, 3)
	})
	var ce *CrashError
	if !errors.As(err, &ce) || len(ce.Ranks) != 1 || ce.Ranks[0] != 0 {
		t.Fatalf("want CrashError{[0]}, got %v", err)
	}
	var pe *PeerCrashedError
	if !errors.As(recvErr, &pe) || pe.Peer != 0 || pe.Rank != 1 || pe.Tag != 3 {
		t.Fatalf("want PeerCrashedError from rank 0, got %v", recvErr)
	}
	if stats == nil {
		t.Fatal("stats must be returned even on error")
	}
}

// In-flight messages from a crashed peer must still be deliverable before
// the receiver is told the peer is dead.
func TestCrashedPeerDrainsInFlightMessages(t *testing.T) {
	m := testMachine()
	plan := &FaultPlan{Seed: 1, CrashRank: 0, CrashAfterOps: 1}
	var first []float64
	var firstErr, secondErr error
	_, err := RunOpts(2, m, WorldOptions{Faults: plan, Watchdog: 5 * time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 4, []float64{7}) // op 1: delivered
			c.Compute(1)               // op 2: crash
			return
		}
		time.Sleep(10 * time.Millisecond) // let rank 0 send and crash
		first, firstErr = c.RecvErr(0, 4)
		_, secondErr = c.RecvErr(0, 4)
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	if firstErr != nil || len(first) != 1 || first[0] != 7 {
		t.Errorf("in-flight message lost: %v %v", first, firstErr)
	}
	var pe *PeerCrashedError
	if !errors.As(secondErr, &pe) {
		t.Errorf("drained channel must report the crash, got %v", secondErr)
	}
}

// The built-in named plans must all resolve, and unknown names must not.
func TestNamedFaultPlans(t *testing.T) {
	names := FaultPlanNames()
	if len(names) == 0 {
		t.Fatal("no built-in plans")
	}
	for _, n := range names {
		p, err := NamedFaultPlan(n, 5)
		if err != nil || p == nil {
			t.Errorf("plan %q: %v", n, err)
			continue
		}
		if p.Seed != 5 {
			t.Errorf("plan %q ignores the seed", n)
		}
	}
	if _, err := NamedFaultPlan("nope", 1); err == nil {
		t.Error("unknown plan accepted")
	}
}
