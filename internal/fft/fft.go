// Package fft implements the fast transforms behind the FFT-based fast
// Poisson solver that the paper's additive-Schwarz preconditioner (§5.2)
// uses on its rectangular subdomains: an iterative radix-2 complex FFT, the
// discrete sine transform DST-I built on it, and a direct solver for the
// 5-point Laplacian on a rectangle with homogeneous Dirichlet boundaries.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place forward discrete Fourier transform of x,
// X[k] = Σ_n x[n]·exp(−2πi·kn/N). len(x) must be a power of two.
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse DFT of x (including the 1/N scaling).
// len(x) must be a power of two.
func IFFT(x []complex128) {
	fftDir(x, true)
	invN := 1 / float64(len(x))
	for i := range x {
		x[i] *= complex(invN, 0)
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		if inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		half := size / 2
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// DSTI computes the type-I discrete sine transform of x (length n):
// X[k] = Σ_{j=0}^{n−1} x[j]·sin(π(j+1)(k+1)/(n+1)), for k = 0, …, n−1.
// It requires n+1 to be a power of two (the grid sizes used by the fast
// Poisson solver arrange this). DST-I is its own inverse up to the factor
// 2/(n+1); see InvDSTI.
func DSTI(x []float64) []float64 {
	n := len(x)
	m := n + 1
	if m&(m-1) != 0 {
		// Fall back to the O(n²) definition for awkward sizes: subdomain
		// edges produced by overlap trimming are not always FFT-friendly,
		// and correctness beats speed there.
		return slowDSTI(x)
	}
	// Odd extension of length 2m, transformed with one complex FFT:
	// y = [0, x0, …, x_{n−1}, 0, −x_{n−1}, …, −x0]; then
	// X[k] = −Im(FFT(y))[k+1] / 2.
	y := make([]complex128, 2*m)
	for j := 0; j < n; j++ {
		y[j+1] = complex(x[j], 0)
		y[2*m-1-j] = complex(-x[j], 0)
	}
	FFT(y)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = -imag(y[k+1]) / 2
	}
	return out
}

// InvDSTI inverts DSTI: InvDSTI(DSTI(x)) == x.
func InvDSTI(x []float64) []float64 {
	out := DSTI(x)
	s := 2 / float64(len(x)+1)
	for i := range out {
		out[i] *= s
	}
	return out
}

func slowDSTI(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		for j := 0; j < n; j++ {
			s += x[j] * math.Sin(math.Pi*float64((j+1)*(k+1))/float64(n+1))
		}
		out[k] = s
	}
	return out
}
